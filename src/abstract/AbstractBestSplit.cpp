//===- abstract/AbstractBestSplit.cpp - bestSplit# ----------------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "abstract/AbstractBestSplit.h"

#include <limits>

using namespace antidote;

namespace {

/// A Φ∃ member together with its score interval's lower bound.
struct ScoredCandidate {
  SplitPredicate Pred;
  double ScoreLb;

  ScoredCandidate(SplitPredicate Pred, double ScoreLb)
      : Pred(Pred), ScoreLb(ScoreLb) {}
};

/// Everything one feature's scoring shard produces: its Φ∃ members in
/// enumeration (ascending threshold) order, its contribution to lubΦ∀,
/// and whether the meter tripped while scoring it. Shards fold in
/// feature-index order, which replays the serial emission order exactly;
/// the lubΦ∀ fold is a `min` of doubles and therefore exact in any order.
struct FeatureShard {
  std::vector<ScoredCandidate> Existential;
  double LubUniversal = std::numeric_limits<double>::infinity();
  bool AnyUniversal = false;
  bool Interrupted = false;
};

/// Scores one feature's candidates. Pure per-feature work: reads only the
/// shared prepass and the ⟨T,n⟩ summary, writes only \p Out and the two
/// caller-owned scratch buffers (resized here; contents are overwritten
/// before use) — safe to run on any executor concurrently with other
/// features' shards as long as each executor brings its own scratch.
void scoreFeatureShard(const SplitEnumerationPrepass &Pre, unsigned Feature,
                       const std::vector<uint32_t> &Totals, uint32_t Total,
                       uint32_t N, CprobTransformerKind Kind,
                       GiniLiftingKind Lifting, const ResourceMeter *Meter,
                       FeatureShard &Out, std::vector<uint32_t> &PosScratch,
                       std::vector<uint32_t> &NegCounts) {
  unsigned NumClasses = static_cast<unsigned>(Totals.size());
  PosScratch.resize(NumClasses);
  NegCounts.resize(NumClasses);

  // Cooperative-cancellation checkpoints: once per shard up front — the
  // per-64-candidates counter below is shard-local, so without this a
  // many-features/few-candidates-each dataset (the MNIST-like regime)
  // would poll only at call entry and interrupt latency would grow with
  // the feature count — then every 64 candidates while scoring, since
  // scoring dominates the cost of this transformer. A tripped shard stops
  // scoring and idles through its remaining candidates; the fold discards
  // everything and reports the interrupt.
  if (Meter && Meter->interrupted()) {
    Out.Interrupted = true;
    return;
  }
  unsigned CandidatesSinceCheck = 0;

  // The enumerator already skips trivial candidates, so everything it
  // produces is in Φ∃: both sides non-empty as row sets, hence non-empty
  // for at least one concretization. Splits are exact here because the
  // symbolic thresholds come from adjacent values of this very row set
  // (DESIGN.md §5), so the side budgets are min(n, |side|) per equation (1).
  forEachFeatureCandidateSplit(
      Pre, Feature, PredicateMode::SymbolicInterval, PosScratch,
      [&](const SplitPredicate &Pred, const std::vector<uint32_t> &PosCounts,
          uint32_t PosTotal) {
        if (Out.Interrupted)
          return;
        if (Meter && ++CandidatesSinceCheck >= 64) {
          CandidatesSinceCheck = 0;
          if (Meter->interrupted()) {
            Out.Interrupted = true;
            return;
          }
        }
        uint32_t NegTotal = Total - PosTotal;
        for (unsigned C = 0; C < NumClasses; ++C)
          NegCounts[C] = Totals[C] - PosCounts[C];
        Interval Score = abstractSplitScore(
            PosCounts, PosTotal, std::min(N, PosTotal), NegCounts, NegTotal,
            std::min(N, NegTotal), Kind, Lifting);
        Out.Existential.emplace_back(Pred, Score.lb());
        // Φ∀ membership: neither side can be emptied by dropping n rows.
        if (PosTotal > N && NegTotal > N) {
          Out.AnyUniversal = true;
          Out.LubUniversal = std::min(Out.LubUniversal, Score.ub());
        }
      });
}

} // namespace

std::optional<PredicateSet>
antidote::abstractBestSplit(const SplitContext &Ctx,
                            const AbstractDataset &Data,
                            CprobTransformerKind Kind,
                            GiniLiftingKind Lifting,
                            const ResourceMeter *Meter, ThreadPool *Pool,
                            unsigned SplitJobs) {
  assert(!Data.isEmptySet() && "bestSplit# of the empty abstract set");
  // An already-tripped meter means the caller is winding down: answer
  // nullopt deterministically instead of letting a small candidate set
  // slip through the every-64-candidates poll below.
  if (Meter && Meter->interrupted())
    return std::nullopt;
  const std::vector<uint32_t> &Totals = Data.counts();
  uint32_t Total = Data.size();
  uint32_t N = Data.budget();
  unsigned NumFeatures = Data.base().numFeatures();

  SplitEnumerationPrepass Pre(Ctx, Data.rows());
  std::vector<FeatureShard> Shards(NumFeatures);
  auto Score = [&](size_t F) {
    // Per-executor scratch, reused across shards: bestSplit# runs once
    // per disjunct on hot frontiers, so per-shard allocation here would
    // put ~2 x numFeatures mallocs on the hottest path in the verifier.
    thread_local std::vector<uint32_t> PosScratch;
    thread_local std::vector<uint32_t> NegScratch;
    scoreFeatureShard(Pre, static_cast<unsigned>(F), Totals, Total, N, Kind,
                      Lifting, Meter, Shards[F], PosScratch, NegScratch);
  };

  bool TrippedMeter = false;
  bool Sharded = Pool && Pool->size() > 0 && SplitJobs != 1 && NumFeatures > 1;
  if (Sharded) {
    unsigned Jobs = SplitJobs == 0 ? ThreadPool::hardwareConcurrency()
                                   : SplitJobs;
    // Chunk size 1: per-feature costs are wildly uneven (a boolean feature
    // contributes one candidate, a dense real feature thousands), and at
    // feature-count granularity the cursor traffic is negligible.
    OrderedFanout Fanout(Pool, NumFeatures, /*ChunkSize=*/1, Score,
                         /*WindowChunks=*/0, /*MaxHelpers=*/Jobs - 1);
    for (unsigned F = 0; F < NumFeatures; ++F) {
      Fanout.awaitItem(F);
      if (Shards[F].Interrupted) {
        // Stop paying for shards that will be discarded anyway.
        Fanout.cancelRemaining();
        TrippedMeter = true;
        break;
      }
    }
  } else {
    for (unsigned F = 0; F < NumFeatures && !TrippedMeter; ++F) {
      Score(F);
      TrippedMeter = Shards[F].Interrupted;
    }
  }

  // A truncated enumeration must not leak: deciding ⋄-membership or the
  // Φ∀ filter from a partial candidate set could fabricate terminals the
  // untruncated run would never produce (spuriously refuting domination).
  // Returning nullopt keeps every recorded terminal genuine — and unlike
  // the previous ⊥-sentinel, a caller cannot consume it by accident; the
  // caller's next meter poll turns the run into Timeout/Cancelled before
  // the missing successors could matter.
  if (TrippedMeter)
    return std::nullopt;

  double LubUniversal = std::numeric_limits<double>::infinity();
  bool AnyUniversal = false;
  size_t NumCandidates = 0;
  for (const FeatureShard &Shard : Shards) {
    NumCandidates += Shard.Existential.size();
    if (Shard.AnyUniversal) {
      AnyUniversal = true;
      LubUniversal = std::min(LubUniversal, Shard.LubUniversal);
    }
  }

  PredicateSet Result;
  Result.reserve(NumCandidates);
  if (!AnyUniversal) {
    // No predicate is guaranteed non-trivial for every concretization, so
    // some concretization may make bestSplit return ⋄ (§4.6).
    for (const FeatureShard &Shard : Shards)
      for (const ScoredCandidate &Cand : Shard.Existential)
        Result.add(Cand.Pred);
    Result.addNull();
  } else {
    for (const FeatureShard &Shard : Shards)
      for (const ScoredCandidate &Cand : Shard.Existential)
        if (Cand.ScoreLb <= LubUniversal)
          Result.add(Cand.Pred);
  }
  Result.canonicalize();
  return Result;
}
