//===- abstract/AbstractBestSplit.cpp - bestSplit# ----------------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "abstract/AbstractBestSplit.h"

#include <limits>

using namespace antidote;

namespace {

/// A Φ∃ member together with its score interval's lower bound.
struct ScoredCandidate {
  SplitPredicate Pred;
  double ScoreLb;

  ScoredCandidate(SplitPredicate Pred, double ScoreLb)
      : Pred(Pred), ScoreLb(ScoreLb) {}
};

} // namespace

PredicateSet antidote::abstractBestSplit(const SplitContext &Ctx,
                                         const AbstractDataset &Data,
                                         CprobTransformerKind Kind,
                                         GiniLiftingKind Lifting,
                                         const ResourceMeter *Meter) {
  assert(!Data.isEmptySet() && "bestSplit# of the empty abstract set");
  const std::vector<uint32_t> &Totals = Data.counts();
  uint32_t Total = Data.size();
  uint32_t N = Data.budget();
  unsigned NumClasses = Data.base().numClasses();

  std::vector<ScoredCandidate> Existential;
  double LubUniversal = std::numeric_limits<double>::infinity();
  bool AnyUniversal = false;
  std::vector<uint32_t> NegCounts(NumClasses);

  // Cooperative-cancellation checkpoint: scoring dominates the cost of
  // this transformer, so once the meter trips we stop scoring and let the
  // enumerator idle through the remaining candidates. The caller must
  // discard the truncated result (see the header).
  unsigned CandidatesSinceCheck = 0;
  bool Interrupted = false;

  // The enumerator already skips trivial candidates, so everything it
  // produces is in Φ∃: both sides non-empty as row sets, hence non-empty
  // for at least one concretization. Splits are exact here because the
  // symbolic thresholds come from adjacent values of this very row set
  // (DESIGN.md §5), so the side budgets are min(n, |side|) per equation (1).
  forEachCandidateSplit(
      Ctx, Data.rows(), PredicateMode::SymbolicInterval,
      [&](const SplitPredicate &Pred, const std::vector<uint32_t> &PosCounts,
          uint32_t PosTotal) {
        if (Interrupted)
          return;
        if (Meter && ++CandidatesSinceCheck >= 64) {
          CandidatesSinceCheck = 0;
          if (Meter->interrupted()) {
            Interrupted = true;
            return;
          }
        }
        uint32_t NegTotal = Total - PosTotal;
        for (unsigned C = 0; C < NumClasses; ++C)
          NegCounts[C] = Totals[C] - PosCounts[C];
        Interval Score = abstractSplitScore(
            PosCounts, PosTotal, std::min(N, PosTotal), NegCounts, NegTotal,
            std::min(N, NegTotal), Kind, Lifting);
        Existential.emplace_back(Pred, Score.lb());
        // Φ∀ membership: neither side can be emptied by dropping n rows.
        if (PosTotal > N && NegTotal > N) {
          AnyUniversal = true;
          LubUniversal = std::min(LubUniversal, Score.ub());
        }
      });

  // A truncated enumeration must not leak: deciding ⋄-membership or the
  // Φ∀ filter from a partial candidate set could fabricate terminals the
  // untruncated run would never produce (spuriously refuting domination).
  // Returning ⊥ keeps every recorded terminal genuine; the caller's next
  // meter poll turns the run into Timeout/Cancelled before the missing
  // successors could matter.
  if (Interrupted)
    return PredicateSet();

  PredicateSet Result;
  if (!AnyUniversal) {
    // No predicate is guaranteed non-trivial for every concretization, so
    // some concretization may make bestSplit return ⋄ (§4.6).
    for (const ScoredCandidate &Cand : Existential)
      Result.add(Cand.Pred);
    Result.addNull();
  } else {
    for (const ScoredCandidate &Cand : Existential)
      if (Cand.ScoreLb <= LubUniversal)
        Result.add(Cand.Pred);
  }
  Result.canonicalize();
  return Result;
}
