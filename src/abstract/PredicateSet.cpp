//===- abstract/PredicateSet.cpp - Abstract predicate domain -----------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "abstract/PredicateSet.h"

#include <algorithm>

using namespace antidote;

void PredicateSet::canonicalize() {
  std::sort(Preds.begin(), Preds.end());
  Preds.erase(std::unique(Preds.begin(), Preds.end()), Preds.end());
}

PredicateSet PredicateSet::join(const PredicateSet &A, const PredicateSet &B) {
  PredicateSet Result;
  Result.Preds.reserve(A.Preds.size() + B.Preds.size());
  Result.Preds = A.Preds;
  Result.Preds.insert(Result.Preds.end(), B.Preds.begin(), B.Preds.end());
  Result.HasNull = A.HasNull || B.HasNull;
  Result.canonicalize();
  return Result;
}

bool PredicateSet::concretizationContains(uint32_t Feature,
                                          double Threshold) const {
  for (const SplitPredicate &Pred : Preds)
    if (Pred.concretizationContains(Feature, Threshold))
      return true;
  return false;
}
