//===- abstract/LabelFlip.cpp - Label-flip robustness certification -----------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "abstract/LabelFlip.h"

#include "abstract/AbstractDTrace.h"
#include "abstract/AbstractGini.h"
#include "support/Timer.h"

#include <algorithm>
#include <limits>

using namespace antidote;

std::vector<Interval>
antidote::flipClassProbabilities(const std::vector<uint32_t> &Counts,
                                 uint32_t Total, uint32_t Budget) {
  assert(Total > 0 && "flip cprob# of an empty training set");
  std::vector<Interval> Probs;
  Probs.reserve(Counts.size());
  double T = Total;
  for (uint32_t C : Counts) {
    double Lo = C > Budget ? (C - Budget) / T : 0.0;
    double Hi = std::min<uint64_t>(static_cast<uint64_t>(C) + Budget,
                                   Total) /
                T;
    Probs.emplace_back(Lo, Hi);
  }
  return Probs;
}

Interval antidote::flipSplitScore(const std::vector<uint32_t> &PosCounts,
                                  uint32_t PosTotal,
                                  const std::vector<uint32_t> &NegCounts,
                                  uint32_t NegTotal, uint32_t Budget) {
  assert(PosTotal > 0 && NegTotal > 0 && "score of a trivial split");
  // Side sizes are exact under flips; each side can absorb at most
  // min(n, |side|) of the flipped rows.
  Interval PosEnt = abstractGiniImpurity(flipClassProbabilities(
      PosCounts, PosTotal, std::min(Budget, PosTotal)));
  Interval NegEnt = abstractGiniImpurity(flipClassProbabilities(
      NegCounts, NegTotal, std::min(Budget, NegTotal)));
  return Interval(static_cast<double>(PosTotal)) * PosEnt +
         Interval(static_cast<double>(NegTotal)) * NegEnt;
}

std::vector<SplitPredicate>
antidote::flipBestSplit(const SplitContext &Ctx, const RowIndexList &Rows,
                        uint32_t Budget) {
  std::vector<uint32_t> Totals = classCounts(Ctx.base(), Rows);
  uint32_t Total = static_cast<uint32_t>(Rows.size());
  unsigned NumClasses = Ctx.base().numClasses();

  struct Scored {
    SplitPredicate Pred;
    double Lb;
  };
  std::vector<Scored> Candidates;
  double Lub = std::numeric_limits<double>::infinity();
  std::vector<uint32_t> NegCounts(NumClasses);
  // Every candidate splits every concretization identically (flips do not
  // move feature values), so all candidates are "universal" and the
  // minimal-interval rule of §4.6 applies over the whole set.
  forEachCandidateSplit(
      Ctx, Rows, PredicateMode::ConcreteMidpoint,
      [&](const SplitPredicate &Pred, const std::vector<uint32_t> &PosCounts,
          uint32_t PosTotal) {
        for (unsigned C = 0; C < NumClasses; ++C)
          NegCounts[C] = Totals[C] - PosCounts[C];
        Interval Score = flipSplitScore(PosCounts, PosTotal, NegCounts,
                                        Total - PosTotal, Budget);
        Candidates.push_back({Pred, Score.lb()});
        Lub = std::min(Lub, Score.ub());
      });

  std::vector<SplitPredicate> Kept;
  for (const Scored &Candidate : Candidates)
    if (Candidate.Lb <= Lub)
      Kept.push_back(Candidate.Pred);
  std::sort(Kept.begin(), Kept.end());
  return Kept;
}

LabelFlipResult
antidote::verifyLabelFlipRobustness(const SplitContext &Ctx,
                                    const RowIndexList &Rows, const float *X,
                                    uint32_t Budget,
                                    const LabelFlipConfig &Config) {
  assert(!Rows.empty() && "flip verification over an empty training set");
  Timer Elapsed;
  LabelFlipResult Result;
  Result.ConcretePrediction =
      runDTrace(Ctx, Rows, X, Config.Depth).PredictedClass;

  // The flip analysis is one instance of the shared DTrace# frontier
  // engine: the LabelFlip threat model supplies cprob#, the forced-pure
  // conditional, and the concrete-midpoint bestSplit#, and the engine
  // supplies the frontier loop, dedup, resource metering, cancellation,
  // and domination tracking.
  AbstractLearnerConfig Learner;
  Learner.Depth = Config.Depth;
  Learner.Domain = AbstractDomainKind::Disjuncts;
  Learner.Threat = ThreatModelKind::LabelFlip;
  Learner.Limits = Config.Limits;
  Learner.Cancel = Config.Cancel;
  AbstractLearnerResult Run = runAbstractDTrace(
      Ctx, AbstractDataset(Ctx.base(), Rows, Budget), X, Learner);

  switch (Run.Status) {
  case LearnerStatus::Completed:
    Result.RunStatus = LabelFlipResult::Status::Completed;
    break;
  case LearnerStatus::Timeout:
    Result.RunStatus = LabelFlipResult::Status::Timeout;
    break;
  case LearnerStatus::ResourceLimit:
    Result.RunStatus = LabelFlipResult::Status::ResourceLimit;
    break;
  case LearnerStatus::Cancelled:
    Result.RunStatus = LabelFlipResult::Status::Cancelled;
    break;
  }
  Result.NumTerminals = Run.NumTerminals;
  Result.PeakDisjuncts = Run.PeakDisjuncts;
  Result.Seconds = Elapsed.seconds();
  if (Result.RunStatus == LabelFlipResult::Status::Completed &&
      Run.DominatingClass) {
    assert(*Run.DominatingClass == Result.ConcretePrediction &&
           "dominating class contradicts the unflipped learner");
    Result.Robust = true;
    Result.DominatingClass = *Run.DominatingClass;
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Exhaustive flip oracle
//===----------------------------------------------------------------------===//

namespace {

/// Recursively enumerates every relabeling with at most the remaining
/// number of flips, retraining at each complete assignment.
class FlipEnumerator {
public:
  FlipEnumerator(const SplitContext &Ctx, const RowIndexList &Rows,
                 const float *X, unsigned Depth, uint64_t MaxSets,
                 FlipEnumerationResult &Result)
      : BaseCtx(Ctx), Rows(Rows), X(X), Depth(Depth), MaxSets(MaxSets),
        Result(Result),
        // Materialize the row subset once, column-by-column, and build the
        // split context over it once: flips only touch labels, and neither
        // the feature columns nor the cached sorted orders depend on them,
        // so each check() below patches labels in place instead of
        // re-copying the matrix and re-sorting every feature.
        Flipped(Dataset::gatherRows(Ctx.base(), Rows)),
        FlippedCtx(Flipped), FlippedRows(allRows(Flipped)) {
    Labels.reserve(Rows.size());
    for (uint32_t Row : Rows)
      Labels.push_back(Ctx.base().label(Row));
  }

  bool explore(size_t Index, uint32_t Remaining) {
    if (Index == Rows.size())
      return check();
    // Keep the base label.
    if (!explore(Index + 1, Remaining))
      return false;
    if (Remaining == 0)
      return true;
    unsigned BaseLabel = Labels[Index];
    for (unsigned C = 0; C < BaseCtx.base().numClasses(); ++C) {
      if (C == BaseLabel)
        continue;
      Labels[Index] = C;
      bool Continue = explore(Index + 1, Remaining - 1);
      Labels[Index] = BaseLabel;
      if (!Continue)
        return false;
    }
    return true;
  }

private:
  bool check() {
    if (Result.SetsChecked >= MaxSets) {
      Result.Exhausted = false;
      return false;
    }
    // Patch the current relabeling into the pre-gathered dataset and
    // retrain against the hoisted split context.
    for (size_t I = 0; I < Rows.size(); ++I)
      Flipped.setLabel(static_cast<unsigned>(I), Labels[I]);
    TraceResult Trace = runDTrace(FlippedCtx, FlippedRows, X, Depth);
    ++Result.SetsChecked;
    if (Trace.PredictedClass == Result.OriginalPrediction)
      return true;
    Result.Robust = false;
    return false;
  }

  const SplitContext &BaseCtx;
  const RowIndexList &Rows;
  const float *X;
  unsigned Depth;
  uint64_t MaxSets;
  FlipEnumerationResult &Result;
  Dataset Flipped;            ///< Row subset, gathered once per enumeration.
  SplitContext FlippedCtx;    ///< Label-independent; built once over Flipped.
  RowIndexList FlippedRows;   ///< allRows(Flipped), hoisted.
  std::vector<unsigned> Labels;
};

} // namespace

FlipEnumerationResult
antidote::verifyByFlipEnumeration(const SplitContext &Ctx,
                                  const RowIndexList &Rows, const float *X,
                                  uint32_t Budget, unsigned Depth,
                                  uint64_t MaxSets) {
  assert(!Rows.empty() && "flip enumeration over an empty training set");
  FlipEnumerationResult Result;
  Result.OriginalPrediction =
      runDTrace(Ctx, Rows, X, Depth).PredictedClass;
  FlipEnumerator Enumerator(Ctx, Rows, X, Depth, MaxSets, Result);
  Enumerator.explore(0, std::min<uint32_t>(
                            Budget, static_cast<uint32_t>(Rows.size())));
  return Result;
}
