//===- abstract/LabelFlip.h - Label-flip robustness certification -*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An extension beyond the paper's ∆n removal model: certification against
/// **adversarial label contamination**, where the attacker flips the labels
/// of up to n training rows (the threat model of Xiao et al.'s "Support
/// Vector Machines Under Adversarial Label Contamination", which the paper
/// cites in §7 as a modification-style poisoning model).
///
/// The perturbed set is
///   ∆flip_n(T) = { T_L : L relabels ≤ n rows of T },
/// and x is flip-robust iff DTrace(T_L, x) = DTrace(T, x) for every L.
///
/// The abstraction is pleasantly *simpler* than the removal domain, because
/// flips leave feature vectors untouched:
///  - candidate thresholds depend only on feature values, so the concrete
///    midpoint predicates are exact for every concretization — no symbolic
///    predicates and no `maybe` evaluation on x;
///  - `filter` is exact (x's side of a concrete predicate is deterministic),
///    so each abstract state keeps an exact row set plus the flip budget;
///  - only the class counts are uncertain: class i's count ranges over
///    [max(0, c_i − n), min(c_i + n, |T|)], giving the flip `cprob#`.
/// What remains abstract is `bestSplit#` (scores depend on labels), handled
/// with the same minimal-interval-overlap rule as §4.6, and the `ent = 0`
/// conditional (the attacker may be able to force a pure leaf of either
/// class). The analysis runs the disjunctive domain (§5.2 style); a box
/// variant would need a row-set join against flip semantics and is
/// intentionally not provided.
///
/// Since the threat-model refactor the verification itself is one instance
/// of the shared `DTrace#` frontier engine (abstract/AbstractDTrace.h with
/// `Threat = ThreatModelKind::LabelFlip`); `verifyLabelFlipRobustness`
/// remains as a thin convenience wrapper, and the per-model transformers
/// below are consumed by abstract/ThreatModel.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_ABSTRACT_LABELFLIP_H
#define ANTIDOTE_ABSTRACT_LABELFLIP_H

#include "abstract/Domination.h"
#include "concrete/DTrace.h"
#include "support/Budget.h"
#include "support/Interval.h"

#include <optional>

namespace antidote {

/// Flip-model `cprob#`: per-class probability intervals of a training set
/// with counts \p Counts (summing to \p Total > 0) under up to \p Budget
/// label flips.
std::vector<Interval>
flipClassProbabilities(const std::vector<uint32_t> &Counts, uint32_t Total,
                       uint32_t Budget);

/// Flip-model `score#` of a candidate split (side sizes are exact; only
/// the per-side class counts are intervals; each side may absorb up to
/// min(n, |side|) flips).
Interval flipSplitScore(const std::vector<uint32_t> &PosCounts,
                        uint32_t PosTotal, const std::vector<uint32_t>
                        &NegCounts, uint32_t NegTotal, uint32_t Budget);

/// Flip-model `bestSplit#`: every concrete (midpoint) predicate whose
/// score interval overlaps the minimal one. Since triviality of a split is
/// label-independent, Φ∀ = Φ∃ and ⋄ arises exactly when no non-trivial
/// candidate exists (then *every* concretization returns).
std::vector<SplitPredicate> flipBestSplit(const SplitContext &Ctx,
                                          const RowIndexList &Rows,
                                          uint32_t Budget);

/// Configuration of a flip-robustness query.
struct LabelFlipConfig {
  unsigned Depth = 1;

  /// Per-query resource budget (support/Budget.h is the single home of
  /// the timeout/disjunct/state-byte knobs).
  ResourceLimits Limits;

  /// Optional shared cancellation token, polled per frontier element.
  const CancellationToken *Cancel = nullptr;
};

/// Result of a flip-robustness query.
struct LabelFlipResult {
  /// Mirrors `LearnerStatus`; Completed means the analysis finished.
  enum class Status : uint8_t { Completed, Timeout, ResourceLimit,
                                Cancelled };
  Status RunStatus = Status::Completed;

  /// True iff robustness was proven: one class dominates every terminal.
  bool Robust = false;

  /// The dominating class when Robust (equals the unflipped prediction).
  unsigned DominatingClass = 0;

  /// L(T)(x) on the unflipped labels.
  unsigned ConcretePrediction = 0;

  size_t NumTerminals = 0;
  size_t PeakDisjuncts = 0;
  double Seconds = 0.0;
};

/// Proves (or fails to prove) that x's prediction is invariant under every
/// relabeling of up to \p Budget rows of `Rows` (a canonical non-empty row
/// set over `Ctx.base()`).
LabelFlipResult verifyLabelFlipRobustness(const SplitContext &Ctx,
                                          const RowIndexList &Rows,
                                          const float *X, uint32_t Budget,
                                          const LabelFlipConfig &Config);

/// Ground-truth oracle: retrains on every relabeling with ≤ \p Budget
/// flips (Σ_j C(|T|, j)(k−1)^j concrete learners), aborting at \p MaxSets.
/// Used by the soundness property tests and feasible only on tiny sets.
struct FlipEnumerationResult {
  bool Robust = true;
  bool Exhausted = true;
  uint64_t SetsChecked = 0;
  unsigned OriginalPrediction = 0;
};
FlipEnumerationResult
verifyByFlipEnumeration(const SplitContext &Ctx, const RowIndexList &Rows,
                        const float *X, uint32_t Budget, unsigned Depth,
                        uint64_t MaxSets = 2000000);

} // namespace antidote

#endif // ANTIDOTE_ABSTRACT_LABELFLIP_H
