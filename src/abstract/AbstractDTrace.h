//===- abstract/AbstractDTrace.h - The DTrace# abstract learner -*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `DTrace#` — the abstract interpretation of the trace-based learner
/// (§4.3-§4.7), in three domain configurations:
///
///  - **Box** (the paper's non-disjunctive domain): the learner state is a
///    single (⟨T,n⟩, Ψ) pair; `filter#` joins all per-predicate
///    restrictions, and the feasible `pure` restrictions of the
///    `ent(T) = 0` conditional are joined into one terminal.
///  - **Disjuncts** (§5.2): the state is a set of disjuncts; `filter#`
///    emits one disjunct per (predicate, side of x) and each feasible
///    `pure` restriction becomes its own terminal. Joins are set unions.
///  - **DisjunctsCapped** (our implementation of the future-work strategy
///    §6.3 sketches): like Disjuncts, but whenever the frontier exceeds a
///    cap the overflow disjuncts are joined into one, trading precision
///    for bounded memory.
///
/// Terminal abstract states arise from three places — feasible `ent = 0`
/// pure branches, ⋄ ∈ `bestSplit#` branches, and depth exhaustion — and are
/// streamed into a `DominationTracker` so verification can stop the moment
/// Corollary 4.12 becomes unsatisfiable.
///
/// The engine is generic over the poisoning **threat model**
/// (abstract/ThreatModel.h): every model-specific transformer — `cprob#`,
/// the pure-leaf conditional, the `bestSplit#` candidate/overlap rule —
/// is supplied by `Config.Threat`'s `ThreatModel`, so ∆n removal and
/// label-flip contamination share the frontier loop, both fan-out axes,
/// the resource accounting, and cancellation below.
///
/// Each depth iteration is split into two phases so one verification can
/// scale across cores (`FrontierJobs`): a pure per-disjunct *transfer*
/// phase (the `ent = 0` conditional, `bestSplit#`, and `filter#` for one
/// disjunct, producing that disjunct's terminals and children) that fans
/// out over a `ThreadPool`, and a sequential *merge* phase — the single
/// writer of the domination tracker, the dedup/overflow-join, and every
/// resource counter — that folds the per-disjunct results in disjunct-
/// index order. A second, nested fan-out level (`SplitJobs`) shards each
/// transfer step's `bestSplit#` candidate scoring per feature onto the
/// same pool, which is what lets a *single-disjunct-dominated* run (Box
/// domain, or a deep query before its frontier widens) scale too.
/// Because every merge replays exactly the serial order, the result
/// (terminals, certificates, `PeakDisjuncts`, `PeakStateBytes`,
/// `BestSplitCalls`) is bit-identical for every `FrontierJobs` and
/// `SplitJobs` value in all three domains; only wall-clock time changes.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_ABSTRACT_ABSTRACTDTRACE_H
#define ANTIDOTE_ABSTRACT_ABSTRACTDTRACE_H

#include "abstract/AbstractBestSplit.h"
#include "abstract/AbstractDataset.h"
#include "abstract/AbstractFilter.h"
#include "abstract/Domination.h"
#include "abstract/ThreatModel.h"
#include "concrete/BestSplit.h"
#include "support/Budget.h"
#include "support/ThreadPool.h"

#include <optional>

namespace antidote {

/// Which abstract-state representation to run DTrace# with.
enum class AbstractDomainKind : uint8_t {
  Box,             ///< Single-element domain (§4.3).
  Disjuncts,       ///< Unbounded disjunctive domain (§5.2).
  DisjunctsCapped, ///< Disjunctive with join-on-overflow (§6.3).
};

const char *domainKindName(AbstractDomainKind Kind);

/// Knobs for one DTrace# run.
struct AbstractLearnerConfig {
  unsigned Depth = 1;
  AbstractDomainKind Domain = AbstractDomainKind::Box;

  /// Which perturbation set the budget n of the initial ⟨T, n⟩ ranges
  /// over (abstract/ThreatModel.h). The model must support `Domain`
  /// (flips run the Disjuncts domain only).
  ThreatModelKind Threat = ThreatModelKind::Removal;

  CprobTransformerKind Cprob = CprobTransformerKind::Optimal;
  GiniLiftingKind Gini = GiniLiftingKind::ExactTerm;

  /// DisjunctsCapped only: max disjuncts kept per iteration before the
  /// overflow is joined. (A precision knob, not a resource cap — the caps
  /// live in `Limits`.)
  size_t DisjunctCap = 64;

  /// The run's resource budget (timeout / disjunct cap / state-byte cap);
  /// see support/Budget.h, the single home of these knobs.
  ResourceLimits Limits;

  /// Optional shared cancellation token. The learner polls it inside each
  /// depth iteration (per disjunct and inside bestSplit#'s candidate
  /// enumeration), so a controller can stop an in-flight run cooperatively
  /// without waiting for the current depth level to finish.
  const CancellationToken *Cancel = nullptr;

  /// Stop as soon as domination becomes impossible (sound for
  /// verification; disable to obtain the complete terminal set in tests).
  bool StopOnRefutation = true;

  /// Executors for the per-frontier disjunct fan-out: 1 (default) keeps
  /// the whole run on the calling thread, 0 means one executor per
  /// hardware thread. Results are bit-identical for every value; this is
  /// purely a wall-clock knob for the huge-frontier regimes of the
  /// disjunctive domains (a Box run has a one-element frontier and never
  /// fans out).
  unsigned FrontierJobs = 1;

  /// Executors for the per-feature bestSplit# sharding *inside* each
  /// disjunct's transfer step: 1 (default) scores candidates inline, 0
  /// means one executor per hardware thread. This is the axis that helps
  /// when one disjunct dominates (a Box run, or a deep query over a
  /// dataset with many features) and the frontier fan-out has nothing to
  /// spread. Shares the run's one pool with the frontier fan-out — no
  /// second pool is ever spawned, and `FrontierJobs x SplitJobs` may
  /// exceed the pool size safely (fan-out consumers compute unclaimed
  /// work inline; see support/ThreadPool.h). Results are bit-identical
  /// for every value.
  unsigned SplitJobs = 1;

  /// Optional externally owned pool for both fan-out levels (frontier
  /// disjuncts and bestSplit# feature shards); when set it is used as-is
  /// and `FrontierJobs`/`SplitJobs` only cap how many executors each
  /// level recruits (a sweep shares one pool across its instances
  /// instead of re-spawning threads per query). Null means the run
  /// spawns its own pool sized by `sharedFanoutJobs(FrontierJobs,
  /// SplitJobs)`. The pool may be shared with other concurrent runs:
  /// every fan-out's consumer computes unclaimed work itself, so a
  /// starved fan-out degrades to serial instead of deadlocking.
  ThreadPool *FrontierPool = nullptr;
};

/// Why the learner stopped.
enum class LearnerStatus : uint8_t {
  Completed,     ///< Fixed depth reached (or every path terminated early).
  Timeout,       ///< Wall-clock budget exhausted.
  ResourceLimit, ///< Disjunct/state-byte cap exceeded (the paper's OOM).
  Cancelled,     ///< Stopped via the shared CancellationToken.
};

/// Everything a DTrace# run produces.
struct AbstractLearnerResult {
  LearnerStatus Status = LearnerStatus::Completed;

  /// Terminal abstract training sets. Possibly truncated when the run
  /// stopped early (refutation, timeout, or resource limit).
  std::vector<AbstractDataset> Terminals;

  /// Total terminals folded into the domination check: `Terminals.size()`
  /// plus the forced probability-vector terminals some threat models emit
  /// (a flip attacker forcing a pure leaf) that have no abstract-state
  /// representation. Equals `Terminals.size()` under Removal.
  size_t NumTerminals = 0;

  /// The Corollary 4.12 dominating class over all terminals, when it
  /// exists and Status == Completed.
  std::optional<unsigned> DominatingClass;

  /// True iff domination was conclusively refuted (some terminal has no
  /// dominator or two terminals disagree).
  bool Refuted = false;

  size_t PeakDisjuncts = 0;
  uint64_t PeakStateBytes = 0;
  unsigned BestSplitCalls = 0;
  double Seconds = 0.0;
};

/// Runs DTrace#(⟨T,n⟩, x). \p Initial must be a non-empty abstract set over
/// `Ctx.base()`.
AbstractLearnerResult runAbstractDTrace(const SplitContext &Ctx,
                                        const AbstractDataset &Initial,
                                        const float *X,
                                        const AbstractLearnerConfig &Config);

} // namespace antidote

#endif // ANTIDOTE_ABSTRACT_ABSTRACTDTRACE_H
