//===- abstract/PredicateSet.h - Abstract predicate domain ------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract domain of predicate sets Ψ (§4.2).
///
/// A set of (possibly symbolic) predicates is abstracted *precisely* as
/// itself; joins are set unions. The set may contain the distinguished null
/// predicate ⋄, which `bestSplit#` emits when some concretization might
/// admit no non-trivial split (§4.6) and which the `φ = ⋄` conditional of
/// `DTrace#` branches on (§4.7).
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_ABSTRACT_PREDICATESET_H
#define ANTIDOTE_ABSTRACT_PREDICATESET_H

#include "concrete/Predicate.h"

#include <vector>

namespace antidote {

/// A finite set of predicates, possibly including ⋄.
class PredicateSet {
public:
  PredicateSet() = default;

  /// The initial learner state {⋄} (§4.3).
  static PredicateSet nullOnly() {
    PredicateSet Set;
    Set.HasNull = true;
    return Set;
  }

  void add(const SplitPredicate &Pred) { Preds.push_back(Pred); }
  void addNull() { HasNull = true; }

  /// Pre-sizes for \p Count bulk adds (the sharded bestSplit# fold knows
  /// its candidate total up front).
  void reserve(size_t Count) { Preds.reserve(Count); }

  /// Restores the canonical sorted/unique representation after bulk adds.
  void canonicalize();

  const std::vector<SplitPredicate> &predicates() const { return Preds; }
  bool containsNull() const { return HasNull; }

  /// Number of predicates, not counting ⋄.
  size_t size() const { return Preds.size(); }
  bool empty() const { return Preds.empty() && !HasNull; }

  /// Ψ1 ⊔ Ψ2 = Ψ1 ∪ Ψ2 (§4.2).
  static PredicateSet join(const PredicateSet &A, const PredicateSet &B);

  /// True iff the concrete predicate `x_Feature ≤ Threshold` belongs to the
  /// concretization γ(Ψ) = ∪_ρ γ(ρ) (used by the soundness tests to check
  /// Lemma 4.10 / B.5).
  bool concretizationContains(uint32_t Feature, double Threshold) const;

  bool operator==(const PredicateSet &Other) const {
    return HasNull == Other.HasNull && Preds == Other.Preds;
  }

  uint64_t stateBytes() const {
    return Preds.capacity() * sizeof(SplitPredicate) + sizeof(*this);
  }

private:
  std::vector<SplitPredicate> Preds;
  bool HasNull = false;
};

} // namespace antidote

#endif // ANTIDOTE_ABSTRACT_PREDICATESET_H
