//===- abstract/ThreatModel.cpp - First-class poisoning threat models ---------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "abstract/ThreatModel.h"

#include "abstract/AbstractBestSplit.h"
#include "abstract/AbstractDTrace.h"
#include "abstract/LabelFlip.h"

using namespace antidote;

const char *antidote::threatModelName(ThreatModelKind Kind) {
  switch (Kind) {
  case ThreatModelKind::Removal:
    return "removal";
  case ThreatModelKind::LabelFlip:
    return "flip";
  }
  assert(false && "unknown threat model kind");
  return "?";
}

std::optional<ThreatModelKind>
antidote::parseThreatModelName(const std::string &Name) {
  if (Name == "removal")
    return ThreatModelKind::Removal;
  if (Name == "flip")
    return ThreatModelKind::LabelFlip;
  return std::nullopt;
}

namespace {

/// The paper's ∆n removal model (§4): everything the engine needs is the
/// pre-existing removal transformer stack, re-exposed behind the interface.
class RemovalThreatModel final : public ThreatModel {
public:
  ThreatModelKind kind() const override { return ThreatModelKind::Removal; }

  bool supportsDomain(AbstractDomainKind) const override { return true; }

  std::vector<Interval>
  classProbabilities(const AbstractDataset &State,
                     CprobTransformerKind Kind) const override {
    return abstractClassProbabilities(State, Kind);
  }

  Interval sizeInterval(const AbstractDataset &State) const override {
    return State.sizeInterval();
  }

  bool collectPureTerminals(
      const AbstractDataset &Cur, AbstractDomainKind Domain,
      std::vector<AbstractDataset> &States,
      std::vector<std::vector<Interval>> &) const override {
    // Then-branch: restrict to single-class concretizations. A pure
    // restriction with no rows corresponds only to the empty training set,
    // which no concrete DTrace state can be (the initial set is non-empty
    // and filter keeps the non-empty side x lies on), so it is skipped.
    if (Domain == AbstractDomainKind::Box) {
      std::optional<AbstractDataset> Joined;
      for (unsigned C = 0; C < Cur.base().numClasses(); ++C) {
        std::optional<AbstractDataset> Pure = Cur.restrictToPureClass(C);
        if (!Pure || Pure->isEmptySet())
          continue;
        Joined = Joined ? AbstractDataset::join(*Joined, std::move(*Pure))
                        : std::move(*Pure);
      }
      if (Joined)
        States.push_back(std::move(*Joined));
    } else {
      for (unsigned C = 0; C < Cur.base().numClasses(); ++C) {
        std::optional<AbstractDataset> Pure = Cur.restrictToPureClass(C);
        if (Pure && !Pure->isEmptySet())
          States.push_back(std::move(*Pure));
      }
    }
    // Else-branch feasibility: if the whole abstract set is single-class,
    // every concretization has zero entropy and no concrete run continues.
    return !Cur.isSingleClass();
  }

  std::optional<PredicateSet>
  bestSplit(const SplitContext &Ctx, const AbstractDataset &Cur,
            CprobTransformerKind Cprob, GiniLiftingKind Gini,
            const ResourceMeter *Meter, ThreadPool *Pool,
            unsigned SplitJobs) const override {
    return abstractBestSplit(Ctx, Cur, Cprob, Gini, Meter, Pool, SplitJobs);
  }
};

/// Exact unit probability vector for a forced-pure terminal of \p Class.
std::vector<Interval> unitProbabilities(unsigned NumClasses, unsigned Class) {
  std::vector<Interval> Probs(NumClasses, Interval(0.0));
  Probs[Class] = Interval(1.0);
  return Probs;
}

/// Label contamination (§7, Xiao et al.): ⟨T, n⟩ is read as "exactly the
/// rows T, at most n of them relabeled". Feature vectors never move, so
/// predicates are concrete midpoints, `restrict` is equation (1) verbatim
/// (exact row side, budget clamped to the side), and only the class counts
/// are abstract.
class LabelFlipThreatModel final : public ThreatModel {
public:
  ThreatModelKind kind() const override { return ThreatModelKind::LabelFlip; }

  bool supportsDomain(AbstractDomainKind Domain) const override {
    // A box join of two exact row sets has no sound flip reading, and the
    // capped domain joins on overflow; only the pure disjunctive domain is
    // supported.
    return Domain == AbstractDomainKind::Disjuncts;
  }

  std::vector<Interval>
  classProbabilities(const AbstractDataset &State,
                     CprobTransformerKind) const override {
    return flipClassProbabilities(State.counts(), State.size(),
                                  State.budget());
  }

  Interval sizeInterval(const AbstractDataset &State) const override {
    // Relabeling never removes rows: the size is exact.
    return Interval(static_cast<double>(State.size()));
  }

  bool collectPureTerminals(
      const AbstractDataset &Cur, AbstractDomainKind,
      std::vector<AbstractDataset> &,
      std::vector<std::vector<Interval>> &Forced) const override {
    // ent(T_L) = 0 conditional: the attacker may be able to force a pure
    // leaf of class i by flipping every other-class row.
    const std::vector<uint32_t> &Counts = Cur.counts();
    uint32_t Total = Cur.size();
    for (unsigned C = 0; C < Cur.base().numClasses(); ++C)
      if (Total - Counts[C] <= Cur.budget())
        Forced.push_back(unitProbabilities(Cur.base().numClasses(), C));
    // The ent != 0 branch needs some *mixed* labeling: impossible for a
    // singleton, and for n = 0 it needs mixed base labels.
    return !(Total < 2 || (Cur.budget() == 0 && Cur.isSingleClass()));
  }

  std::optional<PredicateSet>
  bestSplit(const SplitContext &Ctx, const AbstractDataset &Cur,
            CprobTransformerKind, GiniLiftingKind,
            const ResourceMeter *Meter, ThreadPool *,
            unsigned) const override {
    // flipBestSplit has no internal poll points; honor the engine's
    // nullopt-on-interrupt contract with an up-front check.
    if (Meter && Meter->interrupted())
      return std::nullopt;
    std::vector<SplitPredicate> Preds =
        flipBestSplit(Ctx, Cur.rows(), Cur.budget());
    if (Preds.empty()) {
      // No non-trivial split exists for *any* labeling (triviality is
      // label-independent): Φ∀ = Φ∃ = ∅, so every concrete run returns
      // here — the result is exactly {⋄}.
      return PredicateSet::nullOnly();
    }
    PredicateSet Psi;
    Psi.reserve(Preds.size());
    for (const SplitPredicate &Pred : Preds)
      Psi.add(Pred);
    return Psi;
  }
};

} // namespace

const ThreatModel &antidote::threatModel(ThreatModelKind Kind) {
  static const RemovalThreatModel Removal;
  static const LabelFlipThreatModel LabelFlip;
  switch (Kind) {
  case ThreatModelKind::Removal:
    return Removal;
  case ThreatModelKind::LabelFlip:
    return LabelFlip;
  }
  assert(false && "unknown threat model kind");
  return Removal;
}
