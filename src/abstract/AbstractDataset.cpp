//===- abstract/AbstractDataset.cpp - The <T,n> training-set domain ----------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "abstract/AbstractDataset.h"

#include "concrete/Gini.h"

#include <algorithm>
#include <cstdio>

using namespace antidote;

AbstractDataset::AbstractDataset(const Dataset &Base, RowIndexList Rows,
                                 uint32_t Budget)
    : Base(&Base), Rows(std::move(Rows)),
      Budget(std::min<uint32_t>(Budget,
                                static_cast<uint32_t>(this->Rows.size()))) {
  assert(isCanonicalRowSet(this->Rows) && "rows must be sorted and unique");
  Counts = classCounts(Base, this->Rows);
}

AbstractDataset AbstractDataset::entire(const Dataset &Base,
                                        uint32_t Budget) {
  return AbstractDataset(Base, allRows(Base), Budget);
}

bool AbstractDataset::isSingleClass() const {
  return isPure(Counts);
}

bool AbstractDataset::leq(const AbstractDataset &Other) const {
  assert(Base == Other.Base && "elements over different base datasets");
  if (!rowSetIncludes(Rows, Other.Rows))
    return false;
  uint32_t Extra = static_cast<uint32_t>(Other.Rows.size() - Rows.size());
  return Budget + Extra <= Other.Budget;
}

AbstractDataset AbstractDataset::join(const AbstractDataset &A,
                                      const AbstractDataset &B) {
  assert(A.Base == B.Base && "joining elements over different base datasets");
  RowIndexList Union = rowSetUnion(A.Rows, B.Rows);
  // |T1 \ T2| = |T1 ∪ T2| − |T2| for the sorted unions we just built.
  uint32_t AOnly = static_cast<uint32_t>(Union.size() - B.Rows.size());
  uint32_t BOnly = static_cast<uint32_t>(Union.size() - A.Rows.size());
  uint32_t NewBudget = std::max(AOnly + B.Budget, BOnly + A.Budget);
  return AbstractDataset(*A.Base, std::move(Union), NewBudget);
}

std::optional<AbstractDataset>
AbstractDataset::meet(const AbstractDataset &A, const AbstractDataset &B) {
  assert(A.Base == B.Base && "meeting elements over different base datasets");
  RowIndexList Inter = rowSetIntersection(A.Rows, B.Rows);
  uint32_t AOnly = static_cast<uint32_t>(A.Rows.size() - Inter.size());
  uint32_t BOnly = static_cast<uint32_t>(B.Rows.size() - Inter.size());
  if (AOnly > A.Budget || BOnly > B.Budget)
    return std::nullopt;
  uint32_t NewBudget = std::min(A.Budget - AOnly, B.Budget - BOnly);
  return AbstractDataset(*A.Base, std::move(Inter), NewBudget);
}

bool AbstractDataset::concretizationContains(
    const RowIndexList &Candidate) const {
  assert(isCanonicalRowSet(Candidate) && "candidate must be canonical");
  if (!rowSetIncludes(Candidate, Rows))
    return false;
  return Rows.size() - Candidate.size() <= Budget;
}

AbstractDataset AbstractDataset::restrict(const SplitPredicate &Pred,
                                          bool Positive) const {
  // Partition the rows into definitely / possibly on the requested side.
  // For a concrete predicate "possibly" and "definitely" coincide and this
  // is exactly equation (1); for a symbolic ρ the Maybe rows are kept but
  // charged to the budget, which is the closed form of the Appendix B.1
  // join ⟨T,n⟩↓#φa ⊔ ⟨T,n⟩↓#φb.
  //
  // Kernel shape: the three-valued evaluation over one feature unfolds into
  // two comparisons against the predicate's column slice (True ⇔ V ≤ lo,
  // Maybe ⇔ lo < V < hi), and the kept rows compact through an always-write
  // cursor — no data-dependent branch in either loop. The scratch keeps the
  // copied-out row vector at exact capacity, which the stateBytes() memory
  // accounting depends on.
  const float *Col = Base->column(Pred.feature());
  const double PredLo = Pred.lo();
  const double PredHi = Pred.hi();
  thread_local std::vector<uint32_t> Scratch;
  Scratch.resize(Rows.size());
  uint32_t *Out = Scratch.data();
  size_t N = 0;
  uint32_t Definite = 0;
  if (Positive) {
    for (uint32_t Row : Rows) {
      const double V = Col[Row];
      const bool LeLo = V <= PredLo;
      const bool LtHi = V < PredHi;
      Out[N] = Row;
      N += LeLo | LtHi;
      Definite += LeLo;
    }
  } else {
    for (uint32_t Row : Rows) {
      const double V = Col[Row];
      const bool LeLo = V <= PredLo;
      const bool LtHi = V < PredHi;
      Out[N] = Row;
      N += !LeLo;
      Definite += !(LeLo | LtHi);
    }
  }
  RowIndexList Possible(Scratch.begin(), Scratch.begin() + N);
  uint32_t PossibleSize = static_cast<uint32_t>(N);
  uint32_t NewBudget =
      std::max(std::min(Budget, PossibleSize),
               (PossibleSize - Definite) + std::min(Budget, Definite));
  return AbstractDataset(*Base, std::move(Possible), NewBudget);
}

std::optional<AbstractDataset>
AbstractDataset::restrictToPureClass(unsigned Class) const {
  assert(Class < Base->numClasses() && "class out of range");
  uint32_t Keep = Counts[Class];
  uint32_t Drop = size() - Keep;
  if (Drop > Budget)
    return std::nullopt;
  const uint32_t *Labels = Base->labels();
  RowIndexList Pure;
  Pure.reserve(Keep);
  for (uint32_t Row : Rows)
    if (Labels[Row] == Class)
      Pure.push_back(Row);
  return AbstractDataset(*Base, std::move(Pure), Budget - Drop);
}

std::string AbstractDataset::str() const {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "<|T|=%u, n=%u>", size(), Budget);
  return Buf;
}
