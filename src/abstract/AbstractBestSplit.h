//===- abstract/AbstractBestSplit.h - bestSplit# ----------------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `bestSplit#` — the abstract predicate-selection transformer (§4.6,
/// Appendix B.2).
///
/// Where the concrete `bestSplit` returns the single score-minimizing
/// predicate, the abstract version must return every predicate that *could*
/// be minimal for *some* training set in γ(⟨T,n⟩):
///
///   1. Candidate predicates come from adjacent value pairs of the current
///      abstract set (symbolic `x ≤ [a,b)` for real features, `x ≤ 0.5` for
///      boolean ones). Lemma B.5 shows this set covers every predicate any
///      concretization's learner would construct.
///   2. Φ∃ — candidates splitting at least one concretization non-trivially
///      (both sides non-empty as sets); Φ∀ — candidates splitting *every*
///      concretization non-trivially (both sides larger than n).
///   3. If Φ∀ is empty, return Φ∃ ∪ {⋄} (some concretization may admit no
///      split at all). Otherwise return the Φ∃ predicates whose `score#`
///      lower bound does not exceed lubΦ∀, the least upper bound among Φ∀
///      scores — i.e. everything whose score interval overlaps the minimal
///      interval.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_ABSTRACT_ABSTRACTBESTSPLIT_H
#define ANTIDOTE_ABSTRACT_ABSTRACTBESTSPLIT_H

#include "abstract/AbstractDataset.h"
#include "abstract/AbstractGini.h"
#include "abstract/PredicateSet.h"
#include "concrete/BestSplit.h"
#include "support/Budget.h"

namespace antidote {

/// `bestSplit#(⟨T,n⟩)`. Requires a non-empty abstract set.
///
/// When \p Meter is given, the candidate loop polls it periodically and
/// stops scoring once interrupted; the (then possibly truncated) result is
/// only safe to use if the caller re-checks the meter before acting on it.
PredicateSet
abstractBestSplit(const SplitContext &Ctx, const AbstractDataset &Data,
                  CprobTransformerKind Kind,
                  GiniLiftingKind Lifting = GiniLiftingKind::ExactTerm,
                  const ResourceMeter *Meter = nullptr);

} // namespace antidote

#endif // ANTIDOTE_ABSTRACT_ABSTRACTBESTSPLIT_H
