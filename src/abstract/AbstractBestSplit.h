//===- abstract/AbstractBestSplit.h - bestSplit# ----------------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `bestSplit#` — the abstract predicate-selection transformer (§4.6,
/// Appendix B.2).
///
/// Where the concrete `bestSplit` returns the single score-minimizing
/// predicate, the abstract version must return every predicate that *could*
/// be minimal for *some* training set in γ(⟨T,n⟩):
///
///   1. Candidate predicates come from adjacent value pairs of the current
///      abstract set (symbolic `x ≤ [a,b)` for real features, `x ≤ 0.5` for
///      boolean ones). Lemma B.5 shows this set covers every predicate any
///      concretization's learner would construct.
///   2. Φ∃ — candidates splitting at least one concretization non-trivially
///      (both sides non-empty as sets); Φ∀ — candidates splitting *every*
///      concretization non-trivially (both sides larger than n).
///   3. If Φ∀ is empty, return Φ∃ ∪ {⋄} (some concretization may admit no
///      split at all). Otherwise return the Φ∃ predicates whose `score#`
///      lower bound does not exceed lubΦ∀, the least upper bound among Φ∀
///      scores — i.e. everything whose score interval overlaps the minimal
///      interval.
///
/// Candidate enumeration + interval scoring dominate a hard verification's
/// cost, so the loop shards *per feature*: each shard scores one feature's
/// candidates (Φ∃ membership, score intervals, its local lubΦ∀
/// contribution) independently, and the shards fold in strict
/// feature-index order — `min`/`∨` folds are exact, so the returned
/// `PredicateSet` is bit-identical to the serial scan for every `SplitJobs`
/// value.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_ABSTRACT_ABSTRACTBESTSPLIT_H
#define ANTIDOTE_ABSTRACT_ABSTRACTBESTSPLIT_H

#include "abstract/AbstractDataset.h"
#include "abstract/AbstractGini.h"
#include "abstract/PredicateSet.h"
#include "concrete/BestSplit.h"
#include "support/Budget.h"
#include "support/ThreadPool.h"

#include <optional>

namespace antidote {

/// `bestSplit#(⟨T,n⟩)`. Requires a non-empty abstract set.
///
/// When \p Meter is given, the candidate scoring polls it up front and
/// periodically while scoring; an
/// interrupted run returns `std::nullopt`, never a truncated set — a
/// partial Ψ could fabricate terminals the untruncated run would never
/// produce (spuriously refuting domination), so truncation is
/// unrepresentable and every caller must handle the interrupt explicitly.
/// Without a meter the result is always engaged.
///
/// With \p Pool and `SplitJobs != 1`, candidate scoring shards per feature
/// onto the pool (`SplitJobs` caps the executors recruited for this call,
/// 0 = one per hardware thread; the pool is typically shared with the
/// frontier fan-out). The engaged result is bit-identical for every job
/// count.
std::optional<PredicateSet>
abstractBestSplit(const SplitContext &Ctx, const AbstractDataset &Data,
                  CprobTransformerKind Kind,
                  GiniLiftingKind Lifting = GiniLiftingKind::ExactTerm,
                  const ResourceMeter *Meter = nullptr,
                  ThreadPool *Pool = nullptr, unsigned SplitJobs = 1);

} // namespace antidote

#endif // ANTIDOTE_ABSTRACT_ABSTRACTBESTSPLIT_H
