//===- abstract/AbstractDataset.h - The <T,n> training-set domain *- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract training-set domain `⟨T, n⟩` — the paper's core novelty
/// (§4.2).
///
/// An element `⟨T, n⟩` concretizes to `∆n(T) = {T' ⊆ T : |T \ T'| ≤ n}`:
/// every training set obtainable by deleting at most n rows from T. The
/// n-poisoning verification problem starts from `α(∆n(T)) = ⟨T, n⟩`
/// (which is precise) and pushes elements of this domain through the
/// abstract learner's transformers. Implemented operations:
///
///  - join `⊔` (Definition 4.1) and meet `⊓` (footnote 4),
///  - the partial order `⊑` (footnote 4),
///  - `↓#ρ` restriction by a (possibly symbolic) predicate — equation (1)
///    of §4.4 generalized per Appendix B.1 to symbolic predicates,
///  - `pure(⟨T,n⟩, i)` (§4.7) for the `ent(T) = 0` conditional,
///  - membership `T' ∈ γ(⟨T,n⟩)` for the soundness property tests.
///
/// Elements hold a sorted row-index view into an immutable base dataset
/// plus cached class counts, so all of the above are linear merges.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_ABSTRACT_ABSTRACTDATASET_H
#define ANTIDOTE_ABSTRACT_ABSTRACTDATASET_H

#include "concrete/Predicate.h"
#include "data/Dataset.h"
#include "support/Interval.h"

#include <optional>

namespace antidote {

/// An element `⟨T, n⟩` of the abstract training-set domain.
class AbstractDataset {
public:
  /// Wraps the rows \p Rows (canonical row set over \p Base) with poisoning
  /// budget \p Budget. The budget is clamped to |Rows| (as every transformer
  /// in the paper maintains n ≤ |T|).
  AbstractDataset(const Dataset &Base, RowIndexList Rows, uint32_t Budget);

  /// The initial abstraction `α(∆n(T)) = ⟨T, n⟩` over the whole dataset.
  static AbstractDataset entire(const Dataset &Base, uint32_t Budget);

  const Dataset &base() const { return *Base; }
  const RowIndexList &rows() const { return Rows; }
  uint32_t size() const { return static_cast<uint32_t>(Rows.size()); }
  uint32_t budget() const { return Budget; }

  /// Cached per-class row counts (the c_i of §4.4).
  const std::vector<uint32_t> &counts() const { return Counts; }

  /// `⟨∅, ·⟩` — no concretization has any rows. This is the bottom-ness
  /// test used by Φ∃ in `bestSplit#` (§4.6).
  bool isEmptySet() const { return Rows.empty(); }

  /// True iff ∅ ∈ γ(⟨T,n⟩), i.e. n = |T| (footnote 7). Used by Φ∀.
  bool emptySetPossible() const { return Budget >= size(); }

  /// True iff every row has the same label (then ent(T') = 0 for every
  /// concretization, making the `ent ≠ 0` branch infeasible; DESIGN.md §6).
  bool isSingleClass() const;

  /// `|⟨T,n⟩| = [|T| − n, |T|]` (§4.6).
  Interval sizeInterval() const {
    return Interval(static_cast<double>(size() - Budget),
                    static_cast<double>(size()));
  }

  /// The domain's partial order (footnote 4):
  /// `⟨T1,n1⟩ ⊑ ⟨T2,n2⟩ ⇔ T1 ⊆ T2 ∧ n1 ≤ n2 − |T2 \ T1|`.
  bool leq(const AbstractDataset &Other) const;

  /// Structural equality (same rows and budget).
  bool operator==(const AbstractDataset &Other) const {
    return Budget == Other.Budget && Rows == Other.Rows;
  }
  bool operator!=(const AbstractDataset &Other) const {
    return !(*this == Other);
  }

  /// Join `⊔` (Definition 4.1): `⟨T1 ∪ T2, max(|T1\T2| + n2, |T2\T1| + n1)⟩`.
  static AbstractDataset join(const AbstractDataset &A,
                              const AbstractDataset &B);

  /// Meet `⊓` (footnote 4); std::nullopt is ⊥.
  static std::optional<AbstractDataset> meet(const AbstractDataset &A,
                                             const AbstractDataset &B);

  /// True iff the concrete training set \p Candidate (canonical row set) is
  /// in γ(⟨T,n⟩), i.e. Candidate ⊆ T and |T \ Candidate| ≤ n.
  bool concretizationContains(const RowIndexList &Candidate) const;

  /// `⟨T,n⟩ ↓#ρ` / `⟨T,n⟩ ↓#¬ρ` — restriction to one side of a predicate.
  ///
  /// For a concrete predicate this is equation (1) of §4.4:
  /// `⟨T↓φ, min(n, |T↓φ|)⟩`. For a symbolic predicate ρ = `x ≤ [a,b)` it is
  /// the Appendix B.1 definition `⟨T,n⟩↓#φa ⊔ ⟨T,n⟩↓#φb`, computed directly:
  /// the kept rows are those *possibly* on the requested side, and the
  /// budget additionally absorbs the rows that are only possibly there.
  AbstractDataset restrict(const SplitPredicate &Pred, bool Positive) const;

  /// `pure(⟨T,n⟩, i)` (§4.7): restricts to concretizations containing only
  /// class-\p Class rows; std::nullopt is ⊥ (more than n rows of other
  /// classes would have to be dropped).
  std::optional<AbstractDataset> restrictToPureClass(unsigned Class) const;

  /// Heap bytes attributable to this element (for the Figure 7-11 memory
  /// metric).
  uint64_t stateBytes() const {
    return Rows.capacity() * sizeof(uint32_t) +
           Counts.capacity() * sizeof(uint32_t) + sizeof(*this);
  }

  /// Renders "<|T|=…, n=…>" for diagnostics.
  std::string str() const;

private:
  const Dataset *Base;
  RowIndexList Rows;
  uint32_t Budget;
  std::vector<uint32_t> Counts;
};

} // namespace antidote

#endif // ANTIDOTE_ABSTRACT_ABSTRACTDATASET_H
