//===- abstract/AbstractGini.h - cprob# / ent# / score# ---------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract versions of the Figure 5 auxiliary operators (paper §4.4, §4.6).
///
/// `cprob#(⟨T,n⟩)` returns one probability interval per class. Two sound
/// transformers are provided:
///
///  - `Optimal` — the closed form of footnote 6 based on extremal averages:
///    with m = |T| − n, class i gets [max(0, c_i − n)/m, min(c_i, m)/m].
///    This is the transformer the paper's evaluation uses.
///  - `NaiveInterval` — the "natural lifting" [max(0, c_i − n), c_i] /
///    [|T| − n, |T|] via interval division, which footnote 6 notes is not
///    even guaranteed to stay within [0, 1]. Kept for the ablation bench.
///
/// `ent#` is Gini impurity through interval arithmetic, and `score#` is
/// `|⟨T,n⟩↓φ|·ent#(↓φ) + |⟨T,n⟩↓¬φ|·ent#(↓¬φ)` with `|⟨T,n⟩| = [|T|−n, |T|]`.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_ABSTRACT_ABSTRACTGINI_H
#define ANTIDOTE_ABSTRACT_ABSTRACTGINI_H

#include "abstract/AbstractDataset.h"
#include "support/Interval.h"

#include <vector>

namespace antidote {

/// Which sound `cprob#` transformer to apply (footnote 6).
enum class CprobTransformerKind : uint8_t {
  Optimal,       ///< Extremal-average closed form (paper's implementation).
  NaiveInterval, ///< Interval-division lifting (for ablation).
};

/// How each Gini term f(ι) = ι(1 − ι) of `ent#` is evaluated (see
/// `abstractGiniImpurity` below and DESIGN.md §5).
enum class GiniLiftingKind : uint8_t {
  ExactTerm,      ///< Optimal unary image of x(1 − x) (default).
  NaturalLifting, ///< Literal ι([1,1] − ι) interval arithmetic (ablation).
};

/// `cprob#` from class counts: \p Counts sums to \p Total; \p Budget is n.
/// In the corner case n = |T| every class gets [0, 1] (§4.4).
std::vector<Interval>
abstractClassProbabilities(const std::vector<uint32_t> &Counts,
                           uint32_t Total, uint32_t Budget,
                           CprobTransformerKind Kind);

/// `cprob#(⟨T,n⟩)`. Requires a non-empty abstract set.
std::vector<Interval> abstractClassProbabilities(const AbstractDataset &Data,
                                                 CprobTransformerKind Kind);

/// The exact image of the Gini term f(x) = x(1 − x) over an interval —
/// the optimal unary transformer for each summand of `ent#`. f is concave
/// with its maximum at 1/2, so the image is
/// [min(f(lo), f(hi)), 0.25 if 1/2 ∈ ι else max(f(lo), f(hi))].
Interval abstractGiniTermRange(const Interval &Prob);

/// `ent#`: Σ f(ι_i) using the exact per-term image above.
///
/// The paper's §4.4 text writes the term as `ι([1,1] − ι)`, whose plain
/// interval-arithmetic evaluation treats the two occurrences of ι
/// independently and is dramatically looser (e.g. ub 4/7 instead of the
/// attainable 0.408 for ⟨{7w,2b}, 2⟩) — loose enough that `bestSplit#`
/// keeps almost every candidate and even the §2 running example becomes
/// unprovable. We therefore default to the exact unary image (sound, and
/// required to reproduce the paper's verified fractions) and keep the
/// literal lifting below for the ablation bench. See DESIGN.md §5.
Interval abstractGiniImpurity(
    const std::vector<Interval> &Probs,
    GiniLiftingKind Lifting = GiniLiftingKind::ExactTerm);

/// `ent#` straight from counts. For the paper's evaluation configuration
/// (Optimal × ExactTerm, n < |T|) this runs a fused branch-free kernel over
/// the flat count slice — bit-identical to, but much faster than, composing
/// `abstractClassProbabilities` + `abstractGiniImpurity`, which remain the
/// retained naive reference (and serve the ablation kinds).
Interval abstractGiniImpurityFromCounts(
    const std::vector<uint32_t> &Counts, uint32_t Total, uint32_t Budget,
    CprobTransformerKind Kind,
    GiniLiftingKind Lifting = GiniLiftingKind::ExactTerm);

/// `score#(⟨T,n⟩, φ)` from the counts of the two sides; the side budgets
/// must already be `min(n, |side|)` as `↓#` produces.
Interval abstractSplitScore(
    const std::vector<uint32_t> &PosCounts, uint32_t PosTotal,
    uint32_t PosBudget, const std::vector<uint32_t> &NegCounts,
    uint32_t NegTotal, uint32_t NegBudget, CprobTransformerKind Kind,
    GiniLiftingKind Lifting = GiniLiftingKind::ExactTerm);

/// `score#` over materialized abstract datasets.
Interval abstractSplitScore(
    const AbstractDataset &Pos, const AbstractDataset &Neg,
    CprobTransformerKind Kind,
    GiniLiftingKind Lifting = GiniLiftingKind::ExactTerm);

} // namespace antidote

#endif // ANTIDOTE_ABSTRACT_ABSTRACTGINI_H
