//===- abstract/Domination.h - Robustness domination check ------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Corollary 4.12: if one class's `cprob#` interval dominates (its lower
/// bound strictly exceeds every other class's upper bound) in every
/// terminal abstract state of `DTrace#`, then every concrete run selects
/// that class and the input is robust to n-poisoning.
///
/// `DominationTracker` evaluates the condition incrementally so the learner
/// can stop as soon as domination becomes impossible — once two terminals
/// disagree (or one has no dominating class), adding more terminals can
/// never restore domination.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_ABSTRACT_DOMINATION_H
#define ANTIDOTE_ABSTRACT_DOMINATION_H

#include "abstract/AbstractGini.h"

#include <optional>

namespace antidote {

/// The class whose interval dominates the vector, if any. At most one class
/// can dominate, since domination of i forces u_j < l_i ≤ u_i for all j≠i.
std::optional<unsigned>
dominatingClassOf(const std::vector<Interval> &Probs);

/// Incremental Corollary 4.12 evaluation over a stream of terminal states.
class DominationTracker {
public:
  explicit DominationTracker(CprobTransformerKind Kind) : Kind(Kind) {}

  /// Folds one terminal abstract training set into the check, using the
  /// removal-model `cprob#` the tracker was constructed with.
  void addTerminal(const AbstractDataset &Terminal);

  /// Folds one terminal given directly as its `cprob#` interval vector —
  /// the form threat models with non-removal probability transformers
  /// (and forced pure-leaf terminals) feed the shared engine.
  void addTerminal(const std::vector<Interval> &Probs);

  /// True once domination has become impossible.
  bool failed() const { return Failed; }

  /// The common dominating class; meaningful only after at least one
  /// terminal was added and only if the check has not failed.
  std::optional<unsigned> dominatingClass() const {
    if (Failed || !SeenAny)
      return std::nullopt;
    return Class;
  }

private:
  CprobTransformerKind Kind;
  bool Failed = false;
  bool SeenAny = false;
  unsigned Class = 0;
};

/// One-shot Corollary 4.12 over a full terminal list.
std::optional<unsigned>
dominatingClassOverTerminals(const std::vector<AbstractDataset> &Terminals,
                             CprobTransformerKind Kind);

} // namespace antidote

#endif // ANTIDOTE_ABSTRACT_DOMINATION_H
