//===- abstract/Domination.cpp - Robustness domination check ------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "abstract/Domination.h"

using namespace antidote;

std::optional<unsigned>
antidote::dominatingClassOf(const std::vector<Interval> &Probs) {
  for (unsigned I = 0, E = static_cast<unsigned>(Probs.size()); I < E; ++I) {
    bool Dominates = true;
    for (unsigned J = 0; J < E && Dominates; ++J)
      if (J != I && Probs[I].lb() <= Probs[J].ub())
        Dominates = false;
    if (Dominates)
      return I;
  }
  return std::nullopt;
}

void DominationTracker::addTerminal(const AbstractDataset &Terminal) {
  addTerminal(abstractClassProbabilities(Terminal, Kind));
}

void DominationTracker::addTerminal(const std::vector<Interval> &Probs) {
  if (Failed)
    return;
  std::optional<unsigned> Dominator = dominatingClassOf(Probs);
  if (!Dominator || (SeenAny && *Dominator != Class)) {
    Failed = true;
    return;
  }
  Class = *Dominator;
  SeenAny = true;
}

std::optional<unsigned> antidote::dominatingClassOverTerminals(
    const std::vector<AbstractDataset> &Terminals,
    CprobTransformerKind Kind) {
  DominationTracker Tracker(Kind);
  for (const AbstractDataset &Terminal : Terminals)
    Tracker.addTerminal(Terminal);
  return Tracker.dominatingClass();
}
