//===- abstract/AbstractDTrace.cpp - The DTrace# abstract learner -------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "abstract/AbstractDTrace.h"

#include "support/Timer.h"

#include <algorithm>

using namespace antidote;

const char *antidote::domainKindName(AbstractDomainKind Kind) {
  switch (Kind) {
  case AbstractDomainKind::Box:
    return "box";
  case AbstractDomainKind::Disjuncts:
    return "disjuncts";
  case AbstractDomainKind::DisjunctsCapped:
    return "disjuncts-capped";
  }
  assert(false && "unknown domain kind");
  return "?";
}

namespace {

/// Mutable run state threaded through the driver helpers.
class LearnerRun {
public:
  LearnerRun(const SplitContext &Ctx, const float *X,
             const AbstractLearnerConfig &Config)
      : Ctx(Ctx), X(X), Config(Config), Tracker(Config.Cprob),
        Meter(Config.Limits, Config.Cancel) {}

  AbstractLearnerResult run(const AbstractDataset &Initial);

private:
  /// Adds a terminal abstract state (a place where some concrete run of
  /// DTrace returns) and folds it into the domination check.
  void addTerminal(AbstractDataset Terminal) {
    Tracker.addTerminal(Terminal);
    Result.Terminals.push_back(std::move(Terminal));
  }

  /// True once the run should stop (cancellation, timeout, resource
  /// limit, or the refutation shortcut). Sets Result.Status accordingly.
  /// The budget is checked *before* the refutation shortcut so that an
  /// interrupted run always reports its interruption status.
  bool shouldAbort(size_t FrontierDisjuncts, uint64_t FrontierBytes) {
    switch (Meter.check(FrontierDisjuncts, FrontierBytes)) {
    case BudgetOutcome::Ok:
      break;
    case BudgetOutcome::Cancelled:
      Result.Status = LearnerStatus::Cancelled;
      return true;
    case BudgetOutcome::Timeout:
      Result.Status = LearnerStatus::Timeout;
      return true;
    case BudgetOutcome::ResourceLimit:
      Result.Status = LearnerStatus::ResourceLimit;
      return true;
    }
    return Config.StopOnRefutation && Tracker.failed();
  }

  /// Handles the `ent(T) = 0` conditional (§4.7) for one disjunct: feasible
  /// pure restrictions become terminals; returns false iff the `ent ≠ 0`
  /// else-branch is infeasible (every concretization is already pure).
  bool processEntropyConditional(const AbstractDataset &Cur);

  /// Advances one disjunct through bestSplit# / the ⋄ conditional /
  /// filter#, appending its successors to \p Next.
  void step(const AbstractDataset &Cur, std::vector<AbstractDataset> &Next);

  const SplitContext &Ctx;
  const float *X;
  const AbstractLearnerConfig &Config;
  DominationTracker Tracker;
  ResourceMeter Meter;
  AbstractLearnerResult Result;
};

} // namespace

bool LearnerRun::processEntropyConditional(const AbstractDataset &Cur) {
  // Then-branch: restrict to single-class concretizations. A pure
  // restriction with no rows corresponds only to the empty training set,
  // which no concrete DTrace state can be (the initial set is non-empty and
  // filter keeps the non-empty side x lies on), so it is skipped.
  if (Config.Domain == AbstractDomainKind::Box) {
    std::optional<AbstractDataset> Joined;
    for (unsigned C = 0; C < Cur.base().numClasses(); ++C) {
      std::optional<AbstractDataset> Pure = Cur.restrictToPureClass(C);
      if (!Pure || Pure->isEmptySet())
        continue;
      Joined = Joined ? AbstractDataset::join(*Joined, std::move(*Pure))
                      : std::move(*Pure);
    }
    if (Joined)
      addTerminal(std::move(*Joined));
  } else {
    for (unsigned C = 0; C < Cur.base().numClasses(); ++C) {
      std::optional<AbstractDataset> Pure = Cur.restrictToPureClass(C);
      if (Pure && !Pure->isEmptySet())
        addTerminal(std::move(*Pure));
    }
  }
  // Else-branch feasibility: if the whole abstract set is single-class,
  // every concretization has zero entropy and no concrete run continues.
  return !Cur.isSingleClass();
}

void LearnerRun::step(const AbstractDataset &Cur,
                      std::vector<AbstractDataset> &Next) {
  // An interruption inside bestSplit# yields ⊥ (never a truncated Ψ, which
  // could fabricate terminals), and one in the fan-out below leaves a
  // truncated frontier; both are sound because the persistent meter trips
  // the very next shouldAbort() poll — before the budget outcome could be
  // masked — so a truncated state never reaches a Completed verdict.
  PredicateSet Psi =
      abstractBestSplit(Ctx, Cur, Config.Cprob, Config.Gini, &Meter);
  ++Result.BestSplitCalls;

  // The φ = ⋄ conditional (§4.7): if ⋄ ∈ Ψ, some concrete run returns here
  // with its training set unchanged.
  if (Psi.containsNull())
    addTerminal(Cur);
  if (Psi.predicates().empty())
    return;

  if (Config.Domain == AbstractDomainKind::Box) {
    Next.push_back(abstractFilter(Cur, Psi, X));
    return;
  }
  // Disjunctive filter#: one disjunct per (predicate, feasible side of x).
  for (const SplitPredicate &Pred : Psi.predicates()) {
    if (Meter.interrupted())
      return;
    ThreeValued V = Pred.evaluate(X);
    if (V != ThreeValued::False)
      Next.push_back(Cur.restrict(Pred, /*Positive=*/true));
    if (V != ThreeValued::True)
      Next.push_back(Cur.restrict(Pred, /*Positive=*/false));
  }
}

AbstractLearnerResult LearnerRun::run(const AbstractDataset &Initial) {
  assert(!Initial.isEmptySet() && "DTrace# needs a non-empty abstract set");
  Timer Elapsed;
  std::vector<AbstractDataset> Frontier;
  Frontier.push_back(Initial);
  Result.PeakDisjuncts = 1;
  Result.PeakStateBytes = Initial.stateBytes();

  bool Aborted = false;
  for (unsigned Iter = 0; Iter < Config.Depth && !Frontier.empty(); ++Iter) {
    std::vector<AbstractDataset> Next;
    uint64_t FrontierBytes = 0;
    for (const AbstractDataset &Cur : Frontier) {
      if ((Aborted = shouldAbort(Frontier.size() + Next.size(),
                                 FrontierBytes)))
        break;
      size_t SizeBefore = Next.size();
      if (processEntropyConditional(Cur))
        step(Cur, Next);
      for (size_t I = SizeBefore, E = Next.size(); I < E; ++I)
        FrontierBytes += Next[I].stateBytes();
    }
    if (Aborted)
      break;

    if (Config.Domain != AbstractDomainKind::Box) {
      // Deduplicate structurally identical disjuncts; tied predicates often
      // induce the same restriction.
      std::sort(Next.begin(), Next.end(),
                [](const AbstractDataset &A, const AbstractDataset &B) {
                  if (A.budget() != B.budget())
                    return A.budget() < B.budget();
                  return A.rows() < B.rows();
                });
      Next.erase(std::unique(Next.begin(), Next.end()), Next.end());

      if (Config.Domain == AbstractDomainKind::DisjunctsCapped &&
          Config.DisjunctCap > 0) {
        // §6.3's precision-for-memory trade: collapse the frontier to the
        // cap by joining *adjacent* disjuncts. After the lexicographic
        // sort above, neighbours share most of their rows, so pairwise
        // halving loses far less precision than folding an arbitrary
        // overflow tail into one element.
        while (Next.size() > Config.DisjunctCap) {
          std::vector<AbstractDataset> Halved;
          Halved.reserve((Next.size() + 1) / 2);
          for (size_t I = 0; I + 1 < Next.size(); I += 2)
            Halved.push_back(AbstractDataset::join(Next[I], Next[I + 1]));
          if (Next.size() % 2)
            Halved.push_back(std::move(Next.back()));
          Next = std::move(Halved);
        }
      }
    }

    uint64_t LiveBytes = 0;
    for (const AbstractDataset &D : Next)
      LiveBytes += D.stateBytes();
    for (const AbstractDataset &D : Result.Terminals)
      LiveBytes += D.stateBytes();
    Result.PeakDisjuncts = std::max(Result.PeakDisjuncts, Next.size());
    Result.PeakStateBytes = std::max(Result.PeakStateBytes, LiveBytes);

    if ((Aborted = shouldAbort(Next.size(), LiveBytes)))
      break;
    Frontier = std::move(Next);
  }

  // Depth exhaustion: the surviving frontier states are terminal.
  if (!Aborted)
    for (AbstractDataset &D : Frontier) {
      addTerminal(std::move(D));
      if (Config.StopOnRefutation && Tracker.failed())
        break;
    }

  Result.Refuted = Tracker.failed();
  if (Result.Status == LearnerStatus::Completed && !Result.Refuted)
    Result.DominatingClass = Tracker.dominatingClass();
  Result.Seconds = Elapsed.seconds();
  return Result;
}

AbstractLearnerResult
antidote::runAbstractDTrace(const SplitContext &Ctx,
                            const AbstractDataset &Initial, const float *X,
                            const AbstractLearnerConfig &Config) {
  return LearnerRun(Ctx, X, Config).run(Initial);
}
