//===- abstract/AbstractDTrace.cpp - The DTrace# abstract learner -------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "abstract/AbstractDTrace.h"

#include "support/Timer.h"

#include <algorithm>

using namespace antidote;

const char *antidote::domainKindName(AbstractDomainKind Kind) {
  switch (Kind) {
  case AbstractDomainKind::Box:
    return "box";
  case AbstractDomainKind::Disjuncts:
    return "disjuncts";
  case AbstractDomainKind::DisjunctsCapped:
    return "disjuncts-capped";
  }
  assert(false && "unknown domain kind");
  return "?";
}

namespace {

/// Mutable run state threaded through the driver helpers.
///
/// Concurrency contract: every run is two alternating phases per depth
/// iteration. The *transfer* phase (`transferStep`) is const — it reads
/// Ctx/X/Config and polls the meter, but touches no mutable member — so
/// any number of pool workers may execute it on distinct disjuncts. The
/// *merge* phase runs on the calling thread only and is the single writer
/// of Tracker, Result, and the peak accounting.
class LearnerRun {
public:
  LearnerRun(const SplitContext &Ctx, const float *X,
             const AbstractLearnerConfig &Config)
      : Ctx(Ctx), X(X), Config(Config), Model(threatModel(Config.Threat)),
        Tracker(Config.Cprob), Meter(Config.Limits, Config.Cancel) {}

  AbstractLearnerResult run(const AbstractDataset &Initial);

private:
  /// Everything one disjunct's transfer step produces, in the order the
  /// serial learner would have emitted it: the forced probability-vector
  /// terminals (flip model only), then the feasible `pure` abstract-state
  /// terminals, then (when ⋄ ∈ Ψ) the disjunct itself, then the child
  /// disjuncts.
  struct DisjunctStep {
    std::vector<std::vector<Interval>> ForcedTerminals;
    std::vector<AbstractDataset> Terminals;
    std::vector<AbstractDataset> Children;
    bool CalledBestSplit = false;
  };

  /// Adds a terminal abstract state (a place where some concrete run of
  /// DTrace returns) and folds it into the domination check through the
  /// threat model's `cprob#`. Merge phase only.
  void addTerminal(AbstractDataset Terminal) {
    Tracker.addTerminal(Model.classProbabilities(Terminal, Config.Cprob));
    ++Result.NumTerminals;
    Result.Terminals.push_back(std::move(Terminal));
  }

  /// Adds a terminal known only as an exact probability vector (a forced
  /// pure leaf under the flip model). Merge phase only.
  void addForcedTerminal(const std::vector<Interval> &Probs) {
    Tracker.addTerminal(Probs);
    ++Result.NumTerminals;
  }

  /// True once the run should stop (cancellation, timeout, resource
  /// limit, or the refutation shortcut). Sets Result.Status accordingly.
  /// The budget is checked *before* the refutation shortcut so that an
  /// interrupted run always reports its interruption status.
  bool shouldAbort(size_t FrontierDisjuncts, uint64_t FrontierBytes) {
    switch (Meter.check(FrontierDisjuncts, FrontierBytes)) {
    case BudgetOutcome::Ok:
      break;
    case BudgetOutcome::Cancelled:
      Result.Status = LearnerStatus::Cancelled;
      return true;
    case BudgetOutcome::Timeout:
      Result.Status = LearnerStatus::Timeout;
      return true;
    case BudgetOutcome::ResourceLimit:
      Result.Status = LearnerStatus::ResourceLimit;
      return true;
    }
    return Config.StopOnRefutation && Tracker.failed();
  }

  /// The pure per-disjunct transfer step: the entropy conditional, then
  /// bestSplit# / the ⋄ conditional / filter#. Const — safe to run on any
  /// worker concurrently with other disjuncts' steps.
  DisjunctStep transferStep(const AbstractDataset &Cur) const;

  const SplitContext &Ctx;
  const float *X;
  const AbstractLearnerConfig &Config;
  const ThreatModel &Model;
  DominationTracker Tracker;
  ResourceMeter Meter;
  AbstractLearnerResult Result;

  /// The run's one pool, shared by the frontier fan-out and the per-
  /// feature bestSplit# sharding inside each transfer step. Set once in
  /// run() before any transfer step executes, then only read.
  ThreadPool *Pool = nullptr;
};

} // namespace

LearnerRun::DisjunctStep
LearnerRun::transferStep(const AbstractDataset &Cur) const {
  DisjunctStep Out;
  if (!Model.collectPureTerminals(Cur, Config.Domain, Out.Terminals,
                                  Out.ForcedTerminals))
    return Out;

  // An interruption inside bestSplit# yields nullopt (a truncated Ψ is
  // unrepresentable — it could fabricate terminals), and one in the
  // fan-out below leaves a truncated child list; both are sound because
  // the persistent meter trips the merge phase's very next shouldAbort()
  // poll — before the budget outcome could be masked — so a truncated
  // state never reaches a Completed verdict.
  std::optional<PredicateSet> Psi = Model.bestSplit(
      Ctx, Cur, Config.Cprob, Config.Gini, &Meter, Pool, Config.SplitJobs);
  Out.CalledBestSplit = true;
  if (!Psi)
    return Out;

  // The φ = ⋄ conditional (§4.7): if ⋄ ∈ Ψ, some concrete run returns here
  // with its training set unchanged.
  if (Psi->containsNull())
    Out.Terminals.push_back(Cur);
  if (Psi->predicates().empty())
    return Out;

  if (Config.Domain == AbstractDomainKind::Box) {
    Out.Children.push_back(abstractFilter(Cur, *Psi, X));
    return Out;
  }
  // Disjunctive filter#: one disjunct per (predicate, feasible side of x).
  for (const SplitPredicate &Pred : Psi->predicates()) {
    if (Meter.interrupted())
      return Out;
    ThreeValued V = Pred.evaluate(X);
    if (V != ThreeValued::False)
      Out.Children.push_back(Cur.restrict(Pred, /*Positive=*/true));
    if (V != ThreeValued::True)
      Out.Children.push_back(Cur.restrict(Pred, /*Positive=*/false));
  }
  return Out;
}

AbstractLearnerResult LearnerRun::run(const AbstractDataset &Initial) {
  assert(!Initial.isEmptySet() && "DTrace# needs a non-empty abstract set");
  assert(Model.supportsDomain(Config.Domain) &&
         "threat model does not support the requested abstract domain");
  Timer Elapsed;

  // The run's one fan-out pool (frontier disjuncts + bestSplit# feature
  // shards): an externally owned one (shared across a sweep's instances)
  // wins; otherwise spawn one sized for the wider of the two levels.
  // Null/empty means everything runs inline on this thread.
  std::unique_ptr<ThreadPool> OwnedPool;
  Pool = Config.FrontierPool;
  if (!Pool && (Config.FrontierJobs != 1 || Config.SplitJobs != 1)) {
    OwnedPool = makeVerificationPool(
        sharedFanoutJobs(Config.FrontierJobs, Config.SplitJobs));
    Pool = OwnedPool.get();
  }

  std::vector<AbstractDataset> Frontier;
  Frontier.push_back(Initial);
  Result.PeakDisjuncts = 1;
  Result.PeakStateBytes = Initial.stateBytes();

  bool Aborted = false;
  for (unsigned Iter = 0; Iter < Config.Depth && !Frontier.empty(); ++Iter) {
    std::vector<AbstractDataset> Next;
    uint64_t FrontierBytes = 0;
    {
      // Transfer phase: the workers compute per-disjunct steps out of
      // order while the merge below consumes them strictly in disjunct-
      // index order — replaying exactly the serial emission order, so
      // terminals, counters, and abort points are identical for every
      // FrontierJobs value.
      // The claim window bounds how far the workers may run ahead of the
      // merge (a few chunks per executor): without it, a run that a
      // budget cap would stop mid-merge could first materialize the
      // whole next frontier in Steps — precisely the OOM the caps stand
      // in for. Run-ahead memory is limited to the window's steps.
      std::vector<DisjunctStep> Steps(Frontier.size());
      // The pool may be sized for the split level (e.g. FrontierJobs = 1,
      // SplitJobs = 8), so FrontierJobs caps how many of its workers this
      // level recruits; the split shards inside each transfer step recruit
      // the rest.
      unsigned FrontierJobs = Config.FrontierJobs == 0
                                  ? ThreadPool::hardwareConcurrency()
                                  : Config.FrontierJobs;
      size_t MaxHelpers = FrontierJobs - 1;
      size_t Executors =
          Pool ? std::min<size_t>(Pool->size(), MaxHelpers) + 1 : 1;
      size_t WindowChunks = 4 * Executors;
      OrderedFanout Fanout(Pool, Frontier.size(), /*ChunkSize=*/0,
                           [this, &Steps, &Frontier](size_t I) {
                             Steps[I] = transferStep(Frontier[I]);
                           },
                           WindowChunks, MaxHelpers);

      // Merge phase: single writer of the tracker and every counter.
      for (size_t I = 0, E = Frontier.size(); I < E; ++I) {
        if ((Aborted = shouldAbort(Frontier.size() + Next.size(),
                                   FrontierBytes))) {
          // Refuted or over budget: the disjuncts past I will never be
          // merged, so tell the workers to stop paying for them.
          Fanout.cancelRemaining();
          break;
        }
        Fanout.awaitItem(I);
        DisjunctStep &Step = Steps[I];
        for (const std::vector<Interval> &Probs : Step.ForcedTerminals)
          addForcedTerminal(Probs);
        for (AbstractDataset &Terminal : Step.Terminals)
          addTerminal(std::move(Terminal));
        Result.BestSplitCalls += Step.CalledBestSplit;
        for (AbstractDataset &Child : Step.Children) {
          FrontierBytes += Child.stateBytes();
          Next.push_back(std::move(Child));
        }
        // Release the merged step's buffers now rather than at the end
        // of the iteration: with huge frontiers, Count moved-from shells
        // would otherwise accumulate alongside the live Next.
        Step = DisjunctStep();
      }
      // Fanout's destructor joins any worker still finishing a claimed
      // chunk before Steps/Frontier leave scope.
    }
    if (Aborted)
      break;

    if (Config.Domain != AbstractDomainKind::Box) {
      // Deduplicate structurally identical disjuncts; tied predicates often
      // induce the same restriction.
      std::sort(Next.begin(), Next.end(),
                [](const AbstractDataset &A, const AbstractDataset &B) {
                  if (A.budget() != B.budget())
                    return A.budget() < B.budget();
                  return A.rows() < B.rows();
                });
      Next.erase(std::unique(Next.begin(), Next.end()), Next.end());

      if (Config.Domain == AbstractDomainKind::DisjunctsCapped &&
          Config.DisjunctCap > 0) {
        // §6.3's precision-for-memory trade: collapse the frontier to the
        // cap by joining *adjacent* disjuncts. After the lexicographic
        // sort above, neighbours share most of their rows, so pairwise
        // halving loses far less precision than folding an arbitrary
        // overflow tail into one element.
        while (Next.size() > Config.DisjunctCap) {
          std::vector<AbstractDataset> Halved;
          Halved.reserve((Next.size() + 1) / 2);
          for (size_t I = 0; I + 1 < Next.size(); I += 2)
            Halved.push_back(AbstractDataset::join(Next[I], Next[I + 1]));
          if (Next.size() % 2)
            Halved.push_back(std::move(Next.back()));
          Next = std::move(Halved);
        }
      }
    }

    uint64_t LiveBytes = 0;
    for (const AbstractDataset &D : Next)
      LiveBytes += D.stateBytes();
    for (const AbstractDataset &D : Result.Terminals)
      LiveBytes += D.stateBytes();
    Result.PeakDisjuncts = std::max(Result.PeakDisjuncts, Next.size());
    Result.PeakStateBytes = std::max(Result.PeakStateBytes, LiveBytes);

    if ((Aborted = shouldAbort(Next.size(), LiveBytes)))
      break;
    Frontier = std::move(Next);
  }

  // Depth exhaustion: the surviving frontier states are terminal.
  if (!Aborted)
    for (AbstractDataset &D : Frontier) {
      addTerminal(std::move(D));
      if (Config.StopOnRefutation && Tracker.failed())
        break;
    }

  Result.Refuted = Tracker.failed();
  if (Result.Status == LearnerStatus::Completed && !Result.Refuted)
    Result.DominatingClass = Tracker.dominatingClass();
  Result.Seconds = Elapsed.seconds();
  return Result;
}

AbstractLearnerResult
antidote::runAbstractDTrace(const SplitContext &Ctx,
                            const AbstractDataset &Initial, const float *X,
                            const AbstractLearnerConfig &Config) {
  return LearnerRun(Ctx, X, Config).run(Initial);
}
