//===- abstract/AbstractFilter.cpp - filter# ----------------------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "abstract/AbstractFilter.h"

#include <optional>

using namespace antidote;

AbstractDataset antidote::abstractFilter(const AbstractDataset &Data,
                                         const PredicateSet &Preds,
                                         const float *X) {
  assert(!Preds.predicates().empty() &&
         "filter# requires at least one predicate");
  // ⟨∅, 0⟩ is the identity of ⊔ (Example 4.8); starting from "nothing yet"
  // is equivalent.
  std::optional<AbstractDataset> Acc;
  auto Include = [&Acc](AbstractDataset Part) {
    if (!Acc)
      Acc = std::move(Part);
    else
      Acc = AbstractDataset::join(*Acc, Part);
  };
  for (const SplitPredicate &Pred : Preds.predicates()) {
    ThreeValued V = Pred.evaluate(X);
    if (V != ThreeValued::False) // ρ ∈ Ψx
      Include(Data.restrict(Pred, /*Positive=*/true));
    if (V != ThreeValued::True) // ρ ∈ Ψ¬x
      Include(Data.restrict(Pred, /*Positive=*/false));
  }
  return *Acc;
}
