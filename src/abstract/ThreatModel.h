//===- abstract/ThreatModel.h - First-class poisoning threat models -*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper defines poisoning robustness generically over a perturbation
/// set ∆(T) and instantiates ∆n removal; §7 names label contamination
/// (Xiao et al.) as the modification-style sibling. This file makes the
/// choice of ∆ a first-class value: a `ThreatModel` supplies every
/// model-specific transformer the shared `DTrace#` frontier engine needs —
///
///   - `cprob#` over a terminal abstract state (`classProbabilities`),
///   - the abstract set-size interval (`sizeInterval`),
///   - the `ent(T) = 0` pure-leaf conditional (`collectPureTerminals`),
///     including terminals only expressible as probability vectors
///     (a flip attacker forcing a pure leaf of an arbitrary class),
///   - the `bestSplit#` candidate/overlap rule (`bestSplit`), whose
///     `restrict` semantics ride on the returned predicates: symbolic
///     interval predicates for removal, concrete midpoints for flips
///     (so `AbstractDataset::restrict`'s equation (1) applies verbatim),
///
/// so `AbstractDTrace`'s engine — FrontierJobs/SplitJobs fan-out,
/// ResourceMeter accounting, cooperative cancellation, domination
/// tracking — is shared by every model. Both models share the abstract
/// state ⟨T, n⟩ (`AbstractDataset`): removal reads it as "any subset
/// missing ≤ n rows", flips read it as "exactly these rows, ≤ n of them
/// relabeled"; `restrict` on a concrete predicate computes the correct
/// child under either reading.
///
/// Serving-rule applicability (see serving/StoreKey.h and
/// antidote/Verifier.cpp): the radius-range rule (Robust@N ⇒ n ≤ N,
/// Unknown@N ⇒ n ≥ N) holds for every model whose budgets nest
/// (∆a(T) ⊆ ∆b(T) for a ≤ b) — true for removal and flips. The
/// delta-slack rule additionally needs removal's containment argument
/// ∆n(T') ⊆ ∆(n+k)(T) for a child T' missing k rows of T; a flipped
/// child is *not* contained in any parent flip set, so slack serving is
/// gated to `ThreatModelKind::Removal`.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_ABSTRACT_THREATMODEL_H
#define ANTIDOTE_ABSTRACT_THREATMODEL_H

#include "abstract/AbstractDataset.h"
#include "abstract/AbstractGini.h"
#include "abstract/PredicateSet.h"
#include "concrete/BestSplit.h"
#include "support/Budget.h"
#include "support/ThreadPool.h"

#include <optional>

namespace antidote {

enum class AbstractDomainKind : uint8_t;

/// Which perturbation set ∆n(T) the budget n ranges over.
enum class ThreatModelKind : uint8_t {
  Removal,   ///< ∆n(T) = {T' ⊆ T : |T \ T'| ≤ n} (the paper's model).
  LabelFlip, ///< ∆flip_n(T) = {T_L : L relabels ≤ n rows} (Xiao et al.).
};

/// Stable lowercase names ("removal", "flip") for CLI flags, stats lines,
/// and reports.
const char *threatModelName(ThreatModelKind Kind);

/// Parses a `threatModelName` string; std::nullopt for anything else.
std::optional<ThreatModelKind> parseThreatModelName(const std::string &Name);

/// The per-model transformer bundle consumed by `runAbstractDTrace`.
/// Implementations are stateless singletons (`threatModel`); every method
/// is const and thread-safe, matching the engine's concurrent transfer
/// phase.
class ThreatModel {
public:
  virtual ~ThreatModel() = default;

  virtual ThreatModelKind kind() const = 0;
  const char *name() const { return threatModelName(kind()); }

  /// Whether the engine may run this model under \p Domain. Removal
  /// supports all three domains; flips support Disjuncts only (a box join
  /// of exact row sets is unsound under flip semantics, and the capped
  /// domain joins too).
  virtual bool supportsDomain(AbstractDomainKind Domain) const = 0;

  /// `cprob#` of a terminal abstract state under this model's reading of
  /// ⟨T, n⟩. Removal dispatches on \p Kind (Optimal / NaiveInterval);
  /// flips use the count-interval transformer, which is already optimal.
  virtual std::vector<Interval>
  classProbabilities(const AbstractDataset &State,
                     CprobTransformerKind Kind) const = 0;

  /// `|⟨T,n⟩|` under this model: [|T| − n, |T|] for removal (§4.6),
  /// the exact point |T| for flips (relabeling never changes the size).
  virtual Interval sizeInterval(const AbstractDataset &State) const = 0;

  /// The `ent(T) = 0` conditional (§4.7) for one disjunct. Appends the
  /// feasible pure terminals: abstract-state terminals to \p States
  /// (removal's `pure(⟨T,n⟩, i)` restrictions, joined under Box), exact
  /// probability-vector terminals to \p Forced (a flip attacker forcing a
  /// pure leaf of class i when |T| − c_i ≤ n). Returns false iff the
  /// `ent ≠ 0` else-branch is infeasible for every concretization.
  virtual bool
  collectPureTerminals(const AbstractDataset &Cur, AbstractDomainKind Domain,
                       std::vector<AbstractDataset> &States,
                       std::vector<std::vector<Interval>> &Forced) const = 0;

  /// `bestSplit#(⟨T,n⟩)` — the model's candidate/overlap rule (§4.6 for
  /// removal, the concrete-midpoint variant for flips). Contract matches
  /// `abstractBestSplit`: an interrupted run returns std::nullopt, never a
  /// truncated set; ⋄ ∈ result marks concretizations that return here.
  /// The engine restricts the current state by each returned predicate via
  /// `AbstractDataset::restrict`, which is exact for both models' predicate
  /// kinds.
  virtual std::optional<PredicateSet>
  bestSplit(const SplitContext &Ctx, const AbstractDataset &Cur,
            CprobTransformerKind Cprob, GiniLiftingKind Gini,
            const ResourceMeter *Meter, ThreadPool *Pool,
            unsigned SplitJobs) const = 0;
};

/// The process-wide singleton for \p Kind.
const ThreatModel &threatModel(ThreatModelKind Kind);

} // namespace antidote

#endif // ANTIDOTE_ABSTRACT_THREATMODEL_H
