//===- abstract/AbstractGini.cpp - cprob# / ent# / score# --------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "abstract/AbstractGini.h"

#include <algorithm>

using namespace antidote;

std::vector<Interval>
antidote::abstractClassProbabilities(const std::vector<uint32_t> &Counts,
                                     uint32_t Total, uint32_t Budget,
                                     CprobTransformerKind Kind) {
  assert(Total > 0 && "cprob# of the bottom element is undefined");
  assert(Budget <= Total && "budget exceeds the training-set size");
  std::vector<Interval> Probs;
  Probs.reserve(Counts.size());

  // Corner case n = |T|: the empty set is a possible concretization, where
  // cprob is undefined behaviour; the paper assigns [0, 1] to every class.
  if (Budget == Total) {
    Probs.assign(Counts.size(), Interval(0.0, 1.0));
    return Probs;
  }

  if (Kind == CprobTransformerKind::Optimal) {
    // Footnote 6: averaging the m = |T| − n least / greatest indicator
    // values gives the exact extremal probabilities.
    double M = static_cast<double>(Total - Budget);
    for (uint32_t C : Counts) {
      double Lo = C > Budget ? (C - Budget) / M : 0.0;
      double Hi = std::min<uint32_t>(C, Total - Budget) / M;
      Probs.emplace_back(Lo, Hi);
    }
    return Probs;
  }

  // Naive lifting: [max(0, c − n), c] / [|T| − n, |T|]. Both operands are
  // non-negative and the divisor excludes zero here, so the quotient is
  // [lo_num / hi_den, hi_num / lo_den].
  Interval Denominator(static_cast<double>(Total - Budget),
                       static_cast<double>(Total));
  for (uint32_t C : Counts) {
    Interval Numerator(C > Budget ? static_cast<double>(C - Budget) : 0.0,
                       static_cast<double>(C));
    Probs.push_back(Numerator / Denominator);
  }
  return Probs;
}

std::vector<Interval>
antidote::abstractClassProbabilities(const AbstractDataset &Data,
                                     CprobTransformerKind Kind) {
  return abstractClassProbabilities(Data.counts(), Data.size(), Data.budget(),
                                    Kind);
}

Interval antidote::abstractGiniTermRange(const Interval &Prob) {
  if (Prob.isEmpty())
    return Interval::makeEmpty();
  auto F = [](double X) { return X * (1.0 - X); };
  double Lo = std::min(F(Prob.lb()), F(Prob.ub()));
  double Hi = Prob.contains(0.5) ? 0.25
                                 : std::max(F(Prob.lb()), F(Prob.ub()));
  return Interval(Lo, Hi);
}

Interval antidote::abstractGiniImpurity(const std::vector<Interval> &Probs,
                                        GiniLiftingKind Lifting) {
  Interval Sum(0.0);
  Interval One(1.0);
  for (const Interval &P : Probs) {
    if (Lifting == GiniLiftingKind::ExactTerm)
      Sum = Sum + abstractGiniTermRange(P);
    else
      Sum = Sum + P * (One - P);
  }
  return Sum;
}

Interval antidote::abstractGiniImpurityFromCounts(
    const std::vector<uint32_t> &Counts, uint32_t Total, uint32_t Budget,
    CprobTransformerKind Kind, GiniLiftingKind Lifting) {
  return abstractGiniImpurity(
      abstractClassProbabilities(Counts, Total, Budget, Kind), Lifting);
}

Interval antidote::abstractSplitScore(
    const std::vector<uint32_t> &PosCounts, uint32_t PosTotal,
    uint32_t PosBudget, const std::vector<uint32_t> &NegCounts,
    uint32_t NegTotal, uint32_t NegBudget, CprobTransformerKind Kind,
    GiniLiftingKind Lifting) {
  Interval PosSize(static_cast<double>(PosTotal - PosBudget),
                   static_cast<double>(PosTotal));
  Interval NegSize(static_cast<double>(NegTotal - NegBudget),
                   static_cast<double>(NegTotal));
  return PosSize * abstractGiniImpurityFromCounts(PosCounts, PosTotal,
                                                  PosBudget, Kind, Lifting) +
         NegSize * abstractGiniImpurityFromCounts(NegCounts, NegTotal,
                                                  NegBudget, Kind, Lifting);
}

Interval antidote::abstractSplitScore(const AbstractDataset &Pos,
                                      const AbstractDataset &Neg,
                                      CprobTransformerKind Kind,
                                      GiniLiftingKind Lifting) {
  return abstractSplitScore(Pos.counts(), Pos.size(), Pos.budget(),
                            Neg.counts(), Neg.size(), Neg.budget(), Kind,
                            Lifting);
}
