//===- abstract/AbstractGini.cpp - cprob# / ent# / score# --------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "abstract/AbstractGini.h"

#include <algorithm>

using namespace antidote;

std::vector<Interval>
antidote::abstractClassProbabilities(const std::vector<uint32_t> &Counts,
                                     uint32_t Total, uint32_t Budget,
                                     CprobTransformerKind Kind) {
  assert(Total > 0 && "cprob# of the bottom element is undefined");
  assert(Budget <= Total && "budget exceeds the training-set size");
  std::vector<Interval> Probs;
  Probs.reserve(Counts.size());

  // Corner case n = |T|: the empty set is a possible concretization, where
  // cprob is undefined behaviour; the paper assigns [0, 1] to every class.
  if (Budget == Total) {
    Probs.assign(Counts.size(), Interval(0.0, 1.0));
    return Probs;
  }

  if (Kind == CprobTransformerKind::Optimal) {
    // Footnote 6: averaging the m = |T| − n least / greatest indicator
    // values gives the exact extremal probabilities.
    double M = static_cast<double>(Total - Budget);
    for (uint32_t C : Counts) {
      double Lo = C > Budget ? (C - Budget) / M : 0.0;
      double Hi = std::min<uint32_t>(C, Total - Budget) / M;
      Probs.emplace_back(Lo, Hi);
    }
    return Probs;
  }

  // Naive lifting: [max(0, c − n), c] / [|T| − n, |T|]. Both operands are
  // non-negative and the divisor excludes zero here, so the quotient is
  // [lo_num / hi_den, hi_num / lo_den].
  Interval Denominator(static_cast<double>(Total - Budget),
                       static_cast<double>(Total));
  for (uint32_t C : Counts) {
    Interval Numerator(C > Budget ? static_cast<double>(C - Budget) : 0.0,
                       static_cast<double>(C));
    Probs.push_back(Numerator / Denominator);
  }
  return Probs;
}

std::vector<Interval>
antidote::abstractClassProbabilities(const AbstractDataset &Data,
                                     CprobTransformerKind Kind) {
  return abstractClassProbabilities(Data.counts(), Data.size(), Data.budget(),
                                    Kind);
}

Interval antidote::abstractGiniTermRange(const Interval &Prob) {
  if (Prob.isEmpty())
    return Interval::makeEmpty();
  auto F = [](double X) { return X * (1.0 - X); };
  double Lo = std::min(F(Prob.lb()), F(Prob.ub()));
  double Hi = Prob.contains(0.5) ? 0.25
                                 : std::max(F(Prob.lb()), F(Prob.ub()));
  return Interval(Lo, Hi);
}

Interval antidote::abstractGiniImpurity(const std::vector<Interval> &Probs,
                                        GiniLiftingKind Lifting) {
  Interval Sum(0.0);
  Interval One(1.0);
  for (const Interval &P : Probs) {
    if (Lifting == GiniLiftingKind::ExactTerm)
      Sum = Sum + abstractGiniTermRange(P);
    else
      Sum = Sum + P * (One - P);
  }
  return Sum;
}

namespace {

/// Fused Optimal × ExactTerm `ent#` over a flat count slice: one pass that
/// folds cprob# (footnote 6's extremal averages) and the exact Gini term
/// image into straight-line min/max arithmetic — no interval objects, no
/// per-class branch. Every operation mirrors the reference composition
/// `abstractGiniImpurity(abstractClassProbabilities(...))` exactly:
///  - `max(c − n, 0) / m` equals the guarded `(c − n)/m : 0` since uint32
///    values and their differences are exactly representable in double;
///  - the 0.5-straddle select compiles to a branchless max/select;
///  - the accumulation is componentwise in class order, as interval `+` is.
/// Requires Budget < Total (the n = |T| corner keeps the reference path).
Interval fusedOptimalExactGini(const uint32_t *Counts, size_t NumClasses,
                               uint32_t Total, uint32_t Budget) {
  const double M = static_cast<double>(Total - Budget);
  const double B = static_cast<double>(Budget);
  double SumLo = 0.0;
  double SumHi = 0.0;
  for (size_t C = 0; C < NumClasses; ++C) {
    const double Count = static_cast<double>(Counts[C]);
    const double PLo = std::max(Count - B, 0.0) / M;
    const double PHi = std::min(Count, M) / M;
    const double FLo = PLo * (1.0 - PLo);
    const double FHi = PHi * (1.0 - PHi);
    const double TermLo = std::min(FLo, FHi);
    const double TermHi =
        PLo <= 0.5 && 0.5 <= PHi ? 0.25 : std::max(FLo, FHi);
    SumLo += TermLo;
    SumHi += TermHi;
  }
  return Interval(SumLo, SumHi);
}

} // namespace

Interval antidote::abstractGiniImpurityFromCounts(
    const std::vector<uint32_t> &Counts, uint32_t Total, uint32_t Budget,
    CprobTransformerKind Kind, GiniLiftingKind Lifting) {
  assert(Total > 0 && "ent# of the bottom element is undefined");
  assert(Budget <= Total && "budget exceeds the training-set size");
  // Hot path: the paper's evaluation configuration. The ablation kinds and
  // the n = |T| corner (whose division by m = 0 the fused loop cannot
  // express) stay on the reference composition, which doubles as the naive
  // implementation the property tests compare against.
  if (Kind == CprobTransformerKind::Optimal &&
      Lifting == GiniLiftingKind::ExactTerm && Budget < Total)
    return fusedOptimalExactGini(Counts.data(), Counts.size(), Total, Budget);
  return abstractGiniImpurity(
      abstractClassProbabilities(Counts, Total, Budget, Kind), Lifting);
}

Interval antidote::abstractSplitScore(
    const std::vector<uint32_t> &PosCounts, uint32_t PosTotal,
    uint32_t PosBudget, const std::vector<uint32_t> &NegCounts,
    uint32_t NegTotal, uint32_t NegBudget, CprobTransformerKind Kind,
    GiniLiftingKind Lifting) {
  if (Kind == CprobTransformerKind::Optimal &&
      Lifting == GiniLiftingKind::ExactTerm) {
    // Fused combine: sizes and impurities are non-negative, so the generic
    // four-product interval multiply reduces to lo·lo / hi·hi and the sum
    // is componentwise — the same doubles the reference expression below
    // produces, without materializing the intermediate intervals.
    const Interval PosEnt = abstractGiniImpurityFromCounts(
        PosCounts, PosTotal, PosBudget, Kind, Lifting);
    const Interval NegEnt = abstractGiniImpurityFromCounts(
        NegCounts, NegTotal, NegBudget, Kind, Lifting);
    const double Lo =
        static_cast<double>(PosTotal - PosBudget) * PosEnt.lb() +
        static_cast<double>(NegTotal - NegBudget) * NegEnt.lb();
    const double Hi = static_cast<double>(PosTotal) * PosEnt.ub() +
                      static_cast<double>(NegTotal) * NegEnt.ub();
    return Interval(Lo, Hi);
  }
  Interval PosSize(static_cast<double>(PosTotal - PosBudget),
                   static_cast<double>(PosTotal));
  Interval NegSize(static_cast<double>(NegTotal - NegBudget),
                   static_cast<double>(NegTotal));
  return PosSize * abstractGiniImpurityFromCounts(PosCounts, PosTotal,
                                                  PosBudget, Kind, Lifting) +
         NegSize * abstractGiniImpurityFromCounts(NegCounts, NegTotal,
                                                  NegBudget, Kind, Lifting);
}

Interval antidote::abstractSplitScore(const AbstractDataset &Pos,
                                      const AbstractDataset &Neg,
                                      CprobTransformerKind Kind,
                                      GiniLiftingKind Lifting) {
  return abstractSplitScore(Pos.counts(), Pos.size(), Pos.budget(),
                            Neg.counts(), Neg.size(), Neg.budget(), Kind,
                            Lifting);
}
