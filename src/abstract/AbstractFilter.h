//===- abstract/AbstractFilter.h - filter# ----------------------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `filter#` — the abstract dataset-refinement transformer (§4.5, extended
/// to three-valued symbolic predicates in Appendix B.2).
///
/// Given the abstract set, the predicate set Ψ returned by `bestSplit#`,
/// and the test input x, the box-domain filter joins `⟨T,n⟩↓#ρ` for every
/// ρ ∈ Ψ that x possibly satisfies and `⟨T,n⟩↓#¬ρ` for every ρ that x
/// possibly falsifies (a `maybe` predicate contributes both sides). The
/// disjunctive domain instead keeps every restriction as its own disjunct;
/// that path lives in `AbstractDTrace.cpp` and calls
/// `AbstractDataset::restrict` directly.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_ABSTRACT_ABSTRACTFILTER_H
#define ANTIDOTE_ABSTRACT_ABSTRACTFILTER_H

#include "abstract/AbstractDataset.h"
#include "abstract/PredicateSet.h"

namespace antidote {

/// `filter#(⟨T,n⟩, Ψ, x)` in the box domain. Requires Ψ to contain at least
/// one (non-⋄) predicate; the ⋄ branch is handled by the learner driver.
AbstractDataset abstractFilter(const AbstractDataset &Data,
                               const PredicateSet &Preds, const float *X);

} // namespace antidote

#endif // ANTIDOTE_ABSTRACT_ABSTRACTFILTER_H
