//===- data/MnistLike.h - Synthetic MNIST-1-7 generator --------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic generator for MNIST-like "1" vs "7" images (§6.1).
///
/// The paper restricts MNIST to the ones-versus-sevens task used in the
/// poisoning literature (13,007 training and 2,163 test instances) and
/// evaluates two variants: MNIST-1-7-Real (8-bit pixel intensities treated
/// as reals) and MNIST-1-7-Binary (each pixel's most significant bit). With
/// no network access we synthesize the images: jittered stroke models of
/// the two digits rendered on a 28x28 grid with greyscale noise. The
/// binary variant thresholds at 128, exactly as taking the MSB does.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_DATA_MNISTLIKE_H
#define ANTIDOTE_DATA_MNISTLIKE_H

#include "data/Synthetic.h"
#include "support/Rng.h"

namespace antidote {

/// Which feature representation to emit.
enum class MnistVariant {
  Real,   ///< 784 real-valued features in [0, 255].
  Binary, ///< 784 boolean features (pixel >= 128).
};

/// Generation parameters; the defaults reproduce the paper's scale.
struct MnistLikeConfig {
  unsigned TrainRows = 13007; ///< 6742 ones + 6265 sevens, as in MNIST-1-7.
  unsigned TestRows = 2163;   ///< 1135 ones + 1028 sevens.
  MnistVariant Variant = MnistVariant::Real;
  uint64_t Seed = DefaultDataSeed;
};

/// Generates the train/test split. Class 0 is "one", class 1 is "seven"
/// (test accuracy and robustness experiments follow the paper's labels).
TrainTestSplit makeMnistLike17(const MnistLikeConfig &Config);

/// Renders one 28x28 digit (label 0 = one, 1 = seven) into \p Pixels
/// (row-major, 784 values in [0, 255]). Exposed for the image-rendering
/// example and the generator tests.
void renderMnistLikeDigit(unsigned Label, Rng &R, float *Pixels);

/// ASCII-art rendering of a 784-pixel image (for examples/diagnostics).
std::string asciiArtDigit(const float *Pixels);

} // namespace antidote

#endif // ANTIDOTE_DATA_MNISTLIKE_H
