//===- data/Csv.h - CSV dataset I/O -----------------------------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal CSV reader/writer so the real UCI/MNIST files can be substituted
/// for the synthetic generators when available (see DESIGN.md §3).
///
/// Format: one row per line, comma-separated numeric feature values followed
/// by an integral class label in the last column. Lines beginning with '#'
/// and blank lines (including trailing ones) are skipped; CRLF line endings
/// are accepted and parse identically to LF. Malformed input — ragged rows,
/// trailing commas, stray carriage returns, non-numeric cells — is an error,
/// never a silent truncation. The loader infers Boolean columns (all values
/// in {0, 1}) unless a schema is supplied.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_DATA_CSV_H
#define ANTIDOTE_DATA_CSV_H

#include "data/Dataset.h"

#include <optional>
#include <string>

namespace antidote {

/// Outcome of a CSV load; `Error` is empty on success.
struct CsvLoadResult {
  std::optional<Dataset> Data;
  std::string Error;

  bool succeeded() const { return Data.has_value(); }
};

/// Parses CSV text into a dataset. If \p Schema is provided, rows must
/// conform to it; otherwise feature kinds and the class count are inferred.
CsvLoadResult parseCsvDataset(const std::string &Text,
                              const std::optional<DatasetSchema> &Schema =
                                  std::nullopt);

/// Loads a CSV dataset from \p Path.
CsvLoadResult loadCsvDataset(const std::string &Path,
                             const std::optional<DatasetSchema> &Schema =
                                 std::nullopt);

/// Renders \p Data in the accepted CSV format.
std::string writeCsvDataset(const Dataset &Data);

/// Writes \p Data to \p Path; returns false (and sets \p Error) on failure.
bool saveCsvDataset(const Dataset &Data, const std::string &Path,
                    std::string &Error);

} // namespace antidote

#endif // ANTIDOTE_DATA_CSV_H
