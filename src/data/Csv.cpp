//===- data/Csv.cpp - CSV dataset I/O ---------------------------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "data/Csv.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

using namespace antidote;

namespace {

/// One parsed numeric row: features plus trailing label.
struct RawRow {
  std::vector<float> Features;
  long Label;
};

} // namespace

static bool parseLine(const std::string &Line, size_t LineNo, RawRow &Row,
                      std::string &Error) {
  Row.Features.clear();
  // The caller strips the CRLF pair's '\r'; any carriage return still in
  // the line is stray (mixed line endings or a mid-line control byte).
  // Reject it up front: strtod treats '\r' as skippable whitespace, so it
  // would otherwise silently merge or truncate cells.
  if (Line.find('\r') != std::string::npos) {
    Error = "line " + std::to_string(LineNo) +
            ": stray carriage return (mixed CRLF line endings?)";
    return false;
  }
  const char *Cursor = Line.c_str();
  std::vector<double> Cells;
  while (*Cursor) {
    char *End = nullptr;
    errno = 0;
    double V = std::strtod(Cursor, &End);
    if (End == Cursor || errno == ERANGE) {
      Error = "line " + std::to_string(LineNo) + ": malformed numeric cell";
      return false;
    }
    Cells.push_back(V);
    Cursor = End;
    while (*Cursor == ' ' || *Cursor == '\t')
      ++Cursor;
    if (*Cursor == ',') {
      ++Cursor;
      if (*Cursor == '\0') {
        // A trailing comma means a missing final cell; rows must never
        // silently shrink.
        Error = "line " + std::to_string(LineNo) +
                ": trailing comma (empty final cell)";
        return false;
      }
      continue;
    }
    if (*Cursor == '\0')
      break;
    Error = "line " + std::to_string(LineNo) + ": unexpected character '" +
            std::string(1, *Cursor) + "'";
    return false;
  }
  if (Cells.size() < 2) {
    Error = "line " + std::to_string(LineNo) +
            ": need at least one feature and a label";
    return false;
  }
  double LabelCell = Cells.back();
  Cells.pop_back();
  if (LabelCell != std::floor(LabelCell) || LabelCell < 0) {
    Error = "line " + std::to_string(LineNo) +
            ": label must be a non-negative integer";
    return false;
  }
  Row.Label = static_cast<long>(LabelCell);
  Row.Features.reserve(Cells.size());
  for (double V : Cells)
    Row.Features.push_back(static_cast<float>(V));
  return true;
}

CsvLoadResult
antidote::parseCsvDataset(const std::string &Text,
                          const std::optional<DatasetSchema> &Schema) {
  CsvLoadResult Result;
  std::vector<RawRow> Rows;
  std::istringstream Stream(Text);
  std::string Line;
  size_t LineNo = 0;
  long MaxLabel = -1;
  size_t NumFeatures = Schema ? Schema->numFeatures() : 0;
  while (std::getline(Stream, Line)) {
    ++LineNo;
    // CRLF input: getline strips only the '\n', so drop the paired '\r'
    // here — otherwise it rides along on the last cell of every row.
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    // Skip blanks and comments uniformly — including whitespace-only
    // lines and trailing blank lines, which must never become rows.
    size_t First = Line.find_first_not_of(" \t");
    if (First == std::string::npos || Line[First] == '#')
      continue;
    RawRow Row;
    if (!parseLine(Line, LineNo, Row, Result.Error))
      return Result;
    if (Rows.empty() && !Schema)
      NumFeatures = Row.Features.size();
    if (Row.Features.size() != NumFeatures) {
      Result.Error = "line " + std::to_string(LineNo) + ": expected " +
                     std::to_string(NumFeatures) + " features, got " +
                     std::to_string(Row.Features.size());
      return Result;
    }
    MaxLabel = std::max(MaxLabel, Row.Label);
    Rows.push_back(std::move(Row));
  }
  if (Rows.empty()) {
    Result.Error = "no data rows";
    return Result;
  }

  DatasetSchema Resolved;
  if (Schema) {
    Resolved = *Schema;
    if (MaxLabel >= static_cast<long>(Resolved.NumClasses)) {
      Result.Error = "label " + std::to_string(MaxLabel) +
                     " out of range for schema with " +
                     std::to_string(Resolved.NumClasses) + " classes";
      return Result;
    }
  } else {
    // Infer: a column is Boolean iff every value is exactly 0 or 1.
    Resolved.NumClasses = static_cast<unsigned>(MaxLabel + 1);
    Resolved.FeatureKinds.assign(NumFeatures, FeatureKind::Boolean);
    for (const RawRow &Row : Rows)
      for (size_t F = 0; F < NumFeatures; ++F)
        if (Row.Features[F] != 0.0f && Row.Features[F] != 1.0f)
          Resolved.FeatureKinds[F] = FeatureKind::Real;
  }

  Dataset Data(Resolved);
  Data.reserveRows(static_cast<unsigned>(Rows.size()));
  for (const RawRow &Row : Rows)
    Data.addRow(Row.Features, static_cast<unsigned>(Row.Label));
  Result.Data = std::move(Data);
  return Result;
}

CsvLoadResult
antidote::loadCsvDataset(const std::string &Path,
                         const std::optional<DatasetSchema> &Schema) {
  CsvLoadResult Result;
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Result.Error = "cannot open " + Path + ": " + std::strerror(errno);
    return Result;
  }
  std::string Text;
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  std::fclose(F);
  return parseCsvDataset(Text, Schema);
}

std::string antidote::writeCsvDataset(const Dataset &Data) {
  std::string Out;
  Out.reserve(static_cast<size_t>(Data.numRows()) *
              (Data.numFeatures() * 4 + 4));
  char Buf[64];
  for (unsigned Row = 0; Row < Data.numRows(); ++Row) {
    for (unsigned F = 0; F < Data.numFeatures(); ++F) {
      std::snprintf(Buf, sizeof(Buf), "%g,", Data.value(Row, F));
      Out += Buf;
    }
    std::snprintf(Buf, sizeof(Buf), "%u\n", Data.label(Row));
    Out += Buf;
  }
  return Out;
}

bool antidote::saveCsvDataset(const Dataset &Data, const std::string &Path,
                              std::string &Error) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    Error = "cannot open " + Path + ": " + std::strerror(errno);
    return false;
  }
  std::string Text = writeCsvDataset(Data);
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  std::fclose(F);
  if (Written != Text.size()) {
    Error = "short write to " + Path;
    return false;
  }
  return true;
}
