//===- data/Fingerprint.cpp - Stable dataset content hashes -------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "data/Fingerprint.h"

#include "support/BitHash.h"

#include <cstdio>

using namespace antidote;

namespace {

/// Two independently seeded 64-bit mixing streams make up the 128-bit
/// fingerprint. Each stream is an FNV-1a walk followed by a murmur-style
/// finalizer per word; the streams differ in offset basis and prime so a
/// single-word perturbation decorrelates both halves. Float values enter
/// as storage bits via support/BitHash.h — the shared bit-pattern
/// identity policy (0.0 != -0.0, NaN-safe).
class Hash128 {
public:
  void word(uint64_t W) {
    Hi = step(Hi ^ W, 0x100000001b3ULL);
    Lo = step(Lo ^ (W * 0x9e3779b97f4a7c15ULL + 1), 0x00000100000001b3ULL);
  }

  /// Length-prefixes a section so adjacent variable-length fields (class
  /// names, rows) cannot alias each other's encodings.
  void section(uint64_t Tag, uint64_t Length) {
    word(0xa5a5a5a5a5a5a5a5ULL ^ Tag);
    word(Length);
  }

  DatasetFingerprint result() const {
    DatasetFingerprint FP;
    FP.Hi = splitmix64(Hi ^ Lo * 3);
    FP.Lo = splitmix64(Lo ^ Hi * 5);
    return FP;
  }

private:
  static uint64_t step(uint64_t H, uint64_t Prime) {
    H *= Prime;
    H ^= H >> 29;
    return H;
  }

  uint64_t Hi = 0xcbf29ce484222325ULL; // FNV-1a offset basis.
  uint64_t Lo = 0x84222325cbf29ce4ULL; // Byte-swapped basis for stream 2.
};

} // namespace

std::string DatasetFingerprint::hex() const {
  char Buf[33];
  std::snprintf(Buf, sizeof(Buf), "%016llx%016llx",
                static_cast<unsigned long long>(Hi),
                static_cast<unsigned long long>(Lo));
  return Buf;
}

DatasetFingerprint antidote::fingerprintDataset(const Dataset &Data) {
  const DatasetSchema &Schema = Data.schema();
  Hash128 H;

  H.section(/*Tag=*/1, Schema.FeatureKinds.size());
  for (FeatureKind Kind : Schema.FeatureKinds)
    H.word(static_cast<uint64_t>(Kind));
  H.word(Schema.NumClasses);

  H.section(/*Tag=*/2, Schema.ClassNames.size());
  for (const std::string &Name : Schema.ClassNames) {
    H.word(Name.size());
    for (char C : Name)
      H.word(static_cast<unsigned char>(C));
  }

  // Row-major word order is the on-disk/cache-key contract: walk the column
  // slices in lockstep instead of materializing the row-major mirror.
  H.section(/*Tag=*/3, Data.numRows());
  const unsigned NumFeatures = Data.numFeatures();
  std::vector<const float *> Cols(NumFeatures);
  for (unsigned Feature = 0; Feature < NumFeatures; ++Feature)
    Cols[Feature] = Data.column(Feature);
  for (unsigned Row = 0; Row < Data.numRows(); ++Row) {
    for (unsigned Feature = 0; Feature < NumFeatures; ++Feature)
      H.word(floatBits(Cols[Feature][Row]));
    H.word(Data.label(Row));
  }
  return H.result();
}

DatasetLineage antidote::lineageSinceMark(const DatasetFingerprint &Parent,
                                          const Dataset &Child) {
  DatasetLineage L;
  L.Parent = Parent;
  L.RowsAdded = Child.rowsAddedSinceMark();
  L.RowsRemoved = Child.rowsRemovedSinceMark();
  return L;
}
