//===- data/Synthetic.h - Synthetic UCI-like dataset generators -*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic synthetic stand-ins for the three UCI datasets of §6.1.
///
/// This environment has no network access, so the exact UCI files cannot be
/// fetched; per DESIGN.md §3 we generate class-conditional samples matching
/// each dataset's published shape (row counts, feature counts/kinds, class
/// balance, and the margin structure that drives decision-tree behaviour).
/// Generators are pure functions of their seed.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_DATA_SYNTHETIC_H
#define ANTIDOTE_DATA_SYNTHETIC_H

#include "data/Dataset.h"

#include <cstdint>

namespace antidote {

/// A dataset split into the paper's 80%/20% train/test partition.
struct TrainTestSplit {
  Dataset Train;
  Dataset Test;
};

/// Default seed shared by every generator so the whole benchmark suite is
/// reproducible end to end.
inline constexpr uint64_t DefaultDataSeed = 0xA47190DE2020ULL;

/// Iris-like: 150 rows (120 train / 30 test), 4 real features, 3 classes.
///
/// Cluster means/stddevs follow the published per-class statistics of the
/// real Iris data (values rounded to one decimal, as in the original). The
/// train split holds exactly 40 rows per class so that the depth-1 tree's
/// non-Setosa leaf is an exact two-class tie — the instability quirk the
/// paper calls out in footnote 10.
TrainTestSplit makeIrisLike(uint64_t Seed = DefaultDataSeed);

/// Mammographic-Masses-like: 830 rows (664 / 166), 5 ordinal-integer
/// features (BI-RADS, age, shape, margin, density), 2 classes.
TrainTestSplit makeMammographicLike(uint64_t Seed = DefaultDataSeed);

/// WDBC-like: 569 rows (456 / 113), 30 real features (10 base measurements
/// in mean/se/worst triples, with the original's internal correlations),
/// 2 classes with the original's 357/212 benign/malignant balance.
TrainTestSplit makeWdbcLike(uint64_t Seed = DefaultDataSeed);

} // namespace antidote

#endif // ANTIDOTE_DATA_SYNTHETIC_H
