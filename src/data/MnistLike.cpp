//===- data/MnistLike.cpp - Synthetic MNIST-1-7 generator -------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "data/MnistLike.h"

#include <algorithm>
#include <cmath>

using namespace antidote;

static constexpr unsigned GridSide = 28;
static constexpr unsigned GridPixels = GridSide * GridSide;

/// Deposits ink at (X, Y) with the given radius, keeping the brightest
/// value per pixel. Gaussian falloff gives anti-aliased stroke edges like
/// the blurring in real scanned digits.
static void stampInk(float *Pixels, double X, double Y, double Radius,
                     double Intensity) {
  int MinX = std::max(0, static_cast<int>(std::floor(X - Radius - 1)));
  int MaxX = std::min<int>(GridSide - 1,
                           static_cast<int>(std::ceil(X + Radius + 1)));
  int MinY = std::max(0, static_cast<int>(std::floor(Y - Radius - 1)));
  int MaxY = std::min<int>(GridSide - 1,
                           static_cast<int>(std::ceil(Y + Radius + 1)));
  for (int Py = MinY; Py <= MaxY; ++Py) {
    for (int Px = MinX; Px <= MaxX; ++Px) {
      double Dx = Px - X;
      double Dy = Py - Y;
      double Dist2 = Dx * Dx + Dy * Dy;
      double Sigma = Radius * 0.75;
      double Value = Intensity * std::exp(-Dist2 / (2.0 * Sigma * Sigma));
      float &Cell = Pixels[Py * GridSide + Px];
      Cell = std::max(Cell, static_cast<float>(Value));
    }
  }
}

/// Draws a line segment by stamping ink along it.
static void drawStroke(float *Pixels, double X0, double Y0, double X1,
                       double Y1, double Radius, double Intensity) {
  double Dx = X1 - X0;
  double Dy = Y1 - Y0;
  double Length = std::sqrt(Dx * Dx + Dy * Dy);
  unsigned Steps = std::max(2u, static_cast<unsigned>(Length * 3));
  for (unsigned I = 0; I <= Steps; ++I) {
    double T = static_cast<double>(I) / Steps;
    stampInk(Pixels, X0 + T * Dx, Y0 + T * Dy, Radius, Intensity);
  }
}

void antidote::renderMnistLikeDigit(unsigned Label, Rng &R, float *Pixels) {
  assert((Label == 0 || Label == 1) && "labels are 0 (one) and 1 (seven)");
  std::fill(Pixels, Pixels + GridPixels, 0.0f);

  double Radius = R.uniform(1.0, 1.9);
  double Intensity = R.uniform(215.0, 255.0);

  if (Label == 0) {
    // A "1": near-vertical stroke with a slight slant, occasionally with a
    // short flag at the top and a base serif.
    double CenterX = 14.0 + R.gaussian(0.0, 1.6);
    double Slant = R.gaussian(0.0, 1.3);
    double TopY = R.uniform(3.0, 6.0);
    double BotY = R.uniform(22.0, 25.0);
    drawStroke(Pixels, CenterX + Slant, TopY, CenterX - Slant, BotY, Radius,
               Intensity);
    if (R.bernoulli(0.55)) // Top flag.
      drawStroke(Pixels, CenterX + Slant - R.uniform(2.5, 4.5),
                 TopY + R.uniform(1.5, 3.0), CenterX + Slant, TopY, Radius,
                 Intensity);
    if (R.bernoulli(0.3)) // Base serif.
      drawStroke(Pixels, CenterX - Slant - 2.5, BotY, CenterX - Slant + 2.5,
                 BotY, Radius, Intensity);
  } else {
    // A "7": horizontal top bar plus a diagonal descender, occasionally
    // with a middle crossbar (European style).
    double LeftX = R.uniform(5.0, 8.0);
    double RightX = R.uniform(19.0, 23.0);
    double TopY = R.uniform(4.0, 7.0);
    double FootX = R.uniform(8.0, 13.0);
    double FootY = R.uniform(22.0, 25.0);
    drawStroke(Pixels, LeftX, TopY + R.gaussian(0.0, 0.5), RightX, TopY,
               Radius, Intensity);
    drawStroke(Pixels, RightX, TopY, FootX, FootY, Radius, Intensity);
    if (R.bernoulli(0.25)) {
      double MidY = (TopY + FootY) * 0.5;
      double MidX = RightX + (FootX - RightX) * 0.5;
      drawStroke(Pixels, MidX - 3.0, MidY, MidX + 3.0, MidY, Radius,
                 Intensity);
    }
  }

  // Sensor noise: faint speckle everywhere, mild jitter on ink.
  for (unsigned P = 0; P < GridPixels; ++P) {
    double V = Pixels[P];
    if (V > 0.0)
      V += R.gaussian(0.0, 8.0);
    if (R.bernoulli(0.02))
      V += R.uniform(0.0, 40.0);
    Pixels[P] = static_cast<float>(std::clamp(V, 0.0, 255.0));
  }
}

TrainTestSplit antidote::makeMnistLike17(const MnistLikeConfig &Config) {
  FeatureKind Kind = Config.Variant == MnistVariant::Binary
                         ? FeatureKind::Boolean
                         : FeatureKind::Real;
  DatasetSchema Schema = DatasetSchema::uniform(GridPixels, Kind, 2);
  Schema.ClassNames = {"one", "seven"};

  // Class balance of the real MNIST-1-7 task: 6742/13007 training ones,
  // 1135/2163 test ones.
  auto OnesIn = [](unsigned Total, unsigned Full, unsigned FullOnes) {
    return static_cast<unsigned>(
        std::lround(static_cast<double>(Total) * FullOnes / Full));
  };
  unsigned TrainOnes = OnesIn(Config.TrainRows, 13007, 6742);
  unsigned TestOnes = OnesIn(Config.TestRows, 2163, 1135);

  // Note: the variant changes the feature encoding, not the underlying
  // images; both variants of the same seed/scale describe the same digits,
  // mirroring how the paper derives Binary from Real.
  Rng R(Config.Seed ^ 0x177ULL);
  float Pixels[GridPixels];
  auto Emit = [&](Dataset &Target, unsigned Rows, unsigned Ones) {
    Target.reserveRows(Rows);
    for (unsigned I = 0; I < Rows; ++I) {
      // Interleave classes deterministically so any prefix subsample keeps
      // the class balance (the scaled benches rely on this).
      unsigned Label =
          (static_cast<uint64_t>(I) * Ones) % Rows < Ones ? 0u : 1u;
      renderMnistLikeDigit(Label, R, Pixels);
      if (Config.Variant == MnistVariant::Binary)
        for (float &V : Pixels)
          V = V >= 128.0f ? 1.0f : 0.0f;
      Target.addRow(Pixels, Label);
    }
  };

  TrainTestSplit Split{Dataset(Schema), Dataset(Schema)};
  Emit(Split.Train, Config.TrainRows, TrainOnes);
  Emit(Split.Test, Config.TestRows, TestOnes);
  return Split;
}

std::string antidote::asciiArtDigit(const float *Pixels) {
  static const char Shades[] = " .:-=+*#%@";
  // Binary images store {0, 1}; scale them to the 8-bit range so they
  // render with the same shade table as greyscale images.
  bool Binary = true;
  for (unsigned P = 0; P < GridPixels && Binary; ++P)
    Binary = Pixels[P] == 0.0f || Pixels[P] == 1.0f;
  double Scale = Binary ? 255.0 : 1.0;
  std::string Art;
  Art.reserve((GridSide + 1) * GridSide);
  for (unsigned Y = 0; Y < GridSide; ++Y) {
    for (unsigned X = 0; X < GridSide; ++X) {
      double V =
          std::clamp<double>(Pixels[Y * GridSide + X] * Scale, 0.0, 255.0);
      Art += Shades[static_cast<unsigned>(V / 256.0 * 10)];
    }
    Art += '\n';
  }
  return Art;
}
