//===- data/Registry.cpp - Benchmark dataset registry -------------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "data/Registry.h"

#include "data/MnistLike.h"
#include "support/Rng.h"

#include <cassert>
#include <cstdlib>
#include <cstring>

using namespace antidote;

BenchScale antidote::benchScaleFromEnv() {
  const char *Value = std::getenv("ANTIDOTE_BENCH_SCALE");
  if (Value && std::strcmp(Value, "full") == 0)
    return BenchScale::Full;
  return BenchScale::Scaled;
}

const std::vector<std::string> &antidote::benchmarkDatasetNames() {
  static const std::vector<std::string> Names = {
      "iris", "mammography", "wdbc", "mnist17-binary", "mnist17-real"};
  return Names;
}

/// Picks \p Count distinct test rows, deterministically but "randomly"
/// (mirroring the paper's fixed random 100-element MNIST subset).
static std::vector<uint32_t> pickVerifyRows(unsigned TestRows,
                                            unsigned Count) {
  Count = std::min(Count, TestRows);
  std::vector<uint32_t> All(TestRows);
  for (unsigned I = 0; I < TestRows; ++I)
    All[I] = I;
  Rng R(0x5e1ec7ULL);
  for (unsigned I = 0; I < Count; ++I) {
    unsigned J = I + static_cast<unsigned>(R.uniformInt(TestRows - I));
    std::swap(All[I], All[J]);
  }
  All.resize(Count);
  return All;
}

BenchmarkDataset antidote::loadBenchmarkDataset(const std::string &Name,
                                                BenchScale Scale) {
  bool Full = Scale == BenchScale::Full;
  BenchmarkDataset Result;
  Result.Name = Name;

  if (Name == "iris") {
    Result.Split = makeIrisLike();
    // The paper verifies every UCI test element.
    Result.VerifyRows =
        pickVerifyRows(Result.Split.Test.numRows(),
                       Result.Split.Test.numRows());
    return Result;
  }
  if (Name == "mammography") {
    Result.Split = makeMammographicLike();
    Result.VerifyRows = pickVerifyRows(Result.Split.Test.numRows(),
                                       Full ? Result.Split.Test.numRows()
                                            : 40);
    return Result;
  }
  if (Name == "wdbc") {
    Result.Split = makeWdbcLike();
    Result.VerifyRows = pickVerifyRows(Result.Split.Test.numRows(),
                                       Full ? Result.Split.Test.numRows()
                                            : 30);
    return Result;
  }
  if (Name == "mnist17-binary" || Name == "mnist17-real") {
    MnistLikeConfig Config;
    Config.Variant = Name == "mnist17-binary" ? MnistVariant::Binary
                                              : MnistVariant::Real;
    if (!Full) {
      Config.TrainRows = 1300;
      Config.TestRows = 220;
    }
    Result.Split = makeMnistLike17(Config);
    Result.VerifyRows = pickVerifyRows(Result.Split.Test.numRows(),
                                       Full ? 100 : 20);
    return Result;
  }
  assert(false && "unknown benchmark dataset name");
  return Result;
}
