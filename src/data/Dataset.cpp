//===- data/Dataset.cpp - Training/test set substrate ----------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "data/Dataset.h"

#include <algorithm>
#include <numeric>

using namespace antidote;

DatasetSchema DatasetSchema::uniform(unsigned NumFeatures, FeatureKind Kind,
                                     unsigned NumClasses) {
  DatasetSchema Schema;
  Schema.FeatureKinds.assign(NumFeatures, Kind);
  Schema.NumClasses = NumClasses;
  return Schema;
}

void Dataset::reserveRows(unsigned N) {
  Values.reserve(static_cast<size_t>(N) * numFeatures());
  Labels.reserve(N);
}

void Dataset::addRow(const std::vector<float> &Features, unsigned Label) {
  assert(Features.size() == numFeatures() && "feature count mismatch");
  addRow(Features.data(), Label);
}

void Dataset::addRow(const float *Features, unsigned Label) {
  assert(Label < numClasses() && "label out of range");
#ifndef NDEBUG
  for (unsigned F = 0; F < numFeatures(); ++F)
    if (Schema.FeatureKinds[F] == FeatureKind::Boolean)
      assert((Features[F] == 0.0f || Features[F] == 1.0f) &&
             "boolean feature must be 0 or 1");
#endif
  Values.insert(Values.end(), Features, Features + numFeatures());
  Labels.push_back(Label);
}

RowIndexList antidote::allRows(const Dataset &Base) {
  RowIndexList Rows(Base.numRows());
  std::iota(Rows.begin(), Rows.end(), 0);
  return Rows;
}

std::vector<uint32_t> antidote::classCounts(const Dataset &Base,
                                            const RowIndexList &Rows) {
  std::vector<uint32_t> Counts(Base.numClasses(), 0);
  for (uint32_t Row : Rows)
    ++Counts[Base.label(Row)];
  return Counts;
}

bool antidote::isCanonicalRowSet(const RowIndexList &Rows) {
  for (size_t I = 1, E = Rows.size(); I < E; ++I)
    if (Rows[I - 1] >= Rows[I])
      return false;
  return true;
}

uint32_t antidote::rowSetDifferenceSize(const RowIndexList &A,
                                        const RowIndexList &B) {
  assert(isCanonicalRowSet(A) && isCanonicalRowSet(B) && "unsorted row sets");
  uint32_t Count = 0;
  size_t I = 0, J = 0;
  while (I < A.size() && J < B.size()) {
    if (A[I] < B[J]) {
      ++Count;
      ++I;
    } else if (A[I] > B[J]) {
      ++J;
    } else {
      ++I;
      ++J;
    }
  }
  Count += static_cast<uint32_t>(A.size() - I);
  return Count;
}

RowIndexList antidote::rowSetUnion(const RowIndexList &A,
                                   const RowIndexList &B) {
  assert(isCanonicalRowSet(A) && isCanonicalRowSet(B) && "unsorted row sets");
  RowIndexList Result;
  Result.reserve(A.size() + B.size());
  std::set_union(A.begin(), A.end(), B.begin(), B.end(),
                 std::back_inserter(Result));
  return Result;
}

RowIndexList antidote::rowSetIntersection(const RowIndexList &A,
                                          const RowIndexList &B) {
  assert(isCanonicalRowSet(A) && isCanonicalRowSet(B) && "unsorted row sets");
  RowIndexList Result;
  std::set_intersection(A.begin(), A.end(), B.begin(), B.end(),
                        std::back_inserter(Result));
  return Result;
}

bool antidote::rowSetIncludes(const RowIndexList &A, const RowIndexList &B) {
  assert(isCanonicalRowSet(A) && isCanonicalRowSet(B) && "unsorted row sets");
  return std::includes(B.begin(), B.end(), A.begin(), A.end());
}
