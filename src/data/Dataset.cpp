//===- data/Dataset.cpp - Training/test set substrate ----------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "data/Dataset.h"

#include <algorithm>
#include <numeric>

using namespace antidote;

DatasetSchema DatasetSchema::uniform(unsigned NumFeatures, FeatureKind Kind,
                                     unsigned NumClasses) {
  DatasetSchema Schema;
  Schema.FeatureKinds.assign(NumFeatures, Kind);
  Schema.NumClasses = NumClasses;
  return Schema;
}

void Dataset::reserveRows(unsigned N) {
  for (std::vector<float> &Column : Columns)
    Column.reserve(N);
  Labels.reserve(N);
}

void Dataset::addRow(const std::vector<float> &Features, unsigned Label) {
  assert(Features.size() == numFeatures() && "feature count mismatch");
  addRow(Features.data(), Label);
}

void Dataset::addRow(const float *Features, unsigned Label) {
  assert(Label < numClasses() && "label out of range");
#ifndef NDEBUG
  for (unsigned F = 0; F < numFeatures(); ++F)
    if (Schema.FeatureKinds[F] == FeatureKind::Boolean)
      assert((Features[F] == 0.0f || Features[F] == 1.0f) &&
             "boolean feature must be 0 or 1");
#endif
  for (unsigned F = 0, E = numFeatures(); F < E; ++F)
    Columns[F].push_back(Features[F]);
  Labels.push_back(Label);
  RowMirror.clear();
  ++RowsAdded;
}

void Dataset::removeRow(unsigned Row) {
  assert(Row < numRows() && "row out of range");
  for (std::vector<float> &Column : Columns)
    Column.erase(Column.begin() + Row);
  Labels.erase(Labels.begin() + Row);
  RowMirror.clear();
  ++RowsRemoved;
}

void Dataset::materializeRowMirror() const {
  const size_t Rows = numRows(), Features = numFeatures();
  RowMirror.resize(Rows * Features);
  for (size_t F = 0; F < Features; ++F) {
    const float *Column = Columns[F].data();
    float *Out = RowMirror.data() + F;
    for (size_t Row = 0; Row < Rows; ++Row)
      Out[Row * Features] = Column[Row];
  }
}

Dataset Dataset::gatherRows(const Dataset &Base, const RowIndexList &Rows) {
  Dataset Out(Base.schema());
  const size_t Count = Rows.size();
  // Empty selection: done. (Also keeps the bulk copies below away from the
  // null data() an empty base column returns — copying zero bytes from null
  // is formally undefined and trips GCC's -Wnonnull.)
  if (Count == 0)
    return Out;
  // A canonical (sorted, duplicate-free) view of every row is the identity
  // selection, so the per-column gather degenerates to a bulk copy.
  const bool FullRange =
      Count == Base.numRows() && isCanonicalRowSet(Rows);
  for (unsigned F = 0, E = Base.numFeatures(); F < E; ++F) {
    std::vector<float> &Column = Out.Columns[F];
    const float *Src = Base.column(F);
    if (FullRange) {
      // The common flip-enumerator case: the view covers every base row in
      // order, so the gather degenerates to one bulk copy per feature.
      Column.assign(Src, Src + Count);
      continue;
    }
    Column.resize(Count);
    float *Dst = Column.data();
    for (size_t I = 0; I < Count; ++I)
      Dst[I] = Src[Rows[I]];
  }
  Out.Labels.resize(Count);
  const uint32_t *SrcLabels = Base.labels();
  if (FullRange) {
    std::copy(SrcLabels, SrcLabels + Count, Out.Labels.begin());
  } else {
    for (size_t I = 0; I < Count; ++I)
      Out.Labels[I] = SrcLabels[Rows[I]];
  }
  return Out;
}

RowIndexList antidote::allRows(const Dataset &Base) {
  RowIndexList Rows(Base.numRows());
  std::iota(Rows.begin(), Rows.end(), 0);
  return Rows;
}

std::vector<uint32_t> antidote::classCounts(const Dataset &Base,
                                            const RowIndexList &Rows) {
  std::vector<uint32_t> Counts(Base.numClasses(), 0);
  const uint32_t *Labels = Base.labels();
  for (uint32_t Row : Rows)
    ++Counts[Labels[Row]];
  return Counts;
}

bool antidote::isCanonicalRowSet(const RowIndexList &Rows) {
  for (size_t I = 1, E = Rows.size(); I < E; ++I)
    if (Rows[I - 1] >= Rows[I])
      return false;
  return true;
}

uint32_t antidote::rowSetDifferenceSize(const RowIndexList &A,
                                        const RowIndexList &B) {
  assert(isCanonicalRowSet(A) && isCanonicalRowSet(B) && "unsorted row sets");
  uint32_t Count = 0;
  size_t I = 0, J = 0;
  while (I < A.size() && J < B.size()) {
    if (A[I] < B[J]) {
      ++Count;
      ++I;
    } else if (A[I] > B[J]) {
      ++J;
    } else {
      ++I;
      ++J;
    }
  }
  Count += static_cast<uint32_t>(A.size() - I);
  return Count;
}

RowIndexList antidote::rowSetUnion(const RowIndexList &A,
                                   const RowIndexList &B) {
  assert(isCanonicalRowSet(A) && isCanonicalRowSet(B) && "unsorted row sets");
  RowIndexList Result;
  Result.reserve(A.size() + B.size());
  std::set_union(A.begin(), A.end(), B.begin(), B.end(),
                 std::back_inserter(Result));
  return Result;
}

RowIndexList antidote::rowSetIntersection(const RowIndexList &A,
                                          const RowIndexList &B) {
  assert(isCanonicalRowSet(A) && isCanonicalRowSet(B) && "unsorted row sets");
  RowIndexList Result;
  std::set_intersection(A.begin(), A.end(), B.begin(), B.end(),
                        std::back_inserter(Result));
  return Result;
}

bool antidote::rowSetIncludes(const RowIndexList &A, const RowIndexList &B) {
  assert(isCanonicalRowSet(A) && isCanonicalRowSet(B) && "unsorted row sets");
  return std::includes(B.begin(), B.end(), A.begin(), A.end());
}
