//===- data/Fingerprint.h - Stable dataset content hashes ------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A stable 128-bit content fingerprint over a `Dataset` — the key that
/// lets a certificate outlive the verification run that produced it.
///
/// A `Certificate` is a statement about one *exact* training set: change
/// any feature value, any label, any column's `FeatureKind`, the class
/// count, or even the row order (DTrace's tie-breaking is row-order
/// dependent), and the proof no longer applies. The serving layer's
/// `CertCache` therefore keys every entry on this fingerprint, so a cache
/// shared across datasets — or consulted after a dataset was rebuilt with
/// one row changed — can never serve a stale proof.
///
/// Properties the serving layer relies on:
///  - *Deterministic and process-independent*: only dataset content is
///    hashed (float bit patterns, labels, schema), never pointers or
///    iteration-order-dependent state, so two processes loading the same
///    CSV compute the same fingerprint.
///  - *Sensitive to every certificate-relevant mutation*: rows, labels,
///    row order, feature kinds, class count, and class names all feed the
///    hash (tests/FingerprintTests.cpp enforces this per mutation kind).
///  - 128 bits: wide enough that accidental collisions between the
///    handful of datasets a serving process ever sees are not a realistic
///    failure mode (this is an integrity aid, not a cryptographic MAC —
///    a malicious dataset author is outside the threat model; the
///    attacker of the paper poisons *rows*, not the cache).
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_DATA_FINGERPRINT_H
#define ANTIDOTE_DATA_FINGERPRINT_H

#include "data/Dataset.h"

#include <cstdint>
#include <string>

namespace antidote {

/// A 128-bit content hash of one `Dataset`.
struct DatasetFingerprint {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  bool operator==(const DatasetFingerprint &O) const {
    return Hi == O.Hi && Lo == O.Lo;
  }
  bool operator!=(const DatasetFingerprint &O) const { return !(*this == O); }

  /// 32 lowercase hex digits (for logs and cache-stat dumps).
  std::string hex() const;
};

/// Hashes \p Data's full content: schema (feature kinds, class count,
/// class names), then every row's feature bit patterns and label, in row
/// order. O(rows x features); a `Verifier` computes it once per training
/// set at construction.
DatasetFingerprint fingerprintDataset(const Dataset &Data);

/// Lineage of a dataset relative to a *parent* snapshot: the parent's
/// content fingerprint plus the number of rows added to / removed from
/// it since. The delta-tolerant serving path (`VerifierConfig::DeltaSlack`
/// in antidote/Verifier.h) uses it to consult the certificate store under
/// the parent's key when the child's own fingerprint misses.
///
/// Direction matters for soundness (see docs/ARCHITECTURE.md):
///  - *pure removal* (RowsAdded == 0): the child is a row-subset of the
///    parent, so a parent certificate Robust at radius n + RowsRemoved
///    soundly answers the child at radius n.
///  - *any addition* (RowsAdded > 0): subsets of the child need not be
///    subsets of the parent, and a parent Robust certificate says
///    nothing about the child — the slack path must not serve it.
///
/// `Dataset::setLabel` on a row counts as one removal plus one addition.
struct DatasetLineage {
  DatasetFingerprint Parent;
  uint32_t RowsAdded = 0;
  uint32_t RowsRemoved = 0;
};

/// Builds the lineage of \p Child relative to the snapshot declared by
/// its last `markLineage()` call, whose fingerprint the caller captured
/// as \p Parent at that moment. Pure bookkeeping: the counters come from
/// the dataset, no content is re-hashed or diffed.
DatasetLineage lineageSinceMark(const DatasetFingerprint &Parent,
                                const Dataset &Child);

} // namespace antidote

#endif // ANTIDOTE_DATA_FINGERPRINT_H
