//===- data/Registry.h - Benchmark dataset registry -------------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named access to the five §6.1 benchmark datasets, at either the paper's
/// full scale or the time-scaled defaults the bench binaries use (DESIGN.md
/// §3). The registry also fixes each dataset's *verification subset* — the
/// test rows the robustness experiments run on (the paper verifies every
/// UCI test row but a fixed random 100-element subset for MNIST).
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_DATA_REGISTRY_H
#define ANTIDOTE_DATA_REGISTRY_H

#include "data/Synthetic.h"

#include <string>
#include <vector>

namespace antidote {

/// How large to make the benchmark workloads.
enum class BenchScale : uint8_t {
  Scaled, ///< Minutes-long suite (default for `bench/` binaries).
  Full,   ///< The paper's sizes (hours; ANTIDOTE_BENCH_SCALE=full).
};

/// Reads ANTIDOTE_BENCH_SCALE ("full" or "scaled"); defaults to Scaled.
BenchScale benchScaleFromEnv();

/// A ready-to-verify benchmark workload.
struct BenchmarkDataset {
  std::string Name;
  TrainTestSplit Split;

  /// Test rows used for robustness verification.
  std::vector<uint32_t> VerifyRows;
};

/// The five dataset names, in the paper's Table 1 order.
const std::vector<std::string> &benchmarkDatasetNames();

/// Builds the named dataset ("iris", "mammography", "wdbc",
/// "mnist17-binary", "mnist17-real") at the given scale.
BenchmarkDataset loadBenchmarkDataset(const std::string &Name,
                                      BenchScale Scale);

} // namespace antidote

#endif // ANTIDOTE_DATA_REGISTRY_H
