//===- data/Synthetic.cpp - Synthetic UCI-like dataset generators ----------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "data/Synthetic.h"

#include "support/Rng.h"

#include <algorithm>
#include <cmath>

using namespace antidote;

namespace {

/// A labeled row buffered before shuffling into train/test splits.
struct PendingRow {
  std::vector<float> Features;
  unsigned Label;
};

} // namespace

/// Fisher-Yates shuffle driven by our deterministic RNG.
static void shuffleRows(std::vector<PendingRow> &Rows, Rng &R) {
  for (size_t I = Rows.size(); I > 1; --I)
    std::swap(Rows[I - 1], Rows[R.uniformInt(I)]);
}

static TrainTestSplit splitRows(const DatasetSchema &Schema,
                                std::vector<PendingRow> Rows,
                                unsigned TrainCount) {
  assert(TrainCount <= Rows.size() && "train split larger than dataset");
  TrainTestSplit Split{Dataset(Schema), Dataset(Schema)};
  Split.Train.reserveRows(TrainCount);
  Split.Test.reserveRows(static_cast<unsigned>(Rows.size()) - TrainCount);
  for (size_t I = 0; I < Rows.size(); ++I) {
    Dataset &Target = I < TrainCount ? Split.Train : Split.Test;
    Target.addRow(Rows[I].Features, Rows[I].Label);
  }
  return Split;
}

static float roundTo(double V, double Step) {
  return static_cast<float>(std::round(V / Step) * Step);
}

//===----------------------------------------------------------------------===//
// Iris-like
//===----------------------------------------------------------------------===//

TrainTestSplit antidote::makeIrisLike(uint64_t Seed) {
  // Published per-class means/stddevs of the real Iris data, in the order
  // sepal length, sepal width, petal length, petal width.
  static const double Means[3][4] = {
      {5.01, 3.43, 1.46, 0.25}, // Setosa
      {5.94, 2.77, 4.26, 1.33}, // Versicolour
      {6.59, 2.97, 5.55, 2.03}, // Virginica
  };
  static const double Stddevs[3][4] = {
      {0.35, 0.38, 0.17, 0.11},
      {0.52, 0.31, 0.47, 0.20},
      {0.64, 0.32, 0.55, 0.27},
  };

  DatasetSchema Schema = DatasetSchema::uniform(4, FeatureKind::Real, 3);
  Schema.ClassNames = {"Setosa", "Versicolour", "Virginica"};

  Rng R(Seed ^ 0x1215ULL);
  // Generate exactly 40 train + 10 test rows per class; keeping the train
  // class counts exactly equal reproduces the footnote-10 depth-1 tie.
  std::vector<PendingRow> TrainRows, TestRows;
  for (unsigned Class = 0; Class < 3; ++Class) {
    for (unsigned I = 0; I < 50; ++I) {
      PendingRow Row;
      Row.Label = Class;
      Row.Features.reserve(4);
      for (unsigned F = 0; F < 4; ++F) {
        double V = R.gaussian(Means[Class][F], Stddevs[Class][F]);
        V = std::max(0.1, V); // Physical measurements are positive.
        Row.Features.push_back(roundTo(V, 0.1));
      }
      (I < 40 ? TrainRows : TestRows).push_back(std::move(Row));
    }
  }
  shuffleRows(TrainRows, R);
  shuffleRows(TestRows, R);

  TrainTestSplit Split{Dataset(Schema), Dataset(Schema)};
  Split.Train.reserveRows(120);
  Split.Test.reserveRows(30);
  for (const PendingRow &Row : TrainRows)
    Split.Train.addRow(Row.Features, Row.Label);
  for (const PendingRow &Row : TestRows)
    Split.Test.addRow(Row.Features, Row.Label);
  return Split;
}

//===----------------------------------------------------------------------===//
// Mammographic-Masses-like
//===----------------------------------------------------------------------===//

static float ordinal(Rng &R, double Mean, double Stddev, double Lo,
                     double Hi) {
  double V = std::round(R.gaussian(Mean, Stddev));
  return static_cast<float>(std::clamp(V, Lo, Hi));
}

TrainTestSplit antidote::makeMammographicLike(uint64_t Seed) {
  DatasetSchema Schema = DatasetSchema::uniform(5, FeatureKind::Real, 2);
  Schema.ClassNames = {"benign", "malignant"};

  Rng R(Seed ^ 0x3a3a0ULL);
  // The real data has 830 complete rows, ~51.5% benign. Features are the
  // BI-RADS assessment (1-5), patient age (years), mass shape (1-4),
  // mass margin (1-5), and density (1-4); malignancy shifts every ordinal
  // upward (higher BI-RADS, older, irregular shape, spiculated margin).
  std::vector<PendingRow> Rows;
  Rows.reserve(830);
  for (unsigned I = 0; I < 830; ++I) {
    bool Malignant = I >= 427;
    PendingRow Row;
    Row.Label = Malignant ? 1 : 0;
    // Move-assignment of a fresh vector, not initializer-list assign:
    // GCC 12's -O3 -Wnonnull misfires on assign()'s memmove from the
    // list's backing array.
    if (!Malignant) {
      Row.Features = std::vector<float>{
          ordinal(R, 3.7, 0.8, 1, 5),            // BI-RADS
          ordinal(R, 52.0, 14.0, 18, 96),        // age
          ordinal(R, 1.9, 1.0, 1, 4),            // shape
          ordinal(R, 1.8, 1.1, 1, 5),            // margin
          ordinal(R, 2.9, 0.4, 1, 4),            // density
      };
    } else {
      Row.Features = std::vector<float>{
          ordinal(R, 4.8, 0.7, 1, 5),
          ordinal(R, 63.0, 12.0, 18, 96),
          ordinal(R, 3.4, 0.9, 1, 4),
          ordinal(R, 3.9, 1.2, 1, 5),
          ordinal(R, 3.0, 0.5, 1, 4),
      };
    }
    Rows.push_back(std::move(Row));
  }
  shuffleRows(Rows, R);
  return splitRows(Schema, std::move(Rows), 664);
}

//===----------------------------------------------------------------------===//
// WDBC-like
//===----------------------------------------------------------------------===//

TrainTestSplit antidote::makeWdbcLike(uint64_t Seed) {
  // Ten base cell-nucleus measurements; the real dataset stores each as a
  // (mean, standard error, worst) triple for 30 features total. Means and
  // stddevs approximate the published per-class statistics; malignant
  // nuclei are larger, more irregular, and more concave.
  static const double BenignMean[10] = {12.1, 17.9, 78.1, 463.0, 0.092,
                                        0.080, 0.046, 0.026, 0.174, 0.063};
  static const double BenignStd[10] = {1.8, 4.0, 11.8, 134.0, 0.013,
                                       0.034, 0.044, 0.016, 0.025, 0.007};
  static const double MalignantMean[10] = {17.5, 21.6, 115.4, 978.0, 0.103,
                                           0.145, 0.161, 0.088, 0.193, 0.063};
  static const double MalignantStd[10] = {3.2, 3.8, 21.9, 368.0, 0.013,
                                          0.054, 0.075, 0.034, 0.027, 0.007};

  DatasetSchema Schema = DatasetSchema::uniform(30, FeatureKind::Real, 2);
  Schema.ClassNames = {"benign", "malignant"};

  Rng R(Seed ^ 0x8dbcULL);
  std::vector<PendingRow> Rows;
  Rows.reserve(569);
  for (unsigned I = 0; I < 569; ++I) {
    bool Malignant = I >= 357; // Real class balance: 357 benign / 212.
    const double *Mean = Malignant ? MalignantMean : BenignMean;
    const double *Std = Malignant ? MalignantStd : BenignStd;
    PendingRow Row;
    Row.Label = Malignant ? 1 : 0;
    Row.Features.resize(30);
    double Base[10];
    for (unsigned F = 0; F < 10; ++F)
      Base[F] = std::max(1e-4, R.gaussian(Mean[F], Std[F]));
    // Keep the original's internal correlations: perimeter/area follow the
    // radius of the same nucleus rather than being drawn independently.
    Base[2] = std::max(1e-4, Base[0] * 6.55 + R.gaussian(0.0, 2.0));
    Base[3] = std::max(1e-4, Base[0] * Base[0] * 3.1 + R.gaussian(0.0, 25.0));
    for (unsigned F = 0; F < 10; ++F) {
      double SE = std::abs(R.gaussian(0.07, 0.03)) * Base[F];
      double Worst = Base[F] * (1.15 + std::abs(R.gaussian(0.0, 0.08)));
      Row.Features[F] = static_cast<float>(Base[F]);       // mean
      Row.Features[F + 10] = static_cast<float>(SE);       // standard error
      Row.Features[F + 20] = static_cast<float>(Worst);    // worst
    }
    Rows.push_back(std::move(Row));
  }
  shuffleRows(Rows, R);
  return splitRows(Schema, std::move(Rows), 456);
}
