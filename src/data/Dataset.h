//===- data/Dataset.h - Training/test set substrate ------------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable feature/label storage plus sorted row-index views.
///
/// A training set T ⊆ X × Y (paper §3.1) is represented as an immutable
/// `Dataset` (struct-of-arrays feature matrix + labels) and, everywhere else
/// in the system, as a *sorted vector of row indices* into such a base
/// dataset. Both the concrete learner's `filter` and the abstract domain's
/// `⟨T,n⟩` element refine training sets by dropping rows, so index views make
/// every refinement a cheap subsequence selection and make the set algebra
/// the abstract domain needs (|T1 \ T2|, unions, intersections) linear
/// merges.
///
/// Storage is one contiguous `float` column per feature (struct-of-arrays):
/// every hot kernel — candidate-split enumeration, predicate evaluation,
/// fingerprinting — walks a single feature across many rows, and a column
/// slice turns each of those walks into a unit-stride scan the compiler can
/// vectorize. The row-major accessor `row()` is kept as a compatibility shim
/// for per-row consumers (test query points, tree classification); it is
/// backed by a lazily materialized row-major mirror.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_DATA_DATASET_H
#define ANTIDOTE_DATA_DATASET_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace antidote {

/// The kind of values a feature column holds (paper §5 distinguishes the
/// Boolean MNIST-1-7-Binary predicates from real-valued features, which
/// require dynamic threshold selection).
enum class FeatureKind : uint8_t {
  Boolean, ///< Values restricted to {0, 1}; a single predicate per feature.
  Real,    ///< Arbitrary reals; thresholds are chosen from the data.
};

/// Column/label structure shared by every row of a dataset.
struct DatasetSchema {
  std::vector<FeatureKind> FeatureKinds;
  unsigned NumClasses = 0;
  std::vector<std::string> ClassNames; ///< Optional; size 0 or NumClasses.

  unsigned numFeatures() const {
    return static_cast<unsigned>(FeatureKinds.size());
  }

  /// Convenience: a schema whose features all share one kind.
  static DatasetSchema uniform(unsigned NumFeatures, FeatureKind Kind,
                               unsigned NumClasses);
};

/// A sorted-ascending set of row indices into some base `Dataset`.
using RowIndexList = std::vector<uint32_t>;

/// An immutable, struct-of-arrays labeled dataset.
///
/// Feature values are stored as `float`: the benchmark datasets are small
/// integers or 8-bit pixel intensities, and halving the footprint matters
/// for the 13,007 x 784 MNIST-like matrices. All arithmetic on values is
/// performed in `double`.
class Dataset {
public:
  /// An empty dataset with no features/classes; a placeholder until a real
  /// schema is assigned (e.g. registry/loader result structs).
  Dataset() = default;

  explicit Dataset(DatasetSchema Schema)
      : Schema(std::move(Schema)), Columns(this->Schema.numFeatures()) {}

  const DatasetSchema &schema() const { return Schema; }
  unsigned numFeatures() const { return Schema.numFeatures(); }
  unsigned numClasses() const { return Schema.NumClasses; }
  unsigned numRows() const { return static_cast<unsigned>(Labels.size()); }

  /// Contiguous slice of feature \p Feature across all rows (numRows()
  /// floats, unit stride). The kernels' primary view of the data.
  const float *column(unsigned Feature) const {
    assert(Feature < numFeatures() && "feature out of range");
    return Columns[Feature].data();
  }

  double value(unsigned Row, unsigned Feature) const {
    assert(Row < numRows() && Feature < numFeatures() && "index out of range");
    return Columns[Feature][Row];
  }

  unsigned label(unsigned Row) const {
    assert(Row < numRows() && "row out of range");
    return Labels[Row];
  }

  /// Contiguous slice of all numRows() labels.
  const uint32_t *labels() const { return Labels.data(); }

  /// Pointer to the feature vector of \p Row (numFeatures() floats).
  ///
  /// Compatibility shim over the column storage: the first call materializes
  /// a row-major mirror of the whole matrix (so callers that stash the
  /// returned pointer — e.g. batched query points — stay valid for the
  /// dataset's lifetime). The first call must not race with other `row()`
  /// calls or with mutation; in practice every caller is a single-threaded
  /// setup path over a *test* set, so training matrices never pay for the
  /// mirror.
  const float *row(unsigned Row) const {
    assert(Row < numRows() && "row out of range");
    if (RowMirror.size() != static_cast<size_t>(numRows()) * numFeatures())
      materializeRowMirror();
    return RowMirror.data() + static_cast<size_t>(Row) * numFeatures();
  }

  void reserveRows(unsigned N);

  /// Appends a row; \p Features must hold numFeatures() values and
  /// \p Label must be < numClasses(). Boolean columns must hold 0 or 1.
  void addRow(const std::vector<float> &Features, unsigned Label);
  void addRow(const float *Features, unsigned Label);

  /// Rewrites the label of \p Row. The one sanctioned in-place mutation of
  /// existing rows: the label-flip enumerator materializes a row subset once
  /// and then patches labels per flip set instead of rebuilding the matrix.
  /// For lineage accounting a rewrite is one removal plus one addition (the
  /// old row left the set, a new one entered) — unless it is a no-op.
  void setLabel(unsigned Row, unsigned Label) {
    assert(Row < numRows() && "row out of range");
    assert(Label < numClasses() && "label out of range");
    if (Labels[Row] == Label)
      return;
    Labels[Row] = Label;
    ++RowsAdded;
    ++RowsRemoved;
  }

  /// Removes \p Row, shifting every later row down one index (row order is
  /// certificate-relevant, so the removal must not reorder survivors the
  /// way a swap-with-back would). O(rows x features); the retention-trim /
  /// deletion-request path this serves is rare and row-at-a-time.
  void removeRow(unsigned Row);

  //===--------------------------------------------------------------------===//
  // Delta tracking for the serving layer's lineage-aware slack path
  // (antidote/Verifier.h `DatasetLineage`): the dataset counts the rows
  // added and removed since `markLineage()` was last called, so a caller
  // holding the fingerprint from that moment can build the lineage of the
  // mutated set without diffing contents. The counters measure *churn*,
  // not net size change — an add then a remove is one of each, and both
  // directions matter for the soundness of serving from a parent
  // certificate (removals widen the radius needed; any addition disarms
  // the Robust transfer entirely).
  //===--------------------------------------------------------------------===//

  /// Zeroes the add/remove counters, declaring the current content the
  /// lineage parent snapshot (fingerprint it *before* mutating further).
  void markLineage() {
    RowsAdded = 0;
    RowsRemoved = 0;
  }

  uint32_t rowsAddedSinceMark() const { return RowsAdded; }
  uint32_t rowsRemovedSinceMark() const { return RowsRemoved; }

  /// A new dataset holding the rows of \p Base selected by \p Rows (in
  /// order), copied column-by-column: one bulk copy per feature instead of a
  /// per-row × per-feature gather loop.
  static Dataset gatherRows(const Dataset &Base, const RowIndexList &Rows);

  /// Bytes of feature/label storage (for the memory reports). Deliberately
  /// excludes the lazy row-major mirror, which only test sets materialize.
  uint64_t storageBytes() const {
    return static_cast<uint64_t>(numRows()) * numFeatures() * sizeof(float) +
           Labels.size() * sizeof(uint32_t);
  }

private:
  void materializeRowMirror() const;

  DatasetSchema Schema;
  /// One contiguous value array per feature; Columns[F][Row] pairs with
  /// Labels[Row].
  std::vector<std::vector<float>> Columns;
  std::vector<uint32_t> Labels;
  /// Lazy row-major mirror backing the `row()` shim; see `row()`.
  mutable std::vector<float> RowMirror;
  /// Mutation counters since `markLineage()`; see the delta-tracking
  /// section above.
  uint32_t RowsAdded = 0;
  uint32_t RowsRemoved = 0;
};

/// Returns [0, Base.numRows()) as a view over the whole dataset.
RowIndexList allRows(const Dataset &Base);

/// Per-class row counts of the view (the `c_i` of paper §4.4).
std::vector<uint32_t> classCounts(const Dataset &Base,
                                  const RowIndexList &Rows);

/// True iff \p Rows is sorted ascending with no duplicates.
bool isCanonicalRowSet(const RowIndexList &Rows);

/// |A \ B| for sorted row sets.
uint32_t rowSetDifferenceSize(const RowIndexList &A, const RowIndexList &B);

/// A ∪ B for sorted row sets (sorted result).
RowIndexList rowSetUnion(const RowIndexList &A, const RowIndexList &B);

/// A ∩ B for sorted row sets (sorted result).
RowIndexList rowSetIntersection(const RowIndexList &A, const RowIndexList &B);

/// True iff A ⊆ B for sorted row sets.
bool rowSetIncludes(const RowIndexList &A, const RowIndexList &B);

} // namespace antidote

#endif // ANTIDOTE_DATA_DATASET_H
