//===- serving/DiskCertStore.cpp - Disk-backed certificate store --------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "serving/DiskCertStore.h"

#include "support/BitHash.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <set>

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace antidote;

namespace {

// Segment header: "ACST" magic + format version, 8 bytes.
constexpr uint32_t SegmentMagic = 0x54534341u; // "ACST" little-endian.
constexpr uint32_t RecordMagic = 0x54524543u;  // "CERT" little-endian.
constexpr size_t SegmentHeaderBytes = 8;
constexpr size_t RecordHeaderBytes = 16; // magic + payload size + checksum.
/// Sanity bound on one record's payload: a query would need ~60M
/// features to exceed it, so anything larger is corruption, not data.
constexpr uint32_t MaxPayloadBytes = 1u << 28;

/// FNV-1a 64 over the payload — torn-write detection, not a MAC (the
/// threat model poisons training rows, not the store directory).
uint64_t fnv1a64(const uint8_t *Data, size_t Size) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (size_t I = 0; I < Size; ++I) {
    H ^= Data[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

/// Fixed-width little-endian serialization. Floats and doubles go
/// through their storage bits (support/BitHash.h policy), `size_t`
/// widens to u64, so records are identical across platforms.
struct ByteWriter {
  std::vector<uint8_t> Bytes;

  void u8(uint8_t V) { Bytes.push_back(V); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Bytes.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Bytes.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
};

struct ByteReader {
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Failed = false;

  bool take(size_t N) {
    if (Failed || Size - Pos < N) {
      Failed = true;
      return false;
    }
    return true;
  }
  uint8_t u8() {
    if (!take(1))
      return 0;
    return Data[Pos++];
  }
  uint32_t u32() {
    if (!take(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(Data[Pos++]) << (8 * I);
    return V;
  }
  uint64_t u64() {
    if (!take(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(Data[Pos++]) << (8 * I);
    return V;
  }
};

/// Only deterministic verdicts may be persisted (same discipline as the
/// RAM tier); `Verifier` already filters on the write path, and
/// `readPayload` applies the same whitelist on the read path, so the
/// two sides can never disagree about what belongs in a store.
bool isPersistableVerdict(VerdictKind Kind) {
  return Kind == VerdictKind::Robust || Kind == VerdictKind::Unknown ||
         Kind == VerdictKind::ResourceLimit;
}

float floatFromBits(uint32_t Bits) {
  float V;
  std::memcpy(&V, &Bits, sizeof(V));
  return V;
}

double doubleFromBits(uint64_t Bits) {
  double V;
  std::memcpy(&V, &Bits, sizeof(V));
  return V;
}

void writePayload(ByteWriter &W, const StoreKey &K, const Certificate &Cert) {
  // Key first (so the index rebuild never touches certificate fields),
  // certificate after; see the header comment for the field meanings.
  W.u64(K.Data.Hi);
  W.u64(K.Data.Lo);
  W.u32(K.PoisoningBudget);
  W.u32(K.Depth);
  W.u8(static_cast<uint8_t>(K.Domain));
  W.u8(static_cast<uint8_t>(K.Cprob));
  W.u8(static_cast<uint8_t>(K.Gini));
  // FormatVersion 3: the threat model partitions keys (and hence the
  // range indexes) per model.
  W.u8(static_cast<uint8_t>(K.Threat));
  W.u64(K.DisjunctCap);
  W.u64(doubleBits(K.TimeoutSeconds));
  W.u64(K.MaxDisjuncts);
  W.u64(K.MaxStateBytes);
  W.u32(static_cast<uint32_t>(K.Query.size()));
  for (float V : K.Query)
    W.u32(floatBits(V));

  W.u8(static_cast<uint8_t>(Cert.Kind));
  W.u32(Cert.PoisoningBudget);
  W.u32(Cert.Depth);
  W.u8(static_cast<uint8_t>(Cert.Domain));
  W.u8(static_cast<uint8_t>(Cert.Threat));
  W.u32(Cert.ConcretePrediction);
  W.u8(Cert.DominatingClass ? 1 : 0);
  W.u32(Cert.DominatingClass ? *Cert.DominatingClass : 0);
  W.u64(Cert.NumTerminals);
  W.u64(Cert.PeakDisjuncts);
  W.u64(Cert.PeakStateBytes);
  W.u32(Cert.BestSplitCalls);
  W.u64(doubleBits(Cert.Seconds));
  // FormatVersion 2: the proof radius the range index serves from.
  W.u32(Cert.CertifiedRadius);
}

bool readPayload(const uint8_t *Payload, size_t PayloadBytes, StoreKey &K,
                 Certificate &Cert) {
  ByteReader R{Payload, PayloadBytes};
  K.Data.Hi = R.u64();
  K.Data.Lo = R.u64();
  K.PoisoningBudget = R.u32();
  K.Depth = R.u32();
  K.Domain = static_cast<AbstractDomainKind>(R.u8());
  K.Cprob = static_cast<CprobTransformerKind>(R.u8());
  K.Gini = static_cast<GiniLiftingKind>(R.u8());
  K.Threat = static_cast<ThreatModelKind>(R.u8());
  K.DisjunctCap = static_cast<size_t>(R.u64());
  K.TimeoutSeconds = doubleFromBits(R.u64());
  K.MaxDisjuncts = static_cast<size_t>(R.u64());
  K.MaxStateBytes = R.u64();
  uint32_t NumFeatures = R.u32();
  if (R.Failed || NumFeatures > PayloadBytes / sizeof(float))
    return false;
  K.Query.resize(NumFeatures);
  for (uint32_t I = 0; I < NumFeatures; ++I)
    K.Query[I] = floatFromBits(R.u32());

  Cert.Kind = static_cast<VerdictKind>(R.u8());
  Cert.PoisoningBudget = R.u32();
  Cert.Depth = R.u32();
  Cert.Domain = static_cast<AbstractDomainKind>(R.u8());
  Cert.Threat = static_cast<ThreatModelKind>(R.u8());
  Cert.ConcretePrediction = R.u32();
  bool HasDominating = R.u8() != 0;
  uint32_t Dominating = R.u32();
  Cert.DominatingClass =
      HasDominating ? std::optional<unsigned>(Dominating) : std::nullopt;
  Cert.NumTerminals = static_cast<size_t>(R.u64());
  Cert.PeakDisjuncts = static_cast<size_t>(R.u64());
  Cert.PeakStateBytes = R.u64();
  Cert.BestSplitCalls = R.u32();
  Cert.Seconds = doubleFromBits(R.u64());
  Cert.CertifiedRadius = R.u32();
  // The whole payload must be consumed (trailing bytes mean a format
  // skew the version header should have caught), and only verdicts the
  // write side may persist are accepted back — the read-side twin of
  // `isPersistableVerdict`, so even a record appended by buggy or
  // foreign tooling can never replay a Timeout/Cancelled a fresh run
  // might contradict (and compaction drops it rather than copying it
  // forward).
  return !R.Failed && R.Pos == PayloadBytes &&
         isPersistableVerdict(Cert.Kind);
}

std::vector<uint8_t> serializeRecord(const StoreKey &K,
                                     const Certificate &Cert) {
  ByteWriter Payload;
  writePayload(Payload, K, Cert);
  ByteWriter Record;
  Record.Bytes.reserve(RecordHeaderBytes + Payload.Bytes.size());
  Record.u32(RecordMagic);
  Record.u32(static_cast<uint32_t>(Payload.Bytes.size()));
  Record.u64(fnv1a64(Payload.Bytes.data(), Payload.Bytes.size()));
  Record.Bytes.insert(Record.Bytes.end(), Payload.Bytes.begin(),
                      Payload.Bytes.end());
  return Record.Bytes;
}

/// Outcome of walking one header-validated segment's records.
struct SegmentWalk {
  size_t ValidEnd = SegmentHeaderBytes; ///< End of the last whole record.
  uint64_t Corrupt = 0;                 ///< Torn/corrupt records seen.
};

/// The one record scan both the open-time index rebuild and compaction
/// share: invokes `Cb(Key, Cert, RecordOffset, PayloadBytes, Checksum)`
/// for every intact record of \p Bytes (whose segment header the caller
/// already validated). A bad or torn record header loses the boundary
/// and stops the walk; a checksum or payload failure skips just that
/// record.
template <typename OnRecord>
SegmentWalk walkSegmentRecords(const std::vector<uint8_t> &Bytes,
                               OnRecord &&Cb) {
  SegmentWalk Walk;
  size_t Offset = SegmentHeaderBytes;
  while (Offset + RecordHeaderBytes <= Bytes.size()) {
    ByteReader R{Bytes.data() + Offset, RecordHeaderBytes};
    uint32_t Magic = R.u32();
    uint32_t PayloadBytes = R.u32();
    uint64_t Checksum = R.u64();
    if (Magic != RecordMagic || PayloadBytes > MaxPayloadBytes ||
        PayloadBytes > Bytes.size() - Offset - RecordHeaderBytes) {
      // Bad or torn header: the record boundary is lost, stop here.
      ++Walk.Corrupt;
      return Walk;
    }
    const uint8_t *Payload = Bytes.data() + Offset + RecordHeaderBytes;
    size_t RecordBytes = RecordHeaderBytes + PayloadBytes;
    StoreKey Key;
    Certificate Cert;
    if (fnv1a64(Payload, PayloadBytes) != Checksum ||
        !readPayload(Payload, PayloadBytes, Key, Cert)) {
      // Checksum/payload mismatch behind a plausible header: skip just
      // this record — the next boundary is still known.
      ++Walk.Corrupt;
    } else {
      Cb(std::move(Key), Cert, Offset, PayloadBytes, Checksum);
    }
    Offset += RecordBytes;
    Walk.ValidEnd = Offset;
  }
  if (Offset != Bytes.size()) {
    // Trailing bytes too short for a record header: a torn tail.
    ++Walk.Corrupt;
  }
  return Walk;
}

std::string errnoString() { return std::strerror(errno); }

/// Strictly parses "seg-NNNNNN.antcert": only names that round-trip
/// through the `segmentPath` shape (zero-padded to >= 6 digits) are
/// accepted, so a foreign "seg-1.antcert" can never alias the store's
/// own "seg-000001.antcert" — every accepted Id reads and unlinks
/// exactly the directory entry it was parsed from. (sscanf would
/// silently truncate wide ids and accept mismatched suffixes.)
bool parseSegmentName(const char *Name, uint32_t &Id) {
  static const char Prefix[] = "seg-";
  static const char Suffix[] = ".antcert";
  if (std::strncmp(Name, Prefix, sizeof(Prefix) - 1) != 0)
    return false;
  const char *P = Name + sizeof(Prefix) - 1;
  uint64_t Value = 0;
  unsigned Digits = 0;
  while (*P >= '0' && *P <= '9') {
    Value = Value * 10 + static_cast<uint64_t>(*P - '0');
    if (Value > UINT32_MAX)
      return false;
    ++P;
    ++Digits;
  }
  if (std::strcmp(P, Suffix) != 0)
    return false;
  // Round-trip check: %06u pads to 6 digits and never truncates wider
  // ids, so the canonical spelling has exactly max(6, natural) digits.
  char Canonical[16];
  std::snprintf(Canonical, sizeof(Canonical), "%06u",
                static_cast<uint32_t>(Value));
  if (Digits != std::strlen(Canonical))
    return false;
  Id = static_cast<uint32_t>(Value);
  return true;
}

/// mkdir -p: creates every missing component of \p Dir.
bool makeDirs(const std::string &Dir, std::string &Error) {
  std::string Path;
  size_t Pos = 0;
  while (Pos <= Dir.size()) {
    size_t Slash = Dir.find('/', Pos);
    if (Slash == std::string::npos)
      Slash = Dir.size();
    Path = Dir.substr(0, Slash);
    Pos = Slash + 1;
    if (Path.empty())
      continue; // Leading '/'.
    if (::mkdir(Path.c_str(), 0755) != 0 && errno != EEXIST) {
      Error = "cannot create directory '" + Path + "': " + errnoString();
      return false;
    }
  }
  // A trailing component that exists must be a directory.
  struct stat St;
  if (::stat(Dir.c_str(), &St) != 0 || !S_ISDIR(St.st_mode)) {
    Error = "'" + Dir + "' is not a directory";
    return false;
  }
  return true;
}

bool readWholeFile(const std::string &Path, std::vector<uint8_t> &Out,
                   std::string &Error) {
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0) {
    Error = "cannot read '" + Path + "': " + errnoString();
    return false;
  }
  struct stat St;
  if (::fstat(Fd, &St) != 0) {
    Error = "cannot stat '" + Path + "': " + errnoString();
    ::close(Fd);
    return false;
  }
  Out.resize(static_cast<size_t>(St.st_size));
  size_t Done = 0;
  while (Done < Out.size()) {
    ssize_t N = ::read(Fd, Out.data() + Done, Out.size() - Done);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0) {
      Error = "short read on '" + Path + "': " + errnoString();
      ::close(Fd);
      return false;
    }
    Done += static_cast<size_t>(N);
  }
  ::close(Fd);
  return true;
}

bool writeAll(int Fd, const uint8_t *Data, size_t Size) {
  size_t Done = 0;
  while (Done < Size) {
    ssize_t N = ::write(Fd, Data + Done, Size - Done);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      return false;
    Done += static_cast<size_t>(N);
  }
  return true;
}

/// RAII `flock` holder; retried on EINTR. Callers must check
/// `locked()` — proceeding without the lock would silently void the
/// cross-process single-writer guarantee (e.g. ENOLCK on NFS, or a
/// `ReadOnly` handle whose LockFd is -1 by design).
/// `Blocking = false` tries `LOCK_NB` with a few short-sleep retries
/// instead of waiting indefinitely — the append path uses it so a
/// sibling's long compaction (seconds, lock held throughout) cannot
/// stall this process's lookups behind the store mutex; contended
/// appends decline, which `CertificateStore` explicitly permits.
class FileLock {
public:
  explicit FileLock(int Fd, bool Blocking = true) : Fd(Fd) {
    if (Fd < 0)
      return;
    int Rc;
    if (Blocking) {
      while ((Rc = ::flock(Fd, LOCK_EX)) != 0 && errno == EINTR) {
      }
      Locked = Rc == 0;
      return;
    }
    // Normal appends hold the lock for microseconds, so a handful of
    // millisecond retries rides out writer-writer contention while
    // bailing quickly on a compaction.
    for (int Attempt = 0; Attempt < 5; ++Attempt) {
      while ((Rc = ::flock(Fd, LOCK_EX | LOCK_NB)) != 0 &&
             errno == EINTR) {
      }
      if (Rc == 0) {
        Locked = true;
        return;
      }
      if (errno != EWOULDBLOCK)
        return;
      ::usleep(2000);
    }
  }
  ~FileLock() {
    if (Locked)
      ::flock(Fd, LOCK_UN);
  }

  bool locked() const { return Locked; }

private:
  int Fd;
  bool Locked = false;
};

} // namespace

DiskCertStore::OpenResult DiskCertStore::open(const std::string &Dir,
                                              const DiskCertStoreOptions &Options) {
  OpenResult Result;
  if (Dir.empty()) {
    Result.Error = "certificate store directory must not be empty";
    return Result;
  }
  if (Options.ReadOnly) {
    // The flock downgrade: never create, never lock, never repair.
    struct stat St;
    if (::stat(Dir.c_str(), &St) != 0 || !S_ISDIR(St.st_mode)) {
      Result.Error = "cannot open certificate store '" + Dir +
                     "' read-only: not a directory";
      return Result;
    }
  } else if (!makeDirs(Dir, Result.Error)) {
    return Result;
  }

  std::unique_ptr<DiskCertStore> Store(new DiskCertStore(Dir, Options));
  if (!Options.ReadOnly) {
    std::string LockPath = Dir + "/LOCK";
    Store->LockFd = ::open(LockPath.c_str(), O_CREAT | O_RDWR, 0644);
    if (Store->LockFd < 0) {
      Result.Error =
          "cannot open certificate store '" + Dir + "': " + errnoString();
      return Result;
    }
  }
  // (ReadOnly: LockFd stays -1, so every FileLock below fails closed —
  // no tail repair, no journal writes, and store() declines.)
  uint64_t TotalSegmentBytes = 0;
  if (!Store->loadLocked(Result.Error, TotalSegmentBytes))
    return Result;

  std::string JournalError;
  if (!Store->Journal.open(Dir, /*Writable=*/!Options.ReadOnly,
                           JournalError)) {
    Result.Error = JournalError;
    return Result;
  }
  if (!Options.ReadOnly) {
    FileLock Lock(Store->LockFd);
    if (Lock.locked())
      Store->reconcileJournalLocked();
  }

  // Auto-compaction: when the directory is mostly dead weight —
  // stale-version segments after a format bump, corruption, piles of
  // duplicates — reclaim it now rather than serving from (and paying
  // the scan of) a junkyard forever. Dead bytes are everything scanned
  // but not indexed. Best effort: a failed compaction leaves the
  // just-built index serving, same as no trigger at all.
  if (!Options.ReadOnly && Options.AutoCompactDeadFraction > 0 &&
      TotalSegmentBytes > 0) {
    uint64_t Live = Store->Stats.LiveBytes;
    uint64_t Dead = TotalSegmentBytes > Live ? TotalSegmentBytes - Live : 0;
    if (static_cast<double>(Dead) >
        Options.AutoCompactDeadFraction *
            static_cast<double>(TotalSegmentBytes))
      Store->compact();
  }
  // The directory may already exceed the retention budget (the budget
  // may have shrunk since the last run).
  Store->applyRetentionLocked();
  Result.Store = std::move(Store);
  return Result;
}

DiskCertStore::~DiskCertStore() {
  std::lock_guard<std::mutex> Guard(Mutex);
  closeFdsLocked();
  if (LockFd >= 0)
    ::close(LockFd);
}

void DiskCertStore::closeFdsLocked() {
  for (auto &[Segment, Fd] : ReadFds)
    if (Fd >= 0)
      ::close(Fd);
  ReadFds.clear();
  if (AppendFd >= 0) {
    ::close(AppendFd);
    AppendFd = -1;
  }
}

void DiskCertStore::clearIndexLocked() {
  closeFdsLocked();
  Index.clear();
  RangeIndex.clear();
  KnownSegments.clear();
  SegmentBytes.clear();
  Stats.Segments = 0;
  Stats.LiveRecords = 0;
  Stats.LiveBytes = 0;
}

std::string DiskCertStore::segmentPath(uint32_t Segment) const {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "seg-%06u.antcert", Segment);
  return Dir + "/" + Name;
}

bool DiskCertStore::loadLocked(std::string &Error,
                               uint64_t &TotalSegmentBytes) {
  // The exclusive lock serializes index rebuilds against appends from
  // other processes (and lets the tail repair below truncate safely).
  // An unlockable LOCK file (ENOLCK on NFS, or a ReadOnly handle)
  // degrades to a read-only scan: no repair, and appends — which
  // demand the lock — will decline.
  FileLock Lock(LockFd);

  // Collect segment ids. Foreign files are left alone.
  std::vector<uint32_t> SegmentIds;
  DIR *D = ::opendir(Dir.c_str());
  if (!D) {
    Error = "cannot list '" + Dir + "': " + errnoString();
    return false;
  }
  while (struct dirent *Entry = ::readdir(D)) {
    uint32_t Id = 0;
    if (parseSegmentName(Entry->d_name, Id))
      SegmentIds.push_back(Id);
  }
  ::closedir(D);
  std::sort(SegmentIds.begin(), SegmentIds.end());

  // Whether the highest-numbered segment ends in a clean record
  // boundary we may append after.
  bool LastAppendable = false;
  for (uint32_t Id : SegmentIds) {
    std::vector<uint8_t> Bytes;
    std::string ReadError;
    if (!readWholeFile(segmentPath(Id), Bytes, ReadError)) {
      // Unreadable segment: skip it — the store serves what it can.
      ++Stats.StaleSegments;
      continue;
    }
    TotalSegmentBytes += Bytes.size();
    if (Bytes.size() < SegmentHeaderBytes) {
      // Torn before the header finished: unusable, reclaimed by compact.
      ++Stats.StaleSegments;
      continue;
    }
    ByteReader Header{Bytes.data(), Bytes.size()};
    if (Header.u32() != SegmentMagic || Header.u32() != FormatVersion) {
      // Foreign or older-format segment: skipped wholesale — a format
      // bump invalidates cleanly instead of half-parsing.
      ++Stats.StaleSegments;
      continue;
    }

    ++Stats.Segments;
    KnownSegments.push_back(Id);
    SegmentBytes[Id] = Bytes.size();
    SegmentWalk Walk = walkSegmentRecords(
        Bytes, [&](StoreKey &&Key, const Certificate &Cert, size_t Offset,
                   uint32_t PayloadBytes, uint64_t Checksum) {
          RecordRef Ref;
          Ref.Segment = Id;
          Ref.PayloadOffset = Offset + RecordHeaderBytes;
          Ref.PayloadBytes = PayloadBytes;
          Ref.Checksum = Checksum;
          Ref.Kind = Cert.Kind;
          Ref.CertifiedRadius = Cert.CertifiedRadius;
          auto [It, Inserted] = Index.try_emplace(std::move(Key), Ref);
          if (Inserted) {
            registerRangeLocked(It->first, Ref);
            ++Stats.LiveRecords;
            Stats.LiveBytes += RecordHeaderBytes + PayloadBytes;
          } else {
            // Equal keys hold interchangeable certificates; keep the
            // first, let compaction reclaim the rest.
            ++Stats.DuplicateRecords;
          }
        });
    Stats.CorruptSkipped += Walk.Corrupt;

    // Tail repair on the segment appends will continue into: truncating
    // the torn suffix keeps new records reachable (a scan stops at the
    // first bad boundary, so appending after garbage would strand them).
    if (Id == SegmentIds.back()) {
      LastAppendable = Lock.locked();
      if (Walk.ValidEnd < Bytes.size()) {
        if (!Lock.locked() ||
            ::truncate(segmentPath(Id).c_str(),
                       static_cast<off_t>(Walk.ValidEnd)) != 0)
          LastAppendable = false; // Unrepairable tail: never append past it.
        else
          SegmentBytes[Id] = Walk.ValidEnd;
      }
    }
  }

  if (SegmentIds.empty())
    AppendSegment = 1;
  else
    // Appending behind a stale/foreign/torn last segment would strand
    // the new records, so route them to a fresh one instead.
    AppendSegment = LastAppendable ? SegmentIds.back()
                                   : SegmentIds.back() + 1;
  return true;
}

std::vector<StoreJournal::Entry>
DiskCertStore::journalEntriesFromIndexLocked() const {
  std::vector<StoreJournal::Entry> Entries;
  Entries.reserve(Index.size());
  for (const auto &[Key, Ref] : Index) {
    (void)Key;
    StoreJournal::Entry E;
    E.Segment = Ref.Segment;
    E.RecordBytes = Ref.PayloadBytes + RecordHeaderBytes;
    E.Offset = Ref.PayloadOffset - RecordHeaderBytes;
    E.Checksum = Ref.Checksum;
    Entries.push_back(E);
  }
  std::sort(Entries.begin(), Entries.end(),
            [](const StoreJournal::Entry &A, const StoreJournal::Entry &B) {
              return A.Segment != B.Segment ? A.Segment < B.Segment
                                            : A.Offset < B.Offset;
            });
  return Entries;
}

uint64_t DiskCertStore::nextEpochLocked() const {
  // Epochs must be monotone across *all* writers: a sibling may have
  // bumped past our cached value, and publishing a lower epoch would
  // let a replica's (epoch, serial) cursor alias two different
  // journals.
  uint64_t E = Journal.epoch();
  StoreJournal::Header H = Journal.peekHeader();
  if (H.Ok && H.Epoch > E)
    E = H.Epoch;
  return E + 1;
}

void DiskCertStore::reconcileJournalLocked() {
  if (Options.ReadOnly)
    return;
  if (!Journal.valid()) {
    // Journal unusable even after open()'s fresh-create attempt:
    // republish from the index, best effort.
    Journal.reset(nextEpochLocked(), journalEntriesFromIndexLocked());
    return;
  }
  // Append a journal line for every indexed record a crash separated
  // from its line (records are written before their journal entries, so
  // the gap is always in this direction; an entry without a record just
  // fails serve-time validation and is skipped).
  std::set<std::pair<uint32_t, uint64_t>> Journaled;
  for (uint64_t S = 1; S <= Journal.entryCount(); ++S) {
    const StoreJournal::Entry &E = Journal.entry(S);
    Journaled.emplace(E.Segment, E.Offset);
  }
  std::vector<StoreJournal::Entry> Missing;
  for (const auto &[Key, Ref] : Index) {
    (void)Key;
    if (!Journaled.count(
            {Ref.Segment, Ref.PayloadOffset - RecordHeaderBytes})) {
      StoreJournal::Entry E;
      E.Segment = Ref.Segment;
      E.RecordBytes = Ref.PayloadBytes + RecordHeaderBytes;
      E.Offset = Ref.PayloadOffset - RecordHeaderBytes;
      E.Checksum = Ref.Checksum;
      Missing.push_back(E);
    }
  }
  std::sort(Missing.begin(), Missing.end(),
            [](const StoreJournal::Entry &A, const StoreJournal::Entry &B) {
              return A.Segment != B.Segment ? A.Segment < B.Segment
                                            : A.Offset < B.Offset;
            });
  for (const StoreJournal::Entry &E : Missing)
    Journal.append(E);
}

int DiskCertStore::readFdLocked(uint32_t Segment) {
  auto It = ReadFds.find(Segment);
  if (It != ReadFds.end())
    return It->second;
  int Fd = ::open(segmentPath(Segment).c_str(), O_RDONLY);
  // Cache successes only: a transient failure (EMFILE under load) must
  // not turn the whole segment into permanent misses — the next lookup
  // retries.
  if (Fd >= 0)
    ReadFds.emplace(Segment, Fd);
  return Fd;
}

DiskCertStore::ReadStatus
DiskCertStore::readPayloadLocked(const RecordRef &Ref,
                                 std::vector<uint8_t> &Out) {
  int Fd = readFdLocked(Ref.Segment);
  if (Fd < 0)
    // ENOENT = the segment file is gone (a sibling compacted it);
    // anything else (EMFILE under load, ...) may clear up — retry
    // later.
    return errno == ENOENT ? ReadStatus::Gone : ReadStatus::Transient;
  Out.resize(Ref.PayloadBytes);
  size_t Done = 0;
  while (Done < Out.size()) {
    ssize_t N = ::pread(Fd, Out.data() + Done, Out.size() - Done,
                        static_cast<off_t>(Ref.PayloadOffset + Done));
    if (N < 0 && errno == EINTR)
      continue;
    if (N == 0)
      return ReadStatus::Gone; // The file shrank: record gone for good.
    if (N < 0)
      return ReadStatus::Transient;
    Done += static_cast<size_t>(N);
  }
  return ReadStatus::Ok;
}

bool DiskCertStore::readRecordLocked(const StoreJournal::Entry &E,
                                     std::vector<uint8_t> &Out) {
  if (E.RecordBytes < RecordHeaderBytes ||
      E.RecordBytes - RecordHeaderBytes > MaxPayloadBytes)
    return false;
  int Fd = readFdLocked(E.Segment);
  if (Fd < 0)
    return false;
  Out.resize(E.RecordBytes);
  size_t Done = 0;
  while (Done < Out.size()) {
    ssize_t N = ::pread(Fd, Out.data() + Done, Out.size() - Done,
                        static_cast<off_t>(E.Offset + Done));
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      return false;
    Done += static_cast<size_t>(N);
  }
  // The header must agree with the journal entry, and the payload with
  // the header's checksum — corrupt bytes are never shipped or indexed.
  ByteReader R{Out.data(), RecordHeaderBytes};
  if (R.u32() != RecordMagic)
    return false;
  if (R.u32() != E.RecordBytes - RecordHeaderBytes)
    return false;
  uint64_t Checksum = R.u64();
  if (Checksum != E.Checksum)
    return false;
  return fnv1a64(Out.data() + RecordHeaderBytes,
                 E.RecordBytes - RecordHeaderBytes) == Checksum;
}

void DiskCertStore::ingestJournalEntryLocked(const StoreJournal::Entry &E) {
  std::vector<uint8_t> Record;
  if (!readRecordLocked(E, Record))
    return; // Corrupt/vanished record: its serial stays a dead line.
  StoreKey Key;
  Certificate Cert;
  if (!readPayload(Record.data() + RecordHeaderBytes,
                   E.RecordBytes - RecordHeaderBytes, Key, Cert))
    return;
  if (std::find(KnownSegments.begin(), KnownSegments.end(), E.Segment) ==
      KnownSegments.end()) {
    KnownSegments.push_back(E.Segment);
    std::sort(KnownSegments.begin(), KnownSegments.end());
    ++Stats.Segments;
  }
  struct stat St;
  if (::stat(segmentPath(E.Segment).c_str(), &St) == 0)
    SegmentBytes[E.Segment] = static_cast<uint64_t>(St.st_size);
  RecordRef Ref;
  Ref.Segment = E.Segment;
  Ref.PayloadOffset = E.Offset + RecordHeaderBytes;
  Ref.PayloadBytes = E.RecordBytes - RecordHeaderBytes;
  Ref.Checksum = E.Checksum;
  Ref.Kind = Cert.Kind;
  Ref.CertifiedRadius = Cert.CertifiedRadius;
  auto [It, Inserted] = Index.try_emplace(std::move(Key), Ref);
  if (Inserted) {
    registerRangeLocked(It->first, Ref);
    ++Stats.LiveRecords;
    Stats.LiveBytes += E.RecordBytes;
  } else {
    ++Stats.DuplicateRecords;
  }
}

void DiskCertStore::syncJournalWithDiskLocked() {
  // Caller holds the flock. Bring the journal (and, incrementally, the
  // index) in line with sibling mutations so our next journal entry
  // lands *after* theirs instead of over theirs.
  StoreJournal::Header H = Journal.peekHeader();
  if (!H.Ok) {
    // The journal vanished or rotted externally: republish from the
    // index under a fresh epoch (replicas resync).
    Journal.reset(nextEpochLocked(), journalEntriesFromIndexLocked());
    return;
  }
  if (H.Epoch == Journal.epoch() && H.Generation == Journal.generation())
    return;
  uint64_t OldEpoch = Journal.epoch();
  uint64_t FirstNew = 0;
  if (!Journal.refresh(FirstNew))
    return;
  ++Stats.IndexRefreshes;
  if (Journal.epoch() != OldEpoch || FirstNew == 1) {
    // The segments changed shape under us (sibling compaction or
    // retention). The full rescan takes the flock itself, which would
    // not nest here, so defer it to the next lookup miss; meanwhile the
    // index's dead refs degrade to misses on read.
    PendingFullReload = true;
    return;
  }
  for (uint64_t S = FirstNew; S <= Journal.entryCount(); ++S)
    ingestJournalEntryLocked(Journal.entry(S));
}

bool DiskCertStore::maybeRefreshIndexLocked() {
  StoreJournal::Header H = Journal.peekHeader();
  bool Foreign = H.Ok && (H.Epoch != Journal.epoch() ||
                          H.Generation != Journal.generation());
  if (!PendingFullReload && !Foreign)
    return false;
  uint64_t OldEpoch = Journal.epoch();
  uint64_t FirstNew = 0;
  if (Foreign && !Journal.refresh(FirstNew))
    return false;
  ++Stats.IndexRefreshes;
  if (PendingFullReload || Journal.epoch() != OldEpoch ||
      (Foreign && FirstNew == 1)) {
    // Records may have been removed (sibling compaction/retention):
    // rebuild the index from the directory.
    PendingFullReload = false;
    clearIndexLocked();
    std::string Error;
    uint64_t TotalSegmentBytes = 0;
    loadLocked(Error, TotalSegmentBytes);
    return true;
  }
  // Same-epoch growth: ingest exactly the new journal lines.
  for (uint64_t S = FirstNew; S <= Journal.entryCount(); ++S)
    ingestJournalEntryLocked(Journal.entry(S));
  return true;
}

void DiskCertStore::registerRangeLocked(const StoreKey &K,
                                        const RecordRef &Ref) {
  // Only original proofs enter the range index — same rule as the RAM
  // tier (serving/CertCache.cpp): a write-through of a range- or
  // slack-served answer has CertifiedRadius != budget and serves its
  // exact key only.
  if (Ref.CertifiedRadius != K.PoisoningBudget)
    return;
  RangeSlot &Slot = RangeIndex[rangeBaseKey(K)];
  if (Ref.Kind == VerdictKind::Robust)
    Slot.Robust.emplace(Ref.CertifiedRadius, &K);
  else if (Ref.Kind == VerdictKind::Unknown)
    Slot.Unknown.emplace(Ref.CertifiedRadius, &K);
}

void DiskCertStore::unregisterRangeLocked(const StoreKey &K,
                                          const RecordRef &Ref) {
  if (Ref.CertifiedRadius != K.PoisoningBudget)
    return;
  auto RIt = RangeIndex.find(rangeBaseKey(K));
  if (RIt == RangeIndex.end())
    return;
  if (Ref.Kind == VerdictKind::Robust)
    RIt->second.Robust.erase(Ref.CertifiedRadius);
  else if (Ref.Kind == VerdictKind::Unknown)
    RIt->second.Unknown.erase(Ref.CertifiedRadius);
  if (RIt->second.Robust.empty() && RIt->second.Unknown.empty())
    RangeIndex.erase(RIt);
}

void DiskCertStore::dropDeadEntryLocked(
    std::unordered_map<StoreKey, RecordRef, StoreKeyHash>::iterator It) {
  // Permanently unreadable or not the record we indexed: drop the
  // dead entry — leaving it would also make `store` decline the
  // re-verified certificate as a "duplicate", pinning the key in a
  // never-served state for the rest of the process.
  unregisterRangeLocked(It->first, It->second);
  Stats.LiveBytes -= std::min<uint64_t>(
      Stats.LiveBytes, RecordHeaderBytes + It->second.PayloadBytes);
  --Stats.LiveRecords;
  Index.erase(It);
  ++Stats.CorruptSkipped;
}

bool DiskCertStore::lookupLocked(const StoreKey &K, uint32_t PoisoningBudget,
                                 bool RangeOnly, Certificate &Out) {
  auto It = RangeOnly ? Index.end() : Index.find(K);
  bool Ranged = false;
  if (It == Index.end()) {
    // Exact miss (or range-only probe): radius-range resolution, same
    // preference order as the RAM tier — the tightest stored Robust
    // proof at radius >= n, else the widest failed attempt at
    // radius <= n.
    auto RIt = RangeIndex.find(rangeBaseKey(K));
    if (RIt != RangeIndex.end()) {
      const StoreKey *Found = nullptr;
      auto Rob = RIt->second.Robust.lower_bound(PoisoningBudget);
      if (Rob != RIt->second.Robust.end()) {
        Found = Rob->second;
      } else {
        auto Unk = RIt->second.Unknown.upper_bound(PoisoningBudget);
        if (Unk != RIt->second.Unknown.begin())
          Found = std::prev(Unk)->second;
      }
      if (Found) {
        It = Index.find(*Found);
        assert(It != Index.end() && "range index out of lockstep");
        Ranged = true;
      }
    }
    if (It == Index.end())
      return false;
  }
  std::vector<uint8_t> Payload;
  StoreKey StoredKey;
  Certificate Cert;
  // Records are immutable once written, but re-verify end to end anyway:
  // a deleted segment (another process compacted), bit rot, or an index
  // bug must degrade to a miss (re-verification), never to a wrong
  // certificate.
  ReadStatus Status = readPayloadLocked(It->second, Payload);
  if (Status == ReadStatus::Transient)
    // The record is probably fine (fd exhaustion etc.); keep the entry
    // so the next lookup retries, just miss this once.
    return false;
  if (Status == ReadStatus::Gone ||
      fnv1a64(Payload.data(), Payload.size()) != It->second.Checksum ||
      !readPayload(Payload.data(), Payload.size(), StoredKey, Cert) ||
      StoredKey != It->first ||
      (Ranged && !rangeServes(Cert.Kind, Cert.CertifiedRadius,
                              PoisoningBudget))) {
    dropDeadEntryLocked(It);
    return false;
  }
  if (Ranged) {
    if (!RangeOnly)
      ++Stats.RangeHits;
    // The stored proof keeps its radius; only the answered budget is
    // rewritten (CertificateStore range contract,
    // serving/CertificateStore.h).
    Cert.PoisoningBudget = PoisoningBudget;
  } else if (!RangeOnly) {
    ++Stats.Hits;
  }
  Out = Cert;
  return true;
}

bool DiskCertStore::lookup(const DatasetFingerprint &Data, const float *X,
                           unsigned NumFeatures, uint32_t PoisoningBudget,
                           const VerifierConfig &Config, Certificate &Out) {
  StoreKey K = makeStoreKey(Data, X, NumFeatures, PoisoningBudget, Config);
  std::lock_guard<std::mutex> Guard(Mutex);
  for (int Pass = 0; Pass < 2; ++Pass) {
    if (lookupLocked(K, PoisoningBudget, /*RangeOnly=*/false, Out))
      return true;
    // A miss may just mean a sibling process appended (or compacted)
    // since we last looked: one journal-header pread tells, a refresh
    // absorbs, and the retry serves their record without a reopen.
    if (Pass != 0 || !maybeRefreshIndexLocked())
      break;
  }
  ++Stats.Misses;
  return false;
}

bool DiskCertStore::rangeLookup(const DatasetFingerprint &Data, const float *X,
                                unsigned NumFeatures, uint32_t PoisoningBudget,
                                const VerifierConfig &Config,
                                Certificate &Out) {
  StoreKey K = makeStoreKey(Data, X, NumFeatures, PoisoningBudget, Config);
  std::lock_guard<std::mutex> Guard(Mutex);
  return lookupLocked(K, PoisoningBudget, /*RangeOnly=*/true, Out);
}

bool DiskCertStore::appendLocked(const std::vector<uint8_t> &Record,
                                 RecordRef &Ref) {
  // Cross-process single-writer section. No lock, no write: appending
  // unserialized would let two processes interleave records. Non-
  // blocking: the caller holds the store mutex, and waiting out a
  // sibling's compaction here would freeze this process's lookups too.
  FileLock Lock(LockFd, /*Blocking=*/false);
  if (!Lock.locked())
    return false;
  // Under the lock, absorb any sibling journal growth first: our entry
  // must extend the journal, not overwrite a line a sibling just wrote.
  syncJournalWithDiskLocked();
  // Up to four tries: open + nlink-rotation + size-rotation + write.
  for (int Attempt = 0; Attempt < 4; ++Attempt) {
    if (AppendFd < 0) {
      AppendFd = ::open(segmentPath(AppendSegment).c_str(),
                        O_CREAT | O_RDWR | O_APPEND, 0644);
      if (AppendFd < 0)
        return false;
    }
    // A sibling's compaction may have unlinked the segment this fd
    // still points at — writing there would "succeed" into an inode
    // that vanishes with the last close. Detect it and rotate to the
    // next id (appending to an existing, sibling-written segment is
    // fine: its end is a record boundary).
    struct stat St;
    if (::fstat(AppendFd, &St) != 0 || St.st_nlink == 0) {
      ::close(AppendFd);
      AppendFd = -1;
      ++AppendSegment;
      continue;
    }
    // Another process may have appended since we last looked; the
    // authoritative size is the file's, read under the lock.
    off_t End = ::lseek(AppendFd, 0, SEEK_END);
    if (End < 0)
      return false;
    // A failed or partial write (disk full) must roll the file back to
    // the last good boundary: leaving torn bytes would strand every
    // later append behind them — the next open's scan stops at the
    // first bad record, silently losing the rest of the segment.
    auto WriteOrRollBack = [&](const uint8_t *Data, size_t Size,
                               off_t GoodEnd) {
      if (writeAll(AppendFd, Data, Size))
        return true;
      if (::ftruncate(AppendFd, GoodEnd) != 0) {
        // Rollback failed too: abandon the segment, never append to it
        // again from this handle (reopen repairs it).
        ::close(AppendFd);
        AppendFd = -1;
        ++AppendSegment;
      }
      return false;
    };
    if (End == 0) {
      ByteWriter Header;
      Header.u32(SegmentMagic);
      Header.u32(FormatVersion);
      if (!WriteOrRollBack(Header.Bytes.data(), Header.Bytes.size(), 0))
        return false;
      End = static_cast<off_t>(SegmentHeaderBytes);
      if (std::find(KnownSegments.begin(), KnownSegments.end(),
                    AppendSegment) == KnownSegments.end()) {
        KnownSegments.push_back(AppendSegment);
        std::sort(KnownSegments.begin(), KnownSegments.end());
        ++Stats.Segments;
      }
    }
    if (Options.MaxSegmentBytes &&
        static_cast<uint64_t>(End) + Record.size() > Options.MaxSegmentBytes &&
        static_cast<uint64_t>(End) > SegmentHeaderBytes) {
      // Rotate and retry once with the fresh segment.
      ::close(AppendFd);
      AppendFd = -1;
      ++AppendSegment;
      continue;
    }
    if (!WriteOrRollBack(Record.data(), Record.size(), End))
      return false;
    Ref.Segment = AppendSegment;
    Ref.PayloadOffset = static_cast<uint64_t>(End) + RecordHeaderBytes;
    Ref.PayloadBytes =
        static_cast<uint32_t>(Record.size() - RecordHeaderBytes);
    SegmentBytes[AppendSegment] =
        static_cast<uint64_t>(End) + Record.size();
    // Journal the record while still holding the flock: the serial a
    // replica pulls by must name exactly these bytes.
    StoreJournal::Entry E;
    E.Segment = AppendSegment;
    E.RecordBytes = static_cast<uint32_t>(Record.size());
    E.Offset = static_cast<uint64_t>(End);
    {
      ByteReader R{Record.data() + 8, 8};
      E.Checksum = R.u64();
    }
    Journal.append(E);
    return true;
  }
  return false;
}

void DiskCertStore::store(const DatasetFingerprint &Data, const float *X,
                          unsigned NumFeatures, uint32_t PoisoningBudget,
                          const VerifierConfig &Config,
                          const Certificate &Cert) {
  if (Options.ReadOnly || !isPersistableVerdict(Cert.Kind)) {
    std::lock_guard<std::mutex> Guard(Mutex);
    ++Stats.Declined;
    return;
  }
  StoreKey K = makeStoreKey(Data, X, NumFeatures, PoisoningBudget, Config);
  std::lock_guard<std::mutex> Guard(Mutex);
  if (Index.count(K)) {
    // Certificates for equal keys are interchangeable; appending again
    // would only grow the segment for compaction to reclaim.
    ++Stats.DuplicatesDeclined;
    return;
  }
  std::vector<uint8_t> Record = serializeRecord(K, Cert);
  RecordRef Ref;
  if (!appendLocked(Record, Ref))
    return; // The store may decline (CertificateStore contract).
  Ref.Checksum = fnv1a64(Record.data() + RecordHeaderBytes,
                         Record.size() - RecordHeaderBytes);
  Ref.Kind = Cert.Kind;
  Ref.CertifiedRadius = Cert.CertifiedRadius;
  auto [It, Inserted] = Index.emplace(std::move(K), Ref);
  if (Inserted)
    registerRangeLocked(It->first, Ref);
  ++Stats.Stores;
  ++Stats.LiveRecords;
  Stats.LiveBytes += Record.size();
  applyRetentionLocked();
}

void DiskCertStore::applyRetentionLocked() {
  if (!Options.RetentionBytes || Options.ReadOnly)
    return;
  uint64_t Total = 0;
  for (const auto &[Segment, Bytes] : SegmentBytes) {
    (void)Segment;
    Total += Bytes;
  }
  if (Total <= Options.RetentionBytes)
    return;
  FileLock Lock(LockFd, /*Blocking=*/false);
  if (!Lock.locked())
    return; // Contended: the budget check just waits for the next append.
  bool Evicted = false;
  // Oldest-first, never the open append segment, never the last one
  // standing: certificates are cache entries, so an evicted record is
  // simply re-verified — but evicting the segment appends are landing
  // in would tear the write path out from under itself.
  while (Total > Options.RetentionBytes && KnownSegments.size() > 1 &&
         KnownSegments.front() != AppendSegment) {
    uint32_t Victim = KnownSegments.front();
    for (auto It = Index.begin(); It != Index.end();) {
      if (It->second.Segment == Victim) {
        unregisterRangeLocked(It->first, It->second);
        Stats.LiveBytes -= std::min<uint64_t>(
            Stats.LiveBytes, RecordHeaderBytes + It->second.PayloadBytes);
        --Stats.LiveRecords;
        ++Stats.Evictions;
        It = Index.erase(It);
      } else {
        ++It;
      }
    }
    auto FdIt = ReadFds.find(Victim);
    if (FdIt != ReadFds.end()) {
      ::close(FdIt->second);
      ReadFds.erase(FdIt);
    }
    ::unlink(segmentPath(Victim).c_str());
    Total -= std::min(Total, SegmentBytes[Victim]);
    SegmentBytes.erase(Victim);
    KnownSegments.erase(KnownSegments.begin());
    --Stats.Segments;
    ++Stats.RetentionEvictedSegments;
    Evicted = true;
  }
  if (Evicted)
    // Serials renumbered: publish the survivors under a fresh epoch so
    // replicas resync instead of silently skipping records.
    Journal.reset(nextEpochLocked(), journalEntriesFromIndexLocked());
}

bool DiskCertStore::compact(std::string *Error) {
  auto Fail = [&](const std::string &Message) {
    if (Error)
      *Error = Message;
    return false;
  };
  if (Options.ReadOnly)
    return Fail("certificate store '" + Dir + "' is read-only");
  std::lock_guard<std::mutex> Guard(Mutex);
  FileLock Lock(LockFd);
  if (!Lock.locked())
    return Fail("cannot lock '" + Dir + "/LOCK': " + errnoString());

  // This handle's index only covers the records it saw at open plus its
  // own appends — sibling processes may have appended records (and
  // whole segments) since. Compaction is a *directory-wide* rewrite, so
  // rescan under the lock: every intact record in every current-version
  // segment survives (deduped), whoever wrote it. Only duplicates,
  // torn/corrupt records, and stale-version segments are reclaimed.
  std::vector<uint32_t> OldSegments;
  {
    DIR *D = ::opendir(Dir.c_str());
    if (!D)
      return Fail("cannot list '" + Dir + "': " + errnoString());
    while (struct dirent *Entry = ::readdir(D)) {
      uint32_t Id = 0;
      if (parseSegmentName(Entry->d_name, Id))
        OldSegments.push_back(Id);
    }
    ::closedir(D);
  }
  std::sort(OldSegments.begin(), OldSegments.end());
  uint32_t MaxSeen =
      std::max(AppendSegment,
               OldSegments.empty() ? 0u : OldSegments.back());
  uint32_t NewSegment = MaxSeen + 1;
  std::string NewPath = segmentPath(NewSegment);

  std::unordered_map<StoreKey, RecordRef, StoreKeyHash> NewIndex;
  uint64_t NewBytes = SegmentHeaderBytes;
  uint64_t SeenRecords = 0;
  // O_EXCL: never clobber a file some racing writer created — the lock
  // should make that impossible, but an unlink is irreversible.
  int Fd = ::open(NewPath.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (Fd < 0)
    return Fail("cannot create '" + NewPath + "': " + errnoString());
  auto Abort = [&](const std::string &Message) {
    ::close(Fd);
    ::unlink(NewPath.c_str());
    return Fail(Message);
  };
  {
    ByteWriter Header;
    Header.u32(SegmentMagic);
    Header.u32(FormatVersion);
    if (!writeAll(Fd, Header.Bytes.data(), Header.Bytes.size()))
      return Abort("cannot write '" + NewPath + "': " + errnoString());
  }
  for (uint32_t Id : OldSegments) {
    std::vector<uint8_t> Bytes;
    std::string ReadError;
    if (!readWholeFile(segmentPath(Id), Bytes, ReadError) ||
        Bytes.size() < SegmentHeaderBytes)
      continue; // Unreadable/torn-header: nothing to preserve.
    ByteReader Header{Bytes.data(), Bytes.size()};
    if (Header.u32() != SegmentMagic || Header.u32() != FormatVersion)
      continue; // Stale format: invalidated by design.
    bool WriteFailed = false;
    walkSegmentRecords(Bytes, [&](StoreKey &&Key, const Certificate &Cert,
                                  size_t, uint32_t, uint64_t Checksum) {
      ++SeenRecords;
      if (WriteFailed || NewIndex.count(Key))
        return; // Duplicate (first wins — certificates interchangeable).
      std::vector<uint8_t> Record = serializeRecord(Key, Cert);
      if (!writeAll(Fd, Record.data(), Record.size())) {
        WriteFailed = true;
        return;
      }
      RecordRef NewRef;
      NewRef.Segment = NewSegment;
      NewRef.PayloadOffset = NewBytes + RecordHeaderBytes;
      NewRef.PayloadBytes =
          static_cast<uint32_t>(Record.size() - RecordHeaderBytes);
      NewRef.Checksum = Checksum;
      NewRef.Kind = Cert.Kind;
      NewRef.CertifiedRadius = Cert.CertifiedRadius;
      NewIndex.emplace(std::move(Key), NewRef);
      NewBytes += Record.size();
    });
    if (WriteFailed)
      return Abort("cannot write '" + NewPath + "': " + errnoString());
  }
  // The new segment must be durable before the old ones disappear —
  // its *data* via fsync on the file, its *directory entry* via fsync
  // on the directory (without the latter, a power loss after the
  // unlinks below could persist the removals but not the new file,
  // emptying the store).
  if (::fsync(Fd) != 0)
    return Abort("cannot fsync '" + NewPath + "': " + errnoString());
  ::close(Fd);
  {
    int DirFd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (DirFd < 0 || ::fsync(DirFd) != 0) {
      if (DirFd >= 0)
        ::close(DirFd);
      ::unlink(NewPath.c_str());
      return Fail("cannot fsync '" + Dir + "': " + errnoString());
    }
    ::close(DirFd);
  }

  // Point reads at the new segment, then reclaim every old file —
  // including stale-version and torn segments the scan skipped.
  closeFdsLocked();
  for (uint32_t Id : OldSegments)
    ::unlink(segmentPath(Id).c_str());

  Index = std::move(NewIndex);
  RangeIndex.clear();
  for (const auto &[Key, Ref] : Index)
    registerRangeLocked(Key, Ref);
  KnownSegments = {NewSegment};
  SegmentBytes.clear();
  SegmentBytes[NewSegment] = NewBytes;
  AppendSegment = NewSegment;
  Stats.Segments = 1;
  Stats.LiveRecords = Index.size();
  // Same accounting as the open-time scan: record bytes (16-byte record
  // headers included), the 8-byte segment header excluded.
  Stats.LiveBytes = NewBytes - SegmentHeaderBytes;
  ++Stats.Compactions;
  Stats.CompactionRecordsDropped += SeenRecords - Index.size();
  Stats.DuplicateRecords = 0;
  // Every serial renumbered: new epoch, survivor list republished, and
  // every replica's next poll answers EpochReset into a full resync.
  Journal.reset(nextEpochLocked(), journalEntriesFromIndexLocked());
  return true;
}

ReplicationEndpoint::Delta
DiskCertStore::serveJournalPoll(const PollRequest &Poll) {
  std::lock_guard<std::mutex> Guard(Mutex);
  Delta D;
  // Serve sibling appends promptly rather than waiting for a lookup
  // miss to notice them.
  maybeRefreshIndexLocked();
  if (!Journal.valid())
    return D; // Status stays Unavailable.
  D.Epoch = Journal.epoch();
  D.HeadSerial = Journal.entryCount();
  if (Poll.Epoch != Journal.epoch() || Poll.Serial > D.HeadSerial) {
    // The replica's epoch is gone (or it is ahead of a journal that was
    // rebuilt underneath it): full resync from serial 0.
    D.Status = PollStatus::EpochReset;
    return D;
  }
  uint32_t MaxRecords =
      std::min<uint32_t>(std::max<uint32_t>(Poll.MaxRecords, 1), 512);
  constexpr size_t MaxBatchBytes = 256u << 10;
  uint64_t Serial = Poll.Serial;
  size_t BatchBytes = 0;
  while (Serial < D.HeadSerial && D.Records.size() < MaxRecords &&
         BatchBytes < MaxBatchBytes) {
    const StoreJournal::Entry &E = Journal.entry(++Serial);
    std::vector<uint8_t> Record;
    if (!readRecordLocked(E, Record))
      continue; // Corrupt/evicted record: its serial still advances.
    if (Poll.ScopeHi || Poll.ScopeLo) {
      // The key's dataset fingerprint leads the payload; out-of-scope
      // records are skipped but their serials advance the cursor.
      if (Record.size() < RecordHeaderBytes + 16)
        continue;
      ByteReader R{Record.data() + RecordHeaderBytes, 16};
      uint64_t Hi = R.u64();
      uint64_t Lo = R.u64();
      if (Hi != Poll.ScopeHi || Lo != Poll.ScopeLo)
        continue;
    }
    BatchBytes += Record.size();
    D.Records.push_back(std::move(Record));
  }
  D.NextSerial = Serial;
  D.Status = PollStatus::Delta;
  return D;
}

ReplicationEndpoint::ApplyResult
DiskCertStore::applyReplicatedRecord(const uint8_t *Data, size_t Size) {
  std::lock_guard<std::mutex> Guard(Mutex);
  if (Options.ReadOnly) {
    ++Stats.Declined;
    return ApplyResult::Declined;
  }
  // The same validation an open-time scan applies: header shape,
  // checksum, parseable payload, persistable verdict. A corrupt delta
  // is reported (and counted) but never lands in a segment.
  if (Size < RecordHeaderBytes ||
      Size > RecordHeaderBytes + static_cast<size_t>(MaxPayloadBytes)) {
    ++Stats.CorruptSkipped;
    return ApplyResult::Corrupt;
  }
  ByteReader R{Data, RecordHeaderBytes};
  uint32_t Magic = R.u32();
  uint32_t PayloadBytes = R.u32();
  uint64_t Checksum = R.u64();
  StoreKey Key;
  Certificate Cert;
  if (Magic != RecordMagic || PayloadBytes != Size - RecordHeaderBytes ||
      fnv1a64(Data + RecordHeaderBytes, PayloadBytes) != Checksum ||
      !readPayload(Data + RecordHeaderBytes, PayloadBytes, Key, Cert)) {
    ++Stats.CorruptSkipped;
    return ApplyResult::Corrupt;
  }
  if (Index.count(Key)) {
    // Replays (EpochReset resyncs, duplicate deltas) are no-ops — the
    // normal duplicate-decline path makes replication idempotent.
    ++Stats.DuplicatesDeclined;
    return ApplyResult::Duplicate;
  }
  // Append the *identical bytes* the source shipped: a replicated
  // certificate is byte-for-byte the source's record payload.
  std::vector<uint8_t> Record(Data, Data + Size);
  RecordRef Ref;
  if (!appendLocked(Record, Ref))
    return ApplyResult::Declined;
  Ref.Checksum = Checksum;
  Ref.Kind = Cert.Kind;
  Ref.CertifiedRadius = Cert.CertifiedRadius;
  auto [It, Inserted] = Index.emplace(std::move(Key), Ref);
  if (Inserted)
    registerRangeLocked(It->first, Ref);
  ++Stats.Stores;
  ++Stats.LiveRecords;
  Stats.LiveBytes += Size;
  applyRetentionLocked();
  return ApplyResult::Applied;
}

StoreStats DiskCertStore::stats() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  StoreStats Snapshot = Stats;
  Snapshot.Epoch = Journal.epoch();
  Snapshot.JournalRecords = Journal.entryCount();
  return Snapshot;
}
