//===- serving/NetProtocol.cpp - Certificate-serving wire format --------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "serving/NetProtocol.h"

#include <algorithm>
#include <cstring>

using namespace antidote;

namespace {

/// Fixed-width little-endian append/consume helpers. Floats travel as
/// their bit patterns (the BitHash storage policy the disk store also
/// uses), so a query round-trips bit-identically — -0.0 and NaN
/// payloads included.
class Writer {
public:
  explicit Writer(std::string &Out) : Out(Out) {}

  void u8(uint8_t V) { Out.push_back(static_cast<char>(V)); }
  void u32(uint32_t V) { le(V); }
  void u64(uint64_t V) { le(V); }
  void f32(float V) {
    uint32_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    le(Bits);
  }
  void f64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    le(Bits);
  }

private:
  template <typename T> void le(T V) {
    for (size_t I = 0; I < sizeof(T); ++I)
      Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
  }

  std::string &Out;
};

/// Bounds-checked reads; any overrun flips `Ok` and zero-fills, so the
/// caller checks once at the end instead of after every field.
class Reader {
public:
  Reader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}

  uint8_t u8() { return static_cast<uint8_t>(le<uint8_t>()); }
  uint32_t u32() { return le<uint32_t>(); }
  uint64_t u64() { return le<uint64_t>(); }
  float f32() {
    uint32_t Bits = le<uint32_t>();
    float V;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }
  double f64() {
    uint64_t Bits = le<uint64_t>();
    double V;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }

  bool ok() const { return Ok; }
  bool exhausted() const { return Ok && Pos == Size; }
  size_t remaining() const { return Size - Pos; }
  void skip(size_t N) {
    if (Size - Pos < N) {
      Ok = false;
      Pos = Size;
      return;
    }
    Pos += N;
  }

private:
  template <typename T> T le() {
    if (Size - Pos < sizeof(T)) {
      Ok = false;
      Pos = Size;
      return T();
    }
    uint64_t V = 0;
    for (size_t I = 0; I < sizeof(T); ++I)
      V |= static_cast<uint64_t>(Data[Pos + I]) << (8 * I);
    Pos += sizeof(T);
    return static_cast<T>(V);
  }

  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Ok = true;
};

void writeHeader(std::string &Out, uint32_t Magic, uint32_t PayloadLen) {
  Writer W(Out);
  W.u32(Magic);
  W.u32(PayloadLen);
}

void writeCertificate(Writer &W, const Certificate &Cert) {
  W.u8(static_cast<uint8_t>(Cert.Kind));
  W.u32(Cert.PoisoningBudget);
  W.u32(Cert.CertifiedRadius);
  W.u32(Cert.Depth);
  W.u8(static_cast<uint8_t>(Cert.Domain));
  W.u8(static_cast<uint8_t>(Cert.Threat));
  W.u32(Cert.ConcretePrediction);
  W.u8(Cert.DominatingClass ? 1 : 0);
  W.u32(Cert.DominatingClass ? *Cert.DominatingClass : 0);
  W.u64(Cert.NumTerminals);
  W.u64(Cert.PeakDisjuncts);
  W.u64(Cert.PeakStateBytes);
  W.u32(Cert.BestSplitCalls);
  W.f64(Cert.Seconds);
}

bool readCertificate(Reader &R, Certificate &Cert) {
  uint8_t Kind = R.u8();
  Cert.PoisoningBudget = R.u32();
  Cert.CertifiedRadius = R.u32();
  Cert.Depth = R.u32();
  uint8_t Domain = R.u8();
  uint8_t Threat = R.u8();
  Cert.ConcretePrediction = R.u32();
  uint8_t HasDominating = R.u8();
  uint32_t Dominating = R.u32();
  Cert.NumTerminals = R.u64();
  Cert.PeakDisjuncts = R.u64();
  Cert.PeakStateBytes = R.u64();
  Cert.BestSplitCalls = R.u32();
  Cert.Seconds = R.f64();
  if (!R.ok() || Kind > static_cast<uint8_t>(VerdictKind::Cancelled) ||
      Domain > static_cast<uint8_t>(AbstractDomainKind::DisjunctsCapped) ||
      Threat > static_cast<uint8_t>(ThreatModelKind::LabelFlip) ||
      HasDominating > 1)
    return false;
  Cert.Kind = static_cast<VerdictKind>(Kind);
  Cert.Domain = static_cast<AbstractDomainKind>(Domain);
  Cert.Threat = static_cast<ThreatModelKind>(Threat);
  Cert.DominatingClass =
      HasDominating ? std::optional<unsigned>(Dominating) : std::nullopt;
  return true;
}

} // namespace

std::string antidote::encodeRequestFrame(const NetRequest &Request) {
  std::string Payload;
  Writer W(Payload);
  W.u64(Request.Tag);
  W.u32(Request.PoisoningBudget);
  W.u32(Request.DeadlineMillis);
  W.u32(static_cast<uint32_t>(Request.X.size()));
  for (float V : Request.X)
    W.f32(V);

  std::string Frame;
  writeHeader(Frame, NetRequestMagic, static_cast<uint32_t>(Payload.size()));
  Frame += Payload;
  return Frame;
}

std::string antidote::encodeResponseFrame(const NetResponse &Response) {
  std::string Payload;
  Writer W(Payload);
  W.u64(Response.Tag);
  W.u8(static_cast<uint8_t>(Response.Status));
  switch (Response.Status) {
  case NetStatus::Ok:
    W.u8(static_cast<uint8_t>(Response.Path));
    writeCertificate(W, Response.Cert);
    break;
  case NetStatus::Shed:
    W.u8(static_cast<uint8_t>(Response.ShedReason));
    break;
  case NetStatus::Error:
    W.u8(static_cast<uint8_t>(Response.ErrorReason));
    break;
  }

  std::string Frame;
  writeHeader(Frame, NetResponseMagic, static_cast<uint32_t>(Payload.size()));
  Frame += Payload;
  return Frame;
}

std::optional<NetRequest> antidote::decodeRequestPayload(const uint8_t *Data,
                                                         size_t Size) {
  Reader R(Data, Size);
  NetRequest Request;
  Request.Tag = R.u64();
  Request.PoisoningBudget = R.u32();
  Request.DeadlineMillis = R.u32();
  uint32_t NumFeatures = R.u32();
  if (!R.ok() || R.remaining() != NumFeatures * sizeof(float))
    return std::nullopt;
  Request.X.reserve(NumFeatures);
  for (uint32_t I = 0; I < NumFeatures; ++I)
    Request.X.push_back(R.f32());
  if (!R.exhausted())
    return std::nullopt;
  return Request;
}

std::optional<NetResponse>
antidote::decodeResponsePayload(const uint8_t *Data, size_t Size) {
  Reader R(Data, Size);
  NetResponse Response;
  Response.Tag = R.u64();
  uint8_t Status = R.u8();
  if (!R.ok() || Status > static_cast<uint8_t>(NetStatus::Error))
    return std::nullopt;
  Response.Status = static_cast<NetStatus>(Status);
  switch (Response.Status) {
  case NetStatus::Ok: {
    uint8_t Path = R.u8();
    if (!R.ok() || Path > static_cast<uint8_t>(NetServePath::ShedProbe) ||
        !readCertificate(R, Response.Cert))
      return std::nullopt;
    Response.Path = static_cast<NetServePath>(Path);
    break;
  }
  case NetStatus::Shed: {
    uint8_t Reason = R.u8();
    if (!R.ok() || Reason > static_cast<uint8_t>(NetShedReason::Paced))
      return std::nullopt;
    Response.ShedReason = static_cast<NetShedReason>(Reason);
    break;
  }
  case NetStatus::Error: {
    uint8_t Reason = R.u8();
    if (!R.ok() || Reason > static_cast<uint8_t>(NetErrorReason::BadBudget))
      return std::nullopt;
    Response.ErrorReason = static_cast<NetErrorReason>(Reason);
    break;
  }
  }
  if (!R.exhausted())
    return std::nullopt;
  return Response;
}

std::string
antidote::encodeJournalPollFrame(const ReplicationEndpoint::PollRequest &Poll) {
  std::string Payload;
  Writer W(Payload);
  W.u64(Poll.Epoch);
  W.u64(Poll.Serial);
  W.u64(Poll.ScopeHi);
  W.u64(Poll.ScopeLo);
  W.u32(Poll.MaxRecords);

  std::string Frame;
  writeHeader(Frame, NetJournalPollMagic,
              static_cast<uint32_t>(Payload.size()));
  Frame += Payload;
  return Frame;
}

std::string
antidote::encodeJournalDeltaFrame(const ReplicationEndpoint::Delta &Delta) {
  std::string Payload;
  Writer W(Payload);
  W.u8(static_cast<uint8_t>(Delta.Status));
  W.u64(Delta.Epoch);
  W.u64(Delta.NextSerial);
  W.u64(Delta.HeadSerial);
  W.u32(static_cast<uint32_t>(Delta.Records.size()));
  for (const std::vector<uint8_t> &Record : Delta.Records) {
    W.u32(static_cast<uint32_t>(Record.size()));
    Payload.append(reinterpret_cast<const char *>(Record.data()),
                   Record.size());
  }

  std::string Frame;
  writeHeader(Frame, NetJournalDeltaMagic,
              static_cast<uint32_t>(Payload.size()));
  Frame += Payload;
  return Frame;
}

std::optional<ReplicationEndpoint::PollRequest>
antidote::decodeJournalPollPayload(const uint8_t *Data, size_t Size) {
  Reader R(Data, Size);
  ReplicationEndpoint::PollRequest Poll;
  Poll.Epoch = R.u64();
  Poll.Serial = R.u64();
  Poll.ScopeHi = R.u64();
  Poll.ScopeLo = R.u64();
  Poll.MaxRecords = R.u32();
  if (!R.exhausted())
    return std::nullopt;
  return Poll;
}

std::optional<ReplicationEndpoint::Delta>
antidote::decodeJournalDeltaPayload(const uint8_t *Data, size_t Size) {
  Reader R(Data, Size);
  ReplicationEndpoint::Delta Delta;
  uint8_t Status = R.u8();
  Delta.Epoch = R.u64();
  Delta.NextSerial = R.u64();
  Delta.HeadSerial = R.u64();
  uint32_t NumRecords = R.u32();
  if (!R.ok() ||
      Status > static_cast<uint8_t>(
                   ReplicationEndpoint::PollStatus::Unavailable))
    return std::nullopt;
  Delta.Status = static_cast<ReplicationEndpoint::PollStatus>(Status);
  Delta.Records.reserve(std::min<uint32_t>(NumRecords, 4096));
  for (uint32_t I = 0; I < NumRecords; ++I) {
    uint32_t Bytes = R.u32();
    if (!R.ok() || R.remaining() < Bytes)
      return std::nullopt;
    const uint8_t *Start = Data + (Size - R.remaining());
    Delta.Records.emplace_back(Start, Start + Bytes);
    R.skip(Bytes);
  }
  if (!R.exhausted())
    return std::nullopt;
  return Delta;
}

bool FrameReader::feed(const uint8_t *Data, size_t Size) {
  if (Corrupt)
    return false;
  Buffer.insert(Buffer.end(), Data, Data + Size);
  // Slice off every complete frame; whatever remains waits for more
  // bytes. An 8-byte header is enough to validate magic and length, so
  // garbage is detected long before a bogus "length" could make us
  // buffer unboundedly.
  size_t Pos = 0;
  while (Buffer.size() - Pos >= 8) {
    uint32_t FrameMagic = 0, Length = 0;
    std::memcpy(&FrameMagic, Buffer.data() + Pos, 4);
    std::memcpy(&Length, Buffer.data() + Pos + 4, 4);
    if ((FrameMagic != Magic1 && (Magic2 == 0 || FrameMagic != Magic2)) ||
        Length > MaxBytes) {
      Corrupt = true;
      Buffer.clear();
      return false;
    }
    if (Buffer.size() - Pos - 8 < Length)
      break; // Torn frame: recoverable, wait for the rest.
    Frame F;
    F.Magic = FrameMagic;
    F.Payload.assign(Buffer.begin() + static_cast<ptrdiff_t>(Pos + 8),
                     Buffer.begin() +
                         static_cast<ptrdiff_t>(Pos + 8 + Length));
    Ready.push_back(std::move(F));
    Pos += 8 + Length;
  }
  Buffer.erase(Buffer.begin(), Buffer.begin() + static_cast<ptrdiff_t>(Pos));
  return true;
}

std::optional<std::vector<uint8_t>> FrameReader::next() {
  if (Ready.empty())
    return std::nullopt;
  std::vector<uint8_t> Out = std::move(Ready.front().Payload);
  Ready.erase(Ready.begin());
  return Out;
}

std::optional<FrameReader::Frame> FrameReader::nextFrame() {
  if (Ready.empty())
    return std::nullopt;
  Frame Out = std::move(Ready.front());
  Ready.erase(Ready.begin());
  return Out;
}
