//===- serving/StoreJournal.h - Replication journal ------------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The disk store's replication journal: a sidecar file (`journal.antj`)
/// that assigns a monotonically increasing *serial* to every record
/// appended to the segment files, so a replica can ask "what changed
/// since serial S?" and pull exactly the delta — bind9's
/// serial-number-driven incremental zone transfer is the exemplar
/// (ROADMAP: cross-machine scale-out via store replication).
///
/// ## File format (FormatVersion 1)
///
///     header (24 bytes):
///       u32 magic "ACTJ"
///       u32 format version
///       u64 epoch       — bumped by every record-removing rewrite
///       u64 generation  — bumped by every journal mutation
///     entries (24 bytes each, back to back):
///       u32 segment     — where the record lives
///       u32 record bytes (header + payload)
///       u64 record offset within the segment
///       u64 payload checksum (FNV-1a 64, same as the record header)
///
/// Serial numbers are implicit: the entry at index i holds serial i+1
/// within the current epoch. The journal is *derived* data — the
/// segments stay the system of record — so it never needs fsync
/// discipline of its own: on open the store reconciles journal against
/// index (appending entries for records a crash separated from their
/// journal line, truncate-repairing a torn entry tail the same way the
/// append segment's tail is repaired) and rebuilds it wholesale, under
/// a fresh epoch, when it is missing or unreadable.
///
/// ## Epochs
///
/// Compaction and retention eviction remove records, which would
/// silently re-number every surviving serial. Instead they bump the
/// *epoch* and rewrite the journal to list the survivors from serial 1.
/// A replica always presents (epoch, serial); a source whose epoch
/// moved past the replica's answers `EpochReset`, and the replica
/// restarts from serial 0 of the new epoch — a full resync whose
/// replays the duplicate-decline path absorbs.
///
/// ## Generations
///
/// Every journal mutation (append, reset) bumps the header's generation
/// counter. A sibling process that appended to a shared store therefore
/// moved the generation, and a reader can detect it with one 24-byte
/// `pread` of the header (`peekHeader`) — the hook `DiskCertStore` uses
/// to refresh its in-memory index on a lookup miss instead of requiring
/// a reopen.
///
/// Thread-safety: none of its own — `DiskCertStore` calls it under its
/// mutex (and mutations additionally under the cross-process `flock`).
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_SERVING_STOREJOURNAL_H
#define ANTIDOTE_SERVING_STOREJOURNAL_H

#include <cstdint>
#include <string>
#include <vector>

namespace antidote {

class StoreJournal {
public:
  static constexpr uint32_t FormatVersion = 1;
  static constexpr size_t HeaderBytes = 24;
  static constexpr size_t EntryBytes = 24;

  /// One journaled record: where it lives and the payload checksum a
  /// serving poll re-verifies before shipping its bytes.
  struct Entry {
    uint32_t Segment = 0;
    uint32_t RecordBytes = 0;
    uint64_t Offset = 0;
    uint64_t Checksum = 0;
  };

  /// The header snapshot `peekHeader` returns; `Ok` false means the
  /// file is missing or its header is unreadable/foreign.
  struct Header {
    uint64_t Epoch = 0;
    uint64_t Generation = 0;
    bool Ok = false;
  };

  StoreJournal() = default;
  ~StoreJournal();
  StoreJournal(const StoreJournal &) = delete;
  StoreJournal &operator=(const StoreJournal &) = delete;

  /// Opens `Dir/journal.antj`. Writable mode truncate-repairs a torn
  /// entry tail (under the store's flock, like the append segment) and
  /// creates a fresh epoch-1 journal when none exists; read-only mode
  /// loads what is parseable and never writes. Returns false only on a
  /// hard I/O error creating the file — an unreadable existing journal
  /// degrades to `valid() == false` so the store can rebuild it.
  bool open(const std::string &Dir, bool Writable, std::string &Error);

  /// True once a parseable journal is loaded (or freshly created).
  bool valid() const { return Valid; }

  uint64_t epoch() const { return Epoch; }
  uint64_t generation() const { return Generation; }
  uint64_t entryCount() const { return Entries.size(); }

  /// \p Serial is 1-based; callers bound it by `entryCount()`.
  const Entry &entry(uint64_t Serial) const { return Entries[Serial - 1]; }

  /// Appends one entry and bumps the generation. False on I/O failure
  /// (the in-memory state still advances — the journal is derived data,
  /// and the next open rebuilds it).
  bool append(const Entry &E);

  /// Rewrites the whole journal under \p NewEpoch listing exactly
  /// \p NewEntries from serial 1 — the compaction/retention epoch bump.
  /// The rewrite goes through a temp file + rename so a crash leaves
  /// either the old or the new journal, never a half one.
  bool reset(uint64_t NewEpoch, std::vector<Entry> NewEntries);

  /// One header `pread`, no state change — the sibling-append detector.
  Header peekHeader() const;

  /// Re-reads the file after `peekHeader` saw a foreign mutation.
  /// Same-epoch growth loads just the new entries and returns their
  /// first index via \p FirstNewSerial (1-based); an epoch change or a
  /// shrink reloads wholesale and reports `FirstNewSerial = 1`. False
  /// when the file is unreadable (state unchanged).
  bool refresh(uint64_t &FirstNewSerial);

private:
  bool loadFile(std::string &Error);
  bool writeHeaderLocked();

  std::string Path;
  int Fd = -1;
  bool Writable = false;
  bool Valid = false;
  uint64_t Epoch = 0;
  uint64_t Generation = 0;
  std::vector<Entry> Entries;
};

} // namespace antidote

#endif // ANTIDOTE_SERVING_STOREJOURNAL_H
