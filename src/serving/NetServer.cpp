//===- serving/NetServer.cpp - Socket serving tier with admission -------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "serving/NetServer.h"

#include <algorithm>
#include <cerrno>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace antidote;

NetServer::NetServer(CertServer &Server, const NetServerConfig &Config)
    : Server(Server), Config(Config) {}

NetServer::~NetServer() { stop(); }

bool NetServer::start(std::string &Error) {
  ListenResult Listen = listenTcpLoopback(Config.Port);
  if (!Listen.ok()) {
    Error = Listen.Error;
    return false;
  }
  if (!Poll.valid() || !Wake.valid()) {
    Error = "epoll/eventfd setup failed";
    return false;
  }
  ListenFd = std::move(Listen.Fd);
  ListenPort = Listen.Port;
  Poll.add(ListenFd.get(), ListenCookie);
  Poll.add(Wake.fd(), WakeCookie);
  Loop = std::thread([this] { loop(); });
  return true;
}

void NetServer::stop() {
  if (!Loop.joinable())
    return;
  Stopping.store(true, std::memory_order_release);
  Wake.signal();
  Loop.join();
}

NetServerStats NetServer::stats() const {
  NetServerStats S;
  S.Accepted = NumAccepted.load(std::memory_order_relaxed);
  S.RefusedClients = NumRefused.load(std::memory_order_relaxed);
  S.FramingErrors = NumFraming.load(std::memory_order_relaxed);
  S.Requests = NumRequests.load(std::memory_order_relaxed);
  S.Verified = NumVerified.load(std::memory_order_relaxed);
  S.ProbeHits = NumProbeHits.load(std::memory_order_relaxed);
  S.ShedOverload = NumShedOverload.load(std::memory_order_relaxed);
  S.ShedPaced = NumShedPaced.load(std::memory_order_relaxed);
  S.BadArity = NumBadArity.load(std::memory_order_relaxed);
  S.Cancelled = NumCancelled.load(std::memory_order_relaxed);
  S.JournalPolls = NumJournalPolls.load(std::memory_order_relaxed);
  return S;
}

void NetServer::loop() {
  std::vector<EpollEvent> Events;
  bool ShuttingDown = false;
  for (;;) {
    if (!ShuttingDown && Stopping.load(std::memory_order_acquire)) {
      // Shutdown sequence: stop accepting, abandon every client (their
      // tickets are cancelled inside closeConn), then stay in the loop
      // only to collect the completions the CertServer still owes us —
      // it fulfills every accepted request, so this converges.
      ShuttingDown = true;
      if (ListenFd.valid()) {
        Poll.del(ListenFd.get());
        ListenFd.reset();
      }
      std::vector<uint64_t> Ids;
      Ids.reserve(Conns.size());
      for (const auto &Entry : Conns)
        Ids.push_back(Entry.first);
      for (uint64_t Id : Ids)
        closeConn(Id, /*Framing=*/false);
    }
    if (ShuttingDown) {
      drainCompletions();
      if (OutstandingTickets == 0)
        return;
    }
    // The timeout bounds how long a stop() can go unnoticed; all normal
    // traffic wakes the loop through readiness or the eventfd.
    if (!Poll.wait(Events, 100))
      Events.clear();
    for (const EpollEvent &E : Events) {
      if (E.Data == ListenCookie) {
        if (!ShuttingDown)
          acceptClients();
        continue;
      }
      if (E.Data == WakeCookie) {
        Wake.drain();
        drainCompletions();
        continue;
      }
      // Conn cookies are monotonic and never reused, so an event for an
      // already-closed connection simply misses the map.
      if (!Conns.count(E.Data))
        continue;
      if (E.Closed) {
        closeConn(E.Data, /*Framing=*/false);
        continue;
      }
      if (E.Readable)
        readable(E.Data);
      if (E.Writable && Conns.count(E.Data))
        writable(E.Data);
    }
  }
}

void NetServer::acceptClients() {
  for (;;) {
    int Raw = ::accept4(ListenFd.get(), nullptr, nullptr,
                        SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (Raw < 0) {
      if (errno == EINTR)
        continue;
      return; // EAGAIN and transient errors alike: retry on readiness.
    }
    FdHandle Fd(Raw);
    if (Config.MaxClients && Conns.size() >= Config.MaxClients) {
      NumRefused.fetch_add(1, std::memory_order_relaxed);
      continue; // FdHandle closes it — refusal is the whole response.
    }
    int One = 1;
    ::setsockopt(Fd.get(), IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    uint64_t Id = NextConnId++;
    int RawFd = Fd.get();
    Conns.emplace(Id, Conn(std::move(Fd), Config.MaxFrameBytes,
                           Config.ClientBurst,
                           std::chrono::steady_clock::now()));
    Poll.add(RawFd, Id);
    NumAccepted.fetch_add(1, std::memory_order_relaxed);
  }
}

void NetServer::readable(uint64_t ConnId) {
  auto It = Conns.find(ConnId);
  if (It == Conns.end())
    return;
  Conn &C = It->second;
  uint8_t Buf[4096];
  for (;;) {
    ssize_t N = ::recv(C.Fd.get(), Buf, sizeof(Buf), 0);
    if (N > 0) {
      if (!C.In.feed(Buf, static_cast<size_t>(N))) {
        closeConn(ConnId, /*Framing=*/true);
        return;
      }
      continue;
    }
    if (N == 0) { // Orderly EOF. A frame cut short is a framing error.
      closeConn(ConnId, /*Framing=*/C.In.midFrame());
      return;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    closeConn(ConnId, /*Framing=*/false);
    return;
  }
  while (std::optional<FrameReader::Frame> Frame = C.In.nextFrame()) {
    if (Frame->Magic == NetJournalPollMagic) {
      std::optional<ReplicationEndpoint::PollRequest> Poll =
          decodeJournalPollPayload(Frame->Payload.data(),
                                   Frame->Payload.size());
      if (!Poll) {
        closeConn(ConnId, /*Framing=*/true);
        return;
      }
      handleJournalPoll(C, *Poll);
    } else {
      std::optional<NetRequest> Request =
          decodeRequestPayload(Frame->Payload.data(), Frame->Payload.size());
      if (!Request) {
        closeConn(ConnId, /*Framing=*/true);
        return;
      }
      handleRequest(ConnId, C, *Request);
    }
    if (!Conns.count(ConnId)) // flushOut may have lost the peer.
      return;
  }
  flushOut(ConnId, C);
}

void NetServer::writable(uint64_t ConnId) {
  auto It = Conns.find(ConnId);
  if (It != Conns.end())
    flushOut(ConnId, It->second);
}

void NetServer::handleRequest(uint64_t ConnId, Conn &C,
                              const NetRequest &Request) {
  NumRequests.fetch_add(1, std::memory_order_relaxed);
  NetResponse Response;
  Response.Tag = Request.Tag;

  // Gate 1: the frame is honest but the query is unanswerable.
  const Dataset &Train = Server.verifier().trainingSet();
  if (Request.X.size() != Train.numFeatures() ||
      Request.PoisoningBudget > Train.numRows()) {
    Response.Status = NetStatus::Error;
    Response.ErrorReason = Request.X.size() != Train.numFeatures()
                               ? NetErrorReason::BadArity
                               : NetErrorReason::BadBudget;
    NumBadArity.fetch_add(1, std::memory_order_relaxed);
    sendResponse(C, Response);
    return;
  }

  // Gate 2: per-client pacing. Refill first so a client that waited
  // earns its tokens back; admission below spends one.
  bool Paced = false;
  if (Config.ClientRate > 0.0) {
    auto Now = std::chrono::steady_clock::now();
    double Elapsed =
        std::chrono::duration<double>(Now - C.LastRefill).count();
    C.Tokens = std::min(Config.ClientBurst,
                        C.Tokens + Elapsed * Config.ClientRate);
    C.LastRefill = Now;
    Paced = C.Tokens < 1.0;
  }

  // Gate 3: queue-depth load shedding.
  bool Overloaded =
      Config.ShedDepth && Server.pendingRequests() >= Config.ShedDepth;

  if (Paced || Overloaded) {
    // Shed *before* verification — but what the store already knows is
    // a hash probe away and stays on the menu. A probe miss is an
    // explicit refusal, never a fabricated verdict.
    Certificate Known;
    if (Server.probeStore(Request.X.data(), Request.PoisoningBudget,
                          Known)) {
      Response.Status = NetStatus::Ok;
      Response.Path = NetServePath::ShedProbe;
      Response.Cert = Known;
      NumProbeHits.fetch_add(1, std::memory_order_relaxed);
    } else {
      Response.Status = NetStatus::Shed;
      Response.ShedReason =
          Overloaded ? NetShedReason::Overload : NetShedReason::Paced;
      (Overloaded ? NumShedOverload : NumShedPaced)
          .fetch_add(1, std::memory_order_relaxed);
    }
    sendResponse(C, Response);
    return;
  }

  // Admission: spend a token, submit ticketed, answer on completion.
  if (Config.ClientRate > 0.0)
    C.Tokens -= 1.0;
  CertServer::SubmitOptions Options;
  Options.DeadlineSeconds = Request.DeadlineMillis / 1000.0;
  uint64_t Tag = Request.Tag;
  Options.Completion = [this, ConnId, Tag](const Certificate &Cert) {
    {
      std::lock_guard<std::mutex> Guard(CompletionMutex);
      Completions.push_back(Completion{ConnId, Tag, Cert});
    }
    Wake.signal();
  };
  uint64_t Ticket = 0;
  // The future is deliberately dropped: the completion callback is the
  // event loop's signal, and the promise keeps the state alive.
  Server.submit(Request.X, Request.PoisoningBudget, std::move(Options),
                Ticket);
  C.Pending.emplace(Tag, Ticket);
  ++OutstandingTickets;
}

void NetServer::handleJournalPoll(
    Conn &C, const ReplicationEndpoint::PollRequest &Poll) {
  NumJournalPolls.fetch_add(1, std::memory_order_relaxed);
  // Unavailable is the honest default: no store, or a store (a RAM
  // cache, say) with no replication face. The replica treats it like a
  // transient error and keeps polling.
  ReplicationEndpoint::Delta Delta;
  CertificateStore *Store = Server.store();
  ReplicationEndpoint *Endpoint = Store ? Store->replication() : nullptr;
  if (Endpoint)
    Delta = Endpoint->serveJournalPoll(Poll);
  C.Out += encodeJournalDeltaFrame(Delta);
}

void NetServer::drainCompletions() {
  std::vector<Completion> Batch;
  {
    std::lock_guard<std::mutex> Guard(CompletionMutex);
    Batch.swap(Completions);
  }
  for (const Completion &Done : Batch) {
    --OutstandingTickets;
    auto It = Conns.find(Done.ConnId);
    if (It == Conns.end())
      continue; // Client left; its verification was already cancelled.
    Conn &C = It->second;
    auto Entry = C.Pending.find(Done.Tag);
    if (Entry != C.Pending.end())
      C.Pending.erase(Entry);
    NetResponse Response;
    Response.Tag = Done.Tag;
    Response.Status = NetStatus::Ok;
    Response.Path = NetServePath::Verified;
    Response.Cert = Done.Cert;
    NumVerified.fetch_add(1, std::memory_order_relaxed);
    sendResponse(C, Response);
    flushOut(Done.ConnId, C);
  }
}

void NetServer::sendResponse(Conn &C, const NetResponse &Response) {
  C.Out += encodeResponseFrame(Response);
}

void NetServer::flushOut(uint64_t ConnId, Conn &C) {
  while (C.OutPos < C.Out.size()) {
    // MSG_NOSIGNAL: a peer that closed mid-response must cost EPIPE on
    // this connection, not SIGPIPE for the process.
    ssize_t N = ::send(C.Fd.get(), C.Out.data() + C.OutPos,
                       C.Out.size() - C.OutPos, MSG_NOSIGNAL);
    if (N > 0) {
      C.OutPos += static_cast<size_t>(N);
      continue;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!C.WantWrite) {
        Poll.mod(C.Fd.get(), ConnId, /*Write=*/true);
        C.WantWrite = true;
      }
      return;
    }
    closeConn(ConnId, /*Framing=*/false);
    return;
  }
  C.Out.clear();
  C.OutPos = 0;
  if (C.WantWrite) {
    Poll.mod(C.Fd.get(), ConnId, /*Write=*/false);
    C.WantWrite = false;
  }
}

void NetServer::closeConn(uint64_t ConnId, bool Framing) {
  auto It = Conns.find(ConnId);
  if (It == Conns.end())
    return;
  Conn &C = It->second;
  // Abandoned requests must not keep verifying for a reader that no
  // longer exists: a queued one frees its slot now, an in-flight one
  // has its token cancelled. The completions still arrive (and are
  // dropped above) — cancellation abandons work, not bookkeeping.
  for (const auto &Pending : C.Pending)
    if (Pending.second && Server.cancelRequest(Pending.second))
      NumCancelled.fetch_add(1, std::memory_order_relaxed);
  if (Framing)
    NumFraming.fetch_add(1, std::memory_order_relaxed);
  Poll.del(C.Fd.get());
  Conns.erase(It);
}
