//===- serving/ServingOptions.cpp - Shared serving-flag parsing ---------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "serving/ServingOptions.h"

#include "support/Parse.h"

#include <climits>
#include <cstring>
#include <optional>

using namespace antidote;

namespace {

/// How a row's value text is parsed and checked.
enum class OptKind : uint8_t {
  Unsigned, ///< Whole base-10 integer in [0, Max].
  Double,   ///< Finite double >= Min.
  Threat,   ///< 'removal' | 'flip'.
  Text,     ///< Free-form (paths); validation belongs to the consumer.
  HostPort, ///< HOST:PORT with a nonempty host and port in [1, 65535].
};

/// One knob: flag, env twin, parse rule, help text, and the setter that
/// lands the parsed value in `ServingOptions`. `--help` renders these
/// rows verbatim, so the table is the single source of truth.
struct OptRow {
  const char *Flag;
  const char *Env; ///< Null = no env twin.
  OptKind Kind;
  uint64_t Max;            ///< Unsigned bound.
  double Min;              ///< Double bound.
  const char *ZeroMeaning; ///< What 0 means (unsigned error text/help).
  const char *Meta;        ///< Value placeholder for the help line.
  const char *Default;     ///< Default, as help text.
  const char *Help;        ///< One-line description.
  void (*Apply)(ServingOptions &O, uint64_t U, double D, const char *S);
};

const OptRow Rows[] = {
    {"--jobs", "ANTIDOTE_JOBS", OptKind::Unsigned, UINT_MAX, 0.0,
     "all cores", "N", "1", "worker threads for batch/serve modes",
     [](ServingOptions &O, uint64_t U, double, const char *) {
       O.Jobs = static_cast<unsigned>(U);
     }},
    {"--frontier-jobs", "ANTIDOTE_FRONTIER_JOBS", OptKind::Unsigned,
     UINT_MAX, 0.0, "all cores", "N", "1",
     "executors inside one query's DTrace# frontier",
     [](ServingOptions &O, uint64_t U, double, const char *) {
       O.FrontierJobs = static_cast<unsigned>(U);
     }},
    {"--split-jobs", "ANTIDOTE_SPLIT_JOBS", OptKind::Unsigned, UINT_MAX,
     0.0, "all cores", "N", "1",
     "executors inside one bestSplit# scoring pass",
     [](ServingOptions &O, uint64_t U, double, const char *) {
       O.SplitJobs = static_cast<unsigned>(U);
     }},
    {"--threat", "ANTIDOTE_THREAT", OptKind::Threat, 0, 0.0, nullptr,
     "removal|flip", "removal",
     "poisoning model: rows added ('removal') or relabeled ('flip')",
     [](ServingOptions &O, uint64_t U, double, const char *) {
       O.Threat = static_cast<ThreatModelKind>(U);
     }},
    {"--cache-bytes", "ANTIDOTE_CACHE_BYTES", OptKind::Unsigned,
     UINT64_MAX, 0.0, "unbounded", "B", "off",
     "RAM certificate-cache byte budget",
     [](ServingOptions &O, uint64_t U, double, const char *) {
       O.CacheBytes = U;
       O.CacheEnabled = true;
     }},
    {"--cache-dir", "ANTIDOTE_CACHE_DIR", OptKind::Text, 0, 0.0, nullptr,
     "DIR", "off", "persistent certificate-store directory",
     [](ServingOptions &O, uint64_t, double, const char *S) {
       O.CacheDir = S;
       O.CacheEnabled = true;
     }},
    {"--store-retention-bytes", "ANTIDOTE_STORE_RETENTION_BYTES",
     OptKind::Unsigned, UINT64_MAX, 0.0, "unbounded", "B", "0",
     "disk-store segment budget; oldest segments evicted first",
     [](ServingOptions &O, uint64_t U, double, const char *) {
       O.RetentionBytes = U;
     }},
    {"--delta-slack", "ANTIDOTE_DELTA_SLACK", OptKind::Unsigned, 1, 0.0,
     "disabled", "0|1", "1",
     "serve from a lineage parent's certificates on a store miss",
     [](ServingOptions &O, uint64_t U, double, const char *) {
       O.DeltaSlack = U != 0;
     }},
    {"--listen", "ANTIDOTE_LISTEN", OptKind::Unsigned, 65535, 0.0,
     "kernel-assigned port", "PORT", "off",
     "serve the binary protocol on 127.0.0.1:PORT",
     [](ServingOptions &O, uint64_t U, double, const char *) {
       O.ListenPort = static_cast<uint16_t>(U);
       O.Listen = true;
     }},
    {"--max-clients", "ANTIDOTE_MAX_CLIENTS", OptKind::Unsigned,
     UINT64_MAX, 0.0, "unbounded", "N", "64",
     "concurrent connections; extra accepts are closed",
     [](ServingOptions &O, uint64_t U, double, const char *) {
       O.MaxClients = U;
     }},
    {"--shed-depth", "ANTIDOTE_SHED_DEPTH", OptKind::Unsigned, UINT64_MAX,
     0.0, "never shed", "N", "0",
     "verification-queue depth at which new work is shed",
     [](ServingOptions &O, uint64_t U, double, const char *) {
       O.ShedDepth = U;
     }},
    {"--client-rate", "ANTIDOTE_CLIENT_RATE", OptKind::Double, 0, 0.0,
     nullptr, "R", "0", "per-client admitted requests/second (0 = unpaced)",
     [](ServingOptions &O, uint64_t, double D, const char *) {
       O.ClientRate = D;
     }},
    {"--client-burst", "ANTIDOTE_CLIENT_BURST", OptKind::Double, 0, 1.0,
     nullptr, "B", "8", "token-bucket capacity one client may burst",
     [](ServingOptions &O, uint64_t, double D, const char *) {
       O.ClientBurst = D;
     }},
    {"--replicate-from", "ANTIDOTE_REPLICATE_FROM", OptKind::HostPort, 0,
     0.0, nullptr, "HOST:PORT", "off",
     "pull certificates from a source server's journal",
     [](ServingOptions &O, uint64_t U, double, const char *S) {
       O.ReplicateHost = S;
       O.ReplicatePort = static_cast<uint16_t>(U);
       O.Replicate = true;
     }},
    {"--replicate-interval", "ANTIDOTE_REPLICATE_INTERVAL",
     OptKind::Double, 0, 0.0, nullptr, "SECONDS", "1",
     "seconds between replication polls once caught up",
     [](ServingOptions &O, uint64_t, double D, const char *) {
       O.ReplicateInterval = D;
     }},
};

/// Splits "HOST:PORT" on the *last* colon. Null port text / empty host
/// fails; the port must parse as [1, 65535].
bool parseHostPort(const char *Text, std::string &Host, uint16_t &Port) {
  const char *Colon = std::strrchr(Text, ':');
  if (!Colon || Colon == Text)
    return false;
  std::optional<uint64_t> Parsed = parseUnsignedArg(Colon + 1, 65535);
  if (!Parsed || *Parsed == 0)
    return false;
  Host.assign(Text, Colon);
  Port = static_cast<uint16_t>(*Parsed);
  return true;
}

/// Parses \p Value per \p Row and applies it. \p Name is the flag or
/// env-twin name for the error message; both paths share one wording
/// per kind.
bool applyValue(ServingOptions &O, const OptRow &Row, const char *Name,
                const char *Value) {
  switch (Row.Kind) {
  case OptKind::Unsigned: {
    std::optional<uint64_t> Parsed = parseUnsignedArg(Value, Row.Max);
    if (!Parsed) {
      std::fprintf(stderr,
                   "error: %s needs an unsigned integer (0 = %s), got "
                   "'%s'\n",
                   Name, Row.ZeroMeaning, Value);
      return false;
    }
    Row.Apply(O, *Parsed, 0.0, Value);
    return true;
  }
  case OptKind::Double: {
    std::optional<double> Parsed = parseDoubleArg(Value);
    if (!Parsed || *Parsed < Row.Min) {
      std::fprintf(stderr,
                   "error: %s needs a finite number >= %g, got '%s'\n",
                   Name, Row.Min, Value);
      return false;
    }
    Row.Apply(O, 0, *Parsed, Value);
    return true;
  }
  case OptKind::Threat: {
    std::optional<ThreatModelKind> Parsed = parseThreatModelName(Value);
    if (!Parsed) {
      std::fprintf(stderr,
                   "error: %s must be 'removal' or 'flip', got '%s'\n",
                   Name, Value);
      return false;
    }
    Row.Apply(O, static_cast<uint64_t>(*Parsed), 0.0, Value);
    return true;
  }
  case OptKind::Text:
    Row.Apply(O, 0, 0.0, Value);
    return true;
  case OptKind::HostPort: {
    std::string Host;
    uint16_t Port = 0;
    if (!parseHostPort(Value, Host, Port)) {
      std::fprintf(stderr,
                   "error: %s needs HOST:PORT (port 1-65535), got "
                   "'%s'\n",
                   Name, Value);
      return false;
    }
    // Apply receives the host through S and the port through U.
    std::string HostOnly = Host;
    Row.Apply(O, Port, 0.0, HostOnly.c_str());
    return true;
  }
  }
  return false;
}

} // namespace

bool ServingOptions::parse(int &Argc, char **Argv) {
  // Environment twins first, so explicit flags override them below.
  // Malformed env values are as fatal as malformed flags.
  for (const OptRow &Row : Rows) {
    if (!Row.Env)
      continue;
    std::optional<std::string> Text = readStringEnv(Row.Env);
    if (!Text)
      continue;
    if (!applyValue(*this, Row, Row.Env, Text->c_str()))
      return false;
  }
  // Flags: consume what the table knows, keep everything else in order.
  int Kept = 1;
  for (int I = 1; I < Argc; ++I) {
    const OptRow *Found = nullptr;
    for (const OptRow &Row : Rows)
      if (std::strcmp(Argv[I], Row.Flag) == 0) {
        Found = &Row;
        break;
      }
    if (!Found) {
      Argv[Kept++] = Argv[I];
      continue;
    }
    if (I + 1 >= Argc) {
      std::fprintf(stderr, "error: %s needs a value\n", Argv[I]);
      return false;
    }
    if (!applyValue(*this, *Found, Found->Flag, Argv[++I]))
      return false;
  }
  Argc = Kept;
  return true;
}

void ServingOptions::printHelp(std::FILE *Out) {
  std::fprintf(Out,
               "serving knobs (flag beats env-var twin beats default; "
               "malformed values\nin either error out):\n");
  for (const OptRow &Row : Rows) {
    char FlagMeta[64];
    std::snprintf(FlagMeta, sizeof(FlagMeta), "%s %s", Row.Flag, Row.Meta);
    std::fprintf(Out, "  %-28s %s\n", FlagMeta, Row.Help);
    if (Row.ZeroMeaning)
      std::fprintf(Out, "  %-28s   (0 = %s; env %s; default %s)\n", "",
                   Row.ZeroMeaning, Row.Env, Row.Default);
    else
      std::fprintf(Out, "  %-28s   (env %s; default %s)\n", "", Row.Env,
                   Row.Default);
  }
}
