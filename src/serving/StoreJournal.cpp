//===- serving/StoreJournal.cpp - Replication journal -------------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "serving/StoreJournal.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

using namespace antidote;

namespace {

constexpr uint32_t JournalMagic = 0x4A544341; // "ACTJ" little-endian.

void putU32(uint8_t *P, uint32_t V) {
  P[0] = static_cast<uint8_t>(V);
  P[1] = static_cast<uint8_t>(V >> 8);
  P[2] = static_cast<uint8_t>(V >> 16);
  P[3] = static_cast<uint8_t>(V >> 24);
}

void putU64(uint8_t *P, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    P[I] = static_cast<uint8_t>(V >> (8 * I));
}

uint32_t getU32(const uint8_t *P) {
  return static_cast<uint32_t>(P[0]) | (static_cast<uint32_t>(P[1]) << 8) |
         (static_cast<uint32_t>(P[2]) << 16) |
         (static_cast<uint32_t>(P[3]) << 24);
}

uint64_t getU64(const uint8_t *P) {
  uint64_t V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(P[I]) << (8 * I);
  return V;
}

void encodeHeader(uint8_t (&Buf)[StoreJournal::HeaderBytes], uint64_t Epoch,
                  uint64_t Generation) {
  putU32(Buf, JournalMagic);
  putU32(Buf + 4, StoreJournal::FormatVersion);
  putU64(Buf + 8, Epoch);
  putU64(Buf + 16, Generation);
}

void encodeEntry(uint8_t (&Buf)[StoreJournal::EntryBytes],
                 const StoreJournal::Entry &E) {
  putU32(Buf, E.Segment);
  putU32(Buf + 4, E.RecordBytes);
  putU64(Buf + 8, E.Offset);
  putU64(Buf + 16, E.Checksum);
}

StoreJournal::Entry decodeEntry(const uint8_t *Buf) {
  StoreJournal::Entry E;
  E.Segment = getU32(Buf);
  E.RecordBytes = getU32(Buf + 4);
  E.Offset = getU64(Buf + 8);
  E.Checksum = getU64(Buf + 16);
  return E;
}

bool preadAll(int Fd, uint8_t *Buf, size_t Size, uint64_t Offset) {
  size_t Done = 0;
  while (Done < Size) {
    ssize_t N = ::pread(Fd, Buf + Done, Size - Done,
                        static_cast<off_t>(Offset + Done));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0)
      return false;
    Done += static_cast<size_t>(N);
  }
  return true;
}

bool pwriteAll(int Fd, const uint8_t *Buf, size_t Size, uint64_t Offset) {
  size_t Done = 0;
  while (Done < Size) {
    ssize_t N = ::pwrite(Fd, Buf + Done, Size - Done,
                         static_cast<off_t>(Offset + Done));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Done += static_cast<size_t>(N);
  }
  return true;
}

} // namespace

StoreJournal::~StoreJournal() {
  if (Fd >= 0)
    ::close(Fd);
}

bool StoreJournal::open(const std::string &Dir, bool WantWritable,
                        std::string &Error) {
  Path = Dir + "/journal.antj";
  Writable = WantWritable;
  Valid = false;
  Epoch = 0;
  Generation = 0;
  Entries.clear();
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }

  int Flags = Writable ? (O_RDWR | O_CREAT | O_CLOEXEC) : (O_RDONLY | O_CLOEXEC);
  Fd = ::open(Path.c_str(), Flags, 0644);
  if (Fd < 0) {
    // A read-only opener of a store that never journaled is not an
    // error: the store serves lookups fine, it just cannot act as a
    // replication source until a writer creates the journal.
    if (!Writable && errno == ENOENT) {
      Error.clear();
      return true;
    }
    Error = "cannot open journal '" + Path + "': " + std::strerror(errno);
    return false;
  }

  std::string LoadError;
  if (loadFile(LoadError))
    return true;

  if (!Writable) {
    // Unreadable journal, read-only handle: degrade to "no journal".
    Valid = false;
    Error.clear();
    return true;
  }

  // Writable and unparseable (fresh file lands here too: zero bytes is
  // not a valid header): initialize a new epoch-1 journal. The caller
  // reconciles the record list in afterwards; a *rebuild* over an old
  // journal instead goes through reset() with epoch+1, which the caller
  // drives because only it knows the old epoch survived peekHeader.
  Epoch = 1;
  Generation = 1;
  Entries.clear();
  if (::ftruncate(Fd, 0) != 0 || !writeHeaderLocked()) {
    Error = "cannot initialize journal '" + Path + "': " + std::strerror(errno);
    return false;
  }
  Valid = true;
  return true;
}

bool StoreJournal::loadFile(std::string &Error) {
  off_t End = ::lseek(Fd, 0, SEEK_END);
  if (End < 0) {
    Error = "journal seek failed";
    return false;
  }
  uint64_t Size = static_cast<uint64_t>(End);
  if (Size < HeaderBytes) {
    Error = "journal too short";
    return false;
  }
  uint8_t Head[HeaderBytes];
  if (!preadAll(Fd, Head, HeaderBytes, 0)) {
    Error = "journal header unreadable";
    return false;
  }
  if (getU32(Head) != JournalMagic || getU32(Head + 4) != FormatVersion) {
    Error = "journal magic/version mismatch";
    return false;
  }
  Epoch = getU64(Head + 8);
  Generation = getU64(Head + 16);

  uint64_t Body = Size - HeaderBytes;
  uint64_t Whole = Body / EntryBytes;
  if (Body % EntryBytes != 0) {
    // Torn entry tail — the journal twin of the append segment's torn
    // record. Writable handles repair in place (the caller holds the
    // store flock); read-only handles just ignore the fragment.
    if (Writable &&
        ::ftruncate(Fd, static_cast<off_t>(HeaderBytes + Whole * EntryBytes)) !=
            0) {
      Error = "journal tail repair failed";
      return false;
    }
  }

  Entries.clear();
  Entries.reserve(Whole);
  uint8_t Buf[EntryBytes];
  for (uint64_t I = 0; I < Whole; ++I) {
    if (!preadAll(Fd, Buf, EntryBytes, HeaderBytes + I * EntryBytes)) {
      Error = "journal entry unreadable";
      return false;
    }
    Entries.push_back(decodeEntry(Buf));
  }
  Valid = true;
  return true;
}

bool StoreJournal::writeHeaderLocked() {
  uint8_t Head[HeaderBytes];
  encodeHeader(Head, Epoch, Generation);
  return pwriteAll(Fd, Head, HeaderBytes, 0);
}

bool StoreJournal::append(const Entry &E) {
  uint64_t Index = Entries.size();
  Entries.push_back(E);
  ++Generation;
  if (!Writable || Fd < 0 || !Valid)
    return false;
  uint8_t Buf[EntryBytes];
  encodeEntry(Buf, E);
  // Entry first, then the generation bump: a peeker that sees the new
  // generation is guaranteed to find the entry it advertises.
  bool Ok = pwriteAll(Fd, Buf, EntryBytes, HeaderBytes + Index * EntryBytes);
  Ok = writeHeaderLocked() && Ok;
  return Ok;
}

bool StoreJournal::reset(uint64_t NewEpoch, std::vector<Entry> NewEntries) {
  Epoch = NewEpoch;
  ++Generation;
  Entries = std::move(NewEntries);
  if (!Writable || Fd < 0)
    return false;

  // Rewrite through a temp file + rename: a crash mid-rewrite must not
  // leave a journal whose serials misnumber the surviving records.
  std::string Tmp = Path + ".tmp";
  int TmpFd = ::open(Tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC,
                     0644);
  if (TmpFd < 0)
    return false;
  std::vector<uint8_t> Bytes(HeaderBytes + Entries.size() * EntryBytes);
  uint8_t Head[HeaderBytes];
  encodeHeader(Head, Epoch, Generation);
  std::memcpy(Bytes.data(), Head, HeaderBytes);
  for (size_t I = 0; I < Entries.size(); ++I) {
    uint8_t Buf[EntryBytes];
    encodeEntry(Buf, Entries[I]);
    std::memcpy(Bytes.data() + HeaderBytes + I * EntryBytes, Buf, EntryBytes);
  }
  bool Ok = pwriteAll(TmpFd, Bytes.data(), Bytes.size(), 0);
  Ok = ::fsync(TmpFd) == 0 && Ok;
  ::close(TmpFd);
  if (!Ok || ::rename(Tmp.c_str(), Path.c_str()) != 0) {
    ::unlink(Tmp.c_str());
    return false;
  }
  // Swap the open descriptor to the renamed file so appends land there.
  int NewFd = ::open(Path.c_str(), O_RDWR | O_CLOEXEC);
  if (NewFd < 0)
    return false;
  ::close(Fd);
  Fd = NewFd;
  Valid = true;
  return true;
}

StoreJournal::Header StoreJournal::peekHeader() const {
  // Read via the *path*, not the cached fd: a sibling's reset() renames
  // a fresh file over the journal, and the cached descriptor would keep
  // reading the unlinked inode's stale (and never again changing)
  // header, hiding the sibling's mutation forever.
  Header H;
  if (Path.empty())
    return H;
  int PeekFd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
  if (PeekFd < 0)
    return H;
  uint8_t Head[HeaderBytes];
  bool Ok = preadAll(PeekFd, Head, HeaderBytes, 0);
  ::close(PeekFd);
  if (!Ok)
    return H;
  if (getU32(Head) != JournalMagic || getU32(Head + 4) != FormatVersion)
    return H;
  H.Epoch = getU64(Head + 8);
  H.Generation = getU64(Head + 16);
  H.Ok = true;
  return H;
}

bool StoreJournal::refresh(uint64_t &FirstNewSerial) {
  FirstNewSerial = 1;
  if (Path.empty())
    return false;
  // Chase the current inode unconditionally — cheap, and correct across
  // a sibling's rename-over reset.
  int NewFd = ::open(Path.c_str(),
                     Writable ? (O_RDWR | O_CLOEXEC) : (O_RDONLY | O_CLOEXEC));
  if (NewFd < 0)
    return false;
  if (Fd >= 0)
    ::close(Fd);
  Fd = NewFd;
  Header H = peekHeader();
  if (!H.Ok)
    return false;

  off_t End = ::lseek(Fd, 0, SEEK_END);
  if (End < 0 || static_cast<uint64_t>(End) < HeaderBytes)
    return false;
  uint64_t Whole = (static_cast<uint64_t>(End) - HeaderBytes) / EntryBytes;

  uint64_t From = 0;
  if (H.Epoch == Epoch && Whole >= Entries.size()) {
    From = Entries.size(); // Incremental: only the growth.
  } else {
    Entries.clear(); // Epoch moved or the file shrank: full reload.
  }
  FirstNewSerial = From + 1;

  uint8_t Buf[EntryBytes];
  for (uint64_t I = From; I < Whole; ++I) {
    if (!preadAll(Fd, Buf, EntryBytes, HeaderBytes + I * EntryBytes))
      return false;
    Entries.push_back(decodeEntry(Buf));
  }
  Epoch = H.Epoch;
  Generation = H.Generation;
  Valid = true;
  return true;
}
