//===- serving/TieredStore.h - RAM-over-disk certificate store -*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two-tier production certificate store: a RAM LRU (`CertCache`)
/// in front of a persistent backing store (`DiskCertStore`), behind one
/// `CertificateStore` facade so `Verifier`, `CertServer`, and
/// `runPoisoningSweep` stay tier-agnostic.
///
///     lookup ──▶ RAM tier ──hit──▶ served (hash probe)
///                  │miss
///                  ▼
///               disk tier ──hit──▶ served + *promoted* into RAM, so
///                  │miss           the next repeat is a hash probe
///                  ▼
///               verified fresh ──▶ stored write-through to both tiers
///
/// Write-through happens only for deterministic verdicts — `Verifier`
/// already filters (the PR-4 discipline), and the disk tier re-checks
/// defensively — so neither tier can ever replay a verdict a fresh run
/// might contradict. RAM eviction never touches disk: the byte-budgeted
/// LRU bounds *residency*, the disk tier is the system of record, and an
/// entry evicted from RAM is simply re-promoted on its next use.
///
/// Both tiers key through the shared `StoreKey` (serving/StoreKey.h), so
/// promotion is a plain store — no key translation, and a certificate
/// written by any process is addressable by every other process sharing
/// the store directory.
///
/// Radius-range serving lives *inside* each tier (the same rule both
/// sides of serving/StoreKey.h `rangeServes`), so this facade needs no
/// range logic of its own. One subtlety is free by construction: when a
/// disk *range* hit is promoted, it is stored under the queried budget
/// but carries the original proof's `CertifiedRadius` (≠ that budget),
/// so the RAM tier's registration rule (original proofs only) keeps it
/// out of the RAM range index — promoted range answers serve exact
/// repeats only, and every range probe keeps resolving against original
/// proofs. No radius collision, no double counting.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_SERVING_TIEREDSTORE_H
#define ANTIDOTE_SERVING_TIEREDSTORE_H

#include "serving/CertificateStore.h"

#include <atomic>
#include <cstdint>

namespace antidote {

/// Composes two `CertificateStore`s, RAM semantics in front and
/// persistent semantics behind. Owns neither — the server/CLI owns the
/// tiers (the disk store may be shared more widely than one tiering).
class TieredStore final : public CertificateStore {
public:
  /// \p Ram is consulted first and fed on promotion; \p Disk is the
  /// system of record. Either may be null, degrading to the other tier
  /// alone (a convenience for call sites with optional knobs).
  TieredStore(CertificateStore *Ram, CertificateStore *Disk)
      : Ram(Ram), Disk(Disk) {}

  bool lookup(const DatasetFingerprint &Data, const float *X,
              unsigned NumFeatures, uint32_t PoisoningBudget,
              const VerifierConfig &Config, Certificate &Out) override;

  void store(const DatasetFingerprint &Data, const float *X,
             unsigned NumFeatures, uint32_t PoisoningBudget,
             const VerifierConfig &Config, const Certificate &Cert) override;

  /// Probes never promote: the shed path's "free answer?" question must
  /// not spend RAM-tier budget on a query the server is refusing.
  bool probe(const DatasetFingerprint &Data, const float *X,
             unsigned NumFeatures, uint32_t PoisoningBudget,
             const VerifierConfig &Config, Certificate &Out) override;

  bool rangeLookup(const DatasetFingerprint &Data, const float *X,
                   unsigned NumFeatures, uint32_t PoisoningBudget,
                   const VerifierConfig &Config, Certificate &Out) override;

  /// The tier-crossing counters (`RamHits`/`DiskHits`/`Misses`); each
  /// tier keeps its own full stats behind its own handle.
  StoreStats stats() const override;

  /// Replication rides on the persistent tier: forwarded to `Disk`.
  ReplicationEndpoint *replication() override {
    return Disk ? Disk->replication() : nullptr;
  }

private:
  CertificateStore *Ram;
  CertificateStore *Disk;

  // Relaxed atomics: counters only — the tiers do their own locking.
  std::atomic<uint64_t> RamHits{0};
  std::atomic<uint64_t> DiskHits{0};
  std::atomic<uint64_t> Misses{0};
};

} // namespace antidote

#endif // ANTIDOTE_SERVING_TIEREDSTORE_H
