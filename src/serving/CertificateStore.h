//===- serving/CertificateStore.h - Unified store interface ----*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one abstract interface every certificate store implements — the
/// RAM LRU (`CertCache`), the persistent segment store (`DiskCertStore`),
/// and the two-tier composition (`TieredStore`) — so `Verifier`,
/// `CertServer`, `NetServer`, and `Replicator` each hold exactly one
/// `CertificateStore` and never name a concrete tier. The front ends
/// compose tiers at wiring time; everything behind them is
/// tier-agnostic.
///
/// Alongside the lookup/store contract (below) the interface carries:
///
///  - `probe`: answer only from already-stored certificates, never
///    verify — the admission-control shed path's question ("can I serve
///    this for free?").
///  - `rangeLookup`: the radius-range rule alone, exact matches
///    excluded — for introspection and tests of the range machinery.
///  - `stats()`: one shared `StoreStats` counter struct; every
///    front-end stats line is rendered by `StoreStats::summary()`, so a
///    new counter surfaces in every CLI and CI grep at once.
///  - `replication()`: the journal-replication seam. Stores that keep a
///    replication journal (the disk tier) expose a
///    `ReplicationEndpoint`; everything else returns null and a
///    `Replicator` refuses to start against it.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_SERVING_CERTIFICATESTORE_H
#define ANTIDOTE_SERVING_CERTIFICATESTORE_H

#include "antidote/Verifier.h"

#include <cstdint>
#include <string>
#include <vector>

namespace antidote {

/// Monotonic counters plus the live footprint, shared by every store
/// tier. A consistent snapshot is taken under the store's own lock; the
/// fields a tier does not maintain stay zero (a RAM cache has no
/// segments, a plain disk store no ram/disk tier split).
struct StoreStats {
  // Serving counters.
  uint64_t Hits = 0;      ///< Exact-key hits.
  uint64_t RangeHits = 0; ///< Served by the radius-range rule
                          ///< (serving/StoreKey.h `rangeServes`).
  uint64_t Misses = 0;    ///< Neither an exact nor a range record served.
  uint64_t RamHits = 0;   ///< Tiered composition: RAM tier served.
  uint64_t DiskHits = 0;  ///< Tiered composition: disk served (+promoted).

  // Write-path counters.
  uint64_t Stores = 0;             ///< Records this handle accepted.
  uint64_t DuplicatesDeclined = 0; ///< Stores skipped: key already present.
  uint64_t Declined = 0;   ///< Stores refused (verdict / budget / read-only).
  uint64_t Evictions = 0;  ///< Entries dropped (LRU tail or retention).

  // Live footprint.
  uint64_t LiveRecords = 0;
  uint64_t LiveBytes = 0; ///< Indexed record bytes (headers included).

  // Disk-tier extras.
  uint64_t Segments = 0;       ///< Readable current-version segments.
  uint64_t CorruptSkipped = 0; ///< Torn/corrupt records dropped.
  uint64_t StaleSegments = 0;  ///< Segments skipped: wrong magic/version.
  uint64_t DuplicateRecords = 0; ///< Redundant records seen on open.
  uint64_t Compactions = 0;
  uint64_t CompactionRecordsDropped = 0;

  // Journal / replication extras (disk tier).
  uint64_t Epoch = 0;          ///< Current journal epoch (1-based).
  uint64_t JournalRecords = 0; ///< Journal entries in the current epoch.
  uint64_t RetentionEvictedSegments = 0; ///< Whole segments evicted by
                                         ///< the retention budget.
  uint64_t IndexRefreshes = 0; ///< Sibling-append index refreshes.

  /// One-line `key=value` rendering, stable for greps:
  /// "hits=2 range_hits=0 misses=1 stored=3 duplicates=0 declined=0
  /// evicted=0 records=3 bytes=712". Tiered splits (`ram_hits=`/
  /// `disk_hits=`) and the disk extras (`segments=` … `refreshes=`) are
  /// appended only when the tier maintains them, so a RAM cache's line
  /// stays short. Every front-end stats line is this text behind a
  /// "cache: "/"disk: "/"store: " prefix — the CI smokes grep it.
  std::string summary() const;
};

/// The pull-replication seam a journaled store exposes (see
/// serving/StoreJournal.h for the journal itself and
/// docs/ARCHITECTURE.md for the protocol walk-through).
///
/// Source side: `serveJournalPoll` answers "what changed since
/// (epoch, serial)?" with raw record bytes in journal order. Replica
/// side: `applyReplicatedRecord` feeds a received record through the
/// store's normal validation path — checksum, verdict whitelist,
/// duplicate decline — so a corrupt or replayed delta degrades to a
/// skip, never to a wrong certificate.
class ReplicationEndpoint {
public:
  virtual ~ReplicationEndpoint() = default;

  /// A replica's cursor plus its interest filter.
  struct PollRequest {
    uint64_t Epoch = 0;  ///< Last epoch the replica saw; 0 = none yet.
    uint64_t Serial = 0; ///< Journal entries already applied within it.
    /// Dataset-fingerprint scope: only records whose key fingerprint
    /// matches are shipped (skipped records still advance the serial
    /// cursor). 0/0 = everything.
    uint64_t ScopeHi = 0;
    uint64_t ScopeLo = 0;
    uint32_t MaxRecords = 256; ///< Batch bound; the source may clamp.
  };

  enum class PollStatus : uint8_t {
    Delta = 0, ///< `Records` continues the replica's epoch at `Serial`.
    EpochReset = 1, ///< The replica's epoch is gone (compaction /
                    ///< retention); re-poll from serial 0 of `Epoch`.
    Unavailable = 2, ///< No journaled store behind this endpoint.
  };

  /// One poll's answer. On `Delta`, `Records` holds whole serialized
  /// records (header + payload, exactly the on-disk bytes) and
  /// `NextSerial` is the cursor for the following poll; `HeadSerial` is
  /// the source's current journal length, so `NextSerial == HeadSerial`
  /// means caught up.
  struct Delta {
    PollStatus Status = PollStatus::Unavailable;
    uint64_t Epoch = 0;
    uint64_t NextSerial = 0;
    uint64_t HeadSerial = 0;
    std::vector<std::vector<uint8_t>> Records;
  };

  virtual Delta serveJournalPoll(const PollRequest &Poll) = 0;

  /// What happened to one received record.
  enum class ApplyResult : uint8_t {
    Applied,   ///< Validated, appended, indexed.
    Duplicate, ///< Key already present — replays are no-ops.
    Corrupt,   ///< Failed the checksum/parse validation; skipped.
    Declined,  ///< Valid but refused (read-only store, bad verdict).
  };

  /// Applies \p Size bytes of one serialized record (as shipped by
  /// `serveJournalPoll`: record header + payload) to the local store.
  virtual ApplyResult applyReplicatedRecord(const uint8_t *Data,
                                            size_t Size) = 0;
};

/// The caching hook `Verifier::verify` talks to, and the one store
/// abstraction of the serving layer. The LRU/byte-budget, on-disk, and
/// tiered implementations live in serving/ (tests may substitute their
/// own).
///
/// Contract:
///  - A `lookup` hit must return a certificate previously passed to
///    `store` under a key that *soundly answers* the queried one: same
///    training-set fingerprint, same query bit pattern, a
///    `VerifierConfig` equal in every result-relevant field (Depth,
///    Domain, Threat, Cprob, Gini, DisjunctCap where the domain reads
///    it, and the three run-stopping `Limits` knobs), and a poisoning budget
///    that either matches exactly or is covered by the *range rule*:
///    a Robust certificate proven at radius N answers any budget
///    n <= N (∆n(T) ⊆ ∆N(T) — budgets nest under both threat models,
///    so the rule applies per model), an Unknown at radius N answers any
///    n >= N (the abstraction that failed at N fails a fortiori at a
///    wider radius), and a ResourceLimit answers only its exact
///    budget. A range-served certificate comes back with
///    `PoisoningBudget` rewritten to the queried n and
///    `CertifiedRadius` still naming the stored proof's radius.
///    Scheduling knobs (FrontierJobs/SplitJobs/pools),
///    the cancellation token, `Limits.MaxCacheBytes`, and the `Cache`
///    pointer itself are certificate-irrelevant — certificates are
///    bit-identical across them — and must not distinguish keys.
///  - The verifier only offers deterministic verdicts for storage
///    (Robust / Unknown / ResourceLimit); wall-clock- or
///    controller-dependent ones (Timeout / Cancelled) are never cached,
///    so a hit can never replay a verdict a fresh run might not
///    reproduce.
///  - Both calls may run concurrently from batch-pool workers.
class CertificateStore {
public:
  virtual ~CertificateStore() = default;

  /// Fills \p Out and returns true when a certificate for exactly this
  /// (training set, query, budget, config) is stored.
  virtual bool lookup(const DatasetFingerprint &Data, const float *X,
                      unsigned NumFeatures, uint32_t PoisoningBudget,
                      const VerifierConfig &Config, Certificate &Out) = 0;

  /// Offers a freshly computed certificate for retention. The store may
  /// decline (byte budget); it must never mutate \p Cert.
  virtual void store(const DatasetFingerprint &Data, const float *X,
                     unsigned NumFeatures, uint32_t PoisoningBudget,
                     const VerifierConfig &Config,
                     const Certificate &Cert) = 0;

  /// Answers only from already-stored certificates — semantically a
  /// `lookup` that must never trigger verification (no store can) and
  /// need not pay side effects a tier considers optional (promotion,
  /// recency). The default forwards to `lookup`; the admission-control
  /// shed path calls this.
  virtual bool probe(const DatasetFingerprint &Data, const float *X,
                     unsigned NumFeatures, uint32_t PoisoningBudget,
                     const VerifierConfig &Config, Certificate &Out) {
    return lookup(Data, X, NumFeatures, PoisoningBudget, Config, Out);
  }

  /// The radius-range rule alone: serve (or not) strictly from a proof
  /// at a *different* radius, never from an exact-key entry. Stores
  /// without a range index answer false.
  virtual bool rangeLookup(const DatasetFingerprint &Data, const float *X,
                           unsigned NumFeatures, uint32_t PoisoningBudget,
                           const VerifierConfig &Config, Certificate &Out) {
    (void)Data, (void)X, (void)NumFeatures, (void)PoisoningBudget,
        (void)Config, (void)Out;
    return false;
  }

  /// A consistent counter snapshot; the default (all-zero) suits test
  /// doubles that count nothing.
  virtual StoreStats stats() const { return {}; }

  /// The replication seam: non-null only for stores that keep a
  /// journal (the disk tier; a tiered composition forwards to it).
  virtual ReplicationEndpoint *replication() { return nullptr; }
};

} // namespace antidote

#endif // ANTIDOTE_SERVING_CERTIFICATESTORE_H
