//===- serving/StoreKey.h - Normalized certificate-store keys --*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one normalized lookup key shared by every `CertificateStore`
/// implementation — the in-memory `CertCache`, the on-disk
/// `DiskCertStore`, and the `TieredStore` composing them. A key captures
/// exactly the result-relevant state of one verification:
///
///  - the training set as its 128-bit content fingerprint
///    (data/Fingerprint.h), never as a pointer or path;
///  - the query as its float *bit patterns* (support/BitHash.h policy:
///    0.0 and -0.0 are distinct, NaN payloads compare fine);
///  - the poisoning budget n;
///  - the result-relevant `VerifierConfig` fields: Depth, Domain, the
///    threat model (a removal proof must never answer a flip query, and
///    vice versa — the key partitions the range indexes per model too),
///    Cprob, Gini, DisjunctCap *only when the capped domain reads it*
///    (normalized to 0 otherwise, so Box/Disjuncts clients with
///    different ignored caps share entries), and the three run-stopping
///    `ResourceLimits` knobs.
///
/// Scheduling knobs (FrontierJobs/SplitJobs/pools), the cancellation
/// token, `MaxCacheBytes`, and the `Cache` pointer itself never enter a
/// key: certificates are bit-identical across them, and splitting keys
/// on them would stop a serial client from hitting entries a 64-thread
/// sweep populated. Because both the RAM and the disk tier build keys
/// through the same `makeStoreKey`, an entry written by either tier is
/// addressable by the other — and by any other process that loads the
/// same dataset (the fingerprint is process-independent by
/// construction).
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_SERVING_STOREKEY_H
#define ANTIDOTE_SERVING_STOREKEY_H

#include "antidote/Verifier.h"

#include <vector>

namespace antidote {

/// The normalized certificate-store lookup key; see the file comment for
/// what is — and deliberately is not — part of it.
struct StoreKey {
  DatasetFingerprint Data;
  std::vector<float> Query; ///< Bit-compared via its float values.
  uint32_t PoisoningBudget = 0;
  unsigned Depth = 0;
  AbstractDomainKind Domain = AbstractDomainKind::Box;
  ThreatModelKind Threat = ThreatModelKind::Removal;
  CprobTransformerKind Cprob = CprobTransformerKind::Optimal;
  GiniLiftingKind Gini = GiniLiftingKind::ExactTerm;
  size_t DisjunctCap = 0; ///< 0 unless Domain reads the cap.
  double TimeoutSeconds = 0.0;
  size_t MaxDisjuncts = 0;
  uint64_t MaxStateBytes = 0;

  bool operator==(const StoreKey &O) const;
  bool operator!=(const StoreKey &O) const { return !(*this == O); }
};

struct StoreKeyHash {
  size_t operator()(const StoreKey &K) const;
};

/// Builds the normalized key for one `CertificateStore` call. Every
/// store implementation funnels through this, so the key discipline
/// (and its tests) live in exactly one place.
StoreKey makeStoreKey(const DatasetFingerprint &Data, const float *X,
                      unsigned NumFeatures, uint32_t PoisoningBudget,
                      const VerifierConfig &Config);

/// The budget-agnostic base of \p K: the same key with
/// `PoisoningBudget` zeroed. The range indexes in `CertCache` and
/// `DiskCertStore` group their entries under base keys, so one probe
/// finds every stored proof radius for the same (dataset, query,
/// config) and the radius-range rule below picks a serving one.
StoreKey rangeBaseKey(const StoreKey &K);

/// The radius-range serving rule, shared by both store tiers (and
/// their tests): may a certificate of kind \p Kind proven at
/// \p CertifiedRadius answer a query at \p QueryBudget?
///
/// The rule is sound for every threat model whose budgets nest
/// (∆a(T) ⊆ ∆b(T) for a ≤ b) — true for removal (§4.1) and label flips
/// (≤ a relabelings is a special case of ≤ b) — and the threat model is
/// part of the key, so the range index never mixes proofs across models.
///
///  - Robust at N serves any n <= N: ∆n(T) ⊆ ∆N(T), so a prediction
///    invariant across the larger family is invariant across the
///    smaller (paper §4.1's concretization is anti-monotone in n).
///  - Unknown at N serves any n >= N: the abstraction failed to prove
///    at N, and widening the radius only loses precision, so the
///    failed attempt stands in for the wider one (it claims nothing,
///    hence is vacuously sound either way).
///  - ResourceLimit serves only its exact budget: the resource
///    accounting is budget-specific and neither direction transfers.
///
/// Exact matches (CertifiedRadius == QueryBudget) are handled by the
/// plain key lookup before any range probe, so this rule only decides
/// the strict cross-radius cases.
bool rangeServes(VerdictKind Kind, uint32_t CertifiedRadius,
                 uint32_t QueryBudget);

} // namespace antidote

#endif // ANTIDOTE_SERVING_STOREKEY_H
