//===- serving/CertServer.cpp - Warm certificate-serving loop -----------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "serving/CertServer.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace antidote;

CertServer::CertServer(const Dataset &Train, const CertServerConfig &Config)
    : Config(Config), V(Train),
      BatchPool(makeVerificationPool(Config.Jobs)),
      FrontierPool(makeVerificationPool(sharedFanoutJobs(
          Config.Query.FrontierJobs, Config.Query.SplitJobs))) {
  // The server owns the long-lived halves of the query config; whatever
  // the caller put there is replaced. The store is taken as configured —
  // abstract, already composed by the wiring layer.
  this->Config.Query.FrontierPool = FrontierPool.get();
  this->Config.Query.Cache = Config.Store;
  this->Config.Query.Cancel = &AbortToken;
  if (Config.Lineage) {
    V.setLineage(*Config.Lineage);
    // The server is the scheduler behind the slack path: slack-served
    // queries land on the background queue for exact re-verification.
    this->Config.Query.Reverify = this;
  }
  // The background config must verify for real: slack disarmed, no
  // scheduler (a background run must never re-queue itself).
  ExactQuery = this->Config.Query;
  ExactQuery.DeltaSlack = false;
  ExactQuery.Reverify = nullptr;
  Dispatcher = std::thread([this] { dispatchLoop(); });
}

CertServer::~CertServer() { stop(); }

void CertServer::fulfill(Request &R, const Certificate &Cert) {
  // Move the callback out first: set_value may unblock a waiter that
  // destroys the request's surroundings.
  std::function<void(const Certificate &)> Completion =
      std::move(R.Completion);
  R.Promise.set_value(Cert);
  if (Completion)
    Completion(Cert);
}

std::future<Certificate> CertServer::submit(std::vector<float> X,
                                            uint32_t PoisoningBudget) {
  Request R;
  R.X = std::move(X);
  R.PoisoningBudget = PoisoningBudget;
  return enqueue(std::move(R), nullptr);
}

std::future<Certificate> CertServer::submit(std::vector<float> X,
                                            uint32_t PoisoningBudget,
                                            SubmitOptions Options,
                                            uint64_t &TicketOut) {
  Request R;
  R.X = std::move(X);
  R.PoisoningBudget = PoisoningBudget;
  R.Completion = std::move(Options.Completion);
  if (Options.DeadlineSeconds > 0.0) {
    R.HasDeadline = true;
    R.Deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(Options.DeadlineSeconds));
  }
  return enqueue(std::move(R), &TicketOut);
}

std::future<Certificate> CertServer::enqueue(Request R,
                                             uint64_t *TicketOut) {
  assert(R.X.size() == V.trainingSet().numFeatures() &&
         "query arity must match the training set");
  std::future<Certificate> Result = R.Promise.get_future();
  {
    std::lock_guard<std::mutex> Guard(Mutex);
    if (Stopping) {
      Certificate Refused;
      Refused.Kind = VerdictKind::Cancelled;
      Refused.PoisoningBudget = R.PoisoningBudget;
      Refused.Depth = Config.Query.Depth;
      Refused.Domain = Config.Query.Domain;
      Refused.Threat = Config.Query.Threat;
      if (TicketOut)
        *TicketOut = 0; // Nothing to cancel; the answer is already here.
      fulfill(R, Refused);
      return Result;
    }
    if (TicketOut) {
      R.Ticket = NextTicket++;
      R.Cancel = std::make_shared<CancellationToken>();
      LiveTokens.emplace(R.Ticket, R.Cancel);
      *TicketOut = R.Ticket;
    }
    Queue.push_back(std::move(R));
  }
  QueueChanged.notify_one();
  return Result;
}

bool CertServer::cancelRequest(uint64_t Ticket) {
  if (Ticket == 0)
    return false;
  Request Cancelled;
  bool FoundQueued = false;
  {
    std::lock_guard<std::mutex> Guard(Mutex);
    // Still queued: release the slot now — admission control upstream
    // keys off the queue depth, and a dead client's request must not
    // hold capacity hostage, let alone get verified.
    for (auto It = Queue.begin(); It != Queue.end(); ++It) {
      if (It->Ticket != Ticket)
        continue;
      Cancelled = std::move(*It);
      Queue.erase(It);
      LiveTokens.erase(Ticket);
      FoundQueued = true;
      break;
    }
    if (!FoundQueued) {
      auto It = LiveTokens.find(Ticket);
      if (It == LiveTokens.end())
        return false; // Unknown or already served.
      // In flight: the verification observes the token at its next
      // budget poll and reports Cancelled through the normal path.
      It->second->cancel();
      return true;
    }
  }
  Certificate Refused;
  Refused.Kind = VerdictKind::Cancelled;
  Refused.PoisoningBudget = Cancelled.PoisoningBudget;
  Refused.Depth = Config.Query.Depth;
  Refused.Domain = Config.Query.Domain;
  Refused.Threat = Config.Query.Threat;
  fulfill(Cancelled, Refused);
  Idle.notify_all(); // A drain may have been waiting on this request.
  return true;
}

bool CertServer::probeStore(const float *X, uint32_t PoisoningBudget,
                            Certificate &Out) const {
  CertificateStore *Store = Config.Store;
  if (!Store)
    return false;
  return Store->probe(V.fingerprint(), X, V.trainingSet().numFeatures(),
                      PoisoningBudget, Config.Query, Out);
}

void CertServer::dispatchLoop() {
  for (;;) {
    std::vector<Request> Batch;
    BackgroundRequest Reverify;
    bool RunReverify = false;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      QueueChanged.wait(Lock, [this] {
        return Stopping || !Queue.empty() || !BackgroundQueue.empty();
      });
      if (Queue.empty() && Stopping)
        // Nothing left to serve; pending background re-verifications
        // are dropped by design (the next cold query just verifies).
        return;
      if (Queue.empty()) {
        // Foreground idle: run one background re-verification, then
        // re-check — a submit during it takes priority next round.
        Reverify = std::move(BackgroundQueue.front());
        BackgroundQueue.pop_front();
        ++BackgroundInFlight;
        RunReverify = true;
      } else {
        // MaxBatch 0 = unbounded; anything else still takes at least
        // one request, so the loop always makes progress.
        size_t Take = Config.MaxBatch
                          ? std::min(Config.MaxBatch, Queue.size())
                          : Queue.size();
        Batch.reserve(Take);
        for (size_t I = 0; I < Take; ++I) {
          Batch.push_back(std::move(Queue.front()));
          Queue.pop_front();
        }
        InFlight += Batch.size();
      }
    }
    if (RunReverify) {
      // The exact certificate writes through to the store under the
      // child's own fingerprint inside verify (ExactQuery keeps the
      // server's Cache wiring; only the slack path is disarmed).
      V.verify(Reverify.X.data(), Reverify.PoisoningBudget, ExactQuery);
      {
        std::lock_guard<std::mutex> Guard(Mutex);
        --BackgroundInFlight;
        ++ReverifiesDone;
      }
      Idle.notify_all();
      continue;
    }
    size_t Served = Batch.size();
    serveBatch(std::move(Batch));
    {
      std::lock_guard<std::mutex> Guard(Mutex);
      InFlight -= Served;
    }
    Idle.notify_all();
  }
}

void CertServer::finish(Request &R, const Certificate &Cert) {
  if (R.Ticket) {
    std::lock_guard<std::mutex> Guard(Mutex);
    LiveTokens.erase(R.Ticket);
  }
  fulfill(R, Cert);
}

void CertServer::serveBatch(std::vector<Request> Batch) {
  // Group by poisoning budget (verifyBatch verifies one n per call)
  // while preserving submission order within each group. Serving traffic
  // overwhelmingly shares one n, so this is almost always a single
  // verifyBatch spanning the whole batch.
  std::vector<size_t> Order(Batch.size());
  for (size_t I = 0; I < Batch.size(); ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Batch[A].PoisoningBudget < Batch[B].PoisoningBudget;
  });

  size_t GroupStart = 0;
  while (GroupStart < Order.size()) {
    size_t GroupEnd = GroupStart;
    uint32_t N = Batch[Order[GroupStart]].PoisoningBudget;
    while (GroupEnd < Order.size() &&
           Batch[Order[GroupEnd]].PoisoningBudget == N)
      ++GroupEnd;

    bool AnyTicketed = false;
    for (size_t I = GroupStart; I < GroupEnd; ++I)
      if (Batch[Order[I]].Ticket || Batch[Order[I]].HasDeadline)
        AnyTicketed = true;

    if (AnyTicketed) {
      // Per-request path: each request verifies under its own token and
      // its own deadline-clamped limits, so one client's cancellation
      // or deadline never stops a neighbour's identical query. Expired
      // requests answer Timeout here without consuming a verification
      // (sound: Timeout claims nothing).
      auto Now = std::chrono::steady_clock::now();
      std::vector<size_t> Live;       // Indices into Batch.
      std::vector<VerifierConfig> Configs;
      for (size_t I = GroupStart; I < GroupEnd; ++I) {
        Request &R = Batch[Order[I]];
        if (R.HasDeadline && R.Deadline <= Now) {
          Certificate Expired;
          Expired.Kind = VerdictKind::Timeout;
          Expired.PoisoningBudget = N;
          Expired.Depth = Config.Query.Depth;
          Expired.Domain = Config.Query.Domain;
          Expired.Threat = Config.Query.Threat;
          finish(R, Expired);
          continue;
        }
        VerifierConfig C = Config.Query;
        if (R.Cancel)
          C.Cancel = R.Cancel.get();
        if (R.HasDeadline) {
          double Remaining =
              std::chrono::duration<double>(R.Deadline - Now).count();
          C.Limits.TimeoutSeconds =
              C.Limits.TimeoutSeconds > 0
                  ? std::min(C.Limits.TimeoutSeconds, Remaining)
                  : Remaining;
        }
        Live.push_back(Order[I]);
        Configs.push_back(std::move(C));
      }
      std::vector<Certificate> Certs(Live.size());
      parallelFor(BatchPool.get(), Live.size(), [&](size_t J) {
        Request &R = Batch[Live[J]];
        Certs[J] = V.verify(R.X.data(), R.PoisoningBudget, Configs[J]);
      });
      for (size_t J = 0; J < Live.size(); ++J)
        finish(Batch[Live[J]], Certs[J]);
    } else {
      std::vector<const float *> Inputs;
      Inputs.reserve(GroupEnd - GroupStart);
      for (size_t I = GroupStart; I < GroupEnd; ++I)
        Inputs.push_back(Batch[Order[I]].X.data());

      // Cache lookups/stores happen per query on the batch-pool workers,
      // inside Verifier::verify — hits cost a hash probe, misses verify
      // and seed the cache for the next repeat.
      std::vector<Certificate> Certs =
          V.verifyBatch(Inputs, N, Config.Query, BatchPool.get());
      for (size_t I = GroupStart; I < GroupEnd; ++I)
        fulfill(Batch[Order[I]], Certs[I - GroupStart]);
    }

    GroupStart = GroupEnd;
  }
}

void CertServer::scheduleReverify(const float *X, unsigned NumFeatures,
                                  uint32_t PoisoningBudget) {
  BackgroundRequest R;
  R.X.assign(X, X + NumFeatures);
  R.PoisoningBudget = PoisoningBudget;
  {
    std::lock_guard<std::mutex> Guard(Mutex);
    if (Stopping)
      return; // Best-effort by contract; a shutdown drops the request.
    // Coalesce bit-identical duplicates: a batch of repeats of one
    // slack-served query needs one re-verification, not many.
    for (const BackgroundRequest &Queued : BackgroundQueue)
      if (Queued.PoisoningBudget == PoisoningBudget &&
          Queued.X.size() == R.X.size() &&
          std::memcmp(Queued.X.data(), R.X.data(),
                      R.X.size() * sizeof(float)) == 0)
        return;
    BackgroundQueue.push_back(std::move(R));
  }
  QueueChanged.notify_one();
}

size_t CertServer::pendingRequests() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return Queue.size() + InFlight;
}

size_t CertServer::pendingReverifies() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return BackgroundQueue.size() + BackgroundInFlight;
}

uint64_t CertServer::reverifiesCompleted() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return ReverifiesDone;
}

void CertServer::drain() {
  std::unique_lock<std::mutex> Lock(Mutex);
  Idle.wait(Lock, [this] { return Queue.empty() && InFlight == 0; });
}

void CertServer::drainBackground() {
  std::unique_lock<std::mutex> Lock(Mutex);
  Idle.wait(Lock, [this] {
    return Queue.empty() && InFlight == 0 && BackgroundQueue.empty() &&
           BackgroundInFlight == 0;
  });
}

void CertServer::stop() {
  std::thread ToJoin;
  {
    std::lock_guard<std::mutex> Guard(Mutex);
    Stopping = true;
    ToJoin = std::move(Dispatcher); // Empty on every stop after the first.
  }
  QueueChanged.notify_all();
  if (ToJoin.joinable())
    ToJoin.join(); // The loop exits only once the queue is empty.
}

void CertServer::abort() {
  // Cancel first so the drain inside stop() is cheap: every queued or
  // in-flight verification observes the token and reports Cancelled
  // instead of running to completion. Ticketed requests verify under
  // their own tokens, not AbortToken, so those are cancelled too.
  AbortToken.cancel();
  {
    std::lock_guard<std::mutex> Guard(Mutex);
    for (auto &Entry : LiveTokens)
      Entry.second->cancel();
  }
  stop();
}
