//===- serving/CertCache.h - Fingerprint-keyed certificate cache *- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer's incremental re-verification cache: a thread-safe
/// LRU map from the normalized `StoreKey` (dataset fingerprint, query bit
/// pattern, poisoning budget, result-relevant `VerifierConfig` fields) to
/// the `Certificate` a fresh verification produced, evicting
/// least-recently-used entries once a byte budget
/// (`ResourceLimits::MaxCacheBytes`) is exceeded.
///
/// Invariants (tests/CertCacheTests.cpp enforces each):
///
///  - **Cached ≡ fresh.** A hit returns the stored certificate verbatim —
///    every field, including the diagnostics and the `Seconds` the
///    original run took — so a cached answer is byte-identical to the
///    fresh verification that seeded it, and field-identical (modulo
///    wall-clock `Seconds`) to any re-verification, because only
///    deterministic verdicts are ever offered for storage (see
///    `CertificateStore` in serving/CertificateStore.h).
///  - **Keys capture exactly the result-relevant state.** The key
///    discipline lives in serving/StoreKey.h, shared with the on-disk
///    tier: scheduling knobs never split the key, so a serial client
///    hits entries a 64-thread sweep populated, and vice versa.
///  - **Range-served ≡ sound.** When the exact key misses, a
///    radius-range probe (serving/StoreKey.h `rangeServes`) may serve
///    a Robust certificate proven at a *wider* radius or an Unknown
///    attempt that failed at a *narrower* one — both monotone-sound,
///    counted as `RangeHits`, and returned with `PoisoningBudget`
///    rewritten to the queried n while `CertifiedRadius` keeps naming
///    the stored proof. Exact hits stay verbatim.
///  - **Byte-budgeted.** Every entry is charged its approximate resident
///    footprint — the key (query vector included), the certificate, and
///    the map/list node overhead, so the charge can never undercount to
///    just the value bytes; inserting past `MaxCacheBytes` evicts from
///    the LRU tail until the new entry fits (an entry alone exceeding
///    the whole budget is declined outright). 0 = unbounded, matching
///    the "0 disables the cap" convention of the other `ResourceLimits`
///    knobs.
///  - **Concurrent.** `lookup`/`store` run from batch-pool workers inside
///    `Verifier::verifyBatch`; one internal mutex serializes them (the
///    guarded work is a hash probe plus a splice — microseconds against
///    verification's milliseconds-to-hours).
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_SERVING_CERTCACHE_H
#define ANTIDOTE_SERVING_CERTCACHE_H

#include "serving/CertificateStore.h"
#include "serving/StoreKey.h"

#include <list>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace antidote {

/// The RAM tier of the production certificate store: fingerprint-keyed,
/// LRU-evicted under a byte budget, safe for concurrent pool workers.
/// Composes with the disk tier (serving/DiskCertStore.h) behind
/// serving/TieredStore.h.
class CertCache final : public CertificateStore {
public:
  /// \p MaxBytes caps the approximate resident footprint; 0 = unbounded.
  explicit CertCache(uint64_t MaxBytes) : MaxBytes(MaxBytes) {}

  /// Draws the budget from the single home of resource knobs
  /// (`Limits.MaxCacheBytes`; see support/Budget.h).
  explicit CertCache(const ResourceLimits &Limits)
      : CertCache(Limits.MaxCacheBytes) {}

  uint64_t maxBytes() const { return MaxBytes; }

  bool lookup(const DatasetFingerprint &Data, const float *X,
              unsigned NumFeatures, uint32_t PoisoningBudget,
              const VerifierConfig &Config, Certificate &Out) override;

  void store(const DatasetFingerprint &Data, const float *X,
             unsigned NumFeatures, uint32_t PoisoningBudget,
             const VerifierConfig &Config, const Certificate &Cert) override;

  /// The radius-range probe alone (no exact-key consultation, no LRU
  /// touch, no counter changes) — the rule `lookup` falls back to on an
  /// exact miss, exposed for range-machinery introspection.
  bool rangeLookup(const DatasetFingerprint &Data, const float *X,
                   unsigned NumFeatures, uint32_t PoisoningBudget,
                   const VerifierConfig &Config, Certificate &Out) override;

  StoreStats stats() const override;

  /// Drops every entry (counters are kept; `LiveBytes`/`LiveRecords`
  /// reset). For dataset-reload handovers and tests.
  void clear();

  /// Approximate resident bytes one entry with \p K's query shape is
  /// charged against the budget: key + certificate (via the map's
  /// key/slot pair, padding included), the query vector's heap block,
  /// and both containers' per-node overhead (hash bucket slot, map node
  /// links, LRU list node). Exposed so the eviction tests can pin the
  /// floor of the charge — it need not be exact, just monotone in the
  /// real footprint, stable for a given key shape, and never an
  /// undercount of the bytes the entry demonstrably owns.
  static uint64_t entryBytes(const StoreKey &K);

private:
  struct Slot {
    Certificate Cert;
    uint64_t Bytes = 0;
    std::list<const StoreKey *>::iterator LruIt;
  };

  /// Radius-ordered views of the entries sharing one budget-agnostic
  /// base key (serving/StoreKey.h `rangeBaseKey`): proof radius ->
  /// the entry's map key. Only *original* proofs — entries whose
  /// `CertifiedRadius` equals their key's budget — are registered, so
  /// a radius names at most one entry (a range-served promotion keyed
  /// under the queried budget would alias the original's radius and
  /// adds no serving power the original lacks).
  struct RangeSlot {
    std::map<uint32_t, const StoreKey *> Robust;  ///< Serve n <= radius.
    std::map<uint32_t, const StoreKey *> Unknown; ///< Serve n >= radius.
  };

  /// Pops the LRU tail. Caller holds the mutex.
  void evictOneLocked();

  /// Range-index maintenance for one entry; callers hold the mutex.
  void registerRangeLocked(const StoreKey &K, const Certificate &Cert);
  void unregisterRangeLocked(const StoreKey &K, const Certificate &Cert);

  const uint64_t MaxBytes;

  mutable std::mutex Mutex;
  /// Front = most recently used. Points at the map's stored keys
  /// (unordered_map never moves its elements, only its buckets).
  std::list<const StoreKey *> Lru;
  std::unordered_map<StoreKey, Slot, StoreKeyHash> Entries;
  /// Base key (budget zeroed) -> radius-sorted entry views; kept in
  /// lockstep with `Entries` by store/evict/clear.
  std::unordered_map<StoreKey, RangeSlot, StoreKeyHash> RangeIndex;
  StoreStats Stats;

  /// The range-rule resolution `lookup` and `rangeLookup` share: the
  /// serving entry for \p K's base key at budget \p PoisoningBudget, or
  /// null. Caller holds the mutex.
  const StoreKey *findRangeLocked(const StoreKey &K,
                                  uint32_t PoisoningBudget) const;
};

} // namespace antidote

#endif // ANTIDOTE_SERVING_CERTCACHE_H
