//===- serving/StoreKey.cpp - Normalized certificate-store keys ---------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "serving/StoreKey.h"

#include "support/BitHash.h"

#include <cstring>

using namespace antidote;

bool StoreKey::operator==(const StoreKey &O) const {
  if (!(Data == O.Data) || PoisoningBudget != O.PoisoningBudget ||
      Depth != O.Depth || Domain != O.Domain || Threat != O.Threat ||
      Cprob != O.Cprob || Gini != O.Gini || DisjunctCap != O.DisjunctCap ||
      doubleBits(TimeoutSeconds) != doubleBits(O.TimeoutSeconds) ||
      MaxDisjuncts != O.MaxDisjuncts || MaxStateBytes != O.MaxStateBytes ||
      Query.size() != O.Query.size())
    return false;
  return std::memcmp(Query.data(), O.Query.data(),
                     Query.size() * sizeof(float)) == 0;
}

size_t StoreKeyHash::operator()(const StoreKey &K) const {
  uint64_t H = 0;
  H = mixBits(H, K.Data.Hi);
  H = mixBits(H, K.Data.Lo);
  H = mixBits(H, K.PoisoningBudget);
  H = mixBits(H, K.Depth);
  H = mixBits(H, static_cast<uint64_t>(K.Domain) |
                     static_cast<uint64_t>(K.Cprob) << 8 |
                     static_cast<uint64_t>(K.Gini) << 16 |
                     static_cast<uint64_t>(K.Threat) << 24);
  H = mixBits(H, K.DisjunctCap);
  H = mixBits(H, doubleBits(K.TimeoutSeconds));
  H = mixBits(H, K.MaxDisjuncts);
  H = mixBits(H, K.MaxStateBytes);
  H = mixBits(H, K.Query.size());
  for (float V : K.Query)
    H = mixBits(H, floatBits(V));
  return static_cast<size_t>(H);
}

StoreKey antidote::makeStoreKey(const DatasetFingerprint &Data,
                                const float *X, unsigned NumFeatures,
                                uint32_t PoisoningBudget,
                                const VerifierConfig &Config) {
  StoreKey K;
  K.Data = Data;
  K.Query.assign(X, X + NumFeatures);
  K.PoisoningBudget = PoisoningBudget;
  K.Depth = Config.Depth;
  K.Domain = Config.Domain;
  K.Threat = Config.Threat;
  K.Cprob = Config.Cprob;
  K.Gini = Config.Gini;
  // Normalization: only the capped domain reads DisjunctCap, so zeroing
  // it elsewhere lets Box/Disjuncts queries hit across clients that set
  // different (ignored) caps.
  K.DisjunctCap = Config.Domain == AbstractDomainKind::DisjunctsCapped
                      ? Config.DisjunctCap
                      : 0;
  K.TimeoutSeconds = Config.Limits.TimeoutSeconds;
  K.MaxDisjuncts = Config.Limits.MaxDisjuncts;
  K.MaxStateBytes = Config.Limits.MaxStateBytes;
  return K;
}

StoreKey antidote::rangeBaseKey(const StoreKey &K) {
  StoreKey Base = K;
  Base.PoisoningBudget = 0;
  return Base;
}

bool antidote::rangeServes(VerdictKind Kind, uint32_t CertifiedRadius,
                          uint32_t QueryBudget) {
  switch (Kind) {
  case VerdictKind::Robust:
    return CertifiedRadius >= QueryBudget;
  case VerdictKind::Unknown:
    return CertifiedRadius <= QueryBudget;
  case VerdictKind::Timeout:
  case VerdictKind::ResourceLimit:
  case VerdictKind::Cancelled:
    return false; // Exact-match only (and Timeout/Cancelled never stored).
  }
  return false;
}
