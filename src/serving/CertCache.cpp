//===- serving/CertCache.cpp - Fingerprint-keyed certificate cache ------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "serving/CertCache.h"

#include <cassert>
#include <cstdio>

using namespace antidote;

uint64_t CertCache::entryBytes(const StoreKey &K) {
  // One entry owns: the map's key/slot pair (sizing the pair, not
  // Key + Slot separately, keeps alignment padding in the charge), the
  // query vector's heap allocation, the map node's bookkeeping (a next
  // link and the cached hash) plus its share of the bucket array, and
  // the LRU list node (two links + the key pointer payload). Approximate
  // by design — the point is a charge that can only overcount, never
  // undercount to just the certificate bytes, so a tiny `MaxCacheBytes`
  // budget bounds the *real* footprint too.
  using Pair = std::pair<const StoreKey, Slot>;
  const uint64_t MapNode = 2 * sizeof(void *) + sizeof(size_t);
  const uint64_t ListNode = 3 * sizeof(void *);
  return sizeof(Pair) + K.Query.capacity() * sizeof(float) + MapNode +
         ListNode;
}

bool CertCache::lookup(const DatasetFingerprint &Data, const float *X,
                       unsigned NumFeatures, uint32_t PoisoningBudget,
                       const VerifierConfig &Config, Certificate &Out) {
  StoreKey K = makeStoreKey(Data, X, NumFeatures, PoisoningBudget, Config);
  std::lock_guard<std::mutex> Guard(Mutex);
  auto It = Entries.find(K);
  if (It != Entries.end()) {
    // Touch: move to the MRU end.
    Lru.splice(Lru.begin(), Lru, It->second.LruIt);
    ++Stats.Hits;
    Out = It->second.Cert;
    return true;
  }
  // Exact miss: radius-range probe.
  if (const StoreKey *Found = findRangeLocked(K, PoisoningBudget)) {
    auto EIt = Entries.find(*Found);
    assert(EIt != Entries.end() && "range index out of lockstep");
    Lru.splice(Lru.begin(), Lru, EIt->second.LruIt);
    ++Stats.RangeHits;
    Out = EIt->second.Cert;
    // The stored proof keeps its radius; only the answered budget
    // is rewritten (see the header's range invariant).
    Out.PoisoningBudget = PoisoningBudget;
    return true;
  }
  ++Stats.Misses;
  return false;
}

const StoreKey *CertCache::findRangeLocked(const StoreKey &K,
                                           uint32_t PoisoningBudget) const {
  // Prefer Robust (the informative verdict): the tightest stored proof
  // at radius >= n; else fall back to the widest failed attempt at
  // radius <= n.
  auto RIt = RangeIndex.find(rangeBaseKey(K));
  if (RIt == RangeIndex.end())
    return nullptr;
  auto Rob = RIt->second.Robust.lower_bound(PoisoningBudget);
  if (Rob != RIt->second.Robust.end())
    return Rob->second;
  auto Unk = RIt->second.Unknown.upper_bound(PoisoningBudget);
  if (Unk != RIt->second.Unknown.begin())
    return std::prev(Unk)->second;
  return nullptr;
}

bool CertCache::rangeLookup(const DatasetFingerprint &Data, const float *X,
                            unsigned NumFeatures, uint32_t PoisoningBudget,
                            const VerifierConfig &Config, Certificate &Out) {
  StoreKey K = makeStoreKey(Data, X, NumFeatures, PoisoningBudget, Config);
  std::lock_guard<std::mutex> Guard(Mutex);
  const StoreKey *Found = findRangeLocked(K, PoisoningBudget);
  if (!Found)
    return false;
  auto EIt = Entries.find(*Found);
  assert(EIt != Entries.end() && "range index out of lockstep");
  Out = EIt->second.Cert;
  Out.PoisoningBudget = PoisoningBudget;
  return true;
}

void CertCache::store(const DatasetFingerprint &Data, const float *X,
                      unsigned NumFeatures, uint32_t PoisoningBudget,
                      const VerifierConfig &Config, const Certificate &Cert) {
  StoreKey K = makeStoreKey(Data, X, NumFeatures, PoisoningBudget, Config);
  uint64_t Bytes = entryBytes(K);
  std::lock_guard<std::mutex> Guard(Mutex);
  if (MaxBytes && Bytes > MaxBytes) {
    ++Stats.Declined;
    return;
  }
  auto [It, Inserted] = Entries.try_emplace(std::move(K));
  if (!Inserted) {
    // A concurrent worker verified the same query first; certificates
    // for equal keys are interchangeable, so keep the incumbent and
    // just refresh its recency.
    Lru.splice(Lru.begin(), Lru, It->second.LruIt);
    return;
  }
  Lru.push_front(&It->first);
  It->second.Cert = Cert;
  It->second.Bytes = Bytes;
  It->second.LruIt = Lru.begin();
  registerRangeLocked(It->first, Cert);
  Stats.LiveBytes += Bytes;
  ++Stats.LiveRecords;
  ++Stats.Stores;
  if (MaxBytes)
    while (Stats.LiveBytes > MaxBytes)
      evictOneLocked();
}

void CertCache::registerRangeLocked(const StoreKey &K,
                                    const Certificate &Cert) {
  // Only original proofs enter the range index (see RangeSlot): a
  // promotion of a range-served answer carries a CertifiedRadius
  // different from its key's budget and is exact-serving only.
  if (Cert.CertifiedRadius != K.PoisoningBudget)
    return;
  RangeSlot &Slot = RangeIndex[rangeBaseKey(K)];
  if (Cert.Kind == VerdictKind::Robust)
    Slot.Robust.emplace(Cert.CertifiedRadius, &K);
  else if (Cert.Kind == VerdictKind::Unknown)
    Slot.Unknown.emplace(Cert.CertifiedRadius, &K);
}

void CertCache::unregisterRangeLocked(const StoreKey &K,
                                      const Certificate &Cert) {
  if (Cert.CertifiedRadius != K.PoisoningBudget)
    return;
  auto RIt = RangeIndex.find(rangeBaseKey(K));
  if (RIt == RangeIndex.end())
    return;
  if (Cert.Kind == VerdictKind::Robust)
    RIt->second.Robust.erase(Cert.CertifiedRadius);
  else if (Cert.Kind == VerdictKind::Unknown)
    RIt->second.Unknown.erase(Cert.CertifiedRadius);
  if (RIt->second.Robust.empty() && RIt->second.Unknown.empty())
    RangeIndex.erase(RIt);
}

void CertCache::evictOneLocked() {
  const StoreKey *Victim = Lru.back();
  Lru.pop_back();
  auto It = Entries.find(*Victim);
  unregisterRangeLocked(It->first, It->second.Cert);
  Stats.LiveBytes -= It->second.Bytes;
  --Stats.LiveRecords;
  ++Stats.Evictions;
  Entries.erase(It);
}

StoreStats CertCache::stats() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return Stats;
}

void CertCache::clear() {
  std::lock_guard<std::mutex> Guard(Mutex);
  Lru.clear();
  Entries.clear();
  RangeIndex.clear();
  Stats.LiveBytes = 0;
  Stats.LiveRecords = 0;
}
