//===- serving/CertCache.cpp - Fingerprint-keyed certificate cache ------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "serving/CertCache.h"

#include "support/BitHash.h"

#include <cstdio>
#include <cstring>

using namespace antidote;

namespace {

// Queries and timeouts are compared and hashed by storage bits (the
// shared support/BitHash.h policy): the cache promises *identity*, and
// value-level float equality would conflate 0.0/-0.0 while choking on
// NaN payloads.

/// Folds one word into the key hash.
void mix(size_t &H, uint64_t W) {
  H = static_cast<size_t>(mixBits(H, W));
}

} // namespace

std::string antidote::formatCacheStats(const CertCacheStats &Stats,
                                       uint64_t MaxBytes) {
  char Budget[32] = "unbounded";
  if (MaxBytes)
    std::snprintf(Budget, sizeof(Budget), "%llu",
                  static_cast<unsigned long long>(MaxBytes));
  char Buf[224];
  std::snprintf(Buf, sizeof(Buf),
                "%llu hit%s, %llu misses, %llu evictions, %llu declined; "
                "%llu entries, %llu bytes live (budget %s)",
                static_cast<unsigned long long>(Stats.Hits),
                Stats.Hits == 1 ? "" : "s",
                static_cast<unsigned long long>(Stats.Misses),
                static_cast<unsigned long long>(Stats.Evictions),
                static_cast<unsigned long long>(Stats.Declined),
                static_cast<unsigned long long>(Stats.LiveEntries),
                static_cast<unsigned long long>(Stats.LiveBytes), Budget);
  return Buf;
}

bool CertCache::Key::operator==(const Key &O) const {
  if (!(Data == O.Data) || PoisoningBudget != O.PoisoningBudget ||
      Depth != O.Depth || Domain != O.Domain || Cprob != O.Cprob ||
      Gini != O.Gini || DisjunctCap != O.DisjunctCap ||
      doubleBits(TimeoutSeconds) != doubleBits(O.TimeoutSeconds) ||
      MaxDisjuncts != O.MaxDisjuncts || MaxStateBytes != O.MaxStateBytes ||
      Query.size() != O.Query.size())
    return false;
  return std::memcmp(Query.data(), O.Query.data(),
                     Query.size() * sizeof(float)) == 0;
}

size_t CertCache::KeyHash::operator()(const Key &K) const {
  size_t H = 0;
  mix(H, K.Data.Hi);
  mix(H, K.Data.Lo);
  mix(H, K.PoisoningBudget);
  mix(H, K.Depth);
  mix(H, static_cast<uint64_t>(K.Domain) | static_cast<uint64_t>(K.Cprob) << 8 |
             static_cast<uint64_t>(K.Gini) << 16);
  mix(H, K.DisjunctCap);
  mix(H, doubleBits(K.TimeoutSeconds));
  mix(H, K.MaxDisjuncts);
  mix(H, K.MaxStateBytes);
  mix(H, K.Query.size());
  for (float V : K.Query)
    mix(H, floatBits(V));
  return H;
}

CertCache::Key CertCache::makeKey(const DatasetFingerprint &Data,
                                  const float *X, unsigned NumFeatures,
                                  uint32_t PoisoningBudget,
                                  const VerifierConfig &Config) {
  Key K;
  K.Data = Data;
  K.Query.assign(X, X + NumFeatures);
  K.PoisoningBudget = PoisoningBudget;
  K.Depth = Config.Depth;
  K.Domain = Config.Domain;
  K.Cprob = Config.Cprob;
  K.Gini = Config.Gini;
  // Normalization: only the capped domain reads DisjunctCap, so zeroing
  // it elsewhere lets Box/Disjuncts queries hit across clients that set
  // different (ignored) caps.
  K.DisjunctCap = Config.Domain == AbstractDomainKind::DisjunctsCapped
                      ? Config.DisjunctCap
                      : 0;
  K.TimeoutSeconds = Config.Limits.TimeoutSeconds;
  K.MaxDisjuncts = Config.Limits.MaxDisjuncts;
  K.MaxStateBytes = Config.Limits.MaxStateBytes;
  return K;
}

uint64_t CertCache::entryBytes(const Key &K) {
  // Key + certificate + map node (bucket pointer, hash, key/slot pair)
  // + LRU list node (two links + pointer). Approximate by design; the
  // dominant variable term is the query vector.
  return sizeof(Key) + K.Query.capacity() * sizeof(float) + sizeof(Slot) +
         8 * sizeof(void *);
}

bool CertCache::lookup(const DatasetFingerprint &Data, const float *X,
                       unsigned NumFeatures, uint32_t PoisoningBudget,
                       const VerifierConfig &Config, Certificate &Out) {
  Key K = makeKey(Data, X, NumFeatures, PoisoningBudget, Config);
  std::lock_guard<std::mutex> Guard(Mutex);
  auto It = Entries.find(K);
  if (It == Entries.end()) {
    ++Stats.Misses;
    return false;
  }
  // Touch: move to the MRU end.
  Lru.splice(Lru.begin(), Lru, It->second.LruIt);
  ++Stats.Hits;
  Out = It->second.Cert;
  return true;
}

void CertCache::store(const DatasetFingerprint &Data, const float *X,
                      unsigned NumFeatures, uint32_t PoisoningBudget,
                      const VerifierConfig &Config, const Certificate &Cert) {
  Key K = makeKey(Data, X, NumFeatures, PoisoningBudget, Config);
  uint64_t Bytes = entryBytes(K);
  std::lock_guard<std::mutex> Guard(Mutex);
  if (MaxBytes && Bytes > MaxBytes) {
    ++Stats.Declined;
    return;
  }
  auto [It, Inserted] = Entries.try_emplace(std::move(K));
  if (!Inserted) {
    // A concurrent worker verified the same query first; certificates
    // for equal keys are interchangeable, so keep the incumbent and
    // just refresh its recency.
    Lru.splice(Lru.begin(), Lru, It->second.LruIt);
    return;
  }
  Lru.push_front(&It->first);
  It->second.Cert = Cert;
  It->second.Bytes = Bytes;
  It->second.LruIt = Lru.begin();
  Stats.LiveBytes += Bytes;
  ++Stats.LiveEntries;
  ++Stats.Insertions;
  if (MaxBytes)
    while (Stats.LiveBytes > MaxBytes)
      evictOneLocked();
}

void CertCache::evictOneLocked() {
  const Key *Victim = Lru.back();
  Lru.pop_back();
  auto It = Entries.find(*Victim);
  Stats.LiveBytes -= It->second.Bytes;
  --Stats.LiveEntries;
  ++Stats.Evictions;
  Entries.erase(It);
}

CertCacheStats CertCache::stats() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return Stats;
}

void CertCache::clear() {
  std::lock_guard<std::mutex> Guard(Mutex);
  Lru.clear();
  Entries.clear();
  Stats.LiveBytes = 0;
  Stats.LiveEntries = 0;
}
