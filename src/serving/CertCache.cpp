//===- serving/CertCache.cpp - Fingerprint-keyed certificate cache ------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "serving/CertCache.h"

#include <cstdio>

using namespace antidote;

std::string antidote::formatCacheStats(const CertCacheStats &Stats,
                                       uint64_t MaxBytes) {
  char Budget[32] = "unbounded";
  if (MaxBytes)
    std::snprintf(Budget, sizeof(Budget), "%llu",
                  static_cast<unsigned long long>(MaxBytes));
  char Buf[224];
  std::snprintf(Buf, sizeof(Buf),
                "%llu hit%s, %llu misses, %llu evictions, %llu declined; "
                "%llu entries, %llu bytes live (budget %s)",
                static_cast<unsigned long long>(Stats.Hits),
                Stats.Hits == 1 ? "" : "s",
                static_cast<unsigned long long>(Stats.Misses),
                static_cast<unsigned long long>(Stats.Evictions),
                static_cast<unsigned long long>(Stats.Declined),
                static_cast<unsigned long long>(Stats.LiveEntries),
                static_cast<unsigned long long>(Stats.LiveBytes), Budget);
  return Buf;
}

uint64_t CertCache::entryBytes(const StoreKey &K) {
  // One entry owns: the map's key/slot pair (sizing the pair, not
  // Key + Slot separately, keeps alignment padding in the charge), the
  // query vector's heap allocation, the map node's bookkeeping (a next
  // link and the cached hash) plus its share of the bucket array, and
  // the LRU list node (two links + the key pointer payload). Approximate
  // by design — the point is a charge that can only overcount, never
  // undercount to just the certificate bytes, so a tiny `MaxCacheBytes`
  // budget bounds the *real* footprint too.
  using Pair = std::pair<const StoreKey, Slot>;
  const uint64_t MapNode = 2 * sizeof(void *) + sizeof(size_t);
  const uint64_t ListNode = 3 * sizeof(void *);
  return sizeof(Pair) + K.Query.capacity() * sizeof(float) + MapNode +
         ListNode;
}

bool CertCache::lookup(const DatasetFingerprint &Data, const float *X,
                       unsigned NumFeatures, uint32_t PoisoningBudget,
                       const VerifierConfig &Config, Certificate &Out) {
  StoreKey K = makeStoreKey(Data, X, NumFeatures, PoisoningBudget, Config);
  std::lock_guard<std::mutex> Guard(Mutex);
  auto It = Entries.find(K);
  if (It == Entries.end()) {
    ++Stats.Misses;
    return false;
  }
  // Touch: move to the MRU end.
  Lru.splice(Lru.begin(), Lru, It->second.LruIt);
  ++Stats.Hits;
  Out = It->second.Cert;
  return true;
}

void CertCache::store(const DatasetFingerprint &Data, const float *X,
                      unsigned NumFeatures, uint32_t PoisoningBudget,
                      const VerifierConfig &Config, const Certificate &Cert) {
  StoreKey K = makeStoreKey(Data, X, NumFeatures, PoisoningBudget, Config);
  uint64_t Bytes = entryBytes(K);
  std::lock_guard<std::mutex> Guard(Mutex);
  if (MaxBytes && Bytes > MaxBytes) {
    ++Stats.Declined;
    return;
  }
  auto [It, Inserted] = Entries.try_emplace(std::move(K));
  if (!Inserted) {
    // A concurrent worker verified the same query first; certificates
    // for equal keys are interchangeable, so keep the incumbent and
    // just refresh its recency.
    Lru.splice(Lru.begin(), Lru, It->second.LruIt);
    return;
  }
  Lru.push_front(&It->first);
  It->second.Cert = Cert;
  It->second.Bytes = Bytes;
  It->second.LruIt = Lru.begin();
  Stats.LiveBytes += Bytes;
  ++Stats.LiveEntries;
  ++Stats.Insertions;
  if (MaxBytes)
    while (Stats.LiveBytes > MaxBytes)
      evictOneLocked();
}

void CertCache::evictOneLocked() {
  const StoreKey *Victim = Lru.back();
  Lru.pop_back();
  auto It = Entries.find(*Victim);
  Stats.LiveBytes -= It->second.Bytes;
  --Stats.LiveEntries;
  ++Stats.Evictions;
  Entries.erase(It);
}

CertCacheStats CertCache::stats() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return Stats;
}

void CertCache::clear() {
  std::lock_guard<std::mutex> Guard(Mutex);
  Lru.clear();
  Entries.clear();
  Stats.LiveBytes = 0;
  Stats.LiveEntries = 0;
}
