//===- serving/Replicator.h - Pull-based store replication -----*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The replica side of certificate-store replication: a background
/// puller that periodically sends `JournalPoll` frames to a source
/// `NetServer` (serving/NetProtocol.h) and applies the returned record
/// batches to the local store through
/// `ReplicationEndpoint::applyReplicatedRecord` — the normal
/// checksum-validated, duplicate-declining append path, so a corrupt or
/// replayed delta degrades to a skip, never a wrong certificate.
///
/// Verdicts are immutable once issued (the store key pins the dataset
/// fingerprint and every result-relevant config field), which makes
/// replication pure data-plane motion: there is no conflict to resolve,
/// only records to copy. The replica keeps an `(epoch, serial)` cursor;
/// the source answers with the records after it, or with `EpochReset`
/// when a compaction/retention rewrite retired the replica's epoch — the
/// cursor rewinds to serial 0 and the full resync's replays are absorbed
/// by the duplicate decline. Catch-up is greedy: while the source
/// reports more records behind the head, the puller polls again
/// immediately instead of sleeping out the interval.
///
/// Failure policy: every network or framing error closes the connection,
/// counts one `Errors`, and retries after the poll interval — the
/// replica serves whatever it has meanwhile. `stop()` (and destruction)
/// interrupts the interval sleep and joins promptly.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_SERVING_REPLICATOR_H
#define ANTIDOTE_SERVING_REPLICATOR_H

#include "serving/CertificateStore.h"
#include "support/Net.h"

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace antidote {

struct ReplicatorConfig {
  /// Source host (name or address; resolved via getaddrinfo) and port —
  /// the `--replicate-from HOST:PORT` pair.
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;

  /// Seconds between polls when the replica is caught up (while behind
  /// it polls continuously). Also the reconnect backoff after an error.
  double IntervalSeconds = 1.0;

  /// Upper bound on records per delta; the source may cap it tighter.
  uint32_t MaxRecords = 256;

  /// Optional dataset-fingerprint scope (both 0 = replicate
  /// everything): only records whose key carries this fingerprint are
  /// shipped — a replica serving one model need not mirror the fleet.
  uint64_t ScopeHi = 0;
  uint64_t ScopeLo = 0;
};

/// Monotonic counters; the CLI prints them as the `repl:` line the CI
/// smoke greps.
struct ReplicatorStats {
  uint64_t Polls = 0;       ///< Poll round-trips completed.
  uint64_t Applied = 0;     ///< Records appended locally.
  uint64_t Duplicates = 0;  ///< Records declined as already present.
  uint64_t Corrupt = 0;     ///< Records rejected by validation.
  uint64_t EpochResets = 0; ///< Full resyncs the source demanded.
  uint64_t Errors = 0;      ///< Connection/framing/apply failures.
};

/// One replication puller for one local store. Thread-safe: `stats()`
/// from any thread; `start`/`stop` from the owning thread.
class Replicator {
public:
  /// \p Local must outlive this object and expose a replication
  /// endpoint (`CertificateStore::replication` non-null) — `start`
  /// fails otherwise, because a store that cannot apply raw records
  /// (a RAM cache, say) has no business pulling them.
  Replicator(CertificateStore &Local, const ReplicatorConfig &Config);
  ~Replicator();

  Replicator(const Replicator &) = delete;
  Replicator &operator=(const Replicator &) = delete;

  /// Launches the polling thread. False (with \p Error set) when the
  /// local store has no replication endpoint or the config is unusable;
  /// an unreachable source is *not* a start failure — the loop retries.
  bool start(std::string &Error);

  /// Interrupts the interval sleep, closes the connection, joins.
  /// Idempotent; the destructor calls it.
  void stop();

  /// One synchronous poll round-trip (test and CLI hook; do not mix
  /// with a running `start` thread). \p More is set when the source
  /// reported records still behind the head, i.e. the caller should
  /// poll again immediately to finish catching up. False on any
  /// connection/framing error (counted, connection closed).
  bool pollOnce(bool &More, std::string &Error);

  ReplicatorStats stats() const;

  /// The replica's current cursor (tests pin the epoch handshake).
  uint64_t cursorEpoch() const;
  uint64_t cursorSerial() const;

private:
  void loop();

  /// Connects (or reuses) the source socket. False with \p Error set.
  bool ensureConnected(std::string &Error);

  CertificateStore &Local;
  const ReplicatorConfig Config;
  ReplicationEndpoint *Endpoint = nullptr;

  mutable std::mutex Mutex; ///< Guards everything below.
  FdHandle Sock;
  uint64_t Epoch = 0;  ///< Cursor: last seen source epoch.
  uint64_t Serial = 0; ///< Cursor: last applied serial within it.
  ReplicatorStats Stats;
  bool Stopping = false;
  std::condition_variable StopChanged;
  std::thread Puller;
};

} // namespace antidote

#endif // ANTIDOTE_SERVING_REPLICATOR_H
