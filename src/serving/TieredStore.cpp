//===- serving/TieredStore.cpp - RAM-over-disk certificate store --------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "serving/TieredStore.h"

using namespace antidote;

bool TieredStore::lookup(const DatasetFingerprint &Data, const float *X,
                         unsigned NumFeatures, uint32_t PoisoningBudget,
                         const VerifierConfig &Config, Certificate &Out) {
  if (Ram && Ram->lookup(Data, X, NumFeatures, PoisoningBudget, Config,
                         Out)) {
    RamHits.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (Disk && Disk->lookup(Data, X, NumFeatures, PoisoningBudget, Config,
                           Out)) {
    DiskHits.fetch_add(1, std::memory_order_relaxed);
    // Promote: the next repeat should cost a hash probe, not a disk
    // read. The RAM tier may decline (byte budget) — then every repeat
    // keeps hitting disk, which is still correct.
    if (Ram)
      Ram->store(Data, X, NumFeatures, PoisoningBudget, Config, Out);
    return true;
  }
  Misses.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void TieredStore::store(const DatasetFingerprint &Data, const float *X,
                        unsigned NumFeatures, uint32_t PoisoningBudget,
                        const VerifierConfig &Config,
                        const Certificate &Cert) {
  // Write-through: RAM for the next repeat in this process, disk for
  // every process after it. `Verifier` only offers deterministic
  // verdicts here, and the disk tier re-checks defensively.
  if (Ram)
    Ram->store(Data, X, NumFeatures, PoisoningBudget, Config, Cert);
  if (Disk)
    Disk->store(Data, X, NumFeatures, PoisoningBudget, Config, Cert);
}

bool TieredStore::probe(const DatasetFingerprint &Data, const float *X,
                        unsigned NumFeatures, uint32_t PoisoningBudget,
                        const VerifierConfig &Config, Certificate &Out) {
  // No promotion and no tier-crossing counters: a probe answers the
  // admission-control question without disturbing residency.
  if (Ram &&
      Ram->probe(Data, X, NumFeatures, PoisoningBudget, Config, Out))
    return true;
  return Disk &&
         Disk->probe(Data, X, NumFeatures, PoisoningBudget, Config, Out);
}

bool TieredStore::rangeLookup(const DatasetFingerprint &Data, const float *X,
                              unsigned NumFeatures, uint32_t PoisoningBudget,
                              const VerifierConfig &Config,
                              Certificate &Out) {
  if (Ram && Ram->rangeLookup(Data, X, NumFeatures, PoisoningBudget, Config,
                              Out))
    return true;
  return Disk && Disk->rangeLookup(Data, X, NumFeatures, PoisoningBudget,
                                   Config, Out);
}

StoreStats TieredStore::stats() const {
  StoreStats Stats;
  Stats.RamHits = RamHits.load(std::memory_order_relaxed);
  Stats.DiskHits = DiskHits.load(std::memory_order_relaxed);
  Stats.Misses = Misses.load(std::memory_order_relaxed);
  Stats.Hits = Stats.RamHits + Stats.DiskHits;
  return Stats;
}
