//===- serving/CertificateStore.cpp - Unified store interface -----------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "serving/CertificateStore.h"

#include <cstdio>

using namespace antidote;

std::string StoreStats::summary() const {
  // Stable `key=value` text — the CI smokes grep exact prefixes of this
  // line, so field order and spellings are load-bearing. The optional
  // clauses key off what the tier maintains, not off zero-vs-nonzero
  // counts: a disk store always carries an epoch (>= 1 once opened), a
  // plain cache never does, so the shape of each tier's line is
  // deterministic.
  char Buf[512];
  int Len = std::snprintf(
      Buf, sizeof(Buf),
      "hits=%llu range_hits=%llu misses=%llu stored=%llu duplicates=%llu "
      "declined=%llu evicted=%llu records=%llu bytes=%llu",
      static_cast<unsigned long long>(Hits),
      static_cast<unsigned long long>(RangeHits),
      static_cast<unsigned long long>(Misses),
      static_cast<unsigned long long>(Stores),
      static_cast<unsigned long long>(DuplicatesDeclined),
      static_cast<unsigned long long>(Declined),
      static_cast<unsigned long long>(Evictions),
      static_cast<unsigned long long>(LiveRecords),
      static_cast<unsigned long long>(LiveBytes));
  std::string Out(Buf, Len < 0 ? 0 : static_cast<size_t>(Len));
  if (RamHits || DiskHits) {
    Len = std::snprintf(Buf, sizeof(Buf), " ram_hits=%llu disk_hits=%llu",
                        static_cast<unsigned long long>(RamHits),
                        static_cast<unsigned long long>(DiskHits));
    Out.append(Buf, Len < 0 ? 0 : static_cast<size_t>(Len));
  }
  if (Epoch) {
    Len = std::snprintf(
        Buf, sizeof(Buf),
        " segments=%llu epoch=%llu journal=%llu corrupt=%llu stale=%llu "
        "compactions=%llu retention_evicted=%llu refreshes=%llu",
        static_cast<unsigned long long>(Segments),
        static_cast<unsigned long long>(Epoch),
        static_cast<unsigned long long>(JournalRecords),
        static_cast<unsigned long long>(CorruptSkipped),
        static_cast<unsigned long long>(StaleSegments),
        static_cast<unsigned long long>(Compactions),
        static_cast<unsigned long long>(RetentionEvictedSegments),
        static_cast<unsigned long long>(IndexRefreshes));
    Out.append(Buf, Len < 0 ? 0 : static_cast<size_t>(Len));
  }
  return Out;
}
