//===- serving/NetProtocol.h - Certificate-serving wire format -*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The length-prefixed binary wire protocol between `NetServer` and its
/// clients, and the incremental frame reassembler both sides use. The
/// format is deliberately dumb: fixed little-endian scalars, no varints,
/// no compression — every byte position is testable as a golden and a
/// torn read at *any* offset leaves the reader in a recoverable
/// "need more bytes" state, never a misparse.
///
/// Frame layout (both directions):
///
///   u32 magic     'Q''T''N''A' (requests) / 'R''T''N''A' (responses),
///                 i.e. the bytes "ANTQ"/"ANTR" on the wire
///   u32 length    payload bytes that follow (bounded by MaxFrameBytes)
///   ...payload
///
/// Request payload:
///
///   u64 tag             client-chosen, echoed verbatim in the response
///                       (responses may complete out of order under
///                       mixed deadlines)
///   u32 poisoningBudget n of the ∆n(T) query
///   u32 deadlineMillis  client deadline from *server receipt*, queue
///                       wait included; 0 = none. Propagated into
///                       `ResourceLimits::TimeoutSeconds`, and a request
///                       that expires before dispatch answers
///                       `timeout` without verifying.
///   u32 numFeatures     must equal the training set's arity
///   f32 × numFeatures   query point (bit patterns, BitHash policy)
///
/// Response payload:
///
///   u64 tag
///   u8  status          0 Ok, 1 Shed, 2 Error
///   Ok:    u8 path (0 = verification path — fresh, cache, range or
///          slack served; 1 = admission-control store probe answered
///          while shedding), then the certificate encoding below
///   Shed:  u8 reason (0 = queue overload, 1 = per-client pacing).
///          Never carries a verdict — a shed is an explicit refusal,
///          not a fabricated answer.
///   Error: u8 reason (0 = feature-count mismatch, 1 = budget over
///          the training-set size)
///
/// Certificate encoding (every field of `Certificate`, so a served
/// answer is reconstructible bit-for-bit and the soundness property
/// tests can compare wire answers against fresh verification):
///
///   u8 kind, u32 poisoningBudget, u32 certifiedRadius, u32 depth,
///   u8 domain, u8 threat, u32 concretePrediction, u8 hasDominating,
///   u32 dominatingClass, u64 numTerminals, u64 peakDisjuncts,
///   u64 peakStateBytes, u32 bestSplitCalls, f64 seconds
///
/// Framing errors (wrong magic, length above the server's MaxFrameBytes,
/// truncated payload at EOF) are not recoverable within a connection —
/// the stream position is untrustworthy — so the policy at both ends is:
/// close the connection, keep the process. tests/NetServerTests.cpp pins
/// that a garbage header costs exactly one connection.
///
/// ## Replication frames
///
/// The same server socket multiplexes the pull-based store replication
/// protocol (serving/Replicator.h): a replica sends `JournalPoll` frames
/// (magic "ANTJ") carrying its (epoch, serial) cursor plus an optional
/// dataset-fingerprint scope, and the source answers with a
/// `JournalDelta` frame (magic "ANTD") — either the next batch of whole
/// serialized store records (bytes exactly as they sit in the source's
/// segments), or an `EpochReset` status telling the replica its epoch
/// is gone and it must restart from serial 0. The server tells query
/// frames from poll frames by magic alone (the dual-magic `FrameReader`
/// below), so one listen port serves both clients and replicas.
///
///   JournalPoll payload:   u64 epoch, u64 serial, u64 scopeHi,
///                          u64 scopeLo (both 0 = unscoped), u32
///                          maxRecords
///   JournalDelta payload:  u8 status (0 delta, 1 epoch-reset,
///                          2 unavailable), u64 epoch, u64 nextSerial,
///                          u64 headSerial, u32 numRecords, then per
///                          record u32 byteCount + the raw record
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_SERVING_NETPROTOCOL_H
#define ANTIDOTE_SERVING_NETPROTOCOL_H

#include "antidote/Certificate.h"
#include "serving/CertificateStore.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace antidote {

/// Wire magics, little-endian ("ANTQ"/"ANTR" as bytes on the wire).
constexpr uint32_t NetRequestMagic = 0x51544E41;  // 'A','N','T','Q'
constexpr uint32_t NetResponseMagic = 0x52544E41; // 'A','N','T','R'
/// Replication magics ("ANTJ" journal poll, "ANTD" journal delta).
constexpr uint32_t NetJournalPollMagic = 0x4A544E41;  // 'A','N','T','J'
constexpr uint32_t NetJournalDeltaMagic = 0x44544E41; // 'A','N','T','D'

/// Frames larger than this are a protocol violation (a frame holds one
/// query or one certificate; megabytes mean a desynced or hostile
/// peer). Servers may configure tighter.
constexpr uint32_t NetMaxFrameBytes = 1u << 20;

/// Delta frames carry a whole record batch (the source caps batches at
/// a fraction of this), so their reader accepts more than the one-query
/// bound above.
constexpr uint32_t NetMaxDeltaFrameBytes = 4u << 20;

/// Response status byte.
enum class NetStatus : uint8_t {
  Ok = 0,    ///< Payload carries a certificate.
  Shed = 1,  ///< Admission control refused; explicit, verdict-free.
  Error = 2, ///< Malformed-but-framed request (e.g. wrong arity).
};

/// Second byte of a Shed response.
enum class NetShedReason : uint8_t {
  Overload = 0, ///< Verification queue past the shed depth.
  Paced = 1,    ///< This client's token bucket is empty.
};

/// Second byte of an Error response.
enum class NetErrorReason : uint8_t {
  BadArity = 0,  ///< numFeatures does not match the training set.
  BadBudget = 1, ///< poisoningBudget exceeds the training-set size.
};

/// How an Ok response was produced (for tests and ops counters; both
/// paths are equally sound).
enum class NetServePath : uint8_t {
  Verified = 0,  ///< Through Verifier::verify (fresh / cache / range /
                 ///< slack — the normal admission path).
  ShedProbe = 1, ///< Store-only probe answered while shedding.
};

/// One parsed request frame.
struct NetRequest {
  uint64_t Tag = 0;
  uint32_t PoisoningBudget = 0;
  uint32_t DeadlineMillis = 0; ///< 0 = none.
  std::vector<float> X;
};

/// One parsed response frame.
struct NetResponse {
  uint64_t Tag = 0;
  NetStatus Status = NetStatus::Ok;
  NetServePath Path = NetServePath::Verified; ///< Ok only.
  NetShedReason ShedReason = NetShedReason::Overload; ///< Shed only.
  NetErrorReason ErrorReason = NetErrorReason::BadArity; ///< Error only.
  Certificate Cert; ///< Ok only.
};

/// Encodes a complete request/response frame (header included).
std::string encodeRequestFrame(const NetRequest &Request);
std::string encodeResponseFrame(const NetResponse &Response);

/// Decodes one frame *payload* (header already stripped and validated by
/// the FrameReader). nullopt on truncated/over-long payloads or invalid
/// enum bytes — the caller treats that like a framing error.
std::optional<NetRequest> decodeRequestPayload(const uint8_t *Data,
                                               size_t Size);
std::optional<NetResponse> decodeResponsePayload(const uint8_t *Data,
                                                 size_t Size);

/// Replication frames: the wire twins of `ReplicationEndpoint`'s
/// `PollRequest` and `Delta` (serving/CertificateStore.h).
std::string encodeJournalPollFrame(const ReplicationEndpoint::PollRequest &Poll);
std::string encodeJournalDeltaFrame(const ReplicationEndpoint::Delta &Delta);
std::optional<ReplicationEndpoint::PollRequest>
decodeJournalPollPayload(const uint8_t *Data, size_t Size);
std::optional<ReplicationEndpoint::Delta>
decodeJournalDeltaPayload(const uint8_t *Data, size_t Size);

/// Incremental frame reassembler for one connection/direction. Feed it
/// whatever recv returned — single bytes, half frames, three frames at
/// once — and take complete payloads out. Any framing violation parks it
/// in the Corrupt state permanently: the byte stream can no longer be
/// trusted, so the connection must be closed.
class FrameReader {
public:
  /// \p Magic is the expected direction magic; \p MaxFrameBytes bounds
  /// accepted payload lengths (0 = the protocol default).
  explicit FrameReader(uint32_t Magic, uint32_t MaxFrameBytes = 0)
      : Magic1(Magic), Magic2(0),
        MaxBytes(MaxFrameBytes ? MaxFrameBytes : NetMaxFrameBytes) {}

  /// Dual-magic reader for multiplexed streams: either magic is
  /// accepted, and `nextFrame` reports which one each frame carried —
  /// how the server tells a query ("ANTQ") from a journal poll
  /// ("ANTJ") on the same connection.
  FrameReader(uint32_t MagicA, uint32_t MagicB, uint32_t MaxFrameBytes)
      : Magic1(MagicA), Magic2(MagicB),
        MaxBytes(MaxFrameBytes ? MaxFrameBytes : NetMaxFrameBytes) {}

  /// Appends \p Size raw bytes. Returns false when the stream is (or
  /// just became) corrupt.
  bool feed(const uint8_t *Data, size_t Size);

  /// One reassembled frame: which magic it arrived under, and its
  /// payload.
  struct Frame {
    uint32_t Magic = 0;
    std::vector<uint8_t> Payload;
  };

  /// Pops the next complete frame payload, oldest first.
  std::optional<std::vector<uint8_t>> next();

  /// Like `next`, but keeps the frame's magic — required with the
  /// dual-magic constructor, where the payload type depends on it.
  std::optional<Frame> nextFrame();

  bool corrupt() const { return Corrupt; }

  /// True while a frame header or payload is partially buffered — the
  /// peer owes bytes. The slow-loris sweep reads this.
  bool midFrame() const { return !Corrupt && !Buffer.empty(); }

private:
  uint32_t Magic1;
  uint32_t Magic2; ///< 0 = single-magic mode.
  uint32_t MaxBytes;
  bool Corrupt = false;
  std::vector<uint8_t> Buffer; ///< Unconsumed stream bytes.
  std::vector<Frame> Ready;
};

} // namespace antidote

#endif // ANTIDOTE_SERVING_NETPROTOCOL_H
