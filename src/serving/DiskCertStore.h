//===- serving/DiskCertStore.h - Disk-backed certificate store -*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistence tier of the certificate store: a `CertificateStore`
/// that appends certificates to segment files in one directory and
/// rebuilds a fingerprint-keyed in-memory index on open, so certificates
/// outlive the process that verified them. The 128-bit dataset content
/// fingerprint in every key (see serving/StoreKey.h) makes staleness
/// structurally impossible — a rebuilt or edited training set changes
/// the fingerprint, and the old records simply never match again.
///
/// ## On-disk format (FormatVersion 3)
///
/// A store directory holds a `LOCK` file plus append-only segments
/// `seg-NNNNNN.antcert`. Each segment starts with an 8-byte header
/// (magic "ACST", u32 format version); records follow back to back:
///
///     u32 record magic "CERT"
///     u32 payload bytes
///     u64 payload checksum (FNV-1a 64)
///     payload: serialized StoreKey, then the Certificate, both as
///              fixed-width little-endian fields with floats/doubles
///              stored as their bit patterns (support/BitHash.h policy)
///
/// FormatVersion 2 appended the certificate's `CertifiedRadius` (u32)
/// to the payload — the field the radius-range index serves from.
/// FormatVersion 3 added the threat model byte to both the key and the
/// certificate sections (a removal proof must never answer a flip
/// query; pre-threat records carry no model tag, so they cannot be
/// attributed safely). Per the invalidation story below, version-1 and
/// version-2 segments are skipped wholesale on open and reclaimed by
/// the next compaction (their certificates are simply re-verified;
/// always sound).
///
/// Every multi-byte field is explicitly little-endian; a record is
/// written with a single `write(2)` call, so a crash can only leave a
/// *torn tail*, never an interleaved one.
///
/// ## Crash consistency and corruption tolerance
///
/// `open` validates every record: a bad segment header (or unknown
/// format version) skips the whole segment, a bad record header stops
/// the scan of that segment (the record boundary is lost), and a
/// checksum mismatch skips just that record. A torn or corrupt record
/// is therefore *never served* — at worst a previously stored
/// certificate is forgotten and re-verified, which is always sound.
/// When the tail of the last segment is torn, open truncates it back to
/// the last whole record (under the exclusive lock) so later appends
/// are not stranded behind garbage. tests/DiskCertStoreTests.cpp
/// truncates a store at every byte offset and asserts reopen never
/// returns a wrong certificate.
///
/// ## Locking protocol (single-writer / multi-reader)
///
/// Cross-process coordination uses an advisory `flock(2)` on the `LOCK`
/// file: appends, open-time tail repair, and compaction hold it
/// exclusively; lookups take no lock at all (records are immutable once
/// written, and the checksum + full-key compare reject anything torn).
/// Several `CertServer` processes can thus share one store directory:
/// one appends at a time, everyone reads. A process's index covers the
/// records present when it opened plus its own appends; records another
/// process appends later are picked up on its next open (a miss
/// meanwhile just re-verifies).
///
/// ## Invalidation story
///
///  - dataset changed → fingerprint changed → key never matches: no
///    staleness by construction, nothing to invalidate.
///  - format changed → bump `FormatVersion` → old segments fail the
///    header check, are skipped wholesale on open, and are reclaimed by
///    the next compaction.
///
/// Only deterministic verdicts (Robust / Unknown / ResourceLimit) are
/// ever persisted — the same discipline as the RAM tier; `store`
/// declines anything else defensively even though `Verifier` never
/// offers it.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_SERVING_DISKCERTSTORE_H
#define ANTIDOTE_SERVING_DISKCERTSTORE_H

#include "serving/StoreKey.h"

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace antidote {

struct DiskCertStoreOptions {
  /// Appends rotate to a fresh segment once the current one would grow
  /// past this (compaction granularity; the format has no hard limit).
  /// 0 = never rotate.
  uint64_t MaxSegmentBytes = 4ull << 20;

  /// `open` compacts the directory right after the index rebuild when
  /// dead bytes — stale-version segments, torn/corrupt records,
  /// duplicates, anything scanned but not indexed — exceed this
  /// fraction of the total segment bytes on disk. A format bump thus
  /// reclaims its invalidated segments on the first open instead of
  /// waiting for an explicit `compact()`. <= 0 disables; the trigger
  /// failing (I/O error) is not an open failure — the store serves
  /// what it indexed and the dead bytes wait for the next chance.
  double AutoCompactDeadFraction = 0.5;
};

/// Monotonic counters plus the live footprint; a consistent snapshot is
/// taken under the store's mutex.
struct DiskCertStoreStats {
  uint64_t Hits = 0;   ///< Exact-key hits.
  uint64_t Misses = 0; ///< Neither an exact nor a range record served.
  uint64_t RangeHits = 0; ///< Served by the radius-range rule
                          ///< (serving/StoreKey.h `rangeServes`).
  uint64_t Appends = 0;            ///< Records this handle wrote.
  uint64_t DuplicatesDeclined = 0; ///< Stores skipped: key already on disk.
  uint64_t Declined = 0;           ///< Stores refused (non-deterministic verdict).
  uint64_t CorruptSkipped = 0;     ///< Torn/corrupt records dropped on open or read.
  uint64_t StaleSegments = 0;      ///< Segments skipped: wrong magic/version.
  uint64_t DuplicateRecords = 0;   ///< Redundant records seen on open (compaction reclaims them).
  uint64_t LiveRecords = 0;
  uint64_t LiveBytes = 0; ///< Bytes of indexed records (headers included).
  uint64_t Segments = 0;  ///< Readable current-version segments.
  uint64_t Compactions = 0;
  uint64_t CompactionRecordsDropped = 0;
};

/// One-line operator-readable rendering, e.g. "2 hits, 0 misses;
/// 2 records in 1 segment, 472 bytes; 0 appended, 0 duplicates,
/// 0 corrupt skipped". Printed by the CLIs behind a "disk: " prefix;
/// the CI persistence smoke greps it.
std::string formatDiskStoreStats(const DiskCertStoreStats &Stats);

/// The disk tier of the production certificate store. Thread-safe like
/// every `CertificateStore` (one internal mutex); cross-process safe per
/// the locking protocol above. Compose it behind the RAM tier with
/// serving/TieredStore.h rather than using it as `VerifierConfig::Cache`
/// directly — it works alone, but every hit then pays a disk read.
class DiskCertStore final : public CertificateStore {
public:
  /// Bump on any record/segment layout change: old segments are then
  /// skipped wholesale on open (never half-parsed) and reclaimed by the
  /// next compaction. 2 = CertifiedRadius joined the payload; 3 = the
  /// threat model byte joined both the key and certificate sections.
  static constexpr uint32_t FormatVersion = 3;

  /// `open` either yields a store or a human-readable reason it could
  /// not (unwritable directory, lock failure, ...). Skipped corrupt
  /// records are *not* errors — they are counted in `stats()`.
  struct OpenResult {
    std::unique_ptr<DiskCertStore> Store;
    std::string Error;
    bool ok() const { return Store != nullptr; }
  };

  /// Opens (creating if needed) the store directory \p Dir and rebuilds
  /// the index from its segments.
  static OpenResult open(const std::string &Dir,
                         const DiskCertStoreOptions &Options = {});

  ~DiskCertStore() override;

  DiskCertStore(const DiskCertStore &) = delete;
  DiskCertStore &operator=(const DiskCertStore &) = delete;

  bool lookup(const DatasetFingerprint &Data, const float *X,
              unsigned NumFeatures, uint32_t PoisoningBudget,
              const VerifierConfig &Config, Certificate &Out) override;

  void store(const DatasetFingerprint &Data, const float *X,
             unsigned NumFeatures, uint32_t PoisoningBudget,
             const VerifierConfig &Config, const Certificate &Cert) override;

  DiskCertStoreStats stats() const;

  const std::string &directory() const { return Dir; }

  /// Directory-wide rewrite under the exclusive lock: re-scans every
  /// segment (not just this handle's index — sibling processes may have
  /// appended records this handle never saw) and copies every intact,
  /// deduplicated record into one fresh segment, then deletes the old
  /// files. What gets reclaimed is exactly duplicate records (racing
  /// writers append the same key independently), torn/corrupt records,
  /// and stale-version segments. Lookups keep answering throughout from
  /// this process; other processes holding an old index degrade to
  /// misses until their next open. Returns false (and fills \p Error)
  /// on I/O failure, leaving the old segments in place.
  bool compact(std::string *Error = nullptr);

private:
  struct RecordRef {
    uint32_t Segment = 0;
    uint64_t PayloadOffset = 0;
    uint32_t PayloadBytes = 0;
    /// Kept in the index so every `lookup` re-verifies the payload it
    /// just read — post-open bit rot degrades to a miss, never to a
    /// wrong certificate.
    uint64_t Checksum = 0;
    /// Mirrored from the record so the range index can be maintained
    /// (and a dead entry unregistered) without re-reading the payload.
    VerdictKind Kind = VerdictKind::Unknown;
    uint32_t CertifiedRadius = 0;
  };

  /// Radius-ordered views of the records sharing one budget-agnostic
  /// base key — the same structure (and registration rule: original
  /// proofs only, radius == key budget) as the RAM tier's; see
  /// serving/CertCache.h `RangeSlot`.
  struct RangeSlot {
    std::map<uint32_t, const StoreKey *> Robust;
    std::map<uint32_t, const StoreKey *> Unknown;
  };

  DiskCertStore(std::string Dir, const DiskCertStoreOptions &Options)
      : Dir(std::move(Dir)), Options(Options) {}

  /// Scans all segments, builds the index, repairs a torn tail on the
  /// append segment. \p TotalSegmentBytes accumulates every byte read
  /// from a segment file, indexed or not — the denominator of the
  /// auto-compaction dead fraction. Returns false with \p Error on hard
  /// I/O failure.
  bool loadLocked(std::string &Error, uint64_t &TotalSegmentBytes);

  std::string segmentPath(uint32_t Segment) const;

  /// Read fd for \p Segment, opened on demand and cached. -1 on failure.
  int readFdLocked(uint32_t Segment);

  /// Appends one serialized record under the cross-process exclusive
  /// lock; fills \p Ref with where it landed. Caller holds the mutex.
  bool appendLocked(const std::vector<uint8_t> &Record, RecordRef &Ref);

  /// How a record read failed, if it did. The distinction matters for
  /// index hygiene: a transient failure must leave the entry in place
  /// for a later retry, a permanent one must drop it (or `store` would
  /// forever decline the re-verified certificate as a "duplicate").
  enum class ReadStatus : uint8_t {
    Ok,
    Transient, ///< fd exhaustion etc.; the record may still be fine.
    Gone,      ///< Missing file / short read: permanently unreadable.
  };

  /// Loads one record's payload (checksum verified by the caller).
  /// Caller holds the mutex.
  ReadStatus readPayloadLocked(const RecordRef &Ref,
                               std::vector<uint8_t> &Out);

  void closeFdsLocked();

  /// Range-index maintenance for one index entry (\p K must point into
  /// `Index`); callers hold the mutex.
  void registerRangeLocked(const StoreKey &K, const RecordRef &Ref);
  void unregisterRangeLocked(const StoreKey &K, const RecordRef &Ref);

  /// Drops a permanently unreadable index entry (stats + range index);
  /// caller holds the mutex. \p It must be valid.
  void dropDeadEntryLocked(
      std::unordered_map<StoreKey, RecordRef, StoreKeyHash>::iterator It);

  const std::string Dir;
  const DiskCertStoreOptions Options;

  mutable std::mutex Mutex;
  int LockFd = -1;   ///< `LOCK` file; flock target.
  int AppendFd = -1; ///< Current append segment, O_APPEND.
  uint32_t AppendSegment = 0;
  std::unordered_map<StoreKey, RecordRef, StoreKeyHash> Index;
  /// Base key (budget zeroed) -> radius-sorted record views; kept in
  /// lockstep with `Index` by load/store/compact and dead-entry drops.
  std::unordered_map<StoreKey, RangeSlot, StoreKeyHash> RangeIndex;
  std::unordered_map<uint32_t, int> ReadFds;
  std::vector<uint32_t> KnownSegments; ///< Readable, ascending.
  DiskCertStoreStats Stats;
};

} // namespace antidote

#endif // ANTIDOTE_SERVING_DISKCERTSTORE_H
