//===- serving/DiskCertStore.h - Disk-backed certificate store -*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistence tier of the certificate store: a `CertificateStore`
/// that appends certificates to segment files in one directory and
/// rebuilds a fingerprint-keyed in-memory index on open, so certificates
/// outlive the process that verified them. The 128-bit dataset content
/// fingerprint in every key (see serving/StoreKey.h) makes staleness
/// structurally impossible — a rebuilt or edited training set changes
/// the fingerprint, and the old records simply never match again.
///
/// ## On-disk format (FormatVersion 3)
///
/// A store directory holds a `LOCK` file plus append-only segments
/// `seg-NNNNNN.antcert`. Each segment starts with an 8-byte header
/// (magic "ACST", u32 format version); records follow back to back:
///
///     u32 record magic "CERT"
///     u32 payload bytes
///     u64 payload checksum (FNV-1a 64)
///     payload: serialized StoreKey, then the Certificate, both as
///              fixed-width little-endian fields with floats/doubles
///              stored as their bit patterns (support/BitHash.h policy)
///
/// FormatVersion 2 appended the certificate's `CertifiedRadius` (u32)
/// to the payload — the field the radius-range index serves from.
/// FormatVersion 3 added the threat model byte to both the key and the
/// certificate sections (a removal proof must never answer a flip
/// query; pre-threat records carry no model tag, so they cannot be
/// attributed safely). Per the invalidation story below, version-1 and
/// version-2 segments are skipped wholesale on open and reclaimed by
/// the next compaction (their certificates are simply re-verified;
/// always sound).
///
/// Every multi-byte field is explicitly little-endian; a record is
/// written with a single `write(2)` call, so a crash can only leave a
/// *torn tail*, never an interleaved one.
///
/// Alongside the segments lives `journal.antj` (serving/StoreJournal.h):
/// a replication journal assigning every appended record a serial within
/// an epoch. The journal is derived data — segments stay the system of
/// record — reconciled against the index on every open and rebuilt
/// under a fresh epoch when missing or unreadable.
///
/// ## Crash consistency and corruption tolerance
///
/// `open` validates every record: a bad segment header (or unknown
/// format version) skips the whole segment, a bad record header stops
/// the scan of that segment (the record boundary is lost), and a
/// checksum mismatch skips just that record. A torn or corrupt record
/// is therefore *never served* — at worst a previously stored
/// certificate is forgotten and re-verified, which is always sound.
/// When the tail of the last segment is torn, open truncates it back to
/// the last whole record (under the exclusive lock) so later appends
/// are not stranded behind garbage; a torn journal entry tail is
/// repaired the same way. tests/DiskCertStoreTests.cpp truncates a
/// store at every byte offset and asserts reopen never returns a wrong
/// certificate.
///
/// ## Locking protocol (single-writer / multi-reader)
///
/// Cross-process coordination uses an advisory `flock(2)` on the `LOCK`
/// file: appends, open-time tail repair, and compaction hold it
/// exclusively; lookups take no lock at all (records are immutable once
/// written, and the checksum + full-key compare reject anything torn).
/// Several `CertServer` processes can thus share one store directory:
/// one appends at a time, everyone reads. A process's index covers the
/// records present when it opened plus its own appends; a sibling's
/// append bumps the journal generation, which a lookup miss detects
/// with one header `pread` and absorbs by refreshing the index in
/// place — no reopen required. A `ReadOnly` open never takes the lock
/// at all (and never repairs, journals, or appends), so a pure replica
/// can serve from a directory another process owns.
///
/// ## Replication (the `ReplicationEndpoint` face)
///
/// `serveJournalPoll` answers "(epoch, serial) → what next?" by
/// shipping whole serialized records, bytes exactly as they sit in the
/// segment (checksum re-verified before shipping, corrupt entries
/// skipped but their serials still advance). `applyReplicatedRecord`
/// is the replica side: it validates the record like an open-time scan
/// would, declines duplicates, and appends the *identical bytes* — so
/// a replicated certificate is byte-for-byte the source's, and a
/// corrupt or replayed delta degrades to a skip, never a wrong
/// certificate. Compaction and retention bump the journal *epoch*; a
/// replica presenting an old epoch is told `EpochReset` and performs a
/// full resync, which the duplicate-decline path makes idempotent.
///
/// ## Retention
///
/// `RetentionBytes` caps the directory's segment bytes: once exceeded,
/// whole segments are evicted oldest-first (never the open append
/// segment) and the journal epoch bumps. Certificates are cache
/// entries, not ledger rows — an evicted record is simply re-verified.
///
/// ## Invalidation story
///
///  - dataset changed → fingerprint changed → key never matches: no
///    staleness by construction, nothing to invalidate.
///  - format changed → bump `FormatVersion` → old segments fail the
///    header check, are skipped wholesale on open, and are reclaimed by
///    the next compaction.
///
/// Only deterministic verdicts (Robust / Unknown / ResourceLimit) are
/// ever persisted — the same discipline as the RAM tier; `store`
/// declines anything else defensively even though `Verifier` never
/// offers it.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_SERVING_DISKCERTSTORE_H
#define ANTIDOTE_SERVING_DISKCERTSTORE_H

#include "serving/CertificateStore.h"
#include "serving/StoreJournal.h"
#include "serving/StoreKey.h"

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace antidote {

struct DiskCertStoreOptions {
  /// Appends rotate to a fresh segment once the current one would grow
  /// past this (compaction granularity; the format has no hard limit).
  /// 0 = never rotate.
  uint64_t MaxSegmentBytes = 4ull << 20;

  /// `open` compacts the directory right after the index rebuild when
  /// dead bytes — stale-version segments, torn/corrupt records,
  /// duplicates, anything scanned but not indexed — exceed this
  /// fraction of the total segment bytes on disk. A format bump thus
  /// reclaims its invalidated segments on the first open instead of
  /// waiting for an explicit `compact()`. <= 0 disables; the trigger
  /// failing (I/O error) is not an open failure — the store serves
  /// what it indexed and the dead bytes wait for the next chance.
  double AutoCompactDeadFraction = 0.5;

  /// Byte budget for the directory's segment files; 0 = unbounded.
  /// Exceeding it after an append (or found exceeded on open) evicts
  /// whole segments oldest-first — never the open append segment — and
  /// bumps the journal epoch so replicas resync rather than miss the
  /// renumbering.
  uint64_t RetentionBytes = 0;

  /// Open without ever taking the writer flock or mutating the
  /// directory: no tail repair, no journal reconcile, `store` declines
  /// (counted), `compact` fails. The directory must already exist. The
  /// mode a pure replica or diagnostic reader uses against a directory
  /// a sibling process owns.
  bool ReadOnly = false;
};

/// The disk tier of the production certificate store. Thread-safe like
/// every `CertificateStore` (one internal mutex); cross-process safe per
/// the locking protocol above. Compose it behind the RAM tier with
/// serving/TieredStore.h rather than using it as `VerifierConfig::Cache`
/// directly — it works alone, but every hit then pays a disk read.
class DiskCertStore final : public CertificateStore,
                            public ReplicationEndpoint {
public:
  /// Bump on any record/segment layout change: old segments are then
  /// skipped wholesale on open (never half-parsed) and reclaimed by the
  /// next compaction. 2 = CertifiedRadius joined the payload; 3 = the
  /// threat model byte joined both the key and certificate sections.
  static constexpr uint32_t FormatVersion = 3;

  /// `open` either yields a store or a human-readable reason it could
  /// not (unwritable directory, lock failure, ...). Skipped corrupt
  /// records are *not* errors — they are counted in `stats()`.
  struct OpenResult {
    std::unique_ptr<DiskCertStore> Store;
    std::string Error;
    bool ok() const { return Store != nullptr; }
  };

  /// Opens (creating if needed) the store directory \p Dir and rebuilds
  /// the index from its segments.
  static OpenResult open(const std::string &Dir,
                         const DiskCertStoreOptions &Options = {});

  ~DiskCertStore() override;

  DiskCertStore(const DiskCertStore &) = delete;
  DiskCertStore &operator=(const DiskCertStore &) = delete;

  bool lookup(const DatasetFingerprint &Data, const float *X,
              unsigned NumFeatures, uint32_t PoisoningBudget,
              const VerifierConfig &Config, Certificate &Out) override;

  void store(const DatasetFingerprint &Data, const float *X,
             unsigned NumFeatures, uint32_t PoisoningBudget,
             const VerifierConfig &Config, const Certificate &Cert) override;

  /// The radius-range probe alone, mirroring `CertCache::rangeLookup`:
  /// no exact-key consultation and no hit/miss counter changes (though
  /// a record whose bytes rotted is still dropped on discovery).
  bool rangeLookup(const DatasetFingerprint &Data, const float *X,
                   unsigned NumFeatures, uint32_t PoisoningBudget,
                   const VerifierConfig &Config, Certificate &Out) override;

  StoreStats stats() const override;

  /// The disk tier *is* the replication endpoint.
  ReplicationEndpoint *replication() override { return this; }

  Delta serveJournalPoll(const PollRequest &Poll) override;
  ApplyResult applyReplicatedRecord(const uint8_t *Data,
                                    size_t Size) override;

  const std::string &directory() const { return Dir; }
  bool readOnly() const { return Options.ReadOnly; }

  /// Directory-wide rewrite under the exclusive lock: re-scans every
  /// segment (not just this handle's index — sibling processes may have
  /// appended records this handle never saw) and copies every intact,
  /// deduplicated record into one fresh segment, then deletes the old
  /// files. What gets reclaimed is exactly duplicate records (racing
  /// writers append the same key independently), torn/corrupt records,
  /// and stale-version segments. The journal epoch bumps and the
  /// journal is rewritten to list the survivors. Lookups keep answering
  /// throughout from this process; other processes holding an old index
  /// degrade to misses until their next refresh. Returns false (and
  /// fills \p Error) on I/O failure, leaving the old segments in place.
  bool compact(std::string *Error = nullptr);

private:
  struct RecordRef {
    uint32_t Segment = 0;
    uint64_t PayloadOffset = 0;
    uint32_t PayloadBytes = 0;
    /// Kept in the index so every `lookup` re-verifies the payload it
    /// just read — post-open bit rot degrades to a miss, never to a
    /// wrong certificate.
    uint64_t Checksum = 0;
    /// Mirrored from the record so the range index can be maintained
    /// (and a dead entry unregistered) without re-reading the payload.
    VerdictKind Kind = VerdictKind::Unknown;
    uint32_t CertifiedRadius = 0;
  };

  /// Radius-ordered views of the records sharing one budget-agnostic
  /// base key — the same structure (and registration rule: original
  /// proofs only, radius == key budget) as the RAM tier's; see
  /// serving/CertCache.h `RangeSlot`.
  struct RangeSlot {
    std::map<uint32_t, const StoreKey *> Robust;
    std::map<uint32_t, const StoreKey *> Unknown;
  };

  DiskCertStore(std::string Dir, const DiskCertStoreOptions &Options)
      : Dir(std::move(Dir)), Options(Options) {}

  /// Scans all segments, builds the index, repairs a torn tail on the
  /// append segment. \p TotalSegmentBytes accumulates every byte read
  /// from a segment file, indexed or not — the denominator of the
  /// auto-compaction dead fraction. Returns false with \p Error on hard
  /// I/O failure. Callable again after `clearIndexLocked` (the sibling
  /// epoch-change reload path).
  bool loadLocked(std::string &Error, uint64_t &TotalSegmentBytes);

  /// Drops every in-memory view of the directory (index, range index,
  /// known segments, cached fds; live-footprint stats zeroed) ahead of
  /// a full `loadLocked` rescan. Monotonic counters are kept.
  void clearIndexLocked();

  /// Reconciles the journal with the freshly built index: repairs /
  /// rebuilds an unusable journal under a bumped epoch and appends
  /// entries for indexed records a crash separated from their journal
  /// line. Writable stores only; caller holds the mutex and the flock.
  void reconcileJournalLocked();

  /// The lookup-miss staleness check: one journal-header `pread`; if a
  /// sibling moved the generation, refreshes the index (incrementally
  /// for same-epoch growth, by full rescan across an epoch change) and
  /// returns true so the caller retries its probe. Caller holds the
  /// mutex.
  bool maybeRefreshIndexLocked();

  /// Brings the journal (and, for same-epoch growth, the index) in line
  /// with sibling mutations before this process appends its own entry —
  /// without it two writers would publish colliding generations and
  /// overwrite each other's journal lines. An epoch change cannot be
  /// absorbed here (the full rescan re-enters the flock, which does not
  /// nest), so it sets `PendingFullReload` for the next lookup miss.
  /// Caller holds the mutex *and* the flock.
  void syncJournalWithDiskLocked();

  /// Indexes one journaled record (reading and re-validating its bytes);
  /// silently skips entries whose records vanished or rotted. Caller
  /// holds the mutex.
  void ingestJournalEntryLocked(const StoreJournal::Entry &E);

  /// The epoch a record-removing rewrite publishes under: one past the
  /// max of our cached epoch and whatever the on-disk header says, so
  /// epochs stay monotone across sibling writers. Caller holds the
  /// mutex.
  uint64_t nextEpochLocked() const;

  /// Enforces `RetentionBytes` by evicting whole segments oldest-first;
  /// never touches the open append segment. Needs the flock (its own,
  /// non-blocking — a contended budget check just waits for the next
  /// append). Bumps the journal epoch when anything was evicted. Caller
  /// holds the mutex.
  void applyRetentionLocked();

  /// Journal entries for every indexed record, in (segment, offset)
  /// order — the survivor list a `reset` publishes after compaction or
  /// retention. Caller holds the mutex.
  std::vector<StoreJournal::Entry> journalEntriesFromIndexLocked() const;

  std::string segmentPath(uint32_t Segment) const;

  /// Read fd for \p Segment, opened on demand and cached. -1 on failure.
  int readFdLocked(uint32_t Segment);

  /// Appends one serialized record under the cross-process exclusive
  /// lock and journals it; fills \p Ref with where it landed. Caller
  /// holds the mutex.
  bool appendLocked(const std::vector<uint8_t> &Record, RecordRef &Ref);

  /// How a record read failed, if it did. The distinction matters for
  /// index hygiene: a transient failure must leave the entry in place
  /// for a later retry, a permanent one must drop it (or `store` would
  /// forever decline the re-verified certificate as a "duplicate").
  enum class ReadStatus : uint8_t {
    Ok,
    Transient, ///< fd exhaustion etc.; the record may still be fine.
    Gone,      ///< Missing file / short read: permanently unreadable.
  };

  /// Loads one record's payload (checksum verified by the caller).
  /// Caller holds the mutex.
  ReadStatus readPayloadLocked(const RecordRef &Ref,
                               std::vector<uint8_t> &Out);

  /// Loads one *whole* record (header included) as a journal entry
  /// names it, verifying the record header and payload checksum against
  /// the entry — the poll-serving read. False on any mismatch. Caller
  /// holds the mutex.
  bool readRecordLocked(const StoreJournal::Entry &E,
                        std::vector<uint8_t> &Out);

  void closeFdsLocked();

  /// Range-index maintenance for one index entry (\p K must point into
  /// `Index`); callers hold the mutex.
  void registerRangeLocked(const StoreKey &K, const RecordRef &Ref);
  void unregisterRangeLocked(const StoreKey &K, const RecordRef &Ref);

  /// Drops a permanently unreadable index entry (stats + range index);
  /// caller holds the mutex. \p It must be valid.
  void dropDeadEntryLocked(
      std::unordered_map<StoreKey, RecordRef, StoreKeyHash>::iterator It);

  /// The shared exact-miss range probe + payload load behind `lookup`
  /// and `rangeLookup`; caller holds the mutex.
  bool lookupLocked(const StoreKey &K, uint32_t PoisoningBudget,
                    bool RangeOnly, Certificate &Out);

  const std::string Dir;
  const DiskCertStoreOptions Options;

  mutable std::mutex Mutex;
  int LockFd = -1;   ///< `LOCK` file; flock target (-1 when ReadOnly).
  int AppendFd = -1; ///< Current append segment, O_APPEND.
  uint32_t AppendSegment = 0;
  std::unordered_map<StoreKey, RecordRef, StoreKeyHash> Index;
  /// Base key (budget zeroed) -> radius-sorted record views; kept in
  /// lockstep with `Index` by load/store/compact and dead-entry drops.
  std::unordered_map<StoreKey, RangeSlot, StoreKeyHash> RangeIndex;
  std::unordered_map<uint32_t, int> ReadFds;
  std::vector<uint32_t> KnownSegments; ///< Readable, ascending.
  /// On-disk bytes per known segment (headers included) — the retention
  /// accounting, maintained by load/append/compact/evict.
  std::map<uint32_t, uint64_t> SegmentBytes;
  StoreJournal Journal;
  /// Set when a flock-held path noticed a sibling epoch change it could
  /// not absorb in place; the next lookup miss performs the full rescan.
  bool PendingFullReload = false;
  StoreStats Stats;
};

} // namespace antidote

#endif // ANTIDOTE_SERVING_DISKCERTSTORE_H
