//===- serving/NetServer.h - Socket serving tier with admission -*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The network front end of the serving stack: one epoll event-loop
/// thread multiplexing many concurrent TCP clients in front of a
/// `CertServer`, speaking the length-prefixed protocol of
/// serving/NetProtocol.h. The loop never verifies anything itself — it
/// frames, admits, submits, and writes back; all verification runs on
/// the CertServer's pools.
///
///   clients ──▶ epoll loop ──▶ admission control ──▶ CertServer::submit
///                  ▲                  │                  (ticketed)
///                  │                  ├─ paced/overloaded ─▶ store
///                  │                  │   probe; hit ⇒ Ok/ShedProbe,
///                  │                  │   miss ⇒ explicit Shed
///                  │                  ▼
///               WakeFd ◀── completion callback (serving thread)
///
/// ## Admission control
///
/// Three gates, in order, per well-framed request:
///
///  1. *Arity*: a feature count not matching the training set answers
///     `Error/BadArity` (the frame was honest; only the query is wrong).
///  2. *Pacing*: each connection owns a token bucket (`ClientRate`
///     tokens/second, capacity `ClientBurst`); an empty bucket means
///     this client is over its fair share. `ClientRate` 0 = unpaced.
///  3. *Load*: when `CertServer::pendingRequests()` has reached
///     `ShedDepth`, the verification queue is saturated. 0 = never shed.
///
/// A request failing gate 2 or 3 is *not* dropped silently and *never*
/// receives a fabricated verdict: the server first probes the
/// certificate store (`CertServer::probeStore` — RAM and disk tiers,
/// range rule included, no verification, no queue), and answers
/// `Ok/ShedProbe` on a hit; otherwise the client gets an explicit
/// `Shed` frame naming the reason. Under overload the server thus keeps
/// answering everything it already knows while refusing new work —
/// shedding costs a hash probe, not a verification.
///
/// Admitted requests consume one token and are submitted ticketed, with
/// the client's `deadlineMillis` propagated (queue wait counts; an
/// expired request answers `Timeout` without verifying, a live one
/// verifies under min(server timeout, remaining)). When a client
/// disconnects, every ticket it still owns is `cancelRequest`ed — a
/// queued request frees its slot immediately, an in-flight one winds
/// down at its next budget poll. Nobody verifies for a dead socket.
///
/// ## Robustness
///
/// Torn frames are just buffered bytes (FrameReader). A framing
/// violation (bad magic, oversize length, undecodable payload) costs
/// exactly that one connection — close, count, carry on. A slow-loris
/// client trickling a frame holds only its own buffer, never the loop.
/// Backpressure on the write side is epoll-driven: unsent response
/// bytes park in the connection's out-buffer and drain on EPOLLOUT.
///
/// `stop()` closes the listener and every connection, cancels all
/// outstanding tickets, then joins the loop once every completion
/// callback has reported home (the CertServer always fulfills). The
/// CertServer must outlive the NetServer.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_SERVING_NETSERVER_H
#define ANTIDOTE_SERVING_NETSERVER_H

#include "serving/CertServer.h"
#include "serving/NetProtocol.h"
#include "support/Net.h"

#include <atomic>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace antidote {

/// Network-tier parameters (the CLI exposes each as a flag + env twin).
struct NetServerConfig {
  /// TCP port to bind on 127.0.0.1; 0 = kernel-assigned (tests and CI
  /// read it back via `port()`).
  uint16_t Port = 0;

  /// Concurrent-connection cap; an accept beyond it is closed
  /// immediately (counted, never serviced). 0 = unbounded.
  size_t MaxClients = 64;

  /// Queue depth (`CertServer::pendingRequests`) at which new
  /// verification work is shed. 0 = never shed.
  size_t ShedDepth = 0;

  /// Per-connection token-bucket refill rate, tokens (= admitted
  /// verifications) per second. 0 = unpaced.
  double ClientRate = 0.0;

  /// Token-bucket capacity: how many requests a client may burst before
  /// pacing bites. Also the bucket's starting balance.
  double ClientBurst = 8.0;

  /// Tighter per-frame payload bound; 0 = the protocol default.
  uint32_t MaxFrameBytes = 0;
};

/// Monotonic ops/test counters. Snapshot via `NetServer::stats()`; the
/// CLI prints them as the `net:` line the CI smoke greps.
struct NetServerStats {
  uint64_t Accepted = 0;       ///< Connections admitted to the loop.
  uint64_t RefusedClients = 0; ///< Accepts closed over MaxClients.
  uint64_t FramingErrors = 0;  ///< Connections closed for bad framing.
  uint64_t Requests = 0;       ///< Well-framed requests decoded.
  uint64_t Verified = 0;       ///< Ok responses via the verify path.
  uint64_t ProbeHits = 0;      ///< Ok responses via the shed-path probe.
  uint64_t ShedOverload = 0;   ///< Shed frames: queue past ShedDepth.
  uint64_t ShedPaced = 0;      ///< Shed frames: client bucket empty.
  uint64_t BadArity = 0;       ///< Error frames: feature-count mismatch.
  uint64_t Cancelled = 0;      ///< Tickets cancelled for disconnects.
  uint64_t JournalPolls = 0;   ///< Replication polls answered.
};

/// The epoll front end. Construct, `start()`, read `port()`, serve until
/// `stop()` (or destruction). All methods are safe from the owning
/// thread; `stats()` from any thread.
class NetServer {
public:
  /// \p Server must outlive this object.
  NetServer(CertServer &Server, const NetServerConfig &Config);
  ~NetServer();

  NetServer(const NetServer &) = delete;
  NetServer &operator=(const NetServer &) = delete;

  /// Binds, listens, and launches the event-loop thread. False (with
  /// \p Error set) when the port cannot be bound — the caller exits 2,
  /// same as any other unusable resource.
  bool start(std::string &Error);

  /// The bound port (after port-0 readback). Valid once start() returned
  /// true.
  uint16_t port() const { return ListenPort; }

  /// Stops accepting, cancels every outstanding ticket, closes all
  /// connections, joins the loop. Idempotent; the destructor calls it.
  void stop();

  NetServerStats stats() const;

private:
  /// Per-connection state, owned by the loop thread.
  struct Conn {
    FdHandle Fd;
    FrameReader In;
    std::string Out;     ///< Unwritten response bytes.
    size_t OutPos = 0;   ///< Consumed prefix of `Out`.
    bool WantWrite = false; ///< EPOLLOUT currently requested.
    double Tokens = 0.0; ///< Token-bucket balance.
    std::chrono::steady_clock::time_point LastRefill;
    /// Tag -> ticket of every in-flight submission (multimap: tags are
    /// client-chosen and may repeat).
    std::unordered_multimap<uint64_t, uint64_t> Pending;

    /// Dual-magic reader: one connection may interleave query frames
    /// ("ANTQ") and replication polls ("ANTJ") — the loop dispatches by
    /// each frame's magic.
    explicit Conn(FdHandle Fd, uint32_t MaxFrameBytes, double Burst,
                  std::chrono::steady_clock::time_point Now)
        : Fd(std::move(Fd)),
          In(NetRequestMagic, NetJournalPollMagic, MaxFrameBytes),
          Tokens(Burst), LastRefill(Now) {}
  };

  /// One fulfilled verification travelling from the CertServer's
  /// serving thread back to the loop.
  struct Completion {
    uint64_t ConnId = 0;
    uint64_t Tag = 0;
    Certificate Cert;
  };

  void loop();
  void acceptClients();
  void readable(uint64_t ConnId);
  void writable(uint64_t ConnId);
  void handleRequest(uint64_t ConnId, Conn &C, const NetRequest &Request);

  /// Answers one replication poll synchronously from the server's
  /// store endpoint (a journal read plus at most a batch of record
  /// preads — no verification, so it cannot starve the queue). A store
  /// without a replication face answers `Unavailable`.
  void handleJournalPoll(Conn &C,
                         const ReplicationEndpoint::PollRequest &Poll);
  void drainCompletions();
  void sendResponse(Conn &C, const NetResponse &Response);
  void flushOut(uint64_t ConnId, Conn &C);
  void closeConn(uint64_t ConnId, bool Framing);

  CertServer &Server;
  NetServerConfig Config;
  FdHandle ListenFd;
  uint16_t ListenPort = 0;
  Epoll Poll;
  WakeFd Wake;
  std::thread Loop;
  std::atomic<bool> Stopping{false};

  /// Loop-thread state. ConnIds are monotonic cookies (never reused fd
  /// numbers), so a stale epoll event can never hit a newer connection.
  std::unordered_map<uint64_t, Conn> Conns;
  uint64_t NextConnId = FirstConnId;
  size_t OutstandingTickets = 0; ///< Submissions not yet completed.

  std::mutex CompletionMutex;
  std::vector<Completion> Completions; ///< Guarded by CompletionMutex.

  /// Counters (relaxed atomics: written by the loop, read by anyone).
  std::atomic<uint64_t> NumAccepted{0}, NumRefused{0}, NumFraming{0},
      NumRequests{0}, NumVerified{0}, NumProbeHits{0}, NumShedOverload{0},
      NumShedPaced{0}, NumBadArity{0}, NumCancelled{0}, NumJournalPolls{0};

  static constexpr uint64_t ListenCookie = 0;
  static constexpr uint64_t WakeCookie = 1;
  static constexpr uint64_t FirstConnId = 2;
};

} // namespace antidote

#endif // ANTIDOTE_SERVING_NETSERVER_H
