//===- serving/CertServer.h - Warm certificate-serving loop ----*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived serving subsystem the ROADMAP's north star asks for:
/// one warm `Verifier` (per-dataset acceleration structures built once),
/// one shared batch `ThreadPool`, one shared in-query frontier/split pool,
/// and one `CertificateStore`, behind a request queue so many clients can
/// stream queries at a single process. The server is deliberately
/// store-agnostic: it holds exactly one abstract `CertificateStore`
/// pointer and never names a concrete tier — the wiring layer composes
/// whatever it wants (a RAM `CertCache`, a `DiskCertStore`, both behind
/// a `TieredStore`, or nothing) and the server behaves identically.
///
/// Request path:
///
///   submit(x, n) ──▶ queue ──▶ dispatcher thread ──▶ batcher
///        │                        (groups up to MaxBatch pending
///        │                         requests by poisoning budget n)
///        │                                 │
///        ▼                                 ▼
///   std::future ◀── promise ◀── Verifier::verifyBatch on the batch
///                               pool; each query consults/feeds the
///                               CertCache from its worker thread
///
/// The batcher exists for the same reason `verifyBatch` does: queries
/// are independent, so folding whatever has queued up while the previous
/// batch ran into one fan-out keeps every pool worker busy without any
/// per-query thread churn. Caching happens *inside* `Verifier::verify`
/// (the store is wired into the server's `VerifierConfig`), so a repeated
/// query costs one store probe on a worker instead of a verification, and
/// the served certificate is byte-identical to the fresh one that seeded
/// the entry (see serving/CertCache.h for the invariants).
///
/// Shutdown: `stop()` (and the destructor) waits for the queue to drain —
/// every accepted future is always fulfilled. Submissions after `stop`
/// complete immediately with `VerdictKind::Cancelled`.
///
/// ## Background re-verification (the delta-slack loop)
///
/// When the server's training set is declared a delta of a parent
/// dataset (`CertServerConfig::Lineage`), the verifier's slack path may
/// answer a query from the *parent's* stored certificate (sound but
/// wider than necessary; see data/Fingerprint.h `DatasetLineage`). The
/// server is the `ReverifyScheduler` behind that path: each slack-served
/// query is queued for an exact re-verification that the dispatcher runs
/// only when the foreground queue is empty — foreground latency is never
/// taxed — with the slack path disarmed (`DeltaSlack` off), so the fresh
/// certificate is computed for real and written through under the
/// child's own fingerprint. Duplicate requests are coalesced while
/// queued. `stop()` drops still-pending re-verifications by design (they
/// are an optimization: the next cold query just verifies), and
/// `drainBackground()` is the test/ops hook that waits for the
/// background queue too.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_SERVING_CERTSERVER_H
#define ANTIDOTE_SERVING_CERTSERVER_H

#include "serving/CertificateStore.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

namespace antidote {

/// Server-wide parameters.
struct CertServerConfig {
  /// Per-query verification parameters, shared by every request: depth,
  /// domain, per-query `Limits` (whose `MaxCacheBytes` also sizes the
  /// server's cache), and the in-query FrontierJobs/SplitJobs knobs.
  /// `FrontierPool`, `Cache`, and `Cancel` are overwritten by the server
  /// with its own long-lived instances (`Cancel` is the `abort()` lever).
  VerifierConfig Query;

  /// Worker threads for the batch fan-out across queued requests
  /// (0 = one per hardware thread, 1 = the dispatcher thread alone).
  unsigned Jobs = 0;

  /// Most requests one dispatch folds into a single `verifyBatch`. Keeps
  /// tail latency bounded under a flood: a huge backlog is served as
  /// several batches, each completing (and fulfilling its futures) on
  /// its own. 0 = unbounded (one batch per backlog), matching the
  /// codebase's "0 disables the cap" convention.
  size_t MaxBatch = 64;

  /// The certificate store every verification consults and feeds —
  /// externally owned (it may outlive the server or be shared by
  /// several) and abstract on purpose: the server never knows whether
  /// it is a RAM `CertCache`, a `DiskCertStore`, a `TieredStore`
  /// composing both, or absent (null = every query verifies fresh).
  /// Composition is the wiring layer's job, not the server's.
  CertificateStore *Store = nullptr;

  /// Declares the training set a delta of a parent dataset (see
  /// data/Fingerprint.h `DatasetLineage`), arming the delta-slack
  /// serving path: when the store misses under this dataset's own
  /// fingerprint, a Robust certificate stored under the parent's at
  /// radius >= n + RowsRemoved is served immediately (pure-removal
  /// deltas only) and an exact re-verification is queued in the
  /// background. Unset = the server serves exact/range matches only.
  std::optional<DatasetLineage> Lineage;
};

/// A long-lived certificate server for one training set.
///
/// Thread-safety: `submit`, `probeStore`, and `pendingRequests` may be
/// called from any number of client threads. The returned future is
/// fulfilled by the dispatcher (or a batch-pool worker's result folded by
/// it); `get()` blocks until then.
class CertServer : private ReverifyScheduler {
public:
  CertServer(const Dataset &Train, const CertServerConfig &Config);

  /// Stops accepting, drains the queue, joins the dispatcher.
  ~CertServer();

  CertServer(const CertServer &) = delete;
  CertServer &operator=(const CertServer &) = delete;

  /// Per-request options for the ticketed `submit` overload — what a
  /// network front end knows that the plain API does not.
  struct SubmitOptions {
    /// Remaining wall-clock budget the *client* granted this request,
    /// counted from submission — queue wait included, unlike the
    /// server-wide `Limits.TimeoutSeconds`, which a `ResourceMeter`
    /// only starts once verification begins. A request still queued
    /// when its deadline passes is answered `Timeout` without
    /// verifying; one dispatched in time verifies under
    /// min(server timeout, remaining deadline). <= 0 = no deadline.
    double DeadlineSeconds = 0.0;

    /// Called from the serving thread immediately after the future is
    /// fulfilled, with the same certificate — the completion signal
    /// for event-loop callers that cannot block on futures. Must not
    /// block; must not call back into this server's submit/cancel
    /// paths synchronously with anything that would deadlock (pushing
    /// onto an external queue and signalling an eventfd is the
    /// intended shape — see serving/NetServer.cpp). Invoked exactly
    /// once for every accepted request, whatever its outcome.
    std::function<void(const Certificate &)> Completion;
  };

  /// Enqueues one query. \p X must hold exactly
  /// `verifier().trainingSet().numFeatures()` values (the CLI front end
  /// validates before submitting; this is the programmatic API's
  /// contract). The future is always eventually fulfilled.
  std::future<Certificate> submit(std::vector<float> X,
                                  uint32_t PoisoningBudget);

  /// The ticketed overload: like `submit`, plus per-request deadline
  /// and completion callback, and a ticket (never 0) for
  /// `cancelRequest`. Each ticketed request verifies under its own
  /// `CancellationToken`, so one client's cancellation never stops a
  /// neighbour's identical query.
  std::future<Certificate> submit(std::vector<float> X,
                                  uint32_t PoisoningBudget,
                                  SubmitOptions Options,
                                  uint64_t &TicketOut);

  /// Abandons a ticketed request — the lever a network front end pulls
  /// when the client disconnects mid-flight. A still-queued request is
  /// removed immediately (releasing its queue slot — admission control
  /// upstream watches `pendingRequests`) and fulfilled as `Cancelled`;
  /// an in-flight one has its token cancelled so the verification
  /// winds down at its next budget poll instead of running to
  /// completion for a reader that no longer exists. Returns false when
  /// the ticket is unknown or already served. The future (and
  /// completion callback) still resolve on every path — cancellation
  /// abandons the *work*, never the bookkeeping.
  bool cancelRequest(uint64_t Ticket);

  /// Store-only probe: consults the server's certificate store (range
  /// rule included, residency undisturbed — `CertificateStore::probe`)
  /// exactly as the verify path would, but never verifies and never
  /// touches the queue. This is the shed path's lifeline — under
  /// overload the network tier answers what is already known (a hash
  /// probe / disk read) while refusing to take on new verification
  /// work. Safe from any thread; false when there is no store or no
  /// serving entry.
  bool probeStore(const float *X, uint32_t PoisoningBudget,
                  Certificate &Out) const;

  /// The warm verifier (for its fingerprint, dataset, and direct
  /// cache-bypassing queries in tests).
  const Verifier &verifier() const { return V; }

  /// The store this server serves from (null when configured without
  /// one). Abstract by design — callers wanting stats go through
  /// `CertificateStore::stats`, and the replication front end through
  /// `CertificateStore::replication`.
  CertificateStore *store() const { return Config.Store; }

  /// Requests not yet handed to a batch (for monitoring/backpressure).
  size_t pendingRequests() const;

  /// Background re-verifications queued or running (monitoring).
  size_t pendingReverifies() const;

  /// Background exact re-verifications completed since construction.
  uint64_t reverifiesCompleted() const;

  /// Blocks until every already-submitted request has been served.
  void drain();

  /// `drain()`, plus waits for the background re-verification queue to
  /// empty — after this, every slack-served answer has its exact
  /// certificate written through under the child's own fingerprint.
  void drainBackground();

  /// Stops accepting new work, serves everything already queued, joins
  /// the dispatcher. Idempotent; the destructor calls it.
  void stop();

  /// `stop()` for error paths that must exit promptly: additionally
  /// cancels queued and in-flight verification cooperatively, so
  /// already-running queries wind down at their next budget poll and
  /// every unserved future resolves quickly with
  /// `VerdictKind::Cancelled` (cache hits still resolve to their stored
  /// certificate). Every accepted future is still fulfilled. Idempotent.
  void abort();

private:
  struct Request {
    std::vector<float> X;
    uint32_t PoisoningBudget = 0;
    std::promise<Certificate> Promise;

    /// Ticketed-submit extras; defaulted (inert) for the plain path.
    uint64_t Ticket = 0; ///< 0 = not cancellable.
    bool HasDeadline = false;
    std::chrono::steady_clock::time_point Deadline{};
    /// Per-request cancellation, shared with `LiveTokens` so
    /// `cancelRequest`/`abort` reach it after the request leaves the
    /// queue.
    std::shared_ptr<CancellationToken> Cancel;
    std::function<void(const Certificate &)> Completion;
  };

  /// Fulfills \p R's promise and fires its completion callback (in that
  /// order — the callback may inspect the future's side effects).
  static void fulfill(Request &R, const Certificate &Cert);

  /// Shared enqueue tail of both submit overloads. \p TicketOut non-null
  /// marks the request ticketed: it gets a ticket, its own cancellation
  /// token, and a `LiveTokens` entry.
  std::future<Certificate> enqueue(Request R, uint64_t *TicketOut);

  /// Fulfills a request leaving `serveBatch` and drops its
  /// `LiveTokens` entry (after which `cancelRequest` returns false).
  void finish(Request &R, const Certificate &Cert);

  /// A slack-served query awaiting its exact background re-verification.
  struct BackgroundRequest {
    std::vector<float> X;
    uint32_t PoisoningBudget = 0;
  };

  void dispatchLoop();
  void serveBatch(std::vector<Request> Batch);

  /// ReverifyScheduler: called by the slack path from batch-pool
  /// workers; enqueues (coalescing bit-identical duplicates) for the
  /// dispatcher to run when the foreground is idle.
  void scheduleReverify(const float *X, unsigned NumFeatures,
                        uint32_t PoisoningBudget) override;

  CertServerConfig Config;
  Verifier V;
  /// `Config.Query` with the slack path disarmed (`DeltaSlack` off,
  /// no scheduler): the background re-verification config — it must
  /// verify for real, never serve itself from the parent certificate.
  VerifierConfig ExactQuery;
  std::unique_ptr<ThreadPool> BatchPool;
  std::unique_ptr<ThreadPool> FrontierPool;
  CancellationToken AbortToken; ///< Cancelled by `abort()` only.

  mutable std::mutex Mutex;
  std::condition_variable QueueChanged; ///< Signalled on submit/stop.
  std::condition_variable Idle;         ///< Signalled when work completes.
  std::deque<Request> Queue;
  size_t InFlight = 0; ///< Requests taken off the queue, not yet served.
  uint64_t NextTicket = 1; ///< Ticket source; 0 is reserved for "none".
  /// Every accepted-but-unserved ticketed request's token, queued or
  /// in-flight, so `cancelRequest` (after the request left the queue)
  /// and `abort` (which must reach per-request tokens — ticketed
  /// verifications run under their own token, not `AbortToken`) can
  /// cancel them. Erased when the request is fulfilled.
  std::unordered_map<uint64_t, std::shared_ptr<CancellationToken>>
      LiveTokens;
  /// Exact re-verifications of slack-served queries; the dispatcher
  /// drains it only while `Queue` is empty. Pending entries are dropped
  /// on `stop()` (they are an optimization, not owed work).
  std::deque<BackgroundRequest> BackgroundQueue;
  size_t BackgroundInFlight = 0;
  uint64_t ReverifiesDone = 0;
  bool Stopping = false;
  std::thread Dispatcher;
};

} // namespace antidote

#endif // ANTIDOTE_SERVING_CERTSERVER_H
