//===- serving/Replicator.cpp - Pull-based store replication ------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "serving/Replicator.h"

#include "serving/NetProtocol.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

using namespace antidote;

Replicator::Replicator(CertificateStore &Local,
                       const ReplicatorConfig &Config)
    : Local(Local), Config(Config), Endpoint(Local.replication()) {}

Replicator::~Replicator() { stop(); }

bool Replicator::start(std::string &Error) {
  if (!Endpoint) {
    Error = "local store has no replication endpoint";
    return false;
  }
  if (Config.Port == 0) {
    Error = "replication source port must not be 0";
    return false;
  }
  // An unreachable source is not a start failure: the loop retries on
  // the poll interval, and the replica serves what it has meanwhile.
  Puller = std::thread([this] { loop(); });
  return true;
}

void Replicator::stop() {
  std::thread ToJoin;
  {
    std::lock_guard<std::mutex> Guard(Mutex);
    Stopping = true;
    // A poll blocked in recv sees the shutdown as EOF instead of
    // waiting out its timeout.
    if (Sock.valid())
      ::shutdown(Sock.get(), SHUT_RDWR);
    ToJoin = std::move(Puller); // Empty on every stop after the first.
  }
  StopChanged.notify_all();
  if (ToJoin.joinable())
    ToJoin.join();
}

ReplicatorStats Replicator::stats() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return Stats;
}

uint64_t Replicator::cursorEpoch() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return Epoch;
}

uint64_t Replicator::cursorSerial() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return Serial;
}

void Replicator::loop() {
  for (;;) {
    bool More = false;
    std::string Error;
    pollOnce(More, Error);
    std::unique_lock<std::mutex> Lock(Mutex);
    if (Stopping)
      return;
    if (More)
      continue; // Behind the head: catch up without sleeping.
    StopChanged.wait_for(
        Lock, std::chrono::duration<double>(Config.IntervalSeconds),
        [this] { return Stopping; });
    if (Stopping)
      return;
  }
}

bool Replicator::ensureConnected(std::string &Error) {
  // Caller holds the mutex.
  if (Sock.valid())
    return true;
  FdHandle Fresh = connectTcp(Config.Host, Config.Port, Error);
  if (!Fresh.valid())
    return false;
  // Bound every read: a wedged source must not pin the puller (or a
  // stop()) indefinitely. One second keeps shutdown prompt; the loop
  // retries a slow source on the next interval.
  timeval Timeout;
  Timeout.tv_sec = 1;
  Timeout.tv_usec = 0;
  ::setsockopt(Fresh.get(), SOL_SOCKET, SO_RCVTIMEO, &Timeout,
               sizeof(Timeout));
  Sock = std::move(Fresh);
  return true;
}

bool Replicator::pollOnce(bool &More, std::string &Error) {
  More = false;
  std::unique_lock<std::mutex> Lock(Mutex);
  if (Stopping)
    return false;
  auto Fail = [&](const std::string &Message) {
    Error = Message;
    ++Stats.Errors;
    Sock.reset();
    return false;
  };
  if (!ensureConnected(Error)) {
    ++Stats.Errors;
    return false;
  }

  ReplicationEndpoint::PollRequest Poll;
  Poll.Epoch = Epoch;
  Poll.Serial = Serial;
  Poll.ScopeHi = Config.ScopeHi;
  Poll.ScopeLo = Config.ScopeLo;
  Poll.MaxRecords = Config.MaxRecords;
  std::string Frame = encodeJournalPollFrame(Poll);
  size_t Sent = 0;
  while (Sent < Frame.size()) {
    ssize_t N = ::send(Sock.get(), Frame.data() + Sent, Frame.size() - Sent,
                       MSG_NOSIGNAL);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      return Fail("cannot send poll: " + std::string(std::strerror(errno)));
    Sent += static_cast<size_t>(N);
  }

  // Block until the one response frame is whole. Delta frames carry a
  // record batch, hence the wider bound.
  FrameReader In(NetJournalDeltaMagic, NetMaxDeltaFrameBytes);
  std::optional<std::vector<uint8_t>> Payload;
  while (!Payload) {
    uint8_t Buf[16384];
    ssize_t N = ::recv(Sock.get(), Buf, sizeof(Buf), 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (Stopping)
        return Fail("stopping");
      return Fail("poll timed out");
    }
    if (N <= 0)
      return Fail("source closed the connection");
    if (!In.feed(Buf, static_cast<size_t>(N)))
      return Fail("corrupt delta stream");
    Payload = In.next();
  }
  std::optional<ReplicationEndpoint::Delta> Delta =
      decodeJournalDeltaPayload(Payload->data(), Payload->size());
  if (!Delta)
    return Fail("undecodable delta frame");
  ++Stats.Polls;

  switch (Delta->Status) {
  case ReplicationEndpoint::PollStatus::Unavailable:
    // The source has no journal (yet). Not an error; poll again later.
    return true;
  case ReplicationEndpoint::PollStatus::EpochReset:
    // Our epoch is gone (compaction/retention rewrote the journal, or
    // this is the first poll ever): restart from serial 0 of the
    // source's current epoch. Replayed records are declined as
    // duplicates, so the resync is idempotent.
    Epoch = Delta->Epoch;
    Serial = 0;
    ++Stats.EpochResets;
    More = true;
    return true;
  case ReplicationEndpoint::PollStatus::Delta:
    break;
  }

  for (const std::vector<uint8_t> &Record : Delta->Records) {
    // The normal append path: full validation, duplicate decline. A
    // corrupt record is counted and skipped — its serial still
    // advances, matching the source's serving rule.
    switch (Endpoint->applyReplicatedRecord(Record.data(), Record.size())) {
    case ReplicationEndpoint::ApplyResult::Applied:
      ++Stats.Applied;
      break;
    case ReplicationEndpoint::ApplyResult::Duplicate:
      ++Stats.Duplicates;
      break;
    case ReplicationEndpoint::ApplyResult::Corrupt:
      ++Stats.Corrupt;
      break;
    case ReplicationEndpoint::ApplyResult::Declined:
      // The local store refused (read-only, lock contention): do not
      // advance past the record, retry it next poll.
      ++Stats.Errors;
      Error = "local store declined a replicated record";
      return false;
    }
  }
  Epoch = Delta->Epoch;
  Serial = Delta->NextSerial;
  More = Delta->NextSerial < Delta->HeadSerial;
  return true;
}
