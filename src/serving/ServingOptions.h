//===- serving/ServingOptions.h - Shared serving-flag parsing --*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one home of every serving-layer knob the front ends share:
/// parallelism, store composition (RAM cache / disk store / retention),
/// the threat model, network serving, and replication. Each knob is one
/// row of an option table carrying the flag, its `ANTIDOTE_*` env twin,
/// the parse rule, and the help text — `parse` walks the table (env
/// twins first, then flags, so a flag always beats its twin), and
/// `printHelp` renders the same table, so a new knob added as one row
/// surfaces in both front ends and their `--help` at once.
///
/// `parse` consumes the flags it recognizes and compacts the rest of
/// argv in place, letting each front end keep its own mode flags
/// (`--serve`, `--csv`, ...) on top. Malformed values — flag or env
/// twin alike — are reported to stderr and fail the parse; the shared
/// policy is that garbage never silently becomes a default.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_SERVING_SERVINGOPTIONS_H
#define ANTIDOTE_SERVING_SERVINGOPTIONS_H

#include "abstract/ThreatModel.h"

#include <cstdint>
#include <cstdio>
#include <string>

namespace antidote {

/// Every shared serving knob, defaulted; `parse` overwrites from the
/// environment and argv. The front ends translate these into
/// `CertServerConfig` / `NetServerConfig` / `DiskCertStoreOptions` /
/// `ReplicatorConfig` at wiring time.
struct ServingOptions {
  // Parallelism (0 = all cores on each axis).
  unsigned Jobs = 1;         ///< Batch/serve worker threads.
  unsigned FrontierJobs = 1; ///< Executors inside one DTrace# frontier.
  unsigned SplitJobs = 1;    ///< Executors inside one bestSplit# pass.

  // Store composition.
  uint64_t CacheBytes = 0;     ///< RAM-tier byte budget; 0 = unbounded.
  bool CacheEnabled = false;   ///< --cache-bytes/--cache-dir/env seen.
  std::string CacheDir;        ///< Persistent store directory; "" = off.
  uint64_t RetentionBytes = 0; ///< Disk-store segment-byte budget; 0 = off.
  bool DeltaSlack = true;      ///< Lineage-parent delta serving.

  ThreatModelKind Threat = ThreatModelKind::Removal;

  // Network serving.
  bool Listen = false;      ///< --listen/ANTIDOTE_LISTEN seen.
  uint16_t ListenPort = 0;  ///< 0 = kernel-assigned.
  uint64_t MaxClients = 64; ///< Concurrent connections; 0 = unbounded.
  uint64_t ShedDepth = 0;   ///< Queue depth that sheds; 0 = never.
  double ClientRate = 0.0;  ///< Per-client admits/second; 0 = unpaced.
  double ClientBurst = 8.0; ///< Per-client token-bucket capacity.

  // Replication (the replica side; the source side is just --listen).
  bool Replicate = false;        ///< --replicate-from/env seen.
  std::string ReplicateHost;     ///< Source host (name or address).
  uint16_t ReplicatePort = 0;    ///< Source port (1-65535).
  double ReplicateInterval = 1.0; ///< Seconds between polls when caught up.

  /// The single entry point: applies the `ANTIDOTE_*` env twins, then
  /// scans argv, consuming every flag the table knows and compacting
  /// the unrecognized remainder in place (\p Argc is rewritten). False
  /// when any value — flag or env — is malformed; the error has
  /// already been printed to stderr.
  bool parse(int &Argc, char **Argv);

  /// Renders the option table: one block of `flag / env twin / default /
  /// description` lines, shared verbatim by every front end's --help.
  static void printHelp(std::FILE *Out);
};

} // namespace antidote

#endif // ANTIDOTE_SERVING_SERVINGOPTIONS_H
