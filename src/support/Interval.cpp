//===- support/Interval.cpp - Interval arithmetic domain ------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "support/Interval.h"

#include <algorithm>
#include <cstdio>

using namespace antidote;

Interval Interval::join(const Interval &Other) const {
  if (Empty)
    return Other;
  if (Other.Empty)
    return *this;
  return Interval(std::min(Lo, Other.Lo), std::max(Hi, Other.Hi));
}

Interval Interval::meet(const Interval &Other) const {
  if (Empty || Other.Empty)
    return makeEmpty();
  double NewLo = std::max(Lo, Other.Lo);
  double NewHi = std::min(Hi, Other.Hi);
  if (NewLo > NewHi)
    return makeEmpty();
  return Interval(NewLo, NewHi);
}

Interval Interval::operator+(const Interval &Other) const {
  if (Empty || Other.Empty)
    return makeEmpty();
  return Interval(Lo + Other.Lo, Hi + Other.Hi);
}

Interval Interval::operator-(const Interval &Other) const {
  if (Empty || Other.Empty)
    return makeEmpty();
  return Interval(Lo - Other.Hi, Hi - Other.Lo);
}

Interval Interval::operator*(const Interval &Other) const {
  if (Empty || Other.Empty)
    return makeEmpty();
  double A = Lo * Other.Lo;
  double B = Lo * Other.Hi;
  double C = Hi * Other.Lo;
  double D = Hi * Other.Hi;
  return Interval(std::min(std::min(A, B), std::min(C, D)),
                  std::max(std::max(A, B), std::max(C, D)));
}

Interval Interval::operator/(const Interval &Other) const {
  if (Empty || Other.Empty)
    return makeEmpty();
  assert(!Other.contains(0.0) && "interval division by zero");
  double A = Lo / Other.Lo;
  double B = Lo / Other.Hi;
  double C = Hi / Other.Lo;
  double D = Hi / Other.Hi;
  return Interval(std::min(std::min(A, B), std::min(C, D)),
                  std::max(std::max(A, B), std::max(C, D)));
}

Interval Interval::clamp(const Interval &Bounds) const {
  if (Empty)
    return makeEmpty();
  assert(!Bounds.Empty && "clamping against empty bounds");
  double NewLo = std::clamp(Lo, Bounds.Lo, Bounds.Hi);
  double NewHi = std::clamp(Hi, Bounds.Lo, Bounds.Hi);
  return Interval(NewLo, NewHi);
}

void antidote::joinSlices(const double *ALo, const double *AHi,
                          const double *BLo, const double *BHi,
                          double *OutLo, double *OutHi, size_t N) {
  for (size_t I = 0; I < N; ++I)
    OutLo[I] = std::min(ALo[I], BLo[I]);
  for (size_t I = 0; I < N; ++I)
    OutHi[I] = std::max(AHi[I], BHi[I]);
}

void antidote::meetSlices(const double *ALo, const double *AHi,
                          const double *BLo, const double *BHi,
                          double *OutLo, double *OutHi, size_t N) {
  for (size_t I = 0; I < N; ++I)
    OutLo[I] = std::max(ALo[I], BLo[I]);
  for (size_t I = 0; I < N; ++I)
    OutHi[I] = std::min(AHi[I], BHi[I]);
}

std::string Interval::str() const {
  if (Empty)
    return "[bot]";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "[%g, %g]", Lo, Hi);
  return Buf;
}
