//===- support/Parse.cpp - Checked numeric argument parsing -------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "support/Parse.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace antidote;

std::optional<uint64_t> antidote::parseUnsignedArg(const std::string &Text,
                                                   uint64_t Max) {
  // from_chars is locale-free and never skips leading whitespace or
  // accepts a sign, so "whole string consumed" is the only extra check.
  uint64_t Value = 0;
  const char *Begin = Text.data();
  const char *End = Begin + Text.size();
  std::from_chars_result Result = std::from_chars(Begin, End, Value, 10);
  if (Result.ec != std::errc() || Result.ptr != End || Value > Max)
    return std::nullopt;
  return Value;
}

EnvNumber antidote::readUnsignedEnv(const char *Name, uint64_t Max) {
  EnvNumber Result;
  const char *Env = std::getenv(Name);
  if (!Env || !*Env)
    return Result;
  std::optional<uint64_t> Parsed = parseUnsignedArg(Env, Max);
  if (!Parsed) {
    Result.Status = EnvNumberStatus::Malformed;
    return Result;
  }
  Result.Status = EnvNumberStatus::Ok;
  Result.Value = *Parsed;
  return Result;
}

EnvNumber antidote::readUnsignedEnvReporting(const char *Name,
                                             const char *ZeroMeaning,
                                             uint64_t Max) {
  EnvNumber Result = readUnsignedEnv(Name, Max);
  if (Result.Status == EnvNumberStatus::Malformed)
    std::fprintf(stderr,
                 "error: %s needs an unsigned integer (0 = %s), got "
                 "'%s'\n",
                 Name, ZeroMeaning, std::getenv(Name));
  return Result;
}

std::optional<double> antidote::parseDoubleArg(const std::string &Text) {
  // strtod instead of FP from_chars (not universally available at C++17):
  // reject anything strtod is laxer about — leading whitespace, partial
  // parses, overflow to infinity, and explicit nan/inf spellings.
  if (Text.empty() || std::isspace(static_cast<unsigned char>(Text[0])))
    return std::nullopt;
  errno = 0;
  char *End = nullptr;
  double Value = std::strtod(Text.c_str(), &End);
  if (End != Text.c_str() + Text.size() || End == Text.c_str() ||
      errno == ERANGE || !std::isfinite(Value))
    return std::nullopt;
  return Value;
}

std::optional<std::string> antidote::readStringEnv(const char *Name) {
  const char *Env = std::getenv(Name);
  if (!Env || !*Env)
    return std::nullopt;
  return std::string(Env);
}
