//===- support/Timer.h - Wall-clock timing helpers -------------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic wall-clock timer and deadline used to implement the paper's
/// per-instance verification timeout (§6.1 uses one hour; our benches scale
/// this down).
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_SUPPORT_TIMER_H
#define ANTIDOTE_SUPPORT_TIMER_H

#include <chrono>

namespace antidote {

/// Measures elapsed wall-clock time from construction (or last reset).
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// A wall-clock budget; `expired()` is polled by long-running verifier
/// loops. A non-positive budget means "no deadline".
class Deadline {
public:
  explicit Deadline(double BudgetSeconds) : Budget(BudgetSeconds) {}

  bool hasBudget() const { return Budget > 0.0; }

  bool expired() const {
    return hasBudget() && Elapsed.seconds() >= Budget;
  }

  double elapsedSeconds() const { return Elapsed.seconds(); }

private:
  double Budget;
  Timer Elapsed;
};

} // namespace antidote

#endif // ANTIDOTE_SUPPORT_TIMER_H
