//===- support/Rng.cpp - Deterministic random number generation -----------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

#include <cassert>
#include <cmath>

using namespace antidote;

static uint64_t splitmix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

Rng::Rng(uint64_t Seed) {
  // Expand the seed through splitmix64, as the xoshiro authors recommend.
  uint64_t S = Seed;
  for (uint64_t &Word : State)
    Word = splitmix64(S);
}

uint64_t Rng::next() {
  // xoshiro256** 1.0.
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

double Rng::uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double Lo, double Hi) {
  assert(Lo <= Hi && "malformed uniform range");
  return Lo + (Hi - Lo) * uniform();
}

uint64_t Rng::uniformInt(uint64_t Bound) {
  assert(Bound > 0 && "uniformInt requires a positive bound");
  // Rejection sampling to avoid modulo bias.
  uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t R = next();
    if (R >= Threshold)
      return R % Bound;
  }
}

double Rng::gaussian() {
  if (HasSpareGaussian) {
    HasSpareGaussian = false;
    return SpareGaussian;
  }
  double U1 = uniform();
  double U2 = uniform();
  // Guard against log(0).
  if (U1 <= 0.0)
    U1 = 0x1.0p-53;
  double R = std::sqrt(-2.0 * std::log(U1));
  double Theta = 2.0 * M_PI * U2;
  SpareGaussian = R * std::sin(Theta);
  HasSpareGaussian = true;
  return R * std::cos(Theta);
}

double Rng::gaussian(double Mean, double Stddev) {
  return Mean + Stddev * gaussian();
}

bool Rng::bernoulli(double P) { return uniform() < P; }
