//===- support/MemoryUsage.cpp - Memory accounting -------------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "support/MemoryUsage.h"

#include <cstdio>
#include <cstring>

using namespace antidote;

static uint64_t readProcStatusKb(const char *Key) {
  std::FILE *F = std::fopen("/proc/self/status", "r");
  if (!F)
    return 0;
  char Line[256];
  uint64_t ValueKb = 0;
  size_t KeyLen = std::strlen(Key);
  while (std::fgets(Line, sizeof(Line), F)) {
    if (std::strncmp(Line, Key, KeyLen) != 0)
      continue;
    unsigned long long Kb = 0;
    if (std::sscanf(Line + KeyLen, ": %llu kB", &Kb) == 1)
      ValueKb = Kb;
    break;
  }
  std::fclose(F);
  return ValueKb * 1024;
}

uint64_t antidote::processPeakRssBytes() {
  // Some container kernels omit VmHWM; fall back to the current RSS so the
  // reports still carry a usable number.
  uint64_t Peak = readProcStatusKb("VmHWM");
  return Peak ? Peak : readProcStatusKb("VmRSS");
}

uint64_t antidote::processCurrentRssBytes() {
  return readProcStatusKb("VmRSS");
}
