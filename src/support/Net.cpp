//===- support/Net.cpp - Socket and event-loop primitives ---------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "support/Net.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace antidote;

void FdHandle::reset(int NewFd) {
  if (Fd >= 0)
    ::close(Fd);
  Fd = NewFd;
}

bool antidote::setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

ListenResult antidote::listenTcpLoopback(uint16_t Port, int Backlog) {
  ListenResult Result;
  FdHandle Sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!Sock.valid()) {
    Result.Error = std::string("socket: ") + std::strerror(errno);
    return Result;
  }
  int One = 1;
  ::setsockopt(Sock.get(), SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(Sock.get(), reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) != 0) {
    Result.Error = std::string("bind 127.0.0.1:") + std::to_string(Port) +
                   ": " + std::strerror(errno);
    return Result;
  }
  if (::listen(Sock.get(), Backlog) != 0) {
    Result.Error = std::string("listen: ") + std::strerror(errno);
    return Result;
  }
  // Port-0 readback: publish the port the kernel actually assigned.
  socklen_t Len = sizeof(Addr);
  if (::getsockname(Sock.get(), reinterpret_cast<sockaddr *>(&Addr),
                    &Len) != 0) {
    Result.Error = std::string("getsockname: ") + std::strerror(errno);
    return Result;
  }
  if (!setNonBlocking(Sock.get())) {
    Result.Error = std::string("fcntl O_NONBLOCK: ") + std::strerror(errno);
    return Result;
  }
  Result.Port = ntohs(Addr.sin_port);
  Result.Fd = std::move(Sock);
  return Result;
}

FdHandle antidote::connectTcpLoopback(uint16_t Port) {
  FdHandle Sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!Sock.valid())
    return FdHandle();
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::connect(Sock.get(), reinterpret_cast<sockaddr *>(&Addr),
                sizeof(Addr)) != 0)
    return FdHandle();
  // Request frames are small and latency-sensitive; don't Nagle them.
  int One = 1;
  ::setsockopt(Sock.get(), IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return Sock;
}

FdHandle antidote::connectTcp(const std::string &Host, uint16_t Port,
                              std::string &Error) {
  addrinfo Hints;
  std::memset(&Hints, 0, sizeof(Hints));
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  addrinfo *Results = nullptr;
  std::string PortStr = std::to_string(Port);
  int Rc = ::getaddrinfo(Host.c_str(), PortStr.c_str(), &Hints, &Results);
  if (Rc != 0) {
    Error = "cannot resolve '" + Host + "': " + ::gai_strerror(Rc);
    return FdHandle();
  }
  FdHandle Sock;
  int LastErrno = 0;
  for (addrinfo *AI = Results; AI; AI = AI->ai_next) {
    Sock.reset(::socket(AI->ai_family, AI->ai_socktype | SOCK_CLOEXEC,
                        AI->ai_protocol));
    if (!Sock.valid()) {
      LastErrno = errno;
      continue;
    }
    if (::connect(Sock.get(), AI->ai_addr, AI->ai_addrlen) == 0)
      break;
    LastErrno = errno;
    Sock.reset();
  }
  ::freeaddrinfo(Results);
  if (!Sock.valid()) {
    Error = "cannot connect to " + Host + ":" + PortStr + ": " +
            std::strerror(LastErrno ? LastErrno : ECONNREFUSED);
    return FdHandle();
  }
  int One = 1;
  ::setsockopt(Sock.get(), IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  Error.clear();
  return Sock;
}

Epoll::Epoll() : Fd(::epoll_create1(EPOLL_CLOEXEC)) {}

bool Epoll::add(int TargetFd, uint64_t Data, bool Write) {
  epoll_event Ev;
  std::memset(&Ev, 0, sizeof(Ev));
  Ev.events = EPOLLIN | (Write ? EPOLLOUT : 0u);
  Ev.data.u64 = Data;
  return ::epoll_ctl(Fd.get(), EPOLL_CTL_ADD, TargetFd, &Ev) == 0;
}

bool Epoll::mod(int TargetFd, uint64_t Data, bool Write) {
  epoll_event Ev;
  std::memset(&Ev, 0, sizeof(Ev));
  Ev.events = EPOLLIN | (Write ? EPOLLOUT : 0u);
  Ev.data.u64 = Data;
  return ::epoll_ctl(Fd.get(), EPOLL_CTL_MOD, TargetFd, &Ev) == 0;
}

void Epoll::del(int TargetFd) {
  ::epoll_ctl(Fd.get(), EPOLL_CTL_DEL, TargetFd, nullptr);
}

bool Epoll::wait(std::vector<EpollEvent> &Out, int TimeoutMillis) {
  Out.clear();
  epoll_event Events[64];
  int N = ::epoll_wait(Fd.get(), Events, 64, TimeoutMillis);
  if (N < 0)
    return errno == EINTR; // A signal is not an event-loop failure.
  Out.reserve(static_cast<size_t>(N));
  for (int I = 0; I < N; ++I) {
    EpollEvent E;
    E.Data = Events[I].data.u64;
    E.Readable = (Events[I].events & EPOLLIN) != 0;
    E.Writable = (Events[I].events & EPOLLOUT) != 0;
    E.Closed = (Events[I].events & (EPOLLHUP | EPOLLERR)) != 0;
    Out.push_back(E);
  }
  return true;
}

WakeFd::WakeFd() : Fd(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) {}

void WakeFd::signal() {
  uint64_t One = 1;
  // A full counter (EAGAIN) already guarantees a pending wakeup.
  ssize_t Ignored = ::write(Fd.get(), &One, sizeof(One));
  (void)Ignored;
}

void WakeFd::drain() {
  uint64_t Count = 0;
  ssize_t Ignored = ::read(Fd.get(), &Count, sizeof(Count));
  (void)Ignored;
}
