//===- support/Budget.cpp - Cancellation and resource budgets -----------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "support/Budget.h"

#include <cassert>

using namespace antidote;

const char *antidote::budgetOutcomeName(BudgetOutcome Outcome) {
  switch (Outcome) {
  case BudgetOutcome::Ok:
    return "ok";
  case BudgetOutcome::Cancelled:
    return "cancelled";
  case BudgetOutcome::Timeout:
    return "timeout";
  case BudgetOutcome::ResourceLimit:
    return "resource-limit";
  }
  assert(false && "unknown budget outcome");
  return "?";
}

void CancellationToken::cancel(BudgetOutcome WithReason) {
  assert(WithReason != BudgetOutcome::Ok && "cancelling with reason Ok");
  uint8_t Expected = static_cast<uint8_t>(BudgetOutcome::Ok);
  // First cancellation wins; concurrent cancels with other reasons no-op.
  Reason.compare_exchange_strong(Expected,
                                 static_cast<uint8_t>(WithReason),
                                 std::memory_order_acq_rel);
}
