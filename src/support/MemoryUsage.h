//===- support/MemoryUsage.h - Memory accounting ---------------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memory metrics for the Figure 7-11 reproductions.
///
/// The paper plots "average max memory" per verification instance. We track
/// two metrics: the process-wide peak RSS (VmHWM, matching what the authors
/// measured, but not resettable per instance) and a deterministic per-run
/// "live abstract-state bytes" counter maintained by the abstract learner,
/// which is what the bench harness plots.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_SUPPORT_MEMORYUSAGE_H
#define ANTIDOTE_SUPPORT_MEMORYUSAGE_H

#include <cstdint>

namespace antidote {

/// Process peak resident set size in bytes (Linux VmHWM), or 0 when the
/// probe is unavailable.
uint64_t processPeakRssBytes();

/// Process current resident set size in bytes (Linux VmRSS), or 0 when the
/// probe is unavailable.
uint64_t processCurrentRssBytes();

} // namespace antidote

#endif // ANTIDOTE_SUPPORT_MEMORYUSAGE_H
