//===- support/ThreadPool.cpp - Fixed-size worker pool ------------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <memory>

using namespace antidote;

ThreadPool::ThreadPool(unsigned NumWorkers) {
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  assert(!Workers.empty() && "submitting to a worker-less pool");
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    assert(!Stopping && "submitting to a stopping pool");
    Queue.push_back(std::move(Task));
  }
  WorkAvailable.notify_one();
}

unsigned ThreadPool::hardwareConcurrency() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
  }
}

void antidote::parallelFor(ThreadPool *Pool, size_t Count,
                           const std::function<void(size_t)> &Body) {
  if (!Pool || Pool->size() == 0 || Count <= 1) {
    for (size_t I = 0; I < Count; ++I)
      Body(I);
    return;
  }

  // Self-scheduling: every executor (each pool worker plus the calling
  // thread) repeatedly claims the next unclaimed index. The shared state
  // outlives the call only until the last helper decrements Pending, which
  // happens before this function returns, so capturing Body by reference
  // is safe.
  struct SharedState {
    std::atomic<size_t> Next{0};
    std::mutex Mutex;
    std::condition_variable Done;
    size_t Pending = 0;
  };
  auto State = std::make_shared<SharedState>();

  auto Drain = [State, &Body, Count] {
    for (size_t I; (I = State->Next.fetch_add(1)) < Count;)
      Body(I);
  };

  size_t NumHelpers = std::min<size_t>(Pool->size(), Count - 1);
  State->Pending = NumHelpers;
  for (size_t I = 0; I < NumHelpers; ++I)
    Pool->submit([State, Drain] {
      Drain();
      std::lock_guard<std::mutex> Lock(State->Mutex);
      if (--State->Pending == 0)
        State->Done.notify_all();
    });

  Drain();
  std::unique_lock<std::mutex> Lock(State->Mutex);
  State->Done.wait(Lock, [&State] { return State->Pending == 0; });
}

std::unique_ptr<ThreadPool> antidote::makeVerificationPool(unsigned Jobs) {
  if (Jobs == 0)
    Jobs = ThreadPool::hardwareConcurrency();
  Jobs = std::min(Jobs, 16u * ThreadPool::hardwareConcurrency());
  if (Jobs <= 1)
    return nullptr;
  return std::make_unique<ThreadPool>(Jobs - 1);
}
