//===- support/ThreadPool.cpp - Fixed-size worker pool ------------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <limits>
#include <memory>

using namespace antidote;

ThreadPool::ThreadPool(unsigned NumWorkers) {
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  assert(!Workers.empty() && "submitting to a worker-less pool");
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    assert(!Stopping && "submitting to a stopping pool");
    Queue.push_back(std::move(Task));
  }
  WorkAvailable.notify_one();
}

unsigned ThreadPool::hardwareConcurrency() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
  }
}

void antidote::parallelFor(ThreadPool *Pool, size_t Count,
                           const std::function<void(size_t)> &Body) {
  if (!Pool || Pool->size() == 0 || Count <= 1) {
    for (size_t I = 0; I < Count; ++I)
      Body(I);
    return;
  }

  // Self-scheduling: every executor (each pool worker plus the calling
  // thread) repeatedly claims the next unclaimed index. The shared state
  // outlives the call only until the last helper decrements Pending, which
  // happens before this function returns, so capturing Body by reference
  // is safe.
  struct SharedState {
    std::atomic<size_t> Next{0};
    std::mutex Mutex;
    std::condition_variable Done;
    size_t Pending = 0;
  };
  auto State = std::make_shared<SharedState>();

  auto Drain = [State, &Body, Count] {
    for (size_t I; (I = State->Next.fetch_add(1)) < Count;)
      Body(I);
  };

  size_t NumHelpers = std::min<size_t>(Pool->size(), Count - 1);
  State->Pending = NumHelpers;
  for (size_t I = 0; I < NumHelpers; ++I)
    Pool->submit([State, Drain] {
      Drain();
      std::lock_guard<std::mutex> Lock(State->Mutex);
      if (--State->Pending == 0)
        State->Done.notify_all();
    });

  Drain();
  std::unique_lock<std::mutex> Lock(State->Mutex);
  State->Done.wait(Lock, [&State] { return State->Pending == 0; });
}

//===----------------------------------------------------------------------===//
// OrderedFanout
//===----------------------------------------------------------------------===//

/// Shared between the constructing thread and the worker tasks; the tasks
/// hold a shared_ptr so the allocation outlives whichever side finishes
/// last, but the destructor still joins the workers because Body captures
/// the caller's stack.
struct OrderedFanout::State {
  /// Per-item claim handshake. Unclaimed -> Claimed is won by exactly one
  /// executor (CAS); the Ready store releases the item's result to the
  /// consumer's acquire load in awaitItem.
  enum ItemStatus : uint8_t { Unclaimed = 0, Claimed = 1, Ready = 2 };

  std::function<void(size_t)> Body;
  size_t Count = 0;
  size_t ChunkSize = 1;
  std::unique_ptr<std::atomic<uint8_t>[]> Status;
  std::atomic<size_t> Cursor{0};

  /// Relaxed is enough: the flag is a pure go-faster hint (skipped items
  /// are by construction never awaited), never a correctness signal.
  std::atomic<bool> Skip{false};

  std::mutex Mutex;
  std::condition_variable HelpersDone;

  /// Helper tasks currently *executing* drainChunks. Tasks still queued on
  /// the pool are not counted: once Stopping is set they exit on entry
  /// without touching Body, so teardown never waits on the pool's queue —
  /// the property that lets fan-outs nest on one pool (a worker tearing
  /// down an inner fan-out must not wait for helper tasks queued behind
  /// the outer tasks its sibling workers are executing).
  size_t ActiveHelpers = 0;
  bool Stopping = false; ///< Guarded by Mutex; set once at teardown.

  /// First item index the workers may NOT claim yet (size_t max when the
  /// window is unbounded). Guarded by Mutex; the consumer advances it as
  /// it awaits items and signals HorizonAdvanced.
  size_t Horizon = 0;
  std::condition_variable HorizonAdvanced;

  // Consumer-thread-only bookkeeping (no synchronization needed).
  size_t WindowItems = 0;        ///< 0 = unbounded.
  size_t PublishedHorizon = 0;   ///< Last Horizon value written.
  size_t HelpCursor = 0;         ///< Next index the consumer helps from.

  /// One worker's life: claim chunks until the cursor runs dry or the
  /// consumer cancels, claiming each index of a chunk individually so the
  /// consumer can compute not-yet-claimed items inline. A chunk at or
  /// past the claim horizon is not forfeited — the worker sleeps until
  /// the consumer's progress moves the horizon over it.
  void drainChunks() {
    while (!Skip.load(std::memory_order_relaxed)) {
      size_t Begin = Cursor.fetch_add(ChunkSize, std::memory_order_relaxed);
      if (Begin >= Count)
        return;
      {
        std::unique_lock<std::mutex> Lock(Mutex);
        HorizonAdvanced.wait(Lock, [this, Begin] {
          return Skip.load(std::memory_order_relaxed) || Begin < Horizon;
        });
      }
      if (Skip.load(std::memory_order_relaxed))
        return;
      size_t End = std::min(Count, Begin + ChunkSize);
      for (size_t I = Begin; I < End; ++I) {
        uint8_t Expected = Unclaimed;
        if (Status[I].compare_exchange_strong(Expected, Claimed,
                                              std::memory_order_acquire)) {
          Body(I);
          Status[I].store(Ready, std::memory_order_release);
        }
      }
    }
  }

  /// Consumer-side help while waiting on a claimed item: claim and
  /// compute one later unclaimed item (within the horizon, which cannot
  /// advance while the consumer is here). Returns false when nothing is
  /// claimable, i.e. everything up to the horizon is claimed or done.
  bool helpOne() {
    size_t Limit = std::min(Count, PublishedHorizon);
    while (HelpCursor < Limit) {
      size_t J = HelpCursor++;
      uint8_t Expected = Unclaimed;
      if (Status[J].compare_exchange_strong(Expected, Claimed,
                                            std::memory_order_acquire)) {
        Body(J);
        Status[J].store(Ready, std::memory_order_release);
        return true;
      }
    }
    return false;
  }
};

OrderedFanout::OrderedFanout(ThreadPool *Pool, size_t Count, size_t ChunkSize,
                             std::function<void(size_t)> Body,
                             size_t WindowChunks, size_t MaxHelpers)
    : S(std::make_shared<State>()) {
  size_t Helpers = std::min<size_t>(Pool ? Pool->size() : 0, MaxHelpers);
  if (ChunkSize == 0) {
    // A few chunks per executor balances imbalanced item costs against
    // cursor traffic; 64 caps the tail a cancel can no longer skip.
    ChunkSize = std::min<size_t>(64, std::max<size_t>(
        1, Count / (4 * (Helpers + 1))));
  }
  S->Body = std::move(Body);
  S->Count = Count;
  S->ChunkSize = std::max<size_t>(1, ChunkSize);
  S->WindowItems = WindowChunks ? WindowChunks * S->ChunkSize : 0;
  S->Horizon = S->WindowItems ? S->WindowItems
                              : std::numeric_limits<size_t>::max();
  S->PublishedHorizon = S->Horizon;
  S->Status.reset(new std::atomic<uint8_t>[Count]);
  for (size_t I = 0; I < Count; ++I)
    S->Status[I].store(State::Unclaimed, std::memory_order_relaxed);

  size_t NumChunks = (Count + S->ChunkSize - 1) / S->ChunkSize;
  // One drain task per worker; the consumer thread is the extra executor,
  // so a single-chunk fan-out needs no helper at all.
  Helpers = std::min(Helpers, NumChunks > 0 ? NumChunks - 1 : 0);
  for (size_t I = 0; I < Helpers; ++I)
    Pool->submit([State = S] {
      {
        // Count this helper as active only if teardown has not begun; a
        // task drained from the queue after that must never call Body
        // (the caller's stack it captures may be gone).
        std::lock_guard<std::mutex> Lock(State->Mutex);
        if (State->Stopping)
          return;
        ++State->ActiveHelpers;
      }
      State->drainChunks();
      std::lock_guard<std::mutex> Lock(State->Mutex);
      if (--State->ActiveHelpers == 0)
        State->HelpersDone.notify_all();
    });
}

OrderedFanout::~OrderedFanout() {
  cancelRemaining();
  std::unique_lock<std::mutex> Lock(S->Mutex);
  S->Stopping = true;
  S->HelpersDone.wait(Lock, [this] { return S->ActiveHelpers == 0; });
}

void OrderedFanout::awaitItem(size_t I) {
  assert(I < S->Count && "awaiting an out-of-range item");
  // Bounded window: consuming item I entitles the workers to claim up to
  // I + WindowItems. Publishing (mutex + notify) once per chunk's worth
  // of progress keeps the consumer's fast path lock-free.
  if (S->WindowItems) {
    size_t NewHorizon = std::min(S->Count, I + S->WindowItems);
    if (NewHorizon >= S->PublishedHorizon + S->ChunkSize ||
        (NewHorizon == S->Count && NewHorizon > S->PublishedHorizon)) {
      std::lock_guard<std::mutex> Lock(S->Mutex);
      S->Horizon = NewHorizon;
      S->PublishedHorizon = NewHorizon;
      S->HorizonAdvanced.notify_all();
    }
  }

  std::atomic<uint8_t> &St = S->Status[I];
  uint8_t Expected = State::Unclaimed;
  if (St.compare_exchange_strong(Expected, State::Claimed,
                                 std::memory_order_acquire)) {
    // The workers have not reached this item: compute it here. No Ready
    // store is needed for our own read, but workers skip Claimed items
    // either way, and nobody else awaits it.
    S->Body(I);
    St.store(State::Ready, std::memory_order_release);
    return;
  }
  // A worker owns it; its Ready store releases the result. Rather than
  // spin, help forward on later unclaimed items; fall back to yielding
  // when everything claimable is taken, so a starved pool — e.g. a
  // frontier fan-out sharing workers with other in-flight verifications —
  // cannot deadlock the consumer, only slow it down.
  while (St.load(std::memory_order_acquire) != State::Ready)
    if (!S->helpOne())
      std::this_thread::yield();
}

void OrderedFanout::cancelRemaining() {
  if (S->Skip.exchange(true, std::memory_order_relaxed))
    return;
  // Wake workers parked at the horizon so they can observe Skip and exit.
  std::lock_guard<std::mutex> Lock(S->Mutex);
  S->HorizonAdvanced.notify_all();
}

std::unique_ptr<ThreadPool> antidote::makeVerificationPool(unsigned Jobs) {
  if (Jobs == 0)
    Jobs = ThreadPool::hardwareConcurrency();
  Jobs = std::min(Jobs, 16u * ThreadPool::hardwareConcurrency());
  if (Jobs <= 1)
    return nullptr;
  return std::make_unique<ThreadPool>(Jobs - 1);
}

unsigned antidote::sharedFanoutJobs(unsigned FrontierJobs,
                                    unsigned SplitJobs) {
  unsigned HW = ThreadPool::hardwareConcurrency();
  unsigned Frontier = FrontierJobs == 0 ? HW : FrontierJobs;
  unsigned Split = SplitJobs == 0 ? HW : SplitJobs;
  return std::max(Frontier, Split);
}
