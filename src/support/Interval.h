//===- support/Interval.h - Interval arithmetic domain ---------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standard intervals abstract domain over the reals (paper §4.2).
///
/// Antidote uses intervals to overapproximate the sets of numerical values
/// (class probabilities, Gini impurities, split scores) that arise when a
/// decision-tree learner is run on every training set in a perturbed set
/// ∆n(T). All transformers in `abstract/` bottom out in the operations
/// defined here.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_SUPPORT_INTERVAL_H
#define ANTIDOTE_SUPPORT_INTERVAL_H

#include <cassert>
#include <cstddef>
#include <string>

namespace antidote {

/// A closed real interval [Lo, Hi], with Lo <= Hi, plus a distinguished
/// empty (bottom) element.
///
/// The arithmetic operations implement the usual sound interval lifting:
/// the result of `A op B` contains {a op b | a in A, b in B}. Occurrences
/// of the same variable are treated independently, exactly as the paper's
/// "natural lifting" does (see footnote 6), so e.g. `x * (1 - x)` computed
/// through intervals may be wider than the optimal image.
class Interval {
public:
  /// Constructs the empty interval (bottom).
  Interval() : Lo(1.0), Hi(0.0), Empty(true) {}

  /// Constructs the singleton interval [V, V].
  explicit Interval(double V) : Lo(V), Hi(V), Empty(false) {}

  /// Constructs [Lo, Hi]; requires Lo <= Hi.
  Interval(double Lo, double Hi) : Lo(Lo), Hi(Hi), Empty(false) {
    assert(Lo <= Hi && "malformed interval");
  }

  static Interval makeEmpty() { return Interval(); }

  bool isEmpty() const { return Empty; }

  double lb() const {
    assert(!Empty && "lower bound of empty interval");
    return Lo;
  }
  double ub() const {
    assert(!Empty && "upper bound of empty interval");
    return Hi;
  }

  /// True iff this interval is the single point [V, V].
  bool isSingleton() const { return !Empty && Lo == Hi; }

  bool contains(double V) const { return !Empty && Lo <= V && V <= Hi; }

  /// True iff every point of \p Other is contained in this interval.
  bool containsInterval(const Interval &Other) const {
    if (Other.Empty)
      return true;
    return !Empty && Lo <= Other.Lo && Other.Hi <= Hi;
  }

  bool operator==(const Interval &Other) const {
    if (Empty || Other.Empty)
      return Empty == Other.Empty;
    return Lo == Other.Lo && Hi == Other.Hi;
  }
  bool operator!=(const Interval &Other) const { return !(*this == Other); }

  /// Least upper bound: the smallest interval containing both operands.
  Interval join(const Interval &Other) const;

  /// Greatest lower bound: the intersection (possibly empty).
  Interval meet(const Interval &Other) const;

  Interval operator+(const Interval &Other) const;
  Interval operator-(const Interval &Other) const;
  Interval operator*(const Interval &Other) const;

  /// Interval division. Requires the divisor to exclude zero; callers in
  /// the abstract `cprob#` transformer guard the degenerate `n = |T|`
  /// case explicitly (paper §4.4).
  Interval operator/(const Interval &Other) const;

  /// Clamps both endpoints into [Lo, Hi] of \p Bounds; used to intersect
  /// probability intervals with [0, 1] where the semantics guarantees it.
  Interval clamp(const Interval &Bounds) const;

  /// Renders "[lo, hi]" (or "⊥") for diagnostics and reports.
  std::string str() const;

private:
  double Lo;
  double Hi;
  bool Empty;
};

//===----------------------------------------------------------------------===//
// Slice-wise interval algebra
//===----------------------------------------------------------------------===//
//
// The vectorized kernels keep families of intervals in struct-of-arrays
// form — one flat `double` slice of lower bounds plus one of upper bounds —
// instead of arrays of `Interval` objects, so elementwise lattice ops are
// branch-free min/max loops the compiler can vectorize. Empty elements are
// not representable in slice form; every element must be a genuine [lo, hi]
// with lo <= hi (which all probability/score slices guarantee).

/// Elementwise join: `Out{Lo,Hi}[i] = [min(ALo[i], BLo[i]),
/// max(AHi[i], BHi[i])]` for `i < N`. Output slices may alias A's.
void joinSlices(const double *ALo, const double *AHi, const double *BLo,
                const double *BHi, double *OutLo, double *OutHi, size_t N);

/// Elementwise meet: `Out{Lo,Hi}[i] = [max(ALo[i], BLo[i]),
/// min(AHi[i], BHi[i])]` for `i < N`. An empty intersection surfaces as
/// `OutLo[i] > OutHi[i]` (the caller's bottom test). Output slices may
/// alias A's.
void meetSlices(const double *ALo, const double *AHi, const double *BLo,
                const double *BHi, double *OutLo, double *OutHi, size_t N);

} // namespace antidote

#endif // ANTIDOTE_SUPPORT_INTERVAL_H
