//===- support/Net.h - Socket and event-loop primitives --------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thin OS layer under the network serving tier (serving/NetServer.h):
/// RAII file descriptors, loopback TCP listen/connect with the port-0
/// readback idiom (bind port 0, ask the kernel which port it picked — the
/// only reliable way to run many test servers on one CI machine without
/// bind races; see KNOWN_FAILURES.md), a minimal `epoll` wrapper, and an
/// `eventfd`-backed waker so non-epoll threads (batch-pool workers
/// completing verifications) can nudge the event loop.
///
/// Everything here is Linux-flavored (`epoll`, `eventfd`) like the rest of
/// the serving tier's CI; nothing outside serving/ and the network tests
/// includes this header.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_SUPPORT_NET_H
#define ANTIDOTE_SUPPORT_NET_H

#include <cstdint>
#include <string>
#include <vector>

namespace antidote {

/// A move-only owning file descriptor; closes on destruction. -1 = empty.
class FdHandle {
public:
  FdHandle() = default;
  explicit FdHandle(int Fd) : Fd(Fd) {}
  ~FdHandle() { reset(); }

  FdHandle(FdHandle &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }
  FdHandle &operator=(FdHandle &&O) noexcept {
    if (this != &O) {
      reset();
      Fd = O.Fd;
      O.Fd = -1;
    }
    return *this;
  }
  FdHandle(const FdHandle &) = delete;
  FdHandle &operator=(const FdHandle &) = delete;

  int get() const { return Fd; }
  bool valid() const { return Fd >= 0; }

  /// Closes the held descriptor (if any) and adopts \p NewFd.
  void reset(int NewFd = -1);

  /// Releases ownership without closing.
  int release() {
    int Out = Fd;
    Fd = -1;
    return Out;
  }

private:
  int Fd = -1;
};

/// Puts \p Fd into non-blocking mode. Returns false on fcntl failure.
bool setNonBlocking(int Fd);

/// A bound-and-listening loopback TCP socket. `Port` is the *actual*
/// port after readback, so callers may request port 0 and publish what
/// the kernel assigned — the CI smoke and every network test do exactly
/// this to dodge bind collisions between parallel jobs.
struct ListenResult {
  FdHandle Fd;          ///< Invalid on failure.
  uint16_t Port = 0;    ///< Kernel-assigned when 0 was requested.
  std::string Error;    ///< Human-readable reason on failure.
  bool ok() const { return Fd.valid(); }
};

/// Binds 127.0.0.1:\p Port (0 = ephemeral), listens, reads the bound
/// port back via getsockname, and returns the non-blocking socket.
/// SO_REUSEADDR is set so a quickly restarted server does not trip over
/// its predecessor's TIME_WAIT entries.
ListenResult listenTcpLoopback(uint16_t Port, int Backlog = 128);

/// Connects a *blocking* TCP socket to 127.0.0.1:\p Port (the harness
/// and CLI client side; the server side never connects). Invalid handle
/// on failure.
FdHandle connectTcpLoopback(uint16_t Port);

/// Connects a *blocking* TCP socket to \p Host:\p Port, resolving the
/// host via getaddrinfo (names and dotted quads alike, every resolved
/// address tried in order) — the cross-machine flavour the replication
/// puller uses. Invalid handle on failure, with \p Error naming why.
FdHandle connectTcp(const std::string &Host, uint16_t Port,
                    std::string &Error);

/// One readiness event out of `Epoll::wait`.
struct EpollEvent {
  uint64_t Data = 0; ///< The caller's cookie from add/mod.
  bool Readable = false;
  bool Writable = false;
  bool Closed = false; ///< HUP/ERR — peer gone or socket broken.
};

/// Minimal `epoll` wrapper: register fds with a caller cookie, wait for
/// readiness. No ownership of registered fds.
class Epoll {
public:
  Epoll();
  bool valid() const { return Fd.valid(); }

  /// \p Write requests EPOLLOUT in addition to EPOLLIN.
  bool add(int Fd, uint64_t Data, bool Write = false);
  bool mod(int Fd, uint64_t Data, bool Write);
  void del(int Fd);

  /// Blocks up to \p TimeoutMillis (-1 = forever) and appends ready
  /// events to \p Out (cleared first). Returns false on a non-EINTR
  /// wait failure.
  bool wait(std::vector<EpollEvent> &Out, int TimeoutMillis);

private:
  FdHandle Fd;
};

/// An `eventfd` the event loop sleeps on: any thread calls `signal()`,
/// the loop observes readability and calls `drain()`. Coalesces bursts
/// (eventfd is a counter, not a queue).
class WakeFd {
public:
  WakeFd();
  bool valid() const { return Fd.valid(); }
  int fd() const { return Fd.get(); }

  /// Async-signal- and thread-safe nudge.
  void signal();

  /// Consumes pending signals; call once per readiness notification.
  void drain();

private:
  FdHandle Fd;
};

} // namespace antidote

#endif // ANTIDOTE_SUPPORT_NET_H
