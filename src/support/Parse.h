//===- support/Parse.h - Checked numeric argument parsing ------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checked end-to-end numeric parsing for CLI flags and environment
/// variables — the shared replacement for bare `std::atoi`, which turns
/// `--depth foo` into 0 and lets out-of-range values wrap through the
/// unsigned casts at the call sites. A parse succeeds only if the *whole*
/// string is one in-range number; anything else is `std::nullopt`, and
/// the CLIs turn that into an error message naming the offending flag.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_SUPPORT_PARSE_H
#define ANTIDOTE_SUPPORT_PARSE_H

#include <cstdint>
#include <optional>
#include <string>

namespace antidote {

/// Parses \p Text as a base-10 unsigned integer in [0, Max]. Rejects empty
/// strings, signs, whitespace, trailing garbage, and overflow.
std::optional<uint64_t>
parseUnsignedArg(const std::string &Text,
                 uint64_t Max = static_cast<uint64_t>(-1));

/// Parses \p Text as a finite double. Rejects empty strings, trailing
/// garbage, overflow, and nan/inf.
std::optional<double> parseDoubleArg(const std::string &Text);

} // namespace antidote

#endif // ANTIDOTE_SUPPORT_PARSE_H
