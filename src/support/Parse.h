//===- support/Parse.h - Checked numeric argument parsing ------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checked end-to-end numeric parsing for CLI flags and environment
/// variables — the shared replacement for bare `std::atoi`, which turns
/// `--depth foo` into 0 and lets out-of-range values wrap through the
/// unsigned casts at the call sites. A parse succeeds only if the *whole*
/// string is one in-range number; anything else is `std::nullopt`, and
/// the CLIs turn that into an error message naming the offending flag.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_SUPPORT_PARSE_H
#define ANTIDOTE_SUPPORT_PARSE_H

#include <cstdint>
#include <optional>
#include <string>

namespace antidote {

/// Parses \p Text as a base-10 unsigned integer in [0, Max]. Rejects empty
/// strings, signs, whitespace, trailing garbage, and overflow.
std::optional<uint64_t>
parseUnsignedArg(const std::string &Text,
                 uint64_t Max = static_cast<uint64_t>(-1));

/// Parses \p Text as a finite double. Rejects empty strings, trailing
/// garbage, overflow, and nan/inf.
std::optional<double> parseDoubleArg(const std::string &Text);

/// What reading a numeric environment variable found. CLI flags and their
/// env-var twins share one failure policy: garbage must error out loudly,
/// never silently become a default.
enum class EnvNumberStatus : uint8_t {
  Unset,     ///< Variable absent or empty; use the caller's default.
  Ok,        ///< Parsed; `Value` holds the result.
  Malformed, ///< Set but not one in-range unsigned integer.
};

struct EnvNumber {
  EnvNumberStatus Status = EnvNumberStatus::Unset;
  uint64_t Value = 0;
};

/// Reads environment variable \p Name through `parseUnsignedArg` with the
/// same strictness as the CLI flag parsers (whole string, base 10,
/// <= \p Max).
EnvNumber readUnsignedEnv(const char *Name,
                          uint64_t Max = static_cast<uint64_t>(-1));

/// `readUnsignedEnv` plus the one shared failure report: a malformed
/// value prints `error: NAME needs an unsigned integer (0 = <ZeroMeaning>),
/// got '...'` to stderr, so every front end rejects a typo'd env twin
/// with identical wording and keeps only its exit policy.
EnvNumber readUnsignedEnvReporting(const char *Name, const char *ZeroMeaning,
                                   uint64_t Max = static_cast<uint64_t>(-1));

/// Reads a free-form string environment variable (the twin of path-valued
/// flags like `--cache-dir`). `nullopt` when unset or empty — same
/// "absent means use the caller's default" convention as `EnvNumber`;
/// there is no malformed case, validation belongs to the consumer (e.g.
/// `DiskCertStore::open` rejecting an unusable directory loudly).
std::optional<std::string> readStringEnv(const char *Name);

} // namespace antidote

#endif // ANTIDOTE_SUPPORT_PARSE_H
