//===- support/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool for the embarrassingly parallel parts of the
/// §6 experiment protocol (per-instance verification fan-out).
///
/// Two layers:
///  - `ThreadPool` — N workers draining a shared FIFO of opaque tasks.
///  - `parallelFor` — the scheduling idiom all callers actually use: items
///    are claimed one at a time from a shared atomic cursor (self-
///    scheduling, the work-stealing-friendly discipline: an idle worker
///    always takes the globally next unclaimed item, so imbalanced item
///    costs never strand work behind a slow thread), with the calling
///    thread participating as the (N+1)-th worker. The call returns only
///    once every item has finished, and item indices are handed out in
///    order, so callers can aggregate results deterministically by index
///    regardless of thread count.
///
/// Tasks must not throw; the verifier reports failures through
/// `Certificate`/`BudgetOutcome` values, never exceptions.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_SUPPORT_THREADPOOL_H
#define ANTIDOTE_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace antidote {

/// A fixed-size pool of worker threads draining a shared task queue.
class ThreadPool {
public:
  /// Spawns \p NumWorkers workers (0 is allowed and makes `submit`
  /// illegal; `parallelFor` degrades to the serial path).
  explicit ThreadPool(unsigned NumWorkers);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues \p Task for execution on some worker. Tasks needing
  /// completion tracking bring their own latch (as `parallelFor` does).
  void submit(std::function<void()> Task);

  /// The machine's hardware thread count (at least 1).
  static unsigned hardwareConcurrency();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WorkAvailable; ///< Signalled on submit/stop.
  bool Stopping = false;
};

/// Runs `Body(0) ... Body(Count-1)` across \p Pool plus the calling thread,
/// returning once all have finished. Items are claimed from a shared atomic
/// cursor. With a null/empty pool (or fewer than two items) this is a plain
/// serial loop, so callers need no separate serial code path.
void parallelFor(ThreadPool *Pool, size_t Count,
                 const std::function<void(size_t)> &Body);

/// The one policy for turning a user-facing Jobs knob into a pool:
/// 0 means one executor per hardware thread, requests are clamped to 16x
/// the hardware threads (guarding against wrapped/absurd values), and the
/// pool gets Jobs-1 workers because the calling thread participates in
/// `parallelFor`. Returns null for Jobs == 1 (strictly serial).
std::unique_ptr<ThreadPool> makeVerificationPool(unsigned Jobs);

} // namespace antidote

#endif // ANTIDOTE_SUPPORT_THREADPOOL_H
