//===- support/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool for the embarrassingly parallel parts of the
/// §6 experiment protocol (per-instance verification fan-out).
///
/// Three layers:
///  - `ThreadPool` — N workers draining a shared FIFO of opaque tasks.
///  - `parallelFor` — the scheduling idiom batch callers use: items are
///    claimed one at a time from a shared atomic cursor (self-
///    scheduling, the work-stealing-friendly discipline: an idle worker
///    always takes the globally next unclaimed item, so imbalanced item
///    costs never strand work behind a slow thread), with the calling
///    thread participating as the (N+1)-th worker. The call returns only
///    once every item has finished, and item indices are handed out in
///    order, so callers can aggregate results deterministically by index
///    regardless of thread count.
///  - `OrderedFanout` — the work-chunk discipline behind the frontier-
///    parallel `DTrace#` (abstract/AbstractDTrace.cpp) and the per-feature
///    `bestSplit#` sharding (abstract/AbstractBestSplit.cpp): workers claim
///    contiguous *chunks* of item indices and compute them out of order
///    while the calling thread consumes results strictly in index order,
///    computing any item the workers have not claimed yet inline. The
///    consumer can cancel the not-yet-claimed remainder cooperatively
///    (workers poll a relaxed skip flag once per chunk), which is how a
///    refuted/over-budget frontier merge stops paying for disjuncts it
///    will never fold in.
///
/// Fan-outs may nest on one pool (a frontier transfer step running on a
/// worker opens its own split fan-out): the destructor only waits for
/// helper tasks that have *started*, never for ones still queued — a
/// queued helper that runs after teardown began exits without touching
/// the caller's stack. Without this, every worker could end up blocked
/// waiting for its own inner helper task, queued behind the very tasks
/// those workers are executing.
///
/// Tasks must not throw; the verifier reports failures through
/// `Certificate`/`BudgetOutcome` values, never exceptions.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_SUPPORT_THREADPOOL_H
#define ANTIDOTE_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace antidote {

/// A fixed-size pool of worker threads draining a shared task queue.
class ThreadPool {
public:
  /// Spawns \p NumWorkers workers (0 is allowed and makes `submit`
  /// illegal; `parallelFor` degrades to the serial path).
  explicit ThreadPool(unsigned NumWorkers);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues \p Task for execution on some worker. Tasks needing
  /// completion tracking bring their own latch (as `parallelFor` does).
  void submit(std::function<void()> Task);

  /// The machine's hardware thread count (at least 1).
  static unsigned hardwareConcurrency();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WorkAvailable; ///< Signalled on submit/stop.
  bool Stopping = false;
};

/// Runs `Body(0) ... Body(Count-1)` across \p Pool plus the calling thread,
/// returning once all have finished. Items are claimed from a shared atomic
/// cursor. With a null/empty pool (or fewer than two items) this is a plain
/// serial loop, so callers need no separate serial code path.
void parallelFor(ThreadPool *Pool, size_t Count,
                 const std::function<void(size_t)> &Body);

/// Computes `Body(0) ... Body(Count-1)` on \p Pool's workers while the
/// constructing thread consumes the results in index order via
/// `awaitItem(0..Count-1)`.
///
/// Workers claim contiguous chunks of up to \p ChunkSize indices from a
/// shared cursor (one cursor bump per chunk keeps contention negligible
/// even for very fine-grained items) and then claim each index in the
/// chunk individually, so the consumer can *also* compute an item inline
/// when it catches up with the workers — with a null/empty pool this
/// degrades to a plain serial loop in which `awaitItem(I)` simply runs
/// `Body(I)`, so callers need no separate serial code path.
///
/// `Body(I)` must publish item I's result into caller-owned storage (for
/// example a pre-sized results vector slot — writes are unique per index,
/// the claim handshake orders them before the consumer's read) and must
/// not throw. The consumer may stop early: `cancelRemaining()` asks the
/// workers to skip everything not yet claimed; it is checked once per
/// chunk, so at most one in-flight chunk per worker still completes. The
/// destructor cancels the remainder and blocks until every worker has
/// left, so `Body` may safely capture the caller's stack.
///
/// While the consumer waits for a worker-claimed item it helps forward —
/// claiming and computing later unclaimed items — so its core is never
/// wasted on a pure spin while work remains.
///
/// \p WindowChunks (0 = unbounded) caps how many chunks past the chunk
/// containing the last awaited item may be claimed, bounding how much
/// not-yet-consumed output can pile up. The frontier learner uses this
/// so a run that a budget cap would stop mid-merge cannot first
/// materialize the whole next frontier in memory: run-ahead is limited
/// to the window, and workers at the horizon sleep until the consumer
/// catches up (or cancels).
///
/// \p MaxHelpers caps how many of the pool's workers this fan-out
/// recruits, so several fan-out levels can share one pool without any
/// single level monopolizing it (the split sharding passes its
/// `SplitJobs - 1` here while the frontier level keeps the default).
class OrderedFanout {
public:
  /// Starts the fan-out. A \p ChunkSize of 0 picks a default that spreads
  /// \p Count over the executors a few chunks deep.
  OrderedFanout(ThreadPool *Pool, size_t Count, size_t ChunkSize,
                std::function<void(size_t)> Body, size_t WindowChunks = 0,
                size_t MaxHelpers = static_cast<size_t>(-1));

  /// Cancels the unclaimed remainder, then waits until no helper task is
  /// still *executing* Body. Helper tasks still queued on the pool are
  /// not waited for — once they eventually run they observe the teardown
  /// and exit without touching Body — so a pool worker may safely tear
  /// down a nested fan-out whose helpers are queued behind the very
  /// tasks the pool's workers are currently executing.
  ~OrderedFanout();

  OrderedFanout(const OrderedFanout &) = delete;
  OrderedFanout &operator=(const OrderedFanout &) = delete;

  /// Blocks until item \p I's Body has finished, running it inline when no
  /// worker has claimed it yet. Items must be awaited in ascending order
  /// (each at most once); callers stopping early just stop awaiting.
  void awaitItem(size_t I);

  /// Tells the workers to skip every item not yet claimed. Idempotent.
  /// Already-awaited items are unaffected; do not await further items.
  void cancelRemaining();

private:
  struct State;
  std::shared_ptr<State> S;
};

/// The one policy for turning a user-facing Jobs knob into a pool:
/// 0 means one executor per hardware thread, requests are clamped to 16x
/// the hardware threads (guarding against wrapped/absurd values), and the
/// pool gets Jobs-1 workers because the calling thread participates in
/// `parallelFor`. Returns null for Jobs == 1 (strictly serial).
std::unique_ptr<ThreadPool> makeVerificationPool(unsigned Jobs);

/// Resolves the executor count for the one pool shared by the frontier
/// (`FrontierJobs`) and split (`SplitJobs`) fan-out levels of a DTrace#
/// run: each knob resolves 0 to the hardware thread count, and the pool
/// is sized for the *wider* level, not their product — the levels share
/// executors (a transfer step's split shards run on the same workers as
/// its sibling disjuncts), and `FrontierJobs x SplitJobs` exceeding the
/// pool is safe because every fan-out consumer computes unclaimed work
/// inline instead of blocking.
unsigned sharedFanoutJobs(unsigned FrontierJobs, unsigned SplitJobs);

} // namespace antidote

#endif // ANTIDOTE_SUPPORT_THREADPOOL_H
