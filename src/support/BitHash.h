//===- support/BitHash.h - Bit-pattern hashing primitives ------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one home of the bit-pattern-identity policy shared by the dataset
/// fingerprint (data/Fingerprint.cpp) and the certificate cache's lookup
/// keys (serving/CertCache.cpp): floats and doubles are hashed and
/// compared by their *storage bits*, never their values, so 0.0 and -0.0
/// are distinct and NaN payloads neither collide nor choke a comparison.
/// Both consumers promise byte-identity of cached artifacts, which makes
/// this policy load-bearing — keep it here, in one place.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_SUPPORT_BITHASH_H
#define ANTIDOTE_SUPPORT_BITHASH_H

#include <cstdint>
#include <cstring>

namespace antidote {

/// The float's storage bits (memcpy, not a value conversion).
inline uint32_t floatBits(float V) {
  uint32_t Bits;
  static_assert(sizeof(Bits) == sizeof(V), "float is not 32-bit");
  std::memcpy(&Bits, &V, sizeof(Bits));
  return Bits;
}

/// The double's storage bits.
inline uint64_t doubleBits(double V) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V), "double is not 64-bit");
  std::memcpy(&Bits, &V, sizeof(Bits));
  return Bits;
}

/// splitmix64's finalizer: a full-avalanche 64-bit mix.
inline uint64_t splitmix64(uint64_t H) {
  H ^= H >> 30;
  H *= 0xbf58476d1ce4e5b9ULL;
  H ^= H >> 27;
  H *= 0x94d049bb133111ebULL;
  H ^= H >> 31;
  return H;
}

/// Folds one word into a running splitmix64-style accumulator (the
/// sequential-hash idiom both the cache key hash and test helpers use).
inline uint64_t mixBits(uint64_t H, uint64_t W) {
  return splitmix64(H + 0x9e3779b97f4a7c15ULL + W);
}

} // namespace antidote

#endif // ANTIDOTE_SUPPORT_BITHASH_H
