//===- support/Rng.h - Deterministic random number generation --*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fully deterministic PRNG (splitmix64 seeding + xoshiro256**).
///
/// Every synthetic dataset, train/test split, and randomized property test
/// in this repository draws from this generator so that runs are exactly
/// reproducible across machines and standard-library versions (std::mt19937
/// distributions are not portable across implementations).
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_SUPPORT_RNG_H
#define ANTIDOTE_SUPPORT_RNG_H

#include <cstdint>

namespace antidote {

/// Deterministic 64-bit PRNG with convenience distributions.
class Rng {
public:
  explicit Rng(uint64_t Seed);

  /// Next raw 64-bit value.
  uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [Lo, Hi).
  double uniform(double Lo, double Hi);

  /// Uniform integer in [0, Bound); requires Bound > 0.
  uint64_t uniformInt(uint64_t Bound);

  /// Standard normal via Box-Muller (deterministic given the stream).
  double gaussian();

  /// Normal with the given mean and standard deviation.
  double gaussian(double Mean, double Stddev);

  /// Bernoulli draw with success probability \p P.
  bool bernoulli(double P);

private:
  uint64_t State[4];
  bool HasSpareGaussian = false;
  double SpareGaussian = 0.0;
};

} // namespace antidote

#endif // ANTIDOTE_SUPPORT_RNG_H
