//===- support/Budget.h - Cancellation and resource budgets -----*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single home of the verifier's resource budgeting:
///
///  - `ResourceLimits` — the three knobs every budgeted run understands
///    (wall-clock timeout, live-disjunct cap, live-state-byte cap). Every
///    config struct embeds one of these instead of redeclaring the knobs.
///  - `CancellationToken` — a thread-safe cooperative stop flag shared
///    between a controller and any number of in-flight runs. The canceller
///    records *why* (plain cancellation, an external deadline, an external
///    resource monitor) so a stopped run can still report the paper's
///    Timeout / ResourceLimit outcomes faithfully.
///  - `ResourceMeter` — the per-run combination of the two: it owns the
///    run's deadline, watches the shared token, and is polled with the
///    current live-state levels from inside the abstract learner's depth
///    iterations (not just between them).
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_SUPPORT_BUDGET_H
#define ANTIDOTE_SUPPORT_BUDGET_H

#include "support/Timer.h"

#include <atomic>
#include <cstdint>

namespace antidote {

/// Why a budgeted computation was (or was not) stopped.
enum class BudgetOutcome : uint8_t {
  Ok,            ///< Within budget; keep going.
  Cancelled,     ///< Cooperatively cancelled by the controller.
  Timeout,       ///< Wall-clock budget exhausted.
  ResourceLimit, ///< Disjunct/state-byte cap exceeded (the paper's OOM).
};

const char *budgetOutcomeName(BudgetOutcome Outcome);

/// The resource knobs of a budgeted run. This struct is the *only* place
/// they are declared; `AbstractLearnerConfig`, `VerifierConfig`,
/// `SweepConfig`, and `LabelFlipConfig` all embed it, and the serving
/// layer's `CertCache` draws its retention budget from it.
struct ResourceLimits {
  /// Per-run wall-clock budget in seconds (the paper uses 3600 s; §6.1).
  /// 0 disables.
  double TimeoutSeconds = 0.0;

  /// Cap on live disjuncts, standing in for the paper's 160 GB OOM bound.
  /// 0 disables.
  size_t MaxDisjuncts = 1u << 20;

  /// Cap on live abstract-state bytes. 0 disables.
  uint64_t MaxStateBytes = 0;

  /// Cap on bytes a certificate cache built from these limits may retain
  /// (LRU eviction; see serving/CertCache.h). Unlike the three caps
  /// above it never stops a run — it only bounds what is *remembered*
  /// between runs — and it does not enter the cache's lookup key. 0
  /// disables the cap (unbounded retention).
  uint64_t MaxCacheBytes = 0;
};

/// A shared cooperative-cancellation flag. One controller cancels; any
/// number of runs (possibly on other threads) poll `cancelled()` and wind
/// down at the next checkpoint. The first cancellation's reason sticks, so
/// a run stopped by an external deadline still reports Timeout and one
/// stopped by an external resource monitor still reports ResourceLimit.
class CancellationToken {
public:
  /// Requests cancellation. \p Reason must not be `Ok`; later calls with a
  /// different reason are ignored.
  void cancel(BudgetOutcome Reason = BudgetOutcome::Cancelled);

  bool cancelled() const {
    return Reason.load(std::memory_order_relaxed) !=
           static_cast<uint8_t>(BudgetOutcome::Ok);
  }

  /// The first cancellation's reason, or `Ok` when not cancelled.
  BudgetOutcome reason() const {
    return static_cast<BudgetOutcome>(Reason.load(std::memory_order_acquire));
  }

private:
  std::atomic<uint8_t> Reason{static_cast<uint8_t>(BudgetOutcome::Ok)};
};

/// The per-run budget monitor: a deadline started at construction, the
/// embedded `ResourceLimits`, and an optional shared `CancellationToken`.
/// Long-running loops poll `check()` with their live-state levels, or the
/// cheaper `interrupted()` where no levels are at hand (inner transformer
/// loops).
class ResourceMeter {
public:
  explicit ResourceMeter(const ResourceLimits &Limits,
                         const CancellationToken *Cancel = nullptr)
      : Limits(Limits), Cancel(Cancel), Clock(Limits.TimeoutSeconds) {}

  const ResourceLimits &limits() const { return Limits; }
  double elapsedSeconds() const { return Clock.elapsedSeconds(); }

  /// Full budget check against the current live-state levels. Token
  /// cancellation wins over the deadline, which wins over the caps.
  BudgetOutcome check(size_t LiveDisjuncts, uint64_t LiveStateBytes) const {
    if (Cancel && Cancel->cancelled())
      return Cancel->reason();
    if (Clock.expired())
      return BudgetOutcome::Timeout;
    if (Limits.MaxDisjuncts && LiveDisjuncts > Limits.MaxDisjuncts)
      return BudgetOutcome::ResourceLimit;
    if (Limits.MaxStateBytes && LiveStateBytes > Limits.MaxStateBytes)
      return BudgetOutcome::ResourceLimit;
    return BudgetOutcome::Ok;
  }

  /// Deadline/token-only check for loops that track no resource levels.
  bool interrupted() const {
    return (Cancel && Cancel->cancelled()) || Clock.expired();
  }

  /// The outcome an `interrupted()` stop should report.
  BudgetOutcome interruptionReason() const {
    if (Cancel && Cancel->cancelled())
      return Cancel->reason();
    return BudgetOutcome::Timeout;
  }

private:
  ResourceLimits Limits;
  const CancellationToken *Cancel;
  Deadline Clock;
};

} // namespace antidote

#endif // ANTIDOTE_SUPPORT_BUDGET_H
