//===- antidote/Certificate.h - Robustness verdicts -------------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The result object a verification run hands back to clients.
///
/// A `Robust` verdict is a proof (by Theorem 4.11 + Corollary 4.12) that
/// *no* attacker who perturbed the training set within the certificate's
/// threat model — removed up to `PoisoningBudget` rows, or relabeled up to
/// that many (`Threat`) — could have changed the model's prediction on the
/// queried input. Any other verdict is inconclusive — the analysis is
/// sound but incomplete (§2).
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_ANTIDOTE_CERTIFICATE_H
#define ANTIDOTE_ANTIDOTE_CERTIFICATE_H

#include "abstract/AbstractDTrace.h"

#include <cstdint>
#include <optional>
#include <string>

namespace antidote {

/// Outcome of a verification attempt.
enum class VerdictKind : uint8_t {
  Robust,        ///< Proven: every T' ∈ ∆n(T) yields the same prediction.
  Unknown,       ///< The overapproximation could not prove robustness.
  Timeout,       ///< Wall-clock budget exhausted.
  ResourceLimit, ///< Disjunct/memory cap exceeded (the paper's OOM case).
  Cancelled,     ///< Stopped early via a shared CancellationToken.
};

const char *verdictKindName(VerdictKind Kind);

/// The (attempted) proof of poisoning robustness for one input.
struct Certificate {
  VerdictKind Kind = VerdictKind::Unknown;

  /// The n of ∆n(T) this certificate speaks about — the budget of the
  /// *query* it answers.
  uint32_t PoisoningBudget = 0;

  /// The radius the underlying proof actually ran at. A fresh
  /// verification sets this equal to `PoisoningBudget`; a range- or
  /// slack-served answer keeps the stored proof's radius and rewrites
  /// only `PoisoningBudget` to the queried n. The two differing is how
  /// a client (or test) can tell a served answer rests on a wider
  /// certificate: a Robust verdict is backed by a proof at
  /// `CertifiedRadius >= PoisoningBudget` (monotonicity: ∆n ⊆ ∆N for
  /// n <= N), an Unknown by a failed attempt at
  /// `CertifiedRadius <= PoisoningBudget`.
  uint32_t CertifiedRadius = 0;

  /// Learner parameters the proof is relative to.
  unsigned Depth = 0;
  AbstractDomainKind Domain = AbstractDomainKind::Box;

  /// Which perturbation set ∆n(T) the proof quantifies over
  /// (abstract/ThreatModel.h): row removal or label flips. A certificate
  /// only ever answers queries under its own threat model.
  ThreatModelKind Threat = ThreatModelKind::Removal;

  /// Prediction of the unpoisoned learner L(T)(x).
  unsigned ConcretePrediction = 0;

  /// The Corollary 4.12 dominating class; equals ConcretePrediction
  /// whenever the verdict is Robust.
  std::optional<unsigned> DominatingClass;

  // Diagnostics / cost metrics (the Figure 7-11 plots report these).
  size_t NumTerminals = 0;
  size_t PeakDisjuncts = 0;
  uint64_t PeakStateBytes = 0;
  unsigned BestSplitCalls = 0;
  double Seconds = 0.0;

  bool isRobust() const { return Kind == VerdictKind::Robust; }

  /// One-line human-readable summary.
  std::string summary() const;
};

} // namespace antidote

#endif // ANTIDOTE_ANTIDOTE_CERTIFICATE_H
