//===- antidote/Enumeration.h - Naive enumeration baseline ------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "naïve approach" of paper §2: explicitly retrain on every training
/// set in ∆n(T) and compare predictions.
///
/// |∆n(T)| = Σ_{i≤n} C(|T|, i), so this is only feasible for tiny instances
/// — exactly the paper's point (MNIST-1-7 at n = 64 would require ~10^174
/// retrainings). It exists here as (a) the ground-truth oracle for the
/// soundness property tests, (b) the baseline the benchmark harness
/// contrasts Antidote against, and (c) a complete decision procedure that
/// measures the abstract analysis' precision gap on small instances.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_ANTIDOTE_ENUMERATION_H
#define ANTIDOTE_ANTIDOTE_ENUMERATION_H

#include "concrete/DTrace.h"

#include <optional>

namespace antidote {

/// Outcome of exhaustive ∆n(T) exploration.
struct EnumerationResult {
  /// True iff every explored training set predicted OriginalPrediction.
  /// Exact (a decision) when Exhausted; an upper bound otherwise.
  bool Robust = true;

  /// False iff the exploration stopped at the MaxSets safety valve.
  bool Exhausted = true;

  /// Number of concrete training sets actually retrained on.
  uint64_t SetsChecked = 0;

  /// L(T)(x) on the unpoisoned set.
  unsigned OriginalPrediction = 0;

  /// When !Robust: a witness T' ∈ ∆n(T) (rows kept) with a different
  /// prediction, and that prediction.
  std::optional<RowIndexList> CounterexampleRows;
  unsigned CounterexamplePrediction = 0;
};

/// Σ_{i≤Budget} C(Size, i), saturating at UINT64_MAX.
uint64_t perturbationSetCount(uint32_t Size, uint32_t Budget);

/// Retrains DTrace on every T' ∈ ∆n(T) for `T = Rows` (n = \p Budget) and
/// checks Definition 3.1 directly. Exploration is aborted (Exhausted =
/// false) after \p MaxSets retrainings.
///
/// Note: the concrete learner resolves the paper's nondeterministic ties
/// deterministically, so this oracle decides robustness *of that
/// determinized learner*; Antidote proves the stronger nondeterministic
/// property, hence "Antidote robust ⇒ enumeration robust" is the testable
/// soundness direction.
EnumerationResult verifyByEnumeration(const SplitContext &Ctx,
                                      const RowIndexList &Rows,
                                      const float *X, uint32_t Budget,
                                      unsigned Depth,
                                      uint64_t MaxSets = 2000000);

} // namespace antidote

#endif // ANTIDOTE_ANTIDOTE_ENUMERATION_H
