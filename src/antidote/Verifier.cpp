//===- antidote/Verifier.cpp - Poisoning-robustness verifier ------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "antidote/Verifier.h"

#include <cstdio>

using namespace antidote;

const char *antidote::verdictKindName(VerdictKind Kind) {
  switch (Kind) {
  case VerdictKind::Robust:
    return "robust";
  case VerdictKind::Unknown:
    return "unknown";
  case VerdictKind::Timeout:
    return "timeout";
  case VerdictKind::ResourceLimit:
    return "resource-limit";
  case VerdictKind::Cancelled:
    return "cancelled";
  }
  assert(false && "unknown verdict kind");
  return "?";
}

std::string Certificate::summary() const {
  char Buf[192];
  std::snprintf(Buf, sizeof(Buf),
                "%s (n=%u, depth=%u, %s): prediction %u, %zu terminals, "
                "%zu peak disjuncts, %.3fs",
                verdictKindName(Kind), PoisoningBudget, Depth,
                domainKindName(Domain), ConcretePrediction, NumTerminals,
                PeakDisjuncts, Seconds);
  return Buf;
}

unsigned Verifier::predict(const float *X, unsigned Depth) const {
  return trace(X, Depth).PredictedClass;
}

TraceResult Verifier::trace(const float *X, unsigned Depth) const {
  return runDTrace(Ctx, AllTrainRows, X, Depth);
}

namespace {

/// Only verdicts a fresh run is guaranteed to reproduce may be cached.
/// Robust/Unknown are pure functions of (training set, x, n, config);
/// ResourceLimit is too (disjunct and state-byte accounting is
/// bit-identical across thread counts). Timeout depends on wall clock
/// and Cancelled on an external controller, so caching either could
/// serve a verdict a re-run would contradict.
bool isCacheableVerdict(VerdictKind Kind) {
  return Kind == VerdictKind::Robust || Kind == VerdictKind::Unknown ||
         Kind == VerdictKind::ResourceLimit;
}

} // namespace

Certificate Verifier::verify(const float *X, uint32_t PoisoningBudget,
                             const VerifierConfig &Config) const {
  if (Config.Cache) {
    Certificate Cached;
    if (Config.Cache->lookup(Fingerprint, X, Train->numFeatures(),
                             PoisoningBudget, Config, Cached))
      return Cached;
  }

  Certificate Cert;
  Cert.PoisoningBudget = PoisoningBudget;
  Cert.Depth = Config.Depth;
  Cert.Domain = Config.Domain;
  Cert.ConcretePrediction = predict(X, Config.Depth);

  AbstractLearnerConfig LearnerConfig;
  LearnerConfig.Depth = Config.Depth;
  LearnerConfig.Domain = Config.Domain;
  LearnerConfig.Cprob = Config.Cprob;
  LearnerConfig.Gini = Config.Gini;
  LearnerConfig.DisjunctCap = Config.DisjunctCap;
  LearnerConfig.Limits = Config.Limits;
  LearnerConfig.Cancel = Config.Cancel;
  LearnerConfig.FrontierJobs = Config.FrontierJobs;
  LearnerConfig.SplitJobs = Config.SplitJobs;
  LearnerConfig.FrontierPool = Config.FrontierPool;

  AbstractDataset Initial = AbstractDataset::entire(*Train, PoisoningBudget);
  AbstractLearnerResult Run = runAbstractDTrace(Ctx, Initial, X,
                                                LearnerConfig);

  Cert.NumTerminals = Run.Terminals.size();
  Cert.PeakDisjuncts = Run.PeakDisjuncts;
  Cert.PeakStateBytes = Run.PeakStateBytes;
  Cert.BestSplitCalls = Run.BestSplitCalls;
  Cert.Seconds = Run.Seconds;
  Cert.DominatingClass = Run.DominatingClass;

  switch (Run.Status) {
  case LearnerStatus::Timeout:
    Cert.Kind = VerdictKind::Timeout;
    break;
  case LearnerStatus::ResourceLimit:
    Cert.Kind = VerdictKind::ResourceLimit;
    break;
  case LearnerStatus::Cancelled:
    Cert.Kind = VerdictKind::Cancelled;
    break;
  case LearnerStatus::Completed:
    if (!Run.DominatingClass) {
      Cert.Kind = VerdictKind::Unknown;
      break;
    }
    // The unpoisoned set T is itself in ∆n(T), so a dominating class must
    // be the concrete prediction.
    assert(*Run.DominatingClass == Cert.ConcretePrediction &&
           "dominating class contradicts the concrete learner");
    Cert.Kind = VerdictKind::Robust;
    break;
  }

  if (Config.Cache && isCacheableVerdict(Cert.Kind))
    Config.Cache->store(Fingerprint, X, Train->numFeatures(),
                        PoisoningBudget, Config, Cert);
  return Cert;
}

std::vector<Certificate>
Verifier::verifyBatch(const std::vector<const float *> &Inputs,
                      uint32_t PoisoningBudget, const VerifierConfig &Config,
                      ThreadPool *Pool) const {
  std::vector<Certificate> Certs(Inputs.size());
  parallelFor(Pool, Inputs.size(), [&](size_t I) {
    Certs[I] = verify(Inputs[I], PoisoningBudget, Config);
  });
  return Certs;
}
