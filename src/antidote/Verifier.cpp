//===- antidote/Verifier.cpp - Poisoning-robustness verifier ------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "antidote/Verifier.h"

#include "serving/CertificateStore.h"

#include <cstdio>

using namespace antidote;

const char *antidote::verdictKindName(VerdictKind Kind) {
  switch (Kind) {
  case VerdictKind::Robust:
    return "robust";
  case VerdictKind::Unknown:
    return "unknown";
  case VerdictKind::Timeout:
    return "timeout";
  case VerdictKind::ResourceLimit:
    return "resource-limit";
  case VerdictKind::Cancelled:
    return "cancelled";
  }
  assert(false && "unknown verdict kind");
  return "?";
}

std::string Certificate::summary() const {
  char Buf[192];
  std::snprintf(Buf, sizeof(Buf),
                "%s (n=%u, depth=%u, %s, %s): prediction %u, %zu terminals, "
                "%zu peak disjuncts, %.3fs",
                verdictKindName(Kind), PoisoningBudget, Depth,
                domainKindName(Domain), threatModelName(Threat),
                ConcretePrediction, NumTerminals, PeakDisjuncts, Seconds);
  return Buf;
}

unsigned Verifier::predict(const float *X, unsigned Depth) const {
  return trace(X, Depth).PredictedClass;
}

TraceResult Verifier::trace(const float *X, unsigned Depth) const {
  return runDTrace(Ctx, AllTrainRows, X, Depth);
}

namespace {

/// Only verdicts a fresh run is guaranteed to reproduce may be cached.
/// Robust/Unknown are pure functions of (training set, x, n, config);
/// ResourceLimit is too (disjunct and state-byte accounting is
/// bit-identical across thread counts). Timeout depends on wall clock
/// and Cancelled on an external controller, so caching either could
/// serve a verdict a re-run would contradict.
bool isCacheableVerdict(VerdictKind Kind) {
  return Kind == VerdictKind::Robust || Kind == VerdictKind::Unknown ||
         Kind == VerdictKind::ResourceLimit;
}

} // namespace

Certificate Verifier::verify(const float *X, uint32_t PoisoningBudget,
                             const VerifierConfig &Config) const {
  if (Config.Cache) {
    Certificate Cached;
    if (Config.Cache->lookup(Fingerprint, X, Train->numFeatures(),
                             PoisoningBudget, Config, Cached))
      return Cached;

    // Delta-tolerant serving: the store has nothing under this
    // dataset's own fingerprint, but when the dataset is a
    // pure-removal delta of a parent (|T0 \ T| <= RowsRemoved, no
    // additions), a parent certificate Robust at n + RowsRemoved is a
    // sound answer at n: every T' ∈ ∆n(T) is also a subset of T0 with
    // |T0 \ T'| <= n + RowsRemoved, so the parent proof covers it. Any
    // *added* row voids the argument (subsets of T need not be subsets
    // of T0), so the slack path stays dark then — the randomized
    // property tests pin both directions. Only Robust transfers:
    // serving a parent Unknown would trade a possibly-provable child
    // query for a vacuous answer. The whole argument is about *removed
    // rows*, so it exists only under the Removal threat model: a flip
    // child T (missing rows of T0) has relabelings that are not
    // relabelings of T0, and no removal budget widening bridges the
    // two perturbation sets.
    if (Config.DeltaSlack && Config.Threat == ThreatModelKind::Removal &&
        HasLineage && Lineage.RowsAdded == 0) {
      uint64_t Slack = static_cast<uint64_t>(PoisoningBudget) +
                       Lineage.RowsRemoved;
      Certificate Parent;
      if (Slack <= UINT32_MAX &&
          Config.Cache->lookup(Lineage.Parent, X, Train->numFeatures(),
                               static_cast<uint32_t>(Slack), Config,
                               Parent) &&
          Parent.Kind == VerdictKind::Robust &&
          Parent.CertifiedRadius >= Slack) {
        Certificate Served = Parent;
        Served.PoisoningBudget = PoisoningBudget;
        // The served answer is sound but rests on the parent's proof;
        // an exact certificate for this dataset should land in the
        // background (never stored here — the fresh one must not be
        // shadowed by a duplicate-decline).
        if (Config.Reverify)
          Config.Reverify->scheduleReverify(X, Train->numFeatures(),
                                            PoisoningBudget);
        return Served;
      }
    }
  }

  Certificate Cert;
  Cert.PoisoningBudget = PoisoningBudget;
  Cert.CertifiedRadius = PoisoningBudget;
  Cert.Depth = Config.Depth;
  Cert.Domain = Config.Domain;
  Cert.Threat = Config.Threat;
  Cert.ConcretePrediction = predict(X, Config.Depth);

  AbstractLearnerConfig LearnerConfig;
  LearnerConfig.Depth = Config.Depth;
  LearnerConfig.Domain = Config.Domain;
  LearnerConfig.Threat = Config.Threat;
  LearnerConfig.Cprob = Config.Cprob;
  LearnerConfig.Gini = Config.Gini;
  LearnerConfig.DisjunctCap = Config.DisjunctCap;
  LearnerConfig.Limits = Config.Limits;
  LearnerConfig.Cancel = Config.Cancel;
  LearnerConfig.FrontierJobs = Config.FrontierJobs;
  LearnerConfig.SplitJobs = Config.SplitJobs;
  LearnerConfig.FrontierPool = Config.FrontierPool;

  AbstractDataset Initial = AbstractDataset::entire(*Train, PoisoningBudget);
  AbstractLearnerResult Run = runAbstractDTrace(Ctx, Initial, X,
                                                LearnerConfig);

  Cert.NumTerminals = Run.NumTerminals;
  Cert.PeakDisjuncts = Run.PeakDisjuncts;
  Cert.PeakStateBytes = Run.PeakStateBytes;
  Cert.BestSplitCalls = Run.BestSplitCalls;
  Cert.Seconds = Run.Seconds;
  Cert.DominatingClass = Run.DominatingClass;

  switch (Run.Status) {
  case LearnerStatus::Timeout:
    Cert.Kind = VerdictKind::Timeout;
    break;
  case LearnerStatus::ResourceLimit:
    Cert.Kind = VerdictKind::ResourceLimit;
    break;
  case LearnerStatus::Cancelled:
    Cert.Kind = VerdictKind::Cancelled;
    break;
  case LearnerStatus::Completed:
    if (!Run.DominatingClass) {
      Cert.Kind = VerdictKind::Unknown;
      break;
    }
    // The unpoisoned set T is itself in ∆n(T), so a dominating class must
    // be the concrete prediction.
    assert(*Run.DominatingClass == Cert.ConcretePrediction &&
           "dominating class contradicts the concrete learner");
    Cert.Kind = VerdictKind::Robust;
    break;
  }

  if (Config.Cache && isCacheableVerdict(Cert.Kind))
    Config.Cache->store(Fingerprint, X, Train->numFeatures(),
                        PoisoningBudget, Config, Cert);
  return Cert;
}

std::vector<Certificate>
Verifier::verifyBatch(const std::vector<const float *> &Inputs,
                      uint32_t PoisoningBudget, const VerifierConfig &Config,
                      ThreadPool *Pool) const {
  std::vector<Certificate> Certs(Inputs.size());
  parallelFor(Pool, Inputs.size(), [&](size_t I) {
    Certs[I] = verify(Inputs[I], PoisoningBudget, Config);
  });
  return Certs;
}
