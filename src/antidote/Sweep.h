//===- antidote/Sweep.h - The paper's experiment protocol -------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §6.1 experimental protocol, as a reusable harness:
///
///   1. For each (tree depth, abstract domain) start at poisoning n = 1.
///   2. Attempt to verify every element of the test subset; let S_n be the
///      verified survivors. If S_n ≠ ∅, double n and retry on S_n only
///      (robustness is anti-monotone in n, so non-survivors stay failed).
///   3. If at some n every survivor fails, binary-search (n/2, n) for the
///      largest n' at which at least one instance still verifies, recording
///      every attempted cell — this is what gives the paper's plots their
///      resolution near each curve's cliff.
///
/// The result records, per (depth, domain, n) cell, the verified counts and
/// the average time / peak-abstract-state-memory of the attempts (the
/// quantities plotted in Figures 6-11), plus each instance's maximum
/// verified n (used to derive Figure 6's fraction-verified curves,
/// including the "either domain" union the paper's Figure 6 reports).
///
/// Execution model: the doubling/binary-search control loop is inherently
/// sequential (each probe's candidate set depends on the previous probe's
/// survivors), but the instances *within* one probe are independent, so
/// `runPoisoningSweep` fans them out across `SweepConfig::Jobs` threads via
/// `Verifier::verifyBatch`. Aggregation happens on the controller thread in
/// instance order, so every count in the result is identical whatever the
/// thread count — with one inherent caveat: a per-instance *wall-clock*
/// timeout (`InstanceLimits.TimeoutSeconds`) is scheduling-dependent, so
/// instances near the timeout boundary can flip verdict under CPU
/// contention, exactly as they do between differently loaded machines.
/// Runs whose instances finish within budget are bit-identical for every
/// `Jobs` value. Per-instance budgets live in `SweepConfig::InstanceLimits`
/// (see support/Budget.h), and an optional shared `CancellationToken`
/// stops the whole sweep — including queries already in flight —
/// cooperatively.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_ANTIDOTE_SWEEP_H
#define ANTIDOTE_ANTIDOTE_SWEEP_H

#include "antidote/Verifier.h"
#include "support/Budget.h"

#include <string>
#include <vector>

namespace antidote {

/// One abstract-domain configuration participating in a sweep.
struct SweepDomainSpec {
  std::string Name; ///< Label used in reports ("box", "disjuncts", ...).
  AbstractDomainKind Domain = AbstractDomainKind::Box;
  size_t DisjunctCap = 64; ///< Only for DisjunctsCapped.
};

/// Sweep-wide parameters.
struct SweepConfig {
  std::vector<unsigned> Depths = {1, 2, 3, 4};
  std::vector<SweepDomainSpec> Domains = {
      {"box", AbstractDomainKind::Box, 0},
      {"disjuncts", AbstractDomainKind::Disjuncts, 0},
  };

  /// The poisoning threat model every probe quantifies over
  /// (abstract/ThreatModel.h). Specs whose domain the model does not
  /// support (flips run Disjuncts only) are skipped with an empty series
  /// so a mixed default domain list stays usable under either model.
  ThreatModelKind Threat = ThreatModelKind::Removal;

  /// Stop doubling once n would exceed this.
  uint32_t MaxPoisoning = 1u << 14;

  /// Per-instance resource budget: wall clock (the paper uses 3600 s) and
  /// the caps standing in for their 160 GB OOM bound.
  ResourceLimits InstanceLimits = {/*TimeoutSeconds=*/5.0,
                                   /*MaxDisjuncts=*/1u << 18,
                                   /*MaxStateBytes=*/1ull << 31};

  /// Worker threads for the per-instance fan-out. 1 = serial; 0 = one per
  /// hardware thread. Results are identical for every value.
  unsigned Jobs = 1;

  /// Executors for the frontier fan-out *within* each instance's DTrace#
  /// run (1 = serial, 0 = one per hardware thread); one pool is shared by
  /// every instance of the sweep. Orthogonal to `Jobs`: `Jobs` helps when
  /// a probe has many instances, `FrontierJobs` when a few hard instances
  /// with huge disjunctive frontiers dominate. Results are identical for
  /// every value (the wall-clock-timeout caveat above applies equally).
  unsigned FrontierJobs = 1;

  /// Executors for the per-feature bestSplit# sharding inside each
  /// disjunct transfer step (1 = serial, 0 = one per hardware thread).
  /// The third axis, for instances a single disjunct dominates (Box
  /// domain, or deep queries before their frontier widens); shares the
  /// sweep's one frontier pool — the pool is sized for the wider of the
  /// two in-query levels, never their product. Results are identical for
  /// every value.
  unsigned SplitJobs = 1;

  /// Optional shared stop lever: cancelling it ends the sweep early (the
  /// partial result is still well-formed).
  const CancellationToken *Cancel = nullptr;

  /// Optional certificate store every instance's query consults
  /// (serving/CertCache.h is the production implementation). A sweep's
  /// own probes rarely repeat a (x, n, config) triple — each doubling
  /// step uses a fresh n — so this mainly pays off when a long-lived
  /// cache is shared *across* sweeps or with a `CertServer` answering
  /// the same dataset's traffic. Must tolerate concurrent access from
  /// the `Jobs` batch workers.
  CertificateStore *Cache = nullptr;

  /// Passed through to every instance's `VerifierConfig::DeltaSlack`:
  /// with a `Cache` attached and the sweep's verifier armed with
  /// lineage, instances may be answered from a parent dataset's
  /// certificates (the CLI knob `--delta-slack 0` disables it for A/B
  /// runs). Inert without lineage.
  bool DeltaSlack = true;

  CprobTransformerKind Cprob = CprobTransformerKind::Optimal;
  GiniLiftingKind Gini = GiniLiftingKind::ExactTerm;

  /// Run the paper's binary search when all survivors fail at some n.
  bool BinarySearchOnFailure = true;
};

/// Aggregated outcomes of all attempts at one (depth, domain, n) cell.
struct SweepCell {
  unsigned Depth = 0;
  std::string DomainName;
  uint32_t Poisoning = 0;

  unsigned Attempted = 0;
  unsigned Verified = 0;
  unsigned Timeouts = 0;
  unsigned ResourceFailures = 0;
  unsigned Cancellations = 0; ///< Attempts cut short by the sweep's token.

  double TotalSeconds = 0.0;
  double TotalPeakStateBytes = 0.0;

  double avgSeconds() const {
    return Attempted ? TotalSeconds / Attempted : 0.0;
  }
  double avgPeakStateBytes() const {
    return Attempted ? TotalPeakStateBytes / Attempted : 0.0;
  }
};

/// All cells of one (depth, domain) protocol run, plus per-instance maxima.
struct SweepSeries {
  unsigned Depth = 0;
  std::string DomainName;
  std::vector<SweepCell> Cells; ///< Ascending n.

  /// For each verify instance (aligned with SweepResult::VerifyRows): the
  /// largest n at which it was proven robust; 0 if never.
  std::vector<uint32_t> MaxVerifiedN;
};

/// A full sweep over one dataset.
struct SweepResult {
  std::vector<uint32_t> VerifyRows; ///< Test-set rows that were verified.
  std::vector<SweepSeries> Series;  ///< One per (depth, domain).

  /// Fraction of instances for which *any* of the named domains proved
  /// robustness at poisoning \p N and depth \p Depth (Figure 6's curves,
  /// which treat box/disjuncts as run in parallel). Pass an empty name
  /// list to include every domain.
  double fractionVerified(unsigned Depth, uint32_t N,
                          const std::vector<std::string> &DomainNames =
                              {}) const;

  /// Distinct n values attempted at \p Depth across all domains, sorted.
  std::vector<uint32_t> attemptedPoisonings(unsigned Depth) const;
};

/// Runs the full protocol for every (depth, domain) in \p Config against
/// the test rows \p VerifyRows of \p Test, fanning per-instance
/// verification across `Config.Jobs` threads. Aggregates are
/// thread-count-independent.
SweepResult runPoisoningSweep(const Dataset &Train, const Dataset &Test,
                              const std::vector<uint32_t> &VerifyRows,
                              const SweepConfig &Config);

} // namespace antidote

#endif // ANTIDOTE_ANTIDOTE_SWEEP_H
