//===- antidote/AttackSearch.cpp - Greedy poisoning-attack search -------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "antidote/AttackSearch.h"

#include <algorithm>
#include <optional>

using namespace antidote;

/// Margin of the predicted class at the trace's leaf: how many more rows of
/// class \p Predicted the leaf holds than of the runner-up class. The
/// greedy attack drives this toward zero.
static int64_t leafMargin(const TraceResult &Trace, unsigned Predicted) {
  int64_t Best = 0;
  for (unsigned C = 0; C < Trace.FinalCounts.size(); ++C)
    if (C != Predicted)
      Best = std::max<int64_t>(Best, Trace.FinalCounts[C]);
  return static_cast<int64_t>(Trace.FinalCounts[Predicted]) - Best;
}

AttackResult antidote::findPoisoningAttack(const SplitContext &Ctx,
                                           const RowIndexList &Rows,
                                           const float *X, uint32_t Budget,
                                           unsigned Depth,
                                           unsigned CandidatePoolPerStep) {
  assert(!Rows.empty() && "attack search over an empty training set");
  AttackResult Result;
  RowIndexList Current = Rows;
  TraceResult Trace = runDTrace(Ctx, Current, X, Depth);
  ++Result.Retrainings;
  Result.OriginalPrediction = Trace.PredictedClass;

  for (uint32_t Step = 0; Step < Budget && Current.size() > 1; ++Step) {
    unsigned Predicted = Trace.PredictedClass;

    // Candidates: the leaf's supporters of the current prediction. Removing
    // anything else can only help via a changed split, which the greedy
    // re-derivation after each committed removal picks up anyway.
    RowIndexList Candidates;
    for (uint32_t Row : Trace.FinalRows)
      if (Ctx.base().label(Row) == Predicted)
        Candidates.push_back(Row);
    if (Candidates.empty())
      break;
    if (Candidates.size() > CandidatePoolPerStep) {
      RowIndexList Sampled;
      Sampled.reserve(CandidatePoolPerStep);
      double Stride =
          static_cast<double>(Candidates.size()) / CandidatePoolPerStep;
      for (unsigned I = 0; I < CandidatePoolPerStep; ++I)
        Sampled.push_back(Candidates[static_cast<size_t>(I * Stride)]);
      Candidates = std::move(Sampled);
    }

    // Evaluate each candidate removal by full retraining.
    std::optional<uint32_t> BestRow;
    int64_t BestMargin = 0;
    TraceResult BestTrace;
    for (uint32_t Candidate : Candidates) {
      RowIndexList Reduced;
      Reduced.reserve(Current.size() - 1);
      for (uint32_t Row : Current)
        if (Row != Candidate)
          Reduced.push_back(Row);
      TraceResult Attempt = runDTrace(Ctx, std::move(Reduced), X, Depth);
      ++Result.Retrainings;
      if (Attempt.PredictedClass != Result.OriginalPrediction) {
        Result.Found = true;
        Result.FlippedPrediction = Attempt.PredictedClass;
        Result.RemovedRows.push_back(Candidate);
        std::sort(Result.RemovedRows.begin(), Result.RemovedRows.end());
        return Result;
      }
      int64_t Margin = leafMargin(Attempt, Attempt.PredictedClass);
      if (!BestRow || Margin < BestMargin) {
        BestRow = Candidate;
        BestMargin = Margin;
        BestTrace = std::move(Attempt);
      }
    }
    if (!BestRow)
      break;

    // Commit the best removal and continue from its trace.
    Result.RemovedRows.push_back(*BestRow);
    RowIndexList Reduced;
    Reduced.reserve(Current.size() - 1);
    for (uint32_t Row : Current)
      if (Row != *BestRow)
        Reduced.push_back(Row);
    Current = std::move(Reduced);
    Trace = std::move(BestTrace);
  }
  std::sort(Result.RemovedRows.begin(), Result.RemovedRows.end());
  return Result;
}

FlipAttackResult antidote::findLabelFlipAttack(const SplitContext &Ctx,
                                               const RowIndexList &Rows,
                                               const float *X, uint32_t Budget,
                                               unsigned Depth,
                                               unsigned CandidatePoolPerStep) {
  assert(!Rows.empty() && "flip attack search over an empty training set");
  FlipAttackResult Result;

  // Flips only touch labels, so gather the row subset once and patch labels
  // in place (the feature columns and the split context's cached sort
  // orders are label-independent — same trick as the flip enumeration
  // oracle). Local row i corresponds to original row Rows[i].
  Dataset Local = Dataset::gatherRows(Ctx.base(), Rows);
  SplitContext LocalCtx(Local);
  RowIndexList LocalRows = allRows(Local);
  unsigned NumClasses = Local.numClasses();

  TraceResult Trace = runDTrace(LocalCtx, LocalRows, X, Depth);
  ++Result.Retrainings;
  Result.OriginalPrediction = Trace.PredictedClass;
  if (NumClasses < 2)
    return Result;

  std::vector<bool> Flipped(LocalRows.size(), false);
  uint32_t MaxFlips =
      std::min<uint32_t>(Budget, static_cast<uint32_t>(LocalRows.size()));
  for (uint32_t Step = 0; Step < MaxFlips; ++Step) {
    unsigned Predicted = Trace.PredictedClass;

    // Candidates: the leaf's not-yet-flipped supporters of the current
    // prediction. Relabeling anything else can only help via a changed
    // split, which the greedy re-derivation after each committed flip
    // picks up anyway.
    RowIndexList Candidates;
    for (uint32_t Row : Trace.FinalRows)
      if (!Flipped[Row] && Local.label(Row) == Predicted)
        Candidates.push_back(Row);
    if (Candidates.empty())
      break;
    if (Candidates.size() > CandidatePoolPerStep) {
      RowIndexList Sampled;
      Sampled.reserve(CandidatePoolPerStep);
      double Stride =
          static_cast<double>(Candidates.size()) / CandidatePoolPerStep;
      for (unsigned I = 0; I < CandidatePoolPerStep; ++I)
        Sampled.push_back(Candidates[static_cast<size_t>(I * Stride)]);
      Candidates = std::move(Sampled);
    }

    // Evaluate every (candidate, replacement label) by full retraining.
    std::optional<LabelFlip> Best;
    int64_t BestMargin = 0;
    TraceResult BestTrace;
    for (uint32_t Candidate : Candidates) {
      unsigned BaseLabel = Local.label(Candidate);
      for (unsigned C = 0; C < NumClasses; ++C) {
        if (C == BaseLabel)
          continue;
        Local.setLabel(Candidate, C);
        TraceResult Attempt = runDTrace(LocalCtx, LocalRows, X, Depth);
        ++Result.Retrainings;
        if (Attempt.PredictedClass != Result.OriginalPrediction) {
          Result.Found = true;
          Result.FlippedPrediction = Attempt.PredictedClass;
          Result.Flips.push_back({Rows[Candidate], C});
          return Result;
        }
        Local.setLabel(Candidate, BaseLabel);
        int64_t Margin = leafMargin(Attempt, Attempt.PredictedClass);
        if (!Best || Margin < BestMargin) {
          Best = LabelFlip{Candidate, C};
          BestMargin = Margin;
          BestTrace = std::move(Attempt);
        }
      }
    }
    if (!Best)
      break;

    // Commit the best flip and continue from its trace.
    Local.setLabel(Best->Row, Best->NewLabel);
    Flipped[Best->Row] = true;
    Result.Flips.push_back({Rows[Best->Row], Best->NewLabel});
    Trace = std::move(BestTrace);
  }
  return Result;
}
