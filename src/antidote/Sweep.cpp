//===- antidote/Sweep.cpp - The paper's experiment protocol -------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "antidote/Sweep.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <memory>

using namespace antidote;

namespace {

/// Executes the doubling/binary-search protocol for one (depth, domain).
/// The control loop is sequential; the per-instance fan-out within each
/// probe runs on \p Pool via `Verifier::verifyBatch`.
class ProtocolRun {
public:
  ProtocolRun(const Verifier &V, const Dataset &Test,
              const std::vector<uint32_t> &VerifyRows,
              const SweepConfig &Config, const SweepDomainSpec &Spec,
              unsigned Depth, ThreadPool *Pool, ThreadPool *FrontierPool)
      : V(V), Test(Test), VerifyRows(VerifyRows), Config(Config),
        Pool(Pool) {
    Series.Depth = Depth;
    Series.DomainName = Spec.Name;
    Series.MaxVerifiedN.assign(VerifyRows.size(), 0);
    QueryConfig.Depth = Depth;
    QueryConfig.Domain = Spec.Domain;
    QueryConfig.Threat = Config.Threat;
    QueryConfig.Cprob = Config.Cprob;
    QueryConfig.Gini = Config.Gini;
    QueryConfig.DisjunctCap = Spec.DisjunctCap;
    QueryConfig.Limits = Config.InstanceLimits;
    QueryConfig.Cancel = Config.Cancel;
    QueryConfig.FrontierJobs = Config.FrontierJobs;
    QueryConfig.SplitJobs = Config.SplitJobs;
    QueryConfig.FrontierPool = FrontierPool;
    QueryConfig.Cache = Config.Cache;
    QueryConfig.DeltaSlack = Config.DeltaSlack;
  }

  SweepSeries run() {
    // Instances still in play, as indices into VerifyRows.
    std::vector<size_t> Survivors(VerifyRows.size());
    for (size_t I = 0; I < VerifyRows.size(); ++I)
      Survivors[I] = I;

    uint32_t N = 1;
    while (!Survivors.empty() && N <= Config.MaxPoisoning && !cancelled()) {
      std::vector<size_t> Next = attempt(N, Survivors);
      if (Next.empty()) {
        if (Config.BinarySearchOnFailure && !cancelled())
          binarySearch(N / 2, N, Survivors);
        break;
      }
      Survivors = std::move(Next);
      if (N > Config.MaxPoisoning / 2)
        break;
      N *= 2;
    }
    std::sort(Series.Cells.begin(), Series.Cells.end(),
              [](const SweepCell &A, const SweepCell &B) {
                return A.Poisoning < B.Poisoning;
              });
    return std::move(Series);
  }

private:
  bool cancelled() const {
    return Config.Cancel && Config.Cancel->cancelled();
  }

  /// Attempts every instance in \p Candidates at poisoning \p N, records
  /// the cell, and returns the verified survivors. The queries run
  /// concurrently; the fold below runs on this thread in candidate order,
  /// so the cell and survivor list are deterministic whatever the
  /// scheduling.
  std::vector<size_t> attempt(uint32_t N,
                              const std::vector<size_t> &Candidates) {
    std::vector<const float *> Inputs;
    Inputs.reserve(Candidates.size());
    for (size_t Index : Candidates)
      Inputs.push_back(Test.row(VerifyRows[Index]));
    std::vector<Certificate> Certs =
        V.verifyBatch(Inputs, N, QueryConfig, Pool);

    SweepCell Cell;
    Cell.Depth = Series.Depth;
    Cell.DomainName = Series.DomainName;
    Cell.Poisoning = N;
    std::vector<size_t> Verified;
    for (size_t I = 0; I < Candidates.size(); ++I) {
      size_t Index = Candidates[I];
      const Certificate &Cert = Certs[I];
      ++Cell.Attempted;
      Cell.TotalSeconds += Cert.Seconds;
      Cell.TotalPeakStateBytes += static_cast<double>(Cert.PeakStateBytes);
      switch (Cert.Kind) {
      case VerdictKind::Robust:
        ++Cell.Verified;
        Series.MaxVerifiedN[Index] =
            std::max(Series.MaxVerifiedN[Index], N);
        Verified.push_back(Index);
        break;
      case VerdictKind::Timeout:
        ++Cell.Timeouts;
        break;
      case VerdictKind::ResourceLimit:
        ++Cell.ResourceFailures;
        break;
      case VerdictKind::Cancelled:
        ++Cell.Cancellations;
        break;
      case VerdictKind::Unknown:
        break;
      }
    }
    Series.Cells.push_back(std::move(Cell));
    return Verified;
  }

  /// All survivors of \p Lo failed at \p Hi: find the largest n in (Lo, Hi)
  /// at which at least one instance verifies, recording every probe.
  void binarySearch(uint32_t Lo, uint32_t Hi,
                    std::vector<size_t> Candidates) {
    while (Hi - Lo > 1 && !cancelled()) {
      uint32_t Mid = Lo + (Hi - Lo) / 2;
      std::vector<size_t> Verified = attempt(Mid, Candidates);
      if (Verified.empty()) {
        Hi = Mid;
      } else {
        Lo = Mid;
        Candidates = std::move(Verified);
      }
    }
  }

  const Verifier &V;
  const Dataset &Test;
  const std::vector<uint32_t> &VerifyRows;
  const SweepConfig &Config;
  ThreadPool *Pool;
  VerifierConfig QueryConfig;
  SweepSeries Series;
};

} // namespace

double SweepResult::fractionVerified(
    unsigned Depth, uint32_t N,
    const std::vector<std::string> &DomainNames) const {
  if (VerifyRows.empty())
    return 0.0;
  unsigned Count = 0;
  for (size_t I = 0; I < VerifyRows.size(); ++I) {
    bool Verified = false;
    for (const SweepSeries &S : Series) {
      if (S.Depth != Depth)
        continue;
      if (!DomainNames.empty() &&
          std::find(DomainNames.begin(), DomainNames.end(), S.DomainName) ==
              DomainNames.end())
        continue;
      if (S.MaxVerifiedN[I] >= N) {
        Verified = true;
        break;
      }
    }
    Count += Verified;
  }
  return static_cast<double>(Count) / VerifyRows.size();
}

std::vector<uint32_t> SweepResult::attemptedPoisonings(unsigned Depth) const {
  std::vector<uint32_t> Ns;
  for (const SweepSeries &S : Series) {
    if (S.Depth != Depth)
      continue;
    for (const SweepCell &Cell : S.Cells)
      Ns.push_back(Cell.Poisoning);
  }
  std::sort(Ns.begin(), Ns.end());
  Ns.erase(std::unique(Ns.begin(), Ns.end()), Ns.end());
  return Ns;
}

SweepResult antidote::runPoisoningSweep(
    const Dataset &Train, const Dataset &Test,
    const std::vector<uint32_t> &VerifyRows, const SweepConfig &Config) {
  Verifier V(Train);
  SweepResult Result;
  Result.VerifyRows = VerifyRows;

  // One pool per axis for the whole sweep; all-1 knobs stay strictly
  // serial (the caller's thread does all the work inside verifyBatch /
  // the frontier merge / the split scoring). The in-query pool serves
  // both the frontier and split fan-out levels of every instance, sized
  // for the wider level rather than their product — concurrent queries
  // interleave their chunk tasks on it safely, and each fan-out's
  // consumer picks up unclaimed work itself, so contention degrades
  // toward serial rather than deadlocking.
  std::unique_ptr<ThreadPool> Pool = makeVerificationPool(Config.Jobs);
  std::unique_ptr<ThreadPool> FrontierPool = makeVerificationPool(
      sharedFanoutJobs(Config.FrontierJobs, Config.SplitJobs));

  for (unsigned Depth : Config.Depths)
    for (const SweepDomainSpec &Spec : Config.Domains) {
      if (!threatModel(Config.Threat).supportsDomain(Spec.Domain))
        continue;
      if (Config.Cancel && Config.Cancel->cancelled())
        return Result;
      ProtocolRun Run(V, Test, VerifyRows, Config, Spec, Depth, Pool.get(),
                      FrontierPool.get());
      Result.Series.push_back(Run.run());
    }
  return Result;
}
