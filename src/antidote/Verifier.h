//===- antidote/Verifier.h - Poisoning-robustness verifier ------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library's main entry point: given a training set once, verify
/// n-poisoning robustness (Definition 3.1 with the ∆n model of §4.1) for
/// any number of inputs.
///
/// Typical use (see examples/quickstart.cpp):
/// \code
///   Verifier V(Train);
///   VerifierConfig Config;
///   Config.Depth = 2;
///   Config.Domain = AbstractDomainKind::Disjuncts;
///   Certificate Cert = V.verify(Test.row(0), /*PoisoningBudget=*/8, Config);
///   if (Cert.isRobust()) { ... }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_ANTIDOTE_VERIFIER_H
#define ANTIDOTE_ANTIDOTE_VERIFIER_H

#include "antidote/Certificate.h"
#include "concrete/DTrace.h"
#include "support/Budget.h"
#include "support/ThreadPool.h"

namespace antidote {

/// Per-query verification parameters.
struct VerifierConfig {
  unsigned Depth = 2;
  AbstractDomainKind Domain = AbstractDomainKind::Box;
  CprobTransformerKind Cprob = CprobTransformerKind::Optimal;
  GiniLiftingKind Gini = GiniLiftingKind::ExactTerm;
  size_t DisjunctCap = 64; ///< DisjunctsCapped only (precision knob).

  /// Per-query resource budget (timeout / disjunct cap / state bytes);
  /// support/Budget.h is the single home of these knobs.
  ResourceLimits Limits;

  /// Optional shared token; cancelling it stops in-flight queries
  /// cooperatively (they report VerdictKind::Cancelled, or the token's
  /// reason) — the lever `verifyBatch` callers use to abandon a batch.
  const CancellationToken *Cancel = nullptr;

  /// Executors for the frontier fan-out *within* one query's DTrace# run
  /// (1 = serial, 0 = one per hardware thread). Orthogonal to the batch-
  /// level pool `verifyBatch` takes: that knob spreads independent
  /// queries across cores, this one spreads a single hard query's
  /// disjuncts. Certificates are bit-identical for every value.
  unsigned FrontierJobs = 1;

  /// Executors for the per-feature bestSplit# sharding inside each
  /// disjunct's transfer step (1 = serial, 0 = one per hardware thread).
  /// The third fan-out axis, for queries a single disjunct dominates;
  /// shares the one pool with the frontier fan-out (see
  /// AbstractLearnerConfig::SplitJobs). Certificates are bit-identical
  /// for every value.
  unsigned SplitJobs = 1;

  /// Optional externally owned pool for both in-query fan-out levels
  /// (overrides FrontierJobs/SplitJobs-driven pool spawning; see
  /// AbstractLearnerConfig). A sweep passes one long-lived pool here so
  /// thousands of queries do not each re-spawn threads.
  ThreadPool *FrontierPool = nullptr;
};

/// Verifies data-poisoning robustness of decision-tree learning on a fixed
/// training set. Holds the per-dataset acceleration structures, so
/// constructing one Verifier and reusing it across queries is the intended
/// pattern.
///
/// Thread-safety: a constructed Verifier is immutable — `predict`, `trace`,
/// `verify`, and `verifyBatch` only read the dataset, the SplitContext's
/// cached sort orders, and per-call state, so any number of threads may
/// issue queries against one instance concurrently.
class Verifier {
public:
  explicit Verifier(const Dataset &Train)
      : Train(&Train), Ctx(Train), AllTrainRows(allRows(Train)) {}

  const Dataset &trainingSet() const { return *Train; }
  const SplitContext &context() const { return Ctx; }

  /// L(T)(x): the unpoisoned learner's prediction at depth \p Depth.
  unsigned predict(const float *X, unsigned Depth) const;

  /// Full concrete trace (exposes `cprob`, the trace σ, and the leaf).
  TraceResult trace(const float *X, unsigned Depth) const;

  /// Attempts to prove that x's prediction is invariant across every
  /// training set in ∆n(T), n = \p PoisoningBudget.
  Certificate verify(const float *X, uint32_t PoisoningBudget,
                     const VerifierConfig &Config) const;

  /// Verifies every input of \p Inputs under the same budget and config,
  /// fanning the independent queries out across \p Pool (plus the calling
  /// thread). Certificates come back indexed like Inputs, and each query's
  /// verdict is independent of scheduling, so results are deterministic
  /// and thread-count-independent (timings aside). A null/empty pool runs
  /// serially.
  std::vector<Certificate> verifyBatch(const std::vector<const float *> &Inputs,
                                       uint32_t PoisoningBudget,
                                       const VerifierConfig &Config,
                                       ThreadPool *Pool = nullptr) const;

private:
  const Dataset *Train;
  SplitContext Ctx;
  RowIndexList AllTrainRows;
};

} // namespace antidote

#endif // ANTIDOTE_ANTIDOTE_VERIFIER_H
