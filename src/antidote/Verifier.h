//===- antidote/Verifier.h - Poisoning-robustness verifier ------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library's main entry point: given a training set once, verify
/// n-poisoning robustness (Definition 3.1 with the ∆n model of §4.1) for
/// any number of inputs.
///
/// Typical use (see examples/quickstart.cpp):
/// \code
///   Verifier V(Train);
///   VerifierConfig Config;
///   Config.Depth = 2;
///   Config.Domain = AbstractDomainKind::Disjuncts;
///   Certificate Cert = V.verify(Test.row(0), /*PoisoningBudget=*/8, Config);
///   if (Cert.isRobust()) { ... }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_ANTIDOTE_VERIFIER_H
#define ANTIDOTE_ANTIDOTE_VERIFIER_H

#include "antidote/Certificate.h"
#include "concrete/DTrace.h"
#include "data/Fingerprint.h"
#include "support/Budget.h"
#include "support/ThreadPool.h"

namespace antidote {

/// The caching hook `Verifier::verify` talks to. The antidote layer only
/// names the seam; the contract and every implementation live above it
/// in serving/CertificateStore.h.
class CertificateStore;
class ReverifyScheduler;

/// Per-query verification parameters.
struct VerifierConfig {
  unsigned Depth = 2;
  AbstractDomainKind Domain = AbstractDomainKind::Box;

  /// The poisoning threat model the budget n quantifies over
  /// (abstract/ThreatModel.h). Flip queries require the Disjuncts domain
  /// (`threatModel(Threat).supportsDomain`); front ends enforce this
  /// before building a config.
  ThreatModelKind Threat = ThreatModelKind::Removal;

  CprobTransformerKind Cprob = CprobTransformerKind::Optimal;
  GiniLiftingKind Gini = GiniLiftingKind::ExactTerm;
  size_t DisjunctCap = 64; ///< DisjunctsCapped only (precision knob).

  /// Per-query resource budget (timeout / disjunct cap / state bytes);
  /// support/Budget.h is the single home of these knobs.
  ResourceLimits Limits;

  /// Optional shared token; cancelling it stops in-flight queries
  /// cooperatively (they report VerdictKind::Cancelled, or the token's
  /// reason) — the lever `verifyBatch` callers use to abandon a batch.
  const CancellationToken *Cancel = nullptr;

  /// Executors for the frontier fan-out *within* one query's DTrace# run
  /// (1 = serial, 0 = one per hardware thread). Orthogonal to the batch-
  /// level pool `verifyBatch` takes: that knob spreads independent
  /// queries across cores, this one spreads a single hard query's
  /// disjuncts. Certificates are bit-identical for every value.
  unsigned FrontierJobs = 1;

  /// Executors for the per-feature bestSplit# sharding inside each
  /// disjunct's transfer step (1 = serial, 0 = one per hardware thread).
  /// The third fan-out axis, for queries a single disjunct dominates;
  /// shares the one pool with the frontier fan-out (see
  /// AbstractLearnerConfig::SplitJobs). Certificates are bit-identical
  /// for every value.
  unsigned SplitJobs = 1;

  /// Optional externally owned pool for both in-query fan-out levels
  /// (overrides FrontierJobs/SplitJobs-driven pool spawning; see
  /// AbstractLearnerConfig). A sweep passes one long-lived pool here so
  /// thousands of queries do not each re-spawn threads.
  ThreadPool *FrontierPool = nullptr;

  /// Optional certificate store consulted before verifying and updated
  /// after (serving traffic mostly repeats queries, so a warm cache
  /// short-circuits them to the stored certificate). Implementations
  /// must be safe to call from concurrent `verifyBatch` workers; the
  /// serving layer's fingerprint-keyed `CertCache` is the production
  /// one. Null (default) disables caching entirely.
  CertificateStore *Cache = nullptr;

  /// Delta-tolerant serving: when the verifier knows its dataset's
  /// lineage (see `Verifier::setLineage`) and the store misses under
  /// the dataset's own fingerprint, consult it under the *parent*
  /// fingerprint with budget n + RowsRemoved, and serve a Robust
  /// certificate found there (sound for pure-removal deltas; see
  /// `DatasetLineage`). The CLI knob `--delta-slack 0` turns this off
  /// for A/B runs. Ignored without lineage or without a cache — and
  /// under any threat model other than Removal: the n + k containment
  /// argument is about removed rows and does not transfer to flips
  /// (a relabeling of the child set is not a relabeling of the parent).
  bool DeltaSlack = true;

  /// Optional hook the slack path notifies when it serves an answer
  /// from the parent's certificate: the exact re-verification should
  /// run in the background and write the fresh certificate through
  /// under the child's own fingerprint. `CertServer` is the production
  /// implementation (its background queue drains when the foreground
  /// is idle). Null = no background re-verification is scheduled.
  ReverifyScheduler *Reverify = nullptr;
};

/// The background re-verification hook the delta-slack path talks to.
/// When `Verifier::verify` answers a query from the *parent* dataset's
/// certificate (sound, but wider than necessary), it calls
/// `scheduleReverify` so an exact certificate for the child dataset
/// lands in the store without blocking the response. Implementations
/// must be safe to call from concurrent `verifyBatch` workers and must
/// run the re-verification with `DeltaSlack` off (or lineage cleared) —
/// otherwise the background run would serve itself from the same parent
/// certificate instead of verifying.
class ReverifyScheduler {
public:
  virtual ~ReverifyScheduler() = default;

  /// Requests a background exact verification of (\p X .. \p X +
  /// \p NumFeatures, \p PoisoningBudget) against the child dataset.
  /// May coalesce duplicates; best-effort (a dropped request only
  /// costs the next cold query a verification).
  virtual void scheduleReverify(const float *X, unsigned NumFeatures,
                                uint32_t PoisoningBudget) = 0;
};

/// Verifies data-poisoning robustness of decision-tree learning on a fixed
/// training set. Holds the per-dataset acceleration structures, so
/// constructing one Verifier and reusing it across queries is the intended
/// pattern.
///
/// Thread-safety: a constructed Verifier is immutable — `predict`, `trace`,
/// `verify`, and `verifyBatch` only read the dataset, the SplitContext's
/// cached sort orders, and per-call state, so any number of threads may
/// issue queries against one instance concurrently.
class Verifier {
public:
  explicit Verifier(const Dataset &Train)
      : Train(&Train), Ctx(Train), AllTrainRows(allRows(Train)),
        Fingerprint(fingerprintDataset(Train)) {}

  const Dataset &trainingSet() const { return *Train; }
  const SplitContext &context() const { return Ctx; }

  /// Content fingerprint of the training set, computed once at
  /// construction — the dataset component of every cache key this
  /// verifier's queries use (see data/Fingerprint.h).
  const DatasetFingerprint &fingerprint() const { return Fingerprint; }

  /// Declares this verifier's training set a delta of a parent dataset
  /// (see `DatasetLineage`), arming the `DeltaSlack` serving path. The
  /// one exception to "immutable after construction": call it before
  /// issuing queries, never concurrently with them. Typically built
  /// from the parent's fingerprint plus the mutation counters the
  /// `Dataset` kept since `markLineage()` (data/Dataset.h).
  void setLineage(const DatasetLineage &L) { Lineage = L; HasLineage = true; }
  void clearLineage() { HasLineage = false; }
  const DatasetLineage *lineage() const {
    return HasLineage ? &Lineage : nullptr;
  }

  /// L(T)(x): the unpoisoned learner's prediction at depth \p Depth.
  unsigned predict(const float *X, unsigned Depth) const;

  /// Full concrete trace (exposes `cprob`, the trace σ, and the leaf).
  TraceResult trace(const float *X, unsigned Depth) const;

  /// Attempts to prove that x's prediction is invariant across every
  /// training set in ∆n(T), n = \p PoisoningBudget.
  Certificate verify(const float *X, uint32_t PoisoningBudget,
                     const VerifierConfig &Config) const;

  /// Verifies every input of \p Inputs under the same budget and config,
  /// fanning the independent queries out across \p Pool (plus the calling
  /// thread). Certificates come back indexed like Inputs, and each query's
  /// verdict is independent of scheduling, so results are deterministic
  /// and thread-count-independent (timings aside). A null/empty pool runs
  /// serially.
  std::vector<Certificate> verifyBatch(const std::vector<const float *> &Inputs,
                                       uint32_t PoisoningBudget,
                                       const VerifierConfig &Config,
                                       ThreadPool *Pool = nullptr) const;

private:
  const Dataset *Train;
  SplitContext Ctx;
  RowIndexList AllTrainRows;
  DatasetFingerprint Fingerprint;
  DatasetLineage Lineage;
  bool HasLineage = false;
};

} // namespace antidote

#endif // ANTIDOTE_ANTIDOTE_VERIFIER_H
