//===- antidote/Verifier.h - Poisoning-robustness verifier ------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library's main entry point: given a training set once, verify
/// n-poisoning robustness (Definition 3.1 with the ∆n model of §4.1) for
/// any number of inputs.
///
/// Typical use (see examples/quickstart.cpp):
/// \code
///   Verifier V(Train);
///   VerifierConfig Config;
///   Config.Depth = 2;
///   Config.Domain = AbstractDomainKind::Disjuncts;
///   Certificate Cert = V.verify(Test.row(0), /*PoisoningBudget=*/8, Config);
///   if (Cert.isRobust()) { ... }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_ANTIDOTE_VERIFIER_H
#define ANTIDOTE_ANTIDOTE_VERIFIER_H

#include "antidote/Certificate.h"
#include "concrete/DTrace.h"

namespace antidote {

/// Per-query verification parameters.
struct VerifierConfig {
  unsigned Depth = 2;
  AbstractDomainKind Domain = AbstractDomainKind::Box;
  CprobTransformerKind Cprob = CprobTransformerKind::Optimal;
  GiniLiftingKind Gini = GiniLiftingKind::ExactTerm;
  size_t DisjunctCap = 64;        ///< DisjunctsCapped only.
  size_t MaxDisjuncts = 1u << 20; ///< Resource cap; 0 disables.
  uint64_t MaxStateBytes = 0;     ///< Resource cap in bytes; 0 disables.
  double TimeoutSeconds = 0.0;    ///< Per-query budget; 0 disables.
};

/// Verifies data-poisoning robustness of decision-tree learning on a fixed
/// training set. Holds the per-dataset acceleration structures, so
/// constructing one Verifier and reusing it across queries is the intended
/// pattern.
class Verifier {
public:
  explicit Verifier(const Dataset &Train)
      : Train(&Train), Ctx(Train), AllTrainRows(allRows(Train)) {}

  const Dataset &trainingSet() const { return *Train; }
  const SplitContext &context() const { return Ctx; }

  /// L(T)(x): the unpoisoned learner's prediction at depth \p Depth.
  unsigned predict(const float *X, unsigned Depth) const;

  /// Full concrete trace (exposes `cprob`, the trace σ, and the leaf).
  TraceResult trace(const float *X, unsigned Depth) const;

  /// Attempts to prove that x's prediction is invariant across every
  /// training set in ∆n(T), n = \p PoisoningBudget.
  Certificate verify(const float *X, uint32_t PoisoningBudget,
                     const VerifierConfig &Config) const;

private:
  const Dataset *Train;
  SplitContext Ctx;
  RowIndexList AllTrainRows;
};

} // namespace antidote

#endif // ANTIDOTE_ANTIDOTE_VERIFIER_H
