//===- antidote/Enumeration.cpp - Naive enumeration baseline ------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "antidote/Enumeration.h"

#include <limits>

using namespace antidote;

uint64_t antidote::perturbationSetCount(uint32_t Size, uint32_t Budget) {
  uint64_t Total = 0;
  uint64_t Binomial = 1; // C(Size, 0)
  for (uint32_t I = 0; I <= Budget && I <= Size; ++I) {
    if (std::numeric_limits<uint64_t>::max() - Total < Binomial)
      return std::numeric_limits<uint64_t>::max();
    Total += Binomial;
    // C(Size, I+1) = C(Size, I) * (Size - I) / (I + 1), watching overflow.
    uint64_t Numerator = Size - I;
    if (Binomial > std::numeric_limits<uint64_t>::max() / (Numerator + 1))
      return std::numeric_limits<uint64_t>::max();
    Binomial = Binomial * Numerator / (I + 1);
  }
  return Total;
}

namespace {

/// Depth-first enumeration of removal subsets of size ≤ Budget.
class SubsetEnumerator {
public:
  SubsetEnumerator(const SplitContext &Ctx, const RowIndexList &Rows,
                   const float *X, unsigned Depth, uint64_t MaxSets,
                   EnumerationResult &Result)
      : Ctx(Ctx), Rows(Rows), X(X), Depth(Depth), MaxSets(MaxSets),
        Result(Result) {
    Removed.assign(Rows.size(), 0);
  }

  /// Explores removals of positions >= \p First with \p Remaining budget.
  /// Returns false to stop the whole exploration (counterexample found or
  /// the set cap was hit).
  bool explore(size_t First, uint32_t Remaining) {
    if (!check())
      return false;
    if (Remaining == 0)
      return true;
    for (size_t I = First; I < Rows.size(); ++I) {
      // Keep at least one row: DTrace is undefined on an empty set, and no
      // concrete learner run corresponds to it.
      if (NumRemoved + 1 == Rows.size())
        break;
      Removed[I] = 1;
      ++NumRemoved;
      bool Continue = explore(I + 1, Remaining - 1);
      Removed[I] = 0;
      --NumRemoved;
      if (!Continue)
        return false;
    }
    return true;
  }

private:
  /// Retrains on the current subset and checks the prediction.
  bool check() {
    if (Result.SetsChecked >= MaxSets) {
      Result.Exhausted = false;
      return false;
    }
    RowIndexList Kept;
    Kept.reserve(Rows.size() - NumRemoved);
    for (size_t I = 0; I < Rows.size(); ++I)
      if (!Removed[I])
        Kept.push_back(Rows[I]);
    TraceResult Trace = runDTrace(Ctx, std::move(Kept), X, Depth);
    ++Result.SetsChecked;
    if (Trace.PredictedClass == Result.OriginalPrediction)
      return true;
    Result.Robust = false;
    Result.CounterexamplePrediction = Trace.PredictedClass;
    RowIndexList Witness;
    for (size_t I = 0; I < Rows.size(); ++I)
      if (!Removed[I])
        Witness.push_back(Rows[I]);
    Result.CounterexampleRows = std::move(Witness);
    return false;
  }

  const SplitContext &Ctx;
  const RowIndexList &Rows;
  const float *X;
  unsigned Depth;
  uint64_t MaxSets;
  EnumerationResult &Result;
  std::vector<uint8_t> Removed;
  size_t NumRemoved = 0;
};

} // namespace

EnumerationResult antidote::verifyByEnumeration(const SplitContext &Ctx,
                                                const RowIndexList &Rows,
                                                const float *X,
                                                uint32_t Budget,
                                                unsigned Depth,
                                                uint64_t MaxSets) {
  assert(!Rows.empty() && "enumeration over an empty training set");
  EnumerationResult Result;
  Result.OriginalPrediction =
      runDTrace(Ctx, Rows, X, Depth).PredictedClass;
  SubsetEnumerator Enumerator(Ctx, Rows, X, Depth, MaxSets, Result);
  Enumerator.explore(0, std::min<uint32_t>(Budget,
                                           static_cast<uint32_t>(
                                               Rows.size())));
  return Result;
}
