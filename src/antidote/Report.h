//===- antidote/Report.h - Table/series output helpers ----------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plain-text table rendering shared by the bench binaries that regenerate
/// the paper's tables and figure series.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_ANTIDOTE_REPORT_H
#define ANTIDOTE_ANTIDOTE_REPORT_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace antidote {

/// Column-aligned text table accumulated row by row.
class TableWriter {
public:
  explicit TableWriter(std::vector<std::string> Headers)
      : Headers(std::move(Headers)) {}

  void addRow(std::vector<std::string> Cells);

  /// Renders with a header underline and two-space gutters.
  void print(std::FILE *Out = stdout) const;

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

/// "1.23 s" / "45 ms" style durations.
std::string formatSeconds(double Seconds);

/// "1.5 MB" style byte counts.
std::string formatBytes(double Bytes);

/// "97.4" percentages (one decimal, no sign).
std::string formatPercent(double Fraction);

/// Fixed-point double with \p Decimals digits.
std::string formatDouble(double Value, int Decimals = 2);

} // namespace antidote

#endif // ANTIDOTE_ANTIDOTE_REPORT_H
