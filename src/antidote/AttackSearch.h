//===- antidote/AttackSearch.h - Greedy poisoning-attack search -*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A greedy search for concrete poisoning attacks — the complement of the
/// verifier.
///
/// The attack literature the paper positions itself against (§7) *finds*
/// poisoned training sets rather than proving their absence. This module
/// provides that baseline for decision trees under both threat models
/// (abstract/ThreatModel.h): `findPoisoningAttack` greedily removes the
/// training row whose deletion most erodes the predicted class's margin at
/// x's leaf, and `findLabelFlipAttack` greedily relabels the supporter
/// whose flip erodes it most, each re-deriving the trace after every
/// committed perturbation. A found attack certifies non-robustness (it is
/// a concrete witness); failure to find one proves nothing — which is
/// precisely the asymmetry Antidote's sound verification resolves from the
/// other side.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_ANTIDOTE_ATTACKSEARCH_H
#define ANTIDOTE_ANTIDOTE_ATTACKSEARCH_H

#include "concrete/DTrace.h"

namespace antidote {

/// Result of a greedy attack search.
struct AttackResult {
  /// True iff removing `RemovedRows` flips the prediction on x.
  bool Found = false;

  /// The removal set (⊆ original rows, |RemovedRows| ≤ budget).
  RowIndexList RemovedRows;

  unsigned OriginalPrediction = 0;
  unsigned FlippedPrediction = 0;

  /// Number of DTrace retrainings performed.
  uint64_t Retrainings = 0;
};

/// Searches for T' ∈ ∆n(T) with L(T')(x) ≠ L(T)(x) by greedy margin
/// descent. \p CandidatePoolPerStep bounds how many removal candidates are
/// evaluated per step (the rows of x's current leaf carrying the predicted
/// label, subsampled evenly if more).
AttackResult findPoisoningAttack(const SplitContext &Ctx,
                                 const RowIndexList &Rows, const float *X,
                                 uint32_t Budget, unsigned Depth,
                                 unsigned CandidatePoolPerStep = 48);

/// One committed relabeling of a flip attack.
struct LabelFlip {
  uint32_t Row = 0;       ///< Row index into the *original* dataset.
  unsigned NewLabel = 0;  ///< The label the attacker assigns it.
};

/// Result of a greedy label-flip attack search.
struct FlipAttackResult {
  /// True iff applying `Flips` changes the prediction on x.
  bool Found = false;

  /// The relabelings, in commit order (|Flips| ≤ budget, distinct rows).
  std::vector<LabelFlip> Flips;

  unsigned OriginalPrediction = 0;
  unsigned FlippedPrediction = 0;

  /// Number of DTrace retrainings performed.
  uint64_t Retrainings = 0;
};

/// Searches for T_L ∈ ∆flip_n(T) with L(T_L)(x) ≠ L(T)(x) — the flip-model
/// counterpart of `findPoisoningAttack`. Greedy margin descent over the
/// rows of x's current leaf carrying the predicted label, trying every
/// replacement label per candidate; \p CandidatePoolPerStep bounds the
/// candidates evaluated per step (subsampled evenly if more).
FlipAttackResult findLabelFlipAttack(const SplitContext &Ctx,
                                     const RowIndexList &Rows, const float *X,
                                     uint32_t Budget, unsigned Depth,
                                     unsigned CandidatePoolPerStep = 48);

} // namespace antidote

#endif // ANTIDOTE_ANTIDOTE_ATTACKSEARCH_H
