//===- antidote/Report.cpp - Table/series output helpers ----------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "antidote/Report.h"

#include <algorithm>
#include <cassert>

using namespace antidote;

void TableWriter::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Headers.size() && "row width mismatch");
  Rows.push_back(std::move(Cells));
}

void TableWriter::print(std::FILE *Out) const {
  std::vector<size_t> Widths(Headers.size());
  for (size_t C = 0; C < Headers.size(); ++C)
    Widths[C] = Headers[C].size();
  for (const std::vector<std::string> &Row : Rows)
    for (size_t C = 0; C < Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto PrintRow = [&](const std::vector<std::string> &Cells) {
    for (size_t C = 0; C < Cells.size(); ++C)
      std::fprintf(Out, "%-*s%s", static_cast<int>(Widths[C]),
                   Cells[C].c_str(), C + 1 == Cells.size() ? "\n" : "  ");
  };
  PrintRow(Headers);
  size_t TotalWidth = 0;
  for (size_t C = 0; C < Widths.size(); ++C)
    TotalWidth += Widths[C] + (C + 1 == Widths.size() ? 0 : 2);
  std::string Underline(TotalWidth, '-');
  std::fprintf(Out, "%s\n", Underline.c_str());
  for (const std::vector<std::string> &Row : Rows)
    PrintRow(Row);
}

std::string antidote::formatSeconds(double Seconds) {
  char Buf[48];
  if (Seconds < 0.001)
    std::snprintf(Buf, sizeof(Buf), "%.0f us", Seconds * 1e6);
  else if (Seconds < 1.0)
    std::snprintf(Buf, sizeof(Buf), "%.1f ms", Seconds * 1e3);
  else
    std::snprintf(Buf, sizeof(Buf), "%.2f s", Seconds);
  return Buf;
}

std::string antidote::formatBytes(double Bytes) {
  char Buf[48];
  if (Bytes < 1024.0)
    std::snprintf(Buf, sizeof(Buf), "%.0f B", Bytes);
  else if (Bytes < 1024.0 * 1024.0)
    std::snprintf(Buf, sizeof(Buf), "%.1f KB", Bytes / 1024.0);
  else if (Bytes < 1024.0 * 1024.0 * 1024.0)
    std::snprintf(Buf, sizeof(Buf), "%.1f MB", Bytes / (1024.0 * 1024.0));
  else
    std::snprintf(Buf, sizeof(Buf), "%.2f GB",
                  Bytes / (1024.0 * 1024.0 * 1024.0));
  return Buf;
}

std::string antidote::formatPercent(double Fraction) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f", Fraction * 100.0);
  return Buf;
}

std::string antidote::formatDouble(double Value, int Decimals) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, Value);
  return Buf;
}
