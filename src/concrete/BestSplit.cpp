//===- concrete/BestSplit.cpp - Split candidate enumeration ------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "concrete/BestSplit.h"

#include <algorithm>

using namespace antidote;

SplitContext::SplitContext(const Dataset &Base) : Base(&Base) {
  Orders.resize(Base.numFeatures());
  for (unsigned F = 0; F < Base.numFeatures(); ++F) {
    if (Base.schema().FeatureKinds[F] != FeatureKind::Real)
      continue;
    RowIndexList &Order = Orders[F];
    Order = allRows(Base);
    std::sort(Order.begin(), Order.end(), [&Base, F](uint32_t A, uint32_t B) {
      double Va = Base.value(A, F);
      double Vb = Base.value(B, F);
      if (Va != Vb)
        return Va < Vb;
      return A < B;
    });
  }
}

std::optional<SplitPredicate> antidote::bestSplit(const SplitContext &Ctx,
                                                  const RowIndexList &Rows) {
  std::vector<uint32_t> Totals = classCounts(Ctx.base(), Rows);
  uint32_t Total = static_cast<uint32_t>(Rows.size());
  std::optional<SplitPredicate> Best;
  double BestScore = 0.0;
  std::vector<uint32_t> NegCounts(Totals.size());
  forEachCandidateSplit(
      Ctx, Rows, PredicateMode::ConcreteMidpoint,
      [&](const SplitPredicate &Pred, const std::vector<uint32_t> &PosCounts,
          uint32_t PosTotal) {
        for (size_t C = 0; C < Totals.size(); ++C)
          NegCounts[C] = Totals[C] - PosCounts[C];
        double Score = splitScore(PosCounts, PosTotal, NegCounts,
                                  Total - PosTotal);
        // Candidates arrive in ascending (feature, threshold) order, so a
        // strict improvement test yields the smallest tied predicate.
        if (!Best || Score < BestScore) {
          Best = Pred;
          BestScore = Score;
        }
      });
  return Best;
}

RowIndexList antidote::filterRows(const Dataset &Base,
                                  const RowIndexList &Rows,
                                  const SplitPredicate &Pred, bool Positive) {
  assert(!Pred.isSymbolic() && "concrete filter needs a concrete predicate");
  RowIndexList Result;
  for (uint32_t Row : Rows) {
    bool Sat = Pred.evaluate(Base.value(Row, Pred.feature())) ==
               ThreeValued::True;
    if (Sat == Positive)
      Result.push_back(Row);
  }
  return Result;
}
