//===- concrete/BestSplit.cpp - Split candidate enumeration ------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "concrete/BestSplit.h"

#include <algorithm>

using namespace antidote;

SplitContext::SplitContext(const Dataset &Base) : Base(&Base) {
  Orders.resize(Base.numFeatures());
  Values.resize(Base.numFeatures());
  for (unsigned F = 0; F < Base.numFeatures(); ++F) {
    if (Base.schema().FeatureKinds[F] != FeatureKind::Real)
      continue;
    const float *Col = Base.column(F);
    RowIndexList &Order = Orders[F];
    Order = allRows(Base);
    std::sort(Order.begin(), Order.end(), [Col](uint32_t A, uint32_t B) {
      float Va = Col[A];
      float Vb = Col[B];
      if (Va != Vb)
        return Va < Vb;
      return A < B;
    });
    // Materialize the sorted values aligned with the order, so enumeration
    // passes never gather through the row ids.
    std::vector<float> &Sorted = Values[F];
    Sorted.resize(Order.size());
    for (size_t I = 0, E = Order.size(); I < E; ++I)
      Sorted[I] = Col[Order[I]];
  }
}

SplitEnumerationPrepass::SplitEnumerationPrepass(const SplitContext &Ctx,
                                                 const RowIndexList &Rows)
    : Ctx(&Ctx), Rows(&Rows) {
  const Dataset &Base = Ctx.base();
  assert(isCanonicalRowSet(Rows) && "rows must be a canonical row set");
  unsigned NumClasses = Base.numClasses();
  unsigned NumFeatures = Base.numFeatures();

  // Membership mask over the base dataset, so the per-feature passes can
  // walk the cached global sorted orders.
  InRows.assign(Base.numRows(), 0);
  for (uint32_t Row : Rows)
    InRows[Row] = 1;

  // Boolean features: one pass per boolean column accumulates the class
  // counts of its `value == 0` side. The comparison result feeds the count
  // directly (no conditional increment), and each pass reads exactly one
  // column slice plus the label slice.
  bool HasBoolean = false;
  for (unsigned F = 0; F < NumFeatures; ++F)
    if (Base.schema().FeatureKinds[F] == FeatureKind::Boolean)
      HasBoolean = true;
  if (!HasBoolean)
    return;
  ZeroCounts.assign(static_cast<size_t>(NumFeatures) * NumClasses, 0);
  const uint32_t *Labels = Base.labels();
  for (unsigned F = 0; F < NumFeatures; ++F) {
    if (Base.schema().FeatureKinds[F] != FeatureKind::Boolean)
      continue;
    const float *Col = Base.column(F);
    uint32_t *Out = ZeroCounts.data() + static_cast<size_t>(F) * NumClasses;
    for (uint32_t Row : Rows)
      Out[Labels[Row]] += Col[Row] == 0.0f;
  }
}

namespace {

/// One feature's scoring shard of the concrete bestSplit: the feature's
/// local argmin under the same first-wins tie-break the serial scan uses.
struct ConcreteShard {
  std::optional<SplitPredicate> Best;
  double Score = 0.0;
};

} // namespace

std::optional<SplitPredicate> antidote::bestSplit(const SplitContext &Ctx,
                                                  const RowIndexList &Rows,
                                                  ThreadPool *Pool,
                                                  unsigned SplitJobs) {
  std::vector<uint32_t> Totals = classCounts(Ctx.base(), Rows);
  uint32_t Total = static_cast<uint32_t>(Rows.size());
  unsigned NumFeatures = Ctx.base().numFeatures();
  SplitEnumerationPrepass Pre(Ctx, Rows);
  std::vector<ConcreteShard> Shards(NumFeatures);

  // Scores feature F into Out. Per-executor scratch, reused across
  // features: workers and the calling thread each keep their own pair, so
  // a sharded scan allocates nothing per feature.
  auto ScoreFeature = [&](size_t F) {
    thread_local std::vector<uint32_t> PosScratch;
    thread_local std::vector<uint32_t> NegScratch;
    PosScratch.resize(Totals.size());
    NegScratch.resize(Totals.size());
    ConcreteShard &Out = Shards[F];
    forEachFeatureCandidateSplit(
        Pre, static_cast<unsigned>(F), PredicateMode::ConcreteMidpoint,
        PosScratch,
        [&](const SplitPredicate &Pred, const std::vector<uint32_t> &PosCounts,
            uint32_t PosTotal) {
          for (size_t C = 0; C < Totals.size(); ++C)
            NegScratch[C] = Totals[C] - PosCounts[C];
          double Score = splitScore(PosCounts, PosTotal, NegScratch,
                                    Total - PosTotal);
          // Candidates arrive in ascending threshold order, so a strict
          // improvement test yields the smallest tied predicate.
          if (!Out.Best || Score < Out.Score) {
            Out.Best = Pred;
            Out.Score = Score;
          }
        });
  };

  bool Sharded = Pool && Pool->size() > 0 && SplitJobs != 1 && NumFeatures > 1;
  if (Sharded) {
    unsigned Jobs = SplitJobs == 0 ? ThreadPool::hardwareConcurrency()
                                   : SplitJobs;
    OrderedFanout Fanout(Pool, NumFeatures, /*ChunkSize=*/1, ScoreFeature,
                         /*WindowChunks=*/0, /*MaxHelpers=*/Jobs - 1);
    for (unsigned F = 0; F < NumFeatures; ++F)
      Fanout.awaitItem(F);
  } else {
    for (unsigned F = 0; F < NumFeatures; ++F)
      ScoreFeature(F);
  }

  // Fold the per-feature argmins in feature-index order with the same
  // strict improvement test: the first feature attaining the global
  // minimum wins, exactly as in the serial scan.
  std::optional<SplitPredicate> Best;
  double BestScore = 0.0;
  for (const ConcreteShard &Shard : Shards) {
    if (!Shard.Best)
      continue;
    if (!Best || Shard.Score < BestScore) {
      Best = Shard.Best;
      BestScore = Shard.Score;
    }
  }
  return Best;
}

RowIndexList antidote::filterRows(const Dataset &Base,
                                  const RowIndexList &Rows,
                                  const SplitPredicate &Pred, bool Positive) {
  assert(!Pred.isSymbolic() && "concrete filter needs a concrete predicate");
  // Compare-and-compact over one column slice: a concrete predicate is
  // `value ≤ threshold` on a single feature, so the three-valued evaluate
  // collapses to one comparison. Always write the row id, advance the write
  // cursor by the comparison result — no data-dependent branch.
  const float *Col = Base.column(Pred.feature());
  const double Threshold = Pred.lo();
  RowIndexList Result(Rows.size());
  size_t N = 0;
  for (uint32_t Row : Rows) {
    Result[N] = Row;
    N += (static_cast<double>(Col[Row]) <= Threshold) == Positive;
  }
  Result.resize(N);
  return Result;
}
