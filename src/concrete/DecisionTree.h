//===- concrete/DecisionTree.h - Full-tree learner --------------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conventional greedy decision-tree learner (CART-style with Gini
/// impurity) sharing `bestSplit` with DTrace.
///
/// The paper (§3.3) observes that collecting `DTrace(T, x)` over all inputs
/// x yields exactly the conventional tree; this class materializes that
/// tree once so that Table 1's test-set accuracies can be computed without
/// re-running DTrace per test point, and so the equivalence can be checked
/// as a property test (`tests/ConcreteLearnerTests.cpp`).
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_CONCRETE_DECISIONTREE_H
#define ANTIDOTE_CONCRETE_DECISIONTREE_H

#include "concrete/BestSplit.h"

#include <string>

namespace antidote {

/// An immutable learned decision tree (paper §3.2: a well-formed set of
/// root-to-leaf traces).
class DecisionTree {
public:
  struct Node {
    /// Valid for internal nodes only.
    SplitPredicate Pred = SplitPredicate::threshold(0, 0.0);
    int32_t TrueChild = -1;  ///< Node index for rows satisfying Pred.
    int32_t FalseChild = -1; ///< Node index otherwise.
    bool IsLeaf = true;
    unsigned LeafClass = 0;              ///< argmax label (leaves).
    std::vector<uint32_t> ClassCounts;   ///< Training counts at this node.
  };

  /// Learns a depth-≤ \p Depth tree on the given rows (canonical row set
  /// over Ctx.base(), non-empty). Expansion stops at pure nodes and nodes
  /// with no non-trivial split, exactly as DTrace's trace construction
  /// does.
  static DecisionTree learn(const SplitContext &Ctx, const RowIndexList &Rows,
                            unsigned Depth);

  unsigned classify(const float *X) const;

  /// Class probabilities (`cprob`) at x's leaf.
  std::vector<double> classProbabilitiesAt(const float *X) const;

  size_t numNodes() const { return Nodes.size(); }
  const Node &node(size_t I) const { return Nodes[I]; }

  /// Number of root-to-leaf traces (= number of leaves).
  size_t numTraces() const;

  /// Human-readable rendering for examples/diagnostics.
  std::string dump(const Dataset &Schema) const;

private:
  unsigned leafIndexFor(const float *X) const;

  std::vector<Node> Nodes; ///< Nodes[0] is the root.
};

/// Fraction of \p Test rows classified correctly.
double testAccuracy(const DecisionTree &Tree, const Dataset &Test);

} // namespace antidote

#endif // ANTIDOTE_CONCRETE_DECISIONTREE_H
