//===- concrete/Gini.cpp - Concrete cprob / ent / score ----------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "concrete/Gini.h"

#include <cassert>
#include <cstddef>
#include <numeric>

using namespace antidote;

std::vector<double>
antidote::classProbabilities(const std::vector<uint32_t> &Counts) {
  uint64_t Total = std::accumulate(Counts.begin(), Counts.end(), uint64_t(0));
  assert(Total > 0 && "cprob of an empty training set is undefined");
  std::vector<double> Probs(Counts.size());
  for (size_t I = 0, E = Counts.size(); I < E; ++I)
    Probs[I] = static_cast<double>(Counts[I]) / static_cast<double>(Total);
  return Probs;
}

double antidote::giniImpurity(const std::vector<double> &Probs) {
  double Impurity = 0.0;
  for (double P : Probs)
    Impurity += P * (1.0 - P);
  return Impurity;
}

double antidote::giniImpurityFromCounts(const std::vector<uint32_t> &Counts,
                                        uint32_t Total) {
  assert(Total > 0 && "impurity of an empty training set is undefined");
  double Impurity = 0.0;
  double T = Total;
  for (uint32_t C : Counts) {
    double P = C / T;
    Impurity += P * (1.0 - P);
  }
  return Impurity;
}

double antidote::splitScore(const std::vector<uint32_t> &PosCounts,
                            uint32_t PosTotal,
                            const std::vector<uint32_t> &NegCounts,
                            uint32_t NegTotal) {
  assert(PosTotal > 0 && NegTotal > 0 && "score requires a non-trivial split");
  return PosTotal * giniImpurityFromCounts(PosCounts, PosTotal) +
         NegTotal * giniImpurityFromCounts(NegCounts, NegTotal);
}

bool antidote::isPure(const std::vector<uint32_t> &Counts) {
  unsigned NonZero = 0;
  for (uint32_t C : Counts)
    if (C > 0)
      ++NonZero;
  return NonZero <= 1;
}

unsigned antidote::argmaxClass(const std::vector<uint32_t> &Counts) {
  assert(!Counts.empty() && "no classes");
  unsigned Best = 0;
  for (unsigned I = 1, E = static_cast<unsigned>(Counts.size()); I < E; ++I)
    if (Counts[I] > Counts[Best])
      Best = I;
  return Best;
}
