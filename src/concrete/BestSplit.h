//===- concrete/BestSplit.h - Split candidate enumeration -------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Candidate split enumeration and the concrete `bestSplit` (paper §3.3,
/// §5.1).
///
/// For a real-valued feature the learner considers one threshold per pair of
/// adjacent distinct values occurring in the current training set, namely
/// the midpoint (a+b)/2 (`DTraceR`, §5.1); the abstract learner considers
/// the symbolic interval [a, b) for the same pairs (Appendix B.2). Both the
/// concrete and abstract `bestSplit` operators therefore share one
/// enumerator, split into two layers so candidate scoring can shard across
/// threads *per feature*:
///
///  - `SplitEnumerationPrepass` — the read-only state every per-feature
///    pass needs (the row-membership mask and, for boolean features, the
///    class counts of each feature's `value == 0` side), built in one
///    row-major pass and then shared by any number of concurrent
///    per-feature passes.
///  - `forEachFeatureCandidateSplit` — streams one feature's candidates in
///    ascending threshold order. Distinct features touch disjoint state,
///    so per-feature calls are safe to run on different threads, and
///    concatenating their emissions in feature-index order replays exactly
///    the serial enumeration order — the property the sharded `bestSplit` /
///    `bestSplit#` implementations rely on for bit-identical results.
///  - `forEachCandidateSplit` — the serial composition of the two, kept as
///    the single-threaded entry point.
///
/// `SplitContext` caches, per base dataset, the per-feature value-sorted row
/// orders that make each enumeration a single filtered pass (O(|features| ×
/// |base rows|)) instead of a fresh sort per tree node — plus, aligned with
/// each order, the sorted column values themselves, so the enumeration scans
/// two dense arrays instead of gathering values row-by-row.
///
/// Kernel shape: each per-feature pass first *compacts* the in-set entries
/// of the sorted order into dense (value, label) scratch with an
/// always-write/conditionally-advance loop (no data-dependent branch), then
/// scans the dense slice for value boundaries. Both passes touch only
/// contiguous memory, which is what lets the compiler vectorize them.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_CONCRETE_BESTSPLIT_H
#define ANTIDOTE_CONCRETE_BESTSPLIT_H

#include "concrete/Gini.h"
#include "concrete/Predicate.h"
#include "data/Dataset.h"
#include "support/ThreadPool.h"

#include <optional>

namespace antidote {

/// Whether the enumerator should emit the concrete midpoint threshold or
/// the symbolic interval predicate for each adjacent value pair.
enum class PredicateMode : uint8_t {
  ConcreteMidpoint, ///< `x ≤ (a+b)/2` — used by DTrace / DTraceR.
  SymbolicInterval, ///< `x ≤ [a, b)` — used by DTrace#_R (Appendix B.2).
};

/// Immutable per-dataset acceleration structure for split enumeration.
class SplitContext {
public:
  explicit SplitContext(const Dataset &Base);

  const Dataset &base() const { return *Base; }

  /// Row ids of the base dataset sorted by (value of \p Feature, row id).
  /// Only available for Real features.
  const RowIndexList &sortedOrder(unsigned Feature) const {
    assert(Base->schema().FeatureKinds[Feature] == FeatureKind::Real &&
           "sorted order is only built for real features");
    return Orders[Feature];
  }

  /// Column values of \p Feature aligned with `sortedOrder(Feature)`:
  /// `sortedValues(F)[I] == column(F)[sortedOrder(F)[I]]`. Lets the
  /// enumeration read the sorted values with unit stride instead of
  /// gathering through the row ids. Only available for Real features.
  const float *sortedValues(unsigned Feature) const {
    assert(Base->schema().FeatureKinds[Feature] == FeatureKind::Real &&
           "sorted values are only built for real features");
    return Values[Feature].data();
  }

private:
  const Dataset *Base;
  std::vector<RowIndexList> Orders; ///< Indexed by feature; empty if Boolean.
  std::vector<std::vector<float>> Values; ///< Aligned with Orders.
};

/// Read-only state shared by every per-feature enumeration pass over one
/// row set: the base-row membership mask and (when the schema has boolean
/// features) the per-feature class counts of the `value == 0` side.
/// Building it is the one row-major pass of the enumeration; afterwards it
/// is never mutated, so any number of threads may run
/// `forEachFeatureCandidateSplit` against one prepass concurrently. The
/// referenced context and row list must outlive the prepass.
class SplitEnumerationPrepass {
public:
  SplitEnumerationPrepass(const SplitContext &Ctx, const RowIndexList &Rows);

  const SplitContext &context() const { return *Ctx; }
  const RowIndexList &rows() const { return *Rows; }
  uint32_t total() const { return static_cast<uint32_t>(Rows->size()); }

  bool contains(uint32_t Row) const { return InRows[Row]; }

  /// Class counts of boolean feature \p Feature's `value == 0` side (null
  /// when the schema has no boolean features).
  const uint32_t *zeroCounts(unsigned Feature) const {
    assert(!ZeroCounts.empty() && "no boolean feature in the schema");
    return ZeroCounts.data() +
           static_cast<size_t>(Feature) * Ctx->base().numClasses();
  }

private:
  const SplitContext *Ctx;
  const RowIndexList *Rows;
  std::vector<uint8_t> InRows;      ///< Membership mask over the base rows.
  std::vector<uint32_t> ZeroCounts; ///< feature-major; empty if no booleans.
};

/// Streams feature \p Feature's candidate splits of `Pre.rows()` in
/// ascending threshold order, invoking
///   `Cb(const SplitPredicate &P, const std::vector<uint32_t> &PosCounts,
///       uint32_t PosTotal)`
/// exactly as `forEachCandidateSplit` does for the full enumeration.
/// \p PosCounts is caller-provided scratch of size `numClasses()` (each
/// concurrent caller brings its own). Candidates whose positive side would
/// be empty or the whole set are skipped (trivial for every consumer).
template <typename Callback>
void forEachFeatureCandidateSplit(const SplitEnumerationPrepass &Pre,
                                  unsigned Feature, PredicateMode Mode,
                                  std::vector<uint32_t> &PosCounts,
                                  Callback &&Cb) {
  const Dataset &Base = Pre.context().base();
  unsigned NumClasses = Base.numClasses();
  uint32_t Total = Pre.total();
  assert(PosCounts.size() == NumClasses && "scratch sized to the classes");

  if (Base.schema().FeatureKinds[Feature] == FeatureKind::Boolean) {
    // Boolean feature: at most the single predicate `x_F ≤ 0.5`, present
    // iff both values occur in the row set.
    const uint32_t *Counts = Pre.zeroCounts(Feature);
    uint32_t PosTotal = 0;
    for (unsigned C = 0; C < NumClasses; ++C) {
      PosCounts[C] = Counts[C];
      PosTotal += Counts[C];
    }
    if (PosTotal == 0 || PosTotal == Total)
      return;
    Cb(SplitPredicate::threshold(Feature, 0.5), PosCounts, PosTotal);
    return;
  }

  // Real feature. The boundary scan runs over a dense (value, label)
  // sequence in sorted order; how that sequence is produced depends on the
  // row set:
  //
  //  - Full row set (the top-of-tree case and every entire-dataset abstract
  //    query): the SplitContext's presorted value slice *is* the sequence —
  //    no membership test, no compaction, just two unit-stride reads.
  //  - Proper subset: compact the in-set entries into scratch first with an
  //    always-write/conditionally-advance loop (no data-dependent branch),
  //    then scan the dense slice.
  //
  // Both paths visit the same (value, label) sequence in the same order, so
  // every consumer sees bit-identical candidates.
  const RowIndexList &Order = Pre.context().sortedOrder(Feature);
  const float *SortedVals = Pre.context().sortedValues(Feature);
  const uint32_t *Labels = Base.labels();
  const size_t OrderSize = Order.size();

  std::fill(PosCounts.begin(), PosCounts.end(), 0);
  uint32_t PosTotal = 0;
  bool HavePrev = false;
  double Prev = 0.0;
  auto EmitBoundary = [&](double V) {
    if (HavePrev && V != Prev) {
      assert(PosTotal > 0 && PosTotal < Total && "boundary must split");
      if (Mode == PredicateMode::ConcreteMidpoint)
        Cb(SplitPredicate::threshold(Feature, (Prev + V) / 2.0), PosCounts,
           PosTotal);
      else
        Cb(SplitPredicate::symbolic(Feature, Prev, V), PosCounts, PosTotal);
    }
    Prev = V;
    HavePrev = true;
  };

  if (Total == OrderSize) {
    for (size_t I = 0; I < OrderSize; ++I) {
      EmitBoundary(SortedVals[I]);
      ++PosCounts[Labels[Order[I]]];
      ++PosTotal;
    }
    return;
  }

  thread_local std::vector<float> ValScratch;
  thread_local std::vector<uint32_t> LabScratch;
  ValScratch.resize(OrderSize);
  LabScratch.resize(OrderSize);
  size_t N = 0;
  for (size_t I = 0; I < OrderSize; ++I) {
    const uint32_t Row = Order[I];
    ValScratch[N] = SortedVals[I];
    LabScratch[N] = Labels[Row];
    N += Pre.contains(Row);
  }
  assert(N == Total && "compaction must keep exactly the row set");

  for (size_t I = 0; I < N; ++I) {
    EmitBoundary(ValScratch[I]);
    ++PosCounts[LabScratch[I]];
    ++PosTotal;
  }
}

/// Streams every candidate split of \p Rows (which must be a canonical row
/// set over `Ctx.base()`): the serial composition of one prepass and the
/// per-feature passes in ascending feature order.
///
/// For each candidate, invokes
///   `Cb(const SplitPredicate &P, const std::vector<uint32_t> &PosCounts,
///       uint32_t PosTotal)`
/// where PosCounts/PosTotal describe `T↓P` (rows satisfying the predicate).
/// The negative side is `Totals - PosCounts`. Candidates whose positive
/// side would be empty or the whole set are skipped: they are trivial for
/// the concrete learner (Φ' in §3.3) and excluded from both Φ∃ and Φ∀ in
/// the abstract learner (§4.6), so no consumer wants them.
template <typename Callback>
void forEachCandidateSplit(const SplitContext &Ctx, const RowIndexList &Rows,
                           PredicateMode Mode, Callback &&Cb) {
  SplitEnumerationPrepass Pre(Ctx, Rows);
  std::vector<uint32_t> PosCounts(Ctx.base().numClasses());
  for (unsigned F = 0; F < Ctx.base().numFeatures(); ++F)
    forEachFeatureCandidateSplit(Pre, F, Mode, PosCounts, Cb);
}

/// The concrete `bestSplit(T)` of §3.3 (with §5.1's dynamic thresholds for
/// real features): the non-trivially-splitting predicate minimizing
/// `score`, or `std::nullopt` for ⋄ when no such predicate exists. Ties are
/// broken toward the smallest (feature, threshold); the paper leaves them
/// nondeterministic (see DESIGN.md §5).
///
/// With \p Pool and `SplitJobs != 1` the per-feature scoring passes shard
/// onto the pool (`SplitJobs` caps the executors recruited, 0 = one per
/// hardware thread); the per-shard argmins fold in feature-index order
/// with a strict improvement test, so the winner is bit-identical to the
/// serial scan for every job count.
std::optional<SplitPredicate> bestSplit(const SplitContext &Ctx,
                                        const RowIndexList &Rows,
                                        ThreadPool *Pool = nullptr,
                                        unsigned SplitJobs = 1);

/// Rows of \p Rows on the requested side of a concrete predicate. The
/// predicate must not be symbolic.
RowIndexList filterRows(const Dataset &Base, const RowIndexList &Rows,
                        const SplitPredicate &Pred, bool Positive);

} // namespace antidote

#endif // ANTIDOTE_CONCRETE_BESTSPLIT_H
