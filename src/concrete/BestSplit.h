//===- concrete/BestSplit.h - Split candidate enumeration -------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Candidate split enumeration and the concrete `bestSplit` (paper §3.3,
/// §5.1).
///
/// For a real-valued feature the learner considers one threshold per pair of
/// adjacent distinct values occurring in the current training set, namely
/// the midpoint (a+b)/2 (`DTraceR`, §5.1); the abstract learner considers
/// the symbolic interval [a, b) for the same pairs (Appendix B.2). Both the
/// concrete and abstract `bestSplit` operators therefore share one
/// enumerator, `forEachCandidateSplit`, which streams every candidate
/// together with the class counts of its positive side.
///
/// `SplitContext` caches, per base dataset, the per-feature value-sorted row
/// orders that make each enumeration a single filtered pass (O(|features| ×
/// |base rows|)) instead of a fresh sort per tree node.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_CONCRETE_BESTSPLIT_H
#define ANTIDOTE_CONCRETE_BESTSPLIT_H

#include "concrete/Gini.h"
#include "concrete/Predicate.h"
#include "data/Dataset.h"

#include <optional>

namespace antidote {

/// Whether the enumerator should emit the concrete midpoint threshold or
/// the symbolic interval predicate for each adjacent value pair.
enum class PredicateMode : uint8_t {
  ConcreteMidpoint, ///< `x ≤ (a+b)/2` — used by DTrace / DTraceR.
  SymbolicInterval, ///< `x ≤ [a, b)` — used by DTrace#_R (Appendix B.2).
};

/// Immutable per-dataset acceleration structure for split enumeration.
class SplitContext {
public:
  explicit SplitContext(const Dataset &Base);

  const Dataset &base() const { return *Base; }

  /// Row ids of the base dataset sorted by (value of \p Feature, row id).
  /// Only available for Real features.
  const RowIndexList &sortedOrder(unsigned Feature) const {
    assert(Base->schema().FeatureKinds[Feature] == FeatureKind::Real &&
           "sorted order is only built for real features");
    return Orders[Feature];
  }

private:
  const Dataset *Base;
  std::vector<RowIndexList> Orders; ///< Indexed by feature; empty if Boolean.
};

/// Streams every candidate split of \p Rows (which must be a canonical row
/// set over `Ctx.base()`).
///
/// For each candidate, invokes
///   `Cb(const SplitPredicate &P, const std::vector<uint32_t> &PosCounts,
///       uint32_t PosTotal)`
/// where PosCounts/PosTotal describe `T↓P` (rows satisfying the predicate).
/// The negative side is `Totals - PosCounts`. Candidates whose positive
/// side would be empty or the whole set are skipped: they are trivial for
/// the concrete learner (Φ' in §3.3) and excluded from both Φ∃ and Φ∀ in
/// the abstract learner (§4.6), so no consumer wants them.
///
/// Boolean features contribute at most the single predicate `x_F ≤ 0.5`
/// (present iff both values occur in \p Rows); real features contribute one
/// candidate per adjacent pair of distinct values, in ascending feature /
/// threshold order.
template <typename Callback>
void forEachCandidateSplit(const SplitContext &Ctx, const RowIndexList &Rows,
                           PredicateMode Mode, Callback &&Cb) {
  const Dataset &Base = Ctx.base();
  assert(isCanonicalRowSet(Rows) && "rows must be a canonical row set");
  unsigned NumClasses = Base.numClasses();
  unsigned NumFeatures = Base.numFeatures();
  uint32_t Total = static_cast<uint32_t>(Rows.size());

  // Membership mask over the base dataset, so the per-feature passes can
  // walk the cached global sorted orders.
  std::vector<uint8_t> InRows(Base.numRows(), 0);
  for (uint32_t Row : Rows)
    InRows[Row] = 1;

  // Boolean features: one row-major pass accumulates, for every boolean
  // feature at once, the class counts of the `value == 0` side.
  bool HasBoolean = false;
  for (unsigned F = 0; F < NumFeatures; ++F)
    if (Base.schema().FeatureKinds[F] == FeatureKind::Boolean)
      HasBoolean = true;
  std::vector<uint32_t> ZeroCounts;
  if (HasBoolean) {
    ZeroCounts.assign(static_cast<size_t>(NumFeatures) * NumClasses, 0);
    for (uint32_t Row : Rows) {
      const float *Values = Base.row(Row);
      unsigned Label = Base.label(Row);
      for (unsigned F = 0; F < NumFeatures; ++F)
        if (Values[F] == 0.0f)
          ++ZeroCounts[static_cast<size_t>(F) * NumClasses + Label];
    }
  }

  std::vector<uint32_t> PosCounts(NumClasses);
  for (unsigned F = 0; F < NumFeatures; ++F) {
    if (Base.schema().FeatureKinds[F] == FeatureKind::Boolean) {
      const uint32_t *Counts =
          ZeroCounts.data() + static_cast<size_t>(F) * NumClasses;
      uint32_t PosTotal = 0;
      for (unsigned C = 0; C < NumClasses; ++C) {
        PosCounts[C] = Counts[C];
        PosTotal += Counts[C];
      }
      if (PosTotal == 0 || PosTotal == Total)
        continue;
      Cb(SplitPredicate::threshold(F, 0.5), PosCounts, PosTotal);
      continue;
    }

    // Real feature: walk the global order restricted to the current rows,
    // emitting a candidate at every boundary between distinct values.
    std::fill(PosCounts.begin(), PosCounts.end(), 0);
    uint32_t PosTotal = 0;
    bool HavePrev = false;
    double Prev = 0.0;
    for (uint32_t Row : Ctx.sortedOrder(F)) {
      if (!InRows[Row])
        continue;
      double V = Base.value(Row, F);
      if (HavePrev && V != Prev) {
        assert(PosTotal > 0 && PosTotal < Total && "boundary must split");
        if (Mode == PredicateMode::ConcreteMidpoint)
          Cb(SplitPredicate::threshold(F, (Prev + V) / 2.0), PosCounts,
             PosTotal);
        else
          Cb(SplitPredicate::symbolic(F, Prev, V), PosCounts, PosTotal);
      }
      Prev = V;
      HavePrev = true;
      ++PosCounts[Base.label(Row)];
      ++PosTotal;
    }
    std::fill(PosCounts.begin(), PosCounts.end(), 0);
  }
}

/// The concrete `bestSplit(T)` of §3.3 (with §5.1's dynamic thresholds for
/// real features): the non-trivially-splitting predicate minimizing
/// `score`, or `std::nullopt` for ⋄ when no such predicate exists. Ties are
/// broken toward the smallest (feature, threshold); the paper leaves them
/// nondeterministic (see DESIGN.md §5).
std::optional<SplitPredicate> bestSplit(const SplitContext &Ctx,
                                        const RowIndexList &Rows);

/// Rows of \p Rows on the requested side of a concrete predicate. The
/// predicate must not be symbolic.
RowIndexList filterRows(const Dataset &Base, const RowIndexList &Rows,
                        const SplitPredicate &Pred, bool Positive);

} // namespace antidote

#endif // ANTIDOTE_CONCRETE_BESTSPLIT_H
