//===- concrete/DecisionTree.cpp - Full-tree learner -------------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "concrete/DecisionTree.h"

#include <cstdio>

using namespace antidote;

namespace {

/// Work-list entry for iterative tree construction.
struct PendingNode {
  size_t NodeIndex;
  RowIndexList Rows;
  unsigned RemainingDepth;
};

} // namespace

DecisionTree DecisionTree::learn(const SplitContext &Ctx,
                                 const RowIndexList &Rows, unsigned Depth) {
  assert(!Rows.empty() && "cannot learn from an empty training set");
  const Dataset &Base = Ctx.base();
  DecisionTree Tree;

  std::vector<PendingNode> WorkList;
  Tree.Nodes.emplace_back();
  WorkList.push_back(PendingNode{0, Rows, Depth});

  while (!WorkList.empty()) {
    PendingNode Item = std::move(WorkList.back());
    WorkList.pop_back();

    std::vector<uint32_t> Counts = classCounts(Base, Item.Rows);
    Tree.Nodes[Item.NodeIndex].ClassCounts = Counts;
    Tree.Nodes[Item.NodeIndex].LeafClass = argmaxClass(Counts);

    if (Item.RemainingDepth == 0 || isPure(Counts))
      continue;
    std::optional<SplitPredicate> Pred = bestSplit(Ctx, Item.Rows);
    if (!Pred)
      continue;

    RowIndexList TrueRows = filterRows(Base, Item.Rows, *Pred, true);
    RowIndexList FalseRows = filterRows(Base, Item.Rows, *Pred, false);
    assert(!TrueRows.empty() && !FalseRows.empty() &&
           "bestSplit returned a trivial split");

    size_t TrueIndex = Tree.Nodes.size();
    Tree.Nodes.emplace_back();
    size_t FalseIndex = Tree.Nodes.size();
    Tree.Nodes.emplace_back();

    Node &Parent = Tree.Nodes[Item.NodeIndex];
    Parent.IsLeaf = false;
    Parent.Pred = *Pred;
    Parent.TrueChild = static_cast<int32_t>(TrueIndex);
    Parent.FalseChild = static_cast<int32_t>(FalseIndex);

    WorkList.push_back(PendingNode{TrueIndex, std::move(TrueRows),
                                   Item.RemainingDepth - 1});
    WorkList.push_back(PendingNode{FalseIndex, std::move(FalseRows),
                                   Item.RemainingDepth - 1});
  }
  return Tree;
}

unsigned DecisionTree::leafIndexFor(const float *X) const {
  assert(!Nodes.empty() && "classifying with an empty tree");
  unsigned Index = 0;
  while (!Nodes[Index].IsLeaf) {
    const Node &N = Nodes[Index];
    bool Sat = N.Pred.evaluate(X) == ThreeValued::True;
    Index = static_cast<unsigned>(Sat ? N.TrueChild : N.FalseChild);
  }
  return Index;
}

unsigned DecisionTree::classify(const float *X) const {
  return Nodes[leafIndexFor(X)].LeafClass;
}

std::vector<double> DecisionTree::classProbabilitiesAt(const float *X) const {
  return classProbabilities(Nodes[leafIndexFor(X)].ClassCounts);
}

size_t DecisionTree::numTraces() const {
  size_t Leaves = 0;
  for (const Node &N : Nodes)
    if (N.IsLeaf)
      ++Leaves;
  return Leaves;
}

static void dumpNode(const DecisionTree &Tree, size_t Index, unsigned Indent,
                     std::string &Out) {
  const DecisionTree::Node &N = Tree.node(Index);
  Out.append(Indent * 2, ' ');
  if (N.IsLeaf) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "leaf: class %u (", N.LeafClass);
    Out += Buf;
    for (size_t C = 0; C < N.ClassCounts.size(); ++C) {
      std::snprintf(Buf, sizeof(Buf), "%s%u", C ? ", " : "",
                    N.ClassCounts[C]);
      Out += Buf;
    }
    Out += ")\n";
    return;
  }
  Out += "if " + N.Pred.str() + ":\n";
  dumpNode(Tree, static_cast<size_t>(N.TrueChild), Indent + 1, Out);
  Out.append(Indent * 2, ' ');
  Out += "else:\n";
  dumpNode(Tree, static_cast<size_t>(N.FalseChild), Indent + 1, Out);
}

std::string DecisionTree::dump(const Dataset &) const {
  std::string Out;
  dumpNode(*this, 0, 0, Out);
  return Out;
}

double antidote::testAccuracy(const DecisionTree &Tree, const Dataset &Test) {
  assert(Test.numRows() > 0 && "accuracy of an empty test set");
  unsigned Correct = 0;
  for (unsigned Row = 0; Row < Test.numRows(); ++Row)
    if (Tree.classify(Test.row(Row)) == Test.label(Row))
      ++Correct;
  return static_cast<double>(Correct) / Test.numRows();
}
