//===- concrete/DTrace.cpp - Trace-based decision-tree learner ---------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "concrete/DTrace.h"

using namespace antidote;

TraceResult antidote::runDTrace(const SplitContext &Ctx, RowIndexList Rows,
                                const float *X, unsigned Depth) {
  assert(!Rows.empty() && "DTrace requires a non-empty training set");
  const Dataset &Base = Ctx.base();
  TraceResult Result;
  Result.Stop = TraceStopReason::DepthExhausted;

  std::vector<uint32_t> Counts = classCounts(Base, Rows);
  for (unsigned Iter = 0; Iter < Depth; ++Iter) {
    if (isPure(Counts)) {
      Result.Stop = TraceStopReason::PureLeaf;
      break;
    }
    std::optional<SplitPredicate> Pred = bestSplit(Ctx, Rows);
    if (!Pred) {
      Result.Stop = TraceStopReason::NoSplit;
      break;
    }
    bool Satisfied = Pred->evaluate(X) == ThreeValued::True;
    Rows = filterRows(Base, Rows, *Pred, Satisfied);
    assert(!Rows.empty() && "non-trivial split left x's side empty");
    Counts = classCounts(Base, Rows);
    Result.Trace.emplace_back(*Pred, Satisfied);
  }

  Result.FinalRows = std::move(Rows);
  Result.FinalCounts = Counts;
  Result.ClassProbs = classProbabilities(Counts);
  Result.PredictedClass = argmaxClass(Counts);
  return Result;
}
