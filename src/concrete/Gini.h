//===- concrete/Gini.h - Concrete cprob / ent / score -----------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concrete auxiliary operators of paper Figure 5.
///
/// `cprob(T)` is the vector of class probabilities, `ent(T)` is Gini
/// impurity `Σ p_i (1 − p_i)` (as in CART), and `score(T, φ)` is the
/// impurity-weighted objective `|T↓φ|·ent(T↓φ) + |T↓¬φ|·ent(T↓¬φ)` that
/// `bestSplit` minimizes. All operators are count-based so the abstract
/// transformers in `abstract/AbstractGini.h` can mirror them exactly.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_CONCRETE_GINI_H
#define ANTIDOTE_CONCRETE_GINI_H

#include <cstdint>
#include <vector>

namespace antidote {

/// `cprob`: per-class probabilities c_i / Σc. Requires a non-empty count
/// vector with a positive total.
std::vector<double> classProbabilities(const std::vector<uint32_t> &Counts);

/// Gini impurity of a probability vector: Σ p (1 − p).
double giniImpurity(const std::vector<double> &Probs);

/// Gini impurity straight from class counts.
double giniImpurityFromCounts(const std::vector<uint32_t> &Counts,
                              uint32_t Total);

/// `score(T, φ)` from the class counts of the two sides of the split.
double splitScore(const std::vector<uint32_t> &PosCounts, uint32_t PosTotal,
                  const std::vector<uint32_t> &NegCounts, uint32_t NegTotal);

/// True iff the counts describe a zero-entropy (single-class) set.
bool isPure(const std::vector<uint32_t> &Counts);

/// `argmax_i p_i` with deterministic lowest-index tie-breaking (the paper
/// leaves ties nondeterministic; see DESIGN.md §5).
unsigned argmaxClass(const std::vector<uint32_t> &Counts);

} // namespace antidote

#endif // ANTIDOTE_CONCRETE_GINI_H
