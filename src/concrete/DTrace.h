//===- concrete/DTrace.h - Trace-based decision-tree learner ----*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `DTrace` — the input-directed, trace-based learner of paper Figure 4.
///
/// Given a training set T and an input x, DTrace constructs only the
/// root-to-leaf trace that x would traverse in the tree learned on T: it
/// repeatedly (i) checks for a zero-entropy set, (ii) picks the best
/// predicate, and (iii) filters T down to the side x falls on, up to a
/// maximum depth d. This trace-based view is what makes the abstract
/// interpretation in `abstract/AbstractDTrace.h` tractable — there is no
/// need to abstract whole trees, only the evolving training set along one
/// trace (§3.3).
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_CONCRETE_DTRACE_H
#define ANTIDOTE_CONCRETE_DTRACE_H

#include "concrete/BestSplit.h"

namespace antidote {

/// Why the learner's loop stopped.
enum class TraceStopReason : uint8_t {
  PureLeaf,       ///< `ent(T) = 0` held.
  NoSplit,        ///< `bestSplit` returned ⋄ (no non-trivial predicate).
  DepthExhausted, ///< The d-iteration budget ran out.
};

/// One executed step of the trace: the chosen predicate and whether x
/// satisfied it (i.e. which side `filter` kept).
struct TraceStep {
  SplitPredicate Pred;
  bool Satisfied;

  TraceStep(SplitPredicate Pred, bool Satisfied)
      : Pred(Pred), Satisfied(Satisfied) {}
};

/// The final state of a DTrace run.
struct TraceResult {
  /// `argmax_i p_i` over the final training set, lowest-index tie-break.
  unsigned PredictedClass = 0;

  /// `cprob` of the final training set.
  std::vector<double> ClassProbs;

  /// Class counts of the final training set (used by tests and by the
  /// attack-search baseline).
  std::vector<uint32_t> FinalCounts;

  /// Rows of the final (filtered) training set.
  RowIndexList FinalRows;

  /// The sequence σ of predicates along the trace, with x's outcomes.
  std::vector<TraceStep> Trace;

  TraceStopReason Stop = TraceStopReason::DepthExhausted;
};

/// Runs DTrace(T, x) for `T = Rows` (a canonical row set over Ctx.base())
/// up to depth \p Depth. \p Rows must be non-empty. Nondeterministic
/// choices in the paper (tied predicates, tied labels) are resolved to the
/// smallest candidate; the abstract learner instead tracks all of them.
TraceResult runDTrace(const SplitContext &Ctx, RowIndexList Rows,
                      const float *X, unsigned Depth);

} // namespace antidote

#endif // ANTIDOTE_CONCRETE_DTRACE_H
