//===- concrete/Predicate.h - Split predicates ------------------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Threshold predicates over feature vectors, both concrete and symbolic.
///
/// Decision-tree learners split datasets with predicates of the form
/// `λx. x_i ≤ τ` (paper §3.3, §5.1). The abstract learner additionally needs
/// *symbolic* real-valued predicates `λx. x_i ≤ [a, b)` that stand for every
/// threshold an adversary could have induced by dropping training rows
/// (paper Appendix B, Definition B.2); their evaluation on a point is
/// three-valued. Both flavours share one representation here: a concrete
/// predicate is the degenerate case where the threshold interval collapses
/// to a single point.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_CONCRETE_PREDICATE_H
#define ANTIDOTE_CONCRETE_PREDICATE_H

#include <cassert>
#include <cstdint>
#include <string>
#include <tuple>

namespace antidote {

/// Three-valued truth for symbolic predicate evaluation (Definition B.2).
enum class ThreeValued : uint8_t { False, Maybe, True };

/// A predicate `λx. x_F ≤ τ` with τ either a fixed threshold or ranging
/// over a half-open interval [Lo, Hi).
class SplitPredicate {
public:
  /// Concrete predicate `x_Feature ≤ Threshold`.
  static SplitPredicate threshold(uint32_t Feature, double Threshold) {
    return SplitPredicate(Feature, Threshold, Threshold);
  }

  /// Symbolic predicate `x_Feature ≤ τ` for τ ∈ [Lo, Hi); requires Lo < Hi.
  static SplitPredicate symbolic(uint32_t Feature, double Lo, double Hi) {
    assert(Lo < Hi && "symbolic threshold interval must be non-degenerate");
    return SplitPredicate(Feature, Lo, Hi);
  }

  uint32_t feature() const { return Feature; }
  double lo() const { return Lo; }
  double hi() const { return Hi; }
  bool isSymbolic() const { return Lo < Hi; }

  /// The fixed threshold of a concrete predicate.
  double thresholdValue() const {
    assert(!isSymbolic() && "symbolic predicate has no single threshold");
    return Lo;
  }

  /// Three-valued evaluation on a feature value (Definition B.2): True if
  /// `V ≤ τ` for every τ in the threshold set, False if for none, Maybe
  /// otherwise. Concrete predicates never evaluate to Maybe.
  ThreeValued evaluate(double V) const {
    if (V <= Lo)
      return ThreeValued::True;
    if (V < Hi)
      return ThreeValued::Maybe;
    return ThreeValued::False;
  }

  /// Evaluation on a full feature vector.
  ThreeValued evaluate(const float *X) const { return evaluate(X[Feature]); }

  /// True iff the concrete predicate `x_Feature ≤ Threshold` is a member of
  /// this predicate's concretization γ(ρ) = {x ≤ τ | τ ∈ [Lo, Hi)} (for a
  /// concrete predicate, γ is the singleton {x ≤ Lo}).
  bool concretizationContains(uint32_t OtherFeature, double Threshold) const {
    if (Feature != OtherFeature)
      return false;
    if (!isSymbolic())
      return Threshold == Lo;
    return Lo <= Threshold && Threshold < Hi;
  }

  bool operator==(const SplitPredicate &Other) const {
    return Feature == Other.Feature && Lo == Other.Lo && Hi == Other.Hi;
  }
  bool operator!=(const SplitPredicate &Other) const {
    return !(*this == Other);
  }

  /// Deterministic total order (feature, then threshold interval); used for
  /// reproducible tie-breaking and canonical predicate-set ordering.
  bool operator<(const SplitPredicate &Other) const {
    return std::tie(Feature, Lo, Hi) <
           std::tie(Other.Feature, Other.Lo, Other.Hi);
  }

  /// Renders e.g. "x17 <= 4.5" or "x17 <= [4, 7)".
  std::string str() const;

private:
  SplitPredicate(uint32_t Feature, double Lo, double Hi)
      : Feature(Feature), Lo(Lo), Hi(Hi) {
    assert(Lo <= Hi && "malformed threshold interval");
  }

  uint32_t Feature;
  double Lo;
  double Hi;
};

} // namespace antidote

#endif // ANTIDOTE_CONCRETE_PREDICATE_H
