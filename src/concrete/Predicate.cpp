//===- concrete/Predicate.cpp - Split predicates -----------------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "concrete/Predicate.h"

#include <cstdio>

using namespace antidote;

std::string SplitPredicate::str() const {
  char Buf[96];
  if (isSymbolic())
    std::snprintf(Buf, sizeof(Buf), "x%u <= [%g, %g)", Feature, Lo, Hi);
  else
    std::snprintf(Buf, sizeof(Buf), "x%u <= %g", Feature, Lo);
  return Buf;
}
