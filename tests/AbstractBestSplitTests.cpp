//===- tests/AbstractBestSplitTests.cpp - bestSplit# unit tests ---------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "abstract/AbstractBestSplit.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace antidote;
using namespace antidote::testutil;

TEST(PredicateSetTest, NullOnlyAndBasics) {
  PredicateSet Null = PredicateSet::nullOnly();
  EXPECT_TRUE(Null.containsNull());
  EXPECT_EQ(Null.size(), 0u);
  EXPECT_FALSE(Null.empty());
  EXPECT_TRUE(PredicateSet().empty());
}

TEST(PredicateSetTest, CanonicalizeSortsAndDedupes) {
  PredicateSet Set;
  Set.add(SplitPredicate::threshold(1, 5.0));
  Set.add(SplitPredicate::threshold(0, 2.0));
  Set.add(SplitPredicate::threshold(1, 5.0));
  Set.canonicalize();
  ASSERT_EQ(Set.size(), 2u);
  EXPECT_EQ(Set.predicates()[0], SplitPredicate::threshold(0, 2.0));
  EXPECT_EQ(Set.predicates()[1], SplitPredicate::threshold(1, 5.0));
}

TEST(PredicateSetTest, JoinIsUnion) {
  PredicateSet A, B;
  A.add(SplitPredicate::threshold(0, 1.0));
  B.add(SplitPredicate::threshold(0, 2.0));
  B.addNull();
  PredicateSet J = PredicateSet::join(A, B);
  EXPECT_EQ(J.size(), 2u);
  EXPECT_TRUE(J.containsNull());
}

TEST(PredicateSetTest, ConcretizationMembership) {
  PredicateSet Set;
  Set.add(SplitPredicate::symbolic(0, 4.0, 7.0));
  Set.add(SplitPredicate::threshold(1, 0.5));
  EXPECT_TRUE(Set.concretizationContains(0, 5.5));
  EXPECT_TRUE(Set.concretizationContains(1, 0.5));
  EXPECT_FALSE(Set.concretizationContains(0, 7.0));
  EXPECT_FALSE(Set.concretizationContains(1, 0.6));
}

//===----------------------------------------------------------------------===//
// bestSplit# on the Figure 2 example
//===----------------------------------------------------------------------===//

TEST(AbstractBestSplitTest, ZeroBudgetKeepsOnlyTrueBest) {
  // With n = 0 every score interval is a point, so only the concrete
  // argmin (and exact ties) survive. Figure 2's best split is (10, 11).
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  AbstractDataset A = AbstractDataset::entire(Data, 0);
  PredicateSet Psi =
      *abstractBestSplit(Ctx, A, CprobTransformerKind::Optimal);
  EXPECT_FALSE(Psi.containsNull());
  ASSERT_EQ(Psi.size(), 1u);
  EXPECT_EQ(Psi.predicates()[0], SplitPredicate::symbolic(0, 10.0, 11.0));
}

TEST(AbstractBestSplitTest, Figure2BestSurvivesTwoPoisonings) {
  // §2: "No matter what two elements you choose, the predicate x ≤ 10
  // remains one that gives a best split" — it must be in bestSplit#.
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  AbstractDataset A = AbstractDataset::entire(Data, 2);
  PredicateSet Psi =
      *abstractBestSplit(Ctx, A, CprobTransformerKind::Optimal);
  EXPECT_FALSE(Psi.containsNull());
  EXPECT_TRUE(Psi.concretizationContains(0, 10.5));
  // With poisoning, score intervals widen and more candidates overlap the
  // minimal interval than the n = 0 single winner.
  EXPECT_GE(Psi.size(), 1u);
}

TEST(AbstractBestSplitTest, EmitsNullWhenNoUniversalSplit) {
  // Two rows, one distinct boundary; budget 1 can empty either side, so
  // Φ∀ = ∅ and ⋄ must be included alongside the existential predicate.
  Dataset Data(DatasetSchema::uniform(1, FeatureKind::Real, 2));
  Data.addRow({0.0f}, 0);
  Data.addRow({1.0f}, 1);
  SplitContext Ctx(Data);
  AbstractDataset A = AbstractDataset::entire(Data, 1);
  PredicateSet Psi =
      *abstractBestSplit(Ctx, A, CprobTransformerKind::Optimal);
  EXPECT_TRUE(Psi.containsNull());
  EXPECT_EQ(Psi.size(), 1u);
}

TEST(AbstractBestSplitTest, NoCandidatesYieldsNullOnly) {
  Dataset Data(DatasetSchema::uniform(1, FeatureKind::Real, 2));
  Data.addRow({3.0f}, 0);
  Data.addRow({3.0f}, 1);
  SplitContext Ctx(Data);
  AbstractDataset A = AbstractDataset::entire(Data, 1);
  PredicateSet Psi =
      *abstractBestSplit(Ctx, A, CprobTransformerKind::Optimal);
  EXPECT_TRUE(Psi.containsNull());
  EXPECT_EQ(Psi.size(), 0u);
}

TEST(AbstractBestSplitTest, MorePoisoningNeverShrinksTheSet) {
  // Monotonicity in n (the doubling protocol relies on this): bestSplit#
  // at budget n is a superset of bestSplit# at n-1.
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  PredicateSet Prev;
  for (uint32_t N = 0; N <= 6; ++N) {
    AbstractDataset A = AbstractDataset::entire(Data, N);
    PredicateSet Psi =
        *abstractBestSplit(Ctx, A, CprobTransformerKind::Optimal);
    for (const SplitPredicate &Pred : Prev.predicates())
      EXPECT_TRUE(std::find(Psi.predicates().begin(),
                            Psi.predicates().end(),
                            Pred) != Psi.predicates().end())
          << Pred.str() << " dropped at n=" << N;
    if (Prev.containsNull()) {
      EXPECT_TRUE(Psi.containsNull());
    }
    Prev = Psi;
  }
}

//===----------------------------------------------------------------------===//
// Lemma 4.10 / B.5 soundness property
//===----------------------------------------------------------------------===//

namespace {

class BestSplitSoundnessTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(BestSplitSoundnessTest, ContainsEveryConcreteBestSplit) {
  Rng R(GetParam());
  RandomDatasetSpec Spec;
  Spec.MaxRows = 9;
  Spec.NumFeatures = 2;
  Spec.DistinctValues = 4;
  for (int Trial = 0; Trial < 25; ++Trial) {
    Spec.BooleanFeatures = R.bernoulli(0.3);
    Dataset Data = makeRandomDataset(R, Spec);
    SplitContext Ctx(Data);
    RowIndexList Rows = allRows(Data);
    uint32_t Budget = static_cast<uint32_t>(R.uniformInt(3));
    AbstractDataset A(Data, Rows, Budget);
    for (CprobTransformerKind Kind : {CprobTransformerKind::Optimal,
                                      CprobTransformerKind::NaiveInterval}) {
      PredicateSet Psi = *abstractBestSplit(Ctx, A, Kind);
      forEachPerturbedSubset(Rows, Budget, [&](const RowIndexList &Subset) {
        std::optional<SplitPredicate> Best = bestSplit(Ctx, Subset);
        if (!Best) {
          EXPECT_TRUE(Psi.containsNull())
              << "concrete bestSplit returned null but ⋄ not in Ψ";
          return;
        }
        EXPECT_TRUE(Psi.concretizationContains(Best->feature(),
                                               Best->thresholdValue()))
            << "concrete best " << Best->str() << " not covered";
      });
    }
  }
}

TEST_P(BestSplitSoundnessTest, CoversAllTiedConcreteWinners) {
  // Stronger check on n = 0: *every* score-minimizing concrete predicate
  // (not just the deterministic tie-break winner) must be covered, since
  // the paper's concrete semantics picks among ties nondeterministically.
  Rng R(GetParam() ^ 0x5555);
  RandomDatasetSpec Spec;
  Spec.MaxRows = 8;
  Spec.NumFeatures = 2;
  Spec.DistinctValues = 3; // Small value range makes ties common.
  for (int Trial = 0; Trial < 25; ++Trial) {
    Dataset Data = makeRandomDataset(R, Spec);
    SplitContext Ctx(Data);
    RowIndexList Rows = allRows(Data);
    AbstractDataset A(Data, Rows, 0);
    PredicateSet Psi =
        *abstractBestSplit(Ctx, A, CprobTransformerKind::Optimal);
    // Find all concrete winners by enumeration.
    std::vector<uint32_t> Totals = classCounts(Data, Rows);
    double BestScore = 0.0;
    bool Any = false;
    std::vector<SplitPredicate> Winners;
    std::vector<uint32_t> NegCounts(Data.numClasses());
    forEachCandidateSplit(
        Ctx, Rows, PredicateMode::ConcreteMidpoint,
        [&](const SplitPredicate &Pred,
            const std::vector<uint32_t> &PosCounts, uint32_t PosTotal) {
          for (size_t C = 0; C < Totals.size(); ++C)
            NegCounts[C] = Totals[C] - PosCounts[C];
          double Score =
              splitScore(PosCounts, PosTotal, NegCounts,
                         static_cast<uint32_t>(Rows.size()) - PosTotal);
          if (!Any || Score < BestScore - 1e-12) {
            Winners.clear();
            BestScore = Score;
            Any = true;
          }
          if (Score <= BestScore + 1e-12)
            Winners.push_back(Pred);
        });
    for (const SplitPredicate &Winner : Winners)
      EXPECT_TRUE(Psi.concretizationContains(Winner.feature(),
                                             Winner.thresholdValue()))
          << "tied winner " << Winner.str() << " not covered";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BestSplitSoundnessTest,
                         ::testing::Values(10ull, 20ull, 30ull, 40ull));
