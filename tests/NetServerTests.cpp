//===- tests/NetServerTests.cpp - Socket serving tier tests -------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// The network tier end to end, driven by the fault-injection harness
// (tests/NetHarness.h): wire-format goldens, torn frames at every
// offset, garbage headers costing exactly one connection, slow-loris
// clients that cannot stall their neighbours, mid-verify disconnects
// releasing queue slots, and deadline expiry answering Timeout without
// verifying. Every wait is bounded; the TSan/ASan CI jobs run this
// suite unchanged.
//
//===----------------------------------------------------------------------===//

#include "serving/NetServer.h"

#include "NetHarness.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <memory>
#include <thread>

using namespace antidote;
using namespace antidote::testharness;
using namespace antidote::testutil;

namespace {

std::vector<float> point(float X) { return std::vector<float>{X}; }

/// Spin-waits (bounded) for \p Cond — the loop/dispatcher threads only
/// need to be observed, never nudged.
template <typename Fn> bool eventually(Fn Cond, int TimeoutMillis = 30000) {
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(TimeoutMillis);
  while (!Cond()) {
    if (std::chrono::steady_clock::now() > Deadline)
      return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// One server stack on an ephemeral port: figure-2 dataset, cache on,
/// the GateStore as backing tier so tests can pin verifications.
struct ServerStack {
  Dataset Train = figure2Dataset();
  GateStore Gate;
  std::unique_ptr<CertServer> Server;
  std::unique_ptr<NetServer> Net;

  explicit ServerStack(NetServerConfig NetConfig = NetServerConfig(),
                       size_t MaxBatch = 64) {
    CertServerConfig Config;
    Config.Query.Depth = 2;
    Config.Query.Domain = AbstractDomainKind::Disjuncts;
    Config.Query.Limits.TimeoutSeconds = 30.0;
    Config.Jobs = 2;
    Config.MaxBatch = MaxBatch;
    Config.Store = &Gate;
    Server = std::make_unique<CertServer>(Train, Config);
    NetConfig.Port = 0;
    Net = std::make_unique<NetServer>(*Server, NetConfig);
    std::string Error;
    if (!Net->start(Error))
      ADD_FAILURE() << "NetServer start: " << Error;
  }

  ~ServerStack() {
    Gate.open(); // Shutdown drains; a closed gate would deadlock it.
    Net->stop();
  }

  uint16_t port() const { return Net->port(); }

  Certificate fresh(float X, uint32_t N) {
    VerifierConfig Direct;
    Direct.Depth = 2;
    Direct.Domain = AbstractDomainKind::Disjuncts;
    Direct.Limits.TimeoutSeconds = 30.0;
    const float Q[] = {X};
    return Server->verifier().verify(Q, N, Direct);
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Wire-format goldens (no sockets): every byte position is pinned, so a
// codec change that would break deployed clients breaks these first.
//===----------------------------------------------------------------------===//

TEST(NetProtocolTest, RequestFrameGolden) {
  NetRequest Request;
  Request.Tag = 0x1122334455667788ULL;
  Request.PoisoningBudget = 3;
  Request.DeadlineMillis = 250;
  Request.X = {1.5f, -0.0f};
  std::string Frame = encodeRequestFrame(Request);

  const uint8_t Expected[] = {
      'A', 'N', 'T', 'Q',                             // magic
      0x1C, 0x00, 0x00, 0x00,                         // length = 28
      0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11, // tag
      0x03, 0x00, 0x00, 0x00,                         // budget
      0xFA, 0x00, 0x00, 0x00,                         // deadline 250
      0x02, 0x00, 0x00, 0x00,                         // numFeatures
      0x00, 0x00, 0xC0, 0x3F,                         // 1.5f
      0x00, 0x00, 0x00, 0x80,                         // -0.0f (bit pattern)
  };
  ASSERT_EQ(Frame.size(), sizeof(Expected));
  for (size_t I = 0; I < sizeof(Expected); ++I)
    EXPECT_EQ(static_cast<uint8_t>(Frame[I]), Expected[I]) << "byte " << I;

  std::optional<NetRequest> Back =
      decodeRequestPayload(reinterpret_cast<const uint8_t *>(Frame.data()) + 8,
                           Frame.size() - 8);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->Tag, Request.Tag);
  EXPECT_EQ(Back->PoisoningBudget, 3u);
  EXPECT_EQ(Back->DeadlineMillis, 250u);
  ASSERT_EQ(Back->X.size(), 2u);
  EXPECT_EQ(Back->X[0], 1.5f);
  EXPECT_TRUE(std::signbit(Back->X[1])); // -0.0 survives bit-exactly.
}

TEST(NetProtocolTest, ShedResponseFrameGolden) {
  NetResponse Response;
  Response.Tag = 7;
  Response.Status = NetStatus::Shed;
  Response.ShedReason = NetShedReason::Paced;
  std::string Frame = encodeResponseFrame(Response);

  const uint8_t Expected[] = {
      'A',  'N',  'T',  'R',                          // magic
      0x0A, 0x00, 0x00, 0x00,                         // length = 10
      0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // tag
      0x01,                                           // status = Shed
      0x01,                                           // reason = Paced
  };
  ASSERT_EQ(Frame.size(), sizeof(Expected));
  for (size_t I = 0; I < sizeof(Expected); ++I)
    EXPECT_EQ(static_cast<uint8_t>(Frame[I]), Expected[I]) << "byte " << I;
}

TEST(NetProtocolTest, ResponseCertificateRoundTripsEveryField) {
  NetResponse Response;
  Response.Tag = 42;
  Response.Status = NetStatus::Ok;
  Response.Path = NetServePath::ShedProbe;
  Response.Cert.Kind = VerdictKind::Robust;
  Response.Cert.PoisoningBudget = 5;
  Response.Cert.CertifiedRadius = 9;
  Response.Cert.Depth = 2;
  Response.Cert.Domain = AbstractDomainKind::DisjunctsCapped;
  Response.Cert.Threat = ThreatModelKind::LabelFlip;
  Response.Cert.ConcretePrediction = 1;
  Response.Cert.DominatingClass = 1;
  Response.Cert.NumTerminals = 12345678901ULL;
  Response.Cert.PeakDisjuncts = 777;
  Response.Cert.PeakStateBytes = 1 << 20;
  Response.Cert.BestSplitCalls = 4242;
  Response.Cert.Seconds = 0.125;

  std::string Frame = encodeResponseFrame(Response);
  std::optional<NetResponse> Back = decodeResponsePayload(
      reinterpret_cast<const uint8_t *>(Frame.data()) + 8, Frame.size() - 8);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->Tag, 42u);
  EXPECT_EQ(Back->Status, NetStatus::Ok);
  EXPECT_EQ(Back->Path, NetServePath::ShedProbe);
  EXPECT_EQ(Back->Cert.Kind, VerdictKind::Robust);
  EXPECT_EQ(Back->Cert.PoisoningBudget, 5u);
  EXPECT_EQ(Back->Cert.CertifiedRadius, 9u);
  EXPECT_EQ(Back->Cert.Domain, AbstractDomainKind::DisjunctsCapped);
  EXPECT_EQ(Back->Cert.Threat, ThreatModelKind::LabelFlip);
  EXPECT_EQ(Back->Cert.DominatingClass, std::optional<unsigned>(1));
  EXPECT_EQ(Back->Cert.NumTerminals, 12345678901ULL);
  EXPECT_EQ(Back->Cert.PeakDisjuncts, 777u);
  EXPECT_EQ(Back->Cert.PeakStateBytes, uint64_t(1) << 20);
  EXPECT_EQ(Back->Cert.BestSplitCalls, 4242u);
  EXPECT_EQ(Back->Cert.Seconds, 0.125);
}

TEST(NetProtocolTest, FrameReaderReassemblesAtEveryTearOffset) {
  NetRequest Request;
  Request.Tag = 9;
  Request.PoisoningBudget = 2;
  Request.X = {3.25f};
  std::string Frame = encodeRequestFrame(Request);

  // Cut the frame at every possible offset; both halves must reassemble
  // into exactly one identical payload, with midFrame() signalling the
  // torn state in between.
  for (size_t Cut = 0; Cut <= Frame.size(); ++Cut) {
    FrameReader Reader(NetRequestMagic);
    const uint8_t *Bytes = reinterpret_cast<const uint8_t *>(Frame.data());
    ASSERT_TRUE(Reader.feed(Bytes, Cut));
    if (Cut > 0 && Cut < Frame.size()) {
      EXPECT_TRUE(Reader.midFrame()) << "cut " << Cut;
    }
    ASSERT_TRUE(Reader.feed(Bytes + Cut, Frame.size() - Cut));
    std::optional<std::vector<uint8_t>> Payload = Reader.next();
    ASSERT_TRUE(Payload.has_value()) << "cut " << Cut;
    EXPECT_FALSE(Reader.next().has_value());
    std::optional<NetRequest> Back =
        decodeRequestPayload(Payload->data(), Payload->size());
    ASSERT_TRUE(Back.has_value());
    EXPECT_EQ(Back->Tag, 9u);
  }
}

TEST(NetProtocolTest, FrameReaderRejectsGarbageAndOversize) {
  FrameReader Garbage(NetRequestMagic);
  const uint8_t Junk[] = {'J', 'U', 'N', 'K', 0, 0, 0, 0};
  EXPECT_FALSE(Garbage.feed(Junk, sizeof(Junk)));
  EXPECT_TRUE(Garbage.corrupt());
  // Permanently: even valid bytes are refused afterwards.
  NetRequest Request;
  Request.X = {1.0f};
  std::string Frame = encodeRequestFrame(Request);
  EXPECT_FALSE(Garbage.feed(
      reinterpret_cast<const uint8_t *>(Frame.data()), Frame.size()));

  FrameReader Oversize(NetRequestMagic);
  const uint8_t Huge[] = {'A', 'N', 'T', 'Q', 0xFF, 0xFF, 0xFF, 0x7F};
  EXPECT_FALSE(Oversize.feed(Huge, sizeof(Huge)));
  EXPECT_TRUE(Oversize.corrupt());
}

//===----------------------------------------------------------------------===//
// Live-socket behavior.
//===----------------------------------------------------------------------===//

TEST(NetServerTest, RoundTripMatchesFreshVerifier) {
  ServerStack Stack;
  NetClient Client(Stack.port());
  ASSERT_TRUE(Client.connected());

  const float Queries[] = {0.5f, 2.5f, 9.5f, 12.5f, 9.5f};
  for (uint64_t I = 0; I < 5; ++I)
    ASSERT_TRUE(Client.send(makeRequest(I, 2, point(Queries[I]))));

  for (uint64_t I = 0; I < 5; ++I) {
    NetResponse Response;
    ASSERT_TRUE(Client.recvResponse(Response));
    ASSERT_EQ(Response.Status, NetStatus::Ok);
    EXPECT_EQ(Response.Path, NetServePath::Verified);
    ASSERT_LT(Response.Tag, 5u);
    Certificate Expected =
        Stack.fresh(Queries[Response.Tag], /*N=*/2);
    EXPECT_EQ(Response.Cert.Kind, Expected.Kind) << "tag " << Response.Tag;
    EXPECT_EQ(Response.Cert.ConcretePrediction,
              Expected.ConcretePrediction);
    EXPECT_EQ(Response.Cert.PoisoningBudget, 2u);
  }
}

TEST(NetServerTest, TornFrameAcrossWritesIsStillServed) {
  ServerStack Stack;
  NetClient Client(Stack.port());
  ASSERT_TRUE(Client.connected());

  NetRequest Request = makeRequest(1, 2, point(9.5f));
  std::string Frame = encodeRequestFrame(Request);
  // 5 bytes tears inside the header itself; wait until the server has
  // at least accepted us (so the reads really are separate events),
  // then send the rest.
  ASSERT_TRUE(Client.sendPartial(Request, 5));
  ASSERT_TRUE(eventually(
      [&] { return Stack.Net->stats().Accepted == 1; }));
  ASSERT_TRUE(Client.sendRaw(Frame.data() + 5, Frame.size() - 5));

  NetResponse Response;
  ASSERT_TRUE(Client.recvResponse(Response));
  EXPECT_EQ(Response.Status, NetStatus::Ok);
  EXPECT_EQ(Response.Tag, 1u);
}

TEST(NetServerTest, GarbageHeaderCostsExactlyOneConnection) {
  ServerStack Stack;
  NetClient Bad(Stack.port());
  ASSERT_TRUE(Bad.connected());
  const char Junk[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(Bad.sendRaw(Junk, sizeof(Junk) - 1));
  EXPECT_TRUE(Bad.waitForClose());

  // The process and every other connection live on.
  NetClient Good(Stack.port());
  ASSERT_TRUE(Good.connected());
  ASSERT_TRUE(Good.send(makeRequest(5, 2, point(2.5f))));
  NetResponse Response;
  ASSERT_TRUE(Good.recvResponse(Response));
  EXPECT_EQ(Response.Status, NetStatus::Ok);
  EXPECT_EQ(Stack.Net->stats().FramingErrors, 1u);
}

TEST(NetServerTest, UndecodablePayloadClosesConnection) {
  ServerStack Stack;
  NetClient Client(Stack.port());
  ASSERT_TRUE(Client.connected());

  // Valid header, honest length — but the payload claims 100 features
  // and carries two. The decoder must refuse and the server must close.
  std::string Payload;
  auto U32 = [&](uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Payload.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
  };
  U32(0);
  U32(0);   // tag (u64 as two words)
  U32(1);   // budget
  U32(0);   // deadline
  U32(100); // numFeatures (the lie)
  U32(0);
  U32(0); // only two floats actually follow
  std::string Frame = "ANTQ";
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  for (int I = 0; I < 4; ++I)
    Frame.push_back(static_cast<char>((Len >> (8 * I)) & 0xFF));
  Frame += Payload;
  ASSERT_TRUE(Client.sendRaw(Frame.data(), Frame.size()));
  EXPECT_TRUE(Client.waitForClose());
  EXPECT_EQ(Stack.Net->stats().FramingErrors, 1u);
}

TEST(NetServerTest, SlowLorisCannotStallOtherClients) {
  ServerStack Stack;
  NetClient Loris(Stack.port());
  ASSERT_TRUE(Loris.connected());
  NetRequest Drip = makeRequest(77, 2, point(9.5f));
  ASSERT_TRUE(Loris.sendPartial(Drip, 3)); // Three bytes, then silence.

  NetClient Busy(Stack.port());
  ASSERT_TRUE(Busy.connected());
  for (uint64_t I = 0; I < 5; ++I) {
    ASSERT_TRUE(Busy.send(makeRequest(I, 1 + (I % 3), point(0.5f + I))));
    NetResponse Response;
    ASSERT_TRUE(Busy.recvResponse(Response)) << "round trip " << I
                                             << " stalled behind a loris";
    EXPECT_EQ(Response.Status, NetStatus::Ok);
    EXPECT_EQ(Response.Tag, I);
  }

  // The loris connection is still open (no timeout policy — it holds
  // only its own buffer); finishing the frame gets a real answer.
  std::string Frame = encodeRequestFrame(Drip);
  ASSERT_TRUE(Loris.sendRaw(Frame.data() + 3, Frame.size() - 3));
  NetResponse Late;
  ASSERT_TRUE(Loris.recvResponse(Late));
  EXPECT_EQ(Late.Status, NetStatus::Ok);
  EXPECT_EQ(Late.Tag, 77u);
}

TEST(NetServerTest, DisconnectMidVerifyReleasesQueueSlotsAndCancels) {
  ServerStack Stack(NetServerConfig(), /*MaxBatch=*/1);
  Stack.Gate.close();

  NetClient Doomed(Stack.port());
  ASSERT_TRUE(Doomed.connected());
  // Three unique (uncached) queries: the first reaches the gate inside
  // the store write-through, the other two sit in the queue.
  for (uint64_t I = 0; I < 3; ++I)
    ASSERT_TRUE(Doomed.send(makeRequest(I, 3, point(20.0f + I))));
  ASSERT_TRUE(Stack.Gate.waitForEntered(1));
  ASSERT_TRUE(eventually(
      [&] { return Stack.Server->pendingRequests() == 3; }));

  // The client vanishes mid-flight. The two queued requests must free
  // their slots promptly — with the gate still closed, nothing else can
  // shrink the count — and the in-flight one is token-cancelled.
  Doomed.close();
  EXPECT_TRUE(eventually(
      [&] { return Stack.Server->pendingRequests() == 1; }))
      << "queued requests of a dead client still hold queue slots";
  EXPECT_TRUE(eventually(
      [&] { return Stack.Net->stats().Cancelled == 3; }));

  // The server is fully usable afterwards.
  Stack.Gate.open();
  NetClient Alive(Stack.port());
  ASSERT_TRUE(Alive.connected());
  ASSERT_TRUE(Alive.send(makeRequest(9, 2, point(9.5f))));
  NetResponse Response;
  ASSERT_TRUE(Alive.recvResponse(Response));
  EXPECT_EQ(Response.Status, NetStatus::Ok);
}

TEST(NetServerTest, ExpiredDeadlineAnswersTimeoutWithoutVerifying) {
  ServerStack Stack(NetServerConfig(), /*MaxBatch=*/1);
  Stack.Gate.close();

  NetClient Client(Stack.port());
  ASSERT_TRUE(Client.connected());
  // A blocker occupies the dispatcher, then a 50ms-deadline request
  // queues behind it for well over 50ms.
  ASSERT_TRUE(Client.send(makeRequest(0, 3, point(30.0f))));
  ASSERT_TRUE(Stack.Gate.waitForEntered(1));
  ASSERT_TRUE(Client.send(
      makeRequest(1, 3, point(31.0f), /*DeadlineMillis=*/50)));
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  Stack.Gate.open();

  for (int I = 0; I < 2; ++I) {
    NetResponse Response;
    ASSERT_TRUE(Client.recvResponse(Response));
    ASSERT_EQ(Response.Status, NetStatus::Ok);
    if (Response.Tag == 1) {
      // Expired while queued: Timeout, claiming nothing — never a
      // fabricated verdict, never a verification for a dead deadline.
      EXPECT_EQ(Response.Cert.Kind, VerdictKind::Timeout);
      EXPECT_EQ(Response.Cert.PoisoningBudget, 3u);
    }
  }
}

TEST(NetServerTest, BadArityAndBadBudgetAnswerErrorAndConnectionSurvives) {
  ServerStack Stack;
  NetClient Client(Stack.port());
  ASSERT_TRUE(Client.connected());

  // Figure-2 has 1 feature and 13 rows: two features is BadArity, a
  // budget of 14 is BadBudget — both honest frames, both answered (not
  // closed), and the connection keeps serving.
  ASSERT_TRUE(Client.send(makeRequest(1, 2, {1.0f, 2.0f})));
  ASSERT_TRUE(Client.send(makeRequest(2, 14, point(9.5f))));
  ASSERT_TRUE(Client.send(makeRequest(3, 2, point(9.5f))));

  NetResponse First, Second, Third;
  ASSERT_TRUE(Client.recvResponse(First));
  ASSERT_TRUE(Client.recvResponse(Second));
  ASSERT_TRUE(Client.recvResponse(Third));
  EXPECT_EQ(First.Status, NetStatus::Error);
  EXPECT_EQ(First.ErrorReason, NetErrorReason::BadArity);
  EXPECT_EQ(Second.Status, NetStatus::Error);
  EXPECT_EQ(Second.ErrorReason, NetErrorReason::BadBudget);
  EXPECT_EQ(Third.Status, NetStatus::Ok);
  EXPECT_EQ(Stack.Net->stats().BadArity, 2u);
  EXPECT_EQ(Stack.Net->stats().FramingErrors, 0u);
}

TEST(NetServerTest, ConcurrentClientsEachGetTheirOwnAnswers) {
  ServerStack Stack;
  constexpr int NumClients = 6;
  constexpr uint64_t PerClient = 4;

  std::vector<std::unique_ptr<NetClient>> Clients;
  for (int C = 0; C < NumClients; ++C) {
    Clients.push_back(std::make_unique<NetClient>(Stack.port()));
    ASSERT_TRUE(Clients.back()->connected());
  }
  // Interleave the sends across clients so the loop really multiplexes.
  for (uint64_t I = 0; I < PerClient; ++I)
    for (int C = 0; C < NumClients; ++C) {
      float X = 0.5f + static_cast<float>((C * 7 + I * 3) % 14);
      uint64_t Tag = static_cast<uint64_t>(C) * 100 + I;
      ASSERT_TRUE(
          Clients[C]->send(makeRequest(Tag, 1 + (I % 3), point(X))));
    }

  for (int C = 0; C < NumClients; ++C)
    for (uint64_t I = 0; I < PerClient; ++I) {
      NetResponse Response;
      ASSERT_TRUE(Clients[C]->recvResponse(Response));
      ASSERT_EQ(Response.Status, NetStatus::Ok);
      // Tags are namespaced per client: an answer crossing connections
      // would show up immediately here.
      EXPECT_EQ(Response.Tag / 100, static_cast<uint64_t>(C));
      uint64_t Seq = Response.Tag % 100;
      float X = 0.5f + static_cast<float>((C * 7 + Seq * 3) % 14);
      Certificate Expected =
          Stack.fresh(X, 1 + static_cast<uint32_t>(Seq % 3));
      EXPECT_EQ(Response.Cert.Kind, Expected.Kind);
      EXPECT_EQ(Response.Cert.ConcretePrediction,
                Expected.ConcretePrediction);
    }
}

TEST(NetServerTest, MaxClientsRefusesTheExtraConnection) {
  NetServerConfig NetConfig;
  NetConfig.MaxClients = 2;
  ServerStack Stack(NetConfig);

  NetClient A(Stack.port()), B(Stack.port());
  ASSERT_TRUE(A.connected() && B.connected());
  // Ensure both are admitted before the third knocks.
  ASSERT_TRUE(A.send(makeRequest(1, 2, point(9.5f))));
  ASSERT_TRUE(B.send(makeRequest(2, 2, point(9.5f))));
  NetResponse Ra, Rb;
  ASSERT_TRUE(A.recvResponse(Ra));
  ASSERT_TRUE(B.recvResponse(Rb));

  NetClient C(Stack.port());
  ASSERT_TRUE(C.connected()); // TCP accept succeeds...
  EXPECT_TRUE(C.waitForClose()); // ...and the server closes immediately.
  EXPECT_EQ(Stack.Net->stats().RefusedClients, 1u);

  // The admitted pair keeps working.
  ASSERT_TRUE(A.send(makeRequest(3, 2, point(0.5f))));
  NetResponse Again;
  ASSERT_TRUE(A.recvResponse(Again));
  EXPECT_EQ(Again.Status, NetStatus::Ok);
}
