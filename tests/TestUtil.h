//===- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared across the test suite: the paper's Figure 2 running
/// example, random small datasets for the property-based soundness tests,
/// and an exhaustive ∆n(T) subset enumerator used as a ground-truth oracle.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_TESTS_TESTUTIL_H
#define ANTIDOTE_TESTS_TESTUTIL_H

#include "data/Dataset.h"
#include "support/Rng.h"

#include <functional>

namespace antidote {
namespace testutil {

/// The 13-element black/white dataset of paper Figure 2: one real feature
/// with values {0..4, 7..14}; class 0 = white, class 1 = black. Black
/// elements are 0, 4, 11, 12, 13, 14.
inline Dataset figure2Dataset() {
  DatasetSchema Schema = DatasetSchema::uniform(1, FeatureKind::Real, 2);
  Schema.ClassNames = {"white", "black"};
  Dataset Data(Schema);
  struct Point {
    float X;
    unsigned Label;
  };
  static const Point Points[] = {
      {0, 1}, {1, 0}, {2, 0}, {3, 0},  {4, 1},  {7, 0},  {8, 0},
      {9, 0}, {10, 0}, {11, 1}, {12, 1}, {13, 1}, {14, 1},
  };
  for (const Point &P : Points)
    Data.addRow({P.X}, P.Label);
  return Data;
}

/// Parameters for random dataset generation in property tests.
struct RandomDatasetSpec {
  unsigned MinRows = 4;
  unsigned MaxRows = 10;
  unsigned NumFeatures = 2;
  unsigned NumClasses = 2;
  bool BooleanFeatures = false;
  /// Real features draw from {0, 1, ..., DistinctValues-1} so that ties and
  /// duplicated values (the interesting edge cases) occur often.
  unsigned DistinctValues = 5;
};

/// A small random dataset for property-based testing.
inline Dataset makeRandomDataset(Rng &R, const RandomDatasetSpec &Spec) {
  DatasetSchema Schema = DatasetSchema::uniform(
      Spec.NumFeatures,
      Spec.BooleanFeatures ? FeatureKind::Boolean : FeatureKind::Real,
      Spec.NumClasses);
  Dataset Data(Schema);
  unsigned Rows =
      Spec.MinRows +
      static_cast<unsigned>(R.uniformInt(Spec.MaxRows - Spec.MinRows + 1));
  std::vector<float> Features(Spec.NumFeatures);
  for (unsigned Row = 0; Row < Rows; ++Row) {
    for (float &V : Features)
      V = Spec.BooleanFeatures
              ? static_cast<float>(R.uniformInt(2))
              : static_cast<float>(R.uniformInt(Spec.DistinctValues));
    Data.addRow(Features, static_cast<unsigned>(
                              R.uniformInt(Spec.NumClasses)));
  }
  return Data;
}

/// A random query point matching the value range of \p Spec (including
/// half-integer values that fall *between* training values, to exercise the
/// symbolic predicates' `maybe` evaluation).
inline std::vector<float> makeRandomQuery(Rng &R,
                                          const RandomDatasetSpec &Spec) {
  std::vector<float> X(Spec.NumFeatures);
  for (float &V : X) {
    if (Spec.BooleanFeatures) {
      V = static_cast<float>(R.uniformInt(2));
      continue;
    }
    V = static_cast<float>(R.uniformInt(Spec.DistinctValues));
    if (R.bernoulli(0.5))
      V += 0.5f;
  }
  return X;
}

/// Invokes \p Fn on every T' ∈ ∆n(Rows) (kept-row subsets obtained by
/// deleting at most \p Budget rows), excluding the empty set. Subsets are
/// visited exactly once.
inline void
forEachPerturbedSubset(const RowIndexList &Rows, uint32_t Budget,
                       const std::function<void(const RowIndexList &)> &Fn) {
  std::vector<uint8_t> Removed(Rows.size(), 0);
  std::function<void(size_t, uint32_t, size_t)> Recurse =
      [&](size_t First, uint32_t Remaining, size_t NumRemoved) {
        if (NumRemoved < Rows.size()) {
          RowIndexList Kept;
          Kept.reserve(Rows.size() - NumRemoved);
          for (size_t I = 0; I < Rows.size(); ++I)
            if (!Removed[I])
              Kept.push_back(Rows[I]);
          Fn(Kept);
        }
        if (Remaining == 0)
          return;
        for (size_t I = First; I < Rows.size(); ++I) {
          Removed[I] = 1;
          Recurse(I + 1, Remaining - 1, NumRemoved + 1);
          Removed[I] = 0;
        }
      };
  Recurse(0, Budget, 0);
}

} // namespace testutil
} // namespace antidote

#endif // ANTIDOTE_TESTS_TESTUTIL_H
