//===- tests/RngTests.cpp - Deterministic RNG unit tests ----------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace antidote;

TEST(RngTest, SameSeedSameStream) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(42), B(43);
  int Different = 0;
  for (int I = 0; I < 100; ++I)
    Different += A.next() != B.next();
  EXPECT_GT(Different, 90);
}

TEST(RngTest, UniformStaysInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    double V = R.uniform();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
    double W = R.uniform(-3.0, 5.0);
    EXPECT_GE(W, -3.0);
    EXPECT_LT(W, 5.0);
  }
}

TEST(RngTest, UniformIntStaysInRangeAndHitsAllValues) {
  Rng R(11);
  std::vector<int> Histogram(6, 0);
  for (int I = 0; I < 6000; ++I) {
    uint64_t V = R.uniformInt(6);
    ASSERT_LT(V, 6u);
    ++Histogram[V];
  }
  for (int Count : Histogram) {
    EXPECT_GT(Count, 800);
    EXPECT_LT(Count, 1200);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng R(13);
  double Sum = 0.0, SumSq = 0.0;
  const int N = 50000;
  for (int I = 0; I < N; ++I) {
    double V = R.gaussian();
    Sum += V;
    SumSq += V * V;
  }
  double Mean = Sum / N;
  double Var = SumSq / N - Mean * Mean;
  EXPECT_NEAR(Mean, 0.0, 0.02);
  EXPECT_NEAR(Var, 1.0, 0.05);
}

TEST(RngTest, GaussianAffineTransform) {
  Rng R(17);
  double Sum = 0.0;
  const int N = 20000;
  for (int I = 0; I < N; ++I)
    Sum += R.gaussian(10.0, 0.5);
  EXPECT_NEAR(Sum / N, 10.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng R(19);
  int Hits = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I)
    Hits += R.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(Hits) / N, 0.3, 0.02);
}
