//===- tests/AbstractGiniTests.cpp - cprob#/ent#/score# unit tests ------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "abstract/AbstractGini.h"

#include "TestUtil.h"
#include "concrete/Gini.h"

#include <gtest/gtest.h>

using namespace antidote;
using namespace antidote::testutil;

//===----------------------------------------------------------------------===//
// cprob# — Example 4.6 and the footnote-6 transformers
//===----------------------------------------------------------------------===//

TEST(AbstractCprobTest, Example46NaiveTransformer) {
  // Tℓ has 7 white, 2 black; n = 2. The naive transformer of §4.4 yields
  // ⟨[5/9, 1], [0, 2/7]⟩ — including the imprecise 5/9 lower bound the
  // example calls out.
  std::vector<Interval> Probs = abstractClassProbabilities(
      {7, 2}, 9, 2, CprobTransformerKind::NaiveInterval);
  ASSERT_EQ(Probs.size(), 2u);
  EXPECT_DOUBLE_EQ(Probs[0].lb(), 5.0 / 9.0);
  EXPECT_DOUBLE_EQ(Probs[0].ub(), 1.0);
  EXPECT_DOUBLE_EQ(Probs[1].lb(), 0.0);
  EXPECT_DOUBLE_EQ(Probs[1].ub(), 2.0 / 7.0);
}

TEST(AbstractCprobTest, OptimalTransformerIsTighter) {
  // The optimal transformer recovers the true extremal probability 5/7
  // (drop two white points), as §2 discusses ("[0.71, 1] instead of 0.78").
  std::vector<Interval> Probs = abstractClassProbabilities(
      {7, 2}, 9, 2, CprobTransformerKind::Optimal);
  EXPECT_DOUBLE_EQ(Probs[0].lb(), 5.0 / 7.0);
  EXPECT_DOUBLE_EQ(Probs[0].ub(), 1.0);
  EXPECT_DOUBLE_EQ(Probs[1].lb(), 0.0);
  EXPECT_DOUBLE_EQ(Probs[1].ub(), 2.0 / 7.0);
}

TEST(AbstractCprobTest, ZeroBudgetIsExact) {
  for (CprobTransformerKind Kind : {CprobTransformerKind::Optimal,
                                    CprobTransformerKind::NaiveInterval}) {
    std::vector<Interval> Probs =
        abstractClassProbabilities({3, 1, 4}, 8, 0, Kind);
    EXPECT_DOUBLE_EQ(Probs[0].lb(), 3.0 / 8.0);
    EXPECT_DOUBLE_EQ(Probs[0].ub(), 3.0 / 8.0);
    EXPECT_DOUBLE_EQ(Probs[2].lb(), 0.5);
    EXPECT_DOUBLE_EQ(Probs[2].ub(), 0.5);
  }
}

TEST(AbstractCprobTest, FullBudgetCornerCase) {
  // n = |T|: the paper assigns [0, 1] to every class.
  for (CprobTransformerKind Kind : {CprobTransformerKind::Optimal,
                                    CprobTransformerKind::NaiveInterval}) {
    std::vector<Interval> Probs =
        abstractClassProbabilities({2, 3}, 5, 5, Kind);
    for (const Interval &P : Probs)
      EXPECT_EQ(P, Interval(0.0, 1.0));
  }
}

TEST(AbstractCprobTest, OptimalStaysWithinUnitInterval) {
  std::vector<Interval> Probs = abstractClassProbabilities(
      {5, 1}, 6, 3, CprobTransformerKind::Optimal);
  for (const Interval &P : Probs) {
    EXPECT_GE(P.lb(), 0.0);
    EXPECT_LE(P.ub(), 1.0);
  }
}

TEST(AbstractCprobTest, NaiveCanExceedUnitInterval) {
  // Footnote 6's observation: the naive quotient is not confined to [0,1].
  std::vector<Interval> Probs = abstractClassProbabilities(
      {5, 1}, 6, 3, CprobTransformerKind::NaiveInterval);
  EXPECT_GT(Probs[0].ub(), 1.0); // 5 / (6-3) = 5/3.
}

TEST(AbstractCprobTest, OptimalContainedInNaive) {
  Rng R(77);
  for (int Trial = 0; Trial < 300; ++Trial) {
    uint32_t C0 = static_cast<uint32_t>(R.uniformInt(10));
    uint32_t C1 = static_cast<uint32_t>(R.uniformInt(10));
    uint32_t Total = C0 + C1;
    if (Total == 0)
      continue;
    uint32_t Budget = static_cast<uint32_t>(R.uniformInt(Total + 1));
    std::vector<Interval> Opt = abstractClassProbabilities(
        {C0, C1}, Total, Budget, CprobTransformerKind::Optimal);
    std::vector<Interval> Naive = abstractClassProbabilities(
        {C0, C1}, Total, Budget, CprobTransformerKind::NaiveInterval);
    for (size_t I = 0; I < Opt.size(); ++I)
      EXPECT_TRUE(Naive[I].containsInterval(Opt[I]))
          << "c=" << (I ? C1 : C0) << " total=" << Total
          << " n=" << Budget;
  }
}

namespace {

class CprobSoundnessTest
    : public ::testing::TestWithParam<CprobTransformerKind> {};

} // namespace

TEST_P(CprobSoundnessTest, ContainsEveryConcretization) {
  // Proposition 4.5 by exhaustive enumeration on small sets.
  Rng R(4242);
  RandomDatasetSpec Spec;
  Spec.MaxRows = 8;
  Spec.NumClasses = 3;
  for (int Trial = 0; Trial < 25; ++Trial) {
    Dataset Data = makeRandomDataset(R, Spec);
    RowIndexList Rows = allRows(Data);
    uint32_t Budget = static_cast<uint32_t>(R.uniformInt(Rows.size()));
    std::vector<Interval> Abstract = abstractClassProbabilities(
        classCounts(Data, Rows), static_cast<uint32_t>(Rows.size()), Budget,
        GetParam());
    forEachPerturbedSubset(Rows, Budget, [&](const RowIndexList &Subset) {
      std::vector<double> Concrete =
          classProbabilities(classCounts(Data, Subset));
      for (size_t C = 0; C < Concrete.size(); ++C)
        EXPECT_TRUE(Abstract[C].contains(Concrete[C]))
            << "class " << C << " prob " << Concrete[C] << " outside "
            << Abstract[C].str();
    });
  }
}

TEST_P(CprobSoundnessTest, OptimalBoundsAreAttained) {
  if (GetParam() != CprobTransformerKind::Optimal)
    GTEST_SKIP() << "tightness holds only for the optimal transformer";
  // Footnote 6 claims exact extremal behaviour: both endpoints of each
  // class's interval are attained by some concretization.
  Rng R(777);
  RandomDatasetSpec Spec;
  Spec.MaxRows = 8;
  for (int Trial = 0; Trial < 20; ++Trial) {
    Dataset Data = makeRandomDataset(R, Spec);
    RowIndexList Rows = allRows(Data);
    uint32_t Budget =
        static_cast<uint32_t>(R.uniformInt(Rows.size())); // < |T|.
    std::vector<Interval> Abstract = abstractClassProbabilities(
        classCounts(Data, Rows), static_cast<uint32_t>(Rows.size()), Budget,
        CprobTransformerKind::Optimal);
    std::vector<double> MinSeen(Data.numClasses(), 2.0);
    std::vector<double> MaxSeen(Data.numClasses(), -1.0);
    forEachPerturbedSubset(Rows, Budget, [&](const RowIndexList &Subset) {
      std::vector<double> Concrete =
          classProbabilities(classCounts(Data, Subset));
      for (size_t C = 0; C < Concrete.size(); ++C) {
        MinSeen[C] = std::min(MinSeen[C], Concrete[C]);
        MaxSeen[C] = std::max(MaxSeen[C], Concrete[C]);
      }
    });
    for (unsigned C = 0; C < Data.numClasses(); ++C) {
      EXPECT_NEAR(Abstract[C].lb(), MinSeen[C], 1e-12);
      EXPECT_NEAR(Abstract[C].ub(), MaxSeen[C], 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Transformers, CprobSoundnessTest,
                         ::testing::Values(
                             CprobTransformerKind::Optimal,
                             CprobTransformerKind::NaiveInterval),
                         [](const auto &Info) {
                           return Info.param ==
                                          CprobTransformerKind::Optimal
                                      ? "Optimal"
                                      : "Naive";
                         });

//===----------------------------------------------------------------------===//
// ent# and score#
//===----------------------------------------------------------------------===//

TEST(AbstractGiniTest, PureSetHasZeroLowerImpurity) {
  Interval Ent = abstractGiniImpurityFromCounts(
      {4, 0}, 4, 1, CprobTransformerKind::Optimal);
  EXPECT_DOUBLE_EQ(Ent.lb(), 0.0);
}

TEST(AbstractGiniTest, ZeroBudgetImpurityMatchesConcrete) {
  std::vector<uint32_t> Counts = {7, 2};
  Interval Ent = abstractGiniImpurityFromCounts(
      Counts, 9, 0, CprobTransformerKind::Optimal);
  double Concrete = giniImpurityFromCounts(Counts, 9);
  EXPECT_NEAR(Ent.lb(), Concrete, 1e-12);
  EXPECT_NEAR(Ent.ub(), Concrete, 1e-12);
}

TEST(AbstractGiniTest, ImpuritySoundOverEnumeration) {
  Rng R(31337);
  RandomDatasetSpec Spec;
  Spec.MaxRows = 8;
  Spec.NumClasses = 3;
  for (int Trial = 0; Trial < 20; ++Trial) {
    Dataset Data = makeRandomDataset(R, Spec);
    RowIndexList Rows = allRows(Data);
    uint32_t Budget = static_cast<uint32_t>(R.uniformInt(Rows.size() + 1));
    for (CprobTransformerKind Kind : {CprobTransformerKind::Optimal,
                                      CprobTransformerKind::NaiveInterval}) {
      Interval Ent = abstractGiniImpurityFromCounts(
          classCounts(Data, Rows), static_cast<uint32_t>(Rows.size()),
          Budget, Kind);
      forEachPerturbedSubset(Rows, Budget, [&](const RowIndexList &Subset) {
        double Concrete = giniImpurityFromCounts(
            classCounts(Data, Subset),
            static_cast<uint32_t>(Subset.size()));
        EXPECT_TRUE(Ent.contains(Concrete));
      });
    }
  }
}

TEST(AbstractGiniTest, ScoreSoundOverEnumeration) {
  // score# contains score(T', φ) for every concretization T' — checked by
  // splitting each subset with a fixed predicate.
  Rng R(90210);
  RandomDatasetSpec Spec;
  Spec.MaxRows = 8;
  Spec.NumFeatures = 1;
  for (int Trial = 0; Trial < 25; ++Trial) {
    Dataset Data = makeRandomDataset(R, Spec);
    RowIndexList Rows = allRows(Data);
    uint32_t Budget = static_cast<uint32_t>(R.uniformInt(3));
    double Tau = 0.5 + static_cast<double>(R.uniformInt(4));
    SplitPredicate Phi = SplitPredicate::threshold(0, Tau);
    AbstractDataset A(Data, Rows, Budget);
    AbstractDataset Pos = A.restrict(Phi, true);
    AbstractDataset Neg = A.restrict(Phi, false);
    if (Pos.isEmptySet() || Neg.isEmptySet())
      continue;
    Interval Score =
        abstractSplitScore(Pos, Neg, CprobTransformerKind::Optimal);
    forEachPerturbedSubset(Rows, Budget, [&](const RowIndexList &Subset) {
      RowIndexList SubPos, SubNeg;
      for (uint32_t Row : Subset)
        if (Phi.evaluate(Data.value(Row, 0)) == ThreeValued::True)
          SubPos.push_back(Row);
        else
          SubNeg.push_back(Row);
      if (SubPos.empty() || SubNeg.empty())
        return; // Concrete score undefined on trivial splits.
      double Concrete = splitScore(
          classCounts(Data, SubPos), static_cast<uint32_t>(SubPos.size()),
          classCounts(Data, SubNeg), static_cast<uint32_t>(SubNeg.size()));
      EXPECT_TRUE(Score.contains(Concrete))
          << Concrete << " outside " << Score.str();
    });
  }
}

TEST(AbstractGiniTest, ScoreFromDatasetMatchesCountsOverload) {
  Dataset Data = figure2Dataset();
  AbstractDataset A = AbstractDataset::entire(Data, 2);
  SplitPredicate Phi = SplitPredicate::threshold(0, 10.5);
  AbstractDataset Pos = A.restrict(Phi, true);
  AbstractDataset Neg = A.restrict(Phi, false);
  Interval FromData =
      abstractSplitScore(Pos, Neg, CprobTransformerKind::Optimal);
  Interval FromCounts = abstractSplitScore(
      Pos.counts(), Pos.size(), Pos.budget(), Neg.counts(), Neg.size(),
      Neg.budget(), CprobTransformerKind::Optimal);
  EXPECT_EQ(FromData, FromCounts);
}
