//===- tests/SoAKernelTests.cpp - SoA layout + vectorized kernel pins --------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// Two layers of protection for the struct-of-arrays dataset layout and the
// branch-free kernels built on it:
//
//  - Golden tests pin verifier certificates for the Figure 2 example to
//    hardcoded values captured from the pre-refactor scalar implementation
//    (checked bit-identical against a build of the scalar seed across the
//    full domain x budget x depth grid), and assert the pinned values hold
//    for every Jobs / FrontierJobs / SplitJobs combination. A vectorization
//    or layout change that perturbs any observable — verdict, prediction,
//    dominating class, terminal count, peak disjuncts, bestSplit calls —
//    fails here, pointing straight at the kernel that drifted.
//
//  - Property tests compare each branch-free kernel against a naive
//    reference implementation on random inputs: the fused ent#/score#
//    against the interval composition they replaced, the dense candidate
//    enumeration against a fresh sort-and-walk, filterRows/restrict#
//    against explicit three-valued predicate loops, and the slice-wise
//    interval join/meet against the scalar lattice ops.
//
//===----------------------------------------------------------------------===//

#include "abstract/AbstractGini.h"
#include "antidote/Verifier.h"
#include "concrete/BestSplit.h"
#include "support/Rng.h"

#include "TestUtil.h"

#include <gtest/gtest.h>
#include <algorithm>

using namespace antidote;
using namespace antidote::testutil;

namespace {

//===----------------------------------------------------------------------===//
// Golden certificates (captured from the scalar seed)
//===----------------------------------------------------------------------===//

const float kGoldenQueries[] = {0.5f, 2.5f, 5.0f, 8.5f, 11.5f, 13.0f};

const AbstractDomainKind kGoldenDomains[] = {AbstractDomainKind::Box,
                                             AbstractDomainKind::Disjuncts,
                                             AbstractDomainKind::DisjunctsCapped};

struct GoldenCert {
  unsigned Query;   ///< Index into kGoldenQueries.
  unsigned Domain;  ///< Index into kGoldenDomains.
  uint32_t Budget;
  unsigned Depth;
  VerdictKind Kind;
  unsigned ConcretePrediction;
  bool HasDominating;
  unsigned DominatingClass;
  size_t NumTerminals;
  size_t PeakDisjuncts;
  uint32_t BestSplitCalls;
};

// Captured from the pre-SoA scalar implementation (DisjunctCap = 4) and
// verified bit-identical against the refactored kernels. PeakStateBytes is
// deliberately not pinned: the restrict# rewrite stores row vectors at
// exact capacity where the scalar code's push_back left pow2 slack, so the
// byte *counter* differs while every semantic observable is unchanged (the
// serial-vs-parallel equality of the counter is pinned elsewhere).
const GoldenCert kGoldenCerts[] = {
    {0, 0, 0, 1, VerdictKind::Robust, 0, true, 0, 1, 1, 1},
    {0, 0, 0, 2, VerdictKind::Unknown, 1, false, 0, 1, 1, 2},
    {0, 0, 1, 1, VerdictKind::Unknown, 0, false, 0, 1, 1, 1},
    {0, 0, 1, 2, VerdictKind::Unknown, 1, false, 0, 2, 1, 2},
    {0, 0, 2, 1, VerdictKind::Unknown, 0, false, 0, 1, 1, 1},
    {0, 0, 2, 2, VerdictKind::Unknown, 1, false, 0, 2, 1, 2},
    {0, 0, 3, 1, VerdictKind::Unknown, 0, false, 0, 1, 1, 1},
    {0, 0, 3, 2, VerdictKind::Unknown, 1, false, 0, 2, 1, 2},
    {0, 1, 0, 1, VerdictKind::Robust, 0, true, 0, 1, 1, 1},
    {0, 1, 0, 2, VerdictKind::Unknown, 1, false, 0, 2, 2, 2},
    {0, 1, 1, 1, VerdictKind::Robust, 0, true, 0, 4, 4, 1},
    {0, 1, 1, 2, VerdictKind::Unknown, 1, false, 0, 1, 13, 5},
    {0, 1, 2, 1, VerdictKind::Unknown, 0, false, 0, 1, 8, 1},
    {0, 1, 2, 2, VerdictKind::Unknown, 1, false, 0, 2, 8, 2},
    {0, 1, 3, 1, VerdictKind::Unknown, 0, false, 0, 1, 13, 1},
    {0, 1, 3, 2, VerdictKind::Unknown, 1, false, 0, 1, 13, 1},
    {0, 2, 0, 1, VerdictKind::Robust, 0, true, 0, 1, 1, 1},
    {0, 2, 0, 2, VerdictKind::Unknown, 1, false, 0, 2, 2, 2},
    {0, 2, 1, 1, VerdictKind::Robust, 0, true, 0, 4, 4, 1},
    {0, 2, 1, 2, VerdictKind::Unknown, 1, false, 0, 1, 4, 5},
    {0, 2, 2, 1, VerdictKind::Unknown, 0, false, 0, 1, 4, 1},
    {0, 2, 2, 2, VerdictKind::Unknown, 1, false, 0, 3, 4, 2},
    {0, 2, 3, 1, VerdictKind::Unknown, 0, false, 0, 1, 4, 1},
    {0, 2, 3, 2, VerdictKind::Unknown, 1, false, 0, 3, 4, 2},
    {1, 0, 0, 1, VerdictKind::Robust, 0, true, 0, 1, 1, 1},
    {1, 0, 0, 2, VerdictKind::Robust, 0, true, 0, 1, 1, 2},
    {1, 0, 1, 1, VerdictKind::Unknown, 0, false, 0, 1, 1, 1},
    {1, 0, 1, 2, VerdictKind::Unknown, 0, false, 0, 2, 1, 2},
    {1, 0, 2, 1, VerdictKind::Unknown, 0, false, 0, 1, 1, 1},
    {1, 0, 2, 2, VerdictKind::Unknown, 0, false, 0, 2, 1, 2},
    {1, 0, 3, 1, VerdictKind::Unknown, 0, false, 0, 1, 1, 1},
    {1, 0, 3, 2, VerdictKind::Unknown, 0, false, 0, 2, 1, 2},
    {1, 1, 0, 1, VerdictKind::Robust, 0, true, 0, 1, 1, 1},
    {1, 1, 0, 2, VerdictKind::Robust, 0, true, 0, 1, 1, 2},
    {1, 1, 1, 1, VerdictKind::Robust, 0, true, 0, 4, 4, 1},
    {1, 1, 1, 2, VerdictKind::Unknown, 0, false, 0, 1, 19, 5},
    {1, 1, 2, 1, VerdictKind::Unknown, 0, false, 0, 1, 8, 1},
    {1, 1, 2, 2, VerdictKind::Unknown, 0, false, 0, 2, 8, 2},
    {1, 1, 3, 1, VerdictKind::Unknown, 0, false, 0, 1, 13, 1},
    {1, 1, 3, 2, VerdictKind::Unknown, 0, false, 0, 3, 13, 2},
    {1, 2, 0, 1, VerdictKind::Robust, 0, true, 0, 1, 1, 1},
    {1, 2, 0, 2, VerdictKind::Robust, 0, true, 0, 1, 1, 2},
    {1, 2, 1, 1, VerdictKind::Robust, 0, true, 0, 4, 4, 1},
    {1, 2, 1, 2, VerdictKind::Unknown, 0, false, 0, 1, 4, 5},
    {1, 2, 2, 1, VerdictKind::Unknown, 0, false, 0, 1, 4, 1},
    {1, 2, 2, 2, VerdictKind::Unknown, 0, false, 0, 3, 4, 2},
    {1, 2, 3, 1, VerdictKind::Unknown, 0, false, 0, 1, 4, 1},
    {1, 2, 3, 2, VerdictKind::Unknown, 0, false, 0, 3, 4, 2},
    {2, 0, 0, 1, VerdictKind::Robust, 0, true, 0, 1, 1, 1},
    {2, 0, 0, 2, VerdictKind::Robust, 0, true, 0, 1, 1, 2},
    {2, 0, 1, 1, VerdictKind::Unknown, 0, false, 0, 1, 1, 1},
    {2, 0, 1, 2, VerdictKind::Unknown, 0, false, 0, 2, 1, 2},
    {2, 0, 2, 1, VerdictKind::Unknown, 0, false, 0, 1, 1, 1},
    {2, 0, 2, 2, VerdictKind::Unknown, 0, false, 0, 2, 1, 2},
    {2, 0, 3, 1, VerdictKind::Unknown, 0, false, 0, 1, 1, 1},
    {2, 0, 3, 2, VerdictKind::Unknown, 0, false, 0, 2, 1, 2},
    {2, 1, 0, 1, VerdictKind::Robust, 0, true, 0, 1, 1, 1},
    {2, 1, 0, 2, VerdictKind::Robust, 0, true, 0, 1, 1, 2},
    {2, 1, 1, 1, VerdictKind::Robust, 0, true, 0, 4, 4, 1},
    {2, 1, 1, 2, VerdictKind::Unknown, 0, false, 0, 1, 25, 5},
    {2, 1, 2, 1, VerdictKind::Unknown, 0, false, 0, 1, 9, 1},
    {2, 1, 2, 2, VerdictKind::Unknown, 0, false, 0, 2, 9, 2},
    {2, 1, 3, 1, VerdictKind::Unknown, 0, false, 0, 1, 13, 1},
    {2, 1, 3, 2, VerdictKind::Unknown, 0, false, 0, 3, 13, 2},
    {2, 2, 0, 1, VerdictKind::Robust, 0, true, 0, 1, 1, 1},
    {2, 2, 0, 2, VerdictKind::Robust, 0, true, 0, 1, 1, 2},
    {2, 2, 1, 1, VerdictKind::Robust, 0, true, 0, 4, 4, 1},
    {2, 2, 1, 2, VerdictKind::Unknown, 0, false, 0, 1, 4, 5},
    {2, 2, 2, 1, VerdictKind::Unknown, 0, false, 0, 1, 3, 1},
    {2, 2, 2, 2, VerdictKind::Unknown, 0, false, 0, 2, 3, 2},
    {2, 2, 3, 1, VerdictKind::Unknown, 0, false, 0, 1, 4, 1},
    {2, 2, 3, 2, VerdictKind::Unknown, 0, false, 0, 3, 4, 2},
    {3, 0, 0, 1, VerdictKind::Robust, 0, true, 0, 1, 1, 1},
    {3, 0, 0, 2, VerdictKind::Robust, 0, true, 0, 1, 1, 2},
    {3, 0, 1, 1, VerdictKind::Unknown, 0, false, 0, 1, 1, 1},
    {3, 0, 1, 2, VerdictKind::Unknown, 0, false, 0, 2, 1, 2},
    {3, 0, 2, 1, VerdictKind::Unknown, 0, false, 0, 1, 1, 1},
    {3, 0, 2, 2, VerdictKind::Unknown, 0, false, 0, 2, 1, 2},
    {3, 0, 3, 1, VerdictKind::Unknown, 0, false, 0, 1, 1, 1},
    {3, 0, 3, 2, VerdictKind::Unknown, 0, false, 0, 2, 1, 2},
    {3, 1, 0, 1, VerdictKind::Robust, 0, true, 0, 1, 1, 1},
    {3, 1, 0, 2, VerdictKind::Robust, 0, true, 0, 1, 1, 2},
    {3, 1, 1, 1, VerdictKind::Unknown, 0, false, 0, 5, 5, 1},
    {3, 1, 1, 2, VerdictKind::Unknown, 0, false, 0, 16, 30, 6},
    {3, 1, 2, 1, VerdictKind::Unknown, 0, false, 0, 6, 9, 1},
    {3, 1, 2, 2, VerdictKind::Unknown, 0, false, 0, 4, 41, 10},
    {3, 1, 3, 1, VerdictKind::Unknown, 0, false, 0, 1, 13, 1},
    {3, 1, 3, 2, VerdictKind::Unknown, 0, false, 0, 2, 13, 2},
    {3, 2, 0, 1, VerdictKind::Robust, 0, true, 0, 1, 1, 1},
    {3, 2, 0, 2, VerdictKind::Robust, 0, true, 0, 1, 1, 2},
    {3, 2, 1, 1, VerdictKind::Unknown, 0, false, 0, 3, 3, 1},
    {3, 2, 1, 2, VerdictKind::Unknown, 0, false, 0, 2, 3, 4},
    {3, 2, 2, 1, VerdictKind::Unknown, 0, false, 0, 1, 3, 1},
    {3, 2, 2, 2, VerdictKind::Unknown, 0, false, 0, 2, 3, 2},
    {3, 2, 3, 1, VerdictKind::Unknown, 0, false, 0, 1, 4, 1},
    {3, 2, 3, 2, VerdictKind::Unknown, 0, false, 0, 2, 4, 2},
    {4, 0, 0, 1, VerdictKind::Robust, 1, true, 1, 1, 1, 1},
    {4, 0, 0, 2, VerdictKind::Robust, 1, true, 1, 1, 1, 1},
    {4, 0, 1, 1, VerdictKind::Unknown, 1, false, 0, 1, 1, 1},
    {4, 0, 1, 2, VerdictKind::Unknown, 1, false, 0, 2, 1, 2},
    {4, 0, 2, 1, VerdictKind::Unknown, 1, false, 0, 1, 1, 1},
    {4, 0, 2, 2, VerdictKind::Unknown, 1, false, 0, 2, 1, 2},
    {4, 0, 3, 1, VerdictKind::Unknown, 1, false, 0, 1, 1, 1},
    {4, 0, 3, 2, VerdictKind::Unknown, 1, false, 0, 2, 1, 2},
    {4, 1, 0, 1, VerdictKind::Robust, 1, true, 1, 1, 1, 1},
    {4, 1, 0, 2, VerdictKind::Robust, 1, true, 1, 1, 1, 1},
    {4, 1, 1, 1, VerdictKind::Unknown, 1, false, 0, 2, 5, 1},
    {4, 1, 1, 2, VerdictKind::Unknown, 1, false, 0, 4, 14, 4},
    {4, 1, 2, 1, VerdictKind::Unknown, 1, false, 0, 3, 9, 1},
    {4, 1, 2, 2, VerdictKind::Unknown, 1, false, 0, 6, 27, 8},
    {4, 1, 3, 1, VerdictKind::Unknown, 1, false, 0, 2, 13, 1},
    {4, 1, 3, 2, VerdictKind::Unknown, 1, false, 0, 3, 13, 10},
    {4, 2, 0, 1, VerdictKind::Robust, 1, true, 1, 1, 1, 1},
    {4, 2, 0, 2, VerdictKind::Robust, 1, true, 1, 1, 1, 1},
    {4, 2, 1, 1, VerdictKind::Unknown, 1, false, 0, 1, 3, 1},
    {4, 2, 1, 2, VerdictKind::Unknown, 1, false, 0, 3, 3, 2},
    {4, 2, 2, 1, VerdictKind::Unknown, 1, false, 0, 1, 3, 1},
    {4, 2, 2, 2, VerdictKind::Unknown, 1, false, 0, 3, 3, 2},
    {4, 2, 3, 1, VerdictKind::Unknown, 1, false, 0, 1, 4, 1},
    {4, 2, 3, 2, VerdictKind::Unknown, 1, false, 0, 2, 4, 2},
    {5, 0, 0, 1, VerdictKind::Robust, 1, true, 1, 1, 1, 1},
    {5, 0, 0, 2, VerdictKind::Robust, 1, true, 1, 1, 1, 1},
    {5, 0, 1, 1, VerdictKind::Unknown, 1, false, 0, 1, 1, 1},
    {5, 0, 1, 2, VerdictKind::Unknown, 1, false, 0, 2, 1, 2},
    {5, 0, 2, 1, VerdictKind::Unknown, 1, false, 0, 1, 1, 1},
    {5, 0, 2, 2, VerdictKind::Unknown, 1, false, 0, 2, 1, 2},
    {5, 0, 3, 1, VerdictKind::Unknown, 1, false, 0, 1, 1, 1},
    {5, 0, 3, 2, VerdictKind::Unknown, 1, false, 0, 2, 1, 2},
    {5, 1, 0, 1, VerdictKind::Robust, 1, true, 1, 1, 1, 1},
    {5, 1, 0, 2, VerdictKind::Robust, 1, true, 1, 1, 1, 1},
    {5, 1, 1, 1, VerdictKind::Robust, 1, true, 1, 4, 4, 1},
    {5, 1, 1, 2, VerdictKind::Robust, 1, true, 1, 8, 5, 3},
    {5, 1, 2, 1, VerdictKind::Unknown, 1, false, 0, 1, 8, 1},
    {5, 1, 2, 2, VerdictKind::Unknown, 1, false, 0, 6, 8, 6},
    {5, 1, 3, 1, VerdictKind::Unknown, 1, false, 0, 1, 12, 1},
    {5, 1, 3, 2, VerdictKind::Unknown, 1, false, 0, 1, 12, 1},
    {5, 2, 0, 1, VerdictKind::Robust, 1, true, 1, 1, 1, 1},
    {5, 2, 0, 2, VerdictKind::Robust, 1, true, 1, 1, 1, 1},
    {5, 2, 1, 1, VerdictKind::Robust, 1, true, 1, 4, 4, 1},
    {5, 2, 1, 2, VerdictKind::Robust, 1, true, 1, 6, 4, 3},
    {5, 2, 2, 1, VerdictKind::Unknown, 1, false, 0, 1, 4, 1},
    {5, 2, 2, 2, VerdictKind::Unknown, 1, false, 0, 2, 4, 3},
    {5, 2, 3, 1, VerdictKind::Unknown, 1, false, 0, 1, 3, 1},
    {5, 2, 3, 2, VerdictKind::Unknown, 1, false, 0, 3, 3, 2},
};

void expectGolden(const GoldenCert &G, const Certificate &C,
                  const char *Label) {
  EXPECT_EQ(C.Kind, G.Kind) << Label;
  EXPECT_EQ(C.ConcretePrediction, G.ConcretePrediction) << Label;
  EXPECT_EQ(C.DominatingClass.has_value(), G.HasDominating) << Label;
  if (C.DominatingClass && G.HasDominating) {
    EXPECT_EQ(*C.DominatingClass, G.DominatingClass) << Label;
  }
  EXPECT_EQ(C.NumTerminals, G.NumTerminals) << Label;
  EXPECT_EQ(C.PeakDisjuncts, G.PeakDisjuncts) << Label;
  EXPECT_EQ(C.BestSplitCalls, G.BestSplitCalls) << Label;
}

std::string goldenLabel(const GoldenCert &G, const char *Knobs) {
  return std::string("q") + std::to_string(G.Query) + " " +
         domainKindName(kGoldenDomains[G.Domain]) + " n=" +
         std::to_string(G.Budget) + " depth=" + std::to_string(G.Depth) +
         " " + Knobs;
}

} // namespace

TEST(SoAGoldenTest, CertificatesMatchScalarSeedAcrossKnobGrid) {
  Dataset Data = figure2Dataset();
  Verifier V(Data);
  const std::pair<unsigned, unsigned> KnobGrid[] = {
      {1, 1}, {2, 1}, {1, 2}, {2, 2}, {0, 0}};
  for (const GoldenCert &G : kGoldenCerts) {
    for (auto [FrontierJobs, SplitJobs] : KnobGrid) {
      VerifierConfig Config;
      Config.Depth = G.Depth;
      Config.Domain = kGoldenDomains[G.Domain];
      Config.DisjunctCap = 4;
      Config.FrontierJobs = FrontierJobs;
      Config.SplitJobs = SplitJobs;
      std::string Knobs = "fj=" + std::to_string(FrontierJobs) +
                          " sj=" + std::to_string(SplitJobs);
      expectGolden(G, V.verify(&kGoldenQueries[G.Query], G.Budget, Config),
                   goldenLabel(G, Knobs.c_str()).c_str());
    }
  }
}

TEST(SoAGoldenTest, BatchCertificatesMatchGoldenAcrossJobs) {
  // The batch-level Jobs axis: one pool fans independent queries out; each
  // certificate must still equal its pinned golden row for every pool size
  // (including the serial null pool).
  Dataset Data = figure2Dataset();
  Verifier V(Data);
  std::vector<const float *> Inputs;
  for (const float &Q : kGoldenQueries)
    Inputs.push_back(&Q);

  for (unsigned Jobs : {1u, 2u, 4u}) {
    std::unique_ptr<ThreadPool> Pool = makeVerificationPool(Jobs);
    for (unsigned D = 0; D < 3; ++D)
      for (uint32_t Budget = 0; Budget <= 3; ++Budget)
        for (unsigned Depth = 1; Depth <= 2; ++Depth) {
          VerifierConfig Config;
          Config.Depth = Depth;
          Config.Domain = kGoldenDomains[D];
          Config.DisjunctCap = 4;
          std::vector<Certificate> Certs =
              V.verifyBatch(Inputs, Budget, Config, Pool.get());
          ASSERT_EQ(Certs.size(), Inputs.size());
          for (const GoldenCert &G : kGoldenCerts) {
            if (G.Domain != D || G.Budget != Budget || G.Depth != Depth)
              continue;
            std::string Knobs = "jobs=" + std::to_string(Jobs);
            expectGolden(G, Certs[G.Query],
                         goldenLabel(G, Knobs.c_str()).c_str());
          }
        }
  }
}

//===----------------------------------------------------------------------===//
// Property tests: branch-free kernels vs naive references
//===----------------------------------------------------------------------===//

TEST(SoAKernelPropertyTest, FusedGiniMatchesReferenceComposition) {
  // The fused Optimal x ExactTerm ent# must produce the same doubles as
  // the retained composition cprob# |> ent# it replaced — including the
  // Budget == Total corner (which stays on the reference path) and counts
  // of zero (where max(c - n, 0)/m must reproduce the guarded 0.0).
  Rng R(20260808);
  for (int Trial = 0; Trial < 5000; ++Trial) {
    unsigned K = 2 + static_cast<unsigned>(R.uniformInt(5));
    std::vector<uint32_t> Counts(K);
    uint32_t Total = 0;
    for (uint32_t &C : Counts) {
      C = static_cast<uint32_t>(R.uniformInt(20));
      Total += C;
    }
    if (Total == 0)
      continue;
    uint32_t Budget = static_cast<uint32_t>(R.uniformInt(Total + 1));
    Interval Fused = abstractGiniImpurityFromCounts(
        Counts, Total, Budget, CprobTransformerKind::Optimal,
        GiniLiftingKind::ExactTerm);
    Interval Reference = abstractGiniImpurity(
        abstractClassProbabilities(Counts, Total, Budget,
                                   CprobTransformerKind::Optimal),
        GiniLiftingKind::ExactTerm);
    EXPECT_EQ(Fused.lb(), Reference.lb()) << "trial " << Trial;
    EXPECT_EQ(Fused.ub(), Reference.ub()) << "trial " << Trial;
  }
}

TEST(SoAKernelPropertyTest, FusedScoreMatchesReferenceIntervalExpression) {
  // score# = |pos| * ent#(pos) + |neg| * ent#(neg): the fused combine skips
  // the interval objects but must land on the same doubles the interval
  // expression produces (sizes and impurities are non-negative, so the
  // 4-product multiply degenerates to lo*lo / hi*hi).
  Rng R(987654);
  for (int Trial = 0; Trial < 5000; ++Trial) {
    unsigned K = 2 + static_cast<unsigned>(R.uniformInt(4));
    std::vector<uint32_t> Pos(K), Neg(K);
    uint32_t PosTotal = 0, NegTotal = 0;
    for (unsigned C = 0; C < K; ++C) {
      Pos[C] = static_cast<uint32_t>(R.uniformInt(25));
      Neg[C] = static_cast<uint32_t>(R.uniformInt(25));
      PosTotal += Pos[C];
      NegTotal += Neg[C];
    }
    if (PosTotal == 0 || NegTotal == 0)
      continue;
    uint32_t PosBudget = static_cast<uint32_t>(R.uniformInt(PosTotal + 1));
    uint32_t NegBudget = static_cast<uint32_t>(R.uniformInt(NegTotal + 1));
    Interval Fused = abstractSplitScore(Pos, PosTotal, PosBudget, Neg,
                                        NegTotal, NegBudget,
                                        CprobTransformerKind::Optimal,
                                        GiniLiftingKind::ExactTerm);
    Interval PosSize(static_cast<double>(PosTotal - PosBudget),
                     static_cast<double>(PosTotal));
    Interval NegSize(static_cast<double>(NegTotal - NegBudget),
                     static_cast<double>(NegTotal));
    Interval Reference =
        PosSize * abstractGiniImpurity(
                      abstractClassProbabilities(
                          Pos, PosTotal, PosBudget,
                          CprobTransformerKind::Optimal),
                      GiniLiftingKind::ExactTerm) +
        NegSize * abstractGiniImpurity(
                      abstractClassProbabilities(
                          Neg, NegTotal, NegBudget,
                          CprobTransformerKind::Optimal),
                      GiniLiftingKind::ExactTerm);
    EXPECT_EQ(Fused.lb(), Reference.lb()) << "trial " << Trial;
    EXPECT_EQ(Fused.ub(), Reference.ub()) << "trial " << Trial;
  }
}

namespace {

/// A naive row-walk reimplementation of one feature's candidate stream:
/// gather the in-set (value, label) pairs, sort by (value, row id) — the
/// SplitContext order — and emit a candidate at each distinct-value
/// boundary. The dense compaction kernel must replay this exactly.
struct NaiveCandidate {
  SplitPredicate Pred;
  std::vector<uint32_t> PosCounts;
  uint32_t PosTotal;
};

std::vector<NaiveCandidate> naiveCandidates(const Dataset &Base,
                                            const RowIndexList &Rows,
                                            PredicateMode Mode) {
  std::vector<NaiveCandidate> Out;
  uint32_t Total = static_cast<uint32_t>(Rows.size());
  for (unsigned F = 0; F < Base.numFeatures(); ++F) {
    if (Base.schema().FeatureKinds[F] == FeatureKind::Boolean) {
      std::vector<uint32_t> Zero(Base.numClasses(), 0);
      uint32_t ZeroTotal = 0;
      for (uint32_t Row : Rows)
        if (Base.value(Row, F) == 0.0) {
          ++Zero[Base.label(Row)];
          ++ZeroTotal;
        }
      if (ZeroTotal > 0 && ZeroTotal < Total)
        Out.push_back({SplitPredicate::threshold(F, 0.5), Zero, ZeroTotal});
      continue;
    }
    std::vector<std::pair<float, uint32_t>> Sorted;
    for (uint32_t Row : Rows)
      Sorted.emplace_back(static_cast<float>(Base.value(Row, F)), Row);
    std::sort(Sorted.begin(), Sorted.end());
    std::vector<uint32_t> PosCounts(Base.numClasses(), 0);
    uint32_t PosTotal = 0;
    for (size_t I = 0; I < Sorted.size(); ++I) {
      double V = Sorted[I].first;
      if (I > 0 && V != static_cast<double>(Sorted[I - 1].first)) {
        double Prev = Sorted[I - 1].first;
        SplitPredicate Pred =
            Mode == PredicateMode::ConcreteMidpoint
                ? SplitPredicate::threshold(F, (Prev + V) / 2.0)
                : SplitPredicate::symbolic(F, Prev, V);
        Out.push_back({Pred, PosCounts, PosTotal});
      }
      ++PosCounts[Base.label(Sorted[I].second)];
      ++PosTotal;
    }
  }
  return Out;
}

RowIndexList randomSubset(Rng &R, unsigned NumRows) {
  RowIndexList Rows;
  for (uint32_t Row = 0; Row < NumRows; ++Row)
    if (R.bernoulli(0.7))
      Rows.push_back(Row);
  return Rows;
}

} // namespace

TEST(SoAKernelPropertyTest, CandidateEnumerationMatchesNaiveRowWalk) {
  Rng R(13579);
  for (int Trial = 0; Trial < 300; ++Trial) {
    RandomDatasetSpec Spec;
    Spec.MinRows = 4;
    Spec.MaxRows = 16;
    Spec.NumFeatures = 3;
    Spec.NumClasses = 2 + static_cast<unsigned>(R.uniformInt(2));
    Spec.BooleanFeatures = Trial % 3 == 0;
    Dataset Data = makeRandomDataset(R, Spec);
    SplitContext Ctx(Data);
    RowIndexList Rows = randomSubset(R, Data.numRows());
    if (Rows.empty())
      continue;
    for (PredicateMode Mode : {PredicateMode::ConcreteMidpoint,
                               PredicateMode::SymbolicInterval}) {
      std::vector<NaiveCandidate> Expected =
          naiveCandidates(Data, Rows, Mode);
      std::vector<NaiveCandidate> Actual;
      forEachCandidateSplit(Ctx, Rows, Mode,
                            [&](const SplitPredicate &P,
                                const std::vector<uint32_t> &PosCounts,
                                uint32_t PosTotal) {
                              Actual.push_back({P, PosCounts, PosTotal});
                            });
      ASSERT_EQ(Actual.size(), Expected.size()) << "trial " << Trial;
      for (size_t I = 0; I < Actual.size(); ++I) {
        EXPECT_TRUE(Actual[I].Pred == Expected[I].Pred)
            << "trial " << Trial << " candidate " << I;
        EXPECT_EQ(Actual[I].PosCounts, Expected[I].PosCounts)
            << "trial " << Trial << " candidate " << I;
        EXPECT_EQ(Actual[I].PosTotal, Expected[I].PosTotal)
            << "trial " << Trial << " candidate " << I;
      }
    }
  }
}

TEST(SoAKernelPropertyTest, FilterRowsMatchesNaivePredicateLoop) {
  Rng R(24680);
  for (int Trial = 0; Trial < 500; ++Trial) {
    RandomDatasetSpec Spec;
    Spec.MinRows = 4;
    Spec.MaxRows = 20;
    Spec.NumFeatures = 2;
    Dataset Data = makeRandomDataset(R, Spec);
    RowIndexList Rows = randomSubset(R, Data.numRows());
    unsigned F = static_cast<unsigned>(R.uniformInt(Spec.NumFeatures));
    // Half-integer thresholds land between values; integers land on them.
    double Threshold = static_cast<double>(R.uniformInt(2 * 5)) / 2.0;
    SplitPredicate Pred = SplitPredicate::threshold(F, Threshold);
    for (bool Positive : {true, false}) {
      RowIndexList Expected;
      for (uint32_t Row : Rows)
        if ((Data.value(Row, F) <= Threshold) == Positive)
          Expected.push_back(Row);
      EXPECT_EQ(filterRows(Data, Rows, Pred, Positive), Expected)
          << "trial " << Trial << " positive=" << Positive;
    }
  }
}

TEST(SoAKernelPropertyTest, RestrictMatchesNaiveThreeValuedLoop) {
  // restrict# rewritten as compare-into-mask passes must keep exactly the
  // possible rows and charge exactly the maybe rows, per the Appendix B.1
  // closed form — checked against an explicit three-valued evaluation.
  Rng R(112358);
  for (int Trial = 0; Trial < 500; ++Trial) {
    RandomDatasetSpec Spec;
    Spec.MinRows = 4;
    Spec.MaxRows = 20;
    Spec.NumFeatures = 2;
    Dataset Data = makeRandomDataset(R, Spec);
    RowIndexList Rows = randomSubset(R, Data.numRows());
    if (Rows.empty())
      continue;
    uint32_t Budget =
        static_cast<uint32_t>(R.uniformInt(Rows.size() + 1));
    AbstractDataset Abstract(Data, Rows, Budget);
    unsigned F = static_cast<unsigned>(R.uniformInt(Spec.NumFeatures));
    double Lo = static_cast<double>(R.uniformInt(4));
    double Hi = Lo + 1.0 + static_cast<double>(R.uniformInt(2));
    SplitPredicate Pred = R.bernoulli(0.3)
                              ? SplitPredicate::threshold(F, Lo)
                              : SplitPredicate::symbolic(F, Lo, Hi);
    for (bool Positive : {true, false}) {
      RowIndexList Possible;
      uint32_t Definite = 0;
      for (uint32_t Row : Rows) {
        ThreeValued E = Pred.evaluate(Data.value(Row, F));
        bool MayKeep = Positive ? E != ThreeValued::False
                                : E != ThreeValued::True;
        bool MustKeep = Positive ? E == ThreeValued::True
                                 : E == ThreeValued::False;
        if (MayKeep)
          Possible.push_back(Row);
        Definite += MustKeep;
      }
      uint32_t PossibleSize = static_cast<uint32_t>(Possible.size());
      uint32_t ExpectedBudget =
          std::max(std::min(Budget, PossibleSize),
                   (PossibleSize - Definite) + std::min(Budget, Definite));
      AbstractDataset Restricted = Abstract.restrict(Pred, Positive);
      EXPECT_EQ(Restricted.rows(), Possible)
          << "trial " << Trial << " positive=" << Positive;
      EXPECT_EQ(Restricted.budget(), std::min(ExpectedBudget, PossibleSize))
          << "trial " << Trial << " positive=" << Positive;
    }
  }
}

TEST(SoAKernelPropertyTest, SliceJoinMeetMatchScalarLatticeOps) {
  Rng R(31415);
  for (int Trial = 0; Trial < 200; ++Trial) {
    size_t N = 1 + static_cast<size_t>(R.uniformInt(64));
    std::vector<double> ALo(N), AHi(N), BLo(N), BHi(N), OutLo(N), OutHi(N);
    for (size_t I = 0; I < N; ++I) {
      double A0 = R.uniform(-10.0, 10.0);
      double A1 = R.uniform(-10.0, 10.0);
      ALo[I] = std::min(A0, A1);
      AHi[I] = std::max(A0, A1);
      double B0 = R.uniform(-10.0, 10.0);
      double B1 = R.uniform(-10.0, 10.0);
      BLo[I] = std::min(B0, B1);
      BHi[I] = std::max(B0, B1);
    }
    joinSlices(ALo.data(), AHi.data(), BLo.data(), BHi.data(), OutLo.data(),
               OutHi.data(), N);
    for (size_t I = 0; I < N; ++I) {
      Interval J = Interval(ALo[I], AHi[I]).join(Interval(BLo[I], BHi[I]));
      EXPECT_EQ(OutLo[I], J.lb()) << "trial " << Trial << " slot " << I;
      EXPECT_EQ(OutHi[I], J.ub()) << "trial " << Trial << " slot " << I;
    }
    meetSlices(ALo.data(), AHi.data(), BLo.data(), BHi.data(), OutLo.data(),
               OutHi.data(), N);
    for (size_t I = 0; I < N; ++I) {
      Interval M = Interval(ALo[I], AHi[I]).meet(Interval(BLo[I], BHi[I]));
      if (M.isEmpty()) {
        EXPECT_GT(OutLo[I], OutHi[I]) << "trial " << Trial << " slot " << I;
      } else {
        EXPECT_EQ(OutLo[I], M.lb()) << "trial " << Trial << " slot " << I;
        EXPECT_EQ(OutHi[I], M.ub()) << "trial " << Trial << " slot " << I;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// SoA dataset invariants
//===----------------------------------------------------------------------===//

TEST(SoADatasetTest, ColumnSlicesMatchScalarAccessors) {
  Dataset Data = figure2Dataset();
  for (unsigned F = 0; F < Data.numFeatures(); ++F) {
    const float *Col = Data.column(F);
    for (unsigned Row = 0; Row < Data.numRows(); ++Row)
      EXPECT_EQ(static_cast<double>(Col[Row]), Data.value(Row, F));
  }
  const uint32_t *Labels = Data.labels();
  for (unsigned Row = 0; Row < Data.numRows(); ++Row)
    EXPECT_EQ(Labels[Row], Data.label(Row));
}

TEST(SoADatasetTest, RowMirrorTransposesColumns) {
  Rng R(777);
  RandomDatasetSpec Spec;
  Spec.MinRows = 5;
  Spec.MaxRows = 12;
  Spec.NumFeatures = 4;
  Dataset Data = makeRandomDataset(R, Spec);
  for (unsigned Row = 0; Row < Data.numRows(); ++Row) {
    const float *RowSlice = Data.row(Row);
    for (unsigned F = 0; F < Data.numFeatures(); ++F)
      EXPECT_EQ(static_cast<double>(RowSlice[F]), Data.value(Row, F))
          << "row " << Row << " feature " << F;
  }
  // The mirror must track later mutation (addRow invalidates it).
  std::vector<float> Extra(Data.numFeatures(), 3.0f);
  Data.addRow(Extra, 0);
  const float *Last = Data.row(Data.numRows() - 1);
  for (unsigned F = 0; F < Data.numFeatures(); ++F)
    EXPECT_EQ(Last[F], 3.0f);
}

TEST(SoADatasetTest, GatherRowsSelectsAndBulkCopies) {
  Dataset Base = figure2Dataset();
  // Strict subset: per-column gather.
  RowIndexList Subset = {1, 4, 7, 12};
  Dataset Gathered = Dataset::gatherRows(Base, Subset);
  ASSERT_EQ(Gathered.numRows(), Subset.size());
  for (size_t I = 0; I < Subset.size(); ++I) {
    EXPECT_EQ(Gathered.value(static_cast<unsigned>(I), 0),
              Base.value(Subset[I], 0));
    EXPECT_EQ(Gathered.label(static_cast<unsigned>(I)),
              Base.label(Subset[I]));
  }
  // Full range: the bulk-copy fast path must be an identity.
  Dataset Copy = Dataset::gatherRows(Base, allRows(Base));
  ASSERT_EQ(Copy.numRows(), Base.numRows());
  for (unsigned Row = 0; Row < Base.numRows(); ++Row) {
    EXPECT_EQ(Copy.value(Row, 0), Base.value(Row, 0));
    EXPECT_EQ(Copy.label(Row), Base.label(Row));
  }
}

TEST(SoADatasetTest, SetLabelPatchesLabelsWithoutTouchingColumns) {
  Dataset Data = figure2Dataset();
  std::vector<float> Before(Data.column(0), Data.column(0) + Data.numRows());
  unsigned Old = Data.label(3);
  Data.setLabel(3, 1 - Old);
  EXPECT_EQ(Data.label(3), 1 - Old);
  EXPECT_EQ(Data.labels()[3], 1 - Old);
  for (unsigned Row = 0; Row < Data.numRows(); ++Row)
    EXPECT_EQ(static_cast<double>(Data.column(0)[Row]), Before[Row]);
  std::vector<uint32_t> Counts = classCounts(Data, allRows(Data));
  EXPECT_EQ(Counts[0] + Counts[1], Data.numRows());
}
