//===- tests/ReplicatorTests.cpp - Pull-replication tests ---------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// The replication pipeline end to end over a real socket: a replica
// pulls byte-identical certificates, replays are idempotent, a source
// compaction forces the epoch-reset full resync, and — the soundness
// half — a delta corrupted at *every* byte offset is skipped, never
// applied as a wrong certificate. Torn poll frames (cut at every byte
// offset via tests/NetHarness) cost the source one connection, never
// the process.
//
//===----------------------------------------------------------------------===//

#include "serving/Replicator.h"

#include "NetHarness.h"
#include "TestUtil.h"
#include "serving/CertCache.h"
#include "serving/CertServer.h"
#include "serving/DiskCertStore.h"
#include "serving/NetServer.h"

#include <gtest/gtest.h>

#include <chrono>
#include <dirent.h>
#include <memory>
#include <thread>
#include <unistd.h>

using namespace antidote;
using namespace antidote::testutil;

namespace {

class TempStoreDir {
public:
  TempStoreDir() {
    char Template[] = "/tmp/antidote-repl-test-XXXXXX";
    const char *Made = mkdtemp(Template);
    EXPECT_NE(Made, nullptr);
    Dir = Made ? Made : "";
  }
  ~TempStoreDir() {
    if (Dir.empty())
      return;
    if (DIR *D = opendir(Dir.c_str())) {
      while (struct dirent *Entry = readdir(D)) {
        std::string Name = Entry->d_name;
        if (Name != "." && Name != "..")
          ::unlink((Dir + "/" + Name).c_str());
      }
      closedir(D);
    }
    ::rmdir(Dir.c_str());
  }

  const std::string &path() const { return Dir; }

private:
  std::string Dir;
};

VerifierConfig makeConfig() {
  VerifierConfig Config;
  Config.Depth = 2;
  Config.Domain = AbstractDomainKind::Box;
  Config.Limits.TimeoutSeconds = 30.0;
  return Config;
}

std::unique_ptr<DiskCertStore> openOrDie(const std::string &Dir,
                                         const DiskCertStoreOptions &Options =
                                             {}) {
  DiskCertStore::OpenResult Opened = DiskCertStore::open(Dir, Options);
  EXPECT_TRUE(Opened.ok()) << Opened.Error;
  return std::move(Opened.Store);
}

void expectIdenticalCertificates(const Certificate &A, const Certificate &B) {
  EXPECT_EQ(A.Kind, B.Kind);
  EXPECT_EQ(A.PoisoningBudget, B.PoisoningBudget);
  EXPECT_EQ(A.CertifiedRadius, B.CertifiedRadius);
  EXPECT_EQ(A.ConcretePrediction, B.ConcretePrediction);
  EXPECT_EQ(A.NumTerminals, B.NumTerminals);
  EXPECT_EQ(A.PeakDisjuncts, B.PeakDisjuncts);
  EXPECT_EQ(A.BestSplitCalls, B.BestSplitCalls);
  EXPECT_EQ(A.Seconds, B.Seconds);
}

/// The source side of every test: a disk store under a CertServer and a
/// NetServer, whose listen socket also answers journal polls.
struct SourceStack {
  TempStoreDir Dir;
  Dataset Train = figure2Dataset();
  Verifier V{Train};
  std::unique_ptr<DiskCertStore> Disk;
  std::unique_ptr<CertServer> Server;
  std::unique_ptr<NetServer> Net;

  SourceStack() {
    Disk = openOrDie(Dir.path());
    CertServerConfig Config;
    Config.Query = makeConfig();
    Config.Jobs = 1;
    Config.Store = Disk.get();
    Server = std::make_unique<CertServer>(Train, Config);
    Net = std::make_unique<NetServer>(*Server, NetServerConfig());
    std::string Error;
    if (!Net->start(Error))
      ADD_FAILURE() << "NetServer start: " << Error;
  }

  ~SourceStack() { Net->stop(); }

  /// Verifies \p Q at budget 1 through the source store (write-through)
  /// and returns the certificate.
  Certificate seed(float Q) {
    VerifierConfig Config = makeConfig();
    Config.Cache = Disk.get();
    const float X[] = {Q};
    return V.verify(X, 1, Config);
  }

  uint16_t port() const { return Net->port(); }
};

/// Polls until the source reports the replica caught up (bounded).
void catchUp(Replicator &Repl) {
  bool More = true;
  std::string Error;
  for (int Round = 0; More && Round < 64; ++Round)
    ASSERT_TRUE(Repl.pollOnce(More, Error)) << Error;
  EXPECT_FALSE(More) << "never caught up";
}

} // namespace

TEST(ReplicatorTest, ReplicaPullsByteIdenticalCertificates) {
  SourceStack Source;
  std::vector<float> Queries = {1.5f, 9.5f, 12.5f};
  std::vector<Certificate> Seeded;
  for (float Q : Queries)
    Seeded.push_back(Source.seed(Q));

  TempStoreDir ReplicaDir;
  std::unique_ptr<DiskCertStore> Replica = openOrDie(ReplicaDir.path());
  ReplicatorConfig Config;
  Config.Port = Source.port();
  Replicator Repl(*Replica, Config);
  catchUp(Repl);

  ReplicatorStats Stats = Repl.stats();
  EXPECT_EQ(Stats.Applied, 3u);
  EXPECT_EQ(Stats.Duplicates, 0u);
  EXPECT_EQ(Stats.Corrupt, 0u);
  EXPECT_EQ(Stats.Errors, 0u);
  EXPECT_EQ(Replica->stats().LiveRecords, 3u);

  // Every replicated certificate is the source's, byte for byte —
  // Seconds included, because the record bytes crossed the wire
  // verbatim and the replica appended them unchanged.
  VerifierConfig Probe = makeConfig();
  for (size_t I = 0; I < Queries.size(); ++I) {
    const float X[] = {Queries[I]};
    Certificate Out;
    ASSERT_TRUE(Replica->lookup(Source.V.fingerprint(), X, 1, 1, Probe, Out));
    expectIdenticalCertificates(Seeded[I], Out);
  }
}

TEST(ReplicatorTest, ReplayedDeltasAreIdempotent) {
  SourceStack Source;
  for (float Q : {1.5f, 9.5f})
    Source.seed(Q);

  TempStoreDir ReplicaDir;
  std::unique_ptr<DiskCertStore> Replica = openOrDie(ReplicaDir.path());
  ReplicatorConfig Config;
  Config.Port = Source.port();
  {
    Replicator First(*Replica, Config);
    catchUp(First);
    EXPECT_EQ(First.stats().Applied, 2u);
  }

  // A second puller with a fresh cursor replays the whole journal; the
  // duplicate-decline path absorbs every record, and the replica's
  // contents do not change.
  uint64_t RecordsBefore = Replica->stats().LiveRecords;
  Replicator Again(*Replica, Config);
  catchUp(Again);
  ReplicatorStats Stats = Again.stats();
  EXPECT_EQ(Stats.Applied, 0u);
  EXPECT_EQ(Stats.Duplicates, 2u);
  EXPECT_EQ(Stats.Corrupt, 0u);
  EXPECT_EQ(Replica->stats().LiveRecords, RecordsBefore);
}

TEST(ReplicatorTest, CompactionEpochBumpForcesFullResync) {
  SourceStack Source;
  Source.seed(1.5f);
  Source.seed(9.5f);

  TempStoreDir ReplicaDir;
  std::unique_ptr<DiskCertStore> Replica = openOrDie(ReplicaDir.path());
  ReplicatorConfig Config;
  Config.Port = Source.port();
  Replicator Repl(*Replica, Config);
  catchUp(Repl);
  ASSERT_EQ(Repl.stats().Applied, 2u);
  uint64_t EpochBefore = Repl.cursorEpoch();
  // The very first poll (cursor epoch 0) already cost one adoption
  // reset; the compaction must add exactly one more.
  uint64_t ResetsBefore = Repl.stats().EpochResets;

  // Compaction renumbers the survivors under a new epoch; a record
  // appended after it exists only in that epoch.
  std::string Error;
  ASSERT_TRUE(Source.Disk->compact(&Error)) << Error;
  Source.seed(12.5f);

  // The replica's cursor is now in a retired epoch: the source answers
  // EpochReset, the cursor rewinds to serial 0, and the full resync's
  // replays are declined as duplicates while the new record applies.
  catchUp(Repl);
  ReplicatorStats Stats = Repl.stats();
  EXPECT_EQ(Stats.EpochResets, ResetsBefore + 1);
  EXPECT_EQ(Stats.Applied, 3u);
  EXPECT_EQ(Stats.Duplicates, 2u);
  EXPECT_GT(Repl.cursorEpoch(), EpochBefore);
  EXPECT_EQ(Replica->stats().LiveRecords, 3u);

  const float X[] = {12.5f};
  Certificate Out;
  VerifierConfig Probe = makeConfig();
  EXPECT_TRUE(Replica->lookup(Source.V.fingerprint(), X, 1, 1, Probe, Out));
}

TEST(ReplicatorTest, CorruptDeltaRecordsAreSkippedAtEveryByteOffset) {
  // The apply path's soundness, with no network in the way: take one
  // record's exact wire bytes, corrupt each byte in turn (and tear the
  // record at every length), and feed it to a fresh replica store. The
  // checksum/parse validation must reject every mutant — a corrupt
  // delta degrades to a skip, never to a wrong certificate.
  SourceStack Source;
  Source.seed(9.5f);

  // Adopt the source's epoch the way a replica would: a cold poll
  // (epoch 0) earns an EpochReset naming the live epoch, the re-poll
  // gets the delta.
  ReplicationEndpoint::PollRequest Poll;
  ReplicationEndpoint::Delta Delta =
      Source.Disk->replication()->serveJournalPoll(Poll);
  ASSERT_EQ(Delta.Status, ReplicationEndpoint::PollStatus::EpochReset);
  Poll.Epoch = Delta.Epoch;
  Poll.Serial = 0;
  Delta = Source.Disk->replication()->serveJournalPoll(Poll);
  ASSERT_EQ(Delta.Status, ReplicationEndpoint::PollStatus::Delta);
  ASSERT_EQ(Delta.Records.size(), 1u);
  const std::vector<uint8_t> &Record = Delta.Records[0];

  TempStoreDir ReplicaDir;
  std::unique_ptr<DiskCertStore> Replica = openOrDie(ReplicaDir.path());
  ReplicationEndpoint *End = Replica->replication();
  ASSERT_NE(End, nullptr);

  for (size_t I = 0; I < Record.size(); ++I) {
    std::vector<uint8_t> Mutant = Record;
    Mutant[I] ^= 0xFF;
    EXPECT_EQ(End->applyReplicatedRecord(Mutant.data(), Mutant.size()),
              ReplicationEndpoint::ApplyResult::Corrupt)
        << "flipped byte " << I;
  }
  for (size_t Len = 0; Len < Record.size(); ++Len)
    EXPECT_EQ(End->applyReplicatedRecord(Record.data(), Len),
              ReplicationEndpoint::ApplyResult::Corrupt)
        << "torn at " << Len;
  EXPECT_EQ(Replica->stats().LiveRecords, 0u);

  // The intact bytes still apply — the storm above rejected mutants,
  // not the record — and a replay of them is a duplicate.
  EXPECT_EQ(End->applyReplicatedRecord(Record.data(), Record.size()),
            ReplicationEndpoint::ApplyResult::Applied);
  EXPECT_EQ(End->applyReplicatedRecord(Record.data(), Record.size()),
            ReplicationEndpoint::ApplyResult::Duplicate);
  EXPECT_EQ(Replica->stats().LiveRecords, 1u);
}

TEST(ReplicatorTest, TornPollFramesCostOneConnectionNeverTheSource) {
  SourceStack Source;
  Source.seed(9.5f);

  ReplicationEndpoint::PollRequest Poll;
  std::string Frame = encodeJournalPollFrame(Poll);

  // Every proper prefix of a poll frame, then a hangup: the source must
  // treat each as one lost connection and keep serving.
  for (size_t Len = 0; Len < Frame.size(); ++Len) {
    testharness::NetClient Client(Source.port());
    ASSERT_TRUE(Client.connected()) << "torn at " << Len;
    if (Len > 0) {
      ASSERT_TRUE(Client.sendRaw(Frame.data(), Len));
    }
    Client.close();
  }

  // And garbage with a poll-like length: a framing error, one closed
  // connection, process alive.
  {
    testharness::NetClient Client(Source.port());
    ASSERT_TRUE(Client.connected());
    std::vector<uint8_t> Garbage(Frame.size(), 0x5A);
    ASSERT_TRUE(Client.sendRaw(Garbage.data(), Garbage.size()));
    ASSERT_TRUE(Client.waitForClose());
  }

  // The storm over, a real replica still syncs.
  TempStoreDir ReplicaDir;
  std::unique_ptr<DiskCertStore> Replica = openOrDie(ReplicaDir.path());
  ReplicatorConfig Config;
  Config.Port = Source.port();
  Replicator Repl(*Replica, Config);
  catchUp(Repl);
  EXPECT_EQ(Repl.stats().Applied, 1u);
  EXPECT_GE(Source.Net->stats().JournalPolls, 1u);
}

TEST(ReplicatorTest, BackgroundThreadReplicatesAndStopsPromptly) {
  SourceStack Source;
  Source.seed(1.5f);
  Source.seed(9.5f);

  TempStoreDir ReplicaDir;
  std::unique_ptr<DiskCertStore> Replica = openOrDie(ReplicaDir.path());
  ReplicatorConfig Config;
  Config.Port = Source.port();
  Config.IntervalSeconds = 0.01;
  Replicator Repl(*Replica, Config);
  std::string Error;
  ASSERT_TRUE(Repl.start(Error)) << Error;

  // The background loop catches up on its own; poll the stats rather
  // than sleeping a fixed amount.
  auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (Repl.stats().Applied < 2 &&
         std::chrono::steady_clock::now() < Deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(Repl.stats().Applied, 2u);
  Repl.stop();
  Repl.stop(); // Idempotent.
  EXPECT_EQ(Replica->stats().LiveRecords, 2u);
}

TEST(ReplicatorTest, StartRefusesAStoreWithoutAReplicationEndpoint) {
  // A RAM cache cannot apply raw journal records; wiring a replicator
  // to one must fail loudly at start, not silently no-op.
  CertCache Ram(/*MaxBytes=*/0);
  ReplicatorConfig Config;
  Config.Port = 1; // Never dialed: start fails before connecting.
  Replicator Repl(Ram, Config);
  std::string Error;
  EXPECT_FALSE(Repl.start(Error));
  EXPECT_FALSE(Error.empty());
}
