//===- tests/BestSplitShardTests.cpp - per-feature bestSplit# sharding --------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// Determinism, interruption, and composition of the per-feature candidate-
// scoring fan-out (`SplitJobs`):
//
//  - `bestSplit#` (and the concrete `bestSplit`) must return bit-identical
//    results for every SplitJobs value, standalone and through full DTrace#
//    runs in all three abstract domains — including combined with
//    FrontierJobs > 1 on one shared pool that is *smaller* than
//    FrontierJobs x SplitJobs (the nested-fan-out regime that must degrade
//    to inline work, never deadlock).
//  - A meter-interrupted `bestSplit#` returns nullopt for every SplitJobs
//    value: truncation is unrepresentable, so no call site can consume a
//    partial predicate set by accident.
//
// Plus regression tests for the satellite bugfixes that ride along: the
// checked CLI numeric parsing (support/Parse.h) and the CRLF / blank-line /
// ragged-row CSV handling (data/Csv.cpp).
//
//===----------------------------------------------------------------------===//

#include "abstract/AbstractBestSplit.h"
#include "antidote/Sweep.h"
#include "data/Csv.h"
#include "data/Registry.h"
#include "support/Parse.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace antidote;
using namespace antidote::testutil;

namespace {

AbstractDomainKind kAllDomains[] = {AbstractDomainKind::Box,
                                    AbstractDomainKind::Disjuncts,
                                    AbstractDomainKind::DisjunctsCapped};

/// The knob values every determinism test sweeps against a separately
/// computed SplitJobs = 1 baseline: an even fan-out, a prime that never
/// divides the feature count evenly, and all cores (0).
unsigned kSplitJobsValues[] = {2, 7, 0};

/// Everything except Seconds must match exactly, terminal-by-terminal
/// (the same contract FrontierParallelTests asserts for FrontierJobs).
void expectIdenticalRuns(const AbstractLearnerResult &Serial,
                         const AbstractLearnerResult &Parallel,
                         const std::string &Label) {
  EXPECT_EQ(Serial.Status, Parallel.Status) << Label;
  EXPECT_EQ(Serial.DominatingClass, Parallel.DominatingClass) << Label;
  EXPECT_EQ(Serial.Refuted, Parallel.Refuted) << Label;
  EXPECT_EQ(Serial.PeakDisjuncts, Parallel.PeakDisjuncts) << Label;
  EXPECT_EQ(Serial.PeakStateBytes, Parallel.PeakStateBytes) << Label;
  EXPECT_EQ(Serial.BestSplitCalls, Parallel.BestSplitCalls) << Label;
  ASSERT_EQ(Serial.Terminals.size(), Parallel.Terminals.size()) << Label;
  for (size_t I = 0; I < Serial.Terminals.size(); ++I)
    EXPECT_TRUE(Serial.Terminals[I] == Parallel.Terminals[I])
        << Label << ", terminal " << I;
}

} // namespace

//===----------------------------------------------------------------------===//
// bestSplit# / bestSplit standalone: bit-identical across SplitJobs
//===----------------------------------------------------------------------===//

TEST(BestSplitShardTest, AbstractResultsBitIdenticalAcrossSplitJobs) {
  Rng R(7031ull);
  RandomDatasetSpec Spec;
  Spec.MaxRows = 12;
  Spec.NumFeatures = 5; // More features than some job counts, fewer than 7.
  Spec.DistinctValues = 4;
  for (int Trial = 0; Trial < 20; ++Trial) {
    Spec.BooleanFeatures = R.bernoulli(0.3);
    Dataset Data = makeRandomDataset(R, Spec);
    SplitContext Ctx(Data);
    uint32_t Budget = static_cast<uint32_t>(R.uniformInt(4));
    AbstractDataset A = AbstractDataset::entire(Data, Budget);
    for (CprobTransformerKind Kind : {CprobTransformerKind::Optimal,
                                      CprobTransformerKind::NaiveInterval}) {
      std::optional<PredicateSet> Serial = abstractBestSplit(Ctx, A, Kind);
      ASSERT_TRUE(Serial.has_value());
      for (unsigned Jobs : kSplitJobsValues) {
        std::unique_ptr<ThreadPool> Pool = makeVerificationPool(Jobs);
        std::optional<PredicateSet> Sharded = abstractBestSplit(
            Ctx, A, Kind, GiniLiftingKind::ExactTerm, /*Meter=*/nullptr,
            Pool.get(), Jobs);
        ASSERT_TRUE(Sharded.has_value());
        EXPECT_TRUE(*Serial == *Sharded)
            << "trial " << Trial << ", SplitJobs=" << Jobs;
      }
    }
  }
}

TEST(BestSplitShardTest, ConcreteBestSplitBitIdenticalAcrossSplitJobs) {
  // The concrete argmin has a first-wins tie-break; the per-feature fold
  // must reproduce it exactly, so generate value ranges where cross-
  // feature score ties are common.
  Rng R(90210ull);
  RandomDatasetSpec Spec;
  Spec.MaxRows = 10;
  Spec.NumFeatures = 4;
  Spec.DistinctValues = 3;
  for (int Trial = 0; Trial < 30; ++Trial) {
    Dataset Data = makeRandomDataset(R, Spec);
    SplitContext Ctx(Data);
    RowIndexList Rows = allRows(Data);
    std::optional<SplitPredicate> Serial = bestSplit(Ctx, Rows);
    for (unsigned Jobs : kSplitJobsValues) {
      std::unique_ptr<ThreadPool> Pool = makeVerificationPool(Jobs);
      std::optional<SplitPredicate> Sharded =
          bestSplit(Ctx, Rows, Pool.get(), Jobs);
      ASSERT_EQ(Serial.has_value(), Sharded.has_value())
          << "trial " << Trial << ", SplitJobs=" << Jobs;
      if (Serial) {
        EXPECT_TRUE(*Serial == *Sharded)
            << "trial " << Trial << ", SplitJobs=" << Jobs << ": "
            << Serial->str() << " vs " << Sharded->str();
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Full DTrace# runs: bit-identical across SplitJobs in all three domains
//===----------------------------------------------------------------------===//

namespace {

AbstractLearnerConfig learnerConfig(AbstractDomainKind Domain,
                                    unsigned FrontierJobs,
                                    unsigned SplitJobs) {
  AbstractLearnerConfig Config;
  Config.Depth = 3;
  Config.Domain = Domain;
  Config.DisjunctCap = 8; // Small enough that capped runs overflow-join.
  Config.FrontierJobs = FrontierJobs;
  Config.SplitJobs = SplitJobs;
  Config.Limits.TimeoutSeconds = 0.0; // Timing must not affect results.
  return Config;
}

} // namespace

TEST(BestSplitShardTest, LearnerRunsIdenticalAcrossSplitJobsAllDomains) {
  BenchmarkDataset Bench = loadBenchmarkDataset("iris", BenchScale::Scaled);
  SplitContext Ctx(Bench.Split.Train);
  const float *X = Bench.Split.Test.row(0);
  for (AbstractDomainKind Domain : kAllDomains) {
    for (uint32_t N : {2u, 6u}) {
      AbstractDataset Initial =
          AbstractDataset::entire(Bench.Split.Train, N);
      AbstractLearnerResult Serial =
          runAbstractDTrace(Ctx, Initial, X, learnerConfig(Domain, 1, 1));
      for (unsigned Jobs : kSplitJobsValues) {
        AbstractLearnerResult Sharded = runAbstractDTrace(
            Ctx, Initial, X, learnerConfig(Domain, 1, Jobs));
        expectIdenticalRuns(Serial, Sharded,
                            std::string(domainKindName(Domain)) + ", n=" +
                                std::to_string(N) + ", SplitJobs=" +
                                std::to_string(Jobs));
      }
    }
  }
}

TEST(BestSplitShardTest, FrontierAndSplitJobsComposeBitIdentically) {
  // Both in-query fan-out levels on at once, vs serial, in the disjunctive
  // domains where the frontier actually widens. Iris (4 real features)
  // rather than Figure 2 (1 feature): the split fan-out only engages on
  // multi-feature datasets.
  BenchmarkDataset Bench = loadBenchmarkDataset("iris", BenchScale::Scaled);
  SplitContext Ctx(Bench.Split.Train);
  const float *X = Bench.Split.Test.row(0);
  for (AbstractDomainKind Domain :
       {AbstractDomainKind::Disjuncts, AbstractDomainKind::DisjunctsCapped}) {
    AbstractDataset Initial = AbstractDataset::entire(Bench.Split.Train, 4);
    AbstractLearnerResult Serial =
        runAbstractDTrace(Ctx, Initial, X, learnerConfig(Domain, 1, 1));
    for (auto [FrontierJobs, SplitJobs] :
         {std::pair<unsigned, unsigned>{4, 2},
          std::pair<unsigned, unsigned>{2, 7},
          std::pair<unsigned, unsigned>{0, 0}}) {
      AbstractLearnerResult Both = runAbstractDTrace(
          Ctx, Initial, X, learnerConfig(Domain, FrontierJobs, SplitJobs));
      expectIdenticalRuns(Serial, Both,
                          std::string(domainKindName(Domain)) +
                              ", FrontierJobs=" +
                              std::to_string(FrontierJobs) + ", SplitJobs=" +
                              std::to_string(SplitJobs));
    }
  }
}

TEST(BestSplitShardTest, NestedFanoutOnUndersizedSharedPoolNeverDeadlocks) {
  // The regression this PR's ThreadPool change exists for: FrontierJobs x
  // SplitJobs = 16 executors' worth of fan-out nested on a shared pool
  // with ONE worker. Every transfer step running on that worker (or the
  // merge thread) opens an inner split fan-out whose helper tasks queue
  // behind the outer tasks; teardown must not wait for queued-but-
  // unstarted helpers, or this test hangs.
  BenchmarkDataset Bench = loadBenchmarkDataset("iris", BenchScale::Scaled);
  SplitContext Ctx(Bench.Split.Train);
  const float *X = Bench.Split.Test.row(0);
  AbstractDataset Initial = AbstractDataset::entire(Bench.Split.Train, 4);
  AbstractLearnerResult Serial = runAbstractDTrace(
      Ctx, Initial, X, learnerConfig(AbstractDomainKind::Disjuncts, 1, 1));

  for (unsigned PoolWorkers : {1u, 2u}) {
    ThreadPool Shared(PoolWorkers);
    AbstractLearnerConfig Config =
        learnerConfig(AbstractDomainKind::Disjuncts, 4, 4);
    Config.FrontierPool = &Shared;
    expectIdenticalRuns(Serial,
                        runAbstractDTrace(Ctx, Initial, X, Config),
                        "shared pool of " + std::to_string(PoolWorkers));
  }
}

TEST(BestSplitShardTest, SweepAggregatesIdenticalWithAllThreeAxes) {
  // Instance, frontier, and split fan-out all on at once through the §6.1
  // protocol must reproduce the serial sweep bit-for-bit.
  BenchmarkDataset Bench = loadBenchmarkDataset("iris", BenchScale::Scaled);
  SweepConfig Serial;
  Serial.Depths = {1, 2};
  Serial.MaxPoisoning = 64;
  Serial.InstanceLimits.TimeoutSeconds = 0.0;
  Serial.InstanceLimits.MaxDisjuncts = 1u << 14;
  Serial.InstanceLimits.MaxStateBytes = 1ull << 28;
  SweepResult Baseline = runPoisoningSweep(
      Bench.Split.Train, Bench.Split.Test, Bench.VerifyRows, Serial);

  SweepConfig Parallel = Serial;
  Parallel.Jobs = 2;
  Parallel.FrontierJobs = 2;
  Parallel.SplitJobs = 2;
  SweepResult Result = runPoisoningSweep(Bench.Split.Train, Bench.Split.Test,
                                         Bench.VerifyRows, Parallel);
  ASSERT_EQ(Result.Series.size(), Baseline.Series.size());
  for (size_t S = 0; S < Result.Series.size(); ++S) {
    const SweepSeries &A = Baseline.Series[S];
    const SweepSeries &B = Result.Series[S];
    EXPECT_EQ(A.MaxVerifiedN, B.MaxVerifiedN);
    ASSERT_EQ(A.Cells.size(), B.Cells.size());
    for (size_t C = 0; C < A.Cells.size(); ++C) {
      EXPECT_EQ(A.Cells[C].Poisoning, B.Cells[C].Poisoning);
      EXPECT_EQ(A.Cells[C].Attempted, B.Cells[C].Attempted);
      EXPECT_EQ(A.Cells[C].Verified, B.Cells[C].Verified);
      EXPECT_EQ(A.Cells[C].ResourceFailures, B.Cells[C].ResourceFailures);
    }
  }
}

//===----------------------------------------------------------------------===//
// Meter interruption: truncation is unrepresentable
//===----------------------------------------------------------------------===//

TEST(BestSplitShardTest, InterruptedBestSplitReturnsNulloptForEverySplitJobs) {
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  AbstractDataset A = AbstractDataset::entire(Data, 2);

  CancellationToken Token;
  Token.cancel();
  ResourceLimits Limits;
  Limits.TimeoutSeconds = 0.0;
  ResourceMeter Meter(Limits, &Token);

  EXPECT_EQ(abstractBestSplit(Ctx, A, CprobTransformerKind::Optimal,
                              GiniLiftingKind::ExactTerm, &Meter),
            std::nullopt);
  for (unsigned Jobs : kSplitJobsValues) {
    std::unique_ptr<ThreadPool> Pool = makeVerificationPool(Jobs);
    EXPECT_EQ(abstractBestSplit(Ctx, A, CprobTransformerKind::Optimal,
                                GiniLiftingKind::ExactTerm, &Meter,
                                Pool.get(), Jobs),
              std::nullopt)
        << "SplitJobs=" << Jobs;
  }
}

TEST(BestSplitShardTest, InterruptedBestSplitIsNeverConsumedByTheLearner) {
  // A token cancelled before the run starts trips the first bestSplit#
  // poll; the learner must surface Cancelled with no terminals — the
  // nullopt result cannot silently become an (unsound) empty Ψ that
  // completes a verdict.
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  float X = 5.0f;
  CancellationToken Token;
  Token.cancel();
  for (AbstractDomainKind Domain : kAllDomains) {
    for (unsigned Jobs : {1u, 2u, 7u}) {
      AbstractLearnerConfig Config = learnerConfig(Domain, 1, Jobs);
      Config.Cancel = &Token;
      AbstractLearnerResult Result = runAbstractDTrace(
          Ctx, AbstractDataset::entire(Data, 4), &X, Config);
      std::string Label = std::string(domainKindName(Domain)) +
                          ", SplitJobs=" + std::to_string(Jobs);
      EXPECT_EQ(Result.Status, LearnerStatus::Cancelled) << Label;
      EXPECT_TRUE(Result.Terminals.empty()) << Label;
      EXPECT_FALSE(Result.DominatingClass.has_value()) << Label;
    }
  }
}

//===----------------------------------------------------------------------===//
// Regression: checked CLI numeric parsing (support/Parse.h)
//===----------------------------------------------------------------------===//

TEST(CheckedParseTest, RejectsGarbageIntegers) {
  EXPECT_EQ(parseUnsignedArg("foo"), std::nullopt);
  EXPECT_EQ(parseUnsignedArg(""), std::nullopt);
  EXPECT_EQ(parseUnsignedArg("12x"), std::nullopt);   // atoi: 12
  EXPECT_EQ(parseUnsignedArg("-3"), std::nullopt);    // unsigned cast: wraps
  EXPECT_EQ(parseUnsignedArg(" 5"), std::nullopt);    // atoi: 5
  EXPECT_EQ(parseUnsignedArg("5 "), std::nullopt);
  EXPECT_EQ(parseUnsignedArg("+5"), std::nullopt);
  EXPECT_EQ(parseUnsignedArg("0x10"), std::nullopt);
}

TEST(CheckedParseTest, RejectsOutOfRangeIntegers) {
  EXPECT_EQ(parseUnsignedArg("4294967296", UINT32_MAX), std::nullopt);
  EXPECT_EQ(parseUnsignedArg("99999999999999999999"), std::nullopt);
  EXPECT_EQ(parseUnsignedArg("4294967295", UINT32_MAX), 4294967295ull);
}

TEST(CheckedParseTest, AcceptsPlainUnsignedIntegers) {
  EXPECT_EQ(parseUnsignedArg("0"), 0ull);
  EXPECT_EQ(parseUnsignedArg("16"), 16ull);
  EXPECT_EQ(parseUnsignedArg("007"), 7ull);
}

TEST(CheckedParseTest, DoubleParsingIsCheckedEndToEnd) {
  EXPECT_EQ(parseDoubleArg("abc"), std::nullopt);
  EXPECT_EQ(parseDoubleArg(""), std::nullopt);
  EXPECT_EQ(parseDoubleArg("1.5s"), std::nullopt); // atof: 1.5
  EXPECT_EQ(parseDoubleArg(" 2.0"), std::nullopt);
  EXPECT_EQ(parseDoubleArg("1e999"), std::nullopt); // overflows to inf
  EXPECT_EQ(parseDoubleArg("nan"), std::nullopt);
  EXPECT_EQ(parseDoubleArg("inf"), std::nullopt);
  ASSERT_TRUE(parseDoubleArg("2.5").has_value());
  EXPECT_DOUBLE_EQ(*parseDoubleArg("2.5"), 2.5);
  ASSERT_TRUE(parseDoubleArg("-1.25").has_value());
  EXPECT_DOUBLE_EQ(*parseDoubleArg("-1.25"), -1.25);
  EXPECT_DOUBLE_EQ(*parseDoubleArg("0"), 0.0);
}

//===----------------------------------------------------------------------===//
// Regression: CRLF / blank-line / ragged-row CSV handling (data/Csv.cpp)
//===----------------------------------------------------------------------===//

TEST(CsvLineEndingTest, CrlfParsesIdenticalToLf) {
  const std::string Lf = "1.5,2.5,0\n3.5,4.5,1\n";
  const std::string Crlf = "1.5,2.5,0\r\n3.5,4.5,1\r\n";
  CsvLoadResult A = parseCsvDataset(Lf);
  CsvLoadResult B = parseCsvDataset(Crlf);
  ASSERT_TRUE(A.succeeded()) << A.Error;
  ASSERT_TRUE(B.succeeded()) << B.Error;
  ASSERT_EQ(A.Data->numRows(), B.Data->numRows());
  ASSERT_EQ(A.Data->numFeatures(), B.Data->numFeatures());
  for (unsigned Row = 0; Row < A.Data->numRows(); ++Row) {
    EXPECT_EQ(A.Data->label(Row), B.Data->label(Row)) << "row " << Row;
    for (unsigned F = 0; F < A.Data->numFeatures(); ++F)
      EXPECT_EQ(A.Data->value(Row, F), B.Data->value(Row, F))
          << "row " << Row << ", feature " << F;
  }
}

TEST(CsvLineEndingTest, CrlfDoesNotChangeBooleanInference) {
  // A '\r' riding along on the last cell must not turn a {0,1} column
  // real (the last column is the label; the second feature is all-{0,1}).
  CsvLoadResult R = parseCsvDataset("0.5,1,0\r\n2.5,0,1\r\n");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  EXPECT_EQ(R.Data->schema().FeatureKinds[0], FeatureKind::Real);
  EXPECT_EQ(R.Data->schema().FeatureKinds[1], FeatureKind::Boolean);
}

TEST(CsvLineEndingTest, TrailingBlankLinesCreateNoPhantomRows) {
  for (const std::string &Text :
       {std::string("1,2,0\n3,4,1\n\n"), std::string("1,2,0\n3,4,1\n\n\n"),
        std::string("1,2,0\r\n3,4,1\r\n\r\n"),
        std::string("1,2,0\n3,4,1\n   \n\t\n")}) {
    CsvLoadResult R = parseCsvDataset(Text);
    ASSERT_TRUE(R.succeeded()) << R.Error;
    EXPECT_EQ(R.Data->numRows(), 2u) << "text: " << Text;
  }
}

TEST(CsvLineEndingTest, StrayInteriorCarriageReturnIsAnError) {
  // Previously a mid-line '\r' silently truncated the row at that point.
  CsvLoadResult R = parseCsvDataset("1.0\r2.0,3.0,0\n");
  EXPECT_FALSE(R.succeeded());
  EXPECT_NE(R.Error.find("carriage return"), std::string::npos) << R.Error;
}

TEST(CsvLineEndingTest, RaggedRowsAreAnErrorNotATruncation) {
  CsvLoadResult Short = parseCsvDataset("1,2,3,0\n1,2,0\n");
  EXPECT_FALSE(Short.succeeded());
  EXPECT_NE(Short.Error.find("expected 3 features"), std::string::npos)
      << Short.Error;

  CsvLoadResult Trailing = parseCsvDataset("1,2,0\n3,4,\n");
  EXPECT_FALSE(Trailing.succeeded());
  EXPECT_NE(Trailing.Error.find("trailing comma"), std::string::npos)
      << Trailing.Error;
}
