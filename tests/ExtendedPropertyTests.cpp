//===- tests/ExtendedPropertyTests.cpp - Wider configuration coverage ----------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// Soundness and lattice-law property tests across the *whole*
// configuration space (both cprob# transformers × both ent# liftings ×
// all three domains), beyond the default-configuration coverage in
// AbstractDTraceTests.cpp.
//
//===----------------------------------------------------------------------===//

#include "abstract/AbstractDTrace.h"

#include "TestUtil.h"
#include "antidote/Enumeration.h"
#include "antidote/Verifier.h"

#include <gtest/gtest.h>

using namespace antidote;
using namespace antidote::testutil;

//===----------------------------------------------------------------------===//
// Lattice laws of the ⟨T,n⟩ domain
//===----------------------------------------------------------------------===//

namespace {

AbstractDataset randomElement(Rng &R, const Dataset &Data) {
  RowIndexList Rows;
  for (uint32_t I = 0; I < Data.numRows(); ++I)
    if (R.bernoulli(0.6))
      Rows.push_back(I);
  if (Rows.empty())
    Rows.push_back(static_cast<uint32_t>(R.uniformInt(Data.numRows())));
  uint32_t Budget = static_cast<uint32_t>(R.uniformInt(Rows.size() + 1));
  return AbstractDataset(Data, std::move(Rows), Budget);
}

} // namespace

TEST(LatticeLawTest, JoinAssociativeCommutativeIdempotent) {
  Rng R(42424);
  RandomDatasetSpec Spec;
  Spec.MaxRows = 10;
  for (int Trial = 0; Trial < 60; ++Trial) {
    Dataset Data = makeRandomDataset(R, Spec);
    AbstractDataset A = randomElement(R, Data);
    AbstractDataset B = randomElement(R, Data);
    AbstractDataset C = randomElement(R, Data);
    EXPECT_EQ(AbstractDataset::join(A, B), AbstractDataset::join(B, A));
    EXPECT_EQ(AbstractDataset::join(A, A), A);
    // Associativity of the *row sets* always holds; the budgets of the two
    // association orders may differ (the join is not exact), but both must
    // upper-bound all three operands.
    AbstractDataset L =
        AbstractDataset::join(AbstractDataset::join(A, B), C);
    AbstractDataset Rj =
        AbstractDataset::join(A, AbstractDataset::join(B, C));
    EXPECT_EQ(L.rows(), Rj.rows());
    for (const AbstractDataset *Op : {&A, &B, &C}) {
      EXPECT_TRUE(Op->leq(L));
      EXPECT_TRUE(Op->leq(Rj));
    }
  }
}

TEST(LatticeLawTest, OrderIsReflexiveAndTransitiveOnSamples) {
  Rng R(52525);
  RandomDatasetSpec Spec;
  Spec.MaxRows = 9;
  for (int Trial = 0; Trial < 60; ++Trial) {
    Dataset Data = makeRandomDataset(R, Spec);
    AbstractDataset A = randomElement(R, Data);
    EXPECT_TRUE(A.leq(A));
    AbstractDataset B = AbstractDataset::join(A, randomElement(R, Data));
    AbstractDataset C = AbstractDataset::join(B, randomElement(R, Data));
    EXPECT_TRUE(A.leq(B));
    EXPECT_TRUE(B.leq(C));
    EXPECT_TRUE(A.leq(C)); // Transitivity along the constructed chain.
  }
}

TEST(LatticeLawTest, MeetIsGreatestLowerBoundOnSamples) {
  Rng R(62626);
  RandomDatasetSpec Spec;
  Spec.MaxRows = 8;
  for (int Trial = 0; Trial < 60; ++Trial) {
    Dataset Data = makeRandomDataset(R, Spec);
    AbstractDataset A = randomElement(R, Data);
    AbstractDataset B = randomElement(R, Data);
    std::optional<AbstractDataset> M = AbstractDataset::meet(A, B);
    if (!M)
      continue;
    EXPECT_TRUE(M->leq(A));
    EXPECT_TRUE(M->leq(B));
  }
}

//===----------------------------------------------------------------------===//
// Soundness across the full transformer configuration space
//===----------------------------------------------------------------------===//

namespace {

struct ConfigCase {
  CprobTransformerKind Cprob;
  GiniLiftingKind Gini;
  AbstractDomainKind Domain;
};

class ConfigSoundnessTest : public ::testing::TestWithParam<ConfigCase> {};

std::string configCaseName(const ::testing::TestParamInfo<ConfigCase> &I) {
  std::string Name;
  Name += I.param.Cprob == CprobTransformerKind::Optimal ? "Optimal"
                                                         : "Naive";
  Name += I.param.Gini == GiniLiftingKind::ExactTerm ? "Exact" : "Natural";
  std::string Domain = domainKindName(I.param.Domain);
  for (char &C : Domain)
    if (C == '-')
      C = '_';
  return Name + "_" + Domain;
}

} // namespace

TEST_P(ConfigSoundnessTest, TerminalsCoverConcreteRunsAndOracleAgrees) {
  Rng R(979797);
  RandomDatasetSpec Spec;
  Spec.MaxRows = 8;
  Spec.NumFeatures = 2;
  Spec.DistinctValues = 4;
  unsigned Proven = 0;
  for (int Trial = 0; Trial < 20; ++Trial) {
    Spec.BooleanFeatures = R.bernoulli(0.3);
    Dataset Data = makeRandomDataset(R, Spec);
    SplitContext Ctx(Data);
    RowIndexList Rows = allRows(Data);
    uint32_t Budget = static_cast<uint32_t>(R.uniformInt(3));
    unsigned Depth = 1 + static_cast<unsigned>(R.uniformInt(2));
    std::vector<float> X = makeRandomQuery(R, Spec);

    AbstractLearnerConfig Config;
    Config.Depth = Depth;
    Config.Domain = GetParam().Domain;
    Config.Cprob = GetParam().Cprob;
    Config.Gini = GetParam().Gini;
    Config.DisjunctCap = 3; // Stress the capped merge when active.
    Config.StopOnRefutation = false;
    AbstractLearnerResult Abstract = runAbstractDTrace(
        Ctx, AbstractDataset(Data, Rows, Budget), X.data(), Config);
    ASSERT_EQ(Abstract.Status, LearnerStatus::Completed);

    forEachPerturbedSubset(Rows, Budget, [&](const RowIndexList &Subset) {
      TraceResult Concrete = runDTrace(Ctx, Subset, X.data(), Depth);
      bool Covered = false;
      for (const AbstractDataset &Terminal : Abstract.Terminals)
        if (Terminal.concretizationContains(Concrete.FinalRows)) {
          Covered = true;
          break;
        }
      EXPECT_TRUE(Covered) << "uncovered concrete final state";
    });

    if (Abstract.DominatingClass) {
      ++Proven;
      EnumerationResult Oracle =
          verifyByEnumeration(Ctx, Rows, X.data(), Budget, Depth);
      EXPECT_TRUE(Oracle.Robust) << "unsound proof";
    }
  }
  EXPECT_GT(Proven, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ConfigSoundnessTest,
    ::testing::Values(
        ConfigCase{CprobTransformerKind::Optimal,
                   GiniLiftingKind::ExactTerm, AbstractDomainKind::Box},
        ConfigCase{CprobTransformerKind::NaiveInterval,
                   GiniLiftingKind::ExactTerm,
                   AbstractDomainKind::Disjuncts},
        ConfigCase{CprobTransformerKind::Optimal,
                   GiniLiftingKind::NaturalLifting,
                   AbstractDomainKind::Disjuncts},
        ConfigCase{CprobTransformerKind::NaiveInterval,
                   GiniLiftingKind::NaturalLifting,
                   AbstractDomainKind::Box},
        ConfigCase{CprobTransformerKind::Optimal,
                   GiniLiftingKind::ExactTerm,
                   AbstractDomainKind::DisjunctsCapped}),
    configCaseName);

//===----------------------------------------------------------------------===//
// Relative precision across configurations
//===----------------------------------------------------------------------===//

TEST(ConfigPrecisionTest, ExactTermGiniProvesAtLeastAsMuch) {
  Rng R(171717);
  RandomDatasetSpec Spec;
  Spec.MaxRows = 10;
  unsigned ExactProven = 0, NaturalProven = 0;
  for (int Trial = 0; Trial < 30; ++Trial) {
    Dataset Data = makeRandomDataset(R, Spec);
    Verifier V(Data);
    std::vector<float> X = makeRandomQuery(R, Spec);
    VerifierConfig Exact;
    Exact.Depth = 2;
    Exact.Domain = AbstractDomainKind::Disjuncts;
    VerifierConfig Natural = Exact;
    Natural.Gini = GiniLiftingKind::NaturalLifting;
    for (uint32_t N : {1u, 2u}) {
      bool E = V.verify(X.data(), N, Exact).isRobust();
      bool L = V.verify(X.data(), N, Natural).isRobust();
      ExactProven += E;
      NaturalProven += L;
      if (L) {
        // The exact term range is contained in the natural lifting's, so
        // score intervals shrink, bestSplit# sets shrink, and everything
        // the loose config proves the tight one must prove too.
        EXPECT_TRUE(E) << "natural lifting proved what exact-term lost";
      }
    }
  }
  EXPECT_GE(ExactProven, NaturalProven);
  EXPECT_GT(ExactProven, 0u);
}

TEST(ConfigPrecisionTest, CappedDomainBetweenBoxAndDisjunctsEmpirically) {
  // Not a theorem, but the §6.3 motivation: the capped domain should land
  // between Box and full Disjuncts in proving power on aggregate.
  Rng R(272727);
  RandomDatasetSpec Spec;
  Spec.MaxRows = 12;
  unsigned BoxProven = 0, CappedProven = 0, FullProven = 0;
  for (int Trial = 0; Trial < 40; ++Trial) {
    Dataset Data = makeRandomDataset(R, Spec);
    Verifier V(Data);
    std::vector<float> X = makeRandomQuery(R, Spec);
    VerifierConfig Config;
    Config.Depth = 2;
    for (uint32_t N : {1u, 2u}) {
      Config.Domain = AbstractDomainKind::Box;
      BoxProven += V.verify(X.data(), N, Config).isRobust();
      Config.Domain = AbstractDomainKind::DisjunctsCapped;
      Config.DisjunctCap = 4;
      CappedProven += V.verify(X.data(), N, Config).isRobust();
      Config.Domain = AbstractDomainKind::Disjuncts;
      FullProven += V.verify(X.data(), N, Config).isRobust();
    }
  }
  EXPECT_LE(BoxProven, CappedProven);
  EXPECT_LE(CappedProven, FullProven);
}

//===----------------------------------------------------------------------===//
// Determinism end to end
//===----------------------------------------------------------------------===//

TEST(DeterminismTest, VerifierIsBitStableAcrossRuns) {
  Rng R(313131);
  RandomDatasetSpec Spec;
  Spec.MaxRows = 12;
  Dataset Data = makeRandomDataset(R, Spec);
  Verifier V1(Data), V2(Data);
  VerifierConfig Config;
  Config.Depth = 3;
  Config.Domain = AbstractDomainKind::Disjuncts;
  for (int Query = 0; Query < 10; ++Query) {
    std::vector<float> X = makeRandomQuery(R, Spec);
    for (uint32_t N : {0u, 1u, 2u, 3u}) {
      Certificate A = V1.verify(X.data(), N, Config);
      Certificate B = V2.verify(X.data(), N, Config);
      EXPECT_EQ(A.Kind, B.Kind);
      EXPECT_EQ(A.NumTerminals, B.NumTerminals);
      EXPECT_EQ(A.PeakDisjuncts, B.PeakDisjuncts);
      EXPECT_EQ(A.BestSplitCalls, B.BestSplitCalls);
    }
  }
}
