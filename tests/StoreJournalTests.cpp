//===- tests/StoreJournalTests.cpp - Replication journal tests ----------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// The journal's own promises, separate from what rides on it: serials
// are assigned monotonically and survive reopen; a torn entry tail —
// cut at *every* byte offset — is truncate-repaired and reconciled back
// to the full record list; an unreadable journal is rebuilt wholesale
// under a fresh epoch rather than half-trusted; and the generation
// header lets a sibling handle detect foreign appends with one pread
// and refresh its index in place.
//
//===----------------------------------------------------------------------===//

#include "serving/StoreJournal.h"

#include "TestUtil.h"
#include "serving/DiskCertStore.h"

#include <gtest/gtest.h>

#include <dirent.h>
#include <fstream>
#include <unistd.h>

using namespace antidote;
using namespace antidote::testutil;

namespace {

class TempStoreDir {
public:
  TempStoreDir() {
    char Template[] = "/tmp/antidote-journal-test-XXXXXX";
    const char *Made = mkdtemp(Template);
    EXPECT_NE(Made, nullptr);
    Dir = Made ? Made : "";
  }
  ~TempStoreDir() {
    if (Dir.empty())
      return;
    if (DIR *D = opendir(Dir.c_str())) {
      while (struct dirent *Entry = readdir(D)) {
        std::string Name = Entry->d_name;
        if (Name != "." && Name != "..")
          ::unlink((Dir + "/" + Name).c_str());
      }
      closedir(D);
    }
    ::rmdir(Dir.c_str());
  }

  const std::string &path() const { return Dir; }
  std::string sub(const std::string &Name) const { return Dir + "/" + Name; }

private:
  std::string Dir;
};

VerifierConfig makeConfig() {
  VerifierConfig Config;
  Config.Depth = 2;
  Config.Domain = AbstractDomainKind::Box;
  Config.Limits.TimeoutSeconds = 30.0;
  return Config;
}

std::unique_ptr<DiskCertStore> openOrDie(const std::string &Dir,
                                         const DiskCertStoreOptions &Options =
                                             {}) {
  DiskCertStore::OpenResult Opened = DiskCertStore::open(Dir, Options);
  EXPECT_TRUE(Opened.ok()) << Opened.Error;
  return std::move(Opened.Store);
}

std::vector<uint8_t> readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << Path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(In),
                              std::istreambuf_iterator<char>());
}

void writeFileBytes(const std::string &Path,
                    const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
  ASSERT_TRUE(Out.good()) << Path;
}

/// Verifies \p Queries through \p Dir's store so each leaves one record
/// (distinct points, same budget); returns the seeded certificates.
std::vector<Certificate> seedStore(const std::string &Dir, Verifier &V,
                                   const std::vector<float> &Queries) {
  std::unique_ptr<DiskCertStore> Store = openOrDie(Dir);
  VerifierConfig Config = makeConfig();
  Config.Cache = Store.get();
  std::vector<Certificate> Seeded;
  for (float Q : Queries) {
    const float X[] = {Q};
    Seeded.push_back(V.verify(X, 1, Config));
  }
  return Seeded;
}

} // namespace

//===----------------------------------------------------------------------===//
// The unit itself: serial assignment, persistence, peek/refresh
//===----------------------------------------------------------------------===//

TEST(StoreJournalTest, AppendAssignsMonotonicSerialsAcrossReopen) {
  TempStoreDir Dir;
  std::string Error;
  {
    StoreJournal J;
    ASSERT_TRUE(J.open(Dir.path(), /*Writable=*/true, Error)) << Error;
    EXPECT_TRUE(J.valid());
    EXPECT_EQ(J.epoch(), 1u);
    EXPECT_EQ(J.entryCount(), 0u);
    for (uint32_t I = 0; I < 3; ++I) {
      StoreJournal::Entry E;
      E.Segment = 1;
      E.RecordBytes = 100 + I;
      E.Offset = 8 + 100ull * I;
      E.Checksum = 0xC0FFEE00 + I;
      ASSERT_TRUE(J.append(E));
    }
    EXPECT_EQ(J.entryCount(), 3u);
    // Serials are the 1-based entry index within the epoch.
    EXPECT_EQ(J.entry(1).RecordBytes, 100u);
    EXPECT_EQ(J.entry(3).RecordBytes, 102u);
  }
  // On-disk size is exactly header + entries; a reopen loads them all.
  EXPECT_EQ(readFileBytes(Dir.sub("journal.antj")).size(),
            StoreJournal::HeaderBytes + 3 * StoreJournal::EntryBytes);
  StoreJournal J;
  ASSERT_TRUE(J.open(Dir.path(), /*Writable=*/false, Error)) << Error;
  EXPECT_TRUE(J.valid());
  EXPECT_EQ(J.epoch(), 1u);
  EXPECT_EQ(J.entryCount(), 3u);
  EXPECT_EQ(J.entry(2).Offset, 108u);
  EXPECT_EQ(J.entry(2).Checksum, 0xC0FFEE01u);
}

TEST(StoreJournalTest, PeekHeaderAndRefreshTrackAForeignWriter) {
  TempStoreDir Dir;
  std::string Error;
  StoreJournal Writer;
  ASSERT_TRUE(Writer.open(Dir.path(), /*Writable=*/true, Error)) << Error;
  StoreJournal::Entry E;
  E.Segment = 1;
  E.RecordBytes = 64;
  E.Offset = 8;
  E.Checksum = 1;
  ASSERT_TRUE(Writer.append(E));

  StoreJournal Reader;
  ASSERT_TRUE(Reader.open(Dir.path(), /*Writable=*/false, Error)) << Error;
  ASSERT_EQ(Reader.entryCount(), 1u);

  // No foreign mutation yet: the header matches what the reader holds.
  StoreJournal::Header H = Reader.peekHeader();
  ASSERT_TRUE(H.Ok);
  EXPECT_EQ(H.Epoch, Reader.epoch());
  EXPECT_EQ(H.Generation, Reader.generation());

  // A same-epoch append moves the generation; refresh loads just the
  // new entries and names the first new serial.
  E.Offset = 8 + 64;
  E.Checksum = 2;
  ASSERT_TRUE(Writer.append(E));
  H = Reader.peekHeader();
  ASSERT_TRUE(H.Ok);
  EXPECT_NE(H.Generation, Reader.generation());
  uint64_t FirstNewSerial = 0;
  ASSERT_TRUE(Reader.refresh(FirstNewSerial));
  EXPECT_EQ(FirstNewSerial, 2u);
  EXPECT_EQ(Reader.entryCount(), 2u);
  EXPECT_EQ(Reader.entry(2).Checksum, 2u);

  // An epoch bump (the compaction/retention rewrite) reloads wholesale.
  StoreJournal::Entry Survivor;
  Survivor.Segment = 2;
  Survivor.RecordBytes = 64;
  Survivor.Offset = 8;
  Survivor.Checksum = 9;
  ASSERT_TRUE(Writer.reset(Writer.epoch() + 1, {Survivor}));
  ASSERT_TRUE(Reader.refresh(FirstNewSerial));
  EXPECT_EQ(FirstNewSerial, 1u);
  EXPECT_EQ(Reader.epoch(), Writer.epoch());
  EXPECT_EQ(Reader.entryCount(), 1u);
  EXPECT_EQ(Reader.entry(1).Segment, 2u);
}

//===----------------------------------------------------------------------===//
// Crash consistency through the store: torn tails, unreadable headers
//===----------------------------------------------------------------------===//

TEST(StoreJournalTest, TornJournalTailIsRepairedAtEveryByteOffset) {
  TempStoreDir Dir;
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  std::vector<float> Queries = {1.5f, 9.5f, 12.5f};
  std::vector<Certificate> Seeded = seedStore(Dir.path(), V, Queries);

  std::string JournalPath = Dir.sub("journal.antj");
  std::vector<uint8_t> Full = readFileBytes(JournalPath);
  ASSERT_EQ(Full.size(),
            StoreJournal::HeaderBytes + 3 * StoreJournal::EntryBytes);

  VerifierConfig Config = makeConfig();
  for (size_t Len = 0; Len < Full.size(); ++Len) {
    // The crash: the journal survives only as its first Len bytes.
    writeFileBytes(JournalPath,
                   std::vector<uint8_t>(Full.begin(), Full.begin() + Len));

    // A writable reopen repairs whatever was torn — truncating a
    // partial entry, rebuilding a lost header under a fresh epoch —
    // and reconciles against the index, so every record has a journal
    // line again and every certificate still serves.
    std::unique_ptr<DiskCertStore> Store = openOrDie(Dir.path());
    StoreStats Stats = Store->stats();
    EXPECT_EQ(Stats.JournalRecords, 3u) << "torn at " << Len;
    EXPECT_GE(Stats.Epoch, 1u) << "torn at " << Len;
    EXPECT_EQ(Stats.LiveRecords, 3u) << "torn at " << Len;

    Config.Cache = Store.get();
    for (size_t I = 0; I < Queries.size(); ++I) {
      const float X[] = {Queries[I]};
      Certificate Served = V.verify(X, 1, Config);
      // Verbatim replays of the seeding run, Seconds included — served
      // from disk, not re-verified.
      EXPECT_EQ(Served.Kind, Seeded[I].Kind) << "torn at " << Len;
      EXPECT_EQ(Served.NumTerminals, Seeded[I].NumTerminals);
      EXPECT_EQ(Served.Seconds, Seeded[I].Seconds) << "torn at " << Len;
    }
    EXPECT_EQ(Store->stats().Hits, 3u) << "torn at " << Len;
    Store.reset();

    // The repaired journal must itself be whole for the next iteration's
    // baseline (reopen is idempotent once repaired).
    std::vector<uint8_t> Repaired = readFileBytes(JournalPath);
    EXPECT_EQ(Repaired.size(), Full.size()) << "torn at " << Len;
  }
}

TEST(StoreJournalTest, CorruptHeaderRebuildsJournalWithoutLosingRecords) {
  TempStoreDir Dir;
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  seedStore(Dir.path(), V, {1.5f, 9.5f});

  std::string JournalPath = Dir.sub("journal.antj");
  std::vector<uint8_t> Bytes = readFileBytes(JournalPath);
  Bytes[0] ^= 0xFF; // Wrong magic: the whole file is untrustworthy.
  writeFileBytes(JournalPath, Bytes);

  std::unique_ptr<DiskCertStore> Store = openOrDie(Dir.path());
  StoreStats Stats = Store->stats();
  // Rebuilt wholesale: every indexed record is re-journaled, and the
  // epoch is fresh — replicas resync instead of trusting stale serials.
  EXPECT_EQ(Stats.JournalRecords, 2u);
  EXPECT_GE(Stats.Epoch, 1u);
  VerifierConfig Config = makeConfig();
  Config.Cache = Store.get();
  const float X[] = {9.5f};
  V.verify(X, 1, Config);
  EXPECT_EQ(Store->stats().Hits, 1u);
}

//===----------------------------------------------------------------------===//
// The generation counter's purpose: sibling appends refresh the index
//===----------------------------------------------------------------------===//

TEST(StoreJournalTest, SiblingAppendIsAbsorbedOnLookupMissWithoutReopen) {
  TempStoreDir Dir;
  Dataset Train = figure2Dataset();
  Verifier V(Train);

  // Two writable handles share the directory, as two processes would.
  std::unique_ptr<DiskCertStore> A = openOrDie(Dir.path());
  std::unique_ptr<DiskCertStore> B = openOrDie(Dir.path());

  VerifierConfig Config = makeConfig();
  Config.Cache = A.get();
  const float X[] = {9.5f};
  Certificate Stored = V.verify(X, 1, Config);

  // B opened on an empty store; its first consult misses the in-memory
  // index, notices A's generation bump with one header pread, refreshes,
  // and serves A's record byte-identically — no duplicate verification,
  // no reopen.
  Config.Cache = B.get();
  Certificate Served = V.verify(X, 1, Config);
  EXPECT_EQ(Served.Kind, Stored.Kind);
  EXPECT_EQ(Served.NumTerminals, Stored.NumTerminals);
  EXPECT_EQ(Served.Seconds, Stored.Seconds);
  StoreStats Stats = B->stats();
  EXPECT_EQ(Stats.Hits, 1u);
  EXPECT_EQ(Stats.Stores, 0u);
  EXPECT_GE(Stats.IndexRefreshes, 1u);
}
