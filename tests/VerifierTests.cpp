//===- tests/VerifierTests.cpp - Verifier facade + domination tests -----------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "antidote/Verifier.h"

#include "TestUtil.h"
#include "antidote/Enumeration.h"
#include "abstract/Domination.h"
#include "data/Synthetic.h"

#include <gtest/gtest.h>

using namespace antidote;
using namespace antidote::testutil;

//===----------------------------------------------------------------------===//
// Domination (Corollary 4.12)
//===----------------------------------------------------------------------===//

TEST(DominationTest, ClearDomination) {
  std::vector<Interval> Probs = {Interval(0.7, 0.9), Interval(0.1, 0.3)};
  std::optional<unsigned> Class = dominatingClassOf(Probs);
  ASSERT_TRUE(Class.has_value());
  EXPECT_EQ(*Class, 0u);
}

TEST(DominationTest, OverlapMeansNoDomination) {
  std::vector<Interval> Probs = {Interval(0.4, 0.6), Interval(0.5, 0.7)};
  EXPECT_FALSE(dominatingClassOf(Probs).has_value());
}

TEST(DominationTest, TouchingBoundsDoNotDominate) {
  // Strict inequality: l_i > u_j. Equal bounds could be a tie, which the
  // paper's nondeterministic label choice may resolve either way.
  std::vector<Interval> Probs = {Interval(0.5, 0.6), Interval(0.3, 0.5)};
  EXPECT_FALSE(dominatingClassOf(Probs).has_value());
}

TEST(DominationTest, ThreeClassDomination) {
  std::vector<Interval> Probs = {Interval(0.0, 0.2), Interval(0.5, 0.8),
                                 Interval(0.1, 0.4)};
  std::optional<unsigned> Class = dominatingClassOf(Probs);
  ASSERT_TRUE(Class.has_value());
  EXPECT_EQ(*Class, 1u);
}

TEST(DominationTest, TrackerRequiresAgreementAcrossTerminals) {
  Dataset Data = figure2Dataset();
  DominationTracker Tracker(CprobTransformerKind::Optimal);
  EXPECT_FALSE(Tracker.dominatingClass().has_value()); // No terminals yet.
  // Terminal 1: mostly white.
  Tracker.addTerminal(AbstractDataset(Data, {1, 2, 3, 5}, 0)); // 4 white.
  ASSERT_TRUE(Tracker.dominatingClass().has_value());
  EXPECT_EQ(*Tracker.dominatingClass(), 0u);
  // Terminal 2: all black → disagreement → failure.
  Tracker.addTerminal(AbstractDataset(Data, {9, 10, 11}, 0));
  EXPECT_TRUE(Tracker.failed());
  EXPECT_FALSE(Tracker.dominatingClass().has_value());
}

TEST(DominationTest, TrackerFailsOnUndominatedTerminal) {
  Dataset Data = figure2Dataset();
  DominationTracker Tracker(CprobTransformerKind::Optimal);
  // One white, one black, budget 1: intervals overlap.
  Tracker.addTerminal(AbstractDataset(Data, {1, 4}, 1));
  EXPECT_TRUE(Tracker.failed());
}

//===----------------------------------------------------------------------===//
// Verifier end-to-end on the running example
//===----------------------------------------------------------------------===//

namespace {

class VerifierDomainTest
    : public ::testing::TestWithParam<AbstractDomainKind> {};

} // namespace

TEST_P(VerifierDomainTest, Figure2InputFiveRobustAtZeroBudget) {
  // Every domain proves the trivial ∆0 property on the running example.
  Dataset Data = figure2Dataset();
  Verifier V(Data);
  VerifierConfig Config;
  Config.Depth = 1;
  Config.Domain = GetParam();
  float X = 5.0f;
  Certificate Cert = V.verify(&X, 0, Config);
  EXPECT_EQ(Cert.Kind, VerdictKind::Robust);
  EXPECT_EQ(Cert.ConcretePrediction, 0u);
  ASSERT_TRUE(Cert.DominatingClass.has_value());
  EXPECT_EQ(*Cert.DominatingClass, 0u);
  EXPECT_TRUE(Cert.isRobust());
}

TEST(VerifierTest, Figure2DisjunctsProveOnePoisoning) {
  // The §2 narrative instances, provable with the disjunctive domain at
  // n = 1: 5 stays white and 18 stays black no matter which single
  // training element an attacker contributed.
  Dataset Data = figure2Dataset();
  Verifier V(Data);
  VerifierConfig Config;
  Config.Depth = 1;
  Config.Domain = AbstractDomainKind::Disjuncts;
  float Five = 5.0f, Eighteen = 18.0f;
  Certificate CertFive = V.verify(&Five, 1, Config);
  EXPECT_EQ(CertFive.Kind, VerdictKind::Robust);
  EXPECT_EQ(CertFive.ConcretePrediction, 0u);
  Certificate CertEighteen = V.verify(&Eighteen, 1, Config);
  EXPECT_EQ(CertEighteen.Kind, VerdictKind::Robust);
  EXPECT_EQ(CertEighteen.ConcretePrediction, 1u);
}

TEST(VerifierTest, SoundButIncompleteAtTwoPoisonings) {
  // §2 "Abstraction and Imprecision": the analysis is necessarily
  // incomplete. At n = 2 the symbolic threshold gap (4, 7) keeps a
  // non-dominated branch alive for x = 5 even though exhaustive
  // enumeration shows the instance is robust.
  Dataset Data = figure2Dataset();
  Verifier V(Data);
  SplitContext Ctx(Data);
  VerifierConfig Config;
  Config.Depth = 1;
  Config.Domain = AbstractDomainKind::Disjuncts;
  float X = 5.0f;
  Certificate Cert = V.verify(&X, 2, Config);
  EXPECT_EQ(Cert.Kind, VerdictKind::Unknown);
  EnumerationResult Oracle =
      verifyByEnumeration(Ctx, allRows(Data), &X, 2, 1);
  EXPECT_TRUE(Oracle.Robust);
}

TEST_P(VerifierDomainTest, ExcessiveBudgetIsNotProvable) {
  Dataset Data = figure2Dataset();
  Verifier V(Data);
  VerifierConfig Config;
  Config.Depth = 1;
  Config.Domain = GetParam();
  float X = 5.0f;
  Certificate Cert = V.verify(&X, 13, Config);
  EXPECT_EQ(Cert.Kind, VerdictKind::Unknown);
  EXPECT_FALSE(Cert.isRobust());
}

INSTANTIATE_TEST_SUITE_P(Domains, VerifierDomainTest,
                         ::testing::Values(
                             AbstractDomainKind::Box,
                             AbstractDomainKind::Disjuncts,
                             AbstractDomainKind::DisjunctsCapped),
                         [](const auto &Info) {
                           std::string Name = domainKindName(Info.param);
                           for (char &C : Name)
                             if (C == '-')
                               C = '_';
                           return Name;
                         });

TEST(VerifierTest, PredictMatchesTrace) {
  Dataset Data = figure2Dataset();
  Verifier V(Data);
  float X = 9.0f;
  TraceResult Trace = V.trace(&X, 2);
  EXPECT_EQ(V.predict(&X, 2), Trace.PredictedClass);
}

TEST(VerifierTest, ZeroBudgetAlwaysRobust) {
  // ∆0(T) = {T}: robustness is trivially provable for any input whose
  // final cprob has a unique argmax.
  Dataset Data = figure2Dataset();
  Verifier V(Data);
  VerifierConfig Config;
  // Query points sit on training values (or beyond the range): a query
  // strictly inside a gap between training values evaluates to `maybe` on
  // the gap's symbolic predicate, which loses precision even at n = 0.
  Config.Depth = 2;
  for (float X : {0.0f, 3.0f, 8.0f, 12.0f, 20.0f}) {
    Certificate Cert = V.verify(&X, 0, Config);
    EXPECT_EQ(Cert.Kind, VerdictKind::Robust) << "x = " << X;
  }
}

TEST(VerifierTest, CertificateSummaryMentionsVerdict) {
  Dataset Data = figure2Dataset();
  Verifier V(Data);
  VerifierConfig Config;
  Config.Depth = 1;
  Config.Domain = AbstractDomainKind::Disjuncts;
  float X = 5.0f;
  Certificate Cert = V.verify(&X, 1, Config);
  std::string Summary = Cert.summary();
  EXPECT_NE(Summary.find("robust"), std::string::npos);
  EXPECT_NE(Summary.find("n=1"), std::string::npos);
}

TEST(VerifierTest, TimeoutVerdictSurfaces) {
  TrainTestSplit Split = makeIrisLike();
  Verifier V(Split.Train);
  VerifierConfig Config;
  Config.Depth = 4;
  Config.Domain = AbstractDomainKind::Disjuncts;
  Config.Limits.TimeoutSeconds = 1e-9;
  Certificate Cert = V.verify(Split.Test.row(0), 8, Config);
  EXPECT_EQ(Cert.Kind, VerdictKind::Timeout);
}

TEST(VerifierTest, ResourceLimitVerdictSurfaces) {
  TrainTestSplit Split = makeIrisLike();
  Verifier V(Split.Train);
  VerifierConfig Config;
  Config.Depth = 4;
  Config.Domain = AbstractDomainKind::Disjuncts;
  Config.Limits.MaxDisjuncts = 1;
  Certificate Cert = V.verify(Split.Test.row(1), 16, Config);
  EXPECT_EQ(Cert.Kind, VerdictKind::ResourceLimit);
}

TEST(VerifierTest, IrisDepthOneFootnote10Quirk) {
  // Footnote 10: the depth-1 Iris tree has an exact 50/50 leaf, so nothing
  // reaching that leaf is provable even at n = 1; at depth 2 the extra
  // split restores provability for a decent fraction.
  TrainTestSplit Split = makeIrisLike();
  Verifier V(Split.Train);
  VerifierConfig Depth1;
  Depth1.Depth = 1;
  Depth1.Domain = AbstractDomainKind::Disjuncts;
  VerifierConfig Depth2 = Depth1;
  Depth2.Depth = 2;
  unsigned Robust1 = 0, Robust2 = 0;
  for (unsigned Row = 0; Row < Split.Test.numRows(); ++Row) {
    Robust1 += V.verify(Split.Test.row(Row), 1, Depth1).isRobust();
    Robust2 += V.verify(Split.Test.row(Row), 1, Depth2).isRobust();
  }
  EXPECT_LT(Robust1, Split.Test.numRows() / 2);
  EXPECT_GT(Robust2, Robust1);
}

TEST(VerifierTest, VerdictsAcrossCprobTransformers) {
  // The optimal transformer proves everything the naive one proves.
  Rng R(1234);
  RandomDatasetSpec Spec;
  Spec.MaxRows = 10;
  for (int Trial = 0; Trial < 20; ++Trial) {
    Dataset Data = makeRandomDataset(R, Spec);
    Verifier V(Data);
    std::vector<float> X = makeRandomQuery(R, Spec);
    VerifierConfig Naive;
    Naive.Depth = 2;
    Naive.Cprob = CprobTransformerKind::NaiveInterval;
    VerifierConfig Optimal = Naive;
    Optimal.Cprob = CprobTransformerKind::Optimal;
    for (uint32_t N : {1u, 2u}) {
      bool NaiveRobust = V.verify(X.data(), N, Naive).isRobust();
      bool OptimalRobust = V.verify(X.data(), N, Optimal).isRobust();
      if (NaiveRobust) {
        EXPECT_TRUE(OptimalRobust);
      }
    }
  }
}
