//===- tests/CertServerTests.cpp - Warm certificate server tests --------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// The serving loop end to end: queued requests come back correct and in
// submission correspondence, repeated traffic hits the cache, mixed
// poisoning budgets batch correctly, shutdown drains, and many client
// threads can hammer one server (the TSan CI job runs this suite).
//
//===----------------------------------------------------------------------===//

#include "serving/CertServer.h"

#include "serving/CertCache.h"

#include "NetHarness.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

using namespace antidote;
using namespace antidote::testutil;

namespace {

CertServerConfig smallConfig() {
  CertServerConfig Config;
  Config.Query.Depth = 2;
  Config.Query.Domain = AbstractDomainKind::Disjuncts;
  Config.Query.Limits.TimeoutSeconds = 30.0;
  Config.Jobs = 2;
  return Config;
}

std::vector<float> point(float X) { return std::vector<float>{X}; }

} // namespace

TEST(CertServerTest, ServedCertificatesMatchDirectVerification) {
  Dataset Train = figure2Dataset();
  CertServer Server(Train, smallConfig());

  std::vector<float> Queries = {0.5f, 2.5f, 9.5f, 12.5f, 13.5f};
  std::vector<std::future<Certificate>> Futures;
  for (float Q : Queries)
    Futures.push_back(Server.submit(point(Q), /*PoisoningBudget=*/2));

  VerifierConfig Direct = smallConfig().Query;
  for (size_t I = 0; I < Queries.size(); ++I) {
    Certificate Served = Futures[I].get();
    const float X[] = {Queries[I]};
    Certificate Expected = Server.verifier().verify(X, 2, Direct);
    EXPECT_EQ(Served.Kind, Expected.Kind) << "query " << I;
    EXPECT_EQ(Served.ConcretePrediction, Expected.ConcretePrediction);
    EXPECT_EQ(Served.DominatingClass, Expected.DominatingClass);
    EXPECT_EQ(Served.NumTerminals, Expected.NumTerminals);
    EXPECT_EQ(Served.PeakDisjuncts, Expected.PeakDisjuncts);
    EXPECT_EQ(Served.PoisoningBudget, 2u);
  }
}

TEST(CertServerTest, RepeatedQueriesHitTheCache) {
  Dataset Train = figure2Dataset();
  // The store is composed at wiring time now — the server itself is
  // store-agnostic, so the test owns the cache it asserts against.
  CertCache Cache(/*MaxBytes=*/0);
  CertServerConfig Config = smallConfig();
  Config.Store = &Cache;
  CertServer Server(Train, Config);

  // Seed, then drain so the repeats arrive after the entry is stored.
  Certificate Cold = Server.submit(point(9.5f), 2).get();
  ASSERT_EQ(Cache.stats().Misses, 1u);

  std::vector<std::future<Certificate>> Repeats;
  for (int I = 0; I < 8; ++I)
    Repeats.push_back(Server.submit(point(9.5f), 2));
  for (auto &F : Repeats) {
    Certificate Warm = F.get();
    // Verbatim replay of the seeding certificate, Seconds included.
    EXPECT_EQ(Warm.Kind, Cold.Kind);
    EXPECT_EQ(Warm.NumTerminals, Cold.NumTerminals);
    EXPECT_EQ(Warm.PeakDisjuncts, Cold.PeakDisjuncts);
    EXPECT_EQ(Warm.Seconds, Cold.Seconds);
  }
  StoreStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Hits, 8u);
  EXPECT_EQ(Stats.Misses, 1u);
  EXPECT_EQ(Stats.LiveRecords, 1u);
}

TEST(CertServerTest, MixedPoisoningBudgetsAreGroupedCorrectly) {
  Dataset Train = figure2Dataset();
  CertServer Server(Train, smallConfig());

  // Interleaved budgets in one flood; each answer must carry its own n.
  std::vector<std::future<Certificate>> Futures;
  std::vector<uint32_t> Budgets;
  for (int I = 0; I < 12; ++I) {
    uint32_t N = 1 + (I % 3);
    Budgets.push_back(N);
    Futures.push_back(Server.submit(point(9.5f), N));
  }
  for (size_t I = 0; I < Futures.size(); ++I) {
    Certificate Cert = Futures[I].get();
    EXPECT_EQ(Cert.PoisoningBudget, Budgets[I]);
    const float X[] = {9.5f};
    Certificate Expected =
        Server.verifier().verify(X, Budgets[I], smallConfig().Query);
    // The verdict must match a fresh verification even when the range
    // index served this budget from a proof at a different radius — in
    // that case the work counters (NumTerminals, ...) describe the
    // stored proof, so what is pinned here is the verdict plus the
    // radius lattice rule, not counter equality.
    EXPECT_EQ(Cert.Kind, Expected.Kind);
    if (Cert.Kind == VerdictKind::Robust) {
      EXPECT_GE(Cert.CertifiedRadius, Budgets[I]);
    } else if (Cert.Kind == VerdictKind::Unknown) {
      EXPECT_LE(Cert.CertifiedRadius, Budgets[I]);
    }
  }
}

TEST(CertServerTest, StorelessServerStillServes) {
  // smallConfig() wires no store at all (Store stays null) — every
  // query verifies fresh and nothing crashes reaching for a tier.
  Dataset Train = figure2Dataset();
  CertServer Server(Train, smallConfig());
  EXPECT_EQ(Server.store(), nullptr);
  Certificate A = Server.submit(point(9.5f), 2).get();
  Certificate B = Server.submit(point(9.5f), 2).get();
  EXPECT_EQ(A.Kind, B.Kind);
}

TEST(CertServerTest, DrainWaitsForAllSubmitted) {
  Dataset Train = figure2Dataset();
  CertServer Server(Train, smallConfig());
  std::vector<std::future<Certificate>> Futures;
  for (int I = 0; I < 16; ++I)
    Futures.push_back(Server.submit(point(0.5f + I), 1));
  Server.drain();
  EXPECT_EQ(Server.pendingRequests(), 0u);
  for (auto &F : Futures) {
    ASSERT_EQ(F.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    F.get();
  }
}

TEST(CertServerTest, SubmitAfterStopIsRefusedAsCancelled) {
  Dataset Train = figure2Dataset();
  CertServer Server(Train, smallConfig());
  Server.submit(point(9.5f), 2).get();
  Server.stop();
  Certificate Refused = Server.submit(point(9.5f), 2).get();
  EXPECT_EQ(Refused.Kind, VerdictKind::Cancelled);
  // stop() is idempotent (the destructor will call it again).
  Server.stop();
}

TEST(CertServerTest, UnboundedMaxBatchStillMakesProgress) {
  // MaxBatch 0 = unbounded (the codebase's "0 disables the cap"
  // convention) — one dispatch takes the whole backlog; it must never
  // degenerate into an empty-batch spin that starves the futures.
  Dataset Train = figure2Dataset();
  CertServerConfig Config = smallConfig();
  Config.MaxBatch = 0;
  CertServer Server(Train, Config);
  std::vector<std::future<Certificate>> Futures;
  for (int I = 0; I < 8; ++I)
    Futures.push_back(Server.submit(point(0.5f + I), 1));
  for (auto &F : Futures)
    F.get();
  // Promises resolve inside the dispatch, before the dispatcher books
  // the batch as finished — drain for the bookkeeping to settle.
  Server.drain();
  EXPECT_EQ(Server.pendingRequests(), 0u);
}

TEST(CertServerTest, AbortResolvesEveryFutureWithoutFullVerification) {
  Dataset Train = figure2Dataset();
  CertServer Server(Train, smallConfig());
  // Flood, then abort immediately: every future must still resolve —
  // queries the abort caught in time as Cancelled, earlier ones with
  // their real verdict — and none may be dropped.
  std::vector<std::future<Certificate>> Futures;
  for (int I = 0; I < 64; ++I)
    Futures.push_back(Server.submit(point(9.5f + (I % 7)), 4));
  Server.abort();
  size_t Cancelled = 0;
  for (auto &F : Futures) {
    Certificate Cert = F.get();
    Cancelled += Cert.Kind == VerdictKind::Cancelled;
  }
  EXPECT_LE(Cancelled, Futures.size());
  // Aborted is stopped: later submissions are refused as Cancelled.
  EXPECT_EQ(Server.submit(point(9.5f), 4).get().Kind,
            VerdictKind::Cancelled);
}

TEST(CertServerTest, ManyClientThreadsOneServer) {
  Dataset Train = figure2Dataset();
  CertCache Cache(/*MaxBytes=*/0);
  CertServerConfig Config = smallConfig();
  Config.MaxBatch = 4; // Several dispatch rounds, not one mega-batch.
  Config.Store = &Cache;
  CertServer Server(Train, Config);

  // 4 client threads x 12 queries over 6 distinct points: submissions,
  // batch workers, and cache accesses all interleave. Every future must
  // resolve to the right verdict for its point.
  constexpr int NumClients = 4, PerClient = 12;
  std::vector<std::thread> Clients;
  std::vector<std::vector<Certificate>> Results(NumClients);
  for (int C = 0; C < NumClients; ++C)
    Clients.emplace_back([&, C] {
      std::vector<std::future<Certificate>> Futures;
      for (int I = 0; I < PerClient; ++I) {
        float X = 0.5f + 2 * ((C + I) % 6);
        Futures.push_back(Server.submit(point(X), 2));
      }
      for (auto &F : Futures)
        Results[C].push_back(F.get());
    });
  for (std::thread &T : Clients)
    T.join();

  VerifierConfig Direct = smallConfig().Query;
  for (int C = 0; C < NumClients; ++C)
    for (int I = 0; I < PerClient; ++I) {
      const float X[] = {0.5f + 2 * ((C + I) % 6)};
      Certificate Expected = Server.verifier().verify(X, 2, Direct);
      EXPECT_EQ(Results[C][I].Kind, Expected.Kind);
      EXPECT_EQ(Results[C][I].ConcretePrediction,
                Expected.ConcretePrediction);
      EXPECT_EQ(Results[C][I].NumTerminals, Expected.NumTerminals);
    }
  StoreStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Hits + Stats.Misses, NumClients * PerClient);
  EXPECT_GE(Stats.Misses, 6u);
  EXPECT_GE(Stats.Hits, 1u); // 48 requests over 6 points must repeat.
}

//===----------------------------------------------------------------------===//
// The ticketed submit API (what the network front end rides on):
// cancellation, deadlines, completion callbacks, and the store-only
// probe. The GateStore (tests/NetHarness.h) pins verifications inside
// the store write-through, so queue occupancy is test-controlled.
//===----------------------------------------------------------------------===//

namespace {

/// smallConfig() with \p Gate as the backing store and one-request
/// batches, so one pinned verification occupies exactly one dispatch.
CertServerConfig gatedConfig(testharness::GateStore &Gate) {
  CertServerConfig Config = smallConfig();
  Config.MaxBatch = 1;
  Config.Store = &Gate;
  return Config;
}

} // namespace

TEST(CertServerTest, CancelQueuedRequestReleasesItsSlotImmediately) {
  Dataset Train = figure2Dataset();
  testharness::GateStore Gate;
  CertServer Server(Train, gatedConfig(Gate));

  // A blocker pins the dispatcher inside the gate; two more queue.
  Gate.close();
  CertServer::SubmitOptions None;
  uint64_t BlockerTicket = 0, T1 = 0, T2 = 0;
  std::future<Certificate> Blocker =
      Server.submit(point(20.0f), 3, None, BlockerTicket);
  ASSERT_TRUE(Gate.waitForEntered(1));
  std::future<Certificate> F1 = Server.submit(point(21.0f), 3, None, T1);
  std::future<Certificate> F2 = Server.submit(point(22.0f), 3, None, T2);
  ASSERT_NE(T1, 0u);
  ASSERT_NE(T1, T2);
  ASSERT_EQ(Server.pendingRequests(), 3u);

  // Cancelling a queued request frees its slot NOW — with the gate still
  // closed nothing else can shrink the count — and resolves the future
  // as Cancelled without any verification having run for it.
  EXPECT_TRUE(Server.cancelRequest(T1));
  EXPECT_EQ(Server.pendingRequests(), 2u);
  ASSERT_EQ(F1.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(F1.get().Kind, VerdictKind::Cancelled);

  // Double-cancels and unknown tickets refuse (the bookkeeping is gone).
  EXPECT_FALSE(Server.cancelRequest(T1));
  EXPECT_FALSE(Server.cancelRequest(~0ull));

  // The in-flight blocker is also cancellable — its token trips, the
  // slot winds down cooperatively rather than instantly.
  EXPECT_TRUE(Server.cancelRequest(BlockerTicket));

  Gate.open();
  Blocker.get(); // Resolves whatever the token race decided; never hangs.
  EXPECT_NE(F2.get().Kind, VerdictKind::Cancelled); // Untouched neighbour.
  EXPECT_FALSE(Server.cancelRequest(T2)); // Already served.
}

TEST(CertServerTest, CompletionCallbackFiresExactlyOncePerRequest) {
  Dataset Train = figure2Dataset();
  CertServer Server(Train, smallConfig());

  std::atomic<int> Calls{0};
  CertServer::SubmitOptions Options;
  Options.Completion = [&](const Certificate &Cert) {
    EXPECT_NE(Cert.Kind, VerdictKind::Cancelled);
    ++Calls;
  };
  uint64_t Ticket = 0;
  std::future<Certificate> F = Server.submit(point(9.5f), 2, Options, Ticket);
  EXPECT_NE(Ticket, 0u);
  F.get();
  // The callback runs right after fulfillment, before the dispatcher
  // books the batch as done — drain orders us after both.
  Server.drain();
  EXPECT_EQ(Calls.load(), 1);

  // A submission refused by a stopped server still gets its callback —
  // exactly once, with the Cancelled certificate — so an event-loop
  // caller never leaks an outstanding-request slot.
  Server.stop();
  std::atomic<int> RefusedCalls{0};
  CertServer::SubmitOptions AfterStop;
  AfterStop.Completion = [&](const Certificate &Cert) {
    EXPECT_EQ(Cert.Kind, VerdictKind::Cancelled);
    ++RefusedCalls;
  };
  uint64_t RefusedTicket = 99; // Must be overwritten to "no ticket".
  std::future<Certificate> Refused =
      Server.submit(point(9.5f), 2, AfterStop, RefusedTicket);
  EXPECT_EQ(RefusedTicket, 0u);
  EXPECT_EQ(Refused.get().Kind, VerdictKind::Cancelled);
  EXPECT_EQ(RefusedCalls.load(), 1);
}

TEST(CertServerTest, ProbeStoreAnswersOnlyWhatIsAlreadyKnown) {
  Dataset Train = figure2Dataset();
  CertCache Cache(/*MaxBytes=*/0);
  CertServerConfig Config = smallConfig();
  Config.Store = &Cache;
  CertServer Server(Train, Config);

  const float X[] = {9.5f};
  Certificate Probe;
  // Cold store: the probe misses and — crucially — verifies nothing.
  EXPECT_FALSE(Server.probeStore(X, 2, Probe));
  EXPECT_EQ(Server.pendingRequests(), 0u);

  Certificate Served = Server.submit(point(9.5f), 2).get();
  Server.drain();

  // Warm: the probe replays the stored certificate verbatim.
  ASSERT_TRUE(Server.probeStore(X, 2, Probe));
  EXPECT_EQ(Probe.Kind, Served.Kind);
  EXPECT_EQ(Probe.NumTerminals, Served.NumTerminals);
  EXPECT_EQ(Probe.Seconds, Served.Seconds);

  // The range rule rides along: a Robust proof at radius 2 also answers
  // the budget-1 probe (∆1 ⊆ ∆2), with the budget rewritten.
  if (Served.isRobust()) {
    Certificate Narrower;
    ASSERT_TRUE(Server.probeStore(X, 1, Narrower));
    EXPECT_EQ(Narrower.Kind, VerdictKind::Robust);
    EXPECT_EQ(Narrower.PoisoningBudget, 1u);
    EXPECT_GE(Narrower.CertifiedRadius, 1u);
  }

  // A point never queried still misses.
  const float Cold[] = {3.5f};
  EXPECT_FALSE(Server.probeStore(Cold, 2, Probe));
}

TEST(CertServerTest, DeadlineExpiredWhileQueuedAnswersTimeout) {
  Dataset Train = figure2Dataset();
  testharness::GateStore Gate;
  CertServer Server(Train, gatedConfig(Gate));

  Gate.close();
  CertServer::SubmitOptions None;
  uint64_t BlockerTicket = 0;
  std::future<Certificate> Blocker =
      Server.submit(point(20.0f), 3, None, BlockerTicket);
  ASSERT_TRUE(Gate.waitForEntered(1));

  // 50ms of client budget, spent entirely waiting behind the blocker.
  CertServer::SubmitOptions Deadline;
  Deadline.DeadlineSeconds = 0.05;
  uint64_t Ticket = 0;
  std::future<Certificate> Doomed =
      Server.submit(point(21.0f), 3, Deadline, Ticket);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  Gate.open();

  Certificate Cert = Doomed.get();
  EXPECT_EQ(Cert.Kind, VerdictKind::Timeout);
  EXPECT_EQ(Cert.PoisoningBudget, 3u);
  // The blocker had no deadline; its verdict is real.
  EXPECT_NE(Blocker.get().Kind, VerdictKind::Timeout);
  // Deadline timeouts are never cached: the same query asked again (no
  // deadline this time) verifies for real.
  EXPECT_NE(Server.submit(point(21.0f), 3).get().Kind,
            VerdictKind::Timeout);
}
