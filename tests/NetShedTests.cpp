//===- tests/NetShedTests.cpp - Admission-control tests -----------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// The admission-control half of the network tier: forced queue
// saturation sheds with an explicit SHED status (never a fabricated
// verdict), cache hits are still answered while shedding, pacing caps a
// greedy client without starving its neighbours, and a deadline storm
// drains as Timeouts with the server healthy afterwards. Saturation is
// produced deterministically by the GateStore (verifications pin inside
// the store write-through), never by sleeping and hoping.
//
//===----------------------------------------------------------------------===//

#include "serving/NetServer.h"

#include "serving/CertCache.h"
#include "serving/TieredStore.h"

#include "NetHarness.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

using namespace antidote;
using namespace antidote::testharness;
using namespace antidote::testutil;

namespace {

std::vector<float> point(float X) { return std::vector<float>{X}; }

template <typename Fn> bool eventually(Fn Cond, int TimeoutMillis = 30000) {
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(TimeoutMillis);
  while (!Cond()) {
    if (std::chrono::steady_clock::now() > Deadline)
      return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// Server stack with admission knobs under test control. MaxBatch 1 so
/// each gated verification pins exactly one dispatch. The store is the
/// production composition with the persistent tier swapped for the
/// gate: a RAM cache in front (so warmed queries probe-serve while
/// shedding) and the GateStore behind it pinning write-throughs.
struct ShedStack {
  Dataset Train = figure2Dataset();
  GateStore Gate;
  CertCache Cache{/*MaxBytes=*/0};
  TieredStore Store{&Cache, &Gate};
  std::unique_ptr<CertServer> Server;
  std::unique_ptr<NetServer> Net;

  explicit ShedStack(NetServerConfig NetConfig) {
    CertServerConfig Config;
    Config.Query.Depth = 2;
    Config.Query.Domain = AbstractDomainKind::Disjuncts;
    Config.Query.Limits.TimeoutSeconds = 30.0;
    Config.Jobs = 2;
    Config.MaxBatch = 1;
    Config.Store = &Store;
    Server = std::make_unique<CertServer>(Train, Config);
    NetConfig.Port = 0;
    Net = std::make_unique<NetServer>(*Server, NetConfig);
    std::string Error;
    if (!Net->start(Error))
      ADD_FAILURE() << "NetServer start: " << Error;
  }

  ~ShedStack() {
    Gate.open();
    Net->stop();
  }

  uint16_t port() const { return Net->port(); }
};

} // namespace

TEST(NetShedTest, SaturationShedsExplicitlyAndNeverFabricatesAVerdict) {
  NetServerConfig NetConfig;
  NetConfig.ShedDepth = 2;
  ShedStack Stack(NetConfig);

  NetClient Client(Stack.port());
  ASSERT_TRUE(Client.connected());

  // Pin the queue: with the gate closed, admitted verifications park in
  // the store write-through, so pendingRequests() can only grow.
  Stack.Gate.close();
  ASSERT_TRUE(Client.send(makeRequest(0, 2, point(20.0f))));
  ASSERT_TRUE(Stack.Gate.waitForEntered(1));
  ASSERT_TRUE(Client.send(makeRequest(1, 2, point(21.0f))));
  ASSERT_TRUE(eventually(
      [&] { return Stack.Server->pendingRequests() >= 2; }));

  // Past ShedDepth now; a burst of fresh queries must all be refused
  // explicitly — SHED/overload, no certificate attached.
  for (uint64_t I = 0; I < 4; ++I)
    ASSERT_TRUE(Client.send(makeRequest(10 + I, 2, point(30.0f + I))));
  for (int I = 0; I < 4; ++I) {
    NetResponse Response;
    ASSERT_TRUE(Client.recvResponse(Response));
    ASSERT_GE(Response.Tag, 10u) << "pinned request answered early?";
    EXPECT_EQ(Response.Status, NetStatus::Shed);
    EXPECT_EQ(Response.ShedReason, NetShedReason::Overload);
  }
  EXPECT_EQ(Stack.Net->stats().ShedOverload, 4u);

  // Release the gate: the two admitted requests complete with real
  // verdicts — shedding refused the new work, not the owed work.
  Stack.Gate.open();
  for (int I = 0; I < 2; ++I) {
    NetResponse Response;
    ASSERT_TRUE(Client.recvResponse(Response));
    EXPECT_LT(Response.Tag, 2u);
    EXPECT_EQ(Response.Status, NetStatus::Ok);
    EXPECT_EQ(Response.Path, NetServePath::Verified);
  }
}

TEST(NetShedTest, CacheHitsAreStillAnsweredWhileShedding) {
  NetServerConfig NetConfig;
  NetConfig.ShedDepth = 2;
  ShedStack Stack(NetConfig);

  NetClient Client(Stack.port());
  ASSERT_TRUE(Client.connected());

  // Warm the store with one query while the world is healthy.
  ASSERT_TRUE(Client.send(makeRequest(0, 2, point(9.5f))));
  NetResponse Warm;
  ASSERT_TRUE(Client.recvResponse(Warm));
  ASSERT_EQ(Warm.Status, NetStatus::Ok);

  // Saturate.
  Stack.Gate.close();
  ASSERT_TRUE(Client.send(makeRequest(1, 3, point(20.0f))));
  ASSERT_TRUE(Stack.Gate.waitForEntered(2)); // 1 warm + 1 pinned.
  ASSERT_TRUE(Client.send(makeRequest(2, 3, point(21.0f))));
  ASSERT_TRUE(eventually(
      [&] { return Stack.Server->pendingRequests() >= 2; }));

  // The warmed query again, while shedding: answered from the store —
  // Ok with the probe path marked — not shed, not re-verified.
  ASSERT_TRUE(Client.send(makeRequest(3, 2, point(9.5f))));
  NetResponse Hit;
  ASSERT_TRUE(Client.recvResponse(Hit));
  EXPECT_EQ(Hit.Tag, 3u);
  EXPECT_EQ(Hit.Status, NetStatus::Ok);
  EXPECT_EQ(Hit.Path, NetServePath::ShedProbe);
  EXPECT_EQ(Hit.Cert.Kind, Warm.Cert.Kind);
  EXPECT_EQ(Hit.Cert.ConcretePrediction, Warm.Cert.ConcretePrediction);
  EXPECT_GE(Stack.Net->stats().ProbeHits, 1u);

  // A cold query in the same breath is still refused.
  ASSERT_TRUE(Client.send(makeRequest(4, 2, point(40.0f))));
  NetResponse Cold;
  ASSERT_TRUE(Client.recvResponse(Cold));
  EXPECT_EQ(Cold.Status, NetStatus::Shed);

  Stack.Gate.open();
}

TEST(NetShedTest, PacingCapsAGreedyClientWithoutStarvingOthers) {
  NetServerConfig NetConfig;
  // Effectively no refill within the test's lifetime; a burst of 2.
  NetConfig.ClientRate = 0.0001;
  NetConfig.ClientBurst = 2.0;
  ShedStack Stack(NetConfig);

  NetClient Greedy(Stack.port());
  ASSERT_TRUE(Greedy.connected());
  for (uint64_t I = 0; I < 6; ++I)
    ASSERT_TRUE(Greedy.send(makeRequest(I, 2, point(20.0f + I))));

  size_t NumOk = 0, NumPaced = 0;
  for (int I = 0; I < 6; ++I) {
    NetResponse Response;
    ASSERT_TRUE(Greedy.recvResponse(Response));
    if (Response.Status == NetStatus::Ok) {
      ++NumOk;
      EXPECT_LT(Response.Tag, 2u) << "admissions must be the first two";
    } else {
      ++NumPaced;
      ASSERT_EQ(Response.Status, NetStatus::Shed);
      EXPECT_EQ(Response.ShedReason, NetShedReason::Paced);
    }
  }
  EXPECT_EQ(NumOk, 2u);
  EXPECT_EQ(NumPaced, 4u);
  EXPECT_EQ(Stack.Net->stats().ShedPaced, 4u);

  // A different client owns a fresh bucket: the greedy neighbour's
  // exhaustion is not its problem.
  NetClient Polite(Stack.port());
  ASSERT_TRUE(Polite.connected());
  for (uint64_t I = 0; I < 2; ++I) {
    ASSERT_TRUE(Polite.send(makeRequest(100 + I, 2, point(9.5f))));
    NetResponse Response;
    ASSERT_TRUE(Polite.recvResponse(Response));
    EXPECT_EQ(Response.Status, NetStatus::Ok);
  }
}

TEST(NetShedTest, PacedClientStillGetsCachedAnswers) {
  NetServerConfig NetConfig;
  NetConfig.ClientRate = 0.0001;
  NetConfig.ClientBurst = 1.0;
  ShedStack Stack(NetConfig);

  NetClient Client(Stack.port());
  ASSERT_TRUE(Client.connected());

  // The single token buys one verification...
  ASSERT_TRUE(Client.send(makeRequest(0, 2, point(9.5f))));
  NetResponse Warm;
  ASSERT_TRUE(Client.recvResponse(Warm));
  ASSERT_EQ(Warm.Status, NetStatus::Ok);
  ASSERT_EQ(Warm.Path, NetServePath::Verified);

  // ...after which the bucket is empty: repeats of the known query are
  // probe-served, anything new is shed as paced.
  ASSERT_TRUE(Client.send(makeRequest(1, 2, point(9.5f))));
  ASSERT_TRUE(Client.send(makeRequest(2, 2, point(20.0f))));
  NetResponse Repeat, Fresh;
  ASSERT_TRUE(Client.recvResponse(Repeat));
  ASSERT_TRUE(Client.recvResponse(Fresh));
  EXPECT_EQ(Repeat.Tag, 1u);
  EXPECT_EQ(Repeat.Status, NetStatus::Ok);
  EXPECT_EQ(Repeat.Path, NetServePath::ShedProbe);
  EXPECT_EQ(Repeat.Cert.Kind, Warm.Cert.Kind);
  EXPECT_EQ(Fresh.Tag, 2u);
  EXPECT_EQ(Fresh.Status, NetStatus::Shed);
  EXPECT_EQ(Fresh.ShedReason, NetShedReason::Paced);
}

TEST(NetShedTest, DeadlineStormDrainsAsTimeoutsAndServerStaysHealthy) {
  ShedStack Stack(NetServerConfig{});

  NetClient Client(Stack.port());
  ASSERT_TRUE(Client.connected());

  // One blocker pins the dispatcher; five 30ms-deadline requests queue
  // behind it and all expire while it holds the gate.
  Stack.Gate.close();
  ASSERT_TRUE(Client.send(makeRequest(0, 3, point(20.0f))));
  ASSERT_TRUE(Stack.Gate.waitForEntered(1));
  for (uint64_t I = 0; I < 5; ++I)
    ASSERT_TRUE(Client.send(
        makeRequest(10 + I, 3, point(30.0f + I), /*DeadlineMillis=*/30)));
  ASSERT_TRUE(eventually(
      [&] { return Stack.Server->pendingRequests() >= 6; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  Stack.Gate.open();

  size_t NumTimeouts = 0;
  for (int I = 0; I < 6; ++I) {
    NetResponse Response;
    ASSERT_TRUE(Client.recvResponse(Response));
    ASSERT_EQ(Response.Status, NetStatus::Ok);
    if (Response.Tag >= 10) {
      // Expired before dispatch: an honest Timeout, no verification
      // spent on it, and emphatically not a Robust/Unknown claim.
      EXPECT_EQ(Response.Cert.Kind, VerdictKind::Timeout);
      ++NumTimeouts;
    }
  }
  EXPECT_EQ(NumTimeouts, 5u);

  // The storm leaves no debris: a normal query still round-trips.
  ASSERT_TRUE(Client.send(makeRequest(99, 2, point(9.5f))));
  NetResponse After;
  ASSERT_TRUE(Client.recvResponse(After));
  EXPECT_EQ(After.Status, NetStatus::Ok);
  EXPECT_EQ(After.Path, NetServePath::Verified);
  EXPECT_NE(After.Cert.Kind, VerdictKind::Timeout);
}
