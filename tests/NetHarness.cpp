//===- tests/NetHarness.cpp - Fault-injection protocol client -----------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "NetHarness.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>

using namespace antidote;
using namespace antidote::testharness;

NetRequest testharness::makeRequest(uint64_t Tag, uint32_t PoisoningBudget,
                                    std::vector<float> X,
                                    uint32_t DeadlineMillis) {
  NetRequest Request;
  Request.Tag = Tag;
  Request.PoisoningBudget = PoisoningBudget;
  Request.DeadlineMillis = DeadlineMillis;
  Request.X = std::move(X);
  return Request;
}

NetClient::NetClient(uint16_t Port) : Sock(connectTcpLoopback(Port)) {}

bool NetClient::send(const NetRequest &Request) {
  std::string Frame = encodeRequestFrame(Request);
  return sendRaw(Frame.data(), Frame.size());
}

bool NetClient::sendPartial(const NetRequest &Request, size_t Bytes) {
  std::string Frame = encodeRequestFrame(Request);
  return sendRaw(Frame.data(), std::min(Bytes, Frame.size()));
}

bool NetClient::sendRaw(const void *Data, size_t Size) {
  const char *Bytes = static_cast<const char *>(Data);
  size_t Pos = 0;
  while (Pos < Size) {
    ssize_t N = ::send(Sock.get(), Bytes + Pos, Size - Pos, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Pos += static_cast<size_t>(N);
  }
  return true;
}

bool NetClient::recvResponse(NetResponse &Out, int TimeoutMillis) {
  for (;;) {
    if (std::optional<std::vector<uint8_t>> Payload = In.next()) {
      std::optional<NetResponse> Response =
          decodeResponsePayload(Payload->data(), Payload->size());
      if (!Response)
        return false;
      Out = *Response;
      return true;
    }
    pollfd Pfd{Sock.get(), POLLIN, 0};
    int Ready = ::poll(&Pfd, 1, TimeoutMillis);
    if (Ready <= 0)
      return false; // Timeout (or poll failure): the test's assertion.
    uint8_t Buf[4096];
    ssize_t N = ::recv(Sock.get(), Buf, sizeof(Buf), 0);
    if (N <= 0)
      return false; // EOF/reset before a complete response.
    if (!In.feed(Buf, static_cast<size_t>(N)))
      return false; // Corrupt response stream — server-side bug.
  }
}

bool NetClient::waitForClose(int TimeoutMillis) {
  for (;;) {
    pollfd Pfd{Sock.get(), POLLIN, 0};
    int Ready = ::poll(&Pfd, 1, TimeoutMillis);
    if (Ready <= 0)
      return false;
    uint8_t Buf[4096];
    ssize_t N = ::recv(Sock.get(), Buf, sizeof(Buf), 0);
    if (N == 0)
      return true;
    if (N < 0)
      return errno != EINTR && errno != EAGAIN; // Reset counts as closed.
  }
}

void NetClient::finishSending() { ::shutdown(Sock.get(), SHUT_WR); }
