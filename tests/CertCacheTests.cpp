//===- tests/CertCacheTests.cpp - Certificate cache tests ---------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// The serving layer's core invariant — cached ≡ fresh — plus the LRU
// byte-budget mechanics and the concurrent-worker safety the TSan CI job
// checks. Also covers the key discipline: scheduling knobs must share
// entries, result-relevant knobs must split them, and a dataset mutation
// must miss via the fingerprint.
//
//===----------------------------------------------------------------------===//

#include "serving/CertCache.h"

#include "TestUtil.h"
#include "data/Synthetic.h"

#include <gtest/gtest.h>

using namespace antidote;
using namespace antidote::testutil;

namespace {

/// Field-by-field certificate identity, `Seconds` included: a hit returns
/// the stored certificate verbatim.
void expectIdenticalCertificates(const Certificate &A, const Certificate &B) {
  EXPECT_EQ(A.Kind, B.Kind);
  EXPECT_EQ(A.PoisoningBudget, B.PoisoningBudget);
  EXPECT_EQ(A.CertifiedRadius, B.CertifiedRadius);
  EXPECT_EQ(A.Depth, B.Depth);
  EXPECT_EQ(A.Domain, B.Domain);
  EXPECT_EQ(A.ConcretePrediction, B.ConcretePrediction);
  EXPECT_EQ(A.DominatingClass, B.DominatingClass);
  EXPECT_EQ(A.NumTerminals, B.NumTerminals);
  EXPECT_EQ(A.PeakDisjuncts, B.PeakDisjuncts);
  EXPECT_EQ(A.PeakStateBytes, B.PeakStateBytes);
  EXPECT_EQ(A.BestSplitCalls, B.BestSplitCalls);
  EXPECT_EQ(A.Seconds, B.Seconds);
}

VerifierConfig makeConfig(AbstractDomainKind Domain) {
  VerifierConfig Config;
  Config.Depth = 2;
  Config.Domain = Domain;
  Config.DisjunctCap = 4;
  Config.Limits.TimeoutSeconds = 30.0;
  return Config;
}

} // namespace

//===----------------------------------------------------------------------===//
// Cached ≡ fresh, across all three abstract domains
//===----------------------------------------------------------------------===//

class CacheIdentityTest
    : public ::testing::TestWithParam<AbstractDomainKind> {};

TEST_P(CacheIdentityTest, HitIsByteIdenticalToColdRun) {
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  CertCache Cache(/*MaxBytes=*/0);
  VerifierConfig Config = makeConfig(GetParam());
  Config.Cache = &Cache;
  const float X[] = {9.5f};

  // Cold run: misses, verifies, seeds the cache.
  Certificate Cold = V.verify(X, /*PoisoningBudget=*/2, Config);
  StoreStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Misses, 1u);
  EXPECT_EQ(Stats.Stores, 1u);

  // Warm run: served from the cache, verbatim — Seconds included, which
  // a re-verification could never reproduce exactly.
  Certificate Warm = V.verify(X, /*PoisoningBudget=*/2, Config);
  Stats = Cache.stats();
  EXPECT_EQ(Stats.Hits, 1u);
  expectIdenticalCertificates(Cold, Warm);

  // And identical (Seconds aside, which is wall clock) to a cache-less
  // verification: serving from the cache never changes an answer.
  VerifierConfig Fresh = makeConfig(GetParam());
  Certificate Reverified = V.verify(X, /*PoisoningBudget=*/2, Fresh);
  EXPECT_EQ(Warm.Kind, Reverified.Kind);
  EXPECT_EQ(Warm.ConcretePrediction, Reverified.ConcretePrediction);
  EXPECT_EQ(Warm.DominatingClass, Reverified.DominatingClass);
  EXPECT_EQ(Warm.NumTerminals, Reverified.NumTerminals);
  EXPECT_EQ(Warm.PeakDisjuncts, Reverified.PeakDisjuncts);
  EXPECT_EQ(Warm.PeakStateBytes, Reverified.PeakStateBytes);
  EXPECT_EQ(Warm.BestSplitCalls, Reverified.BestSplitCalls);
}

INSTANTIATE_TEST_SUITE_P(AllDomains, CacheIdentityTest,
                         ::testing::Values(AbstractDomainKind::Box,
                                           AbstractDomainKind::Disjuncts,
                                           AbstractDomainKind::DisjunctsCapped),
                         [](const auto &Info) {
                           switch (Info.param) {
                           case AbstractDomainKind::Box:
                             return "Box";
                           case AbstractDomainKind::Disjuncts:
                             return "Disjuncts";
                           case AbstractDomainKind::DisjunctsCapped:
                             return "DisjunctsCapped";
                           }
                           return "Unknown";
                         });

//===----------------------------------------------------------------------===//
// Key discipline
//===----------------------------------------------------------------------===//

TEST(CertCacheTest, ResultRelevantKnobsSplitEntries) {
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  CertCache Cache(0);
  const float X[] = {9.5f};

  VerifierConfig Config = makeConfig(AbstractDomainKind::Disjuncts);
  Config.Cache = &Cache;
  Certificate Stored = V.verify(X, 2, Config);

  // A different budget is no longer a plain miss: the radius-range index
  // covers it when the verdict lattice allows. Here the stored verdict
  // at radius 2 is Unknown, which answers the *wider* budget 3 a
  // fortiori — served as a range hit, not an exact one.
  ASSERT_EQ(Stored.Kind, VerdictKind::Unknown);
  Certificate RangeServed = V.verify(X, 3, Config);
  EXPECT_EQ(RangeServed.Kind, VerdictKind::Unknown);
  EXPECT_EQ(RangeServed.PoisoningBudget, 3u);
  EXPECT_EQ(RangeServed.CertifiedRadius, 2u);
  EXPECT_EQ(Cache.stats().RangeHits, 1u);

  // Depth, domain, limits: all result-relevant, all must miss — the
  // range rule never crosses them (they change the base key).
  VerifierConfig Deeper = Config;
  Deeper.Depth = 3;
  V.verify(X, 2, Deeper);
  VerifierConfig Boxed = Config;
  Boxed.Domain = AbstractDomainKind::Box;
  V.verify(X, 2, Boxed);
  VerifierConfig Tighter = Config;
  Tighter.Limits.MaxDisjuncts = 7;
  V.verify(X, 2, Tighter);
  VerifierConfig OtherTimeout = Config;
  OtherTimeout.Limits.TimeoutSeconds = 60.0;
  V.verify(X, 2, OtherTimeout);
  // A different query vector, too.
  const float Y[] = {2.5f};
  V.verify(Y, 2, Config);

  StoreStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Hits, 0u);
  EXPECT_EQ(Stats.RangeHits, 1u);
  EXPECT_EQ(Stats.Misses, 6u);
}

TEST(CertCacheTest, SchedulingKnobsShareEntries) {
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  CertCache Cache(0);
  const float X[] = {9.5f};

  VerifierConfig Serial = makeConfig(AbstractDomainKind::Disjuncts);
  Serial.Cache = &Cache;
  Certificate Cold = V.verify(X, 2, Serial);

  // Certificates are bit-identical across the fan-out knobs (the
  // engine's core guarantee), so a parallel client must hit the entry a
  // serial one stored.
  VerifierConfig Parallel = Serial;
  Parallel.FrontierJobs = 4;
  Parallel.SplitJobs = 2;
  std::unique_ptr<ThreadPool> Pool = makeVerificationPool(4);
  Parallel.FrontierPool = Pool.get();
  Certificate Warm = V.verify(X, 2, Parallel);

  EXPECT_EQ(Cache.stats().Hits, 1u);
  expectIdenticalCertificates(Cold, Warm);

  // DisjunctCap is ignored by the uncapped domains — normalized out of
  // their keys.
  VerifierConfig OtherCap = Serial;
  OtherCap.DisjunctCap = 128;
  V.verify(X, 2, OtherCap);
  EXPECT_EQ(Cache.stats().Hits, 2u);
}

TEST(CertCacheTest, DatasetMutationMissesViaFingerprint) {
  Dataset Train = figure2Dataset();
  Verifier V(Train);

  // The same 13 rows plus one appended: a different training set whose
  // certificates must not be conflated with the original's.
  Dataset Mutated = figure2Dataset();
  Mutated.addRow({5.0f}, 1);
  Verifier VMutated(Mutated);
  ASSERT_NE(V.fingerprint(), VMutated.fingerprint());

  CertCache Cache(0);
  VerifierConfig Config = makeConfig(AbstractDomainKind::Disjuncts);
  Config.Cache = &Cache;
  const float X[] = {9.5f};
  V.verify(X, 2, Config);
  VMutated.verify(X, 2, Config);
  StoreStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Hits, 0u);
  EXPECT_EQ(Stats.Misses, 2u);
  EXPECT_EQ(Stats.LiveRecords, 2u);
}

TEST(CertCacheTest, TimeoutVerdictsAreNeverCached) {
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  CertCache Cache(0);
  VerifierConfig Config = makeConfig(AbstractDomainKind::Disjuncts);
  Config.Depth = 4;
  Config.Limits.TimeoutSeconds = 1e-9; // Expires immediately.
  Config.Cache = &Cache;
  const float X[] = {9.5f};
  Certificate Cert = V.verify(X, 8, Config);
  ASSERT_EQ(Cert.Kind, VerdictKind::Timeout);
  StoreStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Stores, 0u);
  EXPECT_EQ(Stats.LiveRecords, 0u);
}

TEST(CertCacheTest, CancelledVerdictsAreNeverCached) {
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  CertCache Cache(0);
  CancellationToken Cancel;
  Cancel.cancel();
  VerifierConfig Config = makeConfig(AbstractDomainKind::Disjuncts);
  Config.Cancel = &Cancel;
  Config.Cache = &Cache;
  const float X[] = {9.5f};
  Certificate Cert = V.verify(X, 2, Config);
  ASSERT_EQ(Cert.Kind, VerdictKind::Cancelled);
  EXPECT_EQ(Cache.stats().Stores, 0u);
}

TEST(CertCacheTest, ResourceLimitVerdictsAreCached) {
  // Deterministic failure (the disjunct cap does not depend on wall
  // clock), so replaying it is sound — and valuable: the expensive
  // queries are exactly the ones that blow the budget.
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  CertCache Cache(0);
  VerifierConfig Config = makeConfig(AbstractDomainKind::Disjuncts);
  Config.Depth = 4;
  Config.Limits.MaxDisjuncts = 2;
  Config.Cache = &Cache;
  const float X[] = {9.5f};
  Certificate Cold = V.verify(X, 8, Config);
  ASSERT_EQ(Cold.Kind, VerdictKind::ResourceLimit);
  Certificate Warm = V.verify(X, 8, Config);
  EXPECT_EQ(Cache.stats().Hits, 1u);
  expectIdenticalCertificates(Cold, Warm);
}

//===----------------------------------------------------------------------===//
// LRU eviction under a byte budget
//===----------------------------------------------------------------------===//

namespace {

/// Measures what one single-feature Box entry costs in this build (the
/// accounting is approximate and struct sizes vary by platform, so the
/// eviction tests size their budgets empirically instead of hard-coding
/// byte counts).
uint64_t oneEntryBytes(Verifier &V) {
  CertCache Probe(/*MaxBytes=*/0);
  VerifierConfig Config = makeConfig(AbstractDomainKind::Box);
  Config.Cache = &Probe;
  const float X[] = {9.5f};
  V.verify(X, 1, Config);
  return Probe.stats().LiveBytes;
}

} // namespace

TEST(CertCacheTest, EvictsLeastRecentlyUsedUnderTinyBudget) {
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  // Budget sized for exactly two single-feature entries: inserting a
  // third must evict the least recently used.
  const uint64_t Budget = 2 * oneEntryBytes(V) + oneEntryBytes(V) / 2;
  CertCache Cache(Budget);
  VerifierConfig Config = makeConfig(AbstractDomainKind::Box);
  Config.Cache = &Cache;
  const float A[] = {1.5f}, B[] = {9.5f}, C[] = {12.5f};

  V.verify(A, 1, Config);
  V.verify(B, 1, Config);
  EXPECT_EQ(Cache.stats().LiveRecords, 2u);

  // Touch A so B becomes the LRU victim.
  V.verify(A, 1, Config);
  EXPECT_EQ(Cache.stats().Hits, 1u);

  V.verify(C, 1, Config);
  StoreStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Evictions, 1u);
  EXPECT_EQ(Stats.LiveRecords, 2u);
  EXPECT_LE(Stats.LiveBytes, Budget);

  // A (recently touched) still hits; B (evicted) misses again.
  uint64_t HitsBefore = Stats.Hits;
  V.verify(A, 1, Config);
  EXPECT_EQ(Cache.stats().Hits, HitsBefore + 1);
  uint64_t MissesBefore = Cache.stats().Misses;
  V.verify(B, 1, Config);
  EXPECT_EQ(Cache.stats().Misses, MissesBefore + 1);
}

TEST(CertCacheTest, BudgetIsAlwaysRespected) {
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  const uint64_t Budget = 3 * oneEntryBytes(V) + oneEntryBytes(V) / 2;
  CertCache Cache(Budget);
  VerifierConfig Config = makeConfig(AbstractDomainKind::Box);
  Config.Cache = &Cache;
  for (int I = 0; I < 12; ++I) {
    const float X[] = {static_cast<float>(I) + 0.5f};
    V.verify(X, 1, Config);
    EXPECT_LE(Cache.stats().LiveBytes, Budget);
  }
  StoreStats Stats = Cache.stats();
  EXPECT_GT(Stats.Evictions, 0u);
  EXPECT_EQ(Stats.Stores, 12u);
  EXPECT_EQ(Stats.LiveRecords, Stats.Stores - Stats.Evictions);
}

TEST(CertCacheTest, EntryChargeCoversKeyCertificateAndNodeOverhead) {
  // The eviction charge must never undercount to just the certificate
  // bytes: the key (query vector included, which the map owns) and the
  // container node overhead are resident too, so a tiny-budget
  // configuration has to bound them as well. Pin the floor of the
  // charge: key + certificate + the query's heap block, with node
  // overhead strictly on top.
  StoreKey K;
  K.Query.assign(4, 1.0f);
  uint64_t Charge = CertCache::entryBytes(K);
  EXPECT_GT(Charge, sizeof(StoreKey) + sizeof(Certificate) +
                        K.Query.capacity() * sizeof(float));

  // And the charge grows with the query (the dominant variable term).
  StoreKey Wide = K;
  Wide.Query.assign(784, 0.5f); // An MNIST-sized query vector.
  EXPECT_GE(CertCache::entryBytes(Wide),
            Charge + (784 - 4) * sizeof(float));
}

TEST(CertCacheTest, EntryLargerThanWholeBudgetIsDeclined) {
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  CertCache Cache(oneEntryBytes(V) / 2); // Smaller than any entry.
  VerifierConfig Config = makeConfig(AbstractDomainKind::Box);
  Config.Cache = &Cache;
  const float X[] = {9.5f};
  V.verify(X, 1, Config);
  StoreStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Declined, 1u);
  EXPECT_EQ(Stats.Stores, 0u);
  EXPECT_EQ(Stats.LiveRecords, 0u);
  EXPECT_EQ(Stats.LiveBytes, 0u);
}

TEST(CertCacheTest, ClearDropsEntriesButKeepsCounters) {
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  CertCache Cache(0);
  VerifierConfig Config = makeConfig(AbstractDomainKind::Box);
  Config.Cache = &Cache;
  const float X[] = {9.5f};
  V.verify(X, 1, Config);
  Cache.clear();
  StoreStats Stats = Cache.stats();
  EXPECT_EQ(Stats.LiveRecords, 0u);
  EXPECT_EQ(Stats.LiveBytes, 0u);
  EXPECT_EQ(Stats.Stores, 1u);
  V.verify(X, 1, Config);
  EXPECT_EQ(Cache.stats().Misses, 2u);
}

//===----------------------------------------------------------------------===//
// Concurrent access from pool workers (the TSan CI job runs this suite)
//===----------------------------------------------------------------------===//

TEST(CertCacheTest, ConcurrentBatchWorkersShareOneCache) {
  Rng R(77);
  RandomDatasetSpec Spec;
  Spec.MinRows = 8;
  Spec.MaxRows = 12;
  Dataset Train = makeRandomDataset(R, Spec);
  Verifier V(Train);
  CertCache Cache(/*MaxBytes=*/4096); // Small: force concurrent evictions.
  VerifierConfig Config = makeConfig(AbstractDomainKind::Disjuncts);
  Config.Cache = &Cache;

  // 48 queries over 16 distinct points: every point repeats, and with 4
  // workers hammering one cache, lookups/stores/evictions interleave.
  std::vector<std::vector<float>> Points;
  for (int I = 0; I < 16; ++I)
    Points.push_back(makeRandomQuery(R, Spec));
  std::vector<const float *> Inputs;
  for (int Round = 0; Round < 3; ++Round)
    for (const auto &P : Points)
      Inputs.push_back(P.data());

  std::unique_ptr<ThreadPool> Pool = makeVerificationPool(4);
  std::vector<Certificate> Certs = V.verifyBatch(Inputs, 2, Config,
                                                 Pool.get());

  // Whatever the interleaving, every served certificate matches a
  // cache-less verification in every deterministic field.
  VerifierConfig Fresh = makeConfig(AbstractDomainKind::Disjuncts);
  for (size_t I = 0; I < Inputs.size(); ++I) {
    Certificate Expected = V.verify(Inputs[I], 2, Fresh);
    EXPECT_EQ(Certs[I].Kind, Expected.Kind) << "query " << I;
    EXPECT_EQ(Certs[I].ConcretePrediction, Expected.ConcretePrediction);
    EXPECT_EQ(Certs[I].NumTerminals, Expected.NumTerminals);
    EXPECT_EQ(Certs[I].PeakDisjuncts, Expected.PeakDisjuncts);
  }
  StoreStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Hits + Stats.Misses, Inputs.size());
  EXPECT_GE(Stats.Misses, 16u); // At least one cold run per point.
}

//===----------------------------------------------------------------------===//
// Radius-range lookup: the serving lattice (Robust down, Unknown up)
//===----------------------------------------------------------------------===//

namespace {

/// A synthetic *original* proof at \p Radius: `CertifiedRadius` equals the
/// key's budget, so storing it registers it in the range index.
Certificate makeProof(VerdictKind Kind, uint32_t Radius,
                      size_t NumTerminals = 1) {
  Certificate Cert;
  Cert.Kind = Kind;
  Cert.PoisoningBudget = Radius;
  Cert.CertifiedRadius = Radius;
  Cert.NumTerminals = NumTerminals;
  return Cert;
}

DatasetFingerprint someFingerprint() {
  DatasetFingerprint FP;
  FP.Hi = 0x1234;
  FP.Lo = 0x5678;
  return FP;
}

} // namespace

TEST(CertCacheRangeTest, RobustServesEveryNarrowerBudget) {
  CertCache Cache(0);
  VerifierConfig Config = makeConfig(AbstractDomainKind::Disjuncts);
  DatasetFingerprint FP = someFingerprint();
  const float X[] = {1.0f};
  Cache.store(FP, X, 1, 5, Config, makeProof(VerdictKind::Robust, 5));

  for (uint32_t N = 0; N <= 4; ++N) {
    Certificate Out;
    ASSERT_TRUE(Cache.lookup(FP, X, 1, N, Config, Out)) << "budget " << N;
    EXPECT_EQ(Out.Kind, VerdictKind::Robust);
    EXPECT_EQ(Out.PoisoningBudget, N);    // Rewritten to the queried n.
    EXPECT_EQ(Out.CertifiedRadius, 5u);   // Still names the stored proof.
  }

  // The stored budget itself is an exact hit, not a range one; anything
  // wider than the proof is a miss.
  Certificate Out;
  ASSERT_TRUE(Cache.lookup(FP, X, 1, 5, Config, Out));
  EXPECT_EQ(Out.PoisoningBudget, 5u);
  EXPECT_FALSE(Cache.lookup(FP, X, 1, 6, Config, Out));

  StoreStats Stats = Cache.stats();
  EXPECT_EQ(Stats.RangeHits, 5u);
  EXPECT_EQ(Stats.Hits, 1u);
  EXPECT_EQ(Stats.Misses, 1u);
}

TEST(CertCacheRangeTest, UnknownServesEveryWiderBudget) {
  CertCache Cache(0);
  VerifierConfig Config = makeConfig(AbstractDomainKind::Disjuncts);
  DatasetFingerprint FP = someFingerprint();
  const float X[] = {1.0f};
  Cache.store(FP, X, 1, 5, Config, makeProof(VerdictKind::Unknown, 5));

  Certificate Out;
  ASSERT_TRUE(Cache.lookup(FP, X, 1, 7, Config, Out));
  EXPECT_EQ(Out.Kind, VerdictKind::Unknown);
  EXPECT_EQ(Out.PoisoningBudget, 7u);
  EXPECT_EQ(Out.CertifiedRadius, 5u);

  // Narrower budgets are not covered: the abstraction might succeed there.
  EXPECT_FALSE(Cache.lookup(FP, X, 1, 3, Config, Out));

  StoreStats Stats = Cache.stats();
  EXPECT_EQ(Stats.RangeHits, 1u);
  EXPECT_EQ(Stats.Misses, 1u);
}

TEST(CertCacheRangeTest, TightestCoveringRobustProofServes) {
  CertCache Cache(0);
  VerifierConfig Config = makeConfig(AbstractDomainKind::Disjuncts);
  DatasetFingerprint FP = someFingerprint();
  const float X[] = {1.0f};
  Cache.store(FP, X, 1, 5, Config,
              makeProof(VerdictKind::Robust, 5, /*NumTerminals=*/55));
  Cache.store(FP, X, 1, 9, Config,
              makeProof(VerdictKind::Robust, 9, /*NumTerminals=*/99));

  Certificate Out;
  ASSERT_TRUE(Cache.lookup(FP, X, 1, 3, Config, Out));
  EXPECT_EQ(Out.CertifiedRadius, 5u); // Tightest covering proof wins.
  EXPECT_EQ(Out.NumTerminals, 55u);

  ASSERT_TRUE(Cache.lookup(FP, X, 1, 7, Config, Out));
  EXPECT_EQ(Out.CertifiedRadius, 9u);
  EXPECT_EQ(Out.NumTerminals, 99u);
}

TEST(CertCacheRangeTest, RobustPreferredOverUnknownFallback) {
  CertCache Cache(0);
  VerifierConfig Config = makeConfig(AbstractDomainKind::Disjuncts);
  DatasetFingerprint FP = someFingerprint();
  const float X[] = {1.0f};
  Cache.store(FP, X, 1, 2, Config, makeProof(VerdictKind::Unknown, 2));
  Cache.store(FP, X, 1, 6, Config, makeProof(VerdictKind::Robust, 6));

  // Both entries could serve n=4 (Unknown@2 goes up, Robust@6 comes
  // down); the informative verdict wins.
  Certificate Out;
  ASSERT_TRUE(Cache.lookup(FP, X, 1, 4, Config, Out));
  EXPECT_EQ(Out.Kind, VerdictKind::Robust);
  EXPECT_EQ(Out.CertifiedRadius, 6u);

  // Beyond the widest Robust proof only the failed attempt remains.
  ASSERT_TRUE(Cache.lookup(FP, X, 1, 7, Config, Out));
  EXPECT_EQ(Out.Kind, VerdictKind::Unknown);
  EXPECT_EQ(Out.CertifiedRadius, 2u);

  // Below the failed attempt with no covering proof... Robust@6 still
  // covers n=1, so it serves; this pins the lower_bound probe.
  ASSERT_TRUE(Cache.lookup(FP, X, 1, 1, Config, Out));
  EXPECT_EQ(Out.Kind, VerdictKind::Robust);
}

TEST(CertCacheRangeTest, ResourceLimitVerdictsServeExactOnly) {
  CertCache Cache(0);
  VerifierConfig Config = makeConfig(AbstractDomainKind::Disjuncts);
  DatasetFingerprint FP = someFingerprint();
  const float X[] = {1.0f};
  Cache.store(FP, X, 1, 5, Config, makeProof(VerdictKind::ResourceLimit, 5));

  Certificate Out;
  EXPECT_FALSE(Cache.lookup(FP, X, 1, 4, Config, Out));
  EXPECT_FALSE(Cache.lookup(FP, X, 1, 6, Config, Out));
  ASSERT_TRUE(Cache.lookup(FP, X, 1, 5, Config, Out));
  EXPECT_EQ(Cache.stats().RangeHits, 0u);
}

TEST(CertCacheRangeTest, PromotedOffBudgetEntryServesExactOnly) {
  CertCache Cache(0);
  VerifierConfig Config = makeConfig(AbstractDomainKind::Disjuncts);
  DatasetFingerprint FP = someFingerprint();
  const float X[] = {1.0f};

  // What the tiered store writes when promoting a disk range hit: keyed
  // under the *queried* budget 3 but certifying radius 5. It must stay
  // out of the range index (the original radius-5 proof, wherever it
  // lives, already covers everything this one could serve).
  Certificate Promoted = makeProof(VerdictKind::Robust, 5);
  Promoted.PoisoningBudget = 3;
  Cache.store(FP, X, 1, 3, Config, Promoted);

  Certificate Out;
  EXPECT_FALSE(Cache.lookup(FP, X, 1, 2, Config, Out));
  ASSERT_TRUE(Cache.lookup(FP, X, 1, 3, Config, Out)); // Exact repeats hit.
  EXPECT_EQ(Out.CertifiedRadius, 5u);
  EXPECT_EQ(Cache.stats().RangeHits, 0u);
}

TEST(CertCacheRangeTest, EvictionUnregistersRangeEntries) {
  VerifierConfig Config = makeConfig(AbstractDomainKind::Disjuncts);
  DatasetFingerprint FP = someFingerprint();
  const float A[] = {1.0f};
  const float B[] = {2.0f};
  const float C[] = {3.0f};
  uint64_t One = CertCache::entryBytes(makeStoreKey(FP, A, 1, 5, Config));

  // Room for two entries; the third store evicts the LRU tail (A).
  CertCache Cache(2 * One + One / 2);
  Cache.store(FP, A, 1, 5, Config, makeProof(VerdictKind::Robust, 5));
  Cache.store(FP, B, 1, 5, Config, makeProof(VerdictKind::Robust, 5));
  Cache.store(FP, C, 1, 5, Config, makeProof(VerdictKind::Robust, 5));
  ASSERT_GE(Cache.stats().Evictions, 1u);

  // A's proof is gone from the range index with it; B and C still serve.
  Certificate Out;
  EXPECT_FALSE(Cache.lookup(FP, A, 1, 3, Config, Out));
  EXPECT_TRUE(Cache.lookup(FP, B, 1, 3, Config, Out));
  EXPECT_TRUE(Cache.lookup(FP, C, 1, 3, Config, Out));
}

TEST(CertCacheRangeTest, ClearDropsTheRangeIndex) {
  CertCache Cache(0);
  VerifierConfig Config = makeConfig(AbstractDomainKind::Disjuncts);
  DatasetFingerprint FP = someFingerprint();
  const float X[] = {1.0f};
  Cache.store(FP, X, 1, 5, Config, makeProof(VerdictKind::Robust, 5));
  Cache.clear();

  Certificate Out;
  EXPECT_FALSE(Cache.lookup(FP, X, 1, 3, Config, Out));
  EXPECT_EQ(Cache.stats().RangeHits, 0u);
}
