//===- tests/BaselineTests.cpp - Enumeration & attack-search tests ------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "antidote/AttackSearch.h"
#include "antidote/Enumeration.h"

#include "TestUtil.h"
#include "antidote/Verifier.h"

#include <gtest/gtest.h>

using namespace antidote;
using namespace antidote::testutil;

//===----------------------------------------------------------------------===//
// perturbationSetCount (the |∆n(T)| the paper quotes)
//===----------------------------------------------------------------------===//

TEST(PerturbationCountTest, SmallValues) {
  // §2's toy computation: C(13,2) + C(13,1) + 1 = 92 trees for the running
  // example at n = 2.
  EXPECT_EQ(perturbationSetCount(13, 2), 92u);
  EXPECT_EQ(perturbationSetCount(13, 0), 1u);
  EXPECT_EQ(perturbationSetCount(13, 1), 14u);
  EXPECT_EQ(perturbationSetCount(5, 5), 32u); // Full power set.
}

TEST(PerturbationCountTest, SaturatesInsteadOfOverflowing) {
  EXPECT_EQ(perturbationSetCount(13007, 192),
            std::numeric_limits<uint64_t>::max());
}

//===----------------------------------------------------------------------===//
// Enumeration baseline
//===----------------------------------------------------------------------===//

TEST(EnumerationTest, Figure2RobustInstance) {
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  float X = 5.0f;
  EnumerationResult Result =
      verifyByEnumeration(Ctx, allRows(Data), &X, 2, 1);
  EXPECT_TRUE(Result.Robust);
  EXPECT_TRUE(Result.Exhausted);
  EXPECT_EQ(Result.SetsChecked, 92u);
  EXPECT_EQ(Result.OriginalPrediction, 0u);
}

TEST(EnumerationTest, FindsCounterexampleWhenNotRobust) {
  // A 3-element set where removing one row flips the majority.
  Dataset Data(DatasetSchema::uniform(1, FeatureKind::Real, 2));
  Data.addRow({0.0f}, 0);
  Data.addRow({1.0f}, 0);
  Data.addRow({2.0f}, 1);
  SplitContext Ctx(Data);
  float X = 1.0f;
  // Depth 0: prediction is the majority label; dropping a class-0 row
  // leaves a 1-1 tie → prediction 0 still (lowest index)... dropping both
  // class-0 rows (n=2) leaves majority 1.
  EnumerationResult Result =
      verifyByEnumeration(Ctx, allRows(Data), &X, 2, 0);
  EXPECT_FALSE(Result.Robust);
  ASSERT_TRUE(Result.CounterexampleRows.has_value());
  // Re-run the learner on the witness: the prediction must really differ.
  TraceResult Witness =
      runDTrace(Ctx, *Result.CounterexampleRows, &X, 0);
  EXPECT_EQ(Witness.PredictedClass, Result.CounterexamplePrediction);
  EXPECT_NE(Witness.PredictedClass, Result.OriginalPrediction);
}

TEST(EnumerationTest, RespectsMaxSetsCap) {
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  float X = 5.0f;
  EnumerationResult Result =
      verifyByEnumeration(Ctx, allRows(Data), &X, 3, 1, /*MaxSets=*/10);
  EXPECT_FALSE(Result.Exhausted);
  EXPECT_EQ(Result.SetsChecked, 10u);
}

TEST(EnumerationTest, AgreesWithItselfAcrossBudgets) {
  // Robustness from enumeration is anti-monotone in n.
  Rng R(2024);
  RandomDatasetSpec Spec;
  Spec.MaxRows = 8;
  for (int Trial = 0; Trial < 15; ++Trial) {
    Dataset Data = makeRandomDataset(R, Spec);
    SplitContext Ctx(Data);
    std::vector<float> X = makeRandomQuery(R, Spec);
    bool PrevRobust = true;
    for (uint32_t N = 0; N <= 3; ++N) {
      EnumerationResult Result =
          verifyByEnumeration(Ctx, allRows(Data), X.data(), N, 2);
      if (!PrevRobust) {
        EXPECT_FALSE(Result.Robust);
      }
      PrevRobust = Result.Robust;
    }
  }
}

//===----------------------------------------------------------------------===//
// Attack search
//===----------------------------------------------------------------------===//

TEST(AttackSearchTest, FindsEasyFlip) {
  Dataset Data(DatasetSchema::uniform(1, FeatureKind::Real, 2));
  Data.addRow({0.0f}, 0);
  Data.addRow({1.0f}, 0);
  Data.addRow({2.0f}, 1);
  SplitContext Ctx(Data);
  float X = 1.0f;
  AttackResult Attack = findPoisoningAttack(Ctx, allRows(Data), &X, 2, 0);
  ASSERT_TRUE(Attack.Found);
  EXPECT_LE(Attack.RemovedRows.size(), 2u);
  // Validate the witness by retraining without the removed rows.
  RowIndexList Kept;
  for (uint32_t Row : allRows(Data))
    if (std::find(Attack.RemovedRows.begin(), Attack.RemovedRows.end(),
                  Row) == Attack.RemovedRows.end())
      Kept.push_back(Row);
  TraceResult Witness = runDTrace(Ctx, Kept, &X, 0);
  EXPECT_EQ(Witness.PredictedClass, Attack.FlippedPrediction);
  EXPECT_NE(Witness.PredictedClass, Attack.OriginalPrediction);
}

TEST(AttackSearchTest, NeverContradictsTheVerifier) {
  // If Antidote proves robustness, no attack can exist; conversely a found
  // attack must be confirmed by enumeration.
  Rng R(3030);
  RandomDatasetSpec Spec;
  Spec.MaxRows = 9;
  unsigned AttacksFound = 0;
  for (int Trial = 0; Trial < 25; ++Trial) {
    Dataset Data = makeRandomDataset(R, Spec);
    Verifier V(Data);
    SplitContext Ctx(Data);
    std::vector<float> X = makeRandomQuery(R, Spec);
    uint32_t Budget = 1 + static_cast<uint32_t>(R.uniformInt(2));
    unsigned Depth = 1 + static_cast<unsigned>(R.uniformInt(2));
    VerifierConfig Config;
    Config.Depth = Depth;
    Config.Domain = AbstractDomainKind::Disjuncts;
    Certificate Cert = V.verify(X.data(), Budget, Config);
    AttackResult Attack =
        findPoisoningAttack(Ctx, allRows(Data), X.data(), Budget, Depth);
    if (Cert.isRobust()) {
      EXPECT_FALSE(Attack.Found)
          << "attack found against a proven-robust instance";
    }
    if (Attack.Found) {
      ++AttacksFound;
      EnumerationResult Oracle = verifyByEnumeration(
          Ctx, allRows(Data), X.data(), Budget, Depth);
      EXPECT_FALSE(Oracle.Robust);
    }
  }
  EXPECT_GT(AttacksFound, 0u);
}

TEST(AttackSearchTest, ReportsRetrainingEffort) {
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  float X = 5.0f;
  AttackResult Attack = findPoisoningAttack(Ctx, allRows(Data), &X, 2, 1);
  EXPECT_GT(Attack.Retrainings, 0u);
  // The Figure 2 instance is provably robust at n = 2, so no attack.
  EXPECT_FALSE(Attack.Found);
}
