//===- tests/IntervalTests.cpp - Interval domain unit tests -------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "support/Interval.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace antidote;

TEST(IntervalTest, EmptyIntervalBasics) {
  Interval Empty = Interval::makeEmpty();
  EXPECT_TRUE(Empty.isEmpty());
  EXPECT_FALSE(Empty.contains(0.0));
  EXPECT_EQ(Empty, Interval::makeEmpty());
  EXPECT_EQ(Empty.str(), "[bot]");
}

TEST(IntervalTest, SingletonBasics) {
  Interval Point(3.0);
  EXPECT_FALSE(Point.isEmpty());
  EXPECT_TRUE(Point.isSingleton());
  EXPECT_EQ(Point.lb(), 3.0);
  EXPECT_EQ(Point.ub(), 3.0);
  EXPECT_TRUE(Point.contains(3.0));
  EXPECT_FALSE(Point.contains(3.0001));
}

TEST(IntervalTest, ContainsInterval) {
  Interval Outer(0.0, 10.0);
  EXPECT_TRUE(Outer.containsInterval(Interval(2.0, 3.0)));
  EXPECT_TRUE(Outer.containsInterval(Outer));
  EXPECT_TRUE(Outer.containsInterval(Interval::makeEmpty()));
  EXPECT_FALSE(Outer.containsInterval(Interval(-1.0, 3.0)));
  EXPECT_FALSE(Interval::makeEmpty().containsInterval(Interval(1.0)));
}

TEST(IntervalTest, JoinIsLeastUpperBound) {
  Interval A(0.0, 2.0);
  Interval B(5.0, 7.0);
  Interval J = A.join(B);
  EXPECT_EQ(J, Interval(0.0, 7.0));
  EXPECT_TRUE(J.containsInterval(A));
  EXPECT_TRUE(J.containsInterval(B));
  // Joining with empty is identity.
  EXPECT_EQ(A.join(Interval::makeEmpty()), A);
  EXPECT_EQ(Interval::makeEmpty().join(B), B);
}

TEST(IntervalTest, MeetIsIntersection) {
  Interval A(0.0, 4.0);
  Interval B(2.0, 7.0);
  EXPECT_EQ(A.meet(B), Interval(2.0, 4.0));
  EXPECT_TRUE(A.meet(Interval(5.0, 6.0)).isEmpty());
  // Touching endpoints intersect in a point.
  EXPECT_EQ(A.meet(Interval(4.0, 9.0)), Interval(4.0));
  EXPECT_TRUE(A.meet(Interval::makeEmpty()).isEmpty());
}

TEST(IntervalTest, Addition) {
  EXPECT_EQ(Interval(1.0, 2.0) + Interval(10.0, 20.0), Interval(11.0, 22.0));
  EXPECT_TRUE((Interval::makeEmpty() + Interval(1.0)).isEmpty());
}

TEST(IntervalTest, Subtraction) {
  EXPECT_EQ(Interval(1.0, 2.0) - Interval(10.0, 20.0),
            Interval(-19.0, -8.0));
}

TEST(IntervalTest, MultiplicationSignCases) {
  EXPECT_EQ(Interval(2.0, 3.0) * Interval(4.0, 5.0), Interval(8.0, 15.0));
  EXPECT_EQ(Interval(-2.0, 3.0) * Interval(4.0, 5.0), Interval(-10.0, 15.0));
  EXPECT_EQ(Interval(-3.0, -2.0) * Interval(-5.0, -4.0),
            Interval(8.0, 15.0));
  EXPECT_EQ(Interval(-1.0, 2.0) * Interval(-3.0, 4.0), Interval(-6.0, 8.0));
}

TEST(IntervalTest, DivisionPositiveDivisor) {
  EXPECT_EQ(Interval(2.0, 6.0) / Interval(1.0, 2.0), Interval(1.0, 6.0));
  EXPECT_EQ(Interval(0.0, 4.0) / Interval(2.0, 4.0), Interval(0.0, 2.0));
}

TEST(IntervalTest, ClampIntoUnit) {
  Interval Unit(0.0, 1.0);
  EXPECT_EQ(Interval(-0.5, 0.5).clamp(Unit), Interval(0.0, 0.5));
  EXPECT_EQ(Interval(0.2, 1.7).clamp(Unit), Interval(0.2, 1.0));
  EXPECT_EQ(Interval(2.0, 3.0).clamp(Unit), Interval(1.0, 1.0));
}

namespace {

/// Property harness: every arithmetic op's result must contain the images
/// of endpoint samples (soundness of the interval lifting).
class IntervalPropertyTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(IntervalPropertyTest, ArithmeticIsSound) {
  Rng R(GetParam());
  for (int Trial = 0; Trial < 200; ++Trial) {
    double ALo = R.uniform(-10.0, 10.0);
    double AHi = ALo + R.uniform(0.0, 5.0);
    double BLo = R.uniform(-10.0, 10.0);
    double BHi = BLo + R.uniform(0.0, 5.0);
    Interval A(ALo, AHi);
    Interval B(BLo, BHi);
    for (int Sample = 0; Sample < 8; ++Sample) {
      double X = R.uniform(ALo, AHi);
      double Y = R.uniform(BLo, BHi);
      EXPECT_TRUE((A + B).contains(X + Y));
      EXPECT_TRUE((A - B).contains(X - Y));
      EXPECT_TRUE((A * B).contains(X * Y));
      EXPECT_TRUE(A.join(B).contains(X));
      EXPECT_TRUE(A.join(B).contains(Y));
      if (BLo > 0.0) {
        EXPECT_TRUE((A / B).contains(X / Y));
      }
    }
  }
}

TEST_P(IntervalPropertyTest, MeetCharacterizesMembership) {
  Rng R(GetParam() ^ 0xbeef);
  for (int Trial = 0; Trial < 200; ++Trial) {
    double ALo = R.uniform(-5.0, 5.0);
    double AHi = ALo + R.uniform(0.0, 3.0);
    double BLo = R.uniform(-5.0, 5.0);
    double BHi = BLo + R.uniform(0.0, 3.0);
    Interval A(ALo, AHi);
    Interval B(BLo, BHi);
    Interval M = A.meet(B);
    double X = R.uniform(-6.0, 6.0);
    EXPECT_EQ(M.contains(X), A.contains(X) && B.contains(X));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalPropertyTest,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull));
