//===- tests/ThreatModelTests.cpp - First-class threat-model tests ------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// The threat-model refactor's contracts: the `ThreatModel` singletons and
// their name/domain discipline, the label-flip model flowing through the
// *unified* `Verifier` entry point (identical to the historical
// `verifyLabelFlipRobustness` loop and sound against exhaustive
// relabeling), the `Threat` field partitioning certificate-store keys per
// model (a removal proof must never answer a flip query, exact or range),
// and the greedy flip-attack search producing genuine concrete witnesses.
//
//===----------------------------------------------------------------------===//

#include "abstract/LabelFlip.h"
#include "abstract/ThreatModel.h"
#include "antidote/AttackSearch.h"
#include "antidote/Verifier.h"
#include "serving/CertCache.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace antidote;
using namespace antidote::testutil;

//===----------------------------------------------------------------------===//
// Names and domain support
//===----------------------------------------------------------------------===//

TEST(ThreatModelNameTest, NamesRoundTripThroughTheParser) {
  EXPECT_STREQ(threatModelName(ThreatModelKind::Removal), "removal");
  EXPECT_STREQ(threatModelName(ThreatModelKind::LabelFlip), "flip");
  EXPECT_EQ(parseThreatModelName("removal"), ThreatModelKind::Removal);
  EXPECT_EQ(parseThreatModelName("flip"), ThreatModelKind::LabelFlip);
  // The CLI convention is exact lowercase names; anything else is a
  // usage error, not a fuzzy match.
  EXPECT_FALSE(parseThreatModelName("").has_value());
  EXPECT_FALSE(parseThreatModelName("Flip").has_value());
  EXPECT_FALSE(parseThreatModelName("label-flip").has_value());
  EXPECT_FALSE(parseThreatModelName("removal ").has_value());
}

TEST(ThreatModelTest, SingletonsReportTheirKind) {
  EXPECT_EQ(threatModel(ThreatModelKind::Removal).kind(),
            ThreatModelKind::Removal);
  EXPECT_EQ(threatModel(ThreatModelKind::LabelFlip).kind(),
            ThreatModelKind::LabelFlip);
  EXPECT_STREQ(threatModel(ThreatModelKind::LabelFlip).name(), "flip");
}

TEST(ThreatModelTest, DomainSupportMatchesTheSoundnessArguments) {
  const ThreatModel &Removal = threatModel(ThreatModelKind::Removal);
  const ThreatModel &Flip = threatModel(ThreatModelKind::LabelFlip);
  for (AbstractDomainKind Domain :
       {AbstractDomainKind::Box, AbstractDomainKind::Disjuncts,
        AbstractDomainKind::DisjunctsCapped})
    EXPECT_TRUE(Removal.supportsDomain(Domain));
  // The flip cprob# transformer is unsound under any join of exact row
  // sets: Disjuncts only.
  EXPECT_TRUE(Flip.supportsDomain(AbstractDomainKind::Disjuncts));
  EXPECT_FALSE(Flip.supportsDomain(AbstractDomainKind::Box));
  EXPECT_FALSE(Flip.supportsDomain(AbstractDomainKind::DisjunctsCapped));
}

//===----------------------------------------------------------------------===//
// The unified engine: Verifier flip verdicts ≡ the historical loop
//===----------------------------------------------------------------------===//

namespace {

/// A 16-row linearly separable set (same shape as LabelFlipTests.cpp):
/// wide margins make depth-1 flip proofs succeed.
Dataset separableDataset() {
  Dataset Data(DatasetSchema::uniform(1, FeatureKind::Real, 2));
  for (int I = 0; I < 16; ++I)
    Data.addRow({static_cast<float>(I)}, I < 8 ? 0u : 1u);
  return Data;
}

VerifierConfig flipConfig(unsigned Depth) {
  VerifierConfig Config;
  Config.Depth = Depth;
  Config.Domain = AbstractDomainKind::Disjuncts;
  Config.Threat = ThreatModelKind::LabelFlip;
  Config.Limits.TimeoutSeconds = 30.0;
  return Config;
}

} // namespace

TEST(UnifiedEngineTest, VerifierFlipVerdictsMatchTheWrapperLoop) {
  // The refactor's bit-identical claim: `Verifier::verify` with
  // Threat = LabelFlip and the pre-refactor entry point
  // (`verifyLabelFlipRobustness`, now a thin wrapper over the same
  // engine) agree on the verdict *and* every cost counter, across
  // random sets, the Figure 2 example, and the separable set.
  Rng R(0x7EA7);
  RandomDatasetSpec Spec;
  Spec.MaxRows = 9;
  for (int Trial = 0; Trial < 24; ++Trial) {
    Dataset Data = Trial == 0   ? figure2Dataset()
                   : Trial == 1 ? separableDataset()
                                : makeRandomDataset(R, Spec);
    std::vector<float> X(Data.numFeatures(), 2.0f);
    if (Trial > 1)
      X = makeRandomQuery(R, Spec);
    unsigned Depth = 1 + static_cast<unsigned>(R.uniformInt(2));
    uint32_t Budget = static_cast<uint32_t>(R.uniformInt(3));

    Verifier V(Data);
    Certificate Cert = V.verify(X.data(), Budget, flipConfig(Depth));

    LabelFlipConfig Wrapper;
    Wrapper.Depth = Depth;
    LabelFlipResult Loop = verifyLabelFlipRobustness(
        V.context(), allRows(Data), X.data(), Budget, Wrapper);

    ASSERT_EQ(Cert.Kind == VerdictKind::Robust, Loop.Robust)
        << "trial " << Trial << " depth " << Depth << " n " << Budget;
    EXPECT_EQ(Cert.ConcretePrediction, Loop.ConcretePrediction);
    EXPECT_EQ(Cert.NumTerminals, Loop.NumTerminals);
    EXPECT_EQ(Cert.PeakDisjuncts, Loop.PeakDisjuncts);
    if (Cert.isRobust()) {
      ASSERT_TRUE(Cert.DominatingClass.has_value());
      EXPECT_EQ(*Cert.DominatingClass, Loop.DominatingClass);
    }
  }
}

TEST(UnifiedEngineTest, FlipCertificateRecordsItsThreatModel) {
  Dataset Data = separableDataset();
  Verifier V(Data);
  const float X[] = {2.0f};

  Certificate Flip = V.verify(X, 1, flipConfig(1));
  ASSERT_EQ(Flip.Kind, VerdictKind::Robust);
  EXPECT_EQ(Flip.Threat, ThreatModelKind::LabelFlip);
  EXPECT_EQ(Flip.CertifiedRadius, 1u);
  EXPECT_NE(Flip.summary().find("flip"), std::string::npos);

  VerifierConfig RemovalConfig = flipConfig(1);
  RemovalConfig.Threat = ThreatModelKind::Removal;
  Certificate Removal = V.verify(X, 1, RemovalConfig);
  EXPECT_EQ(Removal.Threat, ThreatModelKind::Removal);
  EXPECT_NE(Removal.summary().find("removal"), std::string::npos);
}

TEST(UnifiedEngineTest, EngineFlipProofsAreSoundAgainstEnumeration) {
  // Robust through the unified entry point ⇒ exhaustive relabeling
  // agrees — the end-to-end soundness property, now stated against
  // `Verifier` rather than the historical loop.
  Rng R(0xF11B);
  unsigned Proven = 0;
  for (int Trial = 0; Trial < 16; ++Trial) {
    unsigned Rows = 12 + static_cast<unsigned>(R.uniformInt(4));
    unsigned Boundary = 5 + static_cast<unsigned>(R.uniformInt(4));
    Dataset Data(DatasetSchema::uniform(1, FeatureKind::Real, 2));
    for (unsigned I = 0; I < Rows; ++I)
      Data.addRow({static_cast<float>(I)}, I < Boundary ? 0u : 1u);
    Verifier V(Data);
    float X = R.bernoulli(0.5) ? static_cast<float>(Boundary - 4)
                               : static_cast<float>(Boundary + 3);
    unsigned Depth = 1;
    Certificate Cert = V.verify(&X, 1, flipConfig(Depth));
    if (!Cert.isRobust())
      continue;
    ++Proven;
    FlipEnumerationResult Oracle =
        verifyByFlipEnumeration(V.context(), allRows(Data), &X, 1, Depth);
    EXPECT_TRUE(Oracle.Robust)
        << "engine flip proof contradicted by enumeration (boundary="
        << Boundary << ", rows=" << Rows << ", x=" << X << ")";
    EXPECT_EQ(*Cert.DominatingClass, Oracle.OriginalPrediction);
  }
  EXPECT_GT(Proven, 0u);
}

//===----------------------------------------------------------------------===//
// Store-key partitioning: certificates never cross threat models
//===----------------------------------------------------------------------===//

namespace {

Certificate makeRobustCert(ThreatModelKind Threat, uint32_t Radius) {
  Certificate Cert;
  Cert.Kind = VerdictKind::Robust;
  Cert.PoisoningBudget = Radius;
  Cert.CertifiedRadius = Radius;
  Cert.Depth = 1;
  Cert.Domain = AbstractDomainKind::Disjuncts;
  Cert.Threat = Threat;
  Cert.ConcretePrediction = 0;
  Cert.DominatingClass = 0;
  return Cert;
}

} // namespace

TEST(ThreatPartitionTest, RemovalCertificateNeverAnswersFlipQuery) {
  Dataset Data = separableDataset();
  Verifier V(Data);
  const float X[] = {2.0f};
  CertCache Cache(/*MaxBytes=*/0);

  VerifierConfig Removal = flipConfig(1);
  Removal.Threat = ThreatModelKind::Removal;
  VerifierConfig Flip = flipConfig(1);

  Cache.store(V.fingerprint(), X, 1, 3, Removal,
              makeRobustCert(ThreatModelKind::Removal, 3));

  // Control: the same-model exact and range probes do serve.
  Certificate Out;
  EXPECT_TRUE(Cache.lookup(V.fingerprint(), X, 1, 3, Removal, Out));
  EXPECT_TRUE(Cache.lookup(V.fingerprint(), X, 1, 1, Removal, Out));
  EXPECT_EQ(Out.Threat, ThreatModelKind::Removal);

  // The property: a flip query misses at the exact radius and at every
  // radius the removal proof would range-serve within its own model.
  for (uint32_t N = 1; N <= 3; ++N)
    EXPECT_FALSE(Cache.lookup(V.fingerprint(), X, 1, N, Flip, Out))
        << "removal@3 leaked into a flip query at n=" << N;
}

TEST(ThreatPartitionTest, FlipCertificateNeverAnswersRemovalQuery) {
  Dataset Data = separableDataset();
  Verifier V(Data);
  const float X[] = {2.0f};
  CertCache Cache(/*MaxBytes=*/0);

  VerifierConfig Removal = flipConfig(1);
  Removal.Threat = ThreatModelKind::Removal;
  VerifierConfig Flip = flipConfig(1);

  Cache.store(V.fingerprint(), X, 1, 3, Flip,
              makeRobustCert(ThreatModelKind::LabelFlip, 3));

  Certificate Out;
  EXPECT_TRUE(Cache.lookup(V.fingerprint(), X, 1, 2, Flip, Out));
  EXPECT_EQ(Out.Threat, ThreatModelKind::LabelFlip);
  EXPECT_EQ(Out.CertifiedRadius, 3u);

  for (uint32_t N = 1; N <= 3; ++N)
    EXPECT_FALSE(Cache.lookup(V.fingerprint(), X, 1, N, Removal, Out))
        << "flip@3 leaked into a removal query at n=" << N;
}

TEST(ThreatPartitionTest, VerifierWriteThroughKeysPerModel) {
  // The production write path (not hand-built certificates): one cache,
  // both models verifying the same query. Each model's second query is a
  // hit; the counts prove neither model's entry answered the other.
  Dataset Data = separableDataset();
  Verifier V(Data);
  const float X[] = {2.0f};
  CertCache Cache(/*MaxBytes=*/0);

  VerifierConfig Removal = flipConfig(1);
  Removal.Threat = ThreatModelKind::Removal;
  Removal.Cache = &Cache;
  VerifierConfig Flip = flipConfig(1);
  Flip.Cache = &Cache;

  Certificate R1 = V.verify(X, 1, Removal);
  Certificate F1 = V.verify(X, 1, Flip);
  EXPECT_EQ(Cache.stats().Misses, 2u); // The flip query missed removal's.
  EXPECT_EQ(Cache.stats().Stores, 2u);

  Certificate R2 = V.verify(X, 1, Removal);
  Certificate F2 = V.verify(X, 1, Flip);
  EXPECT_EQ(Cache.stats().Hits, 2u);
  EXPECT_EQ(R2.Threat, ThreatModelKind::Removal);
  EXPECT_EQ(F2.Threat, ThreatModelKind::LabelFlip);
  EXPECT_EQ(R1.Kind, R2.Kind);
  EXPECT_EQ(F1.Kind, F2.Kind);
}

//===----------------------------------------------------------------------===//
// The greedy flip-attack search
//===----------------------------------------------------------------------===//

TEST(FlipAttackSearchTest, FoundAttackIsAConcreteWitness) {
  // Depth-0 majority 2-1: one flip of a majority row hands class 1 the
  // vote, so the greedy search must find a witness — and replaying its
  // flips through a concrete retraining must reproduce the claim.
  Dataset Data(DatasetSchema::uniform(1, FeatureKind::Real, 2));
  Data.addRow({0.0f}, 0);
  Data.addRow({1.0f}, 0);
  Data.addRow({2.0f}, 1);
  SplitContext Ctx(Data);
  float X = 0.0f;

  FlipAttackResult Attack =
      findLabelFlipAttack(Ctx, allRows(Data), &X, /*Budget=*/1, /*Depth=*/0);
  ASSERT_TRUE(Attack.Found);
  ASSERT_LE(Attack.Flips.size(), 1u);
  EXPECT_EQ(Attack.OriginalPrediction, 0u);

  Dataset Flipped = Data;
  for (const LabelFlip &Flip : Attack.Flips) {
    ASSERT_LT(Flip.Row, Data.numRows());
    ASSERT_NE(Flip.NewLabel, Data.label(Flip.Row));
    Flipped.setLabel(Flip.Row, Flip.NewLabel);
  }
  SplitContext FlippedCtx(Flipped);
  TraceResult Replay = runDTrace(FlippedCtx, allRows(Flipped), &X, 0);
  EXPECT_EQ(Replay.PredictedClass, Attack.FlippedPrediction);
  EXPECT_NE(Replay.PredictedClass, Attack.OriginalPrediction);
}

TEST(FlipAttackSearchTest, FlipsAreDistinctRowsWithinBudget) {
  Rng R(0xA77AC4);
  RandomDatasetSpec Spec;
  Spec.MaxRows = 10;
  for (int Trial = 0; Trial < 20; ++Trial) {
    Dataset Data = makeRandomDataset(R, Spec);
    SplitContext Ctx(Data);
    std::vector<float> X = makeRandomQuery(R, Spec);
    uint32_t Budget = 1 + static_cast<uint32_t>(R.uniformInt(3));
    FlipAttackResult Attack =
        findLabelFlipAttack(Ctx, allRows(Data), X.data(), Budget, 1);
    EXPECT_LE(Attack.Flips.size(), Budget);
    std::vector<uint32_t> Rows;
    for (const LabelFlip &Flip : Attack.Flips) {
      EXPECT_LT(Flip.Row, Data.numRows());
      EXPECT_LT(Flip.NewLabel, Data.numClasses());
      Rows.push_back(Flip.Row);
    }
    std::sort(Rows.begin(), Rows.end());
    EXPECT_EQ(std::adjacent_find(Rows.begin(), Rows.end()), Rows.end())
        << "attack relabeled the same row twice";
  }
}

TEST(FlipAttackSearchTest, NoAttackExistsInsideACertifiedBudget) {
  // Verifier and attacker meet in the middle: whenever the engine
  // *proves* flip robustness at n, the greedy search must come up empty
  // at the same budget (a found attack would be a soundness bug in one
  // of the two).
  Dataset Data = separableDataset();
  Verifier V(Data);
  const float X[] = {2.0f};
  Certificate Cert = V.verify(X, 1, flipConfig(1));
  ASSERT_EQ(Cert.Kind, VerdictKind::Robust);

  FlipAttackResult Attack =
      findLabelFlipAttack(V.context(), allRows(Data), X, 1, 1);
  EXPECT_FALSE(Attack.Found);
}
