//===- tests/ServingSoundnessPropertyTests.cpp - Served ≡ sound ---------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// Randomized property tests for the two cross-key serving rules: the
// radius-range lattice (Robust down, Unknown up; serving/StoreKey.h) and
// the removal-delta slack path (data/Fingerprint.h `DatasetLineage`).
// The one property that must never break, across all three abstract
// domains and both threat models (flips run Disjuncts only — the one
// domain the flip transformers are sound under):
//
//   whenever the store serves Robust, a fresh cache-less verification
//   of the same query says Robust too — and never the reverse
//   (a store must not conjure a proof verification cannot reproduce).
//
// A served Unknown is vacuously sound (it claims nothing), so only the
// Robust direction is a soundness property; the tests still run fresh
// verification on every served answer to catch a served-Robust /
// fresh-Unknown divergence from either rule.
//
//===----------------------------------------------------------------------===//

#include "serving/CertCache.h"
#include "serving/DiskCertStore.h"
#include "serving/NetServer.h"
#include "serving/Replicator.h"

#include "NetHarness.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <dirent.h>
#include <string>
#include <unistd.h>
#include <utility>

using namespace antidote;
using namespace antidote::testutil;

namespace {

/// One (domain, threat) cell of the property matrix.
using ServingParam = std::pair<AbstractDomainKind, ThreatModelKind>;

VerifierConfig paramConfig(const ServingParam &Param) {
  VerifierConfig Config;
  Config.Depth = 2;
  Config.Domain = Param.first;
  Config.Threat = Param.second;
  Config.DisjunctCap = 4;
  Config.Limits.TimeoutSeconds = 30.0;
  return Config;
}

/// Only deterministic verdicts participate in the property (a Timeout
/// would make the fresh reference itself unstable; the store never
/// holds one anyway).
bool deterministic(VerdictKind Kind) {
  return Kind == VerdictKind::Robust || Kind == VerdictKind::Unknown ||
         Kind == VerdictKind::ResourceLimit;
}

/// A throwaway store directory for the replication property (flat:
/// LOCK + segments + journal).
class TempStoreDir {
public:
  TempStoreDir() {
    char Template[] = "/tmp/antidote-soundness-repl-XXXXXX";
    const char *Made = mkdtemp(Template);
    EXPECT_NE(Made, nullptr);
    Dir = Made ? Made : "";
  }
  ~TempStoreDir() {
    if (Dir.empty())
      return;
    if (DIR *D = opendir(Dir.c_str())) {
      while (struct dirent *Entry = readdir(D)) {
        std::string Name = Entry->d_name;
        if (Name != "." && Name != "..")
          ::unlink((Dir + "/" + Name).c_str());
      }
      closedir(D);
    }
    ::rmdir(Dir.c_str());
  }

  const std::string &path() const { return Dir; }

private:
  std::string Dir;
};

} // namespace

class ServingSoundnessProperty
    : public ::testing::TestWithParam<ServingParam> {};

// Seed the store with a fresh proof at one radius, query every other
// radius: whatever the range rule serves must agree with fresh
// verification on the Robust direction. Budgets nest under both threat
// models, so the range lattice applies per model unchanged.
TEST_P(ServingSoundnessProperty, RangeServedRobustImpliesFreshRobust) {
  Rng R(0xA57C0DE + static_cast<uint64_t>(GetParam().first) * 7 +
        static_cast<uint64_t>(GetParam().second) * 131);
  RandomDatasetSpec Spec;
  VerifierConfig Fresh = paramConfig(GetParam());

  for (int Trial = 0; Trial < 12; ++Trial) {
    Dataset Train = makeRandomDataset(R, Spec);
    Verifier V(Train);
    std::vector<float> X = makeRandomQuery(R, Spec);

    CertCache Cache(/*MaxBytes=*/0);
    VerifierConfig Cached = paramConfig(GetParam());
    Cached.Cache = &Cache;

    uint32_t SeedRadius = 1 + static_cast<uint32_t>(R.uniformInt(4));
    Certificate SeedCert = V.verify(X.data(), SeedRadius, Cached);
    if (!deterministic(SeedCert.Kind))
      continue;

    for (uint32_t N = 1; N <= 6; ++N) {
      Certificate Served;
      if (!Cache.lookup(V.fingerprint(), X.data(), Train.numFeatures(), N,
                        Cached, Served))
        continue;
      Certificate Reference = V.verify(X.data(), N, Fresh);
      if (!deterministic(Reference.Kind))
        continue;
      EXPECT_EQ(Served.PoisoningBudget, N);
      if (Served.Kind == VerdictKind::Robust) {
        EXPECT_EQ(Reference.Kind, VerdictKind::Robust)
            << "unsound range serve: trial " << Trial << " seed radius "
            << SeedRadius << " (" << SeedCert.CertifiedRadius
            << ") query " << N;
      }
      // And the reverse inclusion the lattice promises: any budget the
      // seed proof covers must actually be served.
      if (SeedCert.Kind == VerdictKind::Robust && N <= SeedRadius) {
        EXPECT_EQ(Served.Kind, VerdictKind::Robust);
      }
    }
  }
}

// Random removal deltas: serve the child from the parent's store with
// n + RowsRemoved slack, then check every served Robust against a fresh
// child verification. Under the flip model the slack rule does not apply
// (a relabeled child set is not contained in any parent flip set), so the
// same setup additionally pins that no parent proof leaks through: every
// flip answer must be a fresh child verification or a same-fingerprint
// range serve, never a certificate at the parent's widened radius.
TEST_P(ServingSoundnessProperty, SlackServedRobustImpliesFreshRobust) {
  Rng R(0xDE17A + static_cast<uint64_t>(GetParam().first) * 7 +
        static_cast<uint64_t>(GetParam().second) * 131);
  RandomDatasetSpec Spec;
  Spec.MinRows = 6; // Leave rows to remove.
  VerifierConfig Fresh = paramConfig(GetParam());

  for (int Trial = 0; Trial < 12; ++Trial) {
    Dataset Parent = makeRandomDataset(R, Spec);
    Verifier PV(Parent);
    std::vector<float> X = makeRandomQuery(R, Spec);

    CertCache Cache(/*MaxBytes=*/0);
    VerifierConfig Cached = paramConfig(GetParam());
    Cached.Cache = &Cache;

    // Stock the parent's entries at a few radii (fresh verifications
    // write through), so the slack consult has proofs to find.
    for (uint32_t SeedRadius = 1; SeedRadius <= 4; ++SeedRadius)
      PV.verify(X.data(), SeedRadius, Cached);

    // Child: one or two rows removed at random positions.
    Dataset Child = Parent;
    Child.markLineage();
    unsigned Removals = 1 + static_cast<unsigned>(R.uniformInt(2));
    for (unsigned I = 0; I < Removals && Child.numRows() > 1; ++I)
      Child.removeRow(
          static_cast<unsigned>(R.uniformInt(Child.numRows())));
    Verifier CV(Child);
    CV.setLineage(lineageSinceMark(PV.fingerprint(), Child));

    for (uint32_t N = 1; N <= 3; ++N) {
      Certificate Served = CV.verify(X.data(), N, Cached);
      Certificate Reference = CV.verify(X.data(), N, Fresh);
      if (!deterministic(Served.Kind) || !deterministic(Reference.Kind))
        continue;
      if (Served.Kind == VerdictKind::Robust) {
        EXPECT_EQ(Reference.Kind, VerdictKind::Robust)
            << "unsound slack serve: trial " << Trial << " removals "
            << Removals << " budget " << N << " served radius "
            << Served.CertifiedRadius;
        // Flip queries must never be answered from the parent's widened
        // radius — the slack gate is Removal-only. In this ascending
        // loop the only Robust sources a flip query has are its own
        // fresh runs, so a wider served radius can only be a leak.
        if (GetParam().second == ThreatModelKind::LabelFlip) {
          EXPECT_EQ(Served.CertifiedRadius, N)
              << "parent certificate slack-served a flip query";
        }
      }
    }
  }
}

// The wire is not a third serving rule, but it is a third place to get
// one wrong: the network tier decodes, admits, submits ticketed (its own
// token, deadline, completion callback), and re-encodes every
// certificate. Random traffic through a real socket — repeats (the
// range path), mixed budgets, occasional near-zero deadlines (the
// timeout path) — must uphold the same property: a wire Robust implies
// a fresh cache-less Robust. Everything else (Unknown, Timeout,
// ResourceLimit) claims nothing.
TEST_P(ServingSoundnessProperty, WireServedRobustImpliesFreshRobust) {
  Rng R(0x3E7A11 + static_cast<uint64_t>(GetParam().first) * 7 +
        static_cast<uint64_t>(GetParam().second) * 131);
  RandomDatasetSpec Spec;
  VerifierConfig Fresh = paramConfig(GetParam());

  for (int Trial = 0; Trial < 4; ++Trial) {
    Dataset Train = makeRandomDataset(R, Spec);
    CertServerConfig Config;
    Config.Query = paramConfig(GetParam());
    Config.Jobs = 2;
    CertServer Server(Train, Config);
    NetServer Net(Server, NetServerConfig());
    std::string Error;
    ASSERT_TRUE(Net.start(Error)) << Error;

    testharness::NetClient Client(Net.port());
    ASSERT_TRUE(Client.connected());

    // Pipeline a mixed batch: few distinct points so repeats (and the
    // range rule underneath them) occur often.
    std::vector<std::vector<float>> Points;
    for (int I = 0; I < 4; ++I)
      Points.push_back(makeRandomQuery(R, Spec));
    std::vector<std::pair<std::vector<float>, uint32_t>> Sent;
    constexpr uint64_t NumQueries = 16;
    for (uint64_t Tag = 0; Tag < NumQueries; ++Tag) {
      const std::vector<float> &X =
          Points[static_cast<size_t>(R.uniformInt(Points.size()))];
      uint32_t N = 1 + static_cast<uint32_t>(R.uniformInt(4));
      uint32_t DeadlineMillis =
          R.bernoulli(0.25) ? 1 + static_cast<uint32_t>(R.uniformInt(5))
                            : 0;
      Sent.emplace_back(X, N);
      ASSERT_TRUE(Client.send(
          testharness::makeRequest(Tag, N, X, DeadlineMillis)));
    }

    for (uint64_t I = 0; I < NumQueries; ++I) {
      NetResponse Response;
      ASSERT_TRUE(Client.recvResponse(Response));
      ASSERT_EQ(Response.Status, NetStatus::Ok);
      ASSERT_LT(Response.Tag, Sent.size()); // Deadlines may reorder.
      const std::vector<float> &X = Sent[Response.Tag].first;
      uint32_t N = Sent[Response.Tag].second;
      EXPECT_EQ(Response.Cert.PoisoningBudget, N);
      if (Response.Cert.Kind != VerdictKind::Robust)
        continue;
      Certificate Reference = Server.verifier().verify(X.data(), N, Fresh);
      if (!deterministic(Reference.Kind))
        continue;
      EXPECT_EQ(Reference.Kind, VerdictKind::Robust)
          << "unsound wire serve: trial " << Trial << " tag "
          << Response.Tag << " budget " << N << " served radius "
          << Response.Cert.CertifiedRadius;
    }
    Net.stop();
  }
}

// Same property with the delta-slack path in the loop: the server is
// built on a child dataset whose lineage points at a parent whose
// certificates pre-stock the backing store. A wire Robust that was
// slack-served from the parent's widened radius must still be provable
// fresh on the child.
TEST_P(ServingSoundnessProperty, WireSlackServedRobustImpliesFreshRobust) {
  Rng R(0x3E7DE17A + static_cast<uint64_t>(GetParam().first) * 7 +
        static_cast<uint64_t>(GetParam().second) * 131);
  RandomDatasetSpec Spec;
  Spec.MinRows = 6; // Leave rows to remove.
  VerifierConfig Fresh = paramConfig(GetParam());

  for (int Trial = 0; Trial < 4; ++Trial) {
    Dataset Parent = makeRandomDataset(R, Spec);
    Verifier PV(Parent);
    std::vector<float> X = makeRandomQuery(R, Spec);

    // Parent proofs at radii 1-4, written through into the store the
    // child server will be backed by.
    CertCache Store(/*MaxBytes=*/0);
    VerifierConfig Stock = paramConfig(GetParam());
    Stock.Cache = &Store;
    for (uint32_t SeedRadius = 1; SeedRadius <= 4; ++SeedRadius)
      PV.verify(X.data(), SeedRadius, Stock);

    Dataset Child = Parent;
    Child.markLineage();
    unsigned Removals = 1 + static_cast<unsigned>(R.uniformInt(2));
    for (unsigned I = 0; I < Removals && Child.numRows() > 1; ++I)
      Child.removeRow(
          static_cast<unsigned>(R.uniformInt(Child.numRows())));

    CertServerConfig Config;
    Config.Query = paramConfig(GetParam());
    Config.Jobs = 2;
    Config.Store = &Store;
    Config.Lineage = lineageSinceMark(PV.fingerprint(), Child);
    CertServer Server(Child, Config);
    NetServer Net(Server, NetServerConfig());
    std::string Error;
    ASSERT_TRUE(Net.start(Error)) << Error;

    testharness::NetClient Client(Net.port());
    ASSERT_TRUE(Client.connected());
    // Strictly sequential, ascending budgets — exactly the inline
    // test's discipline, so at budget N no same-fingerprint proof wider
    // than N exists yet and the flip-leak check below stays meaningful.
    for (uint64_t Tag = 1; Tag <= 3; ++Tag) {
      ASSERT_TRUE(Client.send(testharness::makeRequest(
          Tag, static_cast<uint32_t>(Tag), X)));
      NetResponse Response;
      ASSERT_TRUE(Client.recvResponse(Response));
      ASSERT_EQ(Response.Status, NetStatus::Ok);
      ASSERT_EQ(Response.Tag, Tag);
      uint32_t N = static_cast<uint32_t>(Response.Tag);
      if (Response.Cert.Kind != VerdictKind::Robust)
        continue;
      Certificate Reference = Server.verifier().verify(X.data(), N, Fresh);
      if (!deterministic(Reference.Kind))
        continue;
      EXPECT_EQ(Reference.Kind, VerdictKind::Robust)
          << "unsound wire slack serve: trial " << Trial << " removals "
          << Removals << " budget " << N << " served radius "
          << Response.Cert.CertifiedRadius;
      // Flip cells must never see the parent's widened radius (the
      // slack gate is Removal-only) — same leak check as inline.
      if (GetParam().second == ThreatModelKind::LabelFlip) {
        EXPECT_EQ(Response.Cert.CertifiedRadius, N)
            << "parent certificate slack-served a flip query over wire";
      }
    }
    Net.stop();
    // stop() drops pending background re-verifications by design; the
    // server itself tears down next, before the stack-owned Store.
  }
}

// The replication pipeline in the loop: certificates proven on a source
// node cross a real socket into a replica store, and every
// replica-served answer must be the source's record byte for byte —
// Seconds included, which no re-verification could reproduce — while
// every replica-served Robust must still be provable fresh. A
// replication bug that altered even one payload byte would trip the
// checksum (skipped, counted), so the only way a wrong cert could be
// served is a hole in exactly this property.
TEST_P(ServingSoundnessProperty, ReplicaServedRobustImpliesFreshRobust) {
  Rng R(0x5EB1CA7E + static_cast<uint64_t>(GetParam().first) * 7 +
        static_cast<uint64_t>(GetParam().second) * 131);
  RandomDatasetSpec Spec;
  VerifierConfig Fresh = paramConfig(GetParam());

  for (int Trial = 0; Trial < 2; ++Trial) {
    Dataset Train = makeRandomDataset(R, Spec);
    Verifier V(Train);

    // Source node: disk store behind a NetServer whose socket also
    // answers journal polls.
    TempStoreDir SourceDir;
    DiskCertStore::OpenResult SourceOpen =
        DiskCertStore::open(SourceDir.path());
    ASSERT_TRUE(SourceOpen.ok()) << SourceOpen.Error;
    CertServerConfig ServerConfig;
    ServerConfig.Query = paramConfig(GetParam());
    ServerConfig.Jobs = 1;
    ServerConfig.Store = SourceOpen.Store.get();
    CertServer Server(Train, ServerConfig);
    NetServer Net(Server, NetServerConfig());
    std::string Error;
    ASSERT_TRUE(Net.start(Error)) << Error;

    // Seed the source with random (point, budget) proofs.
    VerifierConfig Seeding = paramConfig(GetParam());
    Seeding.Cache = SourceOpen.Store.get();
    std::vector<std::pair<std::vector<float>, uint32_t>> Seeded;
    std::vector<Certificate> SourceCerts;
    for (int I = 0; I < 6; ++I) {
      std::vector<float> X = makeRandomQuery(R, Spec);
      uint32_t N = 1 + static_cast<uint32_t>(R.uniformInt(3));
      Certificate Cert = V.verify(X.data(), N, Seeding);
      if (!deterministic(Cert.Kind))
        continue;
      Seeded.emplace_back(std::move(X), N);
      SourceCerts.push_back(Cert);
    }

    // Replica node: pull everything over the wire.
    TempStoreDir ReplicaDir;
    DiskCertStore::OpenResult ReplicaOpen =
        DiskCertStore::open(ReplicaDir.path());
    ASSERT_TRUE(ReplicaOpen.ok()) << ReplicaOpen.Error;
    ReplicatorConfig ReplConfig;
    ReplConfig.Port = Net.port();
    Replicator Repl(*ReplicaOpen.Store, ReplConfig);
    bool More = true;
    for (int Round = 0; More && Round < 64; ++Round)
      ASSERT_TRUE(Repl.pollOnce(More, Error)) << Error;
    ASSERT_FALSE(More);
    // Colliding random queries may be range-served on the source (no
    // new record), so the ground truth is the source's journal, not
    // the seed count.
    EXPECT_EQ(Repl.stats().Applied, SourceOpen.Store->stats().LiveRecords);
    EXPECT_EQ(Repl.stats().Corrupt, 0u);

    for (size_t I = 0; I < Seeded.size(); ++I) {
      const std::vector<float> &X = Seeded[I].first;
      uint32_t N = Seeded[I].second;
      Certificate Served;
      ASSERT_TRUE(ReplicaOpen.Store->lookup(V.fingerprint(), X.data(),
                                            Train.numFeatures(), N,
                                            Seeding, Served));
      const Certificate &Source = SourceCerts[I];
      EXPECT_EQ(Served.Kind, Source.Kind);
      EXPECT_EQ(Served.PoisoningBudget, Source.PoisoningBudget);
      EXPECT_EQ(Served.CertifiedRadius, Source.CertifiedRadius);
      EXPECT_EQ(Served.ConcretePrediction, Source.ConcretePrediction);
      EXPECT_EQ(Served.NumTerminals, Source.NumTerminals);
      EXPECT_EQ(Served.PeakDisjuncts, Source.PeakDisjuncts);
      EXPECT_EQ(Served.BestSplitCalls, Source.BestSplitCalls);
      EXPECT_EQ(Served.Seconds, Source.Seconds);
      if (Served.Kind != VerdictKind::Robust)
        continue;
      Certificate Reference = V.verify(X.data(), N, Fresh);
      if (!deterministic(Reference.Kind))
        continue;
      EXPECT_EQ(Reference.Kind, VerdictKind::Robust)
          << "unsound replica serve: trial " << Trial << " query " << I
          << " budget " << N;
    }
    Net.stop();
  }
}

INSTANTIATE_TEST_SUITE_P(
    DomainsAndThreats, ServingSoundnessProperty,
    ::testing::Values(
        ServingParam{AbstractDomainKind::Box, ThreatModelKind::Removal},
        ServingParam{AbstractDomainKind::Disjuncts, ThreatModelKind::Removal},
        ServingParam{AbstractDomainKind::DisjunctsCapped,
                     ThreatModelKind::Removal},
        // Flips run the one domain their transformers are sound under.
        ServingParam{AbstractDomainKind::Disjuncts,
                     ThreatModelKind::LabelFlip}));
