//===- tests/ServingSoundnessPropertyTests.cpp - Served ≡ sound ---------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// Randomized property tests for the two cross-key serving rules: the
// radius-range lattice (Robust down, Unknown up; serving/StoreKey.h) and
// the removal-delta slack path (data/Fingerprint.h `DatasetLineage`).
// The one property that must never break, across all three abstract
// domains:
//
//   whenever the store serves Robust, a fresh cache-less verification
//   of the same query says Robust too — and never the reverse
//   (a store must not conjure a proof verification cannot reproduce).
//
// A served Unknown is vacuously sound (it claims nothing), so only the
// Robust direction is a soundness property; the tests still run fresh
// verification on every served answer to catch a served-Robust /
// fresh-Unknown divergence from either rule.
//
//===----------------------------------------------------------------------===//

#include "serving/CertCache.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace antidote;
using namespace antidote::testutil;

namespace {

VerifierConfig domainConfig(AbstractDomainKind Domain) {
  VerifierConfig Config;
  Config.Depth = 2;
  Config.Domain = Domain;
  Config.DisjunctCap = 4;
  Config.Limits.TimeoutSeconds = 30.0;
  return Config;
}

/// Only deterministic verdicts participate in the property (a Timeout
/// would make the fresh reference itself unstable; the store never
/// holds one anyway).
bool deterministic(VerdictKind Kind) {
  return Kind == VerdictKind::Robust || Kind == VerdictKind::Unknown ||
         Kind == VerdictKind::ResourceLimit;
}

} // namespace

class ServingSoundnessProperty
    : public ::testing::TestWithParam<AbstractDomainKind> {};

// Seed the store with a fresh proof at one radius, query every other
// radius: whatever the range rule serves must agree with fresh
// verification on the Robust direction.
TEST_P(ServingSoundnessProperty, RangeServedRobustImpliesFreshRobust) {
  Rng R(0xA57C0DE + static_cast<uint64_t>(GetParam()));
  RandomDatasetSpec Spec;
  VerifierConfig Fresh = domainConfig(GetParam());

  for (int Trial = 0; Trial < 12; ++Trial) {
    Dataset Train = makeRandomDataset(R, Spec);
    Verifier V(Train);
    std::vector<float> X = makeRandomQuery(R, Spec);

    CertCache Cache(/*MaxBytes=*/0);
    VerifierConfig Cached = domainConfig(GetParam());
    Cached.Cache = &Cache;

    uint32_t SeedRadius = 1 + static_cast<uint32_t>(R.uniformInt(4));
    Certificate SeedCert = V.verify(X.data(), SeedRadius, Cached);
    if (!deterministic(SeedCert.Kind))
      continue;

    for (uint32_t N = 1; N <= 6; ++N) {
      Certificate Served;
      if (!Cache.lookup(V.fingerprint(), X.data(), Train.numFeatures(), N,
                        Cached, Served))
        continue;
      Certificate Reference = V.verify(X.data(), N, Fresh);
      if (!deterministic(Reference.Kind))
        continue;
      EXPECT_EQ(Served.PoisoningBudget, N);
      if (Served.Kind == VerdictKind::Robust) {
        EXPECT_EQ(Reference.Kind, VerdictKind::Robust)
            << "unsound range serve: trial " << Trial << " seed radius "
            << SeedRadius << " (" << SeedCert.CertifiedRadius
            << ") query " << N;
      }
      // And the reverse inclusion the lattice promises: any budget the
      // seed proof covers must actually be served.
      if (SeedCert.Kind == VerdictKind::Robust && N <= SeedRadius) {
        EXPECT_EQ(Served.Kind, VerdictKind::Robust);
      }
    }
  }
}

// Random removal deltas: serve the child from the parent's store with
// n + RowsRemoved slack, then check every served Robust against a fresh
// child verification.
TEST_P(ServingSoundnessProperty, SlackServedRobustImpliesFreshRobust) {
  Rng R(0xDE17A + static_cast<uint64_t>(GetParam()));
  RandomDatasetSpec Spec;
  Spec.MinRows = 6; // Leave rows to remove.
  VerifierConfig Fresh = domainConfig(GetParam());

  for (int Trial = 0; Trial < 12; ++Trial) {
    Dataset Parent = makeRandomDataset(R, Spec);
    Verifier PV(Parent);
    std::vector<float> X = makeRandomQuery(R, Spec);

    CertCache Cache(/*MaxBytes=*/0);
    VerifierConfig Cached = domainConfig(GetParam());
    Cached.Cache = &Cache;

    // Stock the parent's entries at a few radii (fresh verifications
    // write through), so the slack consult has proofs to find.
    for (uint32_t SeedRadius = 1; SeedRadius <= 4; ++SeedRadius)
      PV.verify(X.data(), SeedRadius, Cached);

    // Child: one or two rows removed at random positions.
    Dataset Child = Parent;
    Child.markLineage();
    unsigned Removals = 1 + static_cast<unsigned>(R.uniformInt(2));
    for (unsigned I = 0; I < Removals && Child.numRows() > 1; ++I)
      Child.removeRow(
          static_cast<unsigned>(R.uniformInt(Child.numRows())));
    Verifier CV(Child);
    CV.setLineage(lineageSinceMark(PV.fingerprint(), Child));

    for (uint32_t N = 1; N <= 3; ++N) {
      Certificate Served = CV.verify(X.data(), N, Cached);
      Certificate Reference = CV.verify(X.data(), N, Fresh);
      if (!deterministic(Served.Kind) || !deterministic(Reference.Kind))
        continue;
      if (Served.Kind == VerdictKind::Robust) {
        EXPECT_EQ(Reference.Kind, VerdictKind::Robust)
            << "unsound slack serve: trial " << Trial << " removals "
            << Removals << " budget " << N << " served radius "
            << Served.CertifiedRadius;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDomains, ServingSoundnessProperty,
                         ::testing::Values(AbstractDomainKind::Box,
                                           AbstractDomainKind::Disjuncts,
                                           AbstractDomainKind::DisjunctsCapped));
