//===- tests/ServingSoundnessPropertyTests.cpp - Served ≡ sound ---------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// Randomized property tests for the two cross-key serving rules: the
// radius-range lattice (Robust down, Unknown up; serving/StoreKey.h) and
// the removal-delta slack path (data/Fingerprint.h `DatasetLineage`).
// The one property that must never break, across all three abstract
// domains and both threat models (flips run Disjuncts only — the one
// domain the flip transformers are sound under):
//
//   whenever the store serves Robust, a fresh cache-less verification
//   of the same query says Robust too — and never the reverse
//   (a store must not conjure a proof verification cannot reproduce).
//
// A served Unknown is vacuously sound (it claims nothing), so only the
// Robust direction is a soundness property; the tests still run fresh
// verification on every served answer to catch a served-Robust /
// fresh-Unknown divergence from either rule.
//
//===----------------------------------------------------------------------===//

#include "serving/CertCache.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace antidote;
using namespace antidote::testutil;

namespace {

/// One (domain, threat) cell of the property matrix.
using ServingParam = std::pair<AbstractDomainKind, ThreatModelKind>;

VerifierConfig paramConfig(const ServingParam &Param) {
  VerifierConfig Config;
  Config.Depth = 2;
  Config.Domain = Param.first;
  Config.Threat = Param.second;
  Config.DisjunctCap = 4;
  Config.Limits.TimeoutSeconds = 30.0;
  return Config;
}

/// Only deterministic verdicts participate in the property (a Timeout
/// would make the fresh reference itself unstable; the store never
/// holds one anyway).
bool deterministic(VerdictKind Kind) {
  return Kind == VerdictKind::Robust || Kind == VerdictKind::Unknown ||
         Kind == VerdictKind::ResourceLimit;
}

} // namespace

class ServingSoundnessProperty
    : public ::testing::TestWithParam<ServingParam> {};

// Seed the store with a fresh proof at one radius, query every other
// radius: whatever the range rule serves must agree with fresh
// verification on the Robust direction. Budgets nest under both threat
// models, so the range lattice applies per model unchanged.
TEST_P(ServingSoundnessProperty, RangeServedRobustImpliesFreshRobust) {
  Rng R(0xA57C0DE + static_cast<uint64_t>(GetParam().first) * 7 +
        static_cast<uint64_t>(GetParam().second) * 131);
  RandomDatasetSpec Spec;
  VerifierConfig Fresh = paramConfig(GetParam());

  for (int Trial = 0; Trial < 12; ++Trial) {
    Dataset Train = makeRandomDataset(R, Spec);
    Verifier V(Train);
    std::vector<float> X = makeRandomQuery(R, Spec);

    CertCache Cache(/*MaxBytes=*/0);
    VerifierConfig Cached = paramConfig(GetParam());
    Cached.Cache = &Cache;

    uint32_t SeedRadius = 1 + static_cast<uint32_t>(R.uniformInt(4));
    Certificate SeedCert = V.verify(X.data(), SeedRadius, Cached);
    if (!deterministic(SeedCert.Kind))
      continue;

    for (uint32_t N = 1; N <= 6; ++N) {
      Certificate Served;
      if (!Cache.lookup(V.fingerprint(), X.data(), Train.numFeatures(), N,
                        Cached, Served))
        continue;
      Certificate Reference = V.verify(X.data(), N, Fresh);
      if (!deterministic(Reference.Kind))
        continue;
      EXPECT_EQ(Served.PoisoningBudget, N);
      if (Served.Kind == VerdictKind::Robust) {
        EXPECT_EQ(Reference.Kind, VerdictKind::Robust)
            << "unsound range serve: trial " << Trial << " seed radius "
            << SeedRadius << " (" << SeedCert.CertifiedRadius
            << ") query " << N;
      }
      // And the reverse inclusion the lattice promises: any budget the
      // seed proof covers must actually be served.
      if (SeedCert.Kind == VerdictKind::Robust && N <= SeedRadius) {
        EXPECT_EQ(Served.Kind, VerdictKind::Robust);
      }
    }
  }
}

// Random removal deltas: serve the child from the parent's store with
// n + RowsRemoved slack, then check every served Robust against a fresh
// child verification. Under the flip model the slack rule does not apply
// (a relabeled child set is not contained in any parent flip set), so the
// same setup additionally pins that no parent proof leaks through: every
// flip answer must be a fresh child verification or a same-fingerprint
// range serve, never a certificate at the parent's widened radius.
TEST_P(ServingSoundnessProperty, SlackServedRobustImpliesFreshRobust) {
  Rng R(0xDE17A + static_cast<uint64_t>(GetParam().first) * 7 +
        static_cast<uint64_t>(GetParam().second) * 131);
  RandomDatasetSpec Spec;
  Spec.MinRows = 6; // Leave rows to remove.
  VerifierConfig Fresh = paramConfig(GetParam());

  for (int Trial = 0; Trial < 12; ++Trial) {
    Dataset Parent = makeRandomDataset(R, Spec);
    Verifier PV(Parent);
    std::vector<float> X = makeRandomQuery(R, Spec);

    CertCache Cache(/*MaxBytes=*/0);
    VerifierConfig Cached = paramConfig(GetParam());
    Cached.Cache = &Cache;

    // Stock the parent's entries at a few radii (fresh verifications
    // write through), so the slack consult has proofs to find.
    for (uint32_t SeedRadius = 1; SeedRadius <= 4; ++SeedRadius)
      PV.verify(X.data(), SeedRadius, Cached);

    // Child: one or two rows removed at random positions.
    Dataset Child = Parent;
    Child.markLineage();
    unsigned Removals = 1 + static_cast<unsigned>(R.uniformInt(2));
    for (unsigned I = 0; I < Removals && Child.numRows() > 1; ++I)
      Child.removeRow(
          static_cast<unsigned>(R.uniformInt(Child.numRows())));
    Verifier CV(Child);
    CV.setLineage(lineageSinceMark(PV.fingerprint(), Child));

    for (uint32_t N = 1; N <= 3; ++N) {
      Certificate Served = CV.verify(X.data(), N, Cached);
      Certificate Reference = CV.verify(X.data(), N, Fresh);
      if (!deterministic(Served.Kind) || !deterministic(Reference.Kind))
        continue;
      if (Served.Kind == VerdictKind::Robust) {
        EXPECT_EQ(Reference.Kind, VerdictKind::Robust)
            << "unsound slack serve: trial " << Trial << " removals "
            << Removals << " budget " << N << " served radius "
            << Served.CertifiedRadius;
        // Flip queries must never be answered from the parent's widened
        // radius — the slack gate is Removal-only. In this ascending
        // loop the only Robust sources a flip query has are its own
        // fresh runs, so a wider served radius can only be a leak.
        if (GetParam().second == ThreatModelKind::LabelFlip) {
          EXPECT_EQ(Served.CertifiedRadius, N)
              << "parent certificate slack-served a flip query";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DomainsAndThreats, ServingSoundnessProperty,
    ::testing::Values(
        ServingParam{AbstractDomainKind::Box, ThreatModelKind::Removal},
        ServingParam{AbstractDomainKind::Disjuncts, ThreatModelKind::Removal},
        ServingParam{AbstractDomainKind::DisjunctsCapped,
                     ThreatModelKind::Removal},
        // Flips run the one domain their transformers are sound under.
        ServingParam{AbstractDomainKind::Disjuncts,
                     ThreatModelKind::LabelFlip}));
