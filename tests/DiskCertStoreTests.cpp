//===- tests/DiskCertStoreTests.cpp - Disk certificate store tests ------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// The persistence tier's core promises: a fresh process pointed at a warm
// store directory answers a previously-verified query from disk,
// byte-identical to the fresh verdict; a torn or corrupt record is
// *never served* (the crash-consistency test truncates a store at every
// byte offset and reopens it — the ASan CI job runs this too); format
// bumps invalidate old segments wholesale; compaction reclaims duplicate
// records without losing live ones; and the two-tier composition
// promotes disk hits into RAM.
//
//===----------------------------------------------------------------------===//

#include "serving/DiskCertStore.h"

#include "TestUtil.h"
#include "serving/CertCache.h"
#include "serving/TieredStore.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <dirent.h>
#include <fstream>
#include <sys/stat.h>
#include <unistd.h>

using namespace antidote;
using namespace antidote::testutil;

namespace {

/// A fresh store directory per test, recursively removed on teardown
/// (store directories are flat: LOCK + segments).
class TempStoreDir {
public:
  TempStoreDir() {
    char Template[] = "/tmp/antidote-store-test-XXXXXX";
    const char *Made = mkdtemp(Template);
    EXPECT_NE(Made, nullptr);
    Dir = Made ? Made : "";
  }
  ~TempStoreDir() {
    if (Dir.empty())
      return;
    if (DIR *D = opendir(Dir.c_str())) {
      while (struct dirent *Entry = readdir(D)) {
        std::string Name = Entry->d_name;
        if (Name != "." && Name != "..")
          ::unlink((Dir + "/" + Name).c_str());
      }
      closedir(D);
    }
    ::rmdir(Dir.c_str());
  }

  const std::string &path() const { return Dir; }
  std::string sub(const std::string &Name) const { return Dir + "/" + Name; }

private:
  std::string Dir;
};

/// Field-by-field certificate identity, `Seconds` included: a disk hit
/// returns the stored certificate verbatim.
void expectIdenticalCertificates(const Certificate &A, const Certificate &B) {
  EXPECT_EQ(A.Kind, B.Kind);
  EXPECT_EQ(A.PoisoningBudget, B.PoisoningBudget);
  EXPECT_EQ(A.CertifiedRadius, B.CertifiedRadius);
  EXPECT_EQ(A.Depth, B.Depth);
  EXPECT_EQ(A.Domain, B.Domain);
  EXPECT_EQ(A.ConcretePrediction, B.ConcretePrediction);
  EXPECT_EQ(A.DominatingClass, B.DominatingClass);
  EXPECT_EQ(A.NumTerminals, B.NumTerminals);
  EXPECT_EQ(A.PeakDisjuncts, B.PeakDisjuncts);
  EXPECT_EQ(A.PeakStateBytes, B.PeakStateBytes);
  EXPECT_EQ(A.BestSplitCalls, B.BestSplitCalls);
  EXPECT_EQ(A.Seconds, B.Seconds);
}

VerifierConfig makeConfig(AbstractDomainKind Domain) {
  VerifierConfig Config;
  Config.Depth = 2;
  Config.Domain = Domain;
  Config.DisjunctCap = 4;
  Config.Limits.TimeoutSeconds = 30.0;
  return Config;
}

std::unique_ptr<DiskCertStore> openOrDie(const std::string &Dir,
                                         const DiskCertStoreOptions &Options =
                                             {}) {
  DiskCertStore::OpenResult Opened = DiskCertStore::open(Dir, Options);
  EXPECT_TRUE(Opened.ok()) << Opened.Error;
  return std::move(Opened.Store);
}

std::vector<uint8_t> readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << Path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(In),
                              std::istreambuf_iterator<char>());
}

void writeFileBytes(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
  ASSERT_TRUE(Out.good()) << Path;
}

/// Record boundaries of one segment, parsed with format knowledge the
/// corruption tests need: each element is the offset of a record start;
/// the first record starts right after the 8-byte segment header.
struct RecordSpan {
  size_t Offset = 0; ///< Of the 16-byte record header.
  size_t Bytes = 0;  ///< Header + payload.
};

std::vector<RecordSpan> parseRecordSpans(const std::vector<uint8_t> &Segment) {
  std::vector<RecordSpan> Spans;
  size_t Offset = 8;
  while (Offset + 16 <= Segment.size()) {
    uint32_t PayloadBytes = 0;
    for (int I = 0; I < 4; ++I)
      PayloadBytes |= static_cast<uint32_t>(Segment[Offset + 4 + I])
                      << (8 * I);
    RecordSpan Span;
    Span.Offset = Offset;
    Span.Bytes = 16 + PayloadBytes;
    EXPECT_LE(Offset + Span.Bytes, Segment.size());
    Spans.push_back(Span);
    Offset += Span.Bytes;
  }
  EXPECT_EQ(Offset, Segment.size());
  return Spans;
}

} // namespace

//===----------------------------------------------------------------------===//
// Warm restart: cached ≡ fresh, across all three abstract domains
//===----------------------------------------------------------------------===//

class DiskStoreRestartTest
    : public ::testing::TestWithParam<AbstractDomainKind> {};

TEST_P(DiskStoreRestartTest, FreshProcessAnswersFromWarmDirByteIdentical) {
  TempStoreDir Dir;
  Dataset Train = figure2Dataset();
  VerifierConfig Config = makeConfig(GetParam());
  const float X[] = {9.5f};

  Certificate Cold;
  {
    // "Process one": verify against a cold store, then shut down.
    Verifier V(Train);
    std::unique_ptr<DiskCertStore> Store = openOrDie(Dir.path());
    Config.Cache = Store.get();
    Cold = V.verify(X, /*PoisoningBudget=*/2, Config);
    StoreStats Stats = Store->stats();
    EXPECT_EQ(Stats.Misses, 1u);
    EXPECT_EQ(Stats.Stores, 1u);
  }

  // "Process two": a fresh Verifier and a fresh store handle on the
  // same directory. The first query must be served from disk, verbatim —
  // `Seconds` included, which a re-verification could never reproduce.
  Verifier V(Train);
  std::unique_ptr<DiskCertStore> Store = openOrDie(Dir.path());
  EXPECT_EQ(Store->stats().LiveRecords, 1u);
  Config.Cache = Store.get();
  Certificate Warm = V.verify(X, /*PoisoningBudget=*/2, Config);
  StoreStats Stats = Store->stats();
  EXPECT_EQ(Stats.Hits, 1u);
  EXPECT_EQ(Stats.Misses, 0u);
  expectIdenticalCertificates(Cold, Warm);

  // And identical (Seconds aside) to a store-less verification: serving
  // from disk never changes an answer.
  VerifierConfig Fresh = makeConfig(GetParam());
  Certificate Reverified = V.verify(X, /*PoisoningBudget=*/2, Fresh);
  EXPECT_EQ(Warm.Kind, Reverified.Kind);
  EXPECT_EQ(Warm.ConcretePrediction, Reverified.ConcretePrediction);
  EXPECT_EQ(Warm.DominatingClass, Reverified.DominatingClass);
  EXPECT_EQ(Warm.NumTerminals, Reverified.NumTerminals);
  EXPECT_EQ(Warm.PeakDisjuncts, Reverified.PeakDisjuncts);
}

INSTANTIATE_TEST_SUITE_P(AllDomains, DiskStoreRestartTest,
                         ::testing::Values(AbstractDomainKind::Box,
                                           AbstractDomainKind::Disjuncts,
                                           AbstractDomainKind::DisjunctsCapped),
                         [](const auto &Info) {
                           switch (Info.param) {
                           case AbstractDomainKind::Box:
                             return "Box";
                           case AbstractDomainKind::Disjuncts:
                             return "Disjuncts";
                           case AbstractDomainKind::DisjunctsCapped:
                             return "DisjunctsCapped";
                           }
                           return "Unknown";
                         });

//===----------------------------------------------------------------------===//
// Key discipline and verdict discipline
//===----------------------------------------------------------------------===//

TEST(DiskCertStoreTest, DatasetMutationMissesViaFingerprint) {
  TempStoreDir Dir;
  Dataset Train = figure2Dataset();
  Dataset Mutated = figure2Dataset();
  Mutated.addRow({5.0f}, 1);

  std::unique_ptr<DiskCertStore> Store = openOrDie(Dir.path());
  VerifierConfig Config = makeConfig(AbstractDomainKind::Disjuncts);
  Config.Cache = Store.get();
  const float X[] = {9.5f};

  Verifier V(Train);
  V.verify(X, 2, Config);

  Verifier VMutated(Mutated);
  ASSERT_NE(V.fingerprint(), VMutated.fingerprint());
  VMutated.verify(X, 2, Config);

  StoreStats Stats = Store->stats();
  EXPECT_EQ(Stats.Hits, 0u);
  EXPECT_EQ(Stats.Misses, 2u);
  EXPECT_EQ(Stats.LiveRecords, 2u);
}

TEST(DiskCertStoreTest, NonDeterministicVerdictsAreNeverPersisted) {
  TempStoreDir Dir;
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  std::unique_ptr<DiskCertStore> Store = openOrDie(Dir.path());
  VerifierConfig Config = makeConfig(AbstractDomainKind::Disjuncts);
  const float X[] = {9.5f};

  // Defense in depth: even a store() call that bypasses Verifier's own
  // filter must decline a wall-clock-dependent verdict.
  Certificate TimedOut;
  TimedOut.Kind = VerdictKind::Timeout;
  Store->store(V.fingerprint(), X, 1, 2, Config, TimedOut);
  Certificate Cancelled;
  Cancelled.Kind = VerdictKind::Cancelled;
  Store->store(V.fingerprint(), X, 1, 2, Config, Cancelled);

  StoreStats Stats = Store->stats();
  EXPECT_EQ(Stats.Declined, 2u);
  EXPECT_EQ(Stats.Stores, 0u);
  EXPECT_EQ(Stats.LiveRecords, 0u);
}

TEST(DiskCertStoreTest, DuplicateStoreIsDeclinedNotAppended) {
  TempStoreDir Dir;
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  std::unique_ptr<DiskCertStore> Store = openOrDie(Dir.path());
  VerifierConfig Config = makeConfig(AbstractDomainKind::Box);
  Config.Cache = Store.get();
  const float X[] = {9.5f};
  Certificate Cold = V.verify(X, 2, Config);

  // A second offer for the same key (certificates are interchangeable)
  // must not grow the segment.
  Store->store(V.fingerprint(), X, 1, 2, Config, Cold);
  StoreStats Stats = Store->stats();
  EXPECT_EQ(Stats.Stores, 1u);
  EXPECT_EQ(Stats.DuplicatesDeclined, 1u);
  EXPECT_EQ(Stats.LiveRecords, 1u);
}

//===----------------------------------------------------------------------===//
// Corruption tolerance
//===----------------------------------------------------------------------===//

namespace {

/// Seeds a store with one Box certificate per query in \p Queries and
/// returns the store-less reference certificates (index-aligned).
std::vector<Certificate> seedStore(const std::string &Dir, Verifier &V,
                                   const std::vector<float> &Queries) {
  std::vector<Certificate> Expected;
  VerifierConfig Config = makeConfig(AbstractDomainKind::Box);
  std::unique_ptr<DiskCertStore> Store = openOrDie(Dir);
  Config.Cache = Store.get();
  for (float Q : Queries) {
    const float X[] = {Q};
    Expected.push_back(V.verify(X, /*PoisoningBudget=*/1, Config));
  }
  EXPECT_EQ(Store->stats().Stores, Queries.size());
  return Expected;
}

} // namespace

TEST(DiskCertStoreTest, ForeignNonDeterministicRecordIsNotServedBack) {
  // The write-side filter has a read-side twin: a record that *claims*
  // a Timeout verdict but carries a valid checksum (appended by buggy
  // or foreign tooling into a shared directory) must be dropped on
  // open, never served — a cached Timeout could contradict a fresh run.
  TempStoreDir Dir;
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  seedStore(Dir.path(), V, {9.5f});

  std::string Segment = Dir.sub("seg-000001.antcert");
  std::vector<uint8_t> Bytes = readFileBytes(Segment);
  std::vector<RecordSpan> Spans = parseRecordSpans(Bytes);
  ASSERT_EQ(Spans.size(), 1u);
  // Payload layout: 64 bytes of fixed key fields (threat byte included)
  // + one 4-byte query float, then the certificate starting with its
  // Kind byte.
  size_t PayloadOffset = Spans[0].Offset + 16;
  size_t KindOffset = PayloadOffset + 64 + 4;
  ASSERT_LT(KindOffset, Bytes.size());
  Bytes[KindOffset] = 2; // VerdictKind::Timeout.
  // Re-checksum (FNV-1a 64) so the record looks structurally intact.
  uint64_t H = 0xcbf29ce484222325ull;
  for (size_t I = PayloadOffset; I < Spans[0].Offset + Spans[0].Bytes; ++I) {
    H ^= Bytes[I];
    H *= 0x100000001b3ull;
  }
  for (int I = 0; I < 8; ++I)
    Bytes[Spans[0].Offset + 8 + I] = static_cast<uint8_t>(H >> (8 * I));
  writeFileBytes(Segment, Bytes);

  std::unique_ptr<DiskCertStore> Store = openOrDie(Dir.path());
  EXPECT_EQ(Store->stats().LiveRecords, 0u);
  EXPECT_EQ(Store->stats().CorruptSkipped, 1u);
  VerifierConfig Config = makeConfig(AbstractDomainKind::Box);
  Certificate Out;
  const float X[] = {9.5f};
  EXPECT_FALSE(Store->lookup(V.fingerprint(), X, 1, 1, Config, Out));
}

TEST(DiskCertStoreTest, CorruptRecordIsSkippedOthersIntact) {
  TempStoreDir Dir;
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  std::vector<float> Queries = {1.5f, 9.5f, 12.5f};
  std::vector<Certificate> Expected = seedStore(Dir.path(), V, Queries);

  // Flip one byte inside the *middle* record's payload.
  std::string Segment = Dir.sub("seg-000001.antcert");
  std::vector<uint8_t> Bytes = readFileBytes(Segment);
  std::vector<RecordSpan> Spans = parseRecordSpans(Bytes);
  ASSERT_EQ(Spans.size(), 3u);
  Bytes[Spans[1].Offset + 16 + 5] ^= 0xFF;
  writeFileBytes(Segment, Bytes);

  std::unique_ptr<DiskCertStore> Store = openOrDie(Dir.path());
  StoreStats Stats = Store->stats();
  EXPECT_EQ(Stats.CorruptSkipped, 1u);
  EXPECT_EQ(Stats.LiveRecords, 2u);

  VerifierConfig Config = makeConfig(AbstractDomainKind::Box);
  Config.Cache = Store.get();
  // Records 0 and 2 still hit, byte-identical; the corrupted one misses
  // (and re-verifies rather than serving garbage).
  const float X0[] = {Queries[0]}, X1[] = {Queries[1]}, X2[] = {Queries[2]};
  expectIdenticalCertificates(Expected[0], V.verify(X0, 1, Config));
  expectIdenticalCertificates(Expected[2], V.verify(X2, 1, Config));
  EXPECT_EQ(Store->stats().Hits, 2u);
  Certificate Reverified = V.verify(X1, 1, Config);
  EXPECT_EQ(Store->stats().Misses, 1u);
  EXPECT_EQ(Reverified.Kind, Expected[1].Kind);
}

// The ISSUE's crash-consistency gate (the ASan matrix job runs this
// too): truncate the segment at *every* byte offset — simulating a
// crash mid-append at any point — and assert reopen never returns a
// wrong certificate: records wholly before the cut still hit verbatim,
// everything after it misses, and nothing crashes or leaks.
TEST(DiskCertStoreTest, TruncationAtEveryOffsetNeverServesWrongCertificate) {
  TempStoreDir SeedDir;
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  std::vector<float> Queries = {1.5f, 3.5f, 9.5f, 12.5f};
  std::vector<Certificate> Expected = seedStore(SeedDir.path(), V, Queries);

  std::vector<uint8_t> Bytes =
      readFileBytes(SeedDir.sub("seg-000001.antcert"));
  std::vector<RecordSpan> Spans = parseRecordSpans(Bytes);
  ASSERT_EQ(Spans.size(), Queries.size());

  VerifierConfig Probe = makeConfig(AbstractDomainKind::Box);
  for (size_t Cut = 0; Cut <= Bytes.size(); ++Cut) {
    TempStoreDir Dir;
    writeFileBytes(Dir.sub("seg-000001.antcert"),
                   std::vector<uint8_t>(Bytes.begin(), Bytes.begin() + Cut));
    std::unique_ptr<DiskCertStore> Store = openOrDie(Dir.path());
    ASSERT_NE(Store, nullptr) << "cut at " << Cut;
    for (size_t I = 0; I < Queries.size(); ++I) {
      const float X[] = {Queries[I]};
      Certificate Out;
      bool Hit = Store->lookup(V.fingerprint(), X, 1, /*PoisoningBudget=*/1,
                               Probe, Out);
      bool WholeRecordSurvived = Spans[I].Offset + Spans[I].Bytes <= Cut;
      EXPECT_EQ(Hit, WholeRecordSurvived)
          << "cut at " << Cut << ", record " << I;
      if (Hit)
        expectIdenticalCertificates(Expected[I], Out);
    }
  }
}

TEST(DiskCertStoreTest, PostOpenCorruptionDegradesToMissNotWrongCert) {
  // `lookup` re-reads the payload from disk on every hit, so corruption
  // that lands *after* the open-time scan — in the certificate bytes,
  // where the full-key compare cannot see it — must still be caught by
  // the checksum kept in the index and degrade to a miss.
  TempStoreDir Dir;
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  seedStore(Dir.path(), V, {9.5f});

  std::unique_ptr<DiskCertStore> Store = openOrDie(Dir.path());
  EXPECT_EQ(Store->stats().LiveRecords, 1u);

  // Flip a byte in the certificate region (past the 64-byte fixed key
  // fields + one 4-byte query float) while the store handle is live.
  std::string Segment = Dir.sub("seg-000001.antcert");
  std::vector<uint8_t> Bytes = readFileBytes(Segment);
  std::vector<RecordSpan> Spans = parseRecordSpans(Bytes);
  ASSERT_EQ(Spans.size(), 1u);
  size_t CertByte = Spans[0].Offset + 16 + 64 + 4 + 2;
  ASSERT_LT(CertByte, Bytes.size());
  Bytes[CertByte] ^= 0xFF;
  writeFileBytes(Segment, Bytes);

  VerifierConfig Config = makeConfig(AbstractDomainKind::Box);
  Certificate Out;
  const float X[] = {9.5f};
  EXPECT_FALSE(Store->lookup(V.fingerprint(), X, 1, 1, Config, Out));
  EXPECT_GE(Store->stats().CorruptSkipped, 1u);
  EXPECT_EQ(Store->stats().Hits, 0u);
}

TEST(DiskCertStoreTest, TornTailIsRepairedAndAppendsStayReachable) {
  TempStoreDir Dir;
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  std::vector<float> Queries = {1.5f, 9.5f};
  std::vector<Certificate> Expected = seedStore(Dir.path(), V, Queries);

  // Tear the last record in half — a crash mid-append.
  std::string Segment = Dir.sub("seg-000001.antcert");
  std::vector<uint8_t> Bytes = readFileBytes(Segment);
  std::vector<RecordSpan> Spans = parseRecordSpans(Bytes);
  size_t Cut = Spans[1].Offset + Spans[1].Bytes / 2;
  writeFileBytes(Segment,
                 std::vector<uint8_t>(Bytes.begin(), Bytes.begin() + Cut));

  // Reopen repairs the tail, then a new append lands after the repair
  // and must be reachable by the *next* open (a scan stops at the first
  // bad boundary, so appending after garbage would strand it).
  {
    std::unique_ptr<DiskCertStore> Store = openOrDie(Dir.path());
    EXPECT_EQ(Store->stats().LiveRecords, 1u);
    EXPECT_GE(Store->stats().CorruptSkipped, 1u);
    VerifierConfig Config = makeConfig(AbstractDomainKind::Box);
    Config.Cache = Store.get();
    const float X[] = {12.5f};
    V.verify(X, 1, Config);
    EXPECT_EQ(Store->stats().Stores, 1u);
  }
  std::unique_ptr<DiskCertStore> Store = openOrDie(Dir.path());
  EXPECT_EQ(Store->stats().LiveRecords, 2u);
  VerifierConfig Config = makeConfig(AbstractDomainKind::Box);
  Config.Cache = Store.get();
  const float X0[] = {1.5f}, X2[] = {12.5f};
  expectIdenticalCertificates(Expected[0], V.verify(X0, 1, Config));
  V.verify(X2, 1, Config);
  EXPECT_EQ(Store->stats().Hits, 2u);
}

//===----------------------------------------------------------------------===//
// Versioning, compaction, rotation, multi-handle sharing
//===----------------------------------------------------------------------===//

TEST(DiskCertStoreTest, FormatVersionBumpInvalidatesWholeSegment) {
  TempStoreDir Dir;
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  seedStore(Dir.path(), V, {1.5f, 9.5f});

  // Rewrite the segment header's version field: simulates records laid
  // down by a future (or past) format.
  std::string Segment = Dir.sub("seg-000001.antcert");
  std::vector<uint8_t> Bytes = readFileBytes(Segment);
  Bytes[4] = static_cast<uint8_t>(DiskCertStore::FormatVersion + 1);
  writeFileBytes(Segment, Bytes);

  // Auto-compaction off: this test pins the *skip* behavior; the
  // reclaim-on-open path has its own tests below.
  DiskCertStoreOptions NoAuto;
  NoAuto.AutoCompactDeadFraction = 0;
  std::unique_ptr<DiskCertStore> Store = openOrDie(Dir.path(), NoAuto);
  StoreStats Stats = Store->stats();
  EXPECT_EQ(Stats.StaleSegments, 1u);
  EXPECT_EQ(Stats.LiveRecords, 0u);
  EXPECT_EQ(Stats.Segments, 0u);

  // New writes must route to a fresh segment, never append behind the
  // foreign-format one, and the next open must see them.
  VerifierConfig Config = makeConfig(AbstractDomainKind::Box);
  Config.Cache = Store.get();
  const float X[] = {9.5f};
  Certificate Cold = V.verify(X, 1, Config);
  EXPECT_EQ(Store->stats().Stores, 1u);
  Store.reset();

  Store = openOrDie(Dir.path(), NoAuto);
  EXPECT_EQ(Store->stats().LiveRecords, 1u);
  Config.Cache = Store.get();
  Certificate Warm = V.verify(X, 1, Config);
  EXPECT_EQ(Store->stats().Hits, 1u);
  expectIdenticalCertificates(Cold, Warm);
}

TEST(DiskCertStoreTest, AutoCompactOnOpenReclaimsStaleSegments) {
  // A format bump leaves the directory dominated by dead bytes; the
  // default options reclaim them on the very next open instead of
  // waiting for an explicit compact().
  TempStoreDir Dir;
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  seedStore(Dir.path(), V, {1.5f, 9.5f});

  std::string Segment = Dir.sub("seg-000001.antcert");
  std::vector<uint8_t> Bytes = readFileBytes(Segment);
  Bytes[4] = static_cast<uint8_t>(DiskCertStore::FormatVersion + 1);
  writeFileBytes(Segment, Bytes);

  // The whole directory is dead (fraction 1.0 > default 0.5): open
  // compacts, unlinking the stale segment.
  std::unique_ptr<DiskCertStore> Store = openOrDie(Dir.path());
  StoreStats Stats = Store->stats();
  EXPECT_EQ(Stats.StaleSegments, 1u);
  EXPECT_EQ(Stats.LiveRecords, 0u);
  EXPECT_EQ(Stats.Compactions, 1u);
  struct stat St;
  EXPECT_NE(::stat(Segment.c_str(), &St), 0); // Stale file reclaimed.
}

TEST(DiskCertStoreTest, AutoCompactThresholdGatesTheTrigger) {
  // One corrupt record out of three is ~1/3 dead: a threshold above
  // that must not trigger, one below it must — and live records
  // survive either way.
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  auto SeedAndCorrupt = [&](const std::string &Dir) {
    seedStore(Dir, V, {1.5f, 9.5f, 12.5f});
    std::string Segment = Dir + "/seg-000001.antcert";
    std::vector<uint8_t> Bytes = readFileBytes(Segment);
    std::vector<RecordSpan> Spans = parseRecordSpans(Bytes);
    ASSERT_EQ(Spans.size(), 3u);
    Bytes[Spans[1].Offset + 16 + 5] ^= 0xFF;
    writeFileBytes(Segment, Bytes);
  };

  {
    TempStoreDir Dir;
    SeedAndCorrupt(Dir.path());
    DiskCertStoreOptions High;
    High.AutoCompactDeadFraction = 0.9; // Above ~1/3 dead: no trigger.
    std::unique_ptr<DiskCertStore> Store = openOrDie(Dir.path(), High);
    EXPECT_EQ(Store->stats().Compactions, 0u);
    EXPECT_EQ(Store->stats().LiveRecords, 2u);
  }
  {
    TempStoreDir Dir;
    SeedAndCorrupt(Dir.path());
    DiskCertStoreOptions Low;
    Low.AutoCompactDeadFraction = 0.1; // Below ~1/3 dead: triggers.
    std::unique_ptr<DiskCertStore> Store = openOrDie(Dir.path(), Low);
    StoreStats Stats = Store->stats();
    EXPECT_EQ(Stats.Compactions, 1u);
    EXPECT_EQ(Stats.LiveRecords, 2u);
    EXPECT_EQ(Stats.Segments, 1u);

    // The surviving records still serve, byte-identical, from the
    // compacted segment — through this handle and a cold reopen.
    VerifierConfig Config = makeConfig(AbstractDomainKind::Box);
    Config.Cache = Store.get();
    const float X0[] = {1.5f}, X2[] = {12.5f};
    V.verify(X0, 1, Config);
    V.verify(X2, 1, Config);
    EXPECT_EQ(Store->stats().Hits, 2u);
    Store.reset();
    Store = openOrDie(Dir.path());
    EXPECT_EQ(Store->stats().LiveRecords, 2u);
  }
}

TEST(DiskCertStoreTest, CompactionDropsDuplicatesAndStaleSegments) {
  TempStoreDir Dir;
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  VerifierConfig Config = makeConfig(AbstractDomainKind::Box);
  const float X[] = {9.5f}, Y[] = {1.5f};

  // Sibling handles no longer race a duplicate in (the journal
  // generation check refreshes the second handle's index on its miss),
  // so plant the duplicate at the byte level — exactly what a writer
  // that crashed between append and journal sync can leave behind: a
  // valid, checksummed record for a key that is already indexed.
  std::unique_ptr<DiskCertStore> A = openOrDie(Dir.path());
  Config.Cache = A.get();
  Certificate Cold = V.verify(X, 1, Config);
  V.verify(Y, 1, Config);
  A.reset();
  {
    std::string Segment = Dir.sub("seg-000001.antcert");
    std::vector<uint8_t> Bytes = readFileBytes(Segment);
    std::vector<RecordSpan> Spans = parseRecordSpans(Bytes);
    ASSERT_EQ(Spans.size(), 2u);
    std::vector<uint8_t> Copy(Bytes.begin() + Spans[0].Offset,
                              Bytes.begin() + Spans[0].Offset +
                                  Spans[0].Bytes);
    Bytes.insert(Bytes.end(), Copy.begin(), Copy.end());
    writeFileBytes(Segment, Bytes);
  }

  std::unique_ptr<DiskCertStore> Store = openOrDie(Dir.path());
  EXPECT_EQ(Store->stats().DuplicateRecords, 1u);
  EXPECT_EQ(Store->stats().LiveRecords, 2u);
  // The duplicate occupies file bytes without being indexed; compaction
  // must shrink the *files* (LiveBytes never counted it).
  uint64_t FileBytesBefore =
      readFileBytes(Dir.sub("seg-000001.antcert")).size();

  std::string Error;
  ASSERT_TRUE(Store->compact(&Error)) << Error;
  StoreStats Stats = Store->stats();
  EXPECT_EQ(Stats.Compactions, 1u);
  EXPECT_EQ(Stats.CompactionRecordsDropped, 1u);
  EXPECT_EQ(Stats.LiveRecords, 2u);
  EXPECT_EQ(Stats.Segments, 1u);
  EXPECT_EQ(Stats.DuplicateRecords, 0u);
  EXPECT_LT(readFileBytes(Dir.sub("seg-000002.antcert")).size(),
            FileBytesBefore);

  // Still serving, still byte-identical — through this handle and a
  // fresh open.
  Config.Cache = Store.get();
  expectIdenticalCertificates(Cold, V.verify(X, 1, Config));
  Store.reset();
  Store = openOrDie(Dir.path());
  EXPECT_EQ(Store->stats().LiveRecords, 2u);
  EXPECT_EQ(Store->stats().DuplicateRecords, 0u);
  Config.Cache = Store.get();
  expectIdenticalCertificates(Cold, V.verify(X, 1, Config));
}

TEST(DiskCertStoreTest, CompactionPreservesRecordsFromSiblingHandles) {
  TempStoreDir Dir;
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  VerifierConfig Config = makeConfig(AbstractDomainKind::Box);
  const float X[] = {9.5f}, Y[] = {1.5f};

  // A opens the empty directory; B then appends two certificates A's
  // index has never seen (and, with a tiny rotation budget, a whole
  // segment A does not know exists). A's compaction is a
  // directory-wide rewrite: it must carry B's records over, not
  // destroy them.
  std::unique_ptr<DiskCertStore> A = openOrDie(Dir.path());
  DiskCertStoreOptions Tiny;
  Tiny.MaxSegmentBytes = 1; // B rotates every record into a new segment.
  std::unique_ptr<DiskCertStore> B = openOrDie(Dir.path(), Tiny);
  Config.Cache = B.get();
  Certificate CertX = V.verify(X, 1, Config);
  Certificate CertY = V.verify(Y, 1, Config);
  ASSERT_EQ(B->stats().Stores, 2u);
  B.reset();

  std::string Error;
  ASSERT_TRUE(A->compact(&Error)) << Error;
  EXPECT_EQ(A->stats().LiveRecords, 2u);
  EXPECT_EQ(A->stats().CompactionRecordsDropped, 0u);
  Config.Cache = A.get();
  expectIdenticalCertificates(CertX, V.verify(X, 1, Config));
  expectIdenticalCertificates(CertY, V.verify(Y, 1, Config));
  EXPECT_EQ(A->stats().Hits, 2u);

  // And a fresh open sees exactly the compacted segment.
  A.reset();
  std::unique_ptr<DiskCertStore> C = openOrDie(Dir.path());
  EXPECT_EQ(C->stats().LiveRecords, 2u);
  EXPECT_EQ(C->stats().Segments, 1u);
}

TEST(DiskCertStoreTest, AppendsSurviveSiblingCompaction) {
  TempStoreDir Dir;
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  VerifierConfig Config = makeConfig(AbstractDomainKind::Box);
  const float X[] = {9.5f}, Y[] = {1.5f};

  // B appends, then A compacts (unlinking the segment B's append fd
  // still points at). B's next append must detect the unlinked inode
  // and rotate — writing through the stale fd would "succeed" into an
  // inode that vanishes with the last close.
  std::unique_ptr<DiskCertStore> A = openOrDie(Dir.path());
  std::unique_ptr<DiskCertStore> B = openOrDie(Dir.path());
  Config.Cache = B.get();
  Certificate CertX = V.verify(X, 1, Config);
  std::string Error;
  ASSERT_TRUE(A->compact(&Error)) << Error;
  Certificate CertY = V.verify(Y, 1, Config);
  EXPECT_EQ(B->stats().Stores, 2u);
  A.reset();
  B.reset();

  std::unique_ptr<DiskCertStore> C = openOrDie(Dir.path());
  EXPECT_EQ(C->stats().LiveRecords, 2u);
  Config.Cache = C.get();
  expectIdenticalCertificates(CertX, V.verify(X, 1, Config));
  expectIdenticalCertificates(CertY, V.verify(Y, 1, Config));
  EXPECT_EQ(C->stats().Hits, 2u);
}

TEST(DiskCertStoreTest, SegmentsRotateUnderMaxSegmentBytes) {
  TempStoreDir Dir;
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  DiskCertStoreOptions Options;
  Options.MaxSegmentBytes = 1; // Every record rotates to a new segment.
  std::unique_ptr<DiskCertStore> Store = openOrDie(Dir.path(), Options);
  VerifierConfig Config = makeConfig(AbstractDomainKind::Box);
  Config.Cache = Store.get();
  for (float Q : {1.5f, 9.5f, 12.5f}) {
    const float X[] = {Q};
    V.verify(X, 1, Config);
  }
  EXPECT_EQ(Store->stats().Segments, 3u);
  EXPECT_EQ(Store->stats().LiveRecords, 3u);

  // A reopen sees all segments; compaction folds them into one.
  Store.reset();
  Store = openOrDie(Dir.path(), Options);
  EXPECT_EQ(Store->stats().Segments, 3u);
  EXPECT_EQ(Store->stats().LiveRecords, 3u);
  std::string Error;
  ASSERT_TRUE(Store->compact(&Error)) << Error;
  EXPECT_EQ(Store->stats().Segments, 1u);
  EXPECT_EQ(Store->stats().LiveRecords, 3u);
  Config.Cache = Store.get();
  const float X[] = {9.5f};
  V.verify(X, 1, Config);
  EXPECT_EQ(Store->stats().Hits, 1u);
}

TEST(DiskCertStoreTest, UnwritableDirectoryFailsOpenWithClearError) {
  DiskCertStore::OpenResult Opened =
      DiskCertStore::open("/proc/antidote-definitely-not-writable/store");
  EXPECT_FALSE(Opened.ok());
  EXPECT_FALSE(Opened.Error.empty());
  EXPECT_EQ(Opened.Store, nullptr);
}

//===----------------------------------------------------------------------===//
// The two-tier composition
//===----------------------------------------------------------------------===//

TEST(TieredStoreTest, DiskHitIsPromotedToRam) {
  TempStoreDir Dir;
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  VerifierConfig Config = makeConfig(AbstractDomainKind::Disjuncts);
  const float X[] = {9.5f};

  // Process one: write-through seeds both tiers.
  Certificate Cold;
  {
    CertCache Ram(/*MaxBytes=*/0);
    std::unique_ptr<DiskCertStore> Disk = openOrDie(Dir.path());
    TieredStore Tiered(&Ram, Disk.get());
    Config.Cache = &Tiered;
    Cold = V.verify(X, 2, Config);
    StoreStats Stats = Tiered.stats();
    EXPECT_EQ(Stats.Misses, 1u);
    EXPECT_EQ(Ram.stats().Stores, 1u);
    EXPECT_EQ(Disk->stats().Stores, 1u);
  }

  // Process two: RAM is empty, disk is warm. First repeat hits disk and
  // is promoted; the second repeat must hit RAM without touching disk.
  CertCache Ram(/*MaxBytes=*/0);
  std::unique_ptr<DiskCertStore> Disk = openOrDie(Dir.path());
  TieredStore Tiered(&Ram, Disk.get());
  Config.Cache = &Tiered;

  Certificate FirstRepeat = V.verify(X, 2, Config);
  expectIdenticalCertificates(Cold, FirstRepeat);
  StoreStats Stats = Tiered.stats();
  EXPECT_EQ(Stats.DiskHits, 1u);
  EXPECT_EQ(Stats.RamHits, 0u);
  EXPECT_EQ(Ram.stats().Stores, 1u); // The promotion.

  Certificate SecondRepeat = V.verify(X, 2, Config);
  expectIdenticalCertificates(Cold, SecondRepeat);
  Stats = Tiered.stats();
  EXPECT_EQ(Stats.RamHits, 1u);
  EXPECT_EQ(Stats.DiskHits, 1u);          // Unchanged.
  EXPECT_EQ(Disk->stats().Hits, 1u);      // Disk untouched by the repeat.
  // The disk tier declined nothing and appended nothing extra: the
  // promotion is RAM-only, write-through happened once.
  EXPECT_EQ(Disk->stats().Stores, 0u);
  EXPECT_EQ(Disk->stats().LiveRecords, 1u);
}

TEST(TieredStoreTest, RamEvictionFallsBackToDiskAndRepromotes) {
  TempStoreDir Dir;
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  // A RAM tier too small for any entry: every store declines, every
  // lookup falls through — the disk tier alone must keep serving.
  CertCache Ram(/*MaxBytes=*/1);
  std::unique_ptr<DiskCertStore> Disk = openOrDie(Dir.path());
  TieredStore Tiered(&Ram, Disk.get());
  VerifierConfig Config = makeConfig(AbstractDomainKind::Box);
  Config.Cache = &Tiered;
  const float X[] = {9.5f};

  Certificate Cold = V.verify(X, 1, Config);
  Certificate Warm = V.verify(X, 1, Config);
  expectIdenticalCertificates(Cold, Warm);
  StoreStats Stats = Tiered.stats();
  EXPECT_EQ(Stats.Misses, 1u);
  EXPECT_EQ(Stats.DiskHits, 1u);
  EXPECT_EQ(Stats.RamHits, 0u);
  EXPECT_EQ(Ram.stats().Declined, 2u); // Write-through + promotion.
}

TEST(TieredStoreTest, ConcurrentBatchWorkersShareBothTiers) {
  // The TSan CI job runs this: four pool workers hammering one tiered
  // store — RAM probes, disk appends under the flock, promotions —
  // must stay race-free, and every served certificate must match a
  // store-less verification in every deterministic field.
  Rng R(77);
  RandomDatasetSpec Spec;
  Spec.MinRows = 8;
  Spec.MaxRows = 12;
  Dataset Train = makeRandomDataset(R, Spec);
  Verifier V(Train);

  TempStoreDir Dir;
  CertCache Ram(/*MaxBytes=*/4096); // Small: concurrent RAM evictions.
  std::unique_ptr<DiskCertStore> Disk = openOrDie(Dir.path());
  TieredStore Tiered(&Ram, Disk.get());
  VerifierConfig Config = makeConfig(AbstractDomainKind::Disjuncts);
  Config.Cache = &Tiered;

  std::vector<std::vector<float>> Points;
  for (int I = 0; I < 16; ++I)
    Points.push_back(makeRandomQuery(R, Spec));
  std::vector<const float *> Inputs;
  for (int Round = 0; Round < 3; ++Round)
    for (const auto &P : Points)
      Inputs.push_back(P.data());

  std::unique_ptr<ThreadPool> Pool = makeVerificationPool(4);
  std::vector<Certificate> Certs =
      V.verifyBatch(Inputs, 2, Config, Pool.get());

  VerifierConfig Fresh = makeConfig(AbstractDomainKind::Disjuncts);
  for (size_t I = 0; I < Inputs.size(); ++I) {
    Certificate Expected = V.verify(Inputs[I], 2, Fresh);
    EXPECT_EQ(Certs[I].Kind, Expected.Kind) << "query " << I;
    EXPECT_EQ(Certs[I].ConcretePrediction, Expected.ConcretePrediction);
    EXPECT_EQ(Certs[I].NumTerminals, Expected.NumTerminals);
    EXPECT_EQ(Certs[I].PeakDisjuncts, Expected.PeakDisjuncts);
  }
  StoreStats Stats = Tiered.stats();
  EXPECT_EQ(Stats.RamHits + Stats.DiskHits + Stats.Misses, Inputs.size());
  EXPECT_GE(Stats.Misses, 16u); // At least one cold run per point.
  // Every distinct point is on disk exactly once (duplicate offers from
  // racing workers were declined, not appended).
  EXPECT_EQ(Disk->stats().LiveRecords, 16u);

  // And a restart serves all 16 from disk.
  Disk.reset();
  Disk = openOrDie(Dir.path());
  EXPECT_EQ(Disk->stats().LiveRecords, 16u);
  Config.Cache = Disk.get();
  for (const auto &P : Points)
    V.verify(P.data(), 2, Config);
  EXPECT_EQ(Disk->stats().Hits, 16u);
}

TEST(TieredStoreTest, DegradesToSingleTierWhenOneIsAbsent) {
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  VerifierConfig Config = makeConfig(AbstractDomainKind::Box);
  const float X[] = {9.5f};

  // RAM-only tiering behaves like the plain cache.
  CertCache Ram(/*MaxBytes=*/0);
  TieredStore RamOnly(&Ram, nullptr);
  Config.Cache = &RamOnly;
  Certificate Cold = V.verify(X, 1, Config);
  expectIdenticalCertificates(Cold, V.verify(X, 1, Config));
  EXPECT_EQ(RamOnly.stats().RamHits, 1u);

  // Disk-only tiering still serves across handles.
  TempStoreDir Dir;
  std::unique_ptr<DiskCertStore> Disk = openOrDie(Dir.path());
  TieredStore DiskOnly(nullptr, Disk.get());
  Config.Cache = &DiskOnly;
  Certificate DiskCold = V.verify(X, 1, Config);
  expectIdenticalCertificates(DiskCold, V.verify(X, 1, Config));
  EXPECT_EQ(DiskOnly.stats().DiskHits, 1u);
}

//===----------------------------------------------------------------------===//
// Radius-range lookup across restarts: the serving lattice on disk
//===----------------------------------------------------------------------===//

namespace {

/// A synthetic *original* proof at \p Radius (`CertifiedRadius` equals
/// the key's budget, so the record joins the range index on load).
Certificate makeProof(VerdictKind Kind, uint32_t Radius) {
  Certificate Cert;
  Cert.Kind = Kind;
  Cert.PoisoningBudget = Radius;
  Cert.CertifiedRadius = Radius;
  Cert.NumTerminals = 1;
  return Cert;
}

DatasetFingerprint someFingerprint() {
  DatasetFingerprint FP;
  FP.Hi = 0x1234;
  FP.Lo = 0x5678;
  return FP;
}

} // namespace

TEST(DiskStoreRangeTest, ColdProcessAnswersNarrowerBudgetViaRange) {
  TempStoreDir Dir;
  VerifierConfig Config = makeConfig(AbstractDomainKind::Disjuncts);
  DatasetFingerprint FP = someFingerprint();
  const float X[] = {1.0f};

  // Process one proves Robust at radius 5 and exits.
  {
    std::unique_ptr<DiskCertStore> Store = openOrDie(Dir.path());
    Store->store(FP, X, 1, 5, Config, makeProof(VerdictKind::Robust, 5));
  }

  // Process two never saw that query: the rebuilt index must serve the
  // narrower budget from the persisted proof, radius intact (the v2
  // payload round-trips CertifiedRadius).
  std::unique_ptr<DiskCertStore> Store = openOrDie(Dir.path());
  Certificate Out;
  ASSERT_TRUE(Store->lookup(FP, X, 1, 3, Config, Out));
  EXPECT_EQ(Out.Kind, VerdictKind::Robust);
  EXPECT_EQ(Out.PoisoningBudget, 3u);
  EXPECT_EQ(Out.CertifiedRadius, 5u);
  EXPECT_EQ(Store->stats().RangeHits, 1u);

  // The exact budget is a plain hit; wider than the proof is a miss.
  ASSERT_TRUE(Store->lookup(FP, X, 1, 5, Config, Out));
  EXPECT_EQ(Out.CertifiedRadius, 5u);
  EXPECT_FALSE(Store->lookup(FP, X, 1, 6, Config, Out));
  StoreStats Stats = Store->stats();
  EXPECT_EQ(Stats.Hits, 1u);
  EXPECT_EQ(Stats.Misses, 1u);
}

TEST(DiskStoreRangeTest, UnknownServesWiderBudgetAcrossRestart) {
  TempStoreDir Dir;
  VerifierConfig Config = makeConfig(AbstractDomainKind::Disjuncts);
  DatasetFingerprint FP = someFingerprint();
  const float X[] = {1.0f};
  {
    std::unique_ptr<DiskCertStore> Store = openOrDie(Dir.path());
    Store->store(FP, X, 1, 2, Config, makeProof(VerdictKind::Unknown, 2));
  }

  std::unique_ptr<DiskCertStore> Store = openOrDie(Dir.path());
  Certificate Out;
  ASSERT_TRUE(Store->lookup(FP, X, 1, 4, Config, Out));
  EXPECT_EQ(Out.Kind, VerdictKind::Unknown);
  EXPECT_EQ(Out.PoisoningBudget, 4u);
  EXPECT_EQ(Out.CertifiedRadius, 2u);
  EXPECT_FALSE(Store->lookup(FP, X, 1, 1, Config, Out));
}

TEST(DiskStoreRangeTest, CompactionRebuildsTheRangeIndex) {
  TempStoreDir Dir;
  VerifierConfig Config = makeConfig(AbstractDomainKind::Disjuncts);
  DatasetFingerprint FP = someFingerprint();
  const float X[] = {1.0f};
  std::unique_ptr<DiskCertStore> Store = openOrDie(Dir.path());
  Store->store(FP, X, 1, 5, Config, makeProof(VerdictKind::Robust, 5));
  Store->store(FP, X, 1, 8, Config, makeProof(VerdictKind::Unknown, 8));

  std::string Error;
  ASSERT_TRUE(Store->compact(&Error)) << Error;

  Certificate Out;
  ASSERT_TRUE(Store->lookup(FP, X, 1, 3, Config, Out));
  EXPECT_EQ(Out.Kind, VerdictKind::Robust);
  EXPECT_EQ(Out.CertifiedRadius, 5u);
  ASSERT_TRUE(Store->lookup(FP, X, 1, 9, Config, Out));
  EXPECT_EQ(Out.Kind, VerdictKind::Unknown);
  EXPECT_EQ(Out.CertifiedRadius, 8u);

  // And again from a cold open of the compacted directory.
  std::unique_ptr<DiskCertStore> Reopened = openOrDie(Dir.path());
  ASSERT_TRUE(Reopened->lookup(FP, X, 1, 3, Config, Out));
  EXPECT_EQ(Out.CertifiedRadius, 5u);
}

TEST(DiskStoreRangeTest, OffBudgetRecordServesExactOnly) {
  TempStoreDir Dir;
  VerifierConfig Config = makeConfig(AbstractDomainKind::Disjuncts);
  DatasetFingerprint FP = someFingerprint();
  const float X[] = {1.0f};
  std::unique_ptr<DiskCertStore> Store = openOrDie(Dir.path());

  // A record whose radius differs from its key's budget (what a
  // promoted range-served answer would look like if it were ever
  // written through) must not join the range index.
  Certificate Promoted = makeProof(VerdictKind::Robust, 5);
  Promoted.PoisoningBudget = 3;
  Store->store(FP, X, 1, 3, Config, Promoted);

  Certificate Out;
  EXPECT_FALSE(Store->lookup(FP, X, 1, 2, Config, Out));
  ASSERT_TRUE(Store->lookup(FP, X, 1, 3, Config, Out));
  EXPECT_EQ(Out.CertifiedRadius, 5u);
  EXPECT_EQ(Store->stats().RangeHits, 0u);

  // Same discipline after a cold reload of the segment.
  Store.reset();
  std::unique_ptr<DiskCertStore> Reopened = openOrDie(Dir.path());
  EXPECT_FALSE(Reopened->lookup(FP, X, 1, 2, Config, Out));
}

TEST(TieredStoreTest, DiskRangeHitPromotesAsExactOnly) {
  TempStoreDir Dir;
  VerifierConfig Config = makeConfig(AbstractDomainKind::Disjuncts);
  DatasetFingerprint FP = someFingerprint();
  const float X[] = {1.0f};
  std::unique_ptr<DiskCertStore> Disk = openOrDie(Dir.path());
  Disk->store(FP, X, 1, 5, Config, makeProof(VerdictKind::Robust, 5));

  CertCache Ram(/*MaxBytes=*/0);
  TieredStore Tiered(&Ram, Disk.get());

  // RAM misses, disk range-serves, the answer is promoted under the
  // queried budget 3.
  Certificate Out;
  ASSERT_TRUE(Tiered.lookup(FP, X, 1, 3, Config, Out));
  EXPECT_EQ(Out.CertifiedRadius, 5u);
  EXPECT_EQ(Disk->stats().RangeHits, 1u);
  EXPECT_EQ(Ram.stats().Stores, 1u);

  // Exact repeats of budget 3 now hit RAM...
  ASSERT_TRUE(Tiered.lookup(FP, X, 1, 3, Config, Out));
  EXPECT_EQ(Ram.stats().Hits, 1u);
  EXPECT_EQ(Disk->stats().RangeHits, 1u);

  // ...but the promoted copy (radius 5 under budget 3) stayed out of
  // the RAM range index: budget 2 falls through to the disk tier's
  // original proof instead of being served twice over from RAM.
  ASSERT_TRUE(Tiered.lookup(FP, X, 1, 2, Config, Out));
  EXPECT_EQ(Out.CertifiedRadius, 5u);
  EXPECT_EQ(Ram.stats().RangeHits, 0u);
  EXPECT_EQ(Disk->stats().RangeHits, 2u);
}

TEST(DiskCertStoreTest, RetentionEvictsOldestSegmentsButNeverTheOpenOne) {
  TempStoreDir Dir;
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  VerifierConfig Config = makeConfig(AbstractDomainKind::Box);

  // One record per segment (a record plus the segment header is ~152
  // bytes; rotating past 160 isolates each append), with room for two
  // closed segments plus the open one in the byte budget.
  DiskCertStoreOptions Options;
  Options.MaxSegmentBytes = 160;
  Options.RetentionBytes = 320;
  std::unique_ptr<DiskCertStore> Store = openOrDie(Dir.path(), Options);
  Config.Cache = Store.get();

  std::vector<float> Queries = {1.5f, 4.5f, 9.5f, 12.5f};
  Certificate Last;
  for (float Q : Queries) {
    const float X[] = {Q};
    Last = V.verify(X, /*PoisoningBudget=*/1, Config);
  }

  StoreStats Stats = Store->stats();
  EXPECT_GT(Stats.RetentionEvictedSegments, 0u);
  EXPECT_LT(Stats.LiveRecords, Queries.size());
  // Renumbering retires the old epoch so replicas full-resync instead
  // of silently skipping the evicted serials.
  EXPECT_GT(Stats.Epoch, 1u);

  // The newest record rode the open append segment, which retention
  // must never touch: it still serves, byte-identical.
  const float X[] = {Queries.back()};
  Certificate Out;
  ASSERT_TRUE(
      Store->lookup(V.fingerprint(), X, 1, 1, Config, Out));
  expectIdenticalCertificates(Last, Out);

  // The degenerate budget: every append overshoots one byte, yet the
  // record just written must survive its own store.
  TempStoreDir TinyDir;
  DiskCertStoreOptions Tiny;
  Tiny.MaxSegmentBytes = 160;
  Tiny.RetentionBytes = 1;
  std::unique_ptr<DiskCertStore> TinyStore = openOrDie(TinyDir.path(), Tiny);
  VerifierConfig TinyConfig = makeConfig(AbstractDomainKind::Box);
  TinyConfig.Cache = TinyStore.get();
  Certificate Fresh = V.verify(X, /*PoisoningBudget=*/1, TinyConfig);
  ASSERT_TRUE(
      TinyStore->lookup(V.fingerprint(), X, 1, 1, TinyConfig, Out));
  expectIdenticalCertificates(Fresh, Out);
  EXPECT_GE(TinyStore->stats().LiveRecords, 1u);
}

TEST(DiskCertStoreTest, ReadOnlyOpenServesBesideALiveWriter) {
  TempStoreDir Dir;
  Dataset Train = figure2Dataset();
  Verifier V(Train);
  VerifierConfig Config = makeConfig(AbstractDomainKind::Box);

  // The writer stays open — and keeps the writer flock — for the whole
  // test; a pure replica or diagnostic reader must not need it.
  std::unique_ptr<DiskCertStore> Writer = openOrDie(Dir.path());
  Config.Cache = Writer.get();
  const float X[] = {9.5f};
  Certificate Cold = V.verify(X, /*PoisoningBudget=*/2, Config);

  DiskCertStoreOptions ReadOnly;
  ReadOnly.ReadOnly = true;
  std::unique_ptr<DiskCertStore> Reader = openOrDie(Dir.path(), ReadOnly);
  ASSERT_NE(Reader, nullptr);

  Certificate Out;
  ASSERT_TRUE(Reader->lookup(V.fingerprint(), X, 1, 2, Config, Out));
  expectIdenticalCertificates(Cold, Out);

  // Writes decline (counted, not crashed), and compaction refuses:
  // both would mutate a directory this handle does not own.
  Reader->store(V.fingerprint(), X, 1, 3, Config, Cold);
  StoreStats Stats = Reader->stats();
  EXPECT_EQ(Stats.Stores, 0u);
  EXPECT_GE(Stats.Declined, 1u);
  std::string Error;
  EXPECT_FALSE(Reader->compact(&Error));
  EXPECT_FALSE(Error.empty());

  // A record the writer appends after the read-only open is picked up
  // on the reader's next miss via the journal generation check.
  const float Y[] = {1.5f};
  Certificate Later = V.verify(Y, /*PoisoningBudget=*/1, Config);
  Certificate Seen;
  ASSERT_TRUE(Reader->lookup(V.fingerprint(), Y, 1, 1, Config, Seen));
  expectIdenticalCertificates(Later, Seen);
  EXPECT_GE(Reader->stats().IndexRefreshes, 1u);
}
