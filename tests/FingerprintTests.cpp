//===- tests/FingerprintTests.cpp - Dataset fingerprint tests -----------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// The cache-soundness half of the serving layer: a certificate keyed on a
// fingerprint may only ever be replayed against the *identical* training
// set, so the fingerprint must be stable across rebuilds of equal content
// and must change under every certificate-relevant mutation — rows,
// labels, row order, and all schema metadata.
//
//===----------------------------------------------------------------------===//

#include "data/Fingerprint.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace antidote;
using namespace antidote::testutil;

namespace {

/// A small two-feature dataset rebuilt identically by every call.
Dataset baseDataset() {
  DatasetSchema Schema = DatasetSchema::uniform(2, FeatureKind::Real, 2);
  Dataset Data(Schema);
  Data.addRow({1.0f, 2.0f}, 0);
  Data.addRow({3.0f, 4.0f}, 1);
  Data.addRow({5.0f, 6.0f}, 0);
  return Data;
}

} // namespace

TEST(FingerprintTest, StableAcrossRebuilds) {
  EXPECT_EQ(fingerprintDataset(baseDataset()),
            fingerprintDataset(baseDataset()));
  EXPECT_EQ(fingerprintDataset(figure2Dataset()),
            fingerprintDataset(figure2Dataset()));
}

TEST(FingerprintTest, HexIsThirtyTwoDigits) {
  std::string Hex = fingerprintDataset(baseDataset()).hex();
  EXPECT_EQ(Hex.size(), 32u);
  EXPECT_EQ(Hex.find_first_not_of("0123456789abcdef"), std::string::npos);
}

TEST(FingerprintTest, FeatureValueMutationChangesFingerprint) {
  DatasetSchema Schema = DatasetSchema::uniform(2, FeatureKind::Real, 2);
  Dataset Mutated(Schema);
  Mutated.addRow({1.0f, 2.0f}, 0);
  Mutated.addRow({3.0f, 4.5f}, 1); // One value nudged.
  Mutated.addRow({5.0f, 6.0f}, 0);
  EXPECT_NE(fingerprintDataset(baseDataset()),
            fingerprintDataset(Mutated));
}

TEST(FingerprintTest, LabelMutationChangesFingerprint) {
  DatasetSchema Schema = DatasetSchema::uniform(2, FeatureKind::Real, 2);
  Dataset Mutated(Schema);
  Mutated.addRow({1.0f, 2.0f}, 0);
  Mutated.addRow({3.0f, 4.0f}, 0); // Label 1 -> 0.
  Mutated.addRow({5.0f, 6.0f}, 0);
  EXPECT_NE(fingerprintDataset(baseDataset()),
            fingerprintDataset(Mutated));
}

TEST(FingerprintTest, RowOrderChangesFingerprint) {
  // DTrace tie-breaking is row-order sensitive, so a permutation is a
  // different training set as far as certificates are concerned.
  DatasetSchema Schema = DatasetSchema::uniform(2, FeatureKind::Real, 2);
  Dataset Mutated(Schema);
  Mutated.addRow({3.0f, 4.0f}, 1);
  Mutated.addRow({1.0f, 2.0f}, 0);
  Mutated.addRow({5.0f, 6.0f}, 0);
  EXPECT_NE(fingerprintDataset(baseDataset()),
            fingerprintDataset(Mutated));
}

TEST(FingerprintTest, AddedRowChangesFingerprint) {
  Dataset Mutated = baseDataset();
  Mutated.addRow({7.0f, 8.0f}, 1);
  EXPECT_NE(fingerprintDataset(baseDataset()),
            fingerprintDataset(Mutated));
}

TEST(FingerprintTest, FeatureKindMetadataChangesFingerprint) {
  DatasetSchema RealSchema = DatasetSchema::uniform(1, FeatureKind::Real, 2);
  DatasetSchema BoolSchema =
      DatasetSchema::uniform(1, FeatureKind::Boolean, 2);
  Dataset RealData(RealSchema), BoolData(BoolSchema);
  RealData.addRow({1.0f}, 0);
  BoolData.addRow({1.0f}, 0);
  // Same bits, different predicate semantics (threshold enumeration vs a
  // single Boolean predicate) — must not share certificates.
  EXPECT_NE(fingerprintDataset(RealData), fingerprintDataset(BoolData));
}

TEST(FingerprintTest, ClassCountMetadataChangesFingerprint) {
  Dataset TwoClass(DatasetSchema::uniform(1, FeatureKind::Real, 2));
  Dataset ThreeClass(DatasetSchema::uniform(1, FeatureKind::Real, 3));
  TwoClass.addRow({1.0f}, 0);
  ThreeClass.addRow({1.0f}, 0);
  // The class count shapes cprob vectors even when no row uses the extra
  // class.
  EXPECT_NE(fingerprintDataset(TwoClass), fingerprintDataset(ThreeClass));
}

TEST(FingerprintTest, ClassNameMetadataChangesFingerprint) {
  DatasetSchema Named = DatasetSchema::uniform(1, FeatureKind::Real, 2);
  Named.ClassNames = {"white", "black"};
  DatasetSchema Renamed = Named;
  Renamed.ClassNames = {"white", "gray"};
  Dataset A{Named}, B{Renamed};
  A.addRow({1.0f}, 0);
  B.addRow({1.0f}, 0);
  EXPECT_NE(fingerprintDataset(A), fingerprintDataset(B));
}

TEST(FingerprintTest, SignedZeroIsDistinguished) {
  // Bit-pattern hashing: 0.0f and -0.0f compare equal as floats but are
  // different storage, and the identity guarantee is about storage.
  Dataset Pos(DatasetSchema::uniform(1, FeatureKind::Real, 2));
  Dataset Neg(DatasetSchema::uniform(1, FeatureKind::Real, 2));
  Pos.addRow({0.0f}, 0);
  Neg.addRow({-0.0f}, 0);
  EXPECT_NE(fingerprintDataset(Pos), fingerprintDataset(Neg));
}

TEST(FingerprintTest, RandomDatasetsRarelyCollide) {
  // Sanity over many small random datasets: no pairwise collisions. Not
  // a statistical claim — a regression canary for accidental constant
  // fingerprints or ignored fields.
  Rng R(1234);
  RandomDatasetSpec Spec;
  std::vector<DatasetFingerprint> Seen;
  for (int I = 0; I < 64; ++I) {
    DatasetFingerprint FP =
        fingerprintDataset(makeRandomDataset(R, Spec));
    for (const DatasetFingerprint &Prior : Seen)
      EXPECT_NE(FP, Prior);
    Seen.push_back(FP);
  }
}
