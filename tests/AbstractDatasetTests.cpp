//===- tests/AbstractDatasetTests.cpp - <T,n> domain unit tests ---------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "abstract/AbstractDataset.h"

#include "TestUtil.h"
#include "concrete/Gini.h"

#include <gtest/gtest.h>

using namespace antidote;
using namespace antidote::testutil;

namespace {

/// A 6-row dataset with easy-to-track labels for domain-operation tests.
Dataset smallDataset() {
  Dataset Data(DatasetSchema::uniform(1, FeatureKind::Real, 2));
  Data.addRow({0.0f}, 0);
  Data.addRow({1.0f}, 0);
  Data.addRow({2.0f}, 1);
  Data.addRow({3.0f}, 1);
  Data.addRow({4.0f}, 0);
  Data.addRow({5.0f}, 1);
  return Data;
}

} // namespace

TEST(AbstractDatasetTest, EntireIsPreciseInitialAbstraction) {
  Dataset Data = smallDataset();
  AbstractDataset A = AbstractDataset::entire(Data, 2);
  EXPECT_EQ(A.size(), 6u);
  EXPECT_EQ(A.budget(), 2u);
  EXPECT_EQ(A.counts()[0], 3u);
  EXPECT_EQ(A.counts()[1], 3u);
  EXPECT_FALSE(A.isEmptySet());
  EXPECT_FALSE(A.emptySetPossible());
  EXPECT_FALSE(A.isSingleClass());
  EXPECT_EQ(A.sizeInterval(), Interval(4.0, 6.0));
  EXPECT_EQ(A.str(), "<|T|=6, n=2>");
}

TEST(AbstractDatasetTest, BudgetClampedToSize) {
  Dataset Data = smallDataset();
  AbstractDataset A(Data, {0, 1}, 10);
  EXPECT_EQ(A.budget(), 2u);
  EXPECT_TRUE(A.emptySetPossible());
}

TEST(AbstractDatasetTest, ConcretizationMembership) {
  Dataset Data = smallDataset();
  AbstractDataset A(Data, {0, 1, 2, 3}, 2);
  EXPECT_TRUE(A.concretizationContains({0, 1, 2, 3})); // Zero removals.
  EXPECT_TRUE(A.concretizationContains({0, 3}));       // Two removals.
  EXPECT_FALSE(A.concretizationContains({0}));         // Three removals.
  EXPECT_FALSE(A.concretizationContains({0, 1, 4}));   // 4 not a subset row.
}

TEST(AbstractDatasetTest, Example43JoinSameRows) {
  // Example 4.3: ⟨T1, 2⟩ ⊔ ⟨T1, 3⟩ = ⟨T1, 3⟩.
  Dataset Data = smallDataset();
  AbstractDataset A(Data, {0, 1, 2, 3}, 2);
  AbstractDataset B(Data, {0, 1, 2, 3}, 3);
  AbstractDataset J = AbstractDataset::join(A, B);
  EXPECT_EQ(J, B);
}

TEST(AbstractDatasetTest, Example43JoinExtraElement) {
  // Example 4.3: ⟨T2, 2⟩ ⊔ ⟨T2 ∪ {x3}, 2⟩ = ⟨T2 ∪ {x3}, 3⟩.
  Dataset Data = smallDataset();
  AbstractDataset A(Data, {0, 1}, 2);
  AbstractDataset B(Data, {0, 1, 2}, 2);
  AbstractDataset J = AbstractDataset::join(A, B);
  EXPECT_EQ(J.rows(), (RowIndexList{0, 1, 2}));
  EXPECT_EQ(J.budget(), 3u);
}

TEST(AbstractDatasetTest, JoinIsCommutativeAndIdempotent) {
  Dataset Data = smallDataset();
  AbstractDataset A(Data, {0, 2, 4}, 1);
  AbstractDataset B(Data, {1, 2, 5}, 2);
  EXPECT_EQ(AbstractDataset::join(A, B), AbstractDataset::join(B, A));
  EXPECT_EQ(AbstractDataset::join(A, A), A);
}

TEST(AbstractDatasetTest, PartialOrder) {
  Dataset Data = smallDataset();
  AbstractDataset Small(Data, {0, 1}, 0);
  AbstractDataset Large(Data, {0, 1, 2}, 1);
  // ⟨{0,1}, 0⟩ ⊑ ⟨{0,1,2}, 1⟩: 0 ≤ 1 − |{2}| = 0. Holds.
  EXPECT_TRUE(Small.leq(Large));
  EXPECT_FALSE(Large.leq(Small));
  // Budget too large for the gap.
  AbstractDataset Mid(Data, {0, 1}, 1);
  EXPECT_FALSE(Mid.leq(Large)); // 1 > 1 − 1.
  EXPECT_TRUE(Mid.leq(AbstractDataset(Data, {0, 1, 2}, 2)));
  EXPECT_TRUE(Small.leq(Small));
}

TEST(AbstractDatasetTest, JoinIsUpperBound) {
  Dataset Data = smallDataset();
  AbstractDataset A(Data, {0, 2, 4}, 1);
  AbstractDataset B(Data, {1, 2, 5}, 2);
  AbstractDataset J = AbstractDataset::join(A, B);
  EXPECT_TRUE(A.leq(J));
  EXPECT_TRUE(B.leq(J));
}

TEST(AbstractDatasetTest, MeetBasics) {
  Dataset Data = smallDataset();
  // Footnote 4: ⟨T1∩T2, min(n1 − |T1\T2|, n2 − |T2\T1|)⟩ when feasible.
  AbstractDataset A(Data, {0, 1, 2}, 1);
  AbstractDataset B(Data, {1, 2, 3}, 2);
  std::optional<AbstractDataset> M = AbstractDataset::meet(A, B);
  ASSERT_TRUE(M.has_value());
  EXPECT_EQ(M->rows(), (RowIndexList{1, 2}));
  EXPECT_EQ(M->budget(), 0u); // min(1−1, 2−1) = 0.
  // Infeasible: A would need to drop 2 rows but n1 = 1.
  AbstractDataset C(Data, {3, 4, 5}, 1);
  EXPECT_FALSE(AbstractDataset::meet(A, C).has_value());
}

TEST(AbstractDatasetTest, MeetIsLowerBound) {
  Dataset Data = smallDataset();
  AbstractDataset A(Data, {0, 1, 2, 3}, 2);
  AbstractDataset B(Data, {1, 2, 3, 4}, 3);
  std::optional<AbstractDataset> M = AbstractDataset::meet(A, B);
  ASSERT_TRUE(M.has_value());
  EXPECT_TRUE(M->leq(A));
  EXPECT_TRUE(M->leq(B));
}

TEST(AbstractDatasetTest, RestrictConcretePredicate) {
  // Equation (1): ⟨T,n⟩↓#φ = ⟨T↓φ, min(n, |T↓φ|)⟩.
  Dataset Data = smallDataset();
  AbstractDataset A = AbstractDataset::entire(Data, 4);
  SplitPredicate Pred = SplitPredicate::threshold(0, 2.5);
  AbstractDataset Pos = A.restrict(Pred, true);
  EXPECT_EQ(Pos.rows(), (RowIndexList{0, 1, 2}));
  EXPECT_EQ(Pos.budget(), 3u); // min(4, 3).
  AbstractDataset Neg = A.restrict(Pred, false);
  EXPECT_EQ(Neg.rows(), (RowIndexList{3, 4, 5}));
  EXPECT_EQ(Neg.budget(), 3u);
}

TEST(AbstractDatasetTest, RestrictSymbolicChargesMaybeRows) {
  // ρ = x ≤ [1, 4): row values 2 and 3 are 'maybe'; they are kept on both
  // sides but charged to the budget (Appendix B.1 closed form).
  Dataset Data = smallDataset();
  AbstractDataset A = AbstractDataset::entire(Data, 1);
  SplitPredicate Rho = SplitPredicate::symbolic(0, 1.0, 4.0);
  AbstractDataset Pos = A.restrict(Rho, true);
  // Possible: values ≤ anything < 4 → rows {0,1,2,3}; definite: {0,1}.
  EXPECT_EQ(Pos.rows(), (RowIndexList{0, 1, 2, 3}));
  // max(min(1,4), (4−2) + min(1,2)) = max(1, 3) = 3.
  EXPECT_EQ(Pos.budget(), 3u);
  AbstractDataset Neg = A.restrict(Rho, false);
  // Possible negatives: values > 1 → rows {2,3,4,5}; definite: {4,5}.
  EXPECT_EQ(Neg.rows(), (RowIndexList{2, 3, 4, 5}));
  EXPECT_EQ(Neg.budget(), 3u);
}

TEST(AbstractDatasetTest, PureRestriction) {
  Dataset Data = smallDataset(); // Labels: 0,0,1,1,0,1.
  AbstractDataset A = AbstractDataset::entire(Data, 3);
  std::optional<AbstractDataset> Pure0 = A.restrictToPureClass(0);
  ASSERT_TRUE(Pure0.has_value());
  EXPECT_EQ(Pure0->rows(), (RowIndexList{0, 1, 4}));
  EXPECT_EQ(Pure0->budget(), 0u); // 3 − 3 dropped.
  // Budget 2 cannot drop the three class-1 rows.
  AbstractDataset B = AbstractDataset::entire(Data, 2);
  EXPECT_FALSE(B.restrictToPureClass(0).has_value());
}

TEST(AbstractDatasetTest, SingleClassDetection) {
  Dataset Data = smallDataset();
  EXPECT_FALSE(AbstractDataset(Data, {0, 2}, 1).isSingleClass());
  EXPECT_TRUE(AbstractDataset(Data, {0, 1, 4}, 1).isSingleClass());
  EXPECT_TRUE(AbstractDataset(Data, {2}, 0).isSingleClass());
}

//===----------------------------------------------------------------------===//
// Property-based soundness (Propositions 4.2, 4.4, B.3 and footnote 4)
//===----------------------------------------------------------------------===//

namespace {

class AbstractDatasetPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

/// A random sub-element of the domain over \p Data.
AbstractDataset randomElement(Rng &R, const Dataset &Data) {
  RowIndexList Rows;
  for (uint32_t I = 0; I < Data.numRows(); ++I)
    if (R.bernoulli(0.6))
      Rows.push_back(I);
  if (Rows.empty())
    Rows.push_back(static_cast<uint32_t>(R.uniformInt(Data.numRows())));
  uint32_t Budget = static_cast<uint32_t>(R.uniformInt(Rows.size() + 1));
  return AbstractDataset(Data, std::move(Rows), Budget);
}

} // namespace

TEST_P(AbstractDatasetPropertyTest, JoinSoundness) {
  // Proposition 4.2: γ(A) ∪ γ(B) ⊆ γ(A ⊔ B).
  Rng R(GetParam());
  RandomDatasetSpec Spec;
  Spec.MaxRows = 8;
  for (int Trial = 0; Trial < 40; ++Trial) {
    Dataset Data = makeRandomDataset(R, Spec);
    AbstractDataset A = randomElement(R, Data);
    AbstractDataset B = randomElement(R, Data);
    AbstractDataset J = AbstractDataset::join(A, B);
    forEachPerturbedSubset(A.rows(), A.budget(),
                           [&](const RowIndexList &Subset) {
                             EXPECT_TRUE(J.concretizationContains(Subset));
                           });
    forEachPerturbedSubset(B.rows(), B.budget(),
                           [&](const RowIndexList &Subset) {
                             EXPECT_TRUE(J.concretizationContains(Subset));
                           });
  }
}

TEST_P(AbstractDatasetPropertyTest, LeqImpliesConcretizationInclusion) {
  Rng R(GetParam() ^ 0x11);
  RandomDatasetSpec Spec;
  Spec.MaxRows = 8;
  for (int Trial = 0; Trial < 40; ++Trial) {
    Dataset Data = makeRandomDataset(R, Spec);
    AbstractDataset A = randomElement(R, Data);
    AbstractDataset B = randomElement(R, Data);
    if (!A.leq(B))
      continue;
    forEachPerturbedSubset(A.rows(), A.budget(),
                           [&](const RowIndexList &Subset) {
                             EXPECT_TRUE(B.concretizationContains(Subset));
                           });
  }
}

TEST_P(AbstractDatasetPropertyTest, MeetSoundness) {
  // γ(A ⊓ B) ⊇ γ(A) ∩ γ(B); infeasible meet ⇒ empty intersection.
  Rng R(GetParam() ^ 0x22);
  RandomDatasetSpec Spec;
  Spec.MaxRows = 7;
  for (int Trial = 0; Trial < 30; ++Trial) {
    Dataset Data = makeRandomDataset(R, Spec);
    AbstractDataset A = randomElement(R, Data);
    AbstractDataset B = randomElement(R, Data);
    std::optional<AbstractDataset> M = AbstractDataset::meet(A, B);
    forEachPerturbedSubset(
        A.rows(), A.budget(), [&](const RowIndexList &Subset) {
          if (!B.concretizationContains(Subset))
            return;
          ASSERT_TRUE(M.has_value())
              << "common concretization but meet is bottom";
          EXPECT_TRUE(M->concretizationContains(Subset));
        });
  }
}

TEST_P(AbstractDatasetPropertyTest, RestrictSoundness) {
  // Propositions 4.4 / B.3: T' ∈ γ(⟨T,n⟩) ⇒ T'↓φ ∈ γ(⟨T,n⟩↓#φ), for both
  // concrete thresholds and symbolic predicates (any φ ∈ γ(ρ)).
  Rng R(GetParam() ^ 0x33);
  RandomDatasetSpec Spec;
  Spec.MaxRows = 7;
  Spec.NumFeatures = 2;
  for (int Trial = 0; Trial < 30; ++Trial) {
    Dataset Data = makeRandomDataset(R, Spec);
    AbstractDataset A = randomElement(R, Data);
    uint32_t Feature = static_cast<uint32_t>(R.uniformInt(2));
    double Lo = static_cast<double>(R.uniformInt(5));
    bool Symbolic = R.bernoulli(0.5);
    double Hi = Symbolic ? Lo + 1 + static_cast<double>(R.uniformInt(2))
                         : Lo;
    SplitPredicate Rho =
        Symbolic ? SplitPredicate::symbolic(Feature, Lo, Hi)
                 : SplitPredicate::threshold(Feature, Lo);
    AbstractDataset Pos = A.restrict(Rho, true);
    AbstractDataset Neg = A.restrict(Rho, false);
    // Sample thresholds from γ(ρ).
    for (double Tau = Lo; Tau < Hi + 0.25; Tau += 0.5) {
      if (Symbolic && Tau >= Hi)
        continue;
      if (!Symbolic && Tau != Lo)
        continue;
      SplitPredicate Phi = SplitPredicate::threshold(Feature, Tau);
      forEachPerturbedSubset(
          A.rows(), A.budget(), [&](const RowIndexList &Subset) {
            RowIndexList SubPos, SubNeg;
            for (uint32_t Row : Subset) {
              if (Phi.evaluate(Data.value(Row, Feature)) ==
                  ThreeValued::True)
                SubPos.push_back(Row);
              else
                SubNeg.push_back(Row);
            }
            EXPECT_TRUE(Pos.concretizationContains(SubPos))
                << "positive restriction unsound for tau=" << Tau;
            EXPECT_TRUE(Neg.concretizationContains(SubNeg))
                << "negative restriction unsound for tau=" << Tau;
          });
    }
  }
}

TEST_P(AbstractDatasetPropertyTest, PureRestrictionSoundness) {
  // §4.7: every single-class concretization of ⟨T,n⟩ with class i is in
  // γ(pure(⟨T,n⟩, i)).
  Rng R(GetParam() ^ 0x44);
  RandomDatasetSpec Spec;
  Spec.MaxRows = 7;
  for (int Trial = 0; Trial < 30; ++Trial) {
    Dataset Data = makeRandomDataset(R, Spec);
    AbstractDataset A = randomElement(R, Data);
    std::vector<std::optional<AbstractDataset>> Pures;
    for (unsigned C = 0; C < Data.numClasses(); ++C)
      Pures.push_back(A.restrictToPureClass(C));
    forEachPerturbedSubset(
        A.rows(), A.budget(), [&](const RowIndexList &Subset) {
          std::vector<uint32_t> Counts = classCounts(Data, Subset);
          if (!isPure(Counts))
            return;
          unsigned Class = argmaxClass(Counts);
          ASSERT_TRUE(Pures[Class].has_value());
          EXPECT_TRUE(Pures[Class]->concretizationContains(Subset));
        });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AbstractDatasetPropertyTest,
                         ::testing::Values(1000ull, 2000ull, 3000ull,
                                           4000ull));
