//===- tests/DatasetTests.cpp - Dataset substrate unit tests ------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "data/Dataset.h"

#include "TestUtil.h"
#include "data/Csv.h"

#include <gtest/gtest.h>

using namespace antidote;
using namespace antidote::testutil;

TEST(DatasetTest, SchemaUniform) {
  DatasetSchema Schema = DatasetSchema::uniform(3, FeatureKind::Boolean, 2);
  EXPECT_EQ(Schema.numFeatures(), 3u);
  EXPECT_EQ(Schema.NumClasses, 2u);
  for (FeatureKind Kind : Schema.FeatureKinds)
    EXPECT_EQ(Kind, FeatureKind::Boolean);
}

TEST(DatasetTest, AddAndAccessRows) {
  Dataset Data(DatasetSchema::uniform(2, FeatureKind::Real, 3));
  Data.addRow({1.5f, -2.0f}, 0);
  Data.addRow({0.0f, 4.25f}, 2);
  ASSERT_EQ(Data.numRows(), 2u);
  EXPECT_DOUBLE_EQ(Data.value(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(Data.value(0, 1), -2.0);
  EXPECT_DOUBLE_EQ(Data.value(1, 1), 4.25);
  EXPECT_EQ(Data.label(0), 0u);
  EXPECT_EQ(Data.label(1), 2u);
  EXPECT_EQ(Data.row(1)[1], 4.25f);
}

TEST(DatasetTest, Figure2DatasetShape) {
  Dataset Data = figure2Dataset();
  EXPECT_EQ(Data.numRows(), 13u);
  EXPECT_EQ(Data.numFeatures(), 1u);
  EXPECT_EQ(Data.numClasses(), 2u);
  std::vector<uint32_t> Counts = classCounts(Data, allRows(Data));
  EXPECT_EQ(Counts[0], 7u); // white
  EXPECT_EQ(Counts[1], 6u); // black
}

TEST(DatasetTest, AllRowsAndClassCounts) {
  Dataset Data = figure2Dataset();
  RowIndexList Rows = allRows(Data);
  ASSERT_EQ(Rows.size(), 13u);
  EXPECT_TRUE(isCanonicalRowSet(Rows));
  // Counts over a subset.
  RowIndexList Subset = {0, 1, 4}; // black, white, black
  std::vector<uint32_t> Counts = classCounts(Data, Subset);
  EXPECT_EQ(Counts[0], 1u);
  EXPECT_EQ(Counts[1], 2u);
}

TEST(DatasetTest, CanonicalRowSetDetection) {
  EXPECT_TRUE(isCanonicalRowSet({}));
  EXPECT_TRUE(isCanonicalRowSet({3}));
  EXPECT_TRUE(isCanonicalRowSet({1, 2, 9}));
  EXPECT_FALSE(isCanonicalRowSet({2, 1}));
  EXPECT_FALSE(isCanonicalRowSet({1, 1}));
}

TEST(RowSetOpsTest, DifferenceSize) {
  RowIndexList A = {1, 3, 5, 7};
  RowIndexList B = {3, 4, 7, 9};
  EXPECT_EQ(rowSetDifferenceSize(A, B), 2u); // {1, 5}
  EXPECT_EQ(rowSetDifferenceSize(B, A), 2u); // {4, 9}
  EXPECT_EQ(rowSetDifferenceSize(A, A), 0u);
  EXPECT_EQ(rowSetDifferenceSize(A, {}), 4u);
  EXPECT_EQ(rowSetDifferenceSize({}, A), 0u);
}

TEST(RowSetOpsTest, UnionIntersection) {
  RowIndexList A = {1, 3, 5};
  RowIndexList B = {3, 4};
  EXPECT_EQ(rowSetUnion(A, B), (RowIndexList{1, 3, 4, 5}));
  EXPECT_EQ(rowSetIntersection(A, B), (RowIndexList{3}));
  EXPECT_EQ(rowSetUnion(A, {}), A);
  EXPECT_EQ(rowSetIntersection(A, {}), RowIndexList{});
}

TEST(RowSetOpsTest, Includes) {
  RowIndexList A = {1, 3};
  RowIndexList B = {1, 2, 3};
  EXPECT_TRUE(rowSetIncludes(A, B));
  EXPECT_FALSE(rowSetIncludes(B, A));
  EXPECT_TRUE(rowSetIncludes({}, A));
  EXPECT_TRUE(rowSetIncludes(A, A));
}

TEST(RowSetOpsTest, RandomizedAlgebra) {
  Rng R(99);
  for (int Trial = 0; Trial < 100; ++Trial) {
    RowIndexList A, B;
    for (uint32_t I = 0; I < 20; ++I) {
      if (R.bernoulli(0.4))
        A.push_back(I);
      if (R.bernoulli(0.4))
        B.push_back(I);
    }
    RowIndexList U = rowSetUnion(A, B);
    RowIndexList X = rowSetIntersection(A, B);
    EXPECT_EQ(U.size(), A.size() + B.size() - X.size());
    EXPECT_EQ(rowSetDifferenceSize(A, B), A.size() - X.size());
    EXPECT_TRUE(rowSetIncludes(X, A));
    EXPECT_TRUE(rowSetIncludes(X, B));
    EXPECT_TRUE(rowSetIncludes(A, U));
    EXPECT_TRUE(rowSetIncludes(B, U));
  }
}

//===----------------------------------------------------------------------===//
// CSV I/O
//===----------------------------------------------------------------------===//

TEST(CsvTest, ParseSimple) {
  CsvLoadResult Result = parseCsvDataset("1.5,0,0\n2.5,1,1\n# comment\n\n");
  ASSERT_TRUE(Result.succeeded()) << Result.Error;
  const Dataset &Data = *Result.Data;
  EXPECT_EQ(Data.numRows(), 2u);
  EXPECT_EQ(Data.numFeatures(), 2u);
  EXPECT_EQ(Data.numClasses(), 2u);
  EXPECT_DOUBLE_EQ(Data.value(1, 0), 2.5);
  EXPECT_EQ(Data.label(1), 1u);
}

TEST(CsvTest, InfersBooleanColumns) {
  CsvLoadResult Result = parseCsvDataset("0,3.5,0\n1,2.0,1\n0,1.0,0\n");
  ASSERT_TRUE(Result.succeeded()) << Result.Error;
  EXPECT_EQ(Result.Data->schema().FeatureKinds[0], FeatureKind::Boolean);
  EXPECT_EQ(Result.Data->schema().FeatureKinds[1], FeatureKind::Real);
}

TEST(CsvTest, RejectsMalformedRows) {
  EXPECT_FALSE(parseCsvDataset("1,2,notanumber\n").succeeded());
  EXPECT_FALSE(parseCsvDataset("1,2,0\n1,0\n").succeeded());
  EXPECT_FALSE(parseCsvDataset("1,2,-1\n").succeeded());
  EXPECT_FALSE(parseCsvDataset("1,2,0.5\n").succeeded());
  EXPECT_FALSE(parseCsvDataset("").succeeded());
  EXPECT_FALSE(parseCsvDataset("5\n").succeeded());
}

TEST(CsvTest, SchemaValidation) {
  DatasetSchema Schema = DatasetSchema::uniform(2, FeatureKind::Real, 2);
  CsvLoadResult Ok = parseCsvDataset("1,2,1\n", Schema);
  EXPECT_TRUE(Ok.succeeded()) << Ok.Error;
  // Label out of the schema's class range.
  EXPECT_FALSE(parseCsvDataset("1,2,2\n", Schema).succeeded());
}

TEST(CsvTest, RoundTrip) {
  Dataset Original = figure2Dataset();
  std::string Text = writeCsvDataset(Original);
  CsvLoadResult Reloaded = parseCsvDataset(Text);
  ASSERT_TRUE(Reloaded.succeeded()) << Reloaded.Error;
  ASSERT_EQ(Reloaded.Data->numRows(), Original.numRows());
  ASSERT_EQ(Reloaded.Data->numFeatures(), Original.numFeatures());
  for (unsigned Row = 0; Row < Original.numRows(); ++Row) {
    EXPECT_EQ(Reloaded.Data->label(Row), Original.label(Row));
    for (unsigned F = 0; F < Original.numFeatures(); ++F)
      EXPECT_DOUBLE_EQ(Reloaded.Data->value(Row, F), Original.value(Row, F));
  }
}

TEST(CsvTest, FileRoundTrip) {
  Dataset Original = figure2Dataset();
  std::string Path = ::testing::TempDir() + "/antidote_csv_test.csv";
  std::string Error;
  ASSERT_TRUE(saveCsvDataset(Original, Path, Error)) << Error;
  CsvLoadResult Reloaded = loadCsvDataset(Path);
  ASSERT_TRUE(Reloaded.succeeded()) << Reloaded.Error;
  EXPECT_EQ(Reloaded.Data->numRows(), Original.numRows());
  std::remove(Path.c_str());
}

TEST(CsvTest, LoadMissingFileFails) {
  CsvLoadResult Result = loadCsvDataset("/nonexistent/path/data.csv");
  EXPECT_FALSE(Result.succeeded());
  EXPECT_FALSE(Result.Error.empty());
}
