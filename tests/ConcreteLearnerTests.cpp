//===- tests/ConcreteLearnerTests.cpp - DTrace / tree learner tests -----------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "concrete/DTrace.h"

#include "TestUtil.h"
#include "concrete/DecisionTree.h"
#include "data/Synthetic.h"

#include <gtest/gtest.h>

using namespace antidote;
using namespace antidote::testutil;

//===----------------------------------------------------------------------===//
// Predicates
//===----------------------------------------------------------------------===//

TEST(PredicateTest, ConcreteEvaluation) {
  SplitPredicate P = SplitPredicate::threshold(0, 10.0);
  EXPECT_FALSE(P.isSymbolic());
  EXPECT_EQ(P.evaluate(9.0), ThreeValued::True);
  EXPECT_EQ(P.evaluate(10.0), ThreeValued::True);
  EXPECT_EQ(P.evaluate(10.5), ThreeValued::False);
  EXPECT_EQ(P.str(), "x0 <= 10");
}

TEST(PredicateTest, SymbolicThreeValuedEvaluation) {
  // ρ = x ≤ [4, 7): Definition B.2's three cases.
  SplitPredicate P = SplitPredicate::symbolic(1, 4.0, 7.0);
  EXPECT_TRUE(P.isSymbolic());
  EXPECT_EQ(P.evaluate(3.0), ThreeValued::True);
  EXPECT_EQ(P.evaluate(4.0), ThreeValued::True);
  EXPECT_EQ(P.evaluate(5.0), ThreeValued::Maybe);
  EXPECT_EQ(P.evaluate(6.999), ThreeValued::Maybe);
  EXPECT_EQ(P.evaluate(7.0), ThreeValued::False);
  EXPECT_EQ(P.str(), "x1 <= [4, 7)");
}

TEST(PredicateTest, ConcretizationMembership) {
  SplitPredicate Sym = SplitPredicate::symbolic(0, 4.0, 7.0);
  EXPECT_TRUE(Sym.concretizationContains(0, 4.0));
  EXPECT_TRUE(Sym.concretizationContains(0, 5.5));
  EXPECT_FALSE(Sym.concretizationContains(0, 7.0)); // Half-open.
  EXPECT_FALSE(Sym.concretizationContains(1, 5.0)); // Wrong feature.
  SplitPredicate Conc = SplitPredicate::threshold(0, 4.0);
  EXPECT_TRUE(Conc.concretizationContains(0, 4.0));
  EXPECT_FALSE(Conc.concretizationContains(0, 4.5));
}

TEST(PredicateTest, OrderingIsDeterministic) {
  SplitPredicate A = SplitPredicate::threshold(0, 1.0);
  SplitPredicate B = SplitPredicate::threshold(0, 2.0);
  SplitPredicate C = SplitPredicate::threshold(1, 0.0);
  EXPECT_LT(A, B);
  EXPECT_LT(B, C);
  EXPECT_EQ(A, SplitPredicate::threshold(0, 1.0));
}

//===----------------------------------------------------------------------===//
// Gini operators (paper Figure 5 and Examples 3.4/3.5)
//===----------------------------------------------------------------------===//

TEST(GiniTest, ClassProbabilities) {
  std::vector<double> Probs = classProbabilities({7, 2});
  EXPECT_DOUBLE_EQ(Probs[0], 7.0 / 9.0);
  EXPECT_DOUBLE_EQ(Probs[1], 2.0 / 9.0);
}

TEST(GiniTest, ImpurityOfPureSetIsZero) {
  EXPECT_DOUBLE_EQ(giniImpurityFromCounts({0, 4}, 4), 0.0);
  EXPECT_DOUBLE_EQ(giniImpurityFromCounts({4, 0}, 4), 0.0);
}

TEST(GiniTest, Example34Impurity) {
  // ent(T↓φ) ≈ 0.35 for the 7-white/2-black left side of Figure 2.
  double Ent = giniImpurityFromCounts({7, 2}, 9);
  EXPECT_NEAR(Ent, 0.3457, 1e-4);
}

TEST(GiniTest, Example34Score) {
  // score(T, x ≤ 10) ≈ 3.1: 9·ent(7w,2b) + 4·ent(0w,4b).
  double Score = splitScore({7, 2}, 9, {0, 4}, 4);
  EXPECT_NEAR(Score, 9.0 * 0.345679, 1e-4);
  EXPECT_NEAR(Score, 3.1111, 1e-3);
}

TEST(GiniTest, PurityAndArgmax) {
  EXPECT_TRUE(isPure({5, 0, 0}));
  EXPECT_TRUE(isPure({0, 0, 3}));
  EXPECT_FALSE(isPure({1, 0, 3}));
  EXPECT_EQ(argmaxClass({1, 5, 3}), 1u);
  EXPECT_EQ(argmaxClass({2, 2}), 0u); // Deterministic lowest-index tie.
}

//===----------------------------------------------------------------------===//
// Candidate enumeration and bestSplit
//===----------------------------------------------------------------------===//

TEST(BestSplitTest, Figure2PicksTheTenElevenBoundary) {
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  std::optional<SplitPredicate> Best = bestSplit(Ctx, allRows(Data));
  ASSERT_TRUE(Best.has_value());
  // The paper's best predicate x ≤ 10 corresponds to the midpoint between
  // the adjacent values 10 and 11.
  EXPECT_EQ(Best->feature(), 0u);
  EXPECT_DOUBLE_EQ(Best->thresholdValue(), 10.5);
}

TEST(BestSplitTest, CandidateCountMatchesExample51) {
  // Example 5.1: Tbw has 12 adjacent pairs of distinct values
  // {0,1,2,3,4,7,...,14}, giving 12 candidate thresholds.
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  unsigned Count = 0;
  forEachCandidateSplit(Ctx, allRows(Data), PredicateMode::ConcreteMidpoint,
                        [&](const SplitPredicate &,
                            const std::vector<uint32_t> &, uint32_t) {
                          ++Count;
                        });
  EXPECT_EQ(Count, 12u);
}

TEST(BestSplitTest, CandidatePosCountsArePrefixes) {
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  RowIndexList Rows = allRows(Data);
  forEachCandidateSplit(
      Ctx, Rows, PredicateMode::ConcreteMidpoint,
      [&](const SplitPredicate &Pred, const std::vector<uint32_t> &PosCounts,
          uint32_t PosTotal) {
        // Recompute by brute force.
        std::vector<uint32_t> Expected(Data.numClasses(), 0);
        uint32_t ExpectedTotal = 0;
        for (uint32_t Row : Rows)
          if (Pred.evaluate(Data.value(Row, 0)) == ThreeValued::True) {
            ++Expected[Data.label(Row)];
            ++ExpectedTotal;
          }
        EXPECT_EQ(PosCounts, Expected);
        EXPECT_EQ(PosTotal, ExpectedTotal);
      });
}

TEST(BestSplitTest, SymbolicModeEmitsAdjacentPairs) {
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  std::vector<SplitPredicate> Preds;
  forEachCandidateSplit(Ctx, allRows(Data), PredicateMode::SymbolicInterval,
                        [&](const SplitPredicate &Pred,
                            const std::vector<uint32_t> &, uint32_t) {
                          Preds.push_back(Pred);
                        });
  ASSERT_EQ(Preds.size(), 12u);
  EXPECT_EQ(Preds.front(), SplitPredicate::symbolic(0, 0.0, 1.0));
  // The gap pair (4, 7) appears as one symbolic predicate.
  EXPECT_NE(std::find(Preds.begin(), Preds.end(),
                      SplitPredicate::symbolic(0, 4.0, 7.0)),
            Preds.end());
  EXPECT_EQ(Preds.back(), SplitPredicate::symbolic(0, 13.0, 14.0));
}

TEST(BestSplitTest, BooleanFeaturesGetSinglePredicate) {
  Dataset Data(DatasetSchema::uniform(2, FeatureKind::Boolean, 2));
  Data.addRow({0.0f, 1.0f}, 0);
  Data.addRow({1.0f, 1.0f}, 1);
  Data.addRow({0.0f, 1.0f}, 0);
  SplitContext Ctx(Data);
  std::vector<SplitPredicate> Preds;
  forEachCandidateSplit(Ctx, allRows(Data), PredicateMode::SymbolicInterval,
                        [&](const SplitPredicate &Pred,
                            const std::vector<uint32_t> &, uint32_t) {
                          Preds.push_back(Pred);
                        });
  // Feature 1 is constant (trivial split) and must not appear.
  ASSERT_EQ(Preds.size(), 1u);
  EXPECT_EQ(Preds[0], SplitPredicate::threshold(0, 0.5));
}

TEST(BestSplitTest, NoCandidatesOnConstantData) {
  Dataset Data(DatasetSchema::uniform(1, FeatureKind::Real, 2));
  Data.addRow({3.0f}, 0);
  Data.addRow({3.0f}, 1);
  SplitContext Ctx(Data);
  EXPECT_FALSE(bestSplit(Ctx, allRows(Data)).has_value());
}

TEST(BestSplitTest, FilterRowsPartitions) {
  Dataset Data = figure2Dataset();
  RowIndexList Rows = allRows(Data);
  SplitPredicate Pred = SplitPredicate::threshold(0, 10.5);
  RowIndexList Pos = filterRows(Data, Rows, Pred, true);
  RowIndexList Neg = filterRows(Data, Rows, Pred, false);
  EXPECT_EQ(Pos.size(), 9u);
  EXPECT_EQ(Neg.size(), 4u);
  EXPECT_EQ(rowSetUnion(Pos, Neg), Rows);
  EXPECT_TRUE(rowSetIntersection(Pos, Neg).empty());
}

//===----------------------------------------------------------------------===//
// DTrace (paper Figure 4, Examples 3.4/3.5)
//===----------------------------------------------------------------------===//

TEST(DTraceTest, Example35ClassifiesEighteenAsBlack) {
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  float X = 18.0f;
  TraceResult Result = runDTrace(Ctx, allRows(Data), &X, 1);
  EXPECT_EQ(Result.PredictedClass, 1u); // black
  EXPECT_DOUBLE_EQ(Result.ClassProbs[1], 1.0);
  ASSERT_EQ(Result.Trace.size(), 1u);
  EXPECT_FALSE(Result.Trace[0].Satisfied); // 18 > 10.5
  EXPECT_EQ(Result.FinalRows.size(), 4u);
}

TEST(DTraceTest, ClassifiesFiveAsWhite) {
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  float X = 5.0f;
  TraceResult Result = runDTrace(Ctx, allRows(Data), &X, 1);
  EXPECT_EQ(Result.PredictedClass, 0u); // white, probability 7/9
  EXPECT_NEAR(Result.ClassProbs[0], 7.0 / 9.0, 1e-12);
}

TEST(DTraceTest, StopsAtPureLeaf) {
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  float X = 18.0f;
  // Depth 3, but the right side is pure black after one split.
  TraceResult Result = runDTrace(Ctx, allRows(Data), &X, 3);
  EXPECT_EQ(Result.Stop, TraceStopReason::PureLeaf);
  EXPECT_EQ(Result.Trace.size(), 1u);
}

TEST(DTraceTest, StopsWhenNoSplitExists) {
  Dataset Data(DatasetSchema::uniform(1, FeatureKind::Real, 2));
  Data.addRow({3.0f}, 0);
  Data.addRow({3.0f}, 1);
  SplitContext Ctx(Data);
  float X = 3.0f;
  TraceResult Result = runDTrace(Ctx, allRows(Data), &X, 2);
  EXPECT_EQ(Result.Stop, TraceStopReason::NoSplit);
  EXPECT_TRUE(Result.Trace.empty());
  EXPECT_EQ(Result.PredictedClass, 0u); // Tie broken to lowest index.
}

TEST(DTraceTest, DepthZeroPredictsMajority) {
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  float X = 5.0f;
  TraceResult Result = runDTrace(Ctx, allRows(Data), &X, 0);
  EXPECT_EQ(Result.PredictedClass, 0u); // 7 white vs 6 black.
  EXPECT_EQ(Result.Stop, TraceStopReason::DepthExhausted);
}

//===----------------------------------------------------------------------===//
// Full tree learner and DTrace equivalence
//===----------------------------------------------------------------------===//

TEST(DecisionTreeTest, Figure2TreeShape) {
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  DecisionTree Tree = DecisionTree::learn(Ctx, allRows(Data), 1);
  EXPECT_EQ(Tree.numNodes(), 3u);
  EXPECT_EQ(Tree.numTraces(), 2u);
  float Left = 5.0f, Right = 18.0f;
  EXPECT_EQ(Tree.classify(&Left), 0u);
  EXPECT_EQ(Tree.classify(&Right), 1u);
  std::vector<double> Probs = Tree.classProbabilitiesAt(&Left);
  EXPECT_NEAR(Probs[0], 7.0 / 9.0, 1e-12);
}

TEST(DecisionTreeTest, DumpMentionsRootPredicate) {
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  DecisionTree Tree = DecisionTree::learn(Ctx, allRows(Data), 2);
  std::string Dump = Tree.dump(Data);
  EXPECT_NE(Dump.find("x0 <= 10.5"), std::string::npos);
  EXPECT_NE(Dump.find("leaf"), std::string::npos);
}

namespace {

/// Property: the input-directed DTrace and the materialized tree are the
/// same learner (paper §3.3: collecting DTrace over all x yields the tree).
class LearnerEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(LearnerEquivalenceTest, DTraceAgreesWithFullTree) {
  Rng R(GetParam());
  for (int Trial = 0; Trial < 30; ++Trial) {
    RandomDatasetSpec Spec;
    Spec.MaxRows = 16;
    Spec.NumClasses = 2 + static_cast<unsigned>(R.uniformInt(2));
    Spec.BooleanFeatures = R.bernoulli(0.3);
    Dataset Data = makeRandomDataset(R, Spec);
    SplitContext Ctx(Data);
    for (unsigned Depth = 1; Depth <= 3; ++Depth) {
      DecisionTree Tree = DecisionTree::learn(Ctx, allRows(Data), Depth);
      for (int Query = 0; Query < 10; ++Query) {
        std::vector<float> X = makeRandomQuery(R, Spec);
        TraceResult Trace = runDTrace(Ctx, allRows(Data), X.data(), Depth);
        EXPECT_EQ(Trace.PredictedClass, Tree.classify(X.data()));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LearnerEquivalenceTest,
                         ::testing::Values(100ull, 200ull, 300ull));

TEST(DecisionTreeTest, AccuracyOnSeparableData) {
  // Two well-separated Gaussian-free clusters: depth 1 suffices.
  Dataset Train(DatasetSchema::uniform(1, FeatureKind::Real, 2));
  Dataset Test(DatasetSchema::uniform(1, FeatureKind::Real, 2));
  for (int I = 0; I < 20; ++I) {
    Train.addRow({static_cast<float>(I)}, I < 10 ? 0u : 1u);
    Test.addRow({static_cast<float>(I) + 0.25f}, I < 10 ? 0u : 1u);
  }
  SplitContext Ctx(Train);
  DecisionTree Tree = DecisionTree::learn(Ctx, allRows(Train), 1);
  EXPECT_DOUBLE_EQ(testAccuracy(Tree, Test), 1.0);
}

TEST(DecisionTreeTest, SyntheticDatasetsAreLearnable) {
  // The Table 1 reproduction depends on the synthetic generators producing
  // learnable class structure; sanity-check depth-2 accuracies here so a
  // generator regression fails fast (exact values live in EXPERIMENTS.md).
  {
    TrainTestSplit Iris = makeIrisLike();
    SplitContext Ctx(Iris.Train);
    DecisionTree Tree = DecisionTree::learn(Ctx, allRows(Iris.Train), 2);
    EXPECT_GE(testAccuracy(Tree, Iris.Test), 0.85);
  }
  {
    TrainTestSplit Mammo = makeMammographicLike();
    SplitContext Ctx(Mammo.Train);
    DecisionTree Tree = DecisionTree::learn(Ctx, allRows(Mammo.Train), 2);
    EXPECT_GE(testAccuracy(Tree, Mammo.Test), 0.75);
  }
  {
    TrainTestSplit Wdbc = makeWdbcLike();
    SplitContext Ctx(Wdbc.Train);
    DecisionTree Tree = DecisionTree::learn(Ctx, allRows(Wdbc.Train), 2);
    EXPECT_GE(testAccuracy(Tree, Wdbc.Test), 0.85);
  }
}
