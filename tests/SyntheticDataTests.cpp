//===- tests/SyntheticDataTests.cpp - Dataset generator tests -----------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "data/MnistLike.h"
#include "data/Registry.h"
#include "data/Synthetic.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace antidote;

TEST(SyntheticTest, IrisLikeShapeMatchesTable1) {
  TrainTestSplit Split = makeIrisLike();
  EXPECT_EQ(Split.Train.numRows(), 120u);
  EXPECT_EQ(Split.Test.numRows(), 30u);
  EXPECT_EQ(Split.Train.numFeatures(), 4u);
  EXPECT_EQ(Split.Train.numClasses(), 3u);
  // The exact-tie construction behind the footnote-10 quirk: equal
  // per-class training counts.
  std::vector<uint32_t> Counts = classCounts(Split.Train,
                                             allRows(Split.Train));
  EXPECT_EQ(Counts[0], 40u);
  EXPECT_EQ(Counts[1], 40u);
  EXPECT_EQ(Counts[2], 40u);
}

TEST(SyntheticTest, IrisLikeIsDeterministic) {
  TrainTestSplit A = makeIrisLike(123);
  TrainTestSplit B = makeIrisLike(123);
  ASSERT_EQ(A.Train.numRows(), B.Train.numRows());
  for (unsigned Row = 0; Row < A.Train.numRows(); ++Row) {
    EXPECT_EQ(A.Train.label(Row), B.Train.label(Row));
    for (unsigned F = 0; F < 4; ++F)
      EXPECT_EQ(A.Train.value(Row, F), B.Train.value(Row, F));
  }
}

TEST(SyntheticTest, IrisLikeSeedsDiffer) {
  TrainTestSplit A = makeIrisLike(1);
  TrainTestSplit B = makeIrisLike(2);
  bool AnyDifferent = false;
  for (unsigned Row = 0; Row < A.Train.numRows() && !AnyDifferent; ++Row)
    for (unsigned F = 0; F < 4; ++F)
      AnyDifferent |= A.Train.value(Row, F) != B.Train.value(Row, F);
  EXPECT_TRUE(AnyDifferent);
}

TEST(SyntheticTest, MammographicShapeMatchesTable1) {
  TrainTestSplit Split = makeMammographicLike();
  EXPECT_EQ(Split.Train.numRows(), 664u);
  EXPECT_EQ(Split.Test.numRows(), 166u);
  EXPECT_EQ(Split.Train.numFeatures(), 5u);
  EXPECT_EQ(Split.Train.numClasses(), 2u);
  // All ordinal features within their documented ranges.
  for (unsigned Row = 0; Row < Split.Train.numRows(); ++Row) {
    EXPECT_GE(Split.Train.value(Row, 0), 1.0);
    EXPECT_LE(Split.Train.value(Row, 0), 5.0);
    EXPECT_GE(Split.Train.value(Row, 1), 18.0);
    EXPECT_LE(Split.Train.value(Row, 1), 96.0);
    EXPECT_GE(Split.Train.value(Row, 4), 1.0);
    EXPECT_LE(Split.Train.value(Row, 4), 4.0);
  }
}

TEST(SyntheticTest, WdbcShapeMatchesTable1) {
  TrainTestSplit Split = makeWdbcLike();
  EXPECT_EQ(Split.Train.numRows(), 456u);
  EXPECT_EQ(Split.Test.numRows(), 113u);
  EXPECT_EQ(Split.Train.numFeatures(), 30u);
  EXPECT_EQ(Split.Train.numClasses(), 2u);
}

TEST(SyntheticTest, WdbcWorstExceedsMean) {
  TrainTestSplit Split = makeWdbcLike();
  // The (mean, se, worst) triple structure of the real data: "worst" is the
  // largest of the per-nucleus values, so it must exceed the mean.
  for (unsigned Row = 0; Row < Split.Train.numRows(); ++Row)
    for (unsigned F = 0; F < 10; ++F)
      EXPECT_GT(Split.Train.value(Row, F + 20), Split.Train.value(Row, F));
}

TEST(MnistLikeTest, ShapeMatchesPaper) {
  MnistLikeConfig Config;
  Config.TrainRows = 650;
  Config.TestRows = 110;
  TrainTestSplit Split = makeMnistLike17(Config);
  EXPECT_EQ(Split.Train.numRows(), 650u);
  EXPECT_EQ(Split.Test.numRows(), 110u);
  EXPECT_EQ(Split.Train.numFeatures(), 784u);
  EXPECT_EQ(Split.Train.numClasses(), 2u);
}

TEST(MnistLikeTest, ClassBalanceTracksMnist17) {
  MnistLikeConfig Config;
  Config.TrainRows = 1300;
  Config.TestRows = 216;
  TrainTestSplit Split = makeMnistLike17(Config);
  std::vector<uint32_t> Counts = classCounts(Split.Train,
                                             allRows(Split.Train));
  // 6742/13007 ≈ 51.8% ones.
  double OnesFraction = static_cast<double>(Counts[0]) / 1300.0;
  EXPECT_NEAR(OnesFraction, 0.518, 0.01);
}

TEST(MnistLikeTest, BinaryVariantIsMsbOfReal) {
  MnistLikeConfig RealConfig;
  RealConfig.TrainRows = 60;
  RealConfig.TestRows = 10;
  RealConfig.Variant = MnistVariant::Real;
  MnistLikeConfig BinConfig = RealConfig;
  BinConfig.Variant = MnistVariant::Binary;
  TrainTestSplit Real = makeMnistLike17(RealConfig);
  TrainTestSplit Bin = makeMnistLike17(BinConfig);
  ASSERT_EQ(Real.Train.numRows(), Bin.Train.numRows());
  for (unsigned Row = 0; Row < Real.Train.numRows(); ++Row) {
    EXPECT_EQ(Real.Train.label(Row), Bin.Train.label(Row));
    for (unsigned P = 0; P < 784; ++P) {
      float Expected = Real.Train.value(Row, P) >= 128.0 ? 1.0f : 0.0f;
      EXPECT_EQ(Bin.Train.value(Row, P), Expected);
    }
  }
}

TEST(MnistLikeTest, PixelsWithinByteRange) {
  MnistLikeConfig Config;
  Config.TrainRows = 40;
  Config.TestRows = 10;
  TrainTestSplit Split = makeMnistLike17(Config);
  for (unsigned Row = 0; Row < Split.Train.numRows(); ++Row)
    for (unsigned P = 0; P < 784; ++P) {
      EXPECT_GE(Split.Train.value(Row, P), 0.0);
      EXPECT_LE(Split.Train.value(Row, P), 255.0);
    }
}

TEST(MnistLikeTest, DigitsAreGeometricallyDistinct) {
  // Sevens have a bright top bar; ones concentrate ink in the central
  // columns. Check the aggregate statistics that make the task learnable.
  Rng R(5);
  float One[784], Seven[784];
  double OneTopRow = 0, SevenTopRow = 0, OneCenter = 0, SevenCenter = 0;
  const int Trials = 50;
  for (int I = 0; I < Trials; ++I) {
    renderMnistLikeDigit(0, R, One);
    renderMnistLikeDigit(1, R, Seven);
    for (unsigned Y = 3; Y <= 7; ++Y)
      for (unsigned X = 6; X < 22; ++X) {
        OneTopRow += One[Y * 28 + X];
        SevenTopRow += Seven[Y * 28 + X];
      }
    for (unsigned Y = 8; Y < 24; ++Y)
      for (unsigned X = 12; X < 17; ++X) {
        OneCenter += One[Y * 28 + X];
        SevenCenter += Seven[Y * 28 + X];
      }
  }
  EXPECT_GT(SevenTopRow, OneTopRow * 1.5);
  EXPECT_GT(OneCenter, SevenCenter * 1.2);
}

TEST(MnistLikeTest, AsciiArtHasGridShape) {
  Rng R(6);
  float Pixels[784];
  renderMnistLikeDigit(1, R, Pixels);
  std::string Art = asciiArtDigit(Pixels);
  EXPECT_EQ(Art.size(), 29u * 28u); // 28 rows of 28 chars + newlines
  EXPECT_NE(Art.find('@'), std::string::npos); // Some bright ink.
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(RegistryTest, NamesListedInTable1Order) {
  const std::vector<std::string> &Names = benchmarkDatasetNames();
  ASSERT_EQ(Names.size(), 5u);
  EXPECT_EQ(Names[0], "iris");
  EXPECT_EQ(Names[4], "mnist17-real");
}

TEST(RegistryTest, ScaledDatasetsLoad) {
  for (const std::string &Name : benchmarkDatasetNames()) {
    BenchmarkDataset Bench = loadBenchmarkDataset(Name, BenchScale::Scaled);
    EXPECT_EQ(Bench.Name, Name);
    EXPECT_GT(Bench.Split.Train.numRows(), 0u);
    EXPECT_GT(Bench.Split.Test.numRows(), 0u);
    EXPECT_FALSE(Bench.VerifyRows.empty());
    for (uint32_t Row : Bench.VerifyRows)
      EXPECT_LT(Row, Bench.Split.Test.numRows());
  }
}

TEST(RegistryTest, VerifyRowsAreDistinct) {
  BenchmarkDataset Bench =
      loadBenchmarkDataset("mnist17-binary", BenchScale::Scaled);
  std::vector<uint32_t> Sorted = Bench.VerifyRows;
  std::sort(Sorted.begin(), Sorted.end());
  EXPECT_EQ(std::adjacent_find(Sorted.begin(), Sorted.end()), Sorted.end());
}

TEST(RegistryTest, ScaleFromEnvDefaultsToScaled) {
  unsetenv("ANTIDOTE_BENCH_SCALE");
  EXPECT_EQ(benchScaleFromEnv(), BenchScale::Scaled);
  setenv("ANTIDOTE_BENCH_SCALE", "full", 1);
  EXPECT_EQ(benchScaleFromEnv(), BenchScale::Full);
  setenv("ANTIDOTE_BENCH_SCALE", "scaled", 1);
  EXPECT_EQ(benchScaleFromEnv(), BenchScale::Scaled);
  unsetenv("ANTIDOTE_BENCH_SCALE");
}
