//===- tests/AbstractDTraceTests.cpp - DTrace# end-to-end soundness -----------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "abstract/AbstractDTrace.h"

#include "TestUtil.h"
#include "antidote/Enumeration.h"
#include "concrete/DTrace.h"

#include <gtest/gtest.h>

using namespace antidote;
using namespace antidote::testutil;

namespace {

AbstractLearnerConfig baseConfig(AbstractDomainKind Domain, unsigned Depth) {
  AbstractLearnerConfig Config;
  Config.Domain = Domain;
  Config.Depth = Depth;
  Config.StopOnRefutation = false; // Tests inspect complete terminal sets.
  return Config;
}

} // namespace

TEST(AbstractDTraceTest, Figure2DepthOneDisjunctsProveWhite) {
  // The §2 running example at one poisoned element: every surviving
  // disjunct keeps white dominating, so classification of 5 is proven
  // invariant.
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  float X = 5.0f;
  AbstractDataset Initial = AbstractDataset::entire(Data, 1);
  AbstractLearnerResult Result = runAbstractDTrace(
      Ctx, Initial, &X, baseConfig(AbstractDomainKind::Disjuncts, 1));
  EXPECT_EQ(Result.Status, LearnerStatus::Completed);
  EXPECT_FALSE(Result.Refuted);
  ASSERT_TRUE(Result.DominatingClass.has_value());
  EXPECT_EQ(*Result.DominatingClass, 0u); // white
  EXPECT_GE(Result.Terminals.size(), 2u); // Several tied predicates.
}

TEST(AbstractDTraceTest, Figure2BoxJoinLosesWhatDisjunctsProve) {
  // §5.2's motivation: at n = 1 the box domain joins quite dissimilar
  // training-set fragments across the tied predicates and can no longer
  // dominate, while the disjunctive domain proves the instance (previous
  // test). This is the Example 5.3 imprecision in action.
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  float X = 5.0f;
  AbstractDataset Initial = AbstractDataset::entire(Data, 1);
  AbstractLearnerResult Result = runAbstractDTrace(
      Ctx, Initial, &X, baseConfig(AbstractDomainKind::Box, 1));
  EXPECT_EQ(Result.Status, LearnerStatus::Completed);
  EXPECT_EQ(Result.Terminals.size(), 1u); // Box keeps a single state.
  EXPECT_FALSE(Result.DominatingClass.has_value());
}

TEST(AbstractDTraceTest, Figure2OverviewProbabilityInterval) {
  // §2: after splitting on x ≤ 10 with two poisonings, the white
  // probability interval on the left branch is [0.71, 1] (i.e. [5/7, 1]).
  // In the disjunctive run, that branch is the terminal whose rows are
  // exactly T↓x≤10 with budget 2.
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  float X = 5.0f;
  AbstractDataset Initial = AbstractDataset::entire(Data, 2);
  AbstractLearnerResult Result = runAbstractDTrace(
      Ctx, Initial, &X, baseConfig(AbstractDomainKind::Disjuncts, 1));
  RowIndexList LeftRows = {0, 1, 2, 3, 4, 5, 6, 7, 8};
  bool FoundLeftBranch = false;
  for (const AbstractDataset &Terminal : Result.Terminals) {
    if (Terminal.rows() != LeftRows || Terminal.budget() != 2)
      continue;
    FoundLeftBranch = true;
    std::vector<Interval> Probs = abstractClassProbabilities(
        Terminal, CprobTransformerKind::Optimal);
    EXPECT_NEAR(Probs[0].lb(), 5.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(Probs[0].ub(), 1.0);
  }
  EXPECT_TRUE(FoundLeftBranch);
}

TEST(AbstractDTraceTest, RefutationWhenBudgetTooLarge) {
  // With enough poisoning the left leaf can be flipped; domination fails.
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  float X = 5.0f;
  AbstractDataset Initial = AbstractDataset::entire(Data, 7);
  AbstractLearnerResult Result = runAbstractDTrace(
      Ctx, Initial, &X, baseConfig(AbstractDomainKind::Box, 1));
  EXPECT_EQ(Result.Status, LearnerStatus::Completed);
  EXPECT_FALSE(Result.DominatingClass.has_value());
}

TEST(AbstractDTraceTest, EarlyStopOnRefutationProducesSameVerdict) {
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  float X = 5.0f;
  for (uint32_t Budget : {0u, 1u, 2u, 4u, 7u, 13u}) {
    AbstractDataset Initial = AbstractDataset::entire(Data, Budget);
    AbstractLearnerConfig Full = baseConfig(AbstractDomainKind::Box, 2);
    AbstractLearnerConfig Early = Full;
    Early.StopOnRefutation = true;
    AbstractLearnerResult A = runAbstractDTrace(Ctx, Initial, &X, Full);
    AbstractLearnerResult B = runAbstractDTrace(Ctx, Initial, &X, Early);
    EXPECT_EQ(A.DominatingClass.has_value(), B.DominatingClass.has_value());
    if (A.DominatingClass && B.DominatingClass) {
      EXPECT_EQ(*A.DominatingClass, *B.DominatingClass);
    }
  }
}

TEST(AbstractDTraceTest, TimeoutIsReported) {
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  float X = 5.0f;
  AbstractLearnerConfig Config = baseConfig(AbstractDomainKind::Disjuncts, 4);
  Config.Limits.TimeoutSeconds = 1e-9; // Expire immediately.
  AbstractDataset Initial = AbstractDataset::entire(Data, 4);
  AbstractLearnerResult Result = runAbstractDTrace(Ctx, Initial, &X, Config);
  EXPECT_EQ(Result.Status, LearnerStatus::Timeout);
  EXPECT_FALSE(Result.DominatingClass.has_value());
}

TEST(AbstractDTraceTest, DisjunctCapIsHonored) {
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  float X = 5.0f;
  AbstractLearnerConfig Config =
      baseConfig(AbstractDomainKind::DisjunctsCapped, 3);
  Config.DisjunctCap = 2;
  AbstractDataset Initial = AbstractDataset::entire(Data, 4);
  AbstractLearnerResult Result = runAbstractDTrace(Ctx, Initial, &X, Config);
  EXPECT_EQ(Result.Status, LearnerStatus::Completed);
  EXPECT_LE(Result.PeakDisjuncts, 2u);
}

TEST(AbstractDTraceTest, ResourceLimitIsReported) {
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  float X = 5.0f;
  AbstractLearnerConfig Config = baseConfig(AbstractDomainKind::Disjuncts, 4);
  Config.Limits.MaxDisjuncts = 1; // Any branching trips the cap.
  AbstractDataset Initial = AbstractDataset::entire(Data, 6);
  AbstractLearnerResult Result = runAbstractDTrace(Ctx, Initial, &X, Config);
  EXPECT_EQ(Result.Status, LearnerStatus::ResourceLimit);
}

TEST(AbstractDTraceTest, StatsArePopulated) {
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  float X = 5.0f;
  AbstractDataset Initial = AbstractDataset::entire(Data, 2);
  AbstractLearnerResult Result = runAbstractDTrace(
      Ctx, Initial, &X, baseConfig(AbstractDomainKind::Disjuncts, 2));
  EXPECT_GT(Result.BestSplitCalls, 0u);
  EXPECT_GT(Result.PeakStateBytes, 0u);
  EXPECT_GE(Result.PeakDisjuncts, 1u);
  EXPECT_GE(Result.Seconds, 0.0);
}

//===----------------------------------------------------------------------===//
// Theorem 4.11: terminal coverage of every concrete final state
//===----------------------------------------------------------------------===//

namespace {

struct SoundnessCase {
  uint64_t Seed;
  AbstractDomainKind Domain;
};

class DTraceSoundnessTest
    : public ::testing::TestWithParam<SoundnessCase> {};

std::string soundnessCaseName(
    const ::testing::TestParamInfo<SoundnessCase> &Info) {
  std::string Name = domainKindName(Info.param.Domain);
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name + "_seed" + std::to_string(Info.param.Seed);
}

} // namespace

TEST_P(DTraceSoundnessTest, TerminalsCoverEveryConcreteRun) {
  // For every T' ∈ ∆n(T), the concrete DTrace(T', x) final training set
  // must lie in γ of some terminal abstract state (Theorem 4.11 lifted to
  // our multi-terminal formulation).
  Rng R(GetParam().Seed);
  RandomDatasetSpec Spec;
  Spec.MaxRows = 8;
  Spec.NumFeatures = 2;
  Spec.DistinctValues = 4;
  for (int Trial = 0; Trial < 20; ++Trial) {
    Spec.BooleanFeatures = R.bernoulli(0.25);
    Spec.NumClasses = 2 + static_cast<unsigned>(R.uniformInt(2));
    Dataset Data = makeRandomDataset(R, Spec);
    SplitContext Ctx(Data);
    RowIndexList Rows = allRows(Data);
    uint32_t Budget = static_cast<uint32_t>(R.uniformInt(3));
    unsigned Depth = 1 + static_cast<unsigned>(R.uniformInt(3));
    std::vector<float> X = makeRandomQuery(R, Spec);

    AbstractLearnerResult Abstract = runAbstractDTrace(
        Ctx, AbstractDataset(Data, Rows, Budget), X.data(),
        baseConfig(GetParam().Domain, Depth));
    ASSERT_EQ(Abstract.Status, LearnerStatus::Completed);

    forEachPerturbedSubset(Rows, Budget, [&](const RowIndexList &Subset) {
      TraceResult Concrete = runDTrace(Ctx, Subset, X.data(), Depth);
      bool Covered = false;
      for (const AbstractDataset &Terminal : Abstract.Terminals)
        if (Terminal.concretizationContains(Concrete.FinalRows)) {
          Covered = true;
          break;
        }
      EXPECT_TRUE(Covered)
          << "concrete final state not covered by any terminal (depth="
          << Depth << ", n=" << Budget << ")";
    });
  }
}

TEST_P(DTraceSoundnessTest, DominationImpliesEnumerationRobust) {
  // The headline soundness property: a dominating class means *no*
  // removal of ≤ n rows can change the prediction; the enumeration oracle
  // must agree.
  Rng R(GetParam().Seed ^ 0xabcdef);
  RandomDatasetSpec Spec;
  Spec.MaxRows = 9;
  Spec.NumFeatures = 2;
  Spec.DistinctValues = 4;
  unsigned Proven = 0;
  for (int Trial = 0; Trial < 30; ++Trial) {
    Spec.BooleanFeatures = R.bernoulli(0.25);
    Dataset Data = makeRandomDataset(R, Spec);
    SplitContext Ctx(Data);
    RowIndexList Rows = allRows(Data);
    uint32_t Budget = static_cast<uint32_t>(R.uniformInt(3));
    unsigned Depth = 1 + static_cast<unsigned>(R.uniformInt(2));
    std::vector<float> X = makeRandomQuery(R, Spec);

    AbstractLearnerResult Abstract = runAbstractDTrace(
        Ctx, AbstractDataset(Data, Rows, Budget), X.data(),
        baseConfig(GetParam().Domain, Depth));
    if (Abstract.Status != LearnerStatus::Completed ||
        !Abstract.DominatingClass)
      continue;
    ++Proven;
    EnumerationResult Oracle =
        verifyByEnumeration(Ctx, Rows, X.data(), Budget, Depth);
    EXPECT_TRUE(Oracle.Robust)
        << "Antidote proved robustness but enumeration found a "
           "counterexample (depth="
        << Depth << ", n=" << Budget << ")";
    EXPECT_EQ(*Abstract.DominatingClass, Oracle.OriginalPrediction);
  }
  // The test would be vacuous if nothing was ever proven.
  EXPECT_GT(Proven, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Domains, DTraceSoundnessTest,
    ::testing::Values(
        SoundnessCase{501, AbstractDomainKind::Box},
        SoundnessCase{502, AbstractDomainKind::Box},
        SoundnessCase{601, AbstractDomainKind::Disjuncts},
        SoundnessCase{602, AbstractDomainKind::Disjuncts},
        SoundnessCase{701, AbstractDomainKind::DisjunctsCapped}),
    soundnessCaseName);

//===----------------------------------------------------------------------===//
// Relative precision of the domains
//===----------------------------------------------------------------------===//

TEST(DomainPrecisionTest, DisjunctsAtLeastAsPreciseAsBox) {
  // §5.2: "by construction, the disjunctive abstract domain is at least as
  // precise as our standard abstract domain."
  Rng R(888);
  RandomDatasetSpec Spec;
  Spec.MaxRows = 10;
  Spec.NumFeatures = 2;
  unsigned BoxProven = 0, DisjProven = 0;
  for (int Trial = 0; Trial < 40; ++Trial) {
    Dataset Data = makeRandomDataset(R, Spec);
    SplitContext Ctx(Data);
    uint32_t Budget = static_cast<uint32_t>(R.uniformInt(3));
    unsigned Depth = 1 + static_cast<unsigned>(R.uniformInt(2));
    std::vector<float> X = makeRandomQuery(R, Spec);
    AbstractDataset Initial = AbstractDataset::entire(Data, Budget);
    AbstractLearnerResult Box = runAbstractDTrace(
        Ctx, Initial, X.data(), baseConfig(AbstractDomainKind::Box, Depth));
    AbstractLearnerResult Disj = runAbstractDTrace(
        Ctx, Initial, X.data(),
        baseConfig(AbstractDomainKind::Disjuncts, Depth));
    BoxProven += Box.DominatingClass.has_value();
    DisjProven += Disj.DominatingClass.has_value();
    if (Box.DominatingClass) {
      EXPECT_TRUE(Disj.DominatingClass.has_value())
          << "box proved an instance disjuncts could not";
      if (Disj.DominatingClass) {
        EXPECT_EQ(*Box.DominatingClass, *Disj.DominatingClass);
      }
    }
  }
  EXPECT_GE(DisjProven, BoxProven);
}

TEST(DomainPrecisionTest, VerifiedRobustnessIsMonotoneInBudget) {
  // If the learner proves robustness at budget n, it must also prove it at
  // every smaller budget (the doubling protocol of §6.1 relies on this).
  Rng R(999);
  RandomDatasetSpec Spec;
  Spec.MaxRows = 10;
  for (int Trial = 0; Trial < 25; ++Trial) {
    Dataset Data = makeRandomDataset(R, Spec);
    SplitContext Ctx(Data);
    unsigned Depth = 1 + static_cast<unsigned>(R.uniformInt(2));
    std::vector<float> X = makeRandomQuery(R, Spec);
    for (AbstractDomainKind Domain :
         {AbstractDomainKind::Box, AbstractDomainKind::Disjuncts}) {
      bool PrevProven = true;
      for (uint32_t N = 0; N <= 4; ++N) {
        AbstractLearnerResult Result = runAbstractDTrace(
            Ctx, AbstractDataset::entire(Data, N), X.data(),
            baseConfig(Domain, Depth));
        bool Proven = Result.DominatingClass.has_value();
        if (!PrevProven) {
          EXPECT_FALSE(Proven)
              << domainKindName(Domain) << ": proved at n=" << N
              << " but not at n-1";
        }
        PrevProven = Proven;
      }
    }
  }
}
