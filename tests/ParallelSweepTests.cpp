//===- tests/ParallelSweepTests.cpp - Parallel engine tests -------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// Determinism and cancellation of the parallel verification engine: a
// sweep's aggregates must be bit-identical whatever SweepConfig::Jobs is,
// and a shared CancellationToken must stop in-flight runs cooperatively
// with the token's reason surfacing as the run status.
//
//===----------------------------------------------------------------------===//

#include "antidote/Sweep.h"

#include "TestUtil.h"
#include "data/Registry.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>
#include <thread>

using namespace antidote;
using namespace antidote::testutil;

namespace {

/// A synthetic two-cluster workload big enough that a parallel sweep
/// actually fans out (dozens of instances, several depths) but small
/// enough to finish in well under a second per sweep.
struct SyntheticBench {
  Dataset Train;
  Dataset Test;
  std::vector<uint32_t> VerifyRows;

  SyntheticBench()
      : Train(DatasetSchema::uniform(2, FeatureKind::Real, 2)),
        Test(DatasetSchema::uniform(2, FeatureKind::Real, 2)) {
    // Two separable clusters with a handful of label-noise rows so that
    // different instances stop verifying at different n.
    for (int I = 0; I < 24; ++I) {
      float Offset = static_cast<float>(I % 6);
      Train.addRow({Offset, Offset * 0.5f}, I % 11 == 10 ? 1u : 0u);
      Train.addRow({10.0f + Offset, 8.0f - Offset * 0.5f},
                   I % 9 == 8 ? 0u : 1u);
    }
    for (int I = 0; I < 12; ++I) {
      Test.addRow({static_cast<float>(I % 6) + 0.25f, 1.0f}, 0u);
      Test.addRow({10.5f + static_cast<float>(I % 6), 6.0f}, 1u);
    }
    for (uint32_t Row = 0; Row < Test.numRows(); ++Row)
      VerifyRows.push_back(Row);
  }
};

SweepConfig deterministicConfig() {
  SweepConfig Config;
  Config.Depths = {1, 2};
  Config.MaxPoisoning = 64;
  // No wall-clock budget: timing must not influence verdicts, or the
  // Jobs=1 vs Jobs=4 comparison below would be scheduling-dependent.
  Config.InstanceLimits.TimeoutSeconds = 0.0;
  Config.InstanceLimits.MaxDisjuncts = 1u << 14;
  Config.InstanceLimits.MaxStateBytes = 1ull << 28;
  return Config;
}

/// Everything except timings must match exactly.
void expectIdenticalResults(const SweepResult &A, const SweepResult &B) {
  ASSERT_EQ(A.VerifyRows, B.VerifyRows);
  ASSERT_EQ(A.Series.size(), B.Series.size());
  for (size_t S = 0; S < A.Series.size(); ++S) {
    const SweepSeries &X = A.Series[S];
    const SweepSeries &Y = B.Series[S];
    EXPECT_EQ(X.Depth, Y.Depth);
    EXPECT_EQ(X.DomainName, Y.DomainName);
    EXPECT_EQ(X.MaxVerifiedN, Y.MaxVerifiedN);
    ASSERT_EQ(X.Cells.size(), Y.Cells.size());
    for (size_t C = 0; C < X.Cells.size(); ++C) {
      EXPECT_EQ(X.Cells[C].Poisoning, Y.Cells[C].Poisoning);
      EXPECT_EQ(X.Cells[C].Attempted, Y.Cells[C].Attempted);
      EXPECT_EQ(X.Cells[C].Verified, Y.Cells[C].Verified);
      EXPECT_EQ(X.Cells[C].Timeouts, Y.Cells[C].Timeouts);
      EXPECT_EQ(X.Cells[C].ResourceFailures, Y.Cells[C].ResourceFailures);
      EXPECT_EQ(X.Cells[C].Cancellations, Y.Cells[C].Cancellations);
    }
  }
}

} // namespace

TEST(ParallelSweepTest, JobsDoNotChangeResults) {
  SyntheticBench Bench;
  SweepConfig Serial = deterministicConfig();
  Serial.Jobs = 1;
  SweepConfig Parallel = deterministicConfig();
  Parallel.Jobs = 4;

  SweepResult A = runPoisoningSweep(Bench.Train, Bench.Test,
                                    Bench.VerifyRows, Serial);
  SweepResult B = runPoisoningSweep(Bench.Train, Bench.Test,
                                    Bench.VerifyRows, Parallel);
  expectIdenticalResults(A, B);

  // Sanity: the workload is non-trivial (something verified somewhere,
  // and the protocol probed several n values).
  EXPECT_GT(A.fractionVerified(1, 1), 0.0);
  EXPECT_GT(A.attemptedPoisonings(1).size(), 1u);
}

TEST(ParallelSweepTest, AutoJobsMatchesSerial) {
  SyntheticBench Bench;
  SweepConfig Serial = deterministicConfig();
  SweepConfig Auto = deterministicConfig();
  Auto.Jobs = 0; // One worker per hardware thread.
  SweepResult A = runPoisoningSweep(Bench.Train, Bench.Test,
                                    Bench.VerifyRows, Serial);
  SweepResult B = runPoisoningSweep(Bench.Train, Bench.Test,
                                    Bench.VerifyRows, Auto);
  expectIdenticalResults(A, B);
}

TEST(ParallelSweepTest, VerifyBatchMatchesSequentialVerify) {
  SyntheticBench Bench;
  Verifier V(Bench.Train);
  VerifierConfig Config;
  Config.Depth = 2;
  Config.Domain = AbstractDomainKind::Disjuncts;

  std::vector<const float *> Inputs;
  for (uint32_t Row : Bench.VerifyRows)
    Inputs.push_back(Bench.Test.row(Row));

  ThreadPool Pool(3);
  std::vector<Certificate> Batch = V.verifyBatch(Inputs, 4, Config, &Pool);
  ASSERT_EQ(Batch.size(), Inputs.size());
  for (size_t I = 0; I < Inputs.size(); ++I) {
    Certificate Lone = V.verify(Inputs[I], 4, Config);
    EXPECT_EQ(Batch[I].Kind, Lone.Kind) << "instance " << I;
    EXPECT_EQ(Batch[I].ConcretePrediction, Lone.ConcretePrediction);
    EXPECT_EQ(Batch[I].NumTerminals, Lone.NumTerminals);
    EXPECT_EQ(Batch[I].PeakDisjuncts, Lone.PeakDisjuncts);
  }
}

//===----------------------------------------------------------------------===//
// Cancellation
//===----------------------------------------------------------------------===//

TEST(ParallelSweepTest, DeadlineTokenStopsDisjunctsRunWithTimeoutStatus) {
  // A token cancelled for deadline reasons must stop a Disjuncts run
  // mid-iteration and still surface as LearnerStatus::Timeout, exactly as
  // if the learner's own deadline had expired.
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  float X = 5.0f;
  CancellationToken Token;
  Token.cancel(BudgetOutcome::Timeout);

  AbstractLearnerConfig Config;
  Config.Depth = 4;
  Config.Domain = AbstractDomainKind::Disjuncts;
  Config.Cancel = &Token;
  AbstractDataset Initial = AbstractDataset::entire(Data, 6);
  AbstractLearnerResult Result = runAbstractDTrace(Ctx, Initial, &X, Config);
  EXPECT_EQ(Result.Status, LearnerStatus::Timeout);
  EXPECT_FALSE(Result.DominatingClass.has_value());
}

TEST(ParallelSweepTest, PlainCancellationSurfacesAsCancelled) {
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  float X = 5.0f;
  CancellationToken Token;
  Token.cancel();

  AbstractLearnerConfig Config;
  Config.Depth = 4;
  Config.Domain = AbstractDomainKind::Disjuncts;
  Config.Cancel = &Token;
  AbstractDataset Initial = AbstractDataset::entire(Data, 6);
  AbstractLearnerResult Result = runAbstractDTrace(Ctx, Initial, &X, Config);
  EXPECT_EQ(Result.Status, LearnerStatus::Cancelled);
  EXPECT_FALSE(Result.DominatingClass.has_value());

  // The learner's own budget statuses are untouched by the token
  // machinery: a real deadline still reports Timeout, a real cap still
  // reports ResourceLimit. (StopOnRefutation is off for the cap case so
  // the frontier actually grows instead of refuting first.)
  AbstractLearnerConfig ByDeadline = Config;
  ByDeadline.Cancel = nullptr;
  ByDeadline.Limits.TimeoutSeconds = 1e-9;
  EXPECT_EQ(runAbstractDTrace(Ctx, Initial, &X, ByDeadline).Status,
            LearnerStatus::Timeout);
  AbstractLearnerConfig ByCap = Config;
  ByCap.Cancel = nullptr;
  ByCap.StopOnRefutation = false;
  ByCap.Limits.MaxDisjuncts = 1;
  EXPECT_EQ(runAbstractDTrace(Ctx, Initial, &X, ByCap).Status,
            LearnerStatus::ResourceLimit);
}

TEST(ParallelSweepTest, MidRunCancellationStopsInFlightVerification) {
  // Cancel from another thread while an exhaustive Disjuncts run (no
  // refutation shortcut, no caps — several seconds on its own) is in
  // flight; the cooperative checkpoints inside the depth iteration must
  // wind it down long before that.
  BenchmarkDataset Bench =
      loadBenchmarkDataset("mammography", BenchScale::Scaled);
  SplitContext Ctx(Bench.Split.Train);
  AbstractLearnerConfig Config;
  Config.Depth = 5;
  Config.Domain = AbstractDomainKind::Disjuncts;
  Config.StopOnRefutation = false;
  Config.Limits.MaxDisjuncts = 0;  // Uncapped:
  Config.Limits.MaxStateBytes = 0; // only the token can stop this run.
  CancellationToken Token;
  Config.Cancel = &Token;
  AbstractDataset Initial =
      AbstractDataset::entire(Bench.Split.Train, 16);

  std::thread Canceller([&Token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    Token.cancel();
  });
  AbstractLearnerResult Result = runAbstractDTrace(
      Ctx, Initial, Bench.Split.Test.row(0), Config);
  Canceller.join();
  EXPECT_EQ(Result.Status, LearnerStatus::Cancelled);
  EXPECT_FALSE(Result.DominatingClass.has_value());
  // Early stop, not a full traversal: generous headroom because the
  // sanitizer CI jobs slow wind-down latency 5-15x, but still far below
  // the uncancelled traversal (seconds natively, minutes under TSan).
  EXPECT_LT(Result.Seconds, 5.0);
}

TEST(ParallelSweepTest, CancelledSweepReturnsPartialWellFormedResult) {
  SyntheticBench Bench;
  SweepConfig Config = deterministicConfig();
  Config.Jobs = 2;
  CancellationToken Token;
  Config.Cancel = &Token;
  Token.cancel();

  SweepResult Result = runPoisoningSweep(Bench.Train, Bench.Test,
                                         Bench.VerifyRows, Config);
  // Cancelled before any (depth, domain) started: no series at all.
  EXPECT_TRUE(Result.Series.empty());
}
