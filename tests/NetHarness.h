//===- tests/NetHarness.h - Fault-injection protocol client -----*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The first-class test client behind tests/NetServerTests.cpp and
/// tests/NetShedTests.cpp: a blocking-socket protocol speaker whose whole
/// point is sending *wrong* things on purpose — torn frames cut at any
/// byte offset, garbage headers, a single byte then silence (slow
/// loris), a clean disconnect with requests still in flight — while
/// still being able to speak the protocol correctly for the happy-path
/// assertions. Deterministic: no sleeps for correctness, every wait is
/// a poll() with an explicit deadline, so ctest runs are stable under
/// load and sanitizers.
///
/// Built as a small static library (not a test executable — see the
/// CMake exclusion) and linked into the network test suites.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_TESTS_NETHARNESS_H
#define ANTIDOTE_TESTS_NETHARNESS_H

#include "serving/CertificateStore.h"
#include "serving/NetProtocol.h"
#include "support/Net.h"

#include <condition_variable>
#include <mutex>

namespace antidote {
namespace testharness {

/// A `CertificateStore` test double whose `store` blocks while the gate
/// is closed — the deterministic way to pin fresh verifications
/// "in flight" (they finish computing, then wait in the write-through)
/// and saturate a CertServer's queue without sleeping. `lookup` always
/// misses and never blocks, so an event loop probing the store (the
/// shed path) cannot be stalled by it; RAM-tier hits in front of this
/// store behave normally. Tests MUST `open()` the gate before tearing
/// the server down, or shutdown's drain waits forever.
class GateStore : public CertificateStore {
public:
  bool lookup(const DatasetFingerprint &, const float *, unsigned,
              uint32_t, const VerifierConfig &, Certificate &) override {
    return false;
  }

  void store(const DatasetFingerprint &, const float *, unsigned, uint32_t,
             const VerifierConfig &, const Certificate &) override {
    std::unique_lock<std::mutex> Lock(Mutex);
    ++Entered;
    Gate.notify_all();
    Gate.wait(Lock, [this] { return Open; });
  }

  void close() {
    std::lock_guard<std::mutex> Lock(Mutex);
    Open = false;
  }

  void open() {
    std::lock_guard<std::mutex> Lock(Mutex);
    Open = true;
    Gate.notify_all();
  }

  /// Blocks until at least \p N `store` calls have reached the gate
  /// since construction. False on timeout.
  bool waitForEntered(size_t N, int TimeoutMillis = 30000) {
    std::unique_lock<std::mutex> Lock(Mutex);
    return Gate.wait_for(Lock, std::chrono::milliseconds(TimeoutMillis),
                         [&] { return Entered >= N; });
  }

private:
  std::mutex Mutex;
  std::condition_variable Gate;
  bool Open = true;
  size_t Entered = 0;
};

/// A convenience builder for the request everything sends.
NetRequest makeRequest(uint64_t Tag, uint32_t PoisoningBudget,
                       std::vector<float> X, uint32_t DeadlineMillis = 0);

/// One blocking client connection with fault-injection controls.
class NetClient {
public:
  /// Connects to 127.0.0.1:\p Port immediately; check `connected()`.
  explicit NetClient(uint16_t Port);

  bool connected() const { return Sock.valid(); }
  int fd() const { return Sock.get(); }

  /// Sends a complete, well-formed request frame.
  bool send(const NetRequest &Request);

  /// Sends only the first \p Bytes bytes of the encoded frame — a torn
  /// frame (the rest may follow via `sendRaw`, or never).
  bool sendPartial(const NetRequest &Request, size_t Bytes);

  /// Sends raw bytes verbatim (garbage headers, frame tails, anything).
  bool sendRaw(const void *Data, size_t Size);

  /// Blocks (bounded by \p TimeoutMillis) for the next complete, decoded
  /// response. False on timeout, EOF, or a corrupt response stream.
  bool recvResponse(NetResponse &Out, int TimeoutMillis = 30000);

  /// Blocks until the server closes this connection (EOF/reset),
  /// discarding any still-buffered responses. False on timeout.
  bool waitForClose(int TimeoutMillis = 30000);

  /// Half-close: no more bytes from us, responses still readable.
  void finishSending();

  /// Full close (also what the destructor does) — the mid-flight
  /// disconnect injection.
  void close() { Sock.reset(); }

private:
  FdHandle Sock;
  FrameReader In{NetResponseMagic};
};

} // namespace testharness
} // namespace antidote

#endif // ANTIDOTE_TESTS_NETHARNESS_H
